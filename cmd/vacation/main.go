// Command vacation runs the STAMP travel-reservation macro-benchmark
// (paper §5.5) on a chosen tree library and prints duration, throughput and
// speedup over the bare sequential implementation. Example:
//
//	vacation -tree sf-opt -clients 8 -contention high -t 32768 -r 4096
//	vacation -tree rb -contention low -check
//
// The -n/-q/-u flags override the contention preset's parameters, matching
// STAMP's flags of the same names.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/stm"
	"repro/internal/trees"
	"repro/internal/vacation"
)

func main() {
	tree := flag.String("tree", "sf-opt", "tree kind: sf|sf-opt|rb|avl|nr")
	clients := flag.Int("clients", 1, "concurrent client goroutines")
	contention := flag.String("contention", "high", "preset: high|low")
	relations := flag.Int("r", 4096, "rows per table (-r)")
	transactions := flag.Int("t", 16384, "total client transactions (-t)")
	nQuery := flag.Int("n", 0, "override queries per transaction (-n)")
	qPct := flag.Int("q", 0, "override query percentage (-q)")
	uPct := flag.Int("u", 0, "override user-transaction percentage (-u)")
	seed := flag.Int64("seed", 42, "workload seed")
	check := flag.Bool("check", false, "verify database consistency afterwards")
	yieldEvery := flag.Int("yield", 0, "STM interleaving simulation: yield every N accesses (0 off)")
	flag.Parse()

	var cfg vacation.Config
	switch *contention {
	case "high":
		cfg = vacation.HighContention(*relations, *transactions)
	case "low":
		cfg = vacation.LowContention(*relations, *transactions)
	default:
		fmt.Fprintf(os.Stderr, "vacation: unknown contention %q\n", *contention)
		os.Exit(2)
	}
	if *nQuery > 0 {
		cfg.NumQueryPerTx = *nQuery
	}
	if *qPct > 0 {
		cfg.QueryPercent = *qPct
	}
	if *uPct > 0 {
		cfg.UserPercent = *uPct
	}

	// Sequential baseline.
	sm := vacation.NewSeqManager()
	vacation.PopulateSeq(sm, cfg, *seed)
	seqClient := vacation.NewSeqClient(sm, cfg, *seed+1)
	seqStart := time.Now()
	seqClient.Run(cfg.NumTransactions)
	seqDur := time.Since(seqStart)

	// Concurrent run.
	s := stm.New(stm.WithYield(*yieldEvery), stm.WithContentionManager(stm.Suicide()))
	m := vacation.NewManager(s, trees.Kind(*tree))
	setup := s.NewThread()
	vacation.Populate(m, setup, cfg, *seed)
	stopMaint := m.StartMaintenance()
	per := cfg.NumTransactions / *clients
	if per == 0 {
		per = 1
	}
	cls := make([]*vacation.Client, *clients)
	for i := range cls {
		cls[i] = vacation.NewClient(m, s.NewThread(), cfg, *seed+int64(i)+1)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for _, cl := range cls {
		wg.Add(1)
		go func(cl *vacation.Client) {
			defer wg.Done()
			cl.Run(per)
		}(cl)
	}
	wg.Wait()
	dur := time.Since(start)
	stopMaint()

	var total vacation.ActionCounts
	for _, cl := range cls {
		total.MakeReservation += cl.Counts.MakeReservation
		total.DeleteCustomer += cl.Counts.DeleteCustomer
		total.UpdateTables += cl.Counts.UpdateTables
	}
	st := s.TotalStats()
	fmt.Printf("tree=%s clients=%d contention=%s relations=%d transactions=%d\n",
		*tree, *clients, *contention, cfg.NumRelations, int(total.Total()))
	fmt.Printf("mix: make-reservation=%d delete-customer=%d update-tables=%d\n",
		total.MakeReservation, total.DeleteCustomer, total.UpdateTables)
	fmt.Printf("duration=%.3fs  throughput=%.0f tx/s  sequential=%.3fs  speedup=%.2f\n",
		dur.Seconds(), float64(total.Total())/dur.Seconds(), seqDur.Seconds(),
		seqDur.Seconds()/dur.Seconds())
	fmt.Printf("stm: commits=%d aborts=%d abort-rate=%.4f\n", st.Commits, st.Aborts, st.AbortRate())
	var rot uint64
	for t := vacation.Car; t <= vacation.Room; t++ {
		if r, ok := trees.Rotations(m.Table(t)); ok {
			rot += r
		}
	}
	if r, ok := trees.Rotations(m.Customers()); ok {
		rot += r
	}
	fmt.Printf("rotations=%d\n", rot)

	if *check {
		if err := m.CheckConsistency(setup); err != nil {
			fmt.Fprintf(os.Stderr, "vacation: CONSISTENCY FAILURE: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("consistency: OK")
	}
}
