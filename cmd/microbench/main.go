// Command microbench runs one synchrobench-style integer-set benchmark and
// prints CSV, mirroring the micro-benchmark of the paper's §5.2–5.4 and the
// post-paper scaling dimensions (sharded forest, contention management,
// Zipfian key skew). Example:
//
//	microbench -tree sf-opt -threads 8 -update 20 -duration 2s -range 8192
//	microbench -tree rb -mode elastic -update 10
//	microbench -tree nr -biased -update 20
//	microbench -tree sf-opt -shards 8 -dist zipf -cm karma -threads 8
//	microbench -tree sf-opt -shards 8 -range-frac 0.1 -range-len 200
//	microbench -tree sf-opt -shards 16 -maint-workers 2 -dist zipf
//	microbench -tree sf-opt -shards 8 -xact-frac 0.2 -xact-keys 4 -xact-cross 0.5
//
// Trees: sf, sf-opt, rb, avl, nr. Modes: ctl, etl, elastic. Contention
// managers: suicide, backoff, karma. Distributions: uniform, zipf.
//
// -range-frac makes the given fraction of all operations ordered range
// scans over windows of -range-len keys (the -update percentage then
// applies to the remaining non-scan operations); the CSV reports the scan
// count and the total elements visited. On a sharded run every scan
// snapshots and
// merges all shards, so the per-shard rows' op counts include one touch per
// shard per scan (the merge cost the forest pays for hash routing).
//
// -xact-frac makes the given fraction of all operations multi-key transfer
// transactions: each reads -xact-keys keys through the cross-shard
// transaction coordinator (internal/ftx) and atomically moves one unit of
// value from the richest present key to the poorest. -xact-cross is the
// cross-shard dial: that fraction of transfers draws keys freely over the
// key space (on a sharded run, almost surely spanning shards and paying
// the shard-ordered two-phase commit), the rest are confined to one shard
// and take the coordinator's single-shard fallback. The xact_* CSV columns
// report completed transfers, units moved, and the coordinator's
// commit/fallback/abort/intent-conflict accounting.
//
// -durable attaches a write-ahead log (internal/durable) in a temporary
// directory: every committed update appends one checksummed record (cross-
// shard transfers as one multi-shard record), checkpoints run every
// -checkpoint-every (default 500ms), and after the hammer phase the run
// performs a timed full recovery of the directory. -fsync switches from
// asynchronous group commit to per-operation fsync. The durable CSV columns
// report the log's record/byte/sync/checkpoint counters plus recovery_ms
// and recovered_keys. Incremental checkpointing adds -ckpt-compact (the
// delta-chain compaction period; 0 = default, negative = every checkpoint
// full) and the columns ckpt_compact, delta_checkpoints, ckpt_bytes (bytes
// written across checkpoint/delta/manifest files), ckpt_dirty_frac (mean
// dirty fraction per delta), wal_stalls/wal_dropped (group-commit
// backpressure), and recovery_ns/recovery_appliers/recovery_deltas for the
// timed segment-parallel recovery. A durable run always uses the forest
// path (shards=1 becomes a one-shard forest, as repro.Open arranges).
//
// -obs serves the live observability endpoint on the given address for the
// duration of the run: Prometheus text on /metrics (every layer's counter,
// gauge and histogram families — STM commit/abort-cause taxonomy per
// shard, tree maintenance, combiner batches, coordinator, WAL and
// checkpoints, Go runtime), a JSON snapshot on /snapshot, the
// flight-recorder event ring on /flight, and net/http/pprof under
// /debug/pprof/. The CSV additionally reports the abort-cause breakdown
// (aborts_validation .. aborts_coordinated, structural_commits/aborts) and
// the runtime columns gc_pause_p99_ns (p99 GC pause among cycles inside
// the hammer window) and goroutines (live count at the window's end) on
// every run, -obs or not.
//
// -maint-workers sizes the shared maintenance worker pool of a sharded run
// (0 = the forest default, min(shards, GOMAXPROCS/2)); the CSV reports the
// maintenance-efficiency columns — hints emitted/coalesced/dropped,
// targeted repairs vs full sweeps, pool busy time and worker utilization —
// so the sub-linear-maintenance-CPU claim of hint-driven maintenance is
// verifiable from the output alone. -maint-pacing sweeps the per-shard
// hint-drain pacing gap (forest.WithMaintPacing; 0 keeps the 2ms default).
//
// One aggregate CSV row is always printed; with -shards > 1 a per-shard
// breakdown row ("shard,<i>,...") follows for each shard.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/durable"
	"repro/internal/stm"
	"repro/internal/trees"
)

// obsReadyFunc announces the observability endpoint's bound address on
// stderr, which is what makes "-obs :0" usable. Nil when -obs is off.
func obsReadyFunc(addr string) func(string) {
	if addr == "" {
		return nil
	}
	return func(bound string) {
		fmt.Fprintf(os.Stderr, "microbench: observability endpoint on %s\n", bound)
	}
}

func main() {
	tree := flag.String("tree", "sf", "tree kind: sf|sf-opt|rb|avl|nr")
	mode := flag.String("mode", "ctl", "TM algorithm: ctl|etl|elastic")
	threads := flag.Int("threads", 1, "worker goroutines")
	update := flag.Int("update", 10, "attempted update percentage")
	movePct := flag.Int("move", 0, "move-operation percentage (within updates)")
	keyRange := flag.Uint64("range", 1<<13, "key range (expected size = range/2)")
	duration := flag.Duration("duration", time.Second, "measurement duration")
	biased := flag.Bool("biased", false, "biased workload (insert-high/delete-low)")
	attempted := flag.Bool("attempted", false, "use attempted updates instead of effective")
	seed := flag.Int64("seed", 42, "workload seed")
	shards := flag.Int("shards", 1, "key-space shards (1 = the paper's single-domain tree)")
	cm := flag.String("cm", "backoff", "contention manager: suicide|backoff|karma")
	dist := flag.String("dist", "uniform", "key distribution: uniform|zipf")
	zipfS := flag.Float64("zipf-s", bench.DefaultZipfS, "zipf skew exponent (with -dist zipf)")
	rangeFrac := flag.Float64("range-frac", 0, "fraction of operations that are ordered range scans (0..1)")
	rangeLen := flag.Uint64("range-len", bench.DefaultRangeLen, "key-space width of each range-scan window")
	xactFrac := flag.Float64("xact-frac", 0, "fraction of operations that are multi-key transfer transactions (0..1)")
	xactKeys := flag.Int("xact-keys", bench.DefaultXactKeys, "keys touched by each transfer transaction (>= 2)")
	xactCross := flag.Float64("xact-cross", 1, "fraction of transfers drawn freely across shards; the rest are confined to one shard (0..1)")
	maintWorkers := flag.Int("maint-workers", 0, "shared maintenance pool size on a sharded run (0 = default)")
	maintPacing := flag.Duration("maint-pacing", 0, "per-shard hint-drain pacing gap on a sharded run (0 = forest default, 2ms)")
	batch := flag.Int("batch", 0, "per-shard op-combiner batch capacity (<= 1 disables batching; > 1 forces the forest path)")
	batchWait := flag.Duration("batch-wait", 0, "with -batch: how long a batch runner lingers for more ops (0 = drain-only)")
	durableFlag := flag.Bool("durable", false, "attach a write-ahead log (temp dir) and time a post-run recovery")
	fsync := flag.Bool("fsync", false, "with -durable: fsync before every update returns instead of group commit")
	ckptEvery := flag.Duration("checkpoint-every", 0, "with -durable: periodic checkpoint interval (0 = 500ms, negative disables)")
	ckptCompact := flag.Int("ckpt-compact", 0, "with -durable: fold the delta chain into a fresh full base after this many incremental checkpoints (0 = default, negative = every checkpoint full)")
	yieldEvery := flag.Int("yield", 0, "STM interleaving simulation: yield every N accesses (0 off)")
	obsAddr := flag.String("obs", "", "serve the live observability endpoint (/metrics, /snapshot, /flight, /trace, /debug/pprof) on this address during the run, e.g. :9100")
	trace := flag.Int("trace", 0, "sample one in N operations into the span tracer (0 disables; > 0 forces the forest path)")
	header := flag.Bool("header", false, "print the CSV header line first")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile of the run to this file")
	flag.Parse()

	var m stm.Mode
	switch *mode {
	case "ctl":
		m = stm.CTL
	case "etl":
		m = stm.ETL
	case "elastic":
		m = stm.Elastic
	default:
		fmt.Fprintf(os.Stderr, "microbench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	kind := trees.Kind(*tree)
	found := false
	for _, k := range trees.Kinds() {
		if k == kind {
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "microbench: unknown tree %q\n", *tree)
		os.Exit(2)
	}
	if _, err := stm.ManagerByName(*cm); err != nil {
		fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
		os.Exit(2)
	}
	var d bench.Dist
	switch bench.Dist(*dist) {
	case bench.DistUniform, bench.DistZipf:
		d = bench.Dist(*dist)
	default:
		fmt.Fprintf(os.Stderr, "microbench: unknown distribution %q (have %v)\n", *dist, bench.Dists())
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "microbench: -shards must be >= 1")
		os.Exit(2)
	}
	if *zipfS <= 0 {
		fmt.Fprintln(os.Stderr, "microbench: -zipf-s must be > 0")
		os.Exit(2)
	}
	if *rangeFrac < 0 || *rangeFrac >= 1 {
		fmt.Fprintln(os.Stderr, "microbench: -range-frac must be in [0, 1)")
		os.Exit(2)
	}
	if *rangeLen == 0 {
		fmt.Fprintln(os.Stderr, "microbench: -range-len must be >= 1")
		os.Exit(2)
	}
	if *maintWorkers < 0 {
		fmt.Fprintln(os.Stderr, "microbench: -maint-workers must be >= 0")
		os.Exit(2)
	}
	if *xactFrac < 0 || *xactFrac >= 1 {
		fmt.Fprintln(os.Stderr, "microbench: -xact-frac must be in [0, 1)")
		os.Exit(2)
	}
	if *rangeFrac+*xactFrac >= 1 {
		fmt.Fprintln(os.Stderr, "microbench: -range-frac + -xact-frac must be < 1 (the remainder is the plain operation mix)")
		os.Exit(2)
	}
	if *xactKeys < 2 {
		fmt.Fprintln(os.Stderr, "microbench: -xact-keys must be >= 2")
		os.Exit(2)
	}
	if *xactCross < 0 || *xactCross > 1 {
		fmt.Fprintln(os.Stderr, "microbench: -xact-cross must be in [0, 1]")
		os.Exit(2)
	}
	if *maintPacing < 0 {
		fmt.Fprintln(os.Stderr, "microbench: -maint-pacing must be >= 0")
		os.Exit(2)
	}
	if (*fsync || *ckptEvery != 0 || *ckptCompact != 0) && !*durableFlag {
		fmt.Fprintln(os.Stderr, "microbench: -fsync, -checkpoint-every and -ckpt-compact require -durable")
		os.Exit(2)
	}
	if *batch < 0 {
		fmt.Fprintln(os.Stderr, "microbench: -batch must be >= 0")
		os.Exit(2)
	}
	if *batchWait != 0 && *batch <= 1 {
		fmt.Fprintln(os.Stderr, "microbench: -batch-wait requires -batch > 1")
		os.Exit(2)
	}
	if *trace < 0 {
		fmt.Fprintln(os.Stderr, "microbench: -trace must be >= 0")
		os.Exit(2)
	}
	if *obsAddr != "" {
		// Catch address typos here with a bind probe: the bench layer treats
		// a listen failure as a programming error and panics.
		probe, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "microbench: -obs %s: %v\n", *obsAddr, err)
			os.Exit(2)
		}
		probe.Close()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	res := bench.Run(bench.Options{
		Kind:     kind,
		Mode:     m,
		Threads:  *threads,
		Duration: *duration,
		Workload: bench.Workload{
			KeyRange:      *keyRange,
			UpdatePercent: *update,
			MovePercent:   *movePct,
			Biased:        *biased,
			Effective:     !*attempted,
			Dist:          d,
			ZipfS:         *zipfS,
			RangeFrac:     *rangeFrac,
			RangeLen:      *rangeLen,
			XactFrac:      *xactFrac,
			XactKeys:      *xactKeys,
			XactCrossFrac: *xactCross,
		},
		Seed:              *seed,
		Shards:            *shards,
		CM:                *cm,
		YieldEvery:        *yieldEvery,
		MaintWorkers:      *maintWorkers,
		MaintPacing:       *maintPacing,
		Batch:             *batch,
		BatchWait:         *batchWait,
		Durable:           *durableFlag,
		Fsync:             *fsync,
		DurableCheckpoint: *ckptEvery,
		DurableCompact:    *ckptCompact,
		TraceEvery:        *trace,
		ObsAddr:           *obsAddr,
		// ObsReady alone would switch the endpoint on, so only set it when
		// -obs asked for one; it resolves ":0"-style addresses for the user.
		ObsReady: obsReadyFunc(*obsAddr),
	})

	// The ckpt_compact key column reports the effective compaction period
	// (the durable default when the flag is 0), so rows match across
	// artifacts whether or not the flag was spelled out.
	compactCol := *ckptCompact
	if compactCol == 0 {
		compactCol = durable.DefaultCompactEvery
	}

	if *header {
		fmt.Println("tree,mode,threads,shards,cm,dist,update,move,biased,range,range_frac,range_len,xact_frac,xact_keys,xact_cross,batch,duration_s,ops,throughput_ops_per_us,effective_ratio,allocs_per_op,bytes_per_op,range_scans,range_items,xact_ops,xact_moved,xact_commits,xact_fallbacks,xact_aborts,xact_intent_conflicts,commits,aborts,abort_rate,retries,backoff_ms,max_op_reads,spin_exhausted,rotations,maint_workers,hints_emitted,hints_coalesced,hints_dropped,targeted_repairs,sweep_passes,maint_busy_ms,worker_util,durable,fsync,ckpt_compact,wal_records,wal_atomic_records,wal_bytes,wal_syncs,wal_stalls,wal_dropped,checkpoints,delta_checkpoints,checkpoint_pairs,ckpt_bytes,ckpt_dirty_frac,recovery_ms,recovery_ns,recovery_appliers,recovery_deltas,recovered_keys,batched_ops,batches,avg_batch,p50_ns,p99_ns,aborts_validation,aborts_lock_wait,aborts_spin,aborts_explicit,aborts_coordinated,structural_commits,structural_aborts,gc_pause_p99_ns,goroutines")
	}
	fmt.Printf("%s,%s,%d,%d,%s,%s,%d,%d,%t,%d,%.3f,%d,%.3f,%d,%.3f,%d,%.3f,%d,%.3f,%.3f,%.4f,%.2f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%d,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.4f,%t,%t,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%.3f,%d,%d,%d,%d,%d,%d,%.2f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
		kind, m, res.Threads, res.Shards, res.CM, res.Dist, *update, *movePct, *biased, *keyRange,
		*rangeFrac, *rangeLen, *xactFrac, *xactKeys, *xactCross, res.Batch,
		res.Elapsed.Seconds(), res.Ops, res.Throughput, res.EffectiveRatio,
		res.AllocsPerOp, res.BytesPerOp,
		res.RangeOps, res.RangeItems,
		res.XactOps, res.XactMoves, res.Xact.Commits, res.Xact.Fallbacks,
		res.Xact.Aborts, res.Xact.IntentConflicts,
		res.STM.Commits, res.STM.Aborts, res.STM.AbortRate(), res.STM.Retries,
		float64(res.STM.BackoffNanos)/1e6, res.STM.MaxOpReads, res.STM.SpinExhausted, res.Rotations,
		res.Pool.Workers, res.TreeStats.HintsEmitted, res.TreeStats.HintsCoalesced,
		res.TreeStats.HintsDropped, res.TreeStats.TargetedRepairs, res.TreeStats.Passes,
		float64(res.Pool.BusyNanos)/1e6, res.WorkerUtilization(),
		res.Durable, *fsync, compactCol, res.Wal.Records, res.Wal.AtomicRecords, res.Wal.Bytes,
		res.Wal.Syncs, res.Wal.Stalls, res.Wal.Dropped,
		res.Wal.Checkpoints, res.Wal.DeltaCheckpoints, res.Wal.CheckpointPairs,
		res.Wal.CheckpointBytes, res.CheckpointDirtyFrac(),
		float64(res.RecoveryNanos)/1e6, res.RecoveryNanos, res.RecoveryAppliers,
		res.RecoveryDeltas, res.RecoveredPairs,
		res.BatchedOps, res.Batches, res.AvgBatch, res.P50Nanos, res.P99Nanos,
		res.STM.AbortCauses[stm.AbortValidation], res.STM.AbortCauses[stm.AbortLockWait],
		res.STM.AbortCauses[stm.AbortSpinExhausted], res.STM.AbortCauses[stm.AbortExplicit],
		res.STM.AbortCauses[stm.AbortCoordinated],
		res.STM.StructuralCommits, res.STM.StructuralAborts,
		res.GCPauseP99Nanos, res.Goroutines)
	for si, sr := range res.PerShard {
		fmt.Printf("shard,%d,ops,%d,throughput_ops_per_us,%.3f,commits,%d,aborts,%d,abort_rate,%.4f\n",
			si, sr.Ops, sr.Throughput, sr.STM.Commits, sr.STM.Aborts, sr.STM.AbortRate())
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // flush the allocation accounting up to the run's end
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}
