// Command microbench runs one synchrobench-style integer-set benchmark and
// prints a single CSV row, mirroring the micro-benchmark of the paper's
// §5.2–5.4. Example:
//
//	microbench -tree sf-opt -threads 8 -update 20 -duration 2s -range 8192
//	microbench -tree rb -mode elastic -update 10
//	microbench -tree nr -biased -update 20
//
// Trees: sf, sf-opt, rb, avl, nr. Modes: ctl, etl, elastic.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/stm"
	"repro/internal/trees"
)

func main() {
	tree := flag.String("tree", "sf", "tree kind: sf|sf-opt|rb|avl|nr")
	mode := flag.String("mode", "ctl", "TM algorithm: ctl|etl|elastic")
	threads := flag.Int("threads", 1, "worker goroutines")
	update := flag.Int("update", 10, "attempted update percentage")
	movePct := flag.Int("move", 0, "move-operation percentage (within updates)")
	keyRange := flag.Uint64("range", 1<<13, "key range (expected size = range/2)")
	duration := flag.Duration("duration", time.Second, "measurement duration")
	biased := flag.Bool("biased", false, "biased workload (insert-high/delete-low)")
	attempted := flag.Bool("attempted", false, "use attempted updates instead of effective")
	seed := flag.Int64("seed", 42, "workload seed")
	yieldEvery := flag.Int("yield", 0, "STM interleaving simulation: yield every N accesses (0 off)")
	header := flag.Bool("header", false, "print the CSV header line first")
	flag.Parse()

	var m stm.Mode
	switch *mode {
	case "ctl":
		m = stm.CTL
	case "etl":
		m = stm.ETL
	case "elastic":
		m = stm.Elastic
	default:
		fmt.Fprintf(os.Stderr, "microbench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	kind := trees.Kind(*tree)
	found := false
	for _, k := range trees.Kinds() {
		if k == kind {
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "microbench: unknown tree %q\n", *tree)
		os.Exit(2)
	}

	res := bench.Run(bench.Options{
		Kind:     kind,
		Mode:     m,
		Threads:  *threads,
		Duration: *duration,
		Workload: bench.Workload{
			KeyRange:      *keyRange,
			UpdatePercent: *update,
			MovePercent:   *movePct,
			Biased:        *biased,
			Effective:     !*attempted,
		},
		Seed:       *seed,
		YieldEvery: *yieldEvery,
	})

	if *header {
		fmt.Println("tree,mode,threads,update,move,biased,range,duration_s,ops,throughput_ops_per_us,effective_ratio,commits,aborts,abort_rate,max_op_reads,rotations")
	}
	fmt.Printf("%s,%s,%d,%d,%d,%t,%d,%.3f,%d,%.3f,%.3f,%d,%d,%.4f,%d,%d\n",
		kind, m, res.Threads, *update, *movePct, *biased, *keyRange,
		res.Elapsed.Seconds(), res.Ops, res.Throughput, res.EffectiveRatio,
		res.STM.Commits, res.STM.Aborts, res.STM.AbortRate(),
		res.STM.MaxOpReads, res.Rotations)
}
