// Command benchdiff is the performance regression gate over the BENCH_*.json
// artifacts that cmd/benchjson emits (see the Makefile's bench-json target).
// It matches rows between a baseline artifact and a new one by their workload
// configuration (tree, mode, threads, shards, distribution, update mix, …),
// compares a metric (throughput_ops_per_us by default), and fails — exit
// status 1 — when any matched row regresses by more than the threshold.
//
//	benchdiff BENCH_2026-07-29.json BENCH_2026-08-08.json
//	benchdiff -threshold 0.25 baseline.json new.json
//	benchdiff new.json              # baseline = newest other BENCH_*.json
//	benchdiff                       # newest two BENCH_*.json in -dir
//	benchdiff -plot trajectory.svg  # also render the whole series
//
// With one positional argument that file is the "new" side and the baseline
// is the newest BENCH_*.json in -dir that is not the new file; with none,
// the two newest artifacts in -dir are compared (older as baseline). File
// order is by name — the BENCH_<date>.json convention makes lexicographic
// order chronological.
//
// Rows present on only one side are reported but never fail the gate (the
// bench-json recipe grows new configurations over time). -plot writes an
// SVG trajectory chart: one line per configuration across every BENCH_*.json
// in -dir, so a slow drift is visible even when each single diff passes.
//
// -runs N treats each artifact's duplicate-key rows as N repetitions of
// one configuration and collapses each group to its median row by -metric
// before comparing (a warning is printed when a group's size is not N).
// Use it on artifacts recorded by repeating the whole microbench sweep
// rather than through benchjson -runs; without the flag duplicate keys
// keep their occurrence-order pairing, which is what the bench-json
// recipe's intentional duplicates (same config, different pool size) need.
//
// Thresholds should respect the noise floor of the host: on small CI
// machines run-to-run variance of the multi-thread rows easily exceeds 10%,
// which is why the CI smoke gate runs with a lenient -threshold (see
// .github/workflows/bench.yml) and why the single-thread rows are the ones
// worth gating tightly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// keyCols are the workload-configuration columns that identify a row across
// artifacts.
var keyCols = []string{
	"tree", "mode", "threads", "shards", "cm", "dist",
	"update", "move", "biased", "range",
	"range_frac", "range_len", "xact_frac", "xact_keys", "xact_cross",
	"batch", "durable", "fsync", "ckpt_compact",
}

// keyDefaults supplies the value a key column had before it existed: the
// microbench CSV grew the xact and durability columns over time, and an old
// artifact's rows were implicitly recorded at these flag defaults. Rendering
// a missing column as its default lets old baselines keep matching new rows
// (JSON numbers decode as float64, so defaults are spelled that way too).
var keyDefaults = map[string]any{
	"move":       0.0,
	"biased":     false,
	"range_frac": 0.0,
	"xact_frac":  0.0,
	"xact_keys":  4.0,
	"xact_cross": 1.0,
	"batch":      0.0,
	"durable":    false,
	"fsync":      false,
	// Incremental checkpointing shipped with a default compaction period of
	// 8; artifacts from before the column existed ran at exactly that value.
	"ckpt_compact": 8.0,
}

// artifact is one parsed BENCH_*.json file.
type artifact struct {
	Path        string
	GeneratedAt string           `json:"generated_at"`
	Rows        []map[string]any `json:"rows"`
}

func loadArtifact(path string) (*artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := &artifact{Path: path}
	if err := json.Unmarshal(data, a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// rowKey renders a row's configuration columns into a stable matching key.
func rowKey(row map[string]any) string {
	parts := make([]string, 0, len(keyCols))
	for _, c := range keyCols {
		v, ok := row[c]
		if !ok {
			if d, has := keyDefaults[c]; has {
				v = d
			} else {
				parts = append(parts, c+"=")
				continue
			}
		}
		parts = append(parts, fmt.Sprintf("%s=%v", c, v))
	}
	return strings.Join(parts, " ")
}

// shortKey is the human-readable row label used in reports.
func shortKey(row map[string]any) string {
	get := func(c string) any {
		if v, ok := row[c]; ok {
			return v
		}
		return ""
	}
	s := fmt.Sprintf("%v t%v s%v u%v %v", get("tree"), get("threads"),
		get("shards"), get("update"), get("dist"))
	if xf, ok := row["xact_frac"]; ok && fmt.Sprintf("%v", xf) != "0" {
		s += fmt.Sprintf(" xact%v", xf)
	}
	if d, ok := row["durable"]; ok && d == true {
		s += " durable"
	}
	return s
}

func metricOf(row map[string]any, metric string) (float64, bool) {
	v, ok := row[metric]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case float64:
		return n, true
	case int64:
		return float64(n), true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	}
	return 0, false
}

// diffLine is one matched row's comparison.
type diffLine struct {
	Label      string
	Base, New  float64
	Delta      float64 // (new-base)/base; negative = regression for higher-is-better
	Regression bool
}

// report holds the outcome of one baseline/new comparison.
type report struct {
	Lines     []diffLine
	BaseOnly  []string // row labels present only in the baseline
	NewOnly   []string // row labels present only in the new artifact
	Regressed int
}

// compare matches rows by configuration key and flags any matched row whose
// metric dropped by more than threshold (fractional; higher metric = better).
// Rows sharing a key (the bench-json recipe repeats a configuration with a
// different maintenance-pool size, which is not a CSV config column) are
// disambiguated by occurrence order, pairing the nth duplicate with the nth.
func compare(base, next *artifact, metric string, threshold float64) report {
	var rep report
	occKey := func(seen map[string]int, r map[string]any) string {
		k := rowKey(r)
		n := seen[k]
		seen[k] = n + 1
		return fmt.Sprintf("%s#%d", k, n)
	}
	baseRows := make(map[string]map[string]any, len(base.Rows))
	baseSeen := make(map[string]int)
	for _, r := range base.Rows {
		baseRows[occKey(baseSeen, r)] = r
	}
	matched := make(map[string]bool)
	nextSeen := make(map[string]int)
	for _, nr := range next.Rows {
		k := occKey(nextSeen, nr)
		br, ok := baseRows[k]
		if !ok {
			rep.NewOnly = append(rep.NewOnly, shortKey(nr))
			continue
		}
		matched[k] = true
		bv, bok := metricOf(br, metric)
		nv, nok := metricOf(nr, metric)
		if !bok || !nok || bv == 0 {
			continue
		}
		delta := (nv - bv) / bv
		line := diffLine{
			Label: shortKey(nr), Base: bv, New: nv, Delta: delta,
			Regression: delta < -threshold,
		}
		if line.Regression {
			rep.Regressed++
		}
		rep.Lines = append(rep.Lines, line)
	}
	for k, br := range baseRows {
		if !matched[k] {
			rep.BaseOnly = append(rep.BaseOnly, shortKey(br))
		}
	}
	sort.Slice(rep.Lines, func(i, j int) bool { return rep.Lines[i].Label < rep.Lines[j].Label })
	sort.Strings(rep.BaseOnly)
	sort.Strings(rep.NewOnly)
	return rep
}

// collapseRuns groups rows by configuration key and replaces each group
// with its median row by metric (lower median for even sizes), preserving
// first-occurrence order. Groups whose size differs from the expected run
// count draw a warning but still collapse — a truncated artifact should
// gate on what it has rather than fail to parse.
func collapseRuns(rows []map[string]any, metric string, runs int, name string) []map[string]any {
	groups := make(map[string][]map[string]any)
	var order []string
	for _, r := range rows {
		k := rowKey(r)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	out := make([]map[string]any, 0, len(order))
	for _, k := range order {
		g := groups[k]
		if len(g) != runs {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %q has %d repetitions, expected %d\n",
				name, shortKey(g[0]), len(g), runs)
		}
		sort.SliceStable(g, func(i, j int) bool {
			vi, _ := metricOf(g[i], metric)
			vj, _ := metricOf(g[j], metric)
			return vi < vj
		})
		out = append(out, g[(len(g)-1)/2])
	}
	return out
}

// discover returns the BENCH_*.json files in dir, sorted by name (the
// BENCH_<date>.json convention makes that chronological).
func discover(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func main() {
	metric := flag.String("metric", "throughput_ops_per_us", "row metric to compare (higher is better)")
	threshold := flag.Float64("threshold", 0.10, "max allowed fractional regression before failing")
	dir := flag.String("dir", ".", "directory searched for BENCH_*.json artifacts")
	plot := flag.String("plot", "", "write an SVG trajectory chart of every artifact in -dir to this file")
	runsN := flag.Int("runs", 1, "collapse each artifact's duplicate-key rows (N repetitions per configuration) to their median row before comparing")
	flag.Parse()
	if *runsN < 1 {
		fmt.Fprintln(os.Stderr, "benchdiff: -runs must be >= 1")
		os.Exit(2)
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
		os.Exit(2)
	}

	var basePath, newPath string
	switch flag.NArg() {
	case 2:
		basePath, newPath = flag.Arg(0), flag.Arg(1)
	case 1:
		newPath = flag.Arg(0)
		all, err := discover(*dir)
		if err != nil {
			fail("%v", err)
		}
		abs := func(p string) string { a, _ := filepath.Abs(p); return a }
		for i := len(all) - 1; i >= 0; i-- {
			if abs(all[i]) != abs(newPath) {
				basePath = all[i]
				break
			}
		}
		if basePath == "" {
			fail("no baseline BENCH_*.json found in %s besides %s", *dir, newPath)
		}
	case 0:
		all, err := discover(*dir)
		if err != nil {
			fail("%v", err)
		}
		if *plot != "" && len(all) > 0 {
			// Plot-only invocation: a single artifact still yields a chart.
			if len(all) < 2 {
				if err := writePlot(*plot, all, *metric); err != nil {
					fail("%v", err)
				}
				fmt.Printf("wrote %s (%d artifacts; nothing to diff)\n", *plot, len(all))
				return
			}
		}
		if len(all) < 2 {
			fail("need at least two BENCH_*.json in %s (found %d)", *dir, len(all))
		}
		basePath, newPath = all[len(all)-2], all[len(all)-1]
	default:
		fail("usage: benchdiff [flags] [baseline.json [new.json]]")
	}

	base, err := loadArtifact(basePath)
	if err != nil {
		fail("%v", err)
	}
	next, err := loadArtifact(newPath)
	if err != nil {
		fail("%v", err)
	}

	if *runsN > 1 {
		base.Rows = collapseRuns(base.Rows, *metric, *runsN, filepath.Base(basePath))
		next.Rows = collapseRuns(next.Rows, *metric, *runsN, filepath.Base(newPath))
	}

	rep := compare(base, next, *metric, *threshold)
	fmt.Printf("benchdiff: %s -> %s  (metric %s, threshold %.0f%%)\n",
		filepath.Base(basePath), filepath.Base(newPath), *metric, *threshold*100)
	for _, l := range rep.Lines {
		mark := " "
		if l.Regression {
			mark = "!"
		}
		fmt.Printf("  %s %-40s %10.3f -> %10.3f  %+6.1f%%\n", mark, l.Label, l.Base, l.New, l.Delta*100)
	}
	for _, s := range rep.BaseOnly {
		fmt.Printf("    baseline-only row (not gated): %s\n", s)
	}
	for _, s := range rep.NewOnly {
		fmt.Printf("    new-only row (not gated): %s\n", s)
	}

	if *plot != "" {
		all, err := discover(*dir)
		if err != nil {
			fail("%v", err)
		}
		if err := writePlot(*plot, all, *metric); err != nil {
			fail("%v", err)
		}
		fmt.Printf("wrote %s (%d artifacts)\n", *plot, len(all))
	}

	if rep.Regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d row(s) regressed beyond %.0f%%\n", rep.Regressed, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regression beyond threshold")
}
