package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseJSON = `{
  "generated_at": "2026-07-29T00:00:00Z",
  "rows": [
    {"tree":"sf-opt","mode":"CTL","threads":1,"shards":1,"cm":"backoff","dist":"uniform",
     "update":20,"move":0,"biased":false,"range":8192,
     "range_frac":0,"range_len":100,"xact_frac":0,"xact_keys":4,"xact_cross":1,
     "durable":false,"fsync":false,"throughput_ops_per_us":2.0},
    {"tree":"sf-opt","mode":"CTL","threads":4,"shards":8,"cm":"backoff","dist":"zipf",
     "update":20,"move":0,"biased":false,"range":8192,
     "range_frac":0,"range_len":100,"xact_frac":0,"xact_keys":4,"xact_cross":1,
     "durable":false,"fsync":false,"throughput_ops_per_us":5.0},
    {"tree":"nr","mode":"CTL","threads":1,"shards":1,"cm":"backoff","dist":"uniform",
     "update":20,"move":0,"biased":false,"range":8192,
     "range_frac":0,"range_len":100,"xact_frac":0,"xact_keys":4,"xact_cross":1,
     "durable":false,"fsync":false,"throughput_ops_per_us":1.0}
  ]
}`

const newJSON = `{
  "generated_at": "2026-08-08T00:00:00Z",
  "rows": [
    {"tree":"sf-opt","mode":"CTL","threads":1,"shards":1,"cm":"backoff","dist":"uniform",
     "update":20,"move":0,"biased":false,"range":8192,
     "range_frac":0,"range_len":100,"xact_frac":0,"xact_keys":4,"xact_cross":1,
     "durable":false,"fsync":false,"throughput_ops_per_us":3.0},
    {"tree":"sf-opt","mode":"CTL","threads":4,"shards":8,"cm":"backoff","dist":"zipf",
     "update":20,"move":0,"biased":false,"range":8192,
     "range_frac":0,"range_len":100,"xact_frac":0,"xact_keys":4,"xact_cross":1,
     "durable":false,"fsync":false,"throughput_ops_per_us":4.0},
    {"tree":"avl","mode":"CTL","threads":1,"shards":1,"cm":"backoff","dist":"uniform",
     "update":20,"move":0,"biased":false,"range":8192,
     "range_frac":0,"range_len":100,"xact_frac":0,"xact_keys":4,"xact_cross":1,
     "durable":false,"fsync":false,"throughput_ops_per_us":1.5}
  ]
}`

func TestCompareMatchingAndThreshold(t *testing.T) {
	dir := t.TempDir()
	bp := writeArtifact(t, dir, "BENCH_2026-07-29.json", baseJSON)
	np := writeArtifact(t, dir, "BENCH_2026-08-08.json", newJSON)
	base, err := loadArtifact(bp)
	if err != nil {
		t.Fatal(err)
	}
	next, err := loadArtifact(np)
	if err != nil {
		t.Fatal(err)
	}

	// 10% threshold: the 8-shard row dropped 5.0 -> 4.0 (-20%), regression;
	// the single-thread row improved (no regression); nr is baseline-only,
	// avl is new-only, neither gated.
	rep := compare(base, next, "throughput_ops_per_us", 0.10)
	if len(rep.Lines) != 2 {
		t.Fatalf("matched lines = %d, want 2 (%+v)", len(rep.Lines), rep.Lines)
	}
	if rep.Regressed != 1 {
		t.Fatalf("regressed = %d, want 1", rep.Regressed)
	}
	for _, l := range rep.Lines {
		wantReg := strings.Contains(l.Label, "s8")
		if l.Regression != wantReg {
			t.Errorf("row %q regression = %v, want %v (delta %.2f)", l.Label, l.Regression, wantReg, l.Delta)
		}
	}
	if len(rep.BaseOnly) != 1 || !strings.Contains(rep.BaseOnly[0], "nr") {
		t.Errorf("BaseOnly = %v, want one nr row", rep.BaseOnly)
	}
	if len(rep.NewOnly) != 1 || !strings.Contains(rep.NewOnly[0], "avl") {
		t.Errorf("NewOnly = %v, want one avl row", rep.NewOnly)
	}

	// A lenient threshold passes the same pair.
	if rep := compare(base, next, "throughput_ops_per_us", 0.25); rep.Regressed != 0 {
		t.Errorf("at 25%% threshold regressed = %d, want 0", rep.Regressed)
	}
}

func TestRowKeyToleratesMissingColumns(t *testing.T) {
	// Old artifacts predate some config columns; a row without them must
	// still produce a stable key distinct from a row that differs in a
	// present column.
	a := map[string]any{"tree": "sf-opt", "threads": int64(1)}
	b := map[string]any{"tree": "sf-opt", "threads": int64(4)}
	if rowKey(a) == rowKey(b) {
		t.Fatal("rows differing in threads share a key")
	}
	if rowKey(a) != rowKey(map[string]any{"tree": "sf-opt", "threads": int64(1)}) {
		t.Fatal("identical rows produce different keys")
	}
}

func TestRowKeyMissingColumnMatchesDefault(t *testing.T) {
	// A pre-xact/durability row (the columns simply absent) must match a
	// new-format row recorded at those flags' defaults — and must NOT match
	// one recorded away from the defaults.
	old := map[string]any{"tree": "sf-opt", "threads": float64(4), "update": float64(20)}
	newDefault := map[string]any{
		"tree": "sf-opt", "threads": float64(4), "update": float64(20),
		"xact_frac": float64(0), "xact_keys": float64(4), "xact_cross": float64(1),
		"durable": false, "fsync": false, "move": float64(0), "biased": false,
		"range_frac": float64(0),
	}
	newXact := map[string]any{
		"tree": "sf-opt", "threads": float64(4), "update": float64(20),
		"xact_frac": float64(0.2), "xact_keys": float64(4), "xact_cross": float64(1),
		"durable": false, "fsync": false, "move": float64(0), "biased": false,
		"range_frac": float64(0),
	}
	if rowKey(old) != rowKey(newDefault) {
		t.Fatalf("old-format row does not match new row at defaults:\n  %s\n  %s",
			rowKey(old), rowKey(newDefault))
	}
	if rowKey(old) == rowKey(newXact) {
		t.Fatal("old-format row wrongly matches a non-default xact row")
	}
}

func TestDiscoverOrder(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "BENCH_2026-08-08.json", newJSON)
	writeArtifact(t, dir, "BENCH_2026-07-29.json", baseJSON)
	writeArtifact(t, dir, "not-a-bench.json", "{}")
	got, err := discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("discover found %d files, want 2: %v", len(got), got)
	}
	if filepath.Base(got[0]) != "BENCH_2026-07-29.json" || filepath.Base(got[1]) != "BENCH_2026-08-08.json" {
		t.Fatalf("discover order wrong: %v", got)
	}
}

func TestWritePlot(t *testing.T) {
	dir := t.TempDir()
	bp := writeArtifact(t, dir, "BENCH_2026-07-29.json", baseJSON)
	np := writeArtifact(t, dir, "BENCH_2026-08-08.json", newJSON)
	out := filepath.Join(dir, "trajectory.svg")
	if err := writePlot(out, []string{bp, np}, "throughput_ops_per_us"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	svg := string(data)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("output is not an SVG document")
	}
	// Both artifact dates appear as x labels, and at least one series line.
	for _, want := range []string{"2026-07-29", "2026-08-08", "<polyline", "sf-opt"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// A metric nobody recorded is an error, not an empty chart.
	if err := writePlot(out, []string{bp}, "no_such_metric"); err == nil {
		t.Error("writePlot with unknown metric should fail")
	}
}
