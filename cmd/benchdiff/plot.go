package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// writePlot renders the metric's trajectory across the given artifacts (in
// order) as a hand-rolled SVG line chart: one polyline per row configuration,
// x = artifact index (labeled with the file's date suffix), y = metric. A
// configuration missing from some artifacts simply has gaps (the polyline
// connects the points that exist).
func writePlot(path string, artifactPaths []string, metric string) error {
	type point struct {
		x int
		y float64
	}
	series := make(map[string][]point) // shortKey -> points
	var labels []string
	for i, p := range artifactPaths {
		a, err := loadArtifact(p)
		if err != nil {
			return err
		}
		labels = append(labels, dateLabel(p))
		for _, row := range a.Rows {
			v, ok := metricOf(row, metric)
			if !ok {
				continue
			}
			k := shortKey(row)
			series[k] = append(series[k], point{x: i, y: v})
		}
	}
	if len(series) == 0 {
		return fmt.Errorf("plot: no rows with metric %q in %d artifact(s)", metric, len(artifactPaths))
	}

	names := make([]string, 0, len(series))
	maxY := 0.0
	for k, pts := range series {
		names = append(names, k)
		for _, pt := range pts {
			if pt.y > maxY {
				maxY = pt.y
			}
		}
	}
	sort.Strings(names)
	if maxY == 0 {
		maxY = 1
	}

	const (
		w, h         = 860, 420
		padL, padR   = 60, 230 // right pad holds the legend
		padT, padB   = 30, 50
		plotW, plotH = w - padL - padR, h - padT - padB
	)
	nX := len(artifactPaths)
	xAt := func(i int) float64 {
		if nX <= 1 {
			return padL + plotW/2
		}
		return padL + float64(i)*float64(plotW)/float64(nX-1)
	}
	yAt := func(v float64) float64 { return padT + plotH - v/maxY*plotH }

	palette := []string{
		"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
		"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14">%s trajectory (BENCH_*.json)</text>`+"\n", padL, metric)

	// Axes and y gridlines.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", padL, padT, padL, padT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", padL, padT+plotH, padL+plotW, padT+plotH)
	for g := 0; g <= 4; g++ {
		v := maxY * float64(g) / 4
		y := yAt(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", padL, y, padL+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n", padL-6, y+4, trimFloat(v))
	}
	for i, lab := range labels {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n", xAt(i), padT+plotH+16, lab)
	}

	for si, name := range names {
		color := palette[si%len(palette)]
		pts := series[name]
		var coords []string
		for _, pt := range pts {
			coords = append(coords, fmt.Sprintf("%.1f,%.1f", xAt(pt.x), yAt(pt.y)))
		}
		if len(coords) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(coords, " "), color)
		}
		for _, pt := range pts {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n", xAt(pt.x), yAt(pt.y), color)
		}
		ly := padT + 14 + si*14
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", padL+plotW+16, ly-9, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", padL+plotW+30, ly, escapeXML(name))
	}

	b.WriteString("</svg>\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// dateLabel extracts the date from a BENCH_<date>.json filename, falling
// back to the bare file name.
func dateLabel(path string) string {
	name := strings.TrimSuffix(filepath.Base(path), ".json")
	return strings.TrimPrefix(name, "BENCH_")
}

// trimFloat renders an axis value without trailing noise.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
