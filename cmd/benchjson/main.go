// Command benchjson converts microbench CSV output into a JSON summary, so
// the repository's performance trajectory can be recorded as one artifact
// per benchmark session (see the Makefile's bench-json target, which writes
// BENCH_<date>.json).
//
// It reads CSV from stdin: the first non-shard line must be the header
// (microbench -header), subsequent lines are aggregate result rows.
// Per-shard breakdown rows ("shard,<i>,...") are skipped — the summary
// records the aggregate trajectory. Values that parse as numbers are
// emitted as JSON numbers, everything else as strings. The mapping is
// column-name driven, so new microbench columns (most recently the
// durability set: durable, fsync, wal_records, wal_atomic_records,
// wal_bytes, wal_syncs, checkpoints, checkpoint_pairs, recovery_ms,
// recovered_keys) flow into the JSON unchanged.
//
//	microbench -header ... | benchjson -out BENCH_2026-07-29.json
//
// -runs N aggregates repeated benchmark sessions into one artifact: stdin
// then holds N consecutive repetitions of the same row sequence (repeated
// header lines between repetitions are tolerated and skipped), and for
// each position in the sequence the emitted row is the median repetition
// by throughput_ops_per_us (lower median for even N), annotated with the
// run count and the min/max throughput observed. Medians wash out the
// run-to-run scheduler noise that makes single-run artifacts jumpy on
// small CI machines.
//
//	for i in 1 2 3; do microbench -header ...; done | benchjson -runs 3 -out BENCH_....json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	runs := flag.Int("runs", 1, "stdin holds this many repetitions of the row sequence; emit the median row per position")
	flag.Parse()
	if *runs < 1 {
		fmt.Fprintln(os.Stderr, "benchjson: -runs must be >= 1")
		os.Exit(2)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var header []string
	var headerLine string
	var rows []map[string]any
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "shard,") {
			continue
		}
		if header != nil && line == headerLine {
			// Repetitions re-print the header (-runs mode); skip the copies.
			continue
		}
		fields := strings.Split(line, ",")
		if header == nil {
			header = fields
			headerLine = line
			continue
		}
		if len(fields) != len(header) {
			fmt.Fprintf(os.Stderr, "benchjson: row has %d fields, header has %d; skipping: %s\n",
				len(fields), len(header), line)
			continue
		}
		row := make(map[string]any, len(header))
		for i, col := range header {
			row[col] = parseValue(fields[i])
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if header == nil {
		fmt.Fprintln(os.Stderr, "benchjson: no header line on stdin (run microbench with -header)")
		os.Exit(1)
	}

	if *runs > 1 {
		var err error
		rows, err = medianRows(rows, *runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	summary := map[string]any{
		"generated_at": time.Now().UTC().Format(time.RFC3339),
		"tool":         "microbench",
		"runs":         *runs,
		"rows":         rows,
	}
	enc, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d rows to %s\n", len(rows), *out)
}

// medianRows collapses n consecutive repetitions of one row sequence into
// the per-position median repetition by throughput_ops_per_us (lower
// median for even n), annotating each emitted row with the run count and
// the min/max throughput across its repetitions.
func medianRows(rows []map[string]any, n int) ([]map[string]any, error) {
	if len(rows)%n != 0 {
		return nil, fmt.Errorf("-runs %d does not divide the %d data rows on stdin", n, len(rows))
	}
	k := len(rows) / n
	tput := func(r map[string]any) float64 {
		if f, ok := r["throughput_ops_per_us"].(float64); ok {
			return f
		}
		if i, ok := r["throughput_ops_per_us"].(int64); ok {
			return float64(i)
		}
		return 0
	}
	out := make([]map[string]any, 0, k)
	for pos := 0; pos < k; pos++ {
		group := make([]map[string]any, 0, n)
		for rep := 0; rep < n; rep++ {
			group = append(group, rows[rep*k+pos])
		}
		sort.SliceStable(group, func(i, j int) bool { return tput(group[i]) < tput(group[j]) })
		med := group[(n-1)/2]
		med["runs"] = int64(n)
		med["throughput_min"] = tput(group[0])
		med["throughput_max"] = tput(group[n-1])
		out = append(out, med)
	}
	return out, nil
}

// parseValue renders numeric CSV fields as JSON numbers and booleans as
// booleans, leaving everything else a string.
func parseValue(s string) any {
	if s == "true" || s == "false" {
		return s == "true"
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
