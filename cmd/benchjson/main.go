// Command benchjson converts microbench CSV output into a JSON summary, so
// the repository's performance trajectory can be recorded as one artifact
// per benchmark session (see the Makefile's bench-json target, which writes
// BENCH_<date>.json).
//
// It reads CSV from stdin: the first non-shard line must be the header
// (microbench -header), subsequent lines are aggregate result rows.
// Per-shard breakdown rows ("shard,<i>,...") are skipped — the summary
// records the aggregate trajectory. Values that parse as numbers are
// emitted as JSON numbers, everything else as strings. The mapping is
// column-name driven, so new microbench columns (most recently the
// durability set: durable, fsync, wal_records, wal_atomic_records,
// wal_bytes, wal_syncs, checkpoints, checkpoint_pairs, recovery_ms,
// recovered_keys) flow into the JSON unchanged.
//
//	microbench -header ... | benchjson -out BENCH_2026-07-29.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var header []string
	var rows []map[string]any
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "shard,") {
			continue
		}
		fields := strings.Split(line, ",")
		if header == nil {
			header = fields
			continue
		}
		if len(fields) != len(header) {
			fmt.Fprintf(os.Stderr, "benchjson: row has %d fields, header has %d; skipping: %s\n",
				len(fields), len(header), line)
			continue
		}
		row := make(map[string]any, len(header))
		for i, col := range header {
			row[col] = parseValue(fields[i])
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if header == nil {
		fmt.Fprintln(os.Stderr, "benchjson: no header line on stdin (run microbench with -header)")
		os.Exit(1)
	}

	summary := map[string]any{
		"generated_at": time.Now().UTC().Format(time.RFC3339),
		"tool":         "microbench",
		"rows":         rows,
	}
	enc, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d rows to %s\n", len(rows), *out)
}

// parseValue renders numeric CSV fields as JSON numbers and booleans as
// booleans, leaving everything else a string.
func parseValue(s string) any {
	if s == "true" || s == "false" {
		return s == "true"
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
