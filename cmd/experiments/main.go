// Command experiments regenerates the tables and figures of "A
// Speculation-Friendly Binary Search Tree" (PPoPP 2012).
//
// Usage:
//
//	experiments [flags] table1|fig3|fig4|fig5a|fig5b|fig6|all
//
// Flags:
//
//	-full            run near paper-scale parameters (default: quick)
//	-threads list    comma-separated thread counts (default scale-dependent)
//	-duration d      per-cell measurement duration (default scale-dependent)
//	-seed n          workload seed (default 42)
//
// Each experiment prints text tables shaped like the paper's figures plus a
// one-line reminder of the paper's reported numbers, so the shape comparison
// is immediate. EXPERIMENTS.md records a full paper-vs-measured discussion.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run near paper-scale parameters")
	threads := flag.String("threads", "", "comma-separated thread counts")
	duration := flag.Duration("duration", 0, "per-cell measurement duration")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] table1|fig3|fig4|fig5a|fig5b|fig6|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	o := experiments.Opts{
		Out:      os.Stdout,
		Scale:    experiments.Quick,
		Duration: *duration,
		Seed:     *seed,
	}
	if *full {
		o.Scale = experiments.Full
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "experiments: bad thread count %q\n", part)
				os.Exit(2)
			}
			o.Threads = append(o.Threads, n)
		}
	}

	runners := map[string]func(experiments.Opts) error{
		"table1": experiments.Table1,
		"fig3":   experiments.Fig3,
		"fig4":   experiments.Fig4,
		"fig5a":  experiments.Fig5a,
		"fig5b":  experiments.Fig5b,
		"fig6":   experiments.Fig6,
	}
	name := flag.Arg(0)
	start := time.Now()
	if name == "all" {
		for _, n := range []string{"table1", "fig3", "fig4", "fig5a", "fig5b", "fig6"} {
			fmt.Printf("==== %s ====\n\n", n)
			if err := runners[n](o); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", n, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	} else {
		run, ok := runners[name]
		if !ok {
			flag.Usage()
			os.Exit(2)
		}
		if err := run(o); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("\n(total wall time %.1fs)\n", time.Since(start).Seconds())
}
