package repro

import (
	"testing"
	"time"
)

// TestMaintWorkersOption: the shared pool honours WithMaintWorkers and
// reports through MaintPoolStats; hint counters surface in
// MaintenanceStats.
func TestMaintWorkersOption(t *testing.T) {
	tr := NewTree(SpeculationFriendlyOptimized, WithShards(8), WithMaintWorkers(2))
	defer tr.Close()
	if got := tr.MaintPoolStats().Workers; got != 2 {
		t.Fatalf("Workers = %d, want 2", got)
	}
	h := tr.NewHandle()
	for k := uint64(0); k < 2048; k++ {
		h.Insert(k, k)
	}
	for k := uint64(0); k < 2048; k += 2 {
		h.Delete(k)
	}
	ms := tr.MaintenanceStats()
	if ms.HintsEmitted == 0 {
		t.Fatal("no hints emitted by committed updates")
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.MaintenanceStats().TargetedRepairs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool consumed no hints: %+v", tr.MaintenanceStats())
		}
		time.Sleep(time.Millisecond)
	}
	tr.Maintain(1 << 20)
	if bl := tr.MaintPoolStats().Backlog; bl != 0 {
		t.Fatalf("hint backlog %d after Maintain", bl)
	}
}

// TestMaintPoolStatsSingleDomain: the unsharded tree renders its own
// maintenance goroutine as a one-worker pool, and Workers drops to zero
// once Close stops it.
func TestMaintPoolStatsSingleDomain(t *testing.T) {
	tr := NewTree(SpeculationFriendly)
	h := tr.NewHandle()
	for k := uint64(0); k < 512; k++ {
		h.Insert(k, k)
	}
	if got := tr.MaintPoolStats().Workers; got != 1 {
		t.Fatalf("Workers = %d, want 1", got)
	}
	tr.Close()
	// Workers is the configured scheduler size and survives Close.
	if got := tr.MaintPoolStats().Workers; got != 1 {
		t.Fatalf("Workers = %d after Close, want 1 (configured size survives)", got)
	}
	// A tree built without maintenance reports zero workers.
	tr3 := NewTree(SpeculationFriendly, WithoutMaintenance())
	defer tr3.Close()
	if got := tr3.MaintPoolStats().Workers; got != 0 {
		t.Fatalf("Workers = %d with WithoutMaintenance, want 0", got)
	}
	// Kinds without maintenance report an all-zero pool.
	tr2 := NewTree(RedBlack)
	defer tr2.Close()
	if ps := tr2.MaintPoolStats(); ps.Workers != 0 {
		t.Fatalf("red-black tree reports maintenance workers: %+v", ps)
	}
}
