// Benchmarks: one testing.B entry point per table/figure of the paper's
// evaluation. These exercise exactly the code paths the cmd/experiments
// sweeps measure, but under `go test -bench` semantics (b.N operations,
// -benchmem allocation accounting). The full parameter sweeps that
// regenerate the paper's tables live in cmd/experiments; EXPERIMENTS.md
// maps each experiment to both.
//
// Custom metrics reported where the paper's metric is not time:
//
//	maxreads/op  – Table 1's maximum transactional reads per operation
//	aborts/op    – conflict pressure
//	rotations    – §5.5's structural-work comparison
package repro

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/sftree"
	"repro/internal/stm"
	"repro/internal/trees"
	"repro/internal/vacation"
)

// benchWorkers is the worker-goroutine count for the parallel benchmarks,
// matching the contention regime of the paper's mid-range configurations.
const benchWorkers = 8

// yieldEvery enables the STM interleaving simulation so transactions
// overlap even on hosts with fewer cores than workers (see stm.WithYield).
const yieldEvery = 8

// runTreeBench executes b.N operations of the given workload spread over
// benchWorkers goroutines against a freshly filled tree.
func runTreeBench(b *testing.B, kind trees.Kind, mode stm.Mode, wl bench.Workload) {
	b.Helper()
	s := stm.New(stm.WithMode(mode), stm.WithYield(yieldEvery), stm.WithContentionManager(stm.Suicide()))
	m := trees.New(kind, s)
	fillTh := s.NewThread()
	rng := rand.New(rand.NewSource(17))
	// Shuffled fill: even the never-rebalancing tree must start from an
	// ordinary random BST, not the linked list a sorted fill would build.
	for _, k := range rng.Perm(int(wl.KeyRange)) {
		if rng.Intn(2) == 0 {
			m.Insert(fillTh, uint64(k), uint64(k))
		}
	}
	trees.Quiesce(m, 1<<20)
	stop := trees.Start(m)
	defer stop()

	var seq atomic.Int64
	runners := make([]*bench.Runner, 0, benchWorkers)
	var mu sync.Mutex
	b.ResetTimer()
	b.SetParallelism(benchWorkers) // workers per GOMAXPROCS
	b.RunParallel(func(pb *testing.PB) {
		r := bench.NewRunner(m, s.NewThread(), wl, 100+seq.Add(1))
		mu.Lock()
		runners = append(runners, r)
		mu.Unlock()
		for pb.Next() {
			r.Step()
		}
	})
	b.StopTimer()
	var st stm.Stats
	for _, r := range runners {
		st.Add(r.Thread().Stats())
	}
	b.ReportMetric(float64(st.MaxOpReads), "maxreads/op")
	if st.Commits+st.Aborts > 0 {
		b.ReportMetric(float64(st.Aborts)/float64(b.N), "aborts/op")
	}
	if rot, ok := trees.Rotations(m); ok {
		b.ReportMetric(float64(rot), "rotations")
	}
}

// BenchmarkTable1 regenerates Table 1's metric: transactional reads per
// operation (including aborted attempts) as the update ratio grows, on the
// three balanced trees plus the optimized variant, attempted-update regime.
func BenchmarkTable1(b *testing.B) {
	for _, kind := range []trees.Kind{trees.AVL, trees.RB, trees.SF, trees.SFOpt} {
		for _, update := range []int{0, 20, 50} {
			b.Run(fmt.Sprintf("%s/update%d", kind, update), func(b *testing.B) {
				runTreeBench(b, kind, stm.CTL, bench.Workload{
					KeyRange:      1 << 13,
					UpdatePercent: update,
					Effective:     false,
				})
			})
		}
	}
}

// BenchmarkFig3 regenerates Fig. 3's comparison: the four trees under the
// normal and biased effective-update workloads (15% updates shown; the
// cmd/experiments sweep covers 5–20%).
func BenchmarkFig3(b *testing.B) {
	for _, biased := range []bool{false, true} {
		name := "normal"
		if biased {
			name = "biased"
		}
		for _, kind := range []trees.Kind{trees.RB, trees.SF, trees.NR, trees.AVL} {
			b.Run(fmt.Sprintf("%s/%s", name, kind), func(b *testing.B) {
				runTreeBench(b, kind, stm.CTL, bench.Workload{
					KeyRange:      1 << 13,
					UpdatePercent: 15,
					Biased:        biased,
					Effective:     true,
				})
			})
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4's portability comparison: the trees on
// elastic transactions (E-STM) and on eager acquirement (TinySTM-ETL).
func BenchmarkFig4(b *testing.B) {
	for _, mode := range []stm.Mode{stm.Elastic, stm.ETL} {
		for _, kind := range []trees.Kind{trees.RB, trees.SF, trees.AVL} {
			b.Run(fmt.Sprintf("%s/%s", mode, kind), func(b *testing.B) {
				runTreeBench(b, kind, mode, bench.Workload{
					KeyRange:      1 << 13,
					UpdatePercent: 10,
					Effective:     true,
				})
			})
		}
	}
}

// BenchmarkFig5a regenerates Fig. 5(a)'s four configurations at 20%
// updates: the red-black tree on CTL (the baseline), the same tree on
// elastic transactions, and the two speculation-friendly variants; the
// speedups are the time ratios of the sub-benchmarks.
func BenchmarkFig5a(b *testing.B) {
	cases := []struct {
		name string
		kind trees.Kind
		mode stm.Mode
	}{
		{"RBtree-CTL-baseline", trees.RB, stm.CTL},
		{"RBtree-Elastic", trees.RB, stm.Elastic},
		{"SFtree", trees.SF, stm.CTL},
		{"OptSFtree", trees.SFOpt, stm.CTL},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			runTreeBench(b, c.kind, c.mode, bench.Workload{
				KeyRange:      1 << 13,
				UpdatePercent: 20,
				Effective:     true,
			})
		})
	}
}

// BenchmarkFig5b regenerates Fig. 5(b): 10% updates of which 1/5/10% are
// composed move operations, on the optimized speculation-friendly tree.
func BenchmarkFig5b(b *testing.B) {
	for _, movePct := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("move%d", movePct), func(b *testing.B) {
			runTreeBench(b, trees.SFOpt, stm.CTL, bench.Workload{
				KeyRange:      1 << 13,
				UpdatePercent: 10,
				MovePercent:   movePct,
				Effective:     true,
			})
		})
	}
}

// BenchmarkFig6 regenerates Fig. 6's macro-benchmark: b.N vacation client
// transactions against each tree library under both contention presets
// (speedups over sequential are computed by cmd/experiments; here the
// sub-benchmark time ratios carry the same information, including the
// Sequential baseline itself).
func BenchmarkFig6(b *testing.B) {
	presets := []struct {
		name string
		mk   func(rel, tx int) vacation.Config
	}{
		{"high", vacation.HighContention},
		{"low", vacation.LowContention},
	}
	const relations = 1024
	for _, preset := range presets {
		cfg := preset.mk(relations, 0)
		b.Run(fmt.Sprintf("%s/Sequential", preset.name), func(b *testing.B) {
			m := vacation.NewSeqManager()
			vacation.PopulateSeq(m, cfg, 5)
			cl := vacation.NewSeqClient(m, cfg, 6)
			b.ResetTimer()
			cl.Run(b.N)
		})
		for _, kind := range []trees.Kind{trees.RB, trees.SFOpt, trees.NR} {
			b.Run(fmt.Sprintf("%s/%s", preset.name, kind), func(b *testing.B) {
				s := stm.New(stm.WithYield(yieldEvery), stm.WithContentionManager(stm.Suicide()))
				m := vacation.NewManager(s, kind)
				setup := s.NewThread()
				vacation.Populate(m, setup, cfg, 5)
				stop := m.StartMaintenance()
				defer stop()
				var seq atomic.Int64
				b.ResetTimer()
				b.SetParallelism(benchWorkers)
				b.RunParallel(func(pb *testing.PB) {
					cl := vacation.NewClient(m, s.NewThread(), cfg, 6+seq.Add(1))
					for pb.Next() {
						cl.Run(1)
					}
				})
				b.StopTimer()
				var rot uint64
				for t := vacation.Car; t <= vacation.Room; t++ {
					if r, ok := trees.Rotations(m.Table(t)); ok {
						rot += r
					}
				}
				b.ReportMetric(float64(rot), "rotations")
			})
		}
	}
}

// BenchmarkAblationMaintenanceCoupling quantifies the paper's central
// design choice (§3.1): the distributed rotation mechanism — each rotation
// and removal its own node-local transaction — versus encapsulating the
// whole maintenance sweep in one transaction whose read set covers the
// tree. Same workload, same tree, same rebalancing policy; only the
// transaction granularity of the maintenance differs. The coupled variant's
// abort metric explodes under update load.
func BenchmarkAblationMaintenanceCoupling(b *testing.B) {
	wl := bench.Workload{KeyRange: 1 << 12, UpdatePercent: 40, Effective: true}
	run := func(b *testing.B, coupled bool) {
		s := stm.New(stm.WithYield(yieldEvery), stm.WithContentionManager(stm.Suicide()))
		tr := sftree.New(s, sftree.WithVariant(sftree.Portable))
		fillTh := s.NewThread()
		rng := rand.New(rand.NewSource(23))
		for _, k := range rng.Perm(int(wl.KeyRange)) {
			if rng.Intn(2) == 0 {
				tr.Insert(fillTh, uint64(k), uint64(k))
			}
		}
		tr.Quiesce(1 << 20)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if coupled {
					tr.RunMaintenancePassCoupled()
				} else {
					tr.RunMaintenancePass()
				}
			}
		}()
		var seq atomic.Int64
		b.ResetTimer()
		b.SetParallelism(benchWorkers)
		b.RunParallel(func(pb *testing.PB) {
			r := bench.NewRunner(tr, s.NewThread(), wl, 900+seq.Add(1))
			for pb.Next() {
				r.Step()
			}
		})
		b.StopTimer()
		close(stop)
		<-done
		// TotalStats covers workers AND the maintenance thread — under the
		// coupled regime it is the whole-tree sweep that keeps aborting.
		st := s.TotalStats()
		b.ReportMetric(float64(st.Aborts)/float64(b.N), "aborts/op")
	}
	b.Run("distributed", func(b *testing.B) { run(b, false) })
	b.Run("coupled", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationContentionManagement compares the STM acquirement
// policies on an identical update-heavy tree workload (CTL vs ETL vs
// Elastic), the ablation behind Fig. 4.
func BenchmarkAblationContentionManagement(b *testing.B) {
	for _, mode := range []stm.Mode{stm.CTL, stm.ETL, stm.Elastic} {
		b.Run(mode.String(), func(b *testing.B) {
			runTreeBench(b, trees.SFOpt, mode, bench.Workload{
				KeyRange:      1 << 12,
				UpdatePercent: 30,
				Effective:     true,
			})
		})
	}
}
