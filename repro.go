// Package repro is a Go reproduction of "A Speculation-Friendly Binary
// Search Tree" (Crain, Gramoli, Raynal — PPoPP 2012): a concurrent binary
// search tree designed for optimistic (transactional) synchronization, built
// on a word-based software transactional memory, together with the
// transactional red-black, AVL and no-restructuring trees the paper
// evaluates against, the synchrobench-style micro-benchmark harness, and a
// port of the STAMP vacation application.
//
// The speculation-friendly tree decouples each update into an abstract
// transaction (insert, logical delete, contains — tiny read/write sets) and
// background structural transactions (node-local rotations, physical
// removals, garbage collection) run by a maintenance goroutine, so abstract
// operations rarely conflict and aborted work stays small.
//
// # Quick start
//
//	t := repro.NewTree(repro.SpeculationFriendly)
//	defer t.Close()
//	h := t.NewHandle() // one handle per goroutine
//	h.Insert(42, 420)
//	v, ok := h.Get(42)
//
// Operations compose into larger atomic transactions — the reusability the
// paper demonstrates with its move operation (§5.4):
//
//	h.Update(func(op *repro.Op) {
//		if v, ok := op.Get(1); ok {
//			op.Delete(1)
//			op.Insert(2, v)
//		}
//	})
//
// # Scaling beyond one STM domain
//
// The paper's design funnels every operation through one STM domain (one
// global version clock, one maintenance goroutine). For workloads that
// outgrow it, WithShards hash-partitions the key space across independent
// domain+tree shards, and WithContention selects the abort→retry policy:
//
//	t := repro.NewTree(repro.SpeculationFriendlyOptimized,
//		repro.WithShards(8), repro.WithContention(repro.ContentionKarma))
//
// Cheap composed transactions are confined to one shard (Handle.UpdateShard,
// Tree.SameShard); transactions that must span shards — transfer/ledger
// workloads, cross-shard Move — run through Handle.Atomic, a cross-shard
// transaction coordinator that buffers reads and writes per shard and
// commits them with a shard-ordered two-phase commit (internal/ftx):
//
//	h.Atomic(func(t *repro.Txn) error {
//		a, _ := t.Get(accA)
//		b, _ := t.Get(accB)
//		t.Put(accA, a-25)
//		t.Put(accB, b+25)
//		return nil // any non-nil error aborts with nothing applied
//	})
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/forest"
	"repro/internal/ftx"
	"repro/internal/obs"
	"repro/internal/sftree"
	"repro/internal/stm"
	"repro/internal/trees"
)

// Kind selects the tree library backing a Tree.
type Kind = trees.Kind

// The available tree libraries, named as in the paper's evaluation.
const (
	// SpeculationFriendly is the portable speculation-friendly tree
	// (paper Algorithm 1): fully transactional traversals.
	SpeculationFriendly = trees.SF
	// SpeculationFriendlyOptimized is the optimized variant (Algorithm 2):
	// unit-read traversals and copy-on-rotate (§3.3).
	SpeculationFriendlyOptimized = trees.SFOpt
	// RedBlack is the Oracle-style transactional red-black baseline.
	RedBlack = trees.RB
	// AVL is the STAMP-style transactional AVL baseline.
	AVL = trees.AVL
	// NoRestructuring never rebalances nor physically removes (baseline).
	NoRestructuring = trees.NR
)

// TMMode selects the transactional-memory algorithm.
type TMMode = stm.Mode

// The supported TM algorithms (§5.3's portability axis).
const (
	// CommitTimeLocking is TinySTM-CTL-style lazy acquirement (default).
	CommitTimeLocking = stm.CTL
	// EncounterTimeLocking is TinySTM-ETL-style eager acquirement.
	EncounterTimeLocking = stm.ETL
	// ElasticTransactions is the E-STM elastic transaction model.
	ElasticTransactions = stm.Elastic
)

// ContentionPolicy names an abort→retry policy of the STM's
// transaction-lifecycle engine.
type ContentionPolicy string

const (
	// ContentionSuicide retries an aborted transaction almost immediately
	// (the paper reproduction's original behavior).
	ContentionSuicide ContentionPolicy = "suicide"
	// ContentionBackoff stalls aborted transactions with randomized
	// exponential backoff (the default).
	ContentionBackoff ContentionPolicy = "backoff"
	// ContentionKarma scales the backoff down by the transactional work the
	// operation has already invested (Karma-style priority).
	ContentionKarma ContentionPolicy = "karma"
)

// Tree is a concurrent ordered map from uint64 keys to uint64 values backed
// by one of the paper's tree libraries over the package's STM — either one
// tree in one STM domain (the paper's configuration, the default), or a
// hash-sharded forest of them (WithShards). Create one with NewTree; every
// goroutine accessing it must use its own Handle.
type Tree struct {
	s    *stm.STM       // single-domain path (shards == 1)
	m    trees.Map      // single-domain path
	f    *forest.Forest // sharded path (shards > 1, and every durable tree)
	stop func()
	// dlog is the attached write-ahead log of a durable tree (repro.Open);
	// nil for volatile trees. recovery is what Open reconstructed.
	dlog     *durable.Log
	recovery durable.Recovery
	// Observability layer (WithObservability): the registry every layer
	// registers its metric families into, the bounded flight recorder of
	// coarse-grained events, and the optional HTTP endpoint. All nil
	// without the option.
	obsReg *obs.Registry
	obsFR  *obs.FlightRecorder
	obsTr  *obs.Tracer
	obsSrv *obs.Server
	// maintWorkers is the configured maintenance-scheduler size of the
	// single-domain path (1 when a maintenance goroutine was started, 0
	// otherwise); immutable after NewTree, reported by MaintPoolStats.
	maintWorkers int
	// maintMu serializes maintenance toggling: Close may be called
	// concurrently with Stats, whose pause/resume bracket reads maint —
	// without the lock that is a data race, and a racing resume could
	// restart maintenance after Close returned.
	maintMu sync.Mutex
	maint   bool // background maintenance currently enabled; guarded by maintMu
}

// Option configures NewTree.
type Option func(*treeCfg)

type treeCfg struct {
	mode         stm.Mode
	maintenance  bool
	shards       int
	maintWorkers int
	maintLo      int // adaptive pool floor (WithMaintWorkerRange)
	maintHi      int // adaptive pool ceiling
	cm           stm.ContentionManager
	dur          *durable.Options
	batchN       int
	batchWait    time.Duration
	obs          bool
	obsAddr      string
	trace        int // WithTracing sample-every (0 = tracing off)
}

// WithTMMode selects the TM algorithm (default CommitTimeLocking).
func WithTMMode(m TMMode) Option { return func(c *treeCfg) { c.mode = m } }

// WithoutMaintenance suppresses the background maintenance goroutine(s);
// the caller can drive maintenance manually via Maintain.
func WithoutMaintenance() Option { return func(c *treeCfg) { c.maintenance = false } }

// WithShards hash-partitions the key space across n independent
// STM-domain+tree shards (default 1, the paper's single-domain tree). With
// n > 1, single-key operations keep their atomicity, cheap composed
// transactions are confined to one shard (see Handle.UpdateShard and
// Tree.SameShard), and arbitrary multi-shard compositions — including Move
// across shards — run atomically through Handle.Atomic's two-phase-commit
// coordinator.
func WithShards(n int) Option { return func(c *treeCfg) { c.shards = n } }

// WithMaintWorkers pins the shared maintenance worker pool of a sharded
// tree to exactly n workers, disabling the adaptive sizing (the default is
// adaptive between 1 and min(shards, GOMAXPROCS/2) — see
// WithMaintWorkerRange). The pool drains commit-time maintenance hints
// across all shards with targeted repair transactions and runs the
// low-frequency fallback sweeps, so total maintenance CPU is bounded by the
// pool size rather than the shard count. Ignored on unsharded trees, whose
// single maintenance goroutine plays the same role.
func WithMaintWorkers(n int) Option { return func(c *treeCfg) { c.maintWorkers = n } }

// WithMaintWorkerRange lets the maintenance pool of a sharded tree size
// itself between lo and hi workers: it grows a worker when the queued-hint
// backlog outruns the active workers while they are busy, and parks one
// when the backlog is drained and they sit idle (the decision runs between
// drain quanta off the pool's own backlog and utilization counters —
// MaintPoolStats reports the current size and the steps taken). lo must be
// >= 1 and hi >= lo; ignored on unsharded trees.
func WithMaintWorkerRange(lo, hi int) Option {
	return func(c *treeCfg) {
		c.maintLo, c.maintHi = lo, hi
	}
}

// WithBatching routes single-key operations (Insert, Delete, Get, Contains,
// UpdateShard) through a per-shard op combiner: concurrent submissions
// coalesce into batches of up to n operations, each batch applied in one
// STM transaction by a runner elected among the submitters, with results
// delivered back through per-op futures. wait selects the coalescing
// policy: 0 (the usual choice) is drain-only — uncontended operations run
// directly and batches form only under contention; wait > 0 makes every
// operation enqueue and runners linger up to wait for fuller batches,
// maximizing coalescing at a bounded latency cost. n <= 1 disables
// batching (the default).
//
// Batching pays off on write-contended trees, where coalescing replaces
// abort storms with conflict-free serial batches and amortizes the
// per-transaction overhead; on read-dominated uncontended workloads it
// serializes reads that would have run in parallel, so leave it off there.
// A batched tree always runs on the forest path, even unsharded.
func WithBatching(n int, wait time.Duration) Option {
	return func(c *treeCfg) {
		c.batchN = n
		if wait > 0 {
			c.batchWait = wait
		}
	}
}

// WithObservability turns on the tree's observability layer: a metrics
// registry that every layer (STM commit/abort taxonomy per shard, tree
// maintenance, combiner batches, cross-shard coordinator, maintenance
// pool, WAL/checkpoints, Go runtime) registers its counter, gauge and
// histogram families into, plus a bounded flight recorder of
// coarse-grained events (checkpoints, recovery, WAL stalls, maintenance
// bursts, batch executions). With a non-empty addr the layer also serves
// HTTP on it: Prometheus text on /metrics, a JSON snapshot on /snapshot,
// the flight-recorder ring on /flight, and net/http/pprof under
// /debug/pprof/ — pass ":0" for an ephemeral port and read it back with
// Tree.ObsAddr. An empty addr keeps everything in-process (scrape via
// Tree.Obs). The hot-path hooks are single padded atomic adds; the scrape
// path never pauses application or maintenance threads.
//
// NewTree panics when addr cannot be listened on (a configuration error,
// like WithContention's unknown policy); Open returns the error.
func WithObservability(addr string) Option {
	return func(c *treeCfg) {
		c.obs = true
		c.obsAddr = addr
	}
}

// WithTracing turns on sampled distributed-style tracing on top of the
// observability layer (which it implies, as WithObservability("") when no
// address was configured): one in every sampleEvery facade operations is
// sampled at its start — one xorshift draw per op, no atomics on the
// unsampled path — and a sampled operation records a span for each phase it
// crosses: the facade op itself, every STM attempt with its abort cause,
// the combiner enqueue→batch-commit wait, the cross-shard coordinator's
// intent/prepare/finalize phases, and the WAL append→fsync completion.
// Spans land in a fixed-size lock-free ring (newest wins) served by the
// /trace endpoint and Tree.Tracer; per-op-kind latency histograms
// (op_latency_nanos) and a top-K slow-op table ride along in the registry.
// sampleEvery <= 1 samples every operation (tests and debugging).
//
// A traced tree always runs on the forest path, even unsharded.
func WithTracing(sampleEvery int) Option {
	return func(c *treeCfg) {
		c.obs = true
		if sampleEvery < 1 {
			sampleEvery = 1
		}
		c.trace = sampleEvery
	}
}

// WithContention selects the contention-management policy consulted between
// an aborted transaction attempt and its retry (default ContentionBackoff).
// It panics on unknown policies (a configuration error).
func WithContention(p ContentionPolicy) Option {
	cm, err := stm.ManagerByName(string(p))
	if err != nil {
		panic(err)
	}
	return func(c *treeCfg) { c.cm = cm }
}

// DurabilityOptions re-exports the durable layer's dials for WithDurability:
// Sync (fsync per operation), GroupCommit (background flush+fsync interval),
// CheckpointEvery (periodic checkpoint interval; negative disables),
// CompactEvery (delta generations between full checkpoint bases; negative
// disables incremental checkpoints), DeltaMaxFrac (churn fraction above
// which a checkpoint writes a full base instead of a delta), MaxUnsynced
// (backpressure bound on unsynced bytes under group commit), and
// RecoveryAppliers (parallelism of recovery replay).
type DurabilityOptions = durable.Options

// WithDurability sets the durability dials used by Open (the zero value
// selects the defaults: asynchronous group commit every
// durable.DefaultGroupCommit, a checkpoint every
// durable.DefaultCheckpointEvery). It is meaningful only with Open;
// NewTree panics on it, because a durable tree needs a directory.
func WithDurability(o DurabilityOptions) Option {
	return func(c *treeCfg) { c.dur = &o }
}

// Open creates — or recovers — a durable tree of the given kind backed by
// the write-ahead log and checkpoints in dir (created if missing; the same
// kind and shard count must be used across openings of one directory).
// Every committed update is appended to the log as one checksummed record
// (cross-shard Atomic transactions as one multi-shard record, logged at
// finalize), group-committed per the WithDurability dials; checkpoints
// rotate and truncate the log. Open first replays dir's newest sealed
// checkpoint plus the surviving log tail into a fresh tree, seals a new
// checkpoint (rebasing the history onto this process's clocks), and then
// starts the periodic checkpointer. Close stops the durability machinery
// after a final flush+fsync.
//
// The recovered state is exact up to the last synced record: with Sync
// that is every operation that returned; under group commit a crash loses
// at most the final unsynced window, within which in-flight operations
// are retained or lost independently (see the durable package comment for
// the precise contract). A torn tail record is detected by its length
// prefix and CRC and cleanly discarded, so a cross-shard transaction is
// recovered wholly or not at all.
func Open(dir string, kind Kind, opts ...Option) (*Tree, error) {
	cfg := treeCfg{mode: stm.CTL, maintenance: true, shards: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards < 1 {
		return nil, fmt.Errorf("repro: shard count %d < 1", cfg.shards)
	}
	var dopts durable.Options
	if cfg.dur != nil {
		dopts = *cfg.dur
	}
	l, rec, err := durable.Open(dir, cfg.shards, dopts)
	if err != nil {
		return nil, err
	}
	// A durable tree always runs on the forest path, whatever the shard
	// count: with one shard a forest is semantically identical to the bare
	// tree, and the WAL, checkpoint and cross-shard plumbing then have one
	// surface. Replay the recovered state before attaching the log (the
	// replay must not re-log itself), then seal a fresh checkpoint so the
	// old log generation — whose record positions belong to the previous
	// process's clocks — is truncated and the cuts rebased.
	fopts := []forest.Option{
		forest.WithShards(cfg.shards),
		forest.WithTMMode(cfg.mode),
		forest.WithContentionManager(cfg.cm),
	}
	if cfg.maintWorkers > 0 {
		fopts = append(fopts, forest.WithMaintWorkers(cfg.maintWorkers))
	}
	if cfg.maintHi > 0 {
		fopts = append(fopts, forest.WithMaintWorkerRange(cfg.maintLo, cfg.maintHi))
	}
	if !cfg.maintenance {
		fopts = append(fopts, forest.WithoutMaintenance())
	}
	if cfg.batchN > 1 {
		fopts = append(fopts, forest.WithBatching(cfg.batchN, cfg.batchWait))
	}
	f := forest.New(kind, fopts...)
	reload(f, rec.State)
	f.AttachWAL(l)
	if err := l.Checkpoint(f); err != nil {
		l.Close()
		f.Close()
		return nil, err
	}
	l.StartCheckpoints(f)
	t := &Tree{f: f, stop: f.Close, maint: cfg.maintenance, dlog: l, recovery: *rec}
	if cfg.obs {
		if err := t.setupObs(cfg.obsAddr, cfg.trace); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// setupObs builds the observability layer for a fully constructed tree:
// registry, flight recorder, optional tracer (trace > 0 is the sample-every
// dial), layer registrations, and (addr != "") the HTTP endpoint.
func (t *Tree) setupObs(addr string, trace int) error {
	r := obs.NewRegistry()
	fr := obs.NewFlightRecorder(4096)
	r.SetFlight(fr)
	obs.RegisterRuntime(r)
	if trace > 0 {
		tr := obs.NewTracer(trace, 4096)
		r.SetTracer(tr)
		tr.RegisterObs(r)
		if t.f != nil {
			t.f.SetTracer(tr)
		}
		t.obsTr = tr
	}
	if t.f != nil {
		t.f.RegisterObs(r)
		t.f.SetFlightRecorder(fr)
	} else {
		t.s.RegisterObs(r, "")
		if sf, ok := t.m.(interface {
			RegisterObs(*obs.Registry, string)
		}); ok {
			sf.RegisterObs(r, "")
		}
	}
	if t.dlog != nil {
		t.dlog.RegisterObs(r)
		t.dlog.SetFlightRecorder(fr)
		if t.obsTr != nil {
			t.dlog.SetTracer(t.obsTr)
		}
		// The recovery pass ran inside Open, before a recorder existed;
		// backfill it as the ring's first event.
		durable.RecordRecovery(fr, &t.recovery)
	}
	if addr != "" {
		srv, err := obs.Serve(addr, r)
		if err != nil {
			return err
		}
		t.obsSrv = srv
	}
	t.obsReg = r
	t.obsFR = fr
	return nil
}

// Obs returns the tree's observability registry for in-process scraping
// (snapshots, diffs, exposition) — nil without WithObservability.
func (t *Tree) Obs() *obs.Registry { return t.obsReg }

// FlightRecorder returns the tree's flight recorder — nil without
// WithObservability. Dump it with its WriteTo, or read Events.
func (t *Tree) FlightRecorder() *obs.FlightRecorder { return t.obsFR }

// Tracer returns the tree's span tracer — nil without WithTracing. Read
// sampled spans with Spans/SlowOps, or scrape /trace on the HTTP endpoint.
func (t *Tree) Tracer() *obs.Tracer { return t.obsTr }

// ObsAddr returns the bound address of the observability HTTP endpoint
// ("" when WithObservability was given an empty addr, or not at all).
func (t *Tree) ObsAddr() string {
	if t.obsSrv == nil {
		return ""
	}
	return t.obsSrv.Addr()
}

// reload rebuilds the recovered state into the fresh forest — in parallel
// when it is big enough to matter, one inserter goroutine per slice of the
// state with its own handle (handles are per-goroutine; the shards'
// per-key transactions make concurrent inserts safe). This is the second
// half of segment-parallel recovery: the durable layer replays the WAL
// across partitioned appliers, and the reload spreads the resulting map
// across the forest's shard domains the same way.
func reload(f *forest.Forest, state map[uint64]uint64) {
	const parallelMin = 1 << 12
	workers := min(f.Shards(), runtime.GOMAXPROCS(0))
	if len(state) < parallelMin || workers < 2 {
		h := f.NewHandle()
		for k, v := range state {
			h.Insert(k, v)
		}
		return
	}
	type kv struct{ k, v uint64 }
	chunks := make([][]kv, workers)
	per := len(state)/workers + 1
	i := 0
	for k, v := range state {
		w := i / per
		chunks[w] = append(chunks[w], kv{k, v})
		i++
	}
	var wg sync.WaitGroup
	for _, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		wg.Add(1)
		go func(chunk []kv) {
			defer wg.Done()
			h := f.NewHandle()
			for _, e := range chunk {
				h.Insert(e.k, e.v)
			}
		}(chunk)
	}
	wg.Wait()
}

// Durable returns the tree's write-ahead log for instrumentation (byte and
// record counters, explicit Sync) — nil for a tree created with NewTree.
func (t *Tree) Durable() *durable.Log { return t.dlog }

// Recovery reports what Open reconstructed from the directory (the zero
// value for volatile trees and fresh directories).
func (t *Tree) Recovery() durable.Recovery { return t.recovery }

// Checkpoint seals one consistent checkpoint of the whole tree and
// truncates the write-ahead log behind it (no-op error on volatile trees).
// The periodic checkpointer does this automatically; explicit calls bound
// recovery time before a planned shutdown.
func (t *Tree) Checkpoint() error {
	if t.dlog == nil {
		return fmt.Errorf("repro: Checkpoint on a tree without durability (use repro.Open)")
	}
	return t.dlog.Checkpoint(t.f)
}

// Sync flushes and fsyncs the write-ahead log: every operation committed
// before Sync returns is durable (no-op error on volatile trees).
func (t *Tree) Sync() error {
	if t.dlog == nil {
		return fmt.Errorf("repro: Sync on a tree without durability (use repro.Open)")
	}
	return t.dlog.Sync()
}

// NewTree creates an empty tree of the given kind. Unless
// WithoutMaintenance is given, speculation-friendly kinds start their
// background maintenance goroutine(s) immediately; Close stops them.
func NewTree(kind Kind, opts ...Option) *Tree {
	cfg := treeCfg{mode: stm.CTL, maintenance: true, shards: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dur != nil {
		panic("repro: WithDurability requires a directory; use repro.Open(dir, kind, ...)")
	}
	// A batched or traced tree runs on the forest path whatever the shard
	// count: the combiner and the trace instrumentation live in the forest
	// layer, and with one shard a forest is semantically identical to the
	// bare tree.
	if cfg.shards > 1 || cfg.batchN > 1 || cfg.trace > 0 {
		fopts := []forest.Option{
			forest.WithShards(cfg.shards),
			forest.WithTMMode(cfg.mode),
			forest.WithContentionManager(cfg.cm),
		}
		if cfg.maintWorkers > 0 {
			fopts = append(fopts, forest.WithMaintWorkers(cfg.maintWorkers))
		}
		if cfg.maintHi > 0 {
			fopts = append(fopts, forest.WithMaintWorkerRange(cfg.maintLo, cfg.maintHi))
		}
		if !cfg.maintenance {
			fopts = append(fopts, forest.WithoutMaintenance())
		}
		if cfg.batchN > 1 {
			fopts = append(fopts, forest.WithBatching(cfg.batchN, cfg.batchWait))
		}
		f := forest.New(kind, fopts...)
		t := &Tree{f: f, stop: f.Close, maint: cfg.maintenance}
		if cfg.obs {
			if err := t.setupObs(cfg.obsAddr, cfg.trace); err != nil {
				panic(err)
			}
		}
		return t
	}
	s := stm.New(stm.WithMode(cfg.mode), stm.WithContentionManager(cfg.cm))
	m := trees.New(kind, s)
	t := &Tree{s: s, m: m, stop: func() {}}
	if cfg.maintenance {
		t.stop = trees.Start(m)
		t.maint = true
		if _, ok := trees.HintMaintainedOf(m); ok {
			t.maintWorkers = 1
		}
	}
	if cfg.obs {
		if err := t.setupObs(cfg.obsAddr, cfg.trace); err != nil {
			panic(err)
		}
	}
	return t
}

// Close stops background maintenance. The tree remains fully usable
// (readable and writable); only the structural upkeep stops. Closing an
// already-closed tree is a documented no-op, and Close is safe to call
// concurrently with Stats/MaintenanceStats — maintenance is guaranteed
// stopped once Close and any overlapping accessors return.
func (t *Tree) Close() {
	// Stop the durability machinery first: the checkpoint loop snapshots
	// the forest, so it must be quiet before maintenance winds down, and
	// the final flush+fsync makes everything committed so far durable.
	if t.obsSrv != nil {
		t.obsSrv.Close()
		t.obsSrv = nil
	}
	if t.dlog != nil {
		t.dlog.Close()
	}
	t.maintMu.Lock()
	defer t.maintMu.Unlock()
	t.maint = false
	t.stop()
}

// Maintain runs maintenance passes until the structure is quiescent or
// maxPasses is reached (no-op for kinds without maintenance).
func (t *Tree) Maintain(maxPasses int) {
	if t.f != nil {
		t.f.Quiesce(maxPasses)
		return
	}
	trees.Quiesce(t.m, maxPasses)
}

// Shards reports the number of partitions (1 unless WithShards was given).
func (t *Tree) Shards() int {
	if t.f != nil {
		return t.f.Shards()
	}
	return 1
}

// SameShard reports whether k1 and k2 live on the same shard, i.e. whether
// a composed transaction (UpdateShard, atomic Move) may span both keys.
// Always true for unsharded trees.
func (t *Tree) SameShard(k1, k2 uint64) bool {
	if t.f != nil {
		return t.f.SameShard(k1, k2)
	}
	return true
}

// NewHandle returns a handle bound to fresh STM thread state. Handles are
// not safe for concurrent use; create one per goroutine.
func (t *Tree) NewHandle() *Handle {
	if t.f != nil {
		return &Handle{t: t, fh: t.f.NewHandle()}
	}
	return &Handle{t: t, th: t.s.NewThread()}
}

// Stats returns the sum of all handles' STM statistics (over all shards).
// A running maintenance goroutine is paused while its counters are read;
// the caller's handles should be quiescent for exact values. Stats may be
// called concurrently with Close (the maintenance lock serializes the
// pause/resume bracket against it).
func (t *Tree) Stats() stm.Stats {
	if t.f != nil {
		return t.f.Stats()
	}
	t.maintMu.Lock()
	defer t.maintMu.Unlock()
	if t.maint {
		if mt, ok := t.m.(trees.Maintained); ok {
			mt.Stop()
			defer mt.Start()
		}
	}
	return t.s.TotalStats()
}

// MaintenanceStats returns structural-activity counters for
// speculation-friendly kinds, summed over shards (zero value otherwise).
// Beyond the paper-era sweep counters it reports the hint-driven fields:
// hints emitted, coalesced and dropped, and targeted repairs performed.
func (t *Tree) MaintenanceStats() sftree.Stats {
	if t.f != nil {
		return t.f.MaintenanceStats()
	}
	if sf, ok := t.m.(interface{ Stats() sftree.Stats }); ok {
		return sf.Stats()
	}
	return sftree.Stats{}
}

// MaintPoolStats reports the maintenance scheduler's activity: worker
// count, busy time, hint wakeups, fallback sweeps and current hint backlog.
type MaintPoolStats = forest.PoolStats

// MaintPoolStats returns a snapshot of the maintenance scheduler. On a
// sharded tree it describes the shared worker pool; on an unsharded tree it
// is synthesized from the single maintenance goroutine's counters (one
// worker, sweeps = passes) so callers can treat both uniformly. Workers is
// the configured scheduler size (0 when the tree was built without
// maintenance) and, like the counters, survives Close — Close freezes the
// numbers, it does not zero them.
func (t *Tree) MaintPoolStats() MaintPoolStats {
	if t.f != nil {
		return t.f.PoolStats()
	}
	ps := MaintPoolStats{}
	mt, maintained := trees.HintMaintainedOf(t.m)
	if !maintained {
		return ps
	}
	ps.Workers = t.maintWorkers
	if sf, ok := t.m.(interface{ Stats() sftree.Stats }); ok {
		st := sf.Stats()
		ps.BusyNanos = st.BusyNanos
		ps.Sweeps = st.Passes
	}
	ps.Backlog = mt.HintBacklog()
	return ps
}

// Handle is a per-goroutine accessor to a Tree.
type Handle struct {
	t     *Tree
	th    *stm.Thread      // single-domain path
	fh    *forest.Handle   // sharded path
	coord *ftx.Coordinator // single-domain Atomic coordinator, on first use
}

// Insert maps k to v; false when k was already present.
func (h *Handle) Insert(k, v uint64) bool {
	if h.fh != nil {
		return h.fh.Insert(k, v)
	}
	return h.t.m.Insert(h.th, k, v)
}

// Delete removes k; false when absent.
func (h *Handle) Delete(k uint64) bool {
	if h.fh != nil {
		return h.fh.Delete(k)
	}
	return h.t.m.Delete(h.th, k)
}

// Get returns the value at k.
func (h *Handle) Get(k uint64) (uint64, bool) {
	if h.fh != nil {
		return h.fh.Get(k)
	}
	return h.t.m.Get(h.th, k)
}

// Contains reports whether k is present.
func (h *Handle) Contains(k uint64) bool {
	if h.fh != nil {
		return h.fh.Contains(k)
	}
	return h.t.m.Contains(h.th, k)
}

// Move relocates the value at src to dst (§5.4's composed operation); it
// succeeds only when src is present and dst absent, and it is atomic on
// every configuration: one ordinary transaction on an unsharded tree and
// within a shard, one cross-shard Atomic transaction otherwise.
func (h *Handle) Move(src, dst uint64) bool {
	if h.fh != nil {
		return h.fh.Move(src, dst)
	}
	return trees.Move(h.t.m, h.th, src, dst)
}

// SameShard reports whether k1 and k2 live on the same shard (always true
// for unsharded trees) — the routing predicate for UpdateShard.
func (h *Handle) SameShard(k1, k2 uint64) bool {
	if h.fh != nil {
		return h.fh.SameShard(k1, k2)
	}
	return true
}

// Txn is the buffering cross-shard transaction Handle.Atomic runs:
// Get/Contains read through to the owning shard with repeatable-read
// caching, Put/Insert/Delete buffer their effect, and everything commits
// atomically — all or none — when the function returns nil.
type Txn = ftx.Tx

// Atomic runs fn as one atomic transaction over the whole key space,
// regardless of sharding: reads and writes may touch any keys, and the
// commit is all-or-nothing via a shard-ordered two-phase commit over the
// participating shards (single-shard transactions — including everything
// on an unsharded tree — fall back to one ordinary transaction). A non-nil
// error from fn aborts with nothing applied and is returned verbatim;
// otherwise Atomic retries on conflict until it commits. fn may be
// re-executed and must be free of side effects beyond the Txn and locals
// it re-assigns.
//
// Atomic is the general composition; UpdateShard remains cheaper when the
// keys are known co-located (Tree.SameShard).
func (h *Handle) Atomic(fn func(t *Txn) error) error {
	if h.fh != nil {
		return h.fh.Atomic(fn)
	}
	if h.coord == nil {
		h.coord = ftx.NewCoordinator(ftx.Single(h.t.m, h.th))
	}
	return h.coord.Run(fn)
}

// XactStats reports this handle's cross-shard coordinator activity: total
// commits, the subset that took the single-shard fallback fast path,
// retried aborts and intent conflicts (zero value before the first Atomic
// call).
func (h *Handle) XactStats() ftx.Stats {
	if h.fh != nil {
		return h.fh.XactStats()
	}
	if h.coord == nil {
		return ftx.Stats{}
	}
	return h.coord.Stats()
}

// Len counts the elements, one consistent snapshot per shard.
func (h *Handle) Len() int {
	if h.fh != nil {
		return h.fh.Len()
	}
	return h.t.m.Size(h.th)
}

// Keys returns the sorted keys, one consistent snapshot per shard.
func (h *Handle) Keys() []uint64 {
	if h.fh != nil {
		return h.fh.Keys()
	}
	return h.t.m.Keys(h.th)
}

// Range visits, in ascending key order, every element whose key lies in
// [lo, hi] (both inclusive), calling fn(k, v) for each; fn returning false
// stops the scan early. Range reports whether the scan ran to the end of
// the interval. On an unsharded tree the visited elements are one
// consistent snapshot; on a sharded tree each shard's contribution is one
// consistent snapshot merged in key order, but the shards are not cut at
// one instant (the Keys/Len contract — see the forest package comment).
func (h *Handle) Range(lo, hi uint64, fn func(k, v uint64) bool) bool {
	if h.fh != nil {
		return h.fh.Range(lo, hi, fn)
	}
	return h.t.m.Range(h.th, lo, hi, fn)
}

// Ascend visits every element in ascending key order; fn returning false
// stops the scan. It is Range over the whole key space.
func (h *Handle) Ascend(fn func(k, v uint64) bool) bool {
	return h.Range(0, ^uint64(0), fn)
}

// Update runs fn as one atomic transaction; every operation on the Op
// belongs to that transaction, so arbitrary compositions execute atomically
// and deadlock-free. fn may re-run on conflict: it must not have side
// effects beyond the Op and locals it re-assigns.
//
// Update panics on a sharded tree, because a composed transaction must be
// routed to the single shard whose keys it touches: use UpdateShard there.
// (A one-shard forest — every unsharded durable tree — has exactly one
// shard for every key, so Update works there unrouted.)
func (h *Handle) Update(fn func(op *Op)) {
	if h.fh != nil {
		if h.t.Shards() > 1 {
			panic("repro: Update needs a routing key on a sharded tree; use UpdateShard(k, fn)")
		}
		h.fh.Update(0, func(fop *forest.Op) { fn(&Op{fop: fop}) })
		return
	}
	trees.Atomic(h.t.m, h.th, func(tx *stm.Tx) { fn(&Op{t: h.t, tx: tx}) })
}

// UpdateShard runs fn as one atomic transaction on the shard owning the
// routing key k; every key touched inside fn must live on that shard (the
// Op methods panic otherwise — check with Tree.SameShard first). On an
// unsharded tree, UpdateShard is exactly Update.
func (h *Handle) UpdateShard(k uint64, fn func(op *Op)) {
	if h.fh != nil {
		h.fh.Update(k, func(fop *forest.Op) { fn(&Op{fop: fop}) })
		return
	}
	h.Update(fn)
}

// Op exposes the tree operations inside a Handle.Update / UpdateShard
// transaction.
type Op struct {
	t   *Tree
	tx  *stm.Tx
	fop *forest.Op // sharded path
}

// Insert maps k to v within the transaction; false when present.
func (o *Op) Insert(k, v uint64) bool {
	if o.fop != nil {
		return o.fop.Insert(k, v)
	}
	return o.t.m.InsertTxA(o.tx, k, v)
}

// Delete removes k within the transaction; false when absent.
func (o *Op) Delete(k uint64) bool {
	if o.fop != nil {
		return o.fop.Delete(k)
	}
	return o.t.m.DeleteTx(o.tx, k)
}

// Get returns the value at k within the transaction.
func (o *Op) Get(k uint64) (uint64, bool) {
	if o.fop != nil {
		return o.fop.Get(k)
	}
	return o.t.m.GetTx(o.tx, k)
}

// Contains reports membership within the transaction.
func (o *Op) Contains(k uint64) bool {
	if o.fop != nil {
		return o.fop.Contains(k)
	}
	return o.t.m.ContainsTx(o.tx, k)
}
