// Package repro is a Go reproduction of "A Speculation-Friendly Binary
// Search Tree" (Crain, Gramoli, Raynal — PPoPP 2012): a concurrent binary
// search tree designed for optimistic (transactional) synchronization, built
// on a word-based software transactional memory, together with the
// transactional red-black, AVL and no-restructuring trees the paper
// evaluates against, the synchrobench-style micro-benchmark harness, and a
// port of the STAMP vacation application.
//
// The speculation-friendly tree decouples each update into an abstract
// transaction (insert, logical delete, contains — tiny read/write sets) and
// background structural transactions (node-local rotations, physical
// removals, garbage collection) run by a maintenance goroutine, so abstract
// operations rarely conflict and aborted work stays small.
//
// # Quick start
//
//	t := repro.NewTree(repro.SpeculationFriendly)
//	defer t.Close()
//	h := t.NewHandle() // one handle per goroutine
//	h.Insert(42, 420)
//	v, ok := h.Get(42)
//
// Operations compose into larger atomic transactions — the reusability the
// paper demonstrates with its move operation (§5.4):
//
//	h.Update(func(op *repro.Op) {
//		if v, ok := op.Get(1); ok {
//			op.Delete(1)
//			op.Insert(2, v)
//		}
//	})
package repro

import (
	"repro/internal/sftree"
	"repro/internal/stm"
	"repro/internal/trees"
)

// Kind selects the tree library backing a Tree.
type Kind = trees.Kind

// The available tree libraries, named as in the paper's evaluation.
const (
	// SpeculationFriendly is the portable speculation-friendly tree
	// (paper Algorithm 1): fully transactional traversals.
	SpeculationFriendly = trees.SF
	// SpeculationFriendlyOptimized is the optimized variant (Algorithm 2):
	// unit-read traversals and copy-on-rotate (§3.3).
	SpeculationFriendlyOptimized = trees.SFOpt
	// RedBlack is the Oracle-style transactional red-black baseline.
	RedBlack = trees.RB
	// AVL is the STAMP-style transactional AVL baseline.
	AVL = trees.AVL
	// NoRestructuring never rebalances nor physically removes (baseline).
	NoRestructuring = trees.NR
)

// TMMode selects the transactional-memory algorithm.
type TMMode = stm.Mode

// The supported TM algorithms (§5.3's portability axis).
const (
	// CommitTimeLocking is TinySTM-CTL-style lazy acquirement (default).
	CommitTimeLocking = stm.CTL
	// EncounterTimeLocking is TinySTM-ETL-style eager acquirement.
	EncounterTimeLocking = stm.ETL
	// ElasticTransactions is the E-STM elastic transaction model.
	ElasticTransactions = stm.Elastic
)

// Tree is a concurrent ordered map from uint64 keys to uint64 values backed
// by one of the paper's tree libraries over the package's STM. Create one
// with NewTree; every goroutine accessing it must use its own Handle.
type Tree struct {
	s    *stm.STM
	m    trees.Map
	stop func()
}

// Option configures NewTree.
type Option func(*treeCfg)

type treeCfg struct {
	mode        stm.Mode
	maintenance bool
}

// WithTMMode selects the TM algorithm (default CommitTimeLocking).
func WithTMMode(m TMMode) Option { return func(c *treeCfg) { c.mode = m } }

// WithoutMaintenance suppresses the background maintenance goroutine; the
// caller can drive it manually via Maintain.
func WithoutMaintenance() Option { return func(c *treeCfg) { c.maintenance = false } }

// NewTree creates an empty tree of the given kind. Unless
// WithoutMaintenance is given, speculation-friendly kinds start their
// background maintenance goroutine immediately; Close stops it.
func NewTree(kind Kind, opts ...Option) *Tree {
	cfg := treeCfg{mode: stm.CTL, maintenance: true}
	for _, o := range opts {
		o(&cfg)
	}
	s := stm.New(stm.WithMode(cfg.mode))
	m := trees.New(kind, s)
	t := &Tree{s: s, m: m, stop: func() {}}
	if cfg.maintenance {
		t.stop = trees.Start(m)
	}
	return t
}

// Close stops background maintenance. The tree remains readable.
func (t *Tree) Close() { t.stop() }

// Maintain runs maintenance passes until the structure is quiescent or
// maxPasses is reached (no-op for kinds without maintenance).
func (t *Tree) Maintain(maxPasses int) { trees.Quiesce(t.m, maxPasses) }

// NewHandle returns a handle bound to a fresh STM thread. Handles are not
// safe for concurrent use; create one per goroutine.
func (t *Tree) NewHandle() *Handle {
	return &Handle{t: t, th: t.s.NewThread()}
}

// Stats returns the sum of all handles' STM statistics.
func (t *Tree) Stats() stm.Stats { return t.s.TotalStats() }

// MaintenanceStats returns structural-activity counters for
// speculation-friendly kinds (zero value otherwise).
func (t *Tree) MaintenanceStats() sftree.Stats {
	if sf, ok := t.m.(interface{ Stats() sftree.Stats }); ok {
		return sf.Stats()
	}
	return sftree.Stats{}
}

// Handle is a per-goroutine accessor to a Tree.
type Handle struct {
	t  *Tree
	th *stm.Thread
}

// Insert maps k to v; false when k was already present.
func (h *Handle) Insert(k, v uint64) bool { return h.t.m.Insert(h.th, k, v) }

// Delete removes k; false when absent.
func (h *Handle) Delete(k uint64) bool { return h.t.m.Delete(h.th, k) }

// Get returns the value at k.
func (h *Handle) Get(k uint64) (uint64, bool) { return h.t.m.Get(h.th, k) }

// Contains reports whether k is present.
func (h *Handle) Contains(k uint64) bool { return h.t.m.Contains(h.th, k) }

// Move atomically relocates the value at src to dst (§5.4's composed
// operation); it succeeds only when src is present and dst absent.
func (h *Handle) Move(src, dst uint64) bool { return trees.Move(h.t.m, h.th, src, dst) }

// Len counts the elements in one consistent snapshot.
func (h *Handle) Len() int { return h.t.m.Size(h.th) }

// Keys returns the sorted keys of one consistent snapshot.
func (h *Handle) Keys() []uint64 { return h.t.m.Keys(h.th) }

// Update runs fn as one atomic transaction; every operation on the Op
// belongs to that transaction, so arbitrary compositions execute atomically
// and deadlock-free. fn may re-run on conflict: it must not have side
// effects beyond the Op and locals it re-assigns.
func (h *Handle) Update(fn func(op *Op)) {
	trees.Atomic(h.t.m, h.th, func(tx *stm.Tx) { fn(&Op{t: h.t, tx: tx}) })
}

// Op exposes the tree operations inside a Handle.Update transaction.
type Op struct {
	t  *Tree
	tx *stm.Tx
}

// Insert maps k to v within the transaction; false when present.
func (o *Op) Insert(k, v uint64) bool { return o.t.m.InsertTxA(o.tx, k, v) }

// Delete removes k within the transaction; false when absent.
func (o *Op) Delete(k uint64) bool { return o.t.m.DeleteTx(o.tx, k) }

// Get returns the value at k within the transaction.
func (o *Op) Get(k uint64) (uint64, bool) { return o.t.m.GetTx(o.tx, k) }

// Contains reports membership within the transaction.
func (o *Op) Contains(k uint64) bool { return o.t.m.ContainsTx(o.tx, k) }
