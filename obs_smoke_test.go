package repro

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/trees"
)

// scrape fetches one path from the observability endpoint.
func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return string(body)
}

// TestObsEndpointSmoke runs a short durable sharded benchmark with the
// observability endpoint live and scrapes /metrics in the middle of the
// hammer phase: every layer's families — STM taxonomy per shard, tree
// maintenance, maintenance pool, cross-shard coordinator, WAL/checkpoint,
// Go runtime — must be present in one exposition, served while the
// workload is running. This is the `make obs-smoke` CI gate.
func TestObsEndpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live endpoint scrape; skipped in -short")
	}
	addrCh := make(chan string, 1)
	bodyCh := make(chan string, 1)
	go func() {
		// Scrape as soon as the endpoint is up — the hammer phase is still
		// running then, which is the point of the test.
		addr := <-addrCh
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			bodyCh <- "ERR " + err.Error()
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		bodyCh <- string(body)
	}()

	res := bench.Run(bench.Options{
		Kind:     trees.SFOpt,
		Threads:  2,
		Duration: 400 * time.Millisecond,
		Workload: bench.Workload{
			KeyRange:      1 << 10,
			UpdatePercent: 20,
			XactFrac:      0.05,
			XactKeys:      2,
		},
		Seed:    7,
		Shards:  2,
		CM:      "backoff",
		Durable: true,
		ObsAddr: "127.0.0.1:0",
		ObsReady: func(addr string) {
			addrCh <- addr
		},
	})
	if res.Ops == 0 {
		t.Fatal("benchmark did no operations")
	}

	body := <-bodyCh
	if strings.HasPrefix(body, "ERR ") {
		t.Fatalf("mid-run scrape failed: %s", body)
	}
	families := []string{
		// STM layer, per shard, with the abort-cause taxonomy.
		`stm_commits_total{shard="0"}`,
		`stm_commits_total{shard="1"}`,
		`stm_abort_cause_total{shard="0",cause="validation"}`,
		// Tree maintenance layer.
		`sftree_hints_emitted_total{shard="0"}`,
		`sftree_rotations_total{shard="1"}`,
		// Maintenance worker pool.
		"forest_pool_workers",
		"forest_hint_backlog",
		// Cross-shard coordinator.
		"ftx_commits_total",
		// Durable layer.
		"durable_wal_records_total",
		"durable_checkpoints_total",
		"durable_sync_nanos",
		// Go runtime.
		"go_goroutines",
		"go_gc_pause_p99_ns",
	}
	for _, f := range families {
		if !strings.Contains(body, f) {
			t.Errorf("mid-run /metrics missing %q", f)
		}
	}
	if t.Failed() {
		t.Logf("exposition was:\n%s", body)
	}
}

// TestTreeObservabilityFacade exercises repro.WithObservability end to
// end on a volatile sharded tree: endpoint live, families served, flight
// recorder reachable, everything torn down by Close.
func TestTreeObservabilityFacade(t *testing.T) {
	tr := NewTree(SpeculationFriendlyOptimized,
		WithShards(2), WithObservability("127.0.0.1:0"))
	defer tr.Close()
	if tr.Obs() == nil || tr.FlightRecorder() == nil {
		t.Fatal("observability accessors nil despite WithObservability")
	}
	addr := tr.ObsAddr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	h := tr.NewHandle()
	for i := uint64(0); i < 500; i++ {
		h.Insert(i, i)
	}
	body := scrape(t, addr, "/metrics")
	for _, f := range []string{`stm_commits_total{shard="0"}`, "go_goroutines"} {
		if !strings.Contains(body, f) {
			t.Errorf("/metrics missing %q", f)
		}
	}
	snap := tr.Obs().Snapshot()
	var commits float64
	for _, sm := range snap.Samples {
		if sm.Name == "stm_commits_total" {
			commits += sm.Value
		}
	}
	if commits < 500 {
		t.Errorf("registry reports %.0f commits, want >= 500", commits)
	}

	// The taxonomy invariant holds at the registry surface too: per-cause
	// series sum to the abort total.
	var aborts, causeSum float64
	for _, sm := range snap.Samples {
		switch sm.Name {
		case "stm_aborts_total":
			aborts += sm.Value
		case "stm_abort_cause_total":
			causeSum += sm.Value
		}
	}
	if aborts != causeSum {
		t.Errorf("abort causes sum to %.0f, aborts are %.0f", causeSum, aborts)
	}
}

// TestDurableTreeObservability checks the durable facade path: recovery
// lands in the flight recorder and WAL families register.
func TestDurableTreeObservability(t *testing.T) {
	dir := t.TempDir()
	tr, err := Open(dir, SpeculationFriendlyOptimized, WithObservability(""))
	if err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle()
	for i := uint64(0); i < 100; i++ {
		h.Insert(i, i)
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	snap := tr.Obs().Snapshot()
	if v, ok := snap.Get("durable_wal_records_total", ""); !ok || v < 100 {
		t.Errorf("durable_wal_records_total = %v (ok=%t), want >= 100", v, ok)
	}
	evs := tr.FlightRecorder().Events()
	found := false
	for _, ev := range evs {
		if ev.Kind.String() == "recovery" {
			found = true
		}
	}
	if !found {
		t.Errorf("no recovery event in the flight recorder (have %d events)", len(evs))
	}
	tr.Close()

	// Reopen: the recovery of the 100 inserts must appear with its op count.
	tr2, err := Open(dir, SpeculationFriendlyOptimized, WithObservability(""))
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	var rec bool
	for _, ev := range tr2.FlightRecorder().Events() {
		if ev.Kind.String() == "recovery" && ev.A > 0 {
			rec = true
		}
	}
	if !rec {
		t.Error("reopened tree's flight recorder lacks a recovery event with applied ops")
	}
}
