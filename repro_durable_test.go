package repro

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// durableKindsAndShards enumerates the durability oracle's configurations:
// every tree library at one shard (the paper's single-domain arrangement,
// run as a one-shard forest) and at eight.
func durableKindsAndShards(t *testing.T, fn func(t *testing.T, kind Kind, shards int)) {
	for _, kind := range []Kind{SpeculationFriendly, SpeculationFriendlyOptimized, RedBlack, AVL, NoRestructuring} {
		for _, shards := range []int{1, 8} {
			kind, shards := kind, shards
			t.Run(string(kind)+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
				fn(t, kind, shards)
			})
		}
	}
}

// treeState reads the whole abstraction into a map.
func treeState(h *Handle) map[uint64]uint64 {
	m := map[uint64]uint64{}
	h.Ascend(func(k, v uint64) bool { m[k] = v; return true })
	return m
}

// assertStateEqual compares the tree against the model map.
func assertStateEqual(t *testing.T, h *Handle, model map[uint64]uint64, ctx string) {
	t.Helper()
	got := treeState(h)
	if len(got) != len(model) {
		t.Fatalf("%s: %d keys, want %d", ctx, len(got), len(model))
	}
	for k, v := range model {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("%s: key %d = (%d,%v), want %d", ctx, k, gv, ok, v)
		}
	}
}

// copyDir duplicates every regular file of src into dst.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableRecoveryOracle drives a randomized workload (single-key
// updates, composed UpdateShard transactions, moves, cross-shard Atomic
// transfers) against a durable tree while maintaining a model map, then
// closes and reopens the directory twice — once mid-history with an
// explicit checkpoint in between — asserting the recovered abstraction
// equals the model exactly, for every kind at shards 1 and 8.
func TestDurableRecoveryOracle(t *testing.T) {
	durableKindsAndShards(t, func(t *testing.T, kind Kind, shards int) {
		dir := t.TempDir()
		opts := []Option{WithShards(shards),
			WithDurability(DurabilityOptions{Sync: true, CheckpointEvery: -1})}
		tr, err := Open(dir, kind, opts...)
		if err != nil {
			t.Fatal(err)
		}
		model := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(int64(shards)*1000 + int64(len(kind))))
		const keyRange = 256

		mutate := func(h *Handle, n int) {
			for i := 0; i < n; i++ {
				k := uint64(rng.Intn(keyRange))
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					v := uint64(rng.Intn(1000)) + 1
					if h.Insert(k, v) {
						model[k] = v
					}
				case 4, 5:
					if h.Delete(k) {
						delete(model, k)
					}
				case 6:
					dst := uint64(rng.Intn(keyRange))
					if h.Move(k, dst) && k != dst {
						model[dst] = model[k]
						delete(model, k)
					}
				case 7:
					h.UpdateShard(k, func(op *Op) {
						if v, ok := op.Get(k); ok {
							op.Delete(k)
							op.Insert(k, v+1)
						} else {
							op.Insert(k, 500)
						}
					})
					if v, ok := model[k]; ok {
						model[k] = v + 1
					} else {
						model[k] = 500
					}
				default:
					k2 := uint64(rng.Intn(keyRange))
					h.Atomic(func(x *Txn) error {
						a, aok := x.Get(k)
						b, bok := x.Get(k2)
						if !aok || !bok || k == k2 || a == 0 {
							return nil
						}
						x.Put(k, a-1)
						x.Put(k2, b+1)
						return nil
					})
					a, aok := model[k]
					b, bok := model[k2]
					if aok && bok && k != k2 && a != 0 {
						model[k] = a - 1
						model[k2] = b + 1
					}
				}
			}
		}

		mutate(tr.NewHandle(), 200)
		tr.Close()

		tr, err = Open(dir, kind, opts...)
		if err != nil {
			t.Fatal(err)
		}
		assertStateEqual(t, tr.NewHandle(), model, "after first recovery")

		// Second phase: more history, an explicit checkpoint in the middle
		// (rotation + truncation on a live tree), more history on top.
		h := tr.NewHandle()
		mutate(h, 100)
		if err := tr.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		mutate(h, 100)
		tr.Close()

		tr, err = Open(dir, kind, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		assertStateEqual(t, tr.NewHandle(), model, "after checkpointed recovery")
	})
}

// TestDurableTruncationOracle is the crash-consistency oracle of the
// acceptance criteria: a scripted operation history is logged with
// per-operation fsync (one record per operation, so record boundaries are
// observable as file sizes), the final operation being a cross-shard
// Atomic transfer; then for every byte offset of the live WAL tail — every
// record boundary plus every byte inside the tail record — the directory
// is copied, the live segment truncated at that offset, and repro.Open
// must recover exactly the model at the newest wholly-contained record,
// with the transfer's sum conservation preserved (the atomic record is
// recovered wholly or not at all).
func TestDurableTruncationOracle(t *testing.T) {
	durableKindsAndShards(t, func(t *testing.T, kind Kind, shards int) {
		dir := t.TempDir()
		opts := []Option{WithShards(shards), WithoutMaintenance(),
			WithDurability(DurabilityOptions{Sync: true, CheckpointEvery: -1})}
		tr, err := Open(dir, kind, opts...)
		if err != nil {
			t.Fatal(err)
		}
		seg := tr.Durable().LiveSegment()
		segSize := func() int64 {
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			return fi.Size()
		}
		type snap struct {
			size  int64
			state map[uint64]uint64
		}
		model := map[uint64]uint64{}
		record := func() snap {
			cp := make(map[uint64]uint64, len(model))
			for k, v := range model {
				cp[k] = v
			}
			return snap{size: segSize(), state: cp}
		}
		snaps := []snap{record()}
		h := tr.NewHandle()

		const accA, accB = 3, 4 // the transfer accounts
		step := func(fn func()) { fn(); snaps = append(snaps, record()) }
		for i := uint64(0); i < 10; i++ {
			i := i
			step(func() { h.Insert(i, 100); model[i] = 100 })
		}
		step(func() { h.Delete(7); delete(model, 7) })
		step(func() { h.Move(2, 200); model[200] = model[2]; delete(model, 2) })
		step(func() {
			h.UpdateShard(5, func(op *Op) { op.Delete(5); op.Insert(5, 555) })
			model[5] = 555
		})
		// Tail record: one Atomic transfer A→B, free keys (on 8 shards
		// almost surely a genuine cross-shard two-phase commit and a
		// multi-shard record; on 1 shard the fallback path's record).
		step(func() {
			h.Atomic(func(x *Txn) error {
				a, _ := x.Get(accA)
				b, _ := x.Get(accB)
				x.Put(accA, a-25)
				x.Put(accB, b+25)
				return nil
			})
			model[accA] -= 25
			model[accB] += 25
		})
		tr.Close()
		blob, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if snaps[len(snaps)-1].size != int64(len(blob)) {
			t.Fatalf("final boundary %d != segment size %d", snaps[len(snaps)-1].size, len(blob))
		}

		// Cuts: every record boundary, plus every byte of the tail record.
		cuts := map[int64]bool{}
		for _, s := range snaps {
			cuts[s.size] = true
		}
		for c := snaps[len(snaps)-2].size; c <= snaps[len(snaps)-1].size; c++ {
			cuts[c] = true
		}
		sumAB := func(st map[uint64]uint64) uint64 { return st[accA] + st[accB] }
		tailStart := snaps[len(snaps)-2].size

		for cut := range cuts {
			var want map[uint64]uint64
			for _, s := range snaps {
				if s.size <= cut {
					want = s.state
				}
			}
			cdir := t.TempDir()
			copyDir(t, dir, cdir)
			if err := os.Truncate(filepath.Join(cdir, filepath.Base(seg)), cut); err != nil {
				t.Fatal(err)
			}
			tr2, err := Open(cdir, kind, opts...)
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			h2 := tr2.NewHandle()
			got := treeState(h2)
			if len(got) != len(want) {
				tr2.Close()
				t.Fatalf("cut %d: recovered %d keys, want %d", cut, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					tr2.Close()
					t.Fatalf("cut %d: key %d = %d, want %d", cut, k, got[k], v)
				}
			}
			// Inside the tail (transfer) record both accounts long exist:
			// whether or not the record survives the tear, their sum must be
			// conserved — a split atomic record would break it.
			if cut >= tailStart {
				if s := sumAB(got); s != sumAB(want) {
					tr2.Close()
					t.Fatalf("cut %d: transfer sum %d, want %d (atomic record split by the tear?)", cut, s, sumAB(want))
				}
			}
			// The recovered tree must be live: a fresh committed update
			// survives its own recovery machinery.
			h2.Insert(9999, 1)
			tr2.Close()
		}
	})
}

// TestDurableStaleFilesAfterSeal reproduces, at the facade level, a kill
// between checkpoint seal and log truncation: the directory is re-seeded
// with the stale segments and checkpoint of an earlier generation next to
// the current files, and repro.Open must trust only the newest seal.
func TestDurableStaleFilesAfterSeal(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{WithShards(8),
		WithDurability(DurabilityOptions{Sync: true, CheckpointEvery: -1})}
	tr, err := Open(dir, SpeculationFriendlyOptimized, opts...)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle()
	model := map[uint64]uint64{}
	for i := uint64(0); i < 50; i++ {
		h.Insert(i, i+1)
		model[i] = i + 1
	}
	tr.Close()
	saved := t.TempDir()
	copyDir(t, dir, saved)

	// Second generation: recovery seals a fresh checkpoint (truncating the
	// saved files), then more history diverges the state from generation 1.
	tr, err = Open(dir, SpeculationFriendlyOptimized, opts...)
	if err != nil {
		t.Fatal(err)
	}
	h = tr.NewHandle()
	for i := uint64(0); i < 50; i += 2 {
		h.Delete(i)
		delete(model, i)
	}
	h.Insert(1000, 1)
	model[1000] = 1
	tr.Close()

	// Resurrect the stale generation-1 files beside the live ones.
	ents, err := os.ReadDir(saved)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		dst := filepath.Join(dir, e.Name())
		if _, err := os.Stat(dst); err == nil {
			continue // still live, leave it
		}
		b, err := os.ReadFile(filepath.Join(saved, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	tr, err = Open(dir, SpeculationFriendlyOptimized, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	assertStateEqual(t, tr.NewHandle(), model, "recovery with stale pre-truncation files")
}

// TestDurableCheckpointStress runs checkpoints concurrently with
// Update/Move/Atomic/Insert/Delete traffic on a durable sharded forest
// (run under -race by the Makefile's race target), then closes, recovers,
// and asserts the recovered state equals the final in-memory state — with
// the Atomic transfer workload's sum conservation intact through recovery.
func TestDurableCheckpointStress(t *testing.T) {
	dir := t.TempDir()
	tr, err := Open(dir, SpeculationFriendlyOptimized, WithShards(8),
		WithDurability(DurabilityOptions{GroupCommit: time.Millisecond, CheckpointEvery: -1}))
	if err != nil {
		t.Fatal(err)
	}
	const accounts = 64
	const seedVal = 100
	seed := tr.NewHandle()
	for i := uint64(0); i < accounts; i++ {
		seed.Insert(i, seedVal)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	workers := 4
	if testing.Short() {
		workers = 2
	}
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tr.NewHandle()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			// Private key range per worker keeps the model trivial; the
			// shared accounts are only touched through Atomic transfers.
			base := uint64(1000 * (w + 1))
			for !stop.Load() {
				switch rng.Intn(6) {
				case 0:
					h.Insert(base+uint64(rng.Intn(200)), uint64(rng.Intn(1000)))
				case 1:
					h.Delete(base + uint64(rng.Intn(200)))
				case 2:
					h.Move(base+uint64(rng.Intn(200)), base+uint64(rng.Intn(200)))
				case 3:
					k := base + uint64(rng.Intn(200))
					h.UpdateShard(k, func(op *Op) {
						if v, ok := op.Get(k); ok {
							op.Delete(k)
							op.Insert(k, v+1)
						} else {
							op.Insert(k, 1)
						}
					})
				default:
					a := uint64(rng.Intn(accounts))
					b := uint64(rng.Intn(accounts))
					h.Atomic(func(x *Txn) error {
						av, aok := x.Get(a)
						bv, bok := x.Get(b)
						if !aok || !bok || a == b || av == 0 {
							return nil
						}
						x.Put(a, av-1)
						x.Put(b, bv+1)
						return nil
					})
				}
			}
		}()
	}
	// Checkpoint continuously against the live traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := tr.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	d := 300 * time.Millisecond
	if testing.Short() {
		d = 100 * time.Millisecond
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()

	final := treeState(tr.NewHandle())
	tr.Close()

	tr2, err := Open(dir, SpeculationFriendlyOptimized, WithShards(8),
		WithDurability(DurabilityOptions{GroupCommit: time.Millisecond, CheckpointEvery: -1}))
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	got := treeState(tr2.NewHandle())
	if len(got) != len(final) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(final))
	}
	for k, v := range final {
		if got[k] != v {
			t.Fatalf("key %d = %d, want %d", k, got[k], v)
		}
	}
	var sum uint64
	for i := uint64(0); i < accounts; i++ {
		sum += got[i]
	}
	if sum != accounts*seedVal {
		t.Fatalf("account sum %d after recovery, want %d (transfer atomicity broken)", sum, accounts*seedVal)
	}
}

// TestDurableBatchedRecoveryOracle is the batching-enabled variant of the
// recovery oracle: concurrent workers churn worker-owned key stripes
// through the per-shard op combiner (WithBatching) on a durable tree, so
// committed batches reach the WAL as multi-effect records; after Close and
// reopen the recovered abstraction must equal the model exactly. Per-stripe
// single-writership makes the model exact despite the concurrency.
func TestDurableBatchedRecoveryOracle(t *testing.T) {
	durableKindsAndShards(t, func(t *testing.T, kind Kind, shards int) {
		dir := t.TempDir()
		opts := []Option{WithShards(shards), WithBatching(16, 0),
			WithDurability(DurabilityOptions{CheckpointEvery: -1})}
		tr, err := Open(dir, kind, opts...)
		if err != nil {
			t.Fatal(err)
		}

		const workers = 4
		const iterations = 300
		const stripe = 128
		var modelMu sync.Mutex
		model := map[uint64]uint64{}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := tr.NewHandle()
				rng := rand.New(rand.NewSource(int64(w)*104729 + int64(shards)))
				base := uint64(1000 * (w + 1))
				for i := 0; i < iterations; i++ {
					k := base + uint64(rng.Intn(stripe))
					switch rng.Intn(5) {
					case 0, 1:
						v := uint64(rng.Intn(1000)) + 1
						if h.Insert(k, v) {
							modelMu.Lock()
							model[k] = v
							modelMu.Unlock()
						}
					case 2:
						if h.Delete(k) {
							modelMu.Lock()
							delete(model, k)
							modelMu.Unlock()
						}
					case 3:
						h.UpdateShard(k, func(op *Op) {
							if v, ok := op.Get(k); ok {
								op.Delete(k)
								op.Insert(k, v+1)
							} else {
								op.Insert(k, 7)
							}
						})
						modelMu.Lock()
						if v, ok := model[k]; ok {
							model[k] = v + 1
						} else {
							model[k] = 7
						}
						modelMu.Unlock()
					default:
						h.Get(k)
					}
				}
			}()
		}
		wg.Wait()
		tr.Close()

		tr, err = Open(dir, kind, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		assertStateEqual(t, tr.NewHandle(), model, "after batched recovery")
	})
}
