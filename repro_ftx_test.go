package repro_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro"
)

// TestAtomicTransferFacade exercises Handle.Atomic end to end on both the
// unsharded and the sharded configuration: transfer semantics, user
// aborts, and the coordinator statistics.
func TestAtomicTransferFacade(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			tr := repro.NewTree(repro.SpeculationFriendlyOptimized, repro.WithShards(shards))
			defer tr.Close()
			h := tr.NewHandle()
			h.Insert(1, 70)
			h.Insert(2, 30)

			if err := h.Atomic(func(t *repro.Txn) error {
				a, _ := t.Get(1)
				b, _ := t.Get(2)
				t.Put(1, a-25)
				t.Put(2, b+25)
				return nil
			}); err != nil {
				t.Fatalf("Atomic: %v", err)
			}
			if v, _ := h.Get(1); v != 45 {
				t.Fatalf("key 1 = %d, want 45", v)
			}
			if v, _ := h.Get(2); v != 55 {
				t.Fatalf("key 2 = %d, want 55", v)
			}

			boom := errors.New("insufficient funds")
			err := h.Atomic(func(t *repro.Txn) error {
				v, _ := t.Get(1)
				if v < 100 {
					return boom
				}
				t.Put(1, v-100)
				return nil
			})
			if err != boom {
				t.Fatalf("err = %v, want the fn error", err)
			}
			if v, _ := h.Get(1); v != 45 {
				t.Fatalf("key 1 = %d after abort, want unchanged 45", v)
			}

			st := h.XactStats()
			if st.Commits != 1 || st.UserAborts != 1 {
				t.Fatalf("stats %+v: want 1 commit, 1 user abort", st)
			}
		})
	}
}

// TestAtomicSumConservationFacade is a short facade-level conservation
// check: concurrent transfers through Handle.Atomic must keep the total
// balance invariant at both shard counts.
func TestAtomicSumConservationFacade(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			tr := repro.NewTree(repro.SpeculationFriendly, repro.WithShards(shards))
			defer tr.Close()
			const nAcc, bal = 16, 500
			seed := tr.NewHandle()
			for k := uint64(0); k < nAcc; k++ {
				seed.Insert(k, bal)
			}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := tr.NewHandle()
					rng := rand.New(rand.NewSource(int64(w) + 1))
					for i := 0; i < 200; i++ {
						a, b := uint64(rng.Intn(nAcc)), uint64(rng.Intn(nAcc))
						if a == b {
							continue
						}
						amt := uint64(rng.Intn(5) + 1)
						h.Atomic(func(t *repro.Txn) error {
							av, _ := t.Get(a)
							bv, _ := t.Get(b)
							if av < amt {
								return nil
							}
							t.Put(a, av-amt)
							t.Put(b, bv+amt)
							return nil
						})
					}
				}(w)
			}
			wg.Wait()
			h := tr.NewHandle()
			var sum uint64
			for k := uint64(0); k < nAcc; k++ {
				v, ok := h.Get(k)
				if !ok {
					t.Fatalf("account %d vanished", k)
				}
				sum += v
			}
			if sum != nAcc*bal {
				t.Fatalf("sum %d, want %d", sum, nAcc*bal)
			}
		})
	}
}
