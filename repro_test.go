package repro

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func allKinds() []Kind {
	return []Kind{SpeculationFriendly, SpeculationFriendlyOptimized, RedBlack, AVL, NoRestructuring}
}

func TestPublicAPIBasics(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(string(kind), func(t *testing.T) {
			tr := NewTree(kind)
			defer tr.Close()
			h := tr.NewHandle()
			if !h.Insert(42, 420) {
				t.Fatal("insert failed")
			}
			if h.Insert(42, 1) {
				t.Fatal("duplicate insert")
			}
			if v, ok := h.Get(42); !ok || v != 420 {
				t.Fatalf("get = (%d,%v)", v, ok)
			}
			if !h.Contains(42) || h.Contains(43) {
				t.Fatal("contains wrong")
			}
			if !h.Delete(42) || h.Delete(42) {
				t.Fatal("delete semantics")
			}
			if h.Len() != 0 {
				t.Fatal("len after delete")
			}
		})
	}
}

func TestPublicAPIMoveAndKeys(t *testing.T) {
	tr := NewTree(SpeculationFriendlyOptimized)
	defer tr.Close()
	h := tr.NewHandle()
	for k := uint64(0); k < 10; k++ {
		h.Insert(k, k*10)
	}
	if !h.Move(3, 100) {
		t.Fatal("move failed")
	}
	if h.Contains(3) {
		t.Fatal("source survived move")
	}
	if v, ok := h.Get(100); !ok || v != 30 {
		t.Fatalf("moved value = (%d,%v)", v, ok)
	}
	keys := h.Keys()
	if len(keys) != 10 {
		t.Fatalf("keys = %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("unsorted keys: %v", keys)
		}
	}
}

func TestPublicAPIComposedUpdate(t *testing.T) {
	tr := NewTree(SpeculationFriendly)
	defer tr.Close()
	h := tr.NewHandle()
	h.Insert(1, 11)
	// A compose-everything transaction: conditional move plus an insert.
	h.Update(func(op *Op) {
		if v, ok := op.Get(1); ok && !op.Contains(2) {
			op.Delete(1)
			op.Insert(2, v)
		}
		op.Insert(3, 33)
	})
	if h.Contains(1) || !h.Contains(2) || !h.Contains(3) {
		t.Fatal("composed update not atomic/visible")
	}
}

func TestPublicAPIConcurrent(t *testing.T) {
	tr := NewTree(SpeculationFriendlyOptimized)
	defer tr.Close()
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		h := tr.NewHandle()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			base := uint64(g * 1000)
			for i := 0; i < 500; i++ {
				k := base + uint64(rng.Intn(500))
				switch rng.Intn(3) {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Delete(k)
				default:
					h.Contains(k)
				}
			}
		}(g)
	}
	wg.Wait()
	st := tr.Stats()
	if st.Commits == 0 {
		t.Fatal("no commits recorded")
	}
	tr.Maintain(100000)
	if ms := tr.MaintenanceStats(); ms.Passes == 0 {
		t.Fatal("maintenance never ran")
	}
}

func TestWithTMModeAndWithoutMaintenance(t *testing.T) {
	tr := NewTree(SpeculationFriendly, WithTMMode(ElasticTransactions), WithoutMaintenance())
	defer tr.Close()
	h := tr.NewHandle()
	for k := uint64(0); k < 64; k++ {
		h.Insert(k, k)
	}
	for k := uint64(0); k < 64; k += 2 {
		h.Delete(k)
	}
	if h.Len() != 32 {
		t.Fatalf("len = %d", h.Len())
	}
	tr.Maintain(10000) // manual maintenance must still work
	if tr.MaintenanceStats().Removals == 0 {
		t.Fatal("manual Maintain did not remove deleted nodes")
	}
}

func TestBaselineKindsStats(t *testing.T) {
	tr := NewTree(RedBlack)
	defer tr.Close()
	h := tr.NewHandle()
	h.Insert(1, 1)
	if ms := tr.MaintenanceStats(); ms.Passes != 0 || ms.Rotations != 0 {
		t.Fatal("red-black tree reported SF maintenance stats")
	}
	tr.Maintain(10) // must be a harmless no-op
}

func TestShardedTreeBasics(t *testing.T) {
	tr := NewTree(SpeculationFriendlyOptimized, WithShards(4), WithContention(ContentionBackoff))
	defer tr.Close()
	if tr.Shards() != 4 {
		t.Fatalf("shards = %d", tr.Shards())
	}
	h := tr.NewHandle()
	const n = 256
	for k := uint64(0); k < n; k++ {
		if !h.Insert(k, k*2) {
			t.Fatalf("insert %d", k)
		}
	}
	if h.Len() != n {
		t.Fatalf("len = %d", h.Len())
	}
	keys := h.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("unsorted keys")
		}
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := h.Get(k); !ok || v != k*2 {
			t.Fatalf("get %d = (%d,%v)", k, v, ok)
		}
	}
	if !h.Move(1, 1000) {
		t.Fatal("move failed")
	}
	if v, ok := h.Get(1000); !ok || v != 2 {
		t.Fatal("moved value wrong")
	}
	if tr.Stats().Commits == 0 {
		t.Fatal("no commits")
	}
	tr.Maintain(100000)
}

func TestShardedUpdateShard(t *testing.T) {
	tr := NewTree(SpeculationFriendly, WithShards(4))
	defer tr.Close()
	h := tr.NewHandle()
	// Find a co-located pair for a composed same-shard move.
	var k2 uint64
	for k := uint64(1); ; k++ {
		if tr.SameShard(7, k) && k != 7 {
			k2 = k
			break
		}
	}
	h.Insert(7, 77)
	h.UpdateShard(7, func(op *Op) {
		if v, ok := op.Get(7); ok && !op.Contains(k2) {
			op.Delete(7)
			op.Insert(k2, v)
		}
	})
	if h.Contains(7) {
		t.Fatal("composed delete not applied")
	}
	if v, ok := h.Get(k2); !ok || v != 77 {
		t.Fatal("composed insert not applied")
	}
	// Plain Update must refuse to run without a routing key.
	defer func() {
		if recover() == nil {
			t.Fatal("Update on a sharded tree did not panic")
		}
	}()
	h.Update(func(op *Op) {})
}

func TestUpdateShardOnUnshardedTree(t *testing.T) {
	tr := NewTree(RedBlack, WithContention(ContentionSuicide))
	defer tr.Close()
	if !tr.SameShard(1, 1<<40) {
		t.Fatal("unsharded tree reported different shards")
	}
	h := tr.NewHandle()
	h.UpdateShard(5, func(op *Op) { op.Insert(5, 50) })
	if v, ok := h.Get(5); !ok || v != 50 {
		t.Fatal("UpdateShard did not behave as Update")
	}
}

func TestWithContentionUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown contention policy did not panic")
		}
	}()
	WithContention(ContentionPolicy("polite"))
}

func TestPublicAPIRangeAndAscend(t *testing.T) {
	for _, kind := range allKinds() {
		for _, shards := range []int{1, 8} {
			tr := NewTree(kind, WithShards(shards))
			h := tr.NewHandle()
			for k := uint64(0); k < 100; k++ {
				h.Insert(k, k*3)
			}
			for k := uint64(0); k < 100; k += 2 {
				h.Delete(k)
			}
			var got []uint64
			if !h.Range(10, 30, func(k, v uint64) bool {
				if v != k*3 {
					t.Errorf("%s/%d: value %d at key %d", kind, shards, v, k)
				}
				got = append(got, k)
				return true
			}) {
				t.Fatalf("%s/%d: full-interval scan reported early stop", kind, shards)
			}
			want := []uint64{11, 13, 15, 17, 19, 21, 23, 25, 27, 29}
			if len(got) != len(want) {
				t.Fatalf("%s/%d: Range(10,30) = %v", kind, shards, got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%d: Range(10,30) = %v", kind, shards, got)
				}
			}
			n := 0
			h.Ascend(func(_, _ uint64) bool { n++; return true })
			if n != 50 || n != h.Len() {
				t.Fatalf("%s/%d: Ascend visited %d, Len %d", kind, shards, n, h.Len())
			}
			// Early stop propagates through every layer.
			n = 0
			if h.Ascend(func(_, _ uint64) bool { n++; return n < 7 }) {
				t.Fatalf("%s/%d: stopped Ascend reported completion", kind, shards)
			}
			if n != 7 {
				t.Fatalf("%s/%d: stopped Ascend visited %d", kind, shards, n)
			}
			tr.Close()
		}
	}
}

// TestCloseStatsRace hammers Stats/MaintenanceStats concurrently with
// repeated Close on both the single-domain and sharded paths: the maint
// flag must not be a data race (run under -race), double Close must be a
// no-op, and maintenance must be stopped for good once everything returns.
func TestCloseStatsRace(t *testing.T) {
	for _, shards := range []int{1, 8} {
		tr := NewTree(SpeculationFriendly, WithShards(shards))
		h := tr.NewHandle()
		for k := uint64(0); k < 512; k++ {
			h.Insert(k, k)
			if k%2 == 0 {
				h.Delete(k)
			}
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					tr.Stats()
					tr.MaintenanceStats()
				}
			}()
		}
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tr.Close()
			}()
		}
		wg.Wait()
		tr.Close() // documented no-op on an already-closed tree
		passes := tr.MaintenanceStats().Passes
		time.Sleep(50 * time.Millisecond)
		if after := tr.MaintenanceStats().Passes; after != passes {
			t.Fatalf("shards=%d: maintenance still running after Close (%d -> %d passes)",
				shards, passes, after)
		}
	}
}
