GO ?= go
BENCH_DURATION ?= 1s
BENCH_DATE := $(shell date +%Y-%m-%d)

.PHONY: all build test race vet ci bench-range bench-json

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-critical packages (the STM, the
# speculation-friendly tree, the tree registry with the elastic-move
# regression, the sharded forest, and the public facade with its
# Close/Stats and cross-shard Move stress tests). The timeout guards
# against a stress test livelocking under the detector's serialization.
race:
	$(GO) test -race -timeout 10m ./internal/stm ./internal/sftree ./internal/trees ./internal/forest .

vet:
	$(GO) vet ./...

# Range-scan microbenchmark points: the scan mix at one shard (the paper's
# single-domain tree) and at eight (per-shard snapshot + k-way merge).
bench-range:
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 10 -range-frac 0.1 -range-len 100 -shards 1 -header
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 10 -range-frac 0.1 -range-len 100 -shards 8

# Maintenance-efficiency benchmark points, recorded as one JSON artifact
# per session (BENCH_<date>.json) so the perf trajectory is durable. The
# rows compare the single-domain tree, the sharded forest with the default
# pool, and the sharded forest with an explicitly small pool on the skewed
# (Zipf) workload — the configuration the sub-linear-maintenance-CPU claim
# is about (see the maint_* CSV columns).
bench-json:
	{ $(GO) run ./cmd/microbench -header -tree sf-opt -threads 4 -update 20 -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -shards 8 -dist zipf -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -shards 8 -maint-workers 2 -dist zipf -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf -threads 4 -update 20 -shards 8 -maint-workers 2 -dist zipf -duration $(BENCH_DURATION) ; } \
	| $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_DATE).json

ci: build vet test race
