GO ?= go

.PHONY: all build test race vet ci bench-range

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-critical packages (the STM, the
# speculation-friendly tree, the tree registry with the elastic-move
# regression, the sharded forest, and the public facade with its
# Close/Stats and cross-shard Move stress tests). The timeout guards
# against a stress test livelocking under the detector's serialization.
race:
	$(GO) test -race -timeout 10m ./internal/stm ./internal/sftree ./internal/trees ./internal/forest .

vet:
	$(GO) vet ./...

# Range-scan microbenchmark points: the scan mix at one shard (the paper's
# single-domain tree) and at eight (per-shard snapshot + k-way merge).
bench-range:
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 10 -range-frac 0.1 -range-len 100 -shards 1 -header
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 10 -range-frac 0.1 -range-len 100 -shards 8

ci: build vet test race
