GO ?= go
BENCH_DURATION ?= 1s
BENCH_DATE := $(shell date +%Y-%m-%d)

.PHONY: all build test race vet fuzz ci obs-smoke trace-smoke bench-range bench-xact bench-durable bench-recovery bench-batch bench-json profile benchdiff

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-critical packages (the STM with
# its prepared-transaction tests, the speculation-friendly tree, the tree
# registry with the elastic-move regression, the sharded forest with the
# cross-shard transaction oracle and Move tortures, the ftx coordinator,
# the observability registry/flight recorder, and the public facade). The
# timeout guards against a stress test livelocking under the detector's
# serialization.
race:
	$(GO) test -race -timeout 10m ./internal/stm ./internal/sftree ./internal/trees ./internal/ring ./internal/forest ./internal/ftx ./internal/durable ./internal/obs .

# Live-endpoint smoke: run a short durable sharded benchmark with the
# observability server attached and scrape /metrics mid-run, asserting
# that every layer's metric families (stm, sftree, forest pool, ftx,
# durable, Go runtime) appear in one exposition.
obs-smoke:
	$(GO) test -run TestObsEndpointSmoke -count=1 -v .

# Span-tracer smoke: run a short durable batched contended benchmark with
# full sampling and scrape /trace mid-hammer, asserting the accumulated
# spans cover every instrumented layer — an STM retry, a combiner batch
# wait, an ftx prepare phase, and a WAL append stretching to its
# group-commit fsync.
trace-smoke:
	$(GO) test -run TestTraceEndpointSmoke -count=1 -v .

vet:
	$(GO) vet ./...

# Short fuzz smoke over the durable on-disk codecs: the WAL record framing
# and the incremental-checkpoint delta/manifest formats. Each corpus is
# seeded with valid encodings plus systematic corruptions; a few seconds per
# fuzzer is enough to keep the decode/re-encode identity and the
# never-crash-on-garbage property honest in CI (go test allows one -fuzz
# pattern per invocation, hence three runs).
FUZZTIME ?= 5s
fuzz:
	$(GO) test ./internal/durable -run '^$$' -fuzz FuzzRecordDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/durable -run '^$$' -fuzz FuzzDeltaDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/durable -run '^$$' -fuzz FuzzManifestDecode -fuzztime $(FUZZTIME)

# Range-scan microbenchmark points: the scan mix at one shard (the paper's
# single-domain tree) and at eight (per-shard snapshot + k-way merge).
bench-range:
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 10 -range-frac 0.1 -range-len 100 -shards 1 -header
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 10 -range-frac 0.1 -range-len 100 -shards 8

# Cross-shard transfer microbenchmark points: the multi-key transfer
# workload at one shard (every transaction on the coordinator's
# single-shard fallback) and at eight (the shard-ordered two-phase commit),
# with the cross-shard dial at both extremes. The xact_* CSV columns report
# the coordinator's commit/abort/fallback/intent-conflict accounting.
bench-xact:
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -xact-frac 0.2 -shards 1 -header
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -xact-frac 0.2 -shards 8
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -xact-frac 0.2 -xact-cross 0 -shards 8

# Durability microbenchmark points: the WAL-attached forest at one and
# eight shards under asynchronous group commit, and the per-operation
# fsync regime. The durable CSV columns report log bytes/records/syncs,
# checkpoints, and the timed post-run recovery (recovery_ms,
# recovered_keys).
bench-durable:
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -durable -shards 1 -header
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -durable -shards 8
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -durable -fsync -shards 8

# Recovery-cost microbenchmark points: the same durable workload at two
# store sizes (key ranges 1<<15 and 1<<17), with incremental checkpoints on
# (the default chain, ckpt_compact 8) and off (-ckpt-compact -1, the
# pre-delta full-checkpoint regime). The ckpt_bytes and ckpt_dirty_frac
# columns show checkpoint cost tracking churn rather than store size, and
# recovery_ns/recovery_appliers time the segment-parallel replay of the
# directory after the run.
bench-recovery:
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -durable -shards 8 -range 32768 -header
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -durable -shards 8 -range 32768 -ckpt-compact -1
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -durable -shards 8 -range 131072
	$(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -durable -shards 8 -range 131072 -ckpt-compact -1

# Batched-execution microbenchmark points: the contended skewed update mix
# with the per-shard op combiner off and on, at one shard (maximum
# coalescing pressure — the combiner's headline configuration) and at
# eight. The batched_ops/batches/avg_batch CSV columns report the
# coalescing rate; p50_ns/p99_ns report sampled per-op latency.
bench-batch:
	$(GO) run ./cmd/microbench -tree sf-opt -threads 8 -update 20 -dist zipf -shards 1 -header
	$(GO) run ./cmd/microbench -tree sf-opt -threads 8 -update 20 -dist zipf -shards 1 -batch 64
	$(GO) run ./cmd/microbench -tree sf-opt -threads 8 -update 20 -dist zipf -shards 8 -batch 64

# Benchmark points recorded as one JSON artifact per session
# (BENCH_<date>.json) so the perf trajectory is durable (the scheduled
# bench workflow uploads the same artifact weekly). The first two rows are
# the single-thread sf-opt hot-path baselines (update 20 and 10) that the
# cmd/benchdiff regression gate keys on — single-thread rows are the
# meaningful ones on small CI hosts, where multi-thread numbers are mostly
# scheduler noise. The next rows compare the single-domain tree, the
# sharded forest with the default pool, and the sharded forest with an
# explicitly small pool on the skewed (Zipf) workload — the configuration
# the sub-linear-maintenance-CPU claim is about (see the maint_* CSV
# columns); then the multi-key transfer workload at shards 1 and 8 (see
# the xact_* columns) and a durable (WAL-attached) point, followed by the
# recovery-cost pair: the durable workload at key ranges 1<<15 and 1<<17, so
# the artifact records ckpt_bytes/ckpt_dirty_frac (incremental-checkpoint
# cost vs store size) and recovery_ns (segment-parallel replay) at two store
# sizes. The final three rows are the batched-execution series: the contended skewed update mix at
# t8 shards=1 unbatched (anchor) and with the op combiner at batch 64, plus
# the sharded batched point (see the batched_ops/batches/avg_batch and
# p50_ns/p99_ns columns).
bench-json:
	{ $(GO) run ./cmd/microbench -header -tree sf-opt -threads 1 -update 20 -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 1 -update 10 -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -shards 8 -dist zipf -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -shards 8 -maint-workers 2 -dist zipf -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf -threads 4 -update 20 -shards 8 -maint-workers 2 -dist zipf -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -xact-frac 0.2 -shards 1 -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -xact-frac 0.2 -shards 8 -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -durable -shards 8 -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -durable -shards 8 -range 32768 -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 4 -update 20 -durable -shards 8 -range 131072 -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 8 -update 20 -dist zipf -shards 1 -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 8 -update 20 -dist zipf -shards 1 -batch 64 -duration $(BENCH_DURATION) ; \
	  $(GO) run ./cmd/microbench -tree sf-opt -threads 8 -update 20 -dist zipf -shards 8 -batch 64 -duration $(BENCH_DURATION) ; } \
	| $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_DATE).json

# CPU + allocation profiles of the hot path (single-thread sf-opt, the
# configuration the mechanical-sympathy work targets), written under
# profiles/. Inspect with: go tool pprof -top profiles/cpu.pb.gz
PROFILE_DURATION ?= 3s
profile:
	mkdir -p profiles
	$(GO) run ./cmd/microbench -tree sf-opt -threads 1 -update 20 \
		-duration $(PROFILE_DURATION) \
		-cpuprofile profiles/cpu.pb.gz -memprofile profiles/mem.pb.gz
	@echo "profiles written: profiles/cpu.pb.gz profiles/mem.pb.gz"

# Regression gate: compare the newest checked-in BENCH_*.json baseline
# against a fresh bench-json artifact (or the two files given as BASE= and
# NEW=). Fails when a matched row regresses by more than the threshold.
benchdiff:
	$(GO) run ./cmd/benchdiff $(BENCHDIFF_FLAGS) $(BASE) $(NEW)

ci: build vet test race fuzz obs-smoke trace-smoke
