GO ?= go

.PHONY: all build test race vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-critical packages (the STM, the
# speculation-friendly tree, and the sharded forest).
race:
	$(GO) test -race ./internal/stm ./internal/sftree ./internal/forest

vet:
	$(GO) vet ./...

ci: build vet test race
