package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The delta-chain crash oracles. They extend the PR 5 truncation oracle to
// incremental-checkpoint directories: a full base plus delta generations
// chained by a manifest, then torn WAL tails, torn or missing manifests, a
// missing middle delta, and a crash mid-compaction. Shards {1, 8} × recovery
// appliers {1, 4} cover the serial and partitioned replay paths.

func deltaOracleConfigs(t *testing.T, fn func(t *testing.T, shards, appliers int)) {
	for _, shards := range []int{1, 8} {
		for _, appliers := range []int{1, 4} {
			t.Run("shards="+string(rune('0'+shards))+"/appliers="+string(rune('0'+appliers)), func(t *testing.T) {
				fn(t, shards, appliers)
			})
		}
	}
}

// buildDeltaChain drives a scripted history that leaves dir with a full
// base (gen 1), one delta (gen 2), and a live WAL tail, returning the model
// map after each phase: [0] the base, [1] the delta tip, [2] the final
// state. Keys are chosen per phase from disjoint ranges so degraded
// recoveries have computable expectations.
func buildDeltaChain(t *testing.T, dir string, opts []Option) (models [3]map[uint64]uint64) {
	t.Helper()
	tr, err := Open(dir, SpeculationFriendlyOptimized, opts...)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle()
	model := map[uint64]uint64{}
	snap := func() map[uint64]uint64 {
		cp := make(map[uint64]uint64, len(model))
		for k, v := range model {
			cp[k] = v
		}
		return cp
	}
	for i := uint64(0); i < 30; i++ {
		h.Insert(i, i+1)
		model[i] = i + 1
	}
	if err := tr.Checkpoint(); err != nil { // gen 1: full base
		t.Fatal(err)
	}
	models[0] = snap()
	h.Insert(100, 1000)
	model[100] = 1000
	h.Delete(3)
	delete(model, 3)
	h.UpdateShard(5, func(op *Op) { op.Delete(5); op.Insert(5, 555) })
	model[5] = 555
	if err := tr.Checkpoint(); err != nil { // gen 2: delta (3 dirty keys of 30)
		t.Fatal(err)
	}
	models[1] = snap()
	h.Insert(200, 2000)
	model[200] = 2000
	h.Move(1, 201)
	model[201] = model[1]
	delete(model, 1)
	tr.Close()
	models[2] = snap()
	return models
}

func deltaOpts(shards, appliers int) []Option {
	return []Option{WithShards(shards), WithoutMaintenance(),
		WithDurability(DurabilityOptions{Sync: true, CheckpointEvery: -1,
			RecoveryAppliers: appliers})}
}

// reopenExpect opens dir and asserts the recovered state equals want.
func reopenExpect(t *testing.T, dir string, opts []Option, want map[uint64]uint64, ctx string) {
	t.Helper()
	tr, err := Open(dir, SpeculationFriendlyOptimized, opts...)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	defer tr.Close()
	assertStateEqual(t, tr.NewHandle(), want, ctx)
}

// TestDurableDeltaChainTruncationOracle: with a full base + delta chain on
// disk, the live WAL tail is truncated at every byte offset; recovery must
// yield exactly the chain state plus the longest intact record prefix.
func TestDurableDeltaChainTruncationOracle(t *testing.T) {
	deltaOracleConfigs(t, func(t *testing.T, shards, appliers int) {
		dir := t.TempDir()
		opts := deltaOpts(shards, appliers)
		tr, err := Open(dir, SpeculationFriendlyOptimized, opts...)
		if err != nil {
			t.Fatal(err)
		}
		h := tr.NewHandle()
		model := map[uint64]uint64{}
		for i := uint64(0); i < 20; i++ {
			h.Insert(i, i+1)
			model[i] = i + 1
		}
		if err := tr.Checkpoint(); err != nil { // full base
			t.Fatal(err)
		}
		h.Insert(50, 500)
		model[50] = 500
		h.Delete(2)
		delete(model, 2)
		if err := tr.Checkpoint(); err != nil { // delta
			t.Fatal(err)
		}

		// Scripted tail in the post-delta live segment, one record per op.
		seg := tr.Durable().LiveSegment()
		segSize := func() int64 {
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			return fi.Size()
		}
		type snap struct {
			size  int64
			state map[uint64]uint64
		}
		record := func() snap {
			cp := make(map[uint64]uint64, len(model))
			for k, v := range model {
				cp[k] = v
			}
			return snap{size: segSize(), state: cp}
		}
		snaps := []snap{record()}
		step := func(fn func()) { fn(); snaps = append(snaps, record()) }
		step(func() { h.Insert(60, 600); model[60] = 600 })
		step(func() { h.Delete(5); delete(model, 5) })
		step(func() { h.Move(7, 70); model[70] = model[7]; delete(model, 7) })
		// Tail record: an atomic transfer whose sum must survive any tear.
		const accA, accB = 8, 9
		step(func() {
			h.Atomic(func(x *Txn) error {
				a, _ := x.Get(accA)
				b, _ := x.Get(accB)
				x.Put(accA, a-4)
				x.Put(accB, b+4)
				return nil
			})
			model[accA] -= 4
			model[accB] += 4
		})
		tr.Close()

		blob, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if snaps[len(snaps)-1].size != int64(len(blob)) {
			t.Fatalf("final boundary %d != segment size %d", snaps[len(snaps)-1].size, len(blob))
		}
		cuts := map[int64]bool{}
		for _, s := range snaps {
			cuts[s.size] = true
		}
		for c := snaps[len(snaps)-2].size; c <= snaps[len(snaps)-1].size; c++ {
			cuts[c] = true
		}
		for cut := range cuts {
			var want map[uint64]uint64
			for _, s := range snaps {
				if s.size <= cut {
					want = s.state
				}
			}
			cdir := t.TempDir()
			copyDir(t, dir, cdir)
			if err := os.Truncate(filepath.Join(cdir, filepath.Base(seg)), cut); err != nil {
				t.Fatal(err)
			}
			tr2, err := Open(cdir, SpeculationFriendlyOptimized, opts...)
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			if rec := tr2.Recovery(); rec.ChainDeltas != 1 {
				tr2.Close()
				t.Fatalf("cut %d: recovered through %d deltas, want the 1-delta chain", cut, rec.ChainDeltas)
			}
			h2 := tr2.NewHandle()
			got := treeState(h2)
			tr2.Close()
			if len(got) != len(want) {
				t.Fatalf("cut %d: recovered %d keys, want %d", cut, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("cut %d: key %d = %d, want %d", cut, k, got[k], v)
				}
			}
			if got[accA]+got[accB] != want[accA]+want[accB] {
				t.Fatalf("cut %d: transfer sum broken (atomic record split by the tear?)", cut)
			}
		}
	})
}

// TestDurableManifestDamageOracle: a torn or missing manifest must be
// lossless — the chain is reconstructed from the deltas' parent links, so
// recovery still yields the exact final state.
func TestDurableManifestDamageOracle(t *testing.T) {
	deltaOracleConfigs(t, func(t *testing.T, shards, appliers int) {
		opts := deltaOpts(shards, appliers)
		for _, damage := range []string{"deleted", "torn"} {
			t.Run(damage, func(t *testing.T) {
				dir := t.TempDir()
				models := buildDeltaChain(t, dir, opts)
				// Damage the newest manifest (the delta tip's).
				ents, _ := os.ReadDir(dir)
				hit := false
				for _, e := range ents {
					if !strings.HasPrefix(e.Name(), "manifest-") {
						continue
					}
					p := filepath.Join(dir, e.Name())
					if damage == "deleted" {
						if err := os.Remove(p); err != nil {
							t.Fatal(err)
						}
					} else {
						fi, _ := os.Stat(p)
						if err := os.Truncate(p, fi.Size()/2); err != nil {
							t.Fatal(err)
						}
					}
					hit = true
				}
				if !hit {
					t.Fatal("no manifest on disk to damage")
				}
				reopenExpect(t, dir, opts, models[2], "recovery with "+damage+" manifest")
			})
		}
	})
}

// TestDurableMissingDeltaFallback: deleting a chain's delta file (external
// damage — sealed files should not vanish) must degrade, not fail: recovery
// falls back to the newest provably-complete basis, the full base plus the
// records of the surviving segments. The phases' disjoint key ranges make
// the degraded expectation computable, and a second reopen proves the
// damaged-path recovery is idempotent.
func TestDurableMissingDeltaFallback(t *testing.T) {
	deltaOracleConfigs(t, func(t *testing.T, shards, appliers int) {
		opts := deltaOpts(shards, appliers)
		dir := t.TempDir()
		models := buildDeltaChain(t, dir, opts)
		removed := false
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "delta-") {
				if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
					t.Fatal(err)
				}
				removed = true
			}
		}
		if !removed {
			t.Fatal("no delta on disk to remove")
		}
		// Expected degraded state: the full base, plus the post-delta tail
		// records (insert 200, move 1→201). The delta's own window (keys
		// 100, 3, 5) is lost with the file — its segments were truncated.
		want := make(map[uint64]uint64, len(models[0]))
		for k, v := range models[0] {
			want[k] = v
		}
		want[200] = 2000
		want[201] = want[1]
		delete(want, 1)
		reopenExpect(t, dir, opts, want, "recovery with missing delta")
		// Idempotent: the first reopen resealed a fresh full base, so a
		// second recovery reproduces the same state exactly.
		reopenExpect(t, dir, opts, want, "second recovery after missing delta")
	})
}

// TestDurableCompactionCrashOracle: a crash between a compaction's full-
// base seal and its manifest seal leaves an orphan full checkpoint newer
// than every manifest. Recovery must use it (it is sealed and complete),
// yielding the exact state.
func TestDurableCompactionCrashOracle(t *testing.T) {
	deltaOracleConfigs(t, func(t *testing.T, shards, appliers int) {
		// CompactEvery 1: full(1) → delta(2) → compaction full(3).
		opts := []Option{WithShards(shards), WithoutMaintenance(),
			WithDurability(DurabilityOptions{Sync: true, CheckpointEvery: -1,
				CompactEvery: 1, RecoveryAppliers: appliers})}
		dir := t.TempDir()
		tr, err := Open(dir, SpeculationFriendlyOptimized, opts...)
		if err != nil {
			t.Fatal(err)
		}
		h := tr.NewHandle()
		model := map[uint64]uint64{}
		for i := uint64(0); i < 25; i++ {
			h.Insert(i, i*3+1)
			model[i] = i*3 + 1
		}
		if err := tr.Checkpoint(); err != nil { // gen 1: full
			t.Fatal(err)
		}
		h.Insert(300, 3)
		model[300] = 3
		if err := tr.Checkpoint(); err != nil { // gen 2: delta
			t.Fatal(err)
		}
		h.Delete(4)
		delete(model, 4)
		if err := tr.Checkpoint(); err != nil { // gen 3: compaction full
			t.Fatal(err)
		}
		h.Insert(301, 4) // live tail past the compacted base
		model[301] = 4
		tr.Close()

		// The crash image: the compaction's manifest never reached disk.
		ents, _ := os.ReadDir(dir)
		orphaned := false
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "manifest-") {
				if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
					t.Fatal(err)
				}
				orphaned = true
			}
		}
		if !orphaned {
			t.Fatal("no manifest on disk to orphan")
		}
		reopenExpect(t, dir, opts, model, "recovery from orphan compaction base")
	})
}
