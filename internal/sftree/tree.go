// Package sftree implements the speculation-friendly binary search tree of
// Crain, Gramoli and Raynal (PPoPP 2012), the primary contribution of the
// paper this repository reproduces.
//
// The tree implements an associative array (and hence a set) whose update
// operations are decoupled into:
//
//   - abstract transactions — insert, delete (logical only: it sets a
//     per-node deleted flag) and contains, executed by application threads,
//     whose read sets cover only the traversed path and whose write sets
//     touch at most one or two words; and
//   - structural transactions — node-local rotations, physical removals of
//     logically deleted nodes with at most one child, and balance-information
//     propagation, executed by a dedicated maintenance ("rotator") thread,
//     each as its own small transaction.
//
// Two variants are provided, selected at construction time:
//
//   - Portable (paper Algorithm 1): every traversal step is a transactional
//     read, so the tree runs on any TM exposing the standard interface.
//   - Optimized (paper Algorithm 2, §3.3): traversal uses unit reads
//     (stm.Tx.URead) and each node carries a removed flag; rotations
//     copy the rotated node (leaving the original as a signpost for
//     preempted traversals) and removals re-point the removed node's child
//     links at its former parent, giving O(1) read/write sets per operation.
//
// Physically removed nodes are reclaimed by the maintenance thread through
// the epoch scheme of §3.4 (arena.Collector).
package sftree

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/stm"
)

// MaxKey is the sentinel key of the fixed root node (the paper's +∞ root,
// §4: "It is created with a root node with key ∞ so that all nodes will
// always be on its left subtree"). User keys must be strictly smaller.
const MaxKey = ^uint64(0)

// Variant selects between the two algorithms of the paper.
type Variant int

const (
	// Portable is Algorithm 1: fully transactional traversals, in-place
	// rotations. It honours the standard TM interface.
	Portable Variant = iota
	// Optimized is Algorithm 2: unit-read traversals, copy-on-rotate,
	// removed-node signposting. It requires the TM's unit-load extension.
	Optimized
)

// String names the variant as in the paper's figures.
func (v Variant) String() string {
	if v == Optimized {
		return "Opt SFtree"
	}
	return "SFtree"
}

// Stats counts the structural activity of the maintenance subsystem. All
// fields are monotonically increasing.
type Stats struct {
	Rotations    uint64 // successful single rotations (left or right)
	Removals     uint64 // successful physical removals
	Passes       uint64 // completed depth-first maintenance traversals
	Freed        uint64 // nodes reclaimed by the §3.4 collector
	FailedRot    uint64 // rotation transactions that returned false
	FailedRemove uint64 // removal transactions that returned false

	// Hint-driven maintenance (hints.go / repair.go).
	HintsEmitted    uint64 // hints published into the queue at commit
	HintsCoalesced  uint64 // hints folded into an already-queued one (dedup bit)
	HintsDropped    uint64 // hints discarded because the queue was full
	TargetedRepairs uint64 // hints consumed by targeted repair transactions
	BusyNanos       uint64 // time the tree's own maintenance loop spent working
}

// Add accumulates o into s (aggregation across the shards of a forest).
func (s *Stats) Add(o Stats) {
	s.Rotations += o.Rotations
	s.Removals += o.Removals
	s.Passes += o.Passes
	s.Freed += o.Freed
	s.FailedRot += o.FailedRot
	s.FailedRemove += o.FailedRemove
	s.HintsEmitted += o.HintsEmitted
	s.HintsCoalesced += o.HintsCoalesced
	s.HintsDropped += o.HintsDropped
	s.TargetedRepairs += o.TargetedRepairs
	s.BusyNanos += o.BusyNanos
}

// Tree is a speculation-friendly binary search tree. All abstract operations
// are safe for concurrent use by any number of threads (each goroutine
// passing its own *stm.Thread); the structural operations are driven by at
// most one maintenance goroutine (Start/Stop, or RunMaintenancePass for
// deterministic tests).
type Tree struct {
	stm     *stm.STM
	ar      *arena.Arena
	variant Variant

	root arena.Ref // sentinel, key = MaxKey, never rotated nor removed

	collector *arena.Collector
	maintTh   *stm.Thread // maintenance thread's STM context

	rotations    atomic.Uint64
	removals     atomic.Uint64
	passes       atomic.Uint64
	freed        atomic.Uint64
	failedRot    atomic.Uint64
	failedRemove atomic.Uint64

	// Hint-driven maintenance state (hints.go). hintq is nil when hints are
	// disabled (WithoutHints — the no-restructuring ablation); notify is the
	// registered wake callback (SetMaintNotify).
	hintq          *hintPQ
	notify         atomic.Pointer[func()]
	hintsEmitted   atomic.Uint64
	hintsCoalesced atomic.Uint64
	hintsDropped   atomic.Uint64
	targeted       atomic.Uint64
	busyNanos      atomic.Uint64

	stop    atomic.Bool
	done    chan struct{}
	running atomic.Bool
	// wake is nudged (non-blocking) when a hint arrives or Stop needs the
	// maintenance loop out of its idle wait.
	wake chan struct{}
	// lifeMu serializes Start/Stop against each other, so concurrent
	// callers cannot double-wait on done or leak a second goroutine.
	lifeMu sync.Mutex
	// stopEpoch counts Stop calls; Quiesce uses it to avoid resurrecting a
	// maintenance goroutine that a concurrent Stop/Close meant to end.
	stopEpoch atomic.Uint64

	// maintVisits counts nodes visited by maintenance traversals; it is
	// only touched by the single maintenance driver (see maintYieldStride).
	maintVisits uint64
	// repairPath is the reusable descent buffer of targeted repairs; like
	// maintVisits it is touched only by the single maintenance driver.
	repairPath []pathEnt

	// frames caches one opFrame per registered thread slot (frame.go), the
	// allocation-free argument-passing scheme of the abstract operations;
	// frameMu serializes the copy-on-write growth of the slice.
	frames  atomic.Pointer[[]*opFrame]
	frameMu sync.Mutex
}

// Option configures a Tree.
type Option func(*cfg)

type cfg struct {
	variant    Variant
	hints      bool
	hintCap    int
	promoteAge time.Duration
}

// WithVariant selects the algorithm variant (default Portable).
func WithVariant(v Variant) Option { return func(c *cfg) { c.variant = v } }

// WithoutHints disables maintenance-hint emission entirely: abstract
// operations register no commit hooks and the tree allocates no hint queue.
// The no-restructuring ablation uses it; ordinary trees should not.
func WithoutHints() Option { return func(c *cfg) { c.hints = false } }

// WithHintCap sets the hint-queue capacity (rounded up to a power of two;
// default 1024). A full queue drops hints — the fallback sweep covers them.
func WithHintCap(n int) Option {
	return func(c *cfg) {
		if n > 0 {
			c.hintCap = n
		}
	}
}

// DefaultHintPromoteAge is the default age at which a waiting rebalance
// hint outranks fresh removal hints (see WithHintPromoteAge).
const DefaultHintPromoteAge = 5 * time.Millisecond

// WithHintPromoteAge sets the age-based promotion bound of the two-level
// hint queue: a rebalance hint that has waited strictly longer than d
// outranks fresh removal hints, bounding how long a sustained removal
// stream can starve rebalancing (default DefaultHintPromoteAge; d <= 0
// disables promotion, restoring strict removal-first priority).
func WithHintPromoteAge(d time.Duration) Option {
	return func(c *cfg) { c.promoteAge = d }
}

// New creates an empty tree attached to the given STM domain, with its own
// node arena. The maintenance thread is not started; call Start or drive
// RunMaintenancePass manually.
func New(s *stm.STM, opts ...Option) *Tree {
	c := cfg{variant: Portable, hints: true, hintCap: defaultHintCap, promoteAge: DefaultHintPromoteAge}
	for _, o := range opts {
		o(&c)
	}
	ar := arena.New()
	t := &Tree{
		stm:     s,
		ar:      ar,
		variant: c.variant,
		root:    ar.Alloc(MaxKey, 0),
		wake:    make(chan struct{}, 1),
	}
	if c.hints {
		t.hintq = newHintPQ(c.hintCap, c.promoteAge)
	}
	t.collector = arena.NewCollector(ar)
	t.maintTh = s.NewThread()
	// Every transaction this thread runs is structural (rotation, removal,
	// targeted repair): mark it so the STM's abort taxonomy splits its
	// commits/aborts from the semantic operations'.
	t.maintTh.MarkStructural()
	return t
}

// Variant reports which algorithm the tree runs.
func (t *Tree) Variant() Variant { return t.variant }

// Arena exposes the node arena (for instrumentation and white-box tests).
func (t *Tree) Arena() *arena.Arena { return t.ar }

// STM returns the domain the tree was built on.
func (t *Tree) STM() *stm.STM { return t.stm }

// Stats returns a snapshot of the structural-activity counters.
func (t *Tree) Stats() Stats {
	return Stats{
		Rotations:       t.rotations.Load(),
		Removals:        t.removals.Load(),
		Passes:          t.passes.Load(),
		Freed:           t.freed.Load(),
		FailedRot:       t.failedRot.Load(),
		FailedRemove:    t.failedRemove.Load(),
		HintsEmitted:    t.hintsEmitted.Load(),
		HintsCoalesced:  t.hintsCoalesced.Load(),
		HintsDropped:    t.hintsDropped.Load(),
		TargetedRepairs: t.targeted.Load(),
		BusyNanos:       t.busyNanos.Load(),
	}
}

func checkKey(k uint64) {
	if k >= MaxKey {
		panic(fmt.Sprintf("sftree: key %d out of range (MaxKey is reserved for the root sentinel)", k))
	}
}

// node resolves a Ref.
func (t *Tree) node(r arena.Ref) *arena.Node { return t.ar.Get(r) }

// ElasticSafe reports whether the tree tolerates elastic (cut) read
// tracking. The portable variant does: its abstract operations pin their
// outcome with at most the two trailing reads that the elastic
// hand-over-hand window always validates (arrival hop + deleted flag, or
// arrival hop + ⊥ child). The optimized variant does not — its find pins
// three reads (removed flag, ⊥ child, parent link), one more than the
// window covers — and has no use for elasticity anyway, since its traversal
// already runs on unit reads. This matches the paper, which evaluates the
// non-optimized tree on E-STM (Fig. 4 left) and the optimized one on
// TinySTM's explicit unit loads (§3.3).
func (t *Tree) ElasticSafe() bool { return t.variant == Portable }

// atomic runs an abstract operation in the thread's default mode, demoting
// Elastic to CTL for the optimized variant (see ElasticSafe).
func (t *Tree) atomic(th *stm.Thread, fn func(*stm.Tx)) {
	mode := th.STM().DefaultMode()
	if mode == stm.Elastic && t.variant == Optimized {
		mode = stm.CTL
	}
	th.AtomicMode(mode, fn)
}

// findHinted is find plus the hint observation of hint-driven maintenance:
// when the descent crosses a node whose height estimates differ by more
// than one, a rebalance hint for that node is registered on the transaction
// and published only if the transaction commits (stm.Tx.OnCommit). Only the
// update operations observe — they traverse the same paths the reads do,
// and keeping reads observation-free keeps the dominant operations of the
// paper's mixes at zero hint overhead.
func (t *Tree) findHinted(tx *stm.Tx, k uint64) arena.Ref {
	if t.hintq == nil {
		return t.find(tx, k, nil)
	}
	var obs pathObs
	curr := t.find(tx, k, &obs)
	if obs.ok {
		tx.OnCommit(t, hintRebalance, obs.key, obs.ref)
	}
	return curr
}

// ---------------------------------------------------------------------------
// Abstract operations (paper Algorithm 1, lines 23–44 and 60–70).
// ---------------------------------------------------------------------------

// Contains reports whether k is in the set. It runs as one transaction.
// Like the other abstract operations it passes arguments and results
// through the thread's reusable operation frame (frame.go) instead of a
// closure, keeping the steady-state hot path allocation-free.
func (t *Tree) Contains(th *stm.Thread, k uint64) bool {
	f := t.frame(th)
	f.k = k
	t.atomic(th, f.containsFn)
	return f.okOut
}

// ContainsTx is the composable form of Contains for use inside an enclosing
// transaction (paper §5.4's reusability).
func (t *Tree) ContainsTx(tx *stm.Tx, k uint64) bool {
	checkKey(k)
	curr := t.find(tx, k, nil)
	n := t.node(curr)
	if n.Key.Plain() != k {
		return false
	}
	return tx.Read(&n.Del) == 0
}

// Get returns the value mapped to k, if present.
func (t *Tree) Get(th *stm.Thread, k uint64) (uint64, bool) {
	f := t.frame(th)
	f.k = k
	t.atomic(th, f.getFn)
	return f.valOut, f.okOut
}

// GetTx is the composable form of Get.
func (t *Tree) GetTx(tx *stm.Tx, k uint64) (uint64, bool) {
	checkKey(k)
	curr := t.find(tx, k, nil)
	n := t.node(curr)
	if n.Key.Plain() != k {
		return 0, false
	}
	if tx.Read(&n.Del) != 0 {
		return 0, false
	}
	return tx.Read(&n.Val), true
}

// Insert maps k to v if k is absent, returning true on success (false when
// k was already present). It runs as one transaction. The new node, when
// needed, comes from an arena.Scratch so aborted attempts never leak slots.
func (t *Tree) Insert(th *stm.Thread, k, v uint64) bool {
	checkKey(k)
	f := t.frame(th)
	f.k, f.v = k, v
	t.atomic(th, f.insertFn)
	f.sc.Release(t.ar) // resets the frame's scratch for the next insert
	return f.okOut
}

// InsertTx is the composable form of Insert for use inside an enclosing
// transaction. sc manages the potential node allocation across retries of
// the enclosing Atomic; the caller must invoke sc.Release(tree.Arena())
// after the Atomic call returns.
func (t *Tree) InsertTx(tx *stm.Tx, k, v uint64, sc *arena.Scratch) bool {
	checkKey(k)
	sc.ResetAttempt()
	curr := t.findHinted(tx, k)
	n := t.node(curr)
	if n.Key.Plain() == k {
		if tx.Read(&n.Del) != 0 {
			// Logical resurrection (paper line 36): flip the deleted flag
			// back; the node is already in place.
			tx.Write(&n.Del, 0)
			tx.Write(&n.Val, v)
			return true
		}
		return false
	}
	ref := sc.Take(t.ar, k, v)
	if k < n.Key.Plain() {
		tx.Write(&n.L, ref)
	} else {
		tx.Write(&n.R, ref)
	}
	sc.MarkLinked()
	if t.hintq != nil {
		// A new leaf stales the height estimates of its whole path; the
		// hinted targeted repair re-propagates them (and rotates if the
		// path went out of balance).
		tx.OnCommit(t, hintRebalance, k, ref)
	}
	return true
}

// InsertTxA is InsertTx with tree-managed allocation, for deep composition
// (e.g. the vacation application's multi-table transactions) where threading
// a Scratch through every layer is impractical. If the enclosing transaction
// aborts on the very attempt that linked the node and then commits via a
// different path, the orphaned node is leaked inside the arena; this is
// bounded by the abort count and documented as acceptable for benchmarks.
func (t *Tree) InsertTxA(tx *stm.Tx, k, v uint64) bool {
	var sc arena.Scratch
	return t.InsertTx(tx, k, v, &sc)
}

// SetTx maps k to v within the enclosing transaction regardless of whether
// k is present (an upsert): a live node's value is overwritten in place, a
// logically deleted node is resurrected, and an absent key gains a new
// leaf. It is the write-replay entry point of the cross-shard transaction
// coordinator (internal/ftx), which buffers each written key's final state
// and needs to apply it without knowing presence; trees without SetTx pay
// a delete+insert pair instead. Allocation follows InsertTxA's discipline
// (tree-managed scratch, the same bounded leak profile on aborted linking
// attempts).
func (t *Tree) SetTx(tx *stm.Tx, k, v uint64) {
	checkKey(k)
	curr := t.findHinted(tx, k)
	n := t.node(curr)
	if n.Key.Plain() == k {
		if tx.Read(&n.Del) != 0 {
			// Logical resurrection, exactly as InsertTx's same-key path.
			tx.Write(&n.Del, 0)
		}
		tx.Write(&n.Val, v)
		return
	}
	var sc arena.Scratch
	ref := sc.Take(t.ar, k, v)
	if k < n.Key.Plain() {
		tx.Write(&n.L, ref)
	} else {
		tx.Write(&n.R, ref)
	}
	sc.MarkLinked()
	if t.hintq != nil {
		// A new leaf stales the height estimates of its whole path (see
		// InsertTx).
		tx.OnCommit(t, hintRebalance, k, ref)
	}
}

// Delete removes k from the set, returning true when k was present. The
// removal is logical (paper §3.2): only the deleted flag is written; the
// node is unlinked later by the maintenance thread.
func (t *Tree) Delete(th *stm.Thread, k uint64) bool {
	f := t.frame(th)
	f.k = k
	t.atomic(th, f.deleteFn)
	return f.okOut
}

// DeleteTx is the composable form of Delete.
func (t *Tree) DeleteTx(tx *stm.Tx, k uint64) bool {
	checkKey(k)
	curr := t.findHinted(tx, k)
	n := t.node(curr)
	if n.Key.Plain() != k {
		return false
	}
	if tx.Read(&n.Del) != 0 {
		return false
	}
	tx.Write(&n.Del, 1)
	if t.hintq != nil {
		// Publish (only on commit) a removal hint so a maintenance worker
		// unlinks the node promptly instead of a sweep finding it later.
		tx.OnCommit(t, hintRemove, k, curr)
	}
	return true
}

// Move atomically relocates the value at key src to key dst. It succeeds —
// deleting src and inserting dst — only when src is present and dst is
// absent. Move is the composed operation of paper §5.4, built from the
// exported *Tx forms exactly as an application programmer would.
func (t *Tree) Move(th *stm.Thread, src, dst uint64) bool {
	checkKey(src)
	checkKey(dst)
	if src == dst {
		var ok bool
		t.atomic(th, func(tx *stm.Tx) { ok = t.ContainsTx(tx, src) })
		return ok
	}
	var sc arena.Scratch
	var ok bool
	t.atomic(th, func(tx *stm.Tx) {
		ok = false
		v, present := t.GetTx(tx, src)
		if !present {
			return
		}
		if t.ContainsTx(tx, dst) {
			return
		}
		if !t.DeleteTx(tx, src) {
			return
		}
		if !t.InsertTx(tx, dst, v, &sc) {
			// dst was checked absent above within the same transaction:
			// only a doomed (zombie) attempt or an elastic cut of that
			// check can see it occupied now. Retry from scratch — under
			// elastic transactions committing here would make the
			// half-move durable (the cut ContainsTx read is exempt from
			// commit validation), and panicking would crash on a state
			// that legitimately occurs.
			tx.Restart()
		}
		ok = true
	})
	sc.Release(t.ar)
	return ok
}

// Size counts the abstraction's elements in one read-only transaction.
// It is intended for tests and example programs, not hot paths. It always
// runs with full read tracking (CTL) so the count is one consistent
// snapshot even when the domain defaults to elastic transactions.
func (t *Tree) Size(th *stm.Thread) int {
	var count int
	th.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		count = 0
		t.walk(tx, tx.Read(&t.node(t.root).L), func(n *arena.Node) {
			if tx.Read(&n.Del) == 0 {
				count++
			}
		})
	})
	return count
}

// Keys returns the sorted keys of the abstraction in one transaction, with
// full read tracking for snapshot consistency (see Size).
func (t *Tree) Keys(th *stm.Thread) []uint64 {
	var keys []uint64
	th.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		keys = keys[:0]
		t.walk(tx, tx.Read(&t.node(t.root).L), func(n *arena.Node) {
			if tx.Read(&n.Del) == 0 {
				keys = append(keys, n.Key.Plain())
			}
		})
	})
	return keys
}

// walk performs an in-order traversal with transactional reads.
func (t *Tree) walk(tx *stm.Tx, r arena.Ref, visit func(*arena.Node)) {
	if r == arena.Nil {
		return
	}
	n := t.node(r)
	t.walk(tx, tx.Read(&n.L), visit)
	visit(n)
	t.walk(tx, tx.Read(&n.R), visit)
}
