package sftree

import (
	"repro/internal/arena"
	"repro/internal/stm"
)

// This file implements the structural transactions: node-local rotations and
// physical removals, in both the portable form (Algorithm 1, lines 45–59 and
// 71–86) and the optimized form (Algorithm 2). Each runs as a single small
// transaction on the maintenance thread; balance estimates are advisory
// node-local atomics updated alongside (the paper's update-balance-values).

// heightOf returns the local height estimate of a subtree root (0 for ⊥).
func (t *Tree) heightOf(r arena.Ref) int32 {
	if r == arena.Nil {
		return 0
	}
	return t.node(r).LocalH.Load()
}

func maxi32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// setChildHeight refreshes parent's estimate for one child subtree.
func setChildHeight(p *arena.Node, leftChild bool, h int32) {
	if leftChild {
		p.LeftH.Store(h)
	} else {
		p.RightH.Store(h)
	}
	p.LocalH.Store(1 + maxi32(p.LeftH.Load(), p.RightH.Load()))
}

// rotateRight performs one right rotation of the child of parent designated
// by leftChild, dispatching on the tree variant. It reports whether the
// rotation committed with effect.
func (t *Tree) rotateRight(parentRef arena.Ref, leftChild bool) bool {
	var ok bool
	if t.variant == Optimized {
		ok = t.rotateOpt(parentRef, leftChild, false)
	} else {
		ok = t.rotatePortable(parentRef, leftChild, false)
	}
	if ok {
		t.rotations.Add(1)
	} else {
		t.failedRot.Add(1)
	}
	return ok
}

// rotateLeft is the mirror of rotateRight.
func (t *Tree) rotateLeft(parentRef arena.Ref, leftChild bool) bool {
	var ok bool
	if t.variant == Optimized {
		ok = t.rotateOpt(parentRef, leftChild, true)
	} else {
		ok = t.rotatePortable(parentRef, leftChild, true)
	}
	if ok {
		t.rotations.Add(1)
	} else {
		t.failedRot.Add(1)
	}
	return ok
}

// rotatePortable is Algorithm 1's in-place rotation (right rotation shown in
// the paper; left is the mirror). The rotated node n stays in the tree with
// its subtree re-hung, so concurrent portable traversals — whose whole path
// is in their read set — are invalidated rather than misled.
func (t *Tree) rotatePortable(parentRef arena.Ref, leftChild, mirror bool) bool {
	ok := false
	t.maintTh.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		ok = false
		p := t.node(parentRef)
		var nRef arena.Ref
		if leftChild {
			nRef = tx.Read(&p.L)
		} else {
			nRef = tx.Read(&p.R)
		}
		if nRef == arena.Nil {
			return
		}
		n := t.node(nRef)
		if !mirror {
			// Right rotation: the left child l rises.
			lRef := tx.Read(&n.L)
			if lRef == arena.Nil {
				return
			}
			l := t.node(lRef)
			lrRef := tx.Read(&l.R)
			tx.Write(&n.L, lrRef)
			tx.Write(&l.R, nRef)
			if leftChild {
				tx.Write(&p.L, lRef)
			} else {
				tx.Write(&p.R, lRef)
			}
			// update-balance-values (paper line 57).
			n.LeftH.Store(t.heightOf(lrRef))
			n.LocalH.Store(1 + maxi32(n.LeftH.Load(), n.RightH.Load()))
			l.RightH.Store(n.LocalH.Load())
			l.LocalH.Store(1 + maxi32(l.LeftH.Load(), l.RightH.Load()))
			setChildHeight(p, leftChild, l.LocalH.Load())
		} else {
			// Left rotation: the right child r rises.
			rRef := tx.Read(&n.R)
			if rRef == arena.Nil {
				return
			}
			r := t.node(rRef)
			rlRef := tx.Read(&r.L)
			tx.Write(&n.R, rlRef)
			tx.Write(&r.L, nRef)
			if leftChild {
				tx.Write(&p.L, rRef)
			} else {
				tx.Write(&p.R, rRef)
			}
			n.RightH.Store(t.heightOf(rlRef))
			n.LocalH.Store(1 + maxi32(n.LeftH.Load(), n.RightH.Load()))
			r.LeftH.Store(n.LocalH.Load())
			r.LocalH.Store(1 + maxi32(r.LeftH.Load(), r.RightH.Load()))
			setChildHeight(p, leftChild, r.LocalH.Load())
		}
		ok = true
	})
	return ok
}

// rotateOpt is Algorithm 2's rotation (§3.3, Figure 2(c)): instead of
// re-hanging the rotated node n in place, n is unlinked, a fresh copy n'
// takes its position under the risen child, and n keeps its old child
// pointers so a traversal preempted on n still has a path to every key it
// could reach before (Lemmas 13–14). n's removed flag is set to true — or
// true-by-left-rotate for the mirror — so the optimized find knows to
// reroute, and n is handed to the epoch collector.
func (t *Tree) rotateOpt(parentRef arena.Ref, leftChild, mirror bool) bool {
	scratch := t.ar.Alloc(0, 0)
	var removed arena.Ref
	used, ok := false, false
	t.maintTh.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		used, ok = false, false
		removed = arena.Nil
		p := t.node(parentRef)
		if tx.Read(&p.Rem) != arena.RemFalse {
			return
		}
		var nRef arena.Ref
		if leftChild {
			nRef = tx.Read(&p.L)
		} else {
			nRef = tx.Read(&p.R)
		}
		if nRef == arena.Nil {
			return
		}
		n := t.node(nRef)
		sn := t.node(scratch)
		if !mirror {
			// Right rotation: l rises; n' = copy of n with children (l.R, n.R)
			// becomes l's right child.
			lRef := tx.Read(&n.L)
			if lRef == arena.Nil {
				return
			}
			l := t.node(lRef)
			lrRef := tx.Read(&l.R)
			rRef := tx.Read(&n.R)
			t.ar.Reinit(scratch, n.Key.Plain(), tx.Read(&n.Val))
			sn.Del.SetPlain(tx.Read(&n.Del))
			sn.L.SetPlain(lrRef)
			sn.R.SetPlain(rRef)
			sn.LeftH.Store(t.heightOf(lrRef))
			sn.RightH.Store(t.heightOf(rRef))
			sn.LocalH.Store(1 + maxi32(sn.LeftH.Load(), sn.RightH.Load()))
			tx.Write(&l.R, scratch)
			tx.Write(&n.Rem, arena.RemTrue)
			if leftChild {
				tx.Write(&p.L, lRef)
			} else {
				tx.Write(&p.R, lRef)
			}
			l.RightH.Store(sn.LocalH.Load())
			l.LocalH.Store(1 + maxi32(l.LeftH.Load(), l.RightH.Load()))
			setChildHeight(p, leftChild, l.LocalH.Load())
		} else {
			// Left rotation: r rises; n' with children (n.L, r.L) becomes
			// r's left child; n is marked true-by-left-rotate so an equal-key
			// traversal preempted on n goes right to reach n' (§3.3).
			rRef := tx.Read(&n.R)
			if rRef == arena.Nil {
				return
			}
			r := t.node(rRef)
			rlRef := tx.Read(&r.L)
			lRef := tx.Read(&n.L)
			t.ar.Reinit(scratch, n.Key.Plain(), tx.Read(&n.Val))
			sn.Del.SetPlain(tx.Read(&n.Del))
			sn.L.SetPlain(lRef)
			sn.R.SetPlain(rlRef)
			sn.LeftH.Store(t.heightOf(lRef))
			sn.RightH.Store(t.heightOf(rlRef))
			sn.LocalH.Store(1 + maxi32(sn.LeftH.Load(), sn.RightH.Load()))
			tx.Write(&r.L, scratch)
			tx.Write(&n.Rem, arena.RemTrueByLeftRot)
			if leftChild {
				tx.Write(&p.L, rRef)
			} else {
				tx.Write(&p.R, rRef)
			}
			r.LeftH.Store(sn.LocalH.Load())
			r.LocalH.Store(1 + maxi32(r.LeftH.Load(), r.RightH.Load()))
			setChildHeight(p, leftChild, r.LocalH.Load())
		}
		removed = nRef
		used, ok = true, true
	})
	if used {
		t.collector.Defer(removed)
	} else {
		t.ar.Free(scratch)
	}
	return ok
}

// removeChild physically removes parent's designated child if it is
// logically deleted and has at most one child, returning the replacement
// subtree, the removed node and whether the removal took effect.
func (t *Tree) removeChild(parentRef arena.Ref, leftChild bool) (arena.Ref, arena.Ref, bool) {
	var repl, removed arena.Ref
	var ok bool
	if t.variant == Optimized {
		repl, removed, ok = t.removeOpt(parentRef, leftChild)
	} else {
		repl, removed, ok = t.removePortable(parentRef, leftChild)
	}
	if ok {
		t.removals.Add(1)
		t.collector.Defer(removed)
	} else {
		t.failedRemove.Add(1)
	}
	return repl, removed, ok
}

// removePortable is Algorithm 1's remove (lines 71–86, with the obvious
// correction that the surviving child — not the second read — is linked):
// unlink a logically deleted node with at most one child by pointing the
// parent at that child.
func (t *Tree) removePortable(parentRef arena.Ref, leftChild bool) (arena.Ref, arena.Ref, bool) {
	var repl, removed arena.Ref
	ok := false
	t.maintTh.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		ok = false
		p := t.node(parentRef)
		var nRef arena.Ref
		if leftChild {
			nRef = tx.Read(&p.L)
		} else {
			nRef = tx.Read(&p.R)
		}
		if nRef == arena.Nil {
			return
		}
		n := t.node(nRef)
		if tx.Read(&n.Del) == 0 {
			return
		}
		child := tx.Read(&n.L)
		if child != arena.Nil {
			if tx.Read(&n.R) != arena.Nil {
				return // two children: never removed physically (§3.3)
			}
		} else {
			child = tx.Read(&n.R)
		}
		if leftChild {
			tx.Write(&p.L, child)
		} else {
			tx.Write(&p.R, child)
		}
		setChildHeight(p, leftChild, t.heightOf(child))
		repl, removed, ok = child, nRef, true
	})
	return repl, removed, ok
}

// removeOpt is Algorithm 2's remove: in addition to unlinking, the removed
// node's child pointers are re-pointed at its former parent (lines 22–23) so
// a traversal preempted on it has a way back into the tree, and its removed
// flag is raised (line 24).
func (t *Tree) removeOpt(parentRef arena.Ref, leftChild bool) (arena.Ref, arena.Ref, bool) {
	var repl, removed arena.Ref
	ok := false
	t.maintTh.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		ok = false
		p := t.node(parentRef)
		if tx.Read(&p.Rem) != arena.RemFalse {
			return
		}
		var nRef arena.Ref
		if leftChild {
			nRef = tx.Read(&p.L)
		} else {
			nRef = tx.Read(&p.R)
		}
		if nRef == arena.Nil {
			return
		}
		n := t.node(nRef)
		if tx.Read(&n.Del) == 0 {
			return
		}
		child := tx.Read(&n.L)
		if child != arena.Nil {
			if tx.Read(&n.R) != arena.Nil {
				return
			}
		} else {
			child = tx.Read(&n.R)
		}
		if leftChild {
			tx.Write(&p.L, child)
		} else {
			tx.Write(&p.R, child)
		}
		tx.Write(&n.L, parentRef)
		tx.Write(&n.R, parentRef)
		tx.Write(&n.Rem, arena.RemTrue)
		setChildHeight(p, leftChild, t.heightOf(child))
		repl, removed, ok = child, nRef, true
	})
	return repl, removed, ok
}
