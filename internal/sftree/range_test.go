package sftree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stm"
)

// TestRangeSkipsDeletedAndSurvivesMaintenance scans while the maintenance
// thread physically removes and rotates under the traversal: every scan
// must stay in-bounds, strictly ascending and free of logically deleted
// keys, and a quiescent scan must match the live set exactly.
func TestRangeSkipsDeletedAndSurvivesMaintenance(t *testing.T) {
	for _, variant := range []Variant{Portable, Optimized} {
		s := stm.New()
		tr := New(s, WithVariant(variant))
		tr.Start()
		th := s.NewThread()

		var stop atomic.Bool
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // churn: inserts and logical deletes
			defer wg.Done()
			wth := s.NewThread()
			rng := rand.New(rand.NewSource(5))
			for !stop.Load() {
				k := uint64(rng.Intn(2048))
				if rng.Intn(2) == 0 {
					tr.Insert(wth, k, k)
				} else {
					tr.Delete(wth, k)
				}
			}
		}()
		for i := 0; i < 300; i++ {
			prev, first := uint64(0), true
			tr.Range(th, 256, 1792, func(k, v uint64) bool {
				if k < 256 || k > 1792 {
					t.Errorf("key %d out of bounds", k)
				}
				if !first && k <= prev {
					t.Errorf("not ascending: %d after %d", k, prev)
				}
				if v != k {
					t.Errorf("torn value %d at %d", v, k)
				}
				prev, first = k, false
				return true
			})
		}
		stop.Store(true)
		wg.Wait()
		tr.Stop()

		// Quiescent: Range over everything must equal Keys.
		keys := tr.Keys(th)
		var got []uint64
		tr.Range(th, 0, MaxKey-1, func(k, _ uint64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(keys) {
			t.Fatalf("%v: range %d keys, Keys %d", variant, len(got), len(keys))
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("%v: range[%d] = %d, Keys %d", variant, i, got[i], keys[i])
			}
		}
	}
}

// TestRangeElastic checks the elastic scan returns correct results on a
// quiescent tree (where cutting changes nothing) and exercises it under
// churn (sortedness within the scan is still guaranteed by the in-order
// walk; elastic cuts are counted to prove the discipline actually ran).
func TestRangeElastic(t *testing.T) {
	s := stm.New(stm.WithMode(stm.Elastic))
	tr := New(s, WithVariant(Portable))
	th := s.NewThread()
	for k := uint64(0); k < 500; k++ {
		tr.Insert(th, k, k*2)
	}
	var got []uint64
	if !tr.RangeElastic(th, 100, 199, func(k, v uint64) bool {
		if v != k*2 {
			t.Fatalf("value %d at key %d", v, k)
		}
		got = append(got, k)
		return true
	}) {
		t.Fatal("elastic scan reported early stop")
	}
	if len(got) != 100 || got[0] != 100 || got[99] != 199 {
		t.Fatalf("elastic scan saw %d keys [%d..%d]", len(got), got[0], got[len(got)-1])
	}
	if th.Stats().ElasticCuts == 0 {
		t.Fatal("elastic scan performed no cuts (discipline did not engage)")
	}

	// The optimized variant demotes to CTL (still correct, no cuts needed).
	so := stm.New(stm.WithMode(stm.Elastic))
	tro := New(so, WithVariant(Optimized))
	tho := so.NewThread()
	tro.Insert(tho, 1, 10)
	n := 0
	tro.RangeElastic(tho, 0, 10, func(_, _ uint64) bool { n++; return true })
	if n != 1 {
		t.Fatalf("optimized elastic scan visited %d", n)
	}
}

func TestEmptyHint(t *testing.T) {
	s := stm.New()
	tr := New(s)
	if !tr.EmptyHint() {
		t.Fatal("fresh tree not hinted empty")
	}
	th := s.NewThread()
	tr.Insert(th, 1, 1)
	if tr.EmptyHint() {
		t.Fatal("non-empty tree hinted empty")
	}
	// A logically deleted tree is not hinted empty (the node is still
	// linked); only physical removal can empty the structure again.
	tr.Delete(th, 1)
	if tr.EmptyHint() {
		t.Fatal("logically-deleted tree hinted empty before maintenance")
	}
	tr.Quiesce(1 << 10)
	if !tr.EmptyHint() {
		t.Fatal("tree not hinted empty after maintenance removed the node")
	}
}
