package sftree

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/stm"
)

// TestHintTargetedRemoval: a committed delete publishes a removal hint, and
// draining the hint physically removes the node without any full sweep.
func TestHintTargetedRemoval(t *testing.T) {
	for _, v := range []Variant{Portable, Optimized} {
		t.Run(v.String(), func(t *testing.T) {
			s := stm.New()
			tr := New(s, WithVariant(v))
			th := s.NewThread()
			for i := uint64(0); i < 64; i++ {
				tr.Insert(th, i, i)
			}
			tr.Quiesce(1 << 20) // settle the fill, drain its hints
			base := tr.Stats()

			// Delete a leaf-ish key: the hint must be queued.
			if !tr.Delete(th, 63) {
				t.Fatal("delete failed")
			}
			if tr.HintBacklog() == 0 {
				t.Fatal("committed delete queued no hint")
			}
			hints, work := tr.DrainHints(16)
			if hints == 0 {
				t.Fatal("DrainHints consumed nothing")
			}
			if work == 0 {
				t.Fatal("targeted repair did no structural work on a deleted leaf")
			}
			st := tr.Stats()
			if st.Passes != base.Passes {
				t.Fatalf("targeted repair ran a full sweep (passes %d -> %d)", base.Passes, st.Passes)
			}
			if st.Removals != base.Removals+1 {
				t.Fatalf("removals = %d, want %d", st.Removals, base.Removals+1)
			}
			if st.TargetedRepairs == 0 {
				t.Fatal("TargetedRepairs not counted")
			}
			if got := tr.DeletedReachable(); got != 0 {
				t.Fatalf("deleted node still reachable after targeted repair (%d)", got)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHintAbortedTxPublishesNothing: hints ride stm.Tx.OnCommit, so an
// attempt that restarts must not publish (only the committed attempt does,
// exactly once).
func TestHintAbortedTxPublishesNothing(t *testing.T) {
	s := stm.New()
	tr := New(s)
	th := s.NewThread()
	for i := uint64(0); i < 16; i++ {
		tr.Insert(th, i, i)
	}
	tr.Quiesce(1 << 20)
	emitted := tr.Stats().HintsEmitted

	attempts := 0
	th.Atomic(func(tx *stm.Tx) {
		attempts++
		ok := tr.DeleteTx(tx, 7)
		if !ok {
			t.Fatal("DeleteTx failed")
		}
		if attempts < 3 {
			tx.Restart()
		}
	})
	st := tr.Stats()
	if got := st.HintsEmitted + st.HintsCoalesced + st.HintsDropped; got != emitted+1 {
		t.Fatalf("hint published %d times across %d attempts, want exactly 1",
			got-emitted, attempts)
	}
}

// TestHintDedupCoalesces: while a hint for a node sits queued, further
// hints for the same node fold into it via the per-node dedup bit.
func TestHintDedupCoalesces(t *testing.T) {
	s := stm.New()
	tr := New(s)
	th := s.NewThread()
	// Insert then repeatedly delete/resurrect/delete the same key with no
	// maintenance draining: the insert queues a hint on the node, and each
	// later delete hints the very same node again.
	tr.Insert(th, 7, 7)
	for i := 0; i < 8; i++ {
		tr.Delete(th, 7)
		tr.Insert(th, 7, 7)
	}
	st := tr.Stats()
	if st.HintsCoalesced == 0 {
		t.Fatalf("no hint coalescing on repeated hints for one node: %+v", st)
	}
	if bl := tr.HintBacklog(); bl >= 17 {
		t.Fatalf("coalescing left %d queued hints for one node", bl)
	}
}

// TestQuiesceDrainsHintQueue: Quiesce consumes the queue, so a quiescent
// tree has no backlog and is clean and balanced.
func TestQuiesceDrainsHintQueue(t *testing.T) {
	s := stm.New()
	tr := New(s)
	th := s.NewThread()
	for i := uint64(0); i < 2048; i++ {
		tr.Insert(th, i, i)
	}
	for i := uint64(0); i < 2048; i += 3 {
		tr.Delete(th, i)
	}
	if !tr.Quiesce(1 << 20) {
		t.Fatal("Quiesce did not converge")
	}
	if bl := tr.HintBacklog(); bl != 0 {
		t.Fatalf("hint backlog %d after Quiesce", bl)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckBalanced(1); err != nil {
		t.Fatal(err)
	}
}

// TestStartStopConcurrent provokes the Stop/Stop double-wait race of the
// unserialized lifecycle: many goroutines toggling Start/Stop/Quiesce
// concurrently must neither deadlock nor panic, and the tree must end up
// stoppable. Run under -race it also checks the lifecycle fields.
func TestStartStopConcurrent(t *testing.T) {
	s := stm.New()
	tr := New(s)
	th := s.NewThread()
	for i := uint64(0); i < 512; i++ {
		tr.Insert(th, i, i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				switch rng.Intn(3) {
				case 0:
					tr.Start()
				case 1:
					tr.Stop()
				case 2:
					tr.Stop()
					tr.Start()
				}
			}
		}(int64(g) * 131)
	}
	wg.Wait()
	tr.Stop()
	if tr.running.Load() {
		t.Fatal("tree still running after final Stop")
	}
	// The lifecycle must still work after the storm.
	tr.Start()
	tr.Stop()
}

// TestHintPriorityDrainOrder enqueues interleaved removal and rebalance
// hints and asserts the drain order: every removal hint comes out before
// any rebalance hint, and each kind stays FIFO within itself — so a burst
// of rebalance noise can never delay physical removals.
func TestHintPriorityDrainOrder(t *testing.T) {
	q := newHintPQ(64, 0) // promotion off: this test asserts strict priority
	const n = 10
	for i := uint64(0); i < n; i++ {
		// Interleave: rebalance first so a kind-blind FIFO would fail.
		if !q.push(hint{key: 1000 + i, kind: hintRebalance}) {
			t.Fatal("rebalance push failed")
		}
		if !q.push(hint{key: i, kind: hintRemove}) {
			t.Fatal("remove push failed")
		}
	}
	if got := q.size(); got != 2*n {
		t.Fatalf("size %d, want %d", got, 2*n)
	}
	var order []hint
	for {
		h, ok := q.pop()
		if !ok {
			break
		}
		order = append(order, h)
	}
	if len(order) != 2*n {
		t.Fatalf("drained %d hints, want %d", len(order), 2*n)
	}
	for i, h := range order {
		if i < n {
			if h.kind != hintRemove {
				t.Fatalf("position %d drained kind %d, want all removals first", i, h.kind)
			}
			if h.key != uint64(i) {
				t.Fatalf("removal drained out of FIFO order: position %d key %d", i, h.key)
			}
		} else {
			if h.kind != hintRebalance {
				t.Fatalf("position %d drained kind %d, want rebalance", i, h.kind)
			}
			if h.key != 1000+uint64(i-n) {
				t.Fatalf("rebalance drained out of FIFO order: position %d key %d", i, h.key)
			}
		}
	}
}

// TestHintPriorityRemovalSurvivesRebalanceBurst fills the rebalance level
// to the brim and checks a removal hint still enqueues and drains first:
// the levels have independent capacity.
func TestHintPriorityRemovalSurvivesRebalanceBurst(t *testing.T) {
	q := newHintPQ(8, 0) // ring capacity 8 per level, promotion off
	for i := uint64(0); ; i++ {
		if !q.push(hint{key: i, kind: hintRebalance}) {
			break // rebalance level full
		}
	}
	if !q.push(hint{key: 42, kind: hintRemove}) {
		t.Fatal("removal hint dropped because the rebalance level was full")
	}
	h, ok := q.pop()
	if !ok || h.kind != hintRemove || h.key != 42 {
		t.Fatalf("first drained hint %+v, want the removal", h)
	}
}

// TestHintAgePromotionBoundary pins the promotion boundary: a rebalance
// hint that has waited exactly promoteAge still yields to fresh removals,
// one nanosecond older outranks them; and with promotion disabled even an
// ancient rebalance hint waits.
func TestHintAgePromotionBoundary(t *testing.T) {
	const age = int64(5 * time.Millisecond)
	now := time.Now().UnixNano()

	// Exactly at the bound: not promoted (strictly-older semantics).
	q := newHintPQ(8, time.Duration(age))
	q.push(hint{key: 1, kind: hintRebalance, at: now - age})
	q.push(hint{key: 2, kind: hintRemove, at: now})
	if h, ok := q.popAt(now); !ok || h.kind != hintRemove {
		t.Fatalf("at the exact bound drained %+v, want the removal first", h)
	}
	if h, ok := q.popAt(now); !ok || h.kind != hintRebalance {
		t.Fatalf("second drain %+v, want the rebalance", h)
	}

	// One past the bound: the waiting rebalance outranks a fresh removal.
	q = newHintPQ(8, time.Duration(age))
	q.push(hint{key: 1, kind: hintRebalance, at: now - age - 1})
	q.push(hint{key: 2, kind: hintRemove, at: now})
	if h, ok := q.popAt(now); !ok || h.kind != hintRebalance {
		t.Fatalf("past the bound drained %+v, want the promoted rebalance first", h)
	}
	if h, ok := q.popAt(now); !ok || h.kind != hintRemove {
		t.Fatalf("second drain %+v, want the removal", h)
	}

	// Promotion disabled: an arbitrarily old rebalance hint still waits.
	q = newHintPQ(8, 0)
	q.push(hint{key: 1, kind: hintRebalance, at: now - 100*age})
	q.push(hint{key: 2, kind: hintRemove, at: now})
	if h, ok := q.popAt(now); !ok || h.kind != hintRemove {
		t.Fatalf("with promotion disabled drained %+v, want the removal first", h)
	}

	// Promotion is rate-bounded: a standing over-age rebalance backlog must
	// alternate with removals, never monopolize the drain.
	q = newHintPQ(8, time.Duration(age))
	q.push(hint{key: 1, kind: hintRebalance, at: now - 2*age})
	q.push(hint{key: 2, kind: hintRebalance, at: now - 2*age})
	q.push(hint{key: 3, kind: hintRemove, at: now})
	q.push(hint{key: 4, kind: hintRemove, at: now})
	var kinds []uint64
	for {
		h, ok := q.popAt(now)
		if !ok {
			break
		}
		kinds = append(kinds, h.kind)
	}
	want := []uint64{hintRebalance, hintRemove, hintRebalance, hintRemove}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("over-age backlog drained kinds %v, want alternation %v", kinds, want)
		}
	}
}

// TestHintRemoveNeverDemotedByDedup: a removal hint for a node whose dedup
// bit is already held by a queued rebalance hint (the insert-then-delete
// pattern) must still enqueue at the removal level instead of folding into
// the low-priority hint.
func TestHintRemoveNeverDemotedByDedup(t *testing.T) {
	s := stm.New()
	tr := New(s)
	th := s.NewThread()
	// Insert queues a rebalance hint for the new leaf and sets its dedup
	// bit; the following delete's removal hint hits the set bit.
	tr.Insert(th, 7, 7)
	if tr.hintq.remove.Size() != 0 {
		t.Fatal("insert queued a removal hint")
	}
	tr.Delete(th, 7)
	if tr.hintq.remove.Size() == 0 {
		t.Fatal("removal hint was folded into the queued rebalance hint (demoted to low priority)")
	}
	h, ok := tr.hintq.pop()
	if !ok || h.kind != hintRemove {
		t.Fatalf("first drained hint %+v, want the removal", h)
	}
}

// TestHintQueueMPMC hammers the bounded queue from many producers against
// one consumer, checking nothing is duplicated or invented.
func TestHintQueueMPMC(t *testing.T) {
	q := newHintQueue(64)
	const producers = 4
	const perProducer = 10000
	var wg sync.WaitGroup
	var pushed, dropped [producers]uint64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if q.Push(hint{key: uint64(p*perProducer + i)}) {
					pushed[p]++
				} else {
					dropped[p]++
				}
			}
		}(p)
	}
	doneProducing := make(chan struct{})
	done := make(chan struct{})
	var popped uint64
	seen := make(map[uint64]bool)
	take := func(h hint) {
		if seen[h.key] {
			t.Errorf("duplicate key %d", h.key)
		}
		seen[h.key] = true
		popped++
	}
	go func() {
		defer close(done)
		for {
			if h, ok := q.Pop(); ok {
				take(h)
				continue
			}
			select {
			case <-doneProducing:
				for { // final drain
					h, ok := q.Pop()
					if !ok {
						return
					}
					take(h)
				}
			default:
			}
		}
	}()
	wg.Wait()
	close(doneProducing)
	<-done
	var totalPushed uint64
	for p := 0; p < producers; p++ {
		totalPushed += pushed[p]
	}
	if popped != totalPushed {
		t.Fatalf("popped %d != pushed %d", popped, totalPushed)
	}
}
