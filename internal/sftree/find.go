package sftree

import (
	"repro/internal/arena"
	"repro/internal/stm"
)

// obsMaxDepth bounds how many descent hops an observation samples: the
// upper levels of the path are where imbalance is worth a targeted repair
// (they shorten every traversal), and the bound keeps the per-operation
// overhead constant regardless of tree depth.
const obsMaxDepth = 8

// pathObs records the hint observation of a descent: the first (closest to
// the root) node whose height estimates differed by more than one. A nil
// *pathObs disables observation (hints off, read-only operations, internal
// traversals).
type pathObs struct {
	key   uint64
	ref   arena.Ref
	ok    bool
	depth int
}

// observe samples the node's height estimates (plain atomic loads, off the
// transactional path) and records the first imbalanced node seen.
func (t *Tree) observe(n *arena.Node, ref arena.Ref, obs *pathObs) {
	if obs == nil || obs.ok || obs.depth >= obsMaxDepth {
		return
	}
	obs.depth++
	lh, rh := n.LeftH.Load(), n.RightH.Load()
	if lh > rh+1 || rh > lh+1 {
		obs.key = n.Key.Plain()
		obs.ref = ref
		obs.ok = true
	}
}

// find locates the node for key k: either the node whose key equals k, or
// the would-be parent of k (a node with a ⊥ child pointer on k's side). It
// dispatches on the tree variant. When obs is non-nil the descent also
// watches for height imbalance along the traversed path (the hint source of
// hint-driven maintenance).
//
// Note on the pseudocode: Algorithm 1 lines 19–20 and Algorithm 2 lines 39
// and 44–45 of the paper print the left/right choice inverted relative to
// Algorithm 2 lines 48–50, the insert code and the proofs ("its left child
// has range [−∞,k]"). We follow the proofs: smaller keys to the left.
func (t *Tree) find(tx *stm.Tx, k uint64, obs *pathObs) arena.Ref {
	if t.variant == Optimized {
		return t.findOptimized(tx, k, obs)
	}
	return t.findPortable(tx, k, obs)
}

// findPortable is paper Algorithm 1 lines 13–22: every child-pointer load is
// a transactional read, so the whole root-to-node path sits in the read set
// and any concurrent structural change along it invalidates the transaction
// at commit. Keys are immutable after insertion and are read plainly, as in
// the pseudocode.
func (t *Tree) findPortable(tx *stm.Tx, k uint64, obs *pathObs) arena.Ref {
	next := t.root
	var curr arena.Ref
	for {
		curr = next
		n := t.node(curr)
		val := n.Key.Plain()
		if curr != t.root {
			t.observe(n, curr, obs)
		}
		if val == k {
			break
		}
		if k < val {
			next = tx.Read(&n.L)
		} else {
			next = tx.Read(&n.R)
		}
		if next == arena.Nil {
			break
		}
	}
	return curr
}

// removedStep chooses the next hop from a physically removed node. The
// preferred direction is followed when possible, but a rotation-removed
// node keeps its pre-rotation children and the far-side one may be ⊥ —
// Lemma 16's second case — in which case the other child covers the whole
// range and must be taken instead. Both children ⊥ cannot occur (removals
// re-point both at the parent; rotations require the rising child), but the
// root is a safe restart if it ever did.
func (t *Tree) removedStep(tx *stm.Tx, n *arena.Node, preferLeft bool) arena.Ref {
	first, second := &n.L, &n.R
	if !preferLeft {
		first, second = &n.R, &n.L
	}
	if next := tx.URead(first); next != arena.Nil {
		return next
	}
	if next := tx.URead(second); next != arena.Nil {
		return next
	}
	return t.root
}

// findOptimized is paper Algorithm 2 lines 28–57: the descent uses unit
// reads, and transactional reads are performed only at the candidate node —
// on its removed flag, on the ⊥ child pointer when the search ends at a
// leaf, and on the parent's pointer to the candidate. A traversal preempted
// on a physically removed node recovers by following the node's child
// pointers, which removals re-point at the former parent and which rotations
// leave directed at live subtrees (Lemmas 13–16).
func (t *Tree) findOptimized(tx *stm.Tx, k uint64, obs *pathObs) arena.Ref {
	curr := t.root
	next := t.root
	for {
		var parent arena.Ref
	descend:
		for {
			parent = curr
			curr = next
			n := t.node(curr)
			val := n.Key.Plain()
			if curr != t.root {
				t.observe(n, curr, obs)
			}
			if val == k {
				rem := tx.Read(&n.Rem)
				if rem == arena.RemFalse {
					// Candidate found; the transactional read of Rem pins
					// the node in the tree until commit.
					break descend
				}
				// The node with our key was physically removed while we
				// were travelling. A node displaced by a left rotation is
				// replaced by a copy in its right subtree; every other
				// removal leaves the copy (or the range) to the left
				// (Lemma 13/14 and §3.3 "true by left rot").
				if rem == arena.RemTrueByLeftRot {
					next = t.removedStep(tx, n, false)
				} else {
					next = t.removedStep(tx, n, true)
				}
				continue
			}
			if k < val {
				next = tx.URead(&n.L)
			} else {
				next = tx.URead(&n.R)
			}
			if next != arena.Nil {
				continue
			}
			// Reached what looks like the insertion point: re-check with
			// transactional reads (Algorithm 2 lines 42–49).
			if tx.Read(&n.Rem) == arena.RemFalse {
				if k < val {
					next = tx.Read(&n.L)
				} else {
					next = tx.Read(&n.R)
				}
				if next == arena.Nil {
					// Leaf candidate: the ⊥ child pointer is now in the
					// read set, so a concurrent insert of k conflicts.
					break descend
				}
				// A node slipped in between the unit read and the
				// transactional read; keep descending.
				continue
			}
			// The node was removed under our feet; its child pointers now
			// lead back into the tree (removal re-points them at the old
			// parent; rotations keep them on live ranges).
			next = t.removedStep(tx, n, k < val)
		}
		if curr == t.root {
			// Only possible for an empty tree (the sentinel is its own
			// candidate); the sentinel is immutable so no parent check
			// applies.
			return curr
		}
		if parent == curr {
			// The descent restarted at this very node (see below) and it
			// is the candidate. Its pinned removed=false flag already
			// guarantees it is in the tree at commit time (Lemma 4), and
			// in the leaf case the ⊥ child pointer is pinned too, so the
			// parent-link re-check has nothing left to add.
			return curr
		}
		// Validate the parent link transactionally (Algorithm 2 lines
		// 50–56): the parent must still point at the candidate, which both
		// pins the candidate's position and forces the STM to validate.
		pn := t.node(parent)
		var tmp arena.Ref
		if t.node(curr).Key.Plain() > pn.Key.Plain() {
			tmp = tx.Read(&pn.R)
		} else {
			tmp = tx.Read(&pn.L)
		}
		if tmp == curr {
			return curr
		}
		// The parent no longer points at the candidate. Either the
		// candidate was just removed/copied (its removed flag will read
		// true — or trigger a validation abort — on re-examination), or
		// the remembered parent was itself removed while we crossed it.
		// Restart the descent *at* the parent: a removed node's child
		// pointers always lead back to live ranges (Lemma 11/16), so the
		// search converges instead of re-testing a stale pair forever.
		next = parent
		curr = parent
	}
}
