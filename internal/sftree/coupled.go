package sftree

import (
	"repro/internal/arena"
	"repro/internal/stm"
)

// This file implements the ablation of the paper's distributed rotation
// mechanism (§3.1): the same propagate/remove/rotate sweep as
// RunMaintenancePass, but with every structural change of the sweep
// encapsulated in one single transaction — the way a straightforwardly
// transactionalized rebalancer would do it, and exactly what the paper
// argues against:
//
//	"If local rotations are performed in a single transaction block then
//	 even the rotations that occur further down the tree will be part of a
//	 likely conflicting transaction."
//
// BenchmarkAblationMaintenanceCoupling compares the two under load: the
// coupled pass's read set covers the whole tree, so any concurrent update
// aborts it (or is aborted by it), while the distributed passes conflict
// only node-locally.

// RunMaintenancePassCoupled executes one maintenance sweep as a single
// transaction. It returns the number of structural changes performed. Like
// RunMaintenancePass it must only be driven by one goroutine at a time and
// it honours the §3.4 collector for removed nodes.
func (t *Tree) RunMaintenancePassCoupled() int {
	t.collector.BeginEpoch(t.stm.Threads())
	var work int
	var removedNodes []arena.Ref
	t.maintTh.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		work = 0
		removedNodes = removedNodes[:0]
		rootN := t.node(t.root)
		l := tx.Read(&rootN.L)
		nl, h, w := t.coupledRec(tx, l, &removedNodes)
		if nl != l {
			tx.Write(&rootN.L, nl)
		}
		rootN.LeftH.Store(h)
		rootN.LocalH.Store(h + 1)
		work = w
	})
	// Only after the transaction committed are the unlinked nodes real
	// garbage; hand them to the epoch collector.
	for _, r := range removedNodes {
		t.collector.Defer(r)
		t.removals.Add(1)
	}
	freed := t.collector.TryFree()
	t.freed.Add(uint64(freed))
	t.passes.Add(1)
	return work + freed
}

// coupledRec rebalances the subtree in-transaction, returning the new
// subtree root, its exact height, and the structural work done.
func (t *Tree) coupledRec(tx *stm.Tx, ref arena.Ref, removed *[]arena.Ref) (arena.Ref, int32, int) {
	if ref == arena.Nil {
		return arena.Nil, 0, 0
	}
	n := t.node(ref)
	l := tx.Read(&n.L)
	r := tx.Read(&n.R)
	// Physical removal of logically deleted nodes with at most one child,
	// spliced directly in-transaction.
	if tx.Read(&n.Del) != 0 && (l == arena.Nil || r == arena.Nil) {
		child := l
		if child == arena.Nil {
			child = r
		}
		*removed = append(*removed, ref)
		nc, h, w := t.coupledRec(tx, child, removed)
		return nc, h, w + 1
	}
	nl, lh, lw := t.coupledRec(tx, l, removed)
	if nl != l {
		tx.Write(&n.L, nl)
	}
	nr, rh, rw := t.coupledRec(tx, r, removed)
	if nr != r {
		tx.Write(&n.R, nr)
	}
	work := lw + rw
	n.LeftH.Store(lh)
	n.RightH.Store(rh)
	n.LocalH.Store(1 + maxi32(lh, rh))

	switch {
	case lh > rh+1:
		lRef := tx.Read(&n.L)
		ln := t.node(lRef)
		llh, lrh := ln.LeftH.Load(), ln.RightH.Load()
		if lrh > llh {
			tx.Write(&n.L, t.coupledRotateLeft(tx, lRef))
			work++
		}
		root := t.coupledRotateRight(tx, ref)
		return root, t.heightOf(root), work + 1
	case rh > lh+1:
		rRef := tx.Read(&n.R)
		rn := t.node(rRef)
		rlh, rrh := rn.LeftH.Load(), rn.RightH.Load()
		if rlh > rrh {
			tx.Write(&n.R, t.coupledRotateRight(tx, rRef))
			work++
		}
		root := t.coupledRotateLeft(tx, ref)
		return root, t.heightOf(root), work + 1
	}
	return ref, 1 + maxi32(lh, rh), work
}

// coupledRotateRight is an in-place right rotation inside the caller's
// transaction, returning the risen node.
func (t *Tree) coupledRotateRight(tx *stm.Tx, ref arena.Ref) arena.Ref {
	n := t.node(ref)
	lRef := tx.Read(&n.L)
	l := t.node(lRef)
	lr := tx.Read(&l.R)
	tx.Write(&n.L, lr)
	tx.Write(&l.R, ref)
	n.LeftH.Store(t.heightOf(lr))
	n.LocalH.Store(1 + maxi32(n.LeftH.Load(), n.RightH.Load()))
	l.RightH.Store(n.LocalH.Load())
	l.LocalH.Store(1 + maxi32(l.LeftH.Load(), l.RightH.Load()))
	t.rotations.Add(1)
	return lRef
}

// coupledRotateLeft is the mirror of coupledRotateRight.
func (t *Tree) coupledRotateLeft(tx *stm.Tx, ref arena.Ref) arena.Ref {
	n := t.node(ref)
	rRef := tx.Read(&n.R)
	r := t.node(rRef)
	rl := tx.Read(&r.L)
	tx.Write(&n.R, rl)
	tx.Write(&r.L, ref)
	n.RightH.Store(t.heightOf(rl))
	n.LocalH.Store(1 + maxi32(n.LeftH.Load(), n.RightH.Load()))
	r.LeftH.Store(n.LocalH.Load())
	r.LocalH.Store(1 + maxi32(r.LeftH.Load(), r.RightH.Load()))
	t.rotations.Add(1)
	return rRef
}
