package sftree

import (
	"testing"

	"repro/internal/arena"
	"repro/internal/stm"
)

// Directed white-box tests for the Algorithm 2 machinery: copy-on-rotate,
// removed-node signposting, and traversal recovery through removed nodes.

// buildOpt inserts keys into an optimized tree and returns it.
func buildOpt(t *testing.T, keys ...uint64) (*Tree, *stm.Thread) {
	t.Helper()
	s := stm.New()
	tr := New(s, WithVariant(Optimized))
	th := s.NewThread()
	for _, k := range keys {
		if !tr.Insert(th, k, k*10) {
			t.Fatalf("insert %d failed", k)
		}
	}
	return tr, th
}

// refOf walks plainly to the node with key k (quiescent helper).
func refOf(t *testing.T, tr *Tree, k uint64) arena.Ref {
	t.Helper()
	ref := tr.node(tr.root).L.Plain()
	for ref != arena.Nil {
		n := tr.node(ref)
		switch {
		case n.Key.Plain() == k:
			return ref
		case k < n.Key.Plain():
			ref = n.L.Plain()
		default:
			ref = n.R.Plain()
		}
	}
	t.Fatalf("key %d not reachable", k)
	return arena.Nil
}

func TestOptRightRotationCopies(t *testing.T) {
	// Shape: 30 -> (20 -> (10, 25), 40). Right rotation at 30 (left child
	// of the sentinel) must rise 20, copy 30 into a fresh node, and leave
	// the original 30 marked removed with its old children intact.
	tr, th := buildOpt(t, 30, 20, 40, 10, 25)
	old30 := refOf(t, tr, 30)
	if !tr.rotateRight(tr.root, true) {
		t.Fatal("rotation failed")
	}
	oldNode := tr.node(old30)
	if oldNode.Rem.Plain() != arena.RemTrue {
		t.Fatalf("original 30 removed flag = %d, want RemTrue", oldNode.Rem.Plain())
	}
	// Original keeps its pre-rotation children: left=20, right=40.
	if tr.node(oldNode.L.Plain()).Key.Plain() != 20 {
		t.Fatal("original 30 lost its left signpost")
	}
	if tr.node(oldNode.R.Plain()).Key.Plain() != 40 {
		t.Fatal("original 30 lost its right signpost")
	}
	// The tree now has 20 at the top with a fresh copy of 30.
	top := tr.node(tr.root).L.Plain()
	if tr.node(top).Key.Plain() != 20 {
		t.Fatalf("top key = %d, want 20", tr.node(top).Key.Plain())
	}
	new30 := refOf(t, tr, 30)
	if new30 == old30 {
		t.Fatal("rotation did not copy the rotated node")
	}
	if tr.node(new30).Val.Plain() != 300 {
		t.Fatal("copy lost the value")
	}
	// Every key still present.
	for _, k := range []uint64{10, 20, 25, 30, 40} {
		if !tr.Contains(th, k) {
			t.Fatalf("key %d lost after rotation", k)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOptLeftRotationMarksTrueByLeftRot(t *testing.T) {
	// Shape: 10 -> (nil, 20 -> (15, 30)). Left rotation at 10.
	tr, th := buildOpt(t, 10, 20, 15, 30)
	old10 := refOf(t, tr, 10)
	if !tr.rotateLeft(tr.root, true) {
		t.Fatal("rotation failed")
	}
	if got := tr.node(old10).Rem.Plain(); got != arena.RemTrueByLeftRot {
		t.Fatalf("left-rotated node flag = %d, want RemTrueByLeftRot", got)
	}
	// The special find rule: an equal-key traversal preempted on old10 must
	// go RIGHT to reach the copy. Verify the copy is in old10's right
	// subtree: old10.R leads to 20, whose left child is the copy of 10.
	r := tr.node(old10).R.Plain()
	if tr.node(r).Key.Plain() != 20 {
		t.Fatal("signpost right child should still be 20")
	}
	for _, k := range []uint64{10, 15, 20, 30} {
		if !tr.Contains(th, k) {
			t.Fatalf("key %d lost", k)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOptRemoveSignpostsToParent(t *testing.T) {
	// 20 -> (10, 30); delete 10 logically, then physically remove it:
	// its child pointers must both point back at 20.
	tr, th := buildOpt(t, 20, 10, 30)
	if !tr.Delete(th, 10) {
		t.Fatal("delete failed")
	}
	parent := refOf(t, tr, 20)
	ten := refOf(t, tr, 10)
	repl, removed, ok := tr.removeChild(parent, true)
	if !ok {
		t.Fatal("removal failed")
	}
	if removed != ten {
		t.Fatal("removed wrong node")
	}
	if repl != arena.Nil {
		t.Fatalf("leaf removal replacement = %d, want Nil", repl)
	}
	n := tr.node(ten)
	if n.Rem.Plain() != arena.RemTrue {
		t.Fatal("removed flag not set")
	}
	if n.L.Plain() != parent || n.R.Plain() != parent {
		t.Fatal("removed node's children must signpost the former parent")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOptFindRecoversThroughRemovedNode(t *testing.T) {
	// Simulate a traversal preempted on a removed node: start a find whose
	// descent crosses a node, remove that node between the uread and the
	// candidate pinning, and check the operation still lands correctly.
	// We emulate the preemption deterministically by first removing the
	// node and then calling the internal find with the stale entry point:
	// the descend loop must walk out through the signposts.
	tr, th := buildOpt(t, 50, 25, 75, 10, 30)
	if !tr.Delete(th, 25) {
		t.Fatal("delete failed")
	}
	fifty := refOf(t, tr, 50)
	twentyfive := refOf(t, tr, 25)
	// 25 has two children (10, 30): removal must refuse.
	if _, _, ok := tr.removeChild(fifty, true); ok {
		t.Fatal("removed a node with two children")
	}
	// Drop 10 so 25 has one child, then remove 25.
	tr.Delete(th, 10)
	ten := refOf(t, tr, 10)
	if _, _, ok := tr.removeChild(twentyfive, true); !ok {
		t.Fatal("could not remove leaf 10")
	}
	_ = ten
	if repl, _, ok := tr.removeChild(fifty, true); !ok || repl == arena.Nil {
		t.Fatalf("could not remove 25 (repl=%d ok=%v)", repl, ok)
	}
	// A fresh find for 30 must succeed even if it entered via the stale
	// ref: emulate by running a transactional find that starts from the
	// removed node's signposts — removedStep must route to the parent.
	th.Atomic(func(tx *stm.Tx) {
		n := tr.node(twentyfive)
		if !arena.Removed(tx.URead(&n.Rem)) {
			t.Error("25 should be removed")
		}
		step := tr.removedStep(tx, n, false)
		if step == arena.Nil {
			t.Error("removedStep returned Nil")
		}
	})
	if !tr.Contains(th, 30) || !tr.Contains(th, 50) || !tr.Contains(th, 75) {
		t.Fatal("live keys lost after removals")
	}
	if tr.Contains(th, 25) || tr.Contains(th, 10) {
		t.Fatal("removed keys still visible")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOptRotationPreservesDeletedFlag(t *testing.T) {
	// A logically deleted node that gets rotated must keep its deleted
	// state in the copy (otherwise a delete would resurrect via rotation).
	tr, th := buildOpt(t, 30, 20, 40, 10)
	if !tr.Delete(th, 30) {
		t.Fatal("delete failed")
	}
	if !tr.rotateRight(tr.root, true) {
		t.Fatal("rotation failed")
	}
	if tr.Contains(th, 30) {
		t.Fatal("rotation resurrected a deleted key")
	}
	// And the copy can still be resurrected by an insert.
	if !tr.Insert(th, 30, 999) {
		t.Fatal("resurrection failed")
	}
	if v, _ := tr.Get(th, 30); v != 999 {
		t.Fatalf("resurrected value = %d", v)
	}
}

func TestPortableRotationInPlace(t *testing.T) {
	// Algorithm 1's rotation keeps the same physical nodes (no copy).
	s := stm.New()
	tr := New(s, WithVariant(Portable))
	th := s.NewThread()
	for _, k := range []uint64{30, 20, 40, 10, 25} {
		tr.Insert(th, k, k)
	}
	before := tr.Arena().Allocs()
	old30 := refOf(t, tr, 30)
	if !tr.rotateRight(tr.root, true) {
		t.Fatal("rotation failed")
	}
	if tr.Arena().Allocs() != before {
		t.Fatal("portable rotation allocated a node")
	}
	if refOf(t, tr, 30) != old30 {
		t.Fatal("portable rotation moved the node identity")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestElasticModeOnSFTree(t *testing.T) {
	// The speculation-friendly trees are elastic-compatible: run the whole
	// oracle scenario under an Elastic-default STM.
	for _, v := range variants() {
		s := stm.New(stm.WithMode(stm.Elastic))
		tr := New(s, WithVariant(v))
		th := s.NewThread()
		oracle := map[uint64]bool{}
		for i := 0; i < 2000; i++ {
			k := uint64(i*7919%257) % 128
			if i%3 == 0 {
				if tr.Delete(th, k) != oracle[k] {
					t.Fatalf("[%v] delete(%d) mismatch at %d", v, k, i)
				}
				delete(oracle, k)
			} else {
				exists := oracle[k]
				if tr.Insert(th, k, k) == exists {
					t.Fatalf("[%v] insert(%d) mismatch at %d", v, k, i)
				}
				oracle[k] = true
			}
			if i%512 == 0 {
				tr.RunMaintenancePass()
			}
		}
		if got := tr.Size(th); got != len(oracle) {
			t.Fatalf("[%v] size %d, oracle %d", v, got, len(oracle))
		}
	}
}
