package sftree

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/stm"
)

// TestYieldInjectionStress drives both variants with the STM's
// interleaving simulation turned up to maximum (yield on every access), so
// transactions overlap as aggressively as the scheduler allows. This is the
// regime that exposed two historical bugs in the optimized find: the stale
// parent-pair livelock and the ⊥ far-side child of rotation-removed nodes
// (Lemma 16's second case).
func TestYieldInjectionStress(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			s := stm.New(stm.WithYield(1))
			tr := New(s, WithVariant(v))
			tr.Start()
			const goroutines = 8
			const ops = 400
			const keyRange = 256
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				th := s.NewThread()
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g * 31)))
					for i := 0; i < ops; i++ {
						k := uint64(rng.Intn(keyRange))
						switch rng.Intn(5) {
						case 0, 1:
							tr.Insert(th, k, uint64(i))
						case 2:
							tr.Delete(th, k)
						case 3:
							tr.Contains(th, k)
						default:
							tr.Move(th, k, uint64(rng.Intn(keyRange)))
						}
					}
				}(g)
			}
			wg.Wait()
			tr.Stop()
			tr.Quiesce(100000)
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := tr.CheckBalanced(1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestYieldInjectionSingleKey repeats the single-key linearizability check
// under maximal interleaving, where insert/delete/resurrect races on one
// node are as tight as they can get.
func TestYieldInjectionSingleKey(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			s := stm.New(stm.WithYield(1))
			tr := New(s, WithVariant(v))
			tr.Start()
			const k = uint64(5)
			const goroutines = 6
			results := make([][2]uint64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				th := s.NewThread()
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					var ins, del uint64
					for i := 0; i < 250; i++ {
						if rng.Intn(2) == 0 {
							if tr.Insert(th, k, 1) {
								ins++
							}
						} else if tr.Delete(th, k) {
							del++
						}
					}
					results[g] = [2]uint64{ins, del}
				}(g)
			}
			wg.Wait()
			tr.Stop()
			var ins, del uint64
			for _, r := range results {
				ins += r[0]
				del += r[1]
			}
			if ins != del && ins != del+1 {
				t.Fatalf("impossible history: %d inserts, %d deletes", ins, del)
			}
			present := tr.Contains(s.NewThread(), k)
			if present != (ins == del+1) {
				t.Fatalf("presence %v inconsistent with %d/%d", present, ins, del)
			}
		})
	}
}

// TestElasticConcurrentStress validates the elastic-compatibility claim of
// the speculation-friendly trees: full concurrency, elastic default mode,
// aggressive interleaving, then structural invariants and per-range oracle
// equivalence. (The coupled baselines are NOT elastic-safe — they demote —
// which is why only the SF variants appear here.)
func TestElasticConcurrentStress(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			s := stm.New(stm.WithMode(stm.Elastic), stm.WithYield(1))
			tr := New(s, WithVariant(v))
			tr.Start()
			const goroutines = 6
			const rangeSize = 48
			oracles := make([]map[uint64]uint64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				th := s.NewThread()
				oracles[g] = map[uint64]uint64{}
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := uint64(g * rangeSize)
					rng := rand.New(rand.NewSource(int64(g + 400)))
					for i := 0; i < 500; i++ {
						k := base + uint64(rng.Intn(rangeSize))
						if rng.Intn(2) == 0 {
							if tr.Insert(th, k, uint64(i)) {
								oracles[g][k] = uint64(i)
							}
						} else if tr.Delete(th, k) {
							delete(oracles[g], k)
						}
					}
				}(g)
			}
			wg.Wait()
			tr.Stop()
			tr.Quiesce(100000)
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			for g := 0; g < goroutines; g++ {
				base := uint64(g * rangeSize)
				for off := uint64(0); off < rangeSize; off++ {
					k := base + off
					want, wantOK := oracles[g][k]
					got, gotOK := tr.Get(th, k)
					if gotOK != wantOK || (wantOK && got != want) {
						t.Fatalf("[elastic] key %d: (%d,%v) want (%d,%v)", k, got, gotOK, want, wantOK)
					}
				}
			}
		})
	}
}
