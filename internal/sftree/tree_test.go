package sftree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/arena"
	"repro/internal/stm"
)

func newTree(t *testing.T, v Variant) (*Tree, *stm.Thread) {
	t.Helper()
	s := stm.New()
	tr := New(s, WithVariant(v))
	return tr, s.NewThread()
}

func variants() []Variant { return []Variant{Portable, Optimized} }

func TestVariantString(t *testing.T) {
	if Portable.String() != "SFtree" || Optimized.String() != "Opt SFtree" {
		t.Fatal("variant names drifted from the paper's figure labels")
	}
}

func TestEmptyTree(t *testing.T) {
	for _, v := range variants() {
		tr, th := newTree(t, v)
		if tr.Contains(th, 5) {
			t.Fatalf("[%v] empty tree contains 5", v)
		}
		if tr.Delete(th, 5) {
			t.Fatalf("[%v] delete on empty tree succeeded", v)
		}
		if _, ok := tr.Get(th, 5); ok {
			t.Fatalf("[%v] get on empty tree succeeded", v)
		}
		if tr.Size(th) != 0 {
			t.Fatalf("[%v] empty size != 0", v)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
	}
}

func TestInsertContainsDelete(t *testing.T) {
	for _, v := range variants() {
		tr, th := newTree(t, v)
		if !tr.Insert(th, 10, 100) {
			t.Fatalf("[%v] first insert failed", v)
		}
		if tr.Insert(th, 10, 200) {
			t.Fatalf("[%v] duplicate insert succeeded", v)
		}
		if !tr.Contains(th, 10) {
			t.Fatalf("[%v] contains after insert failed", v)
		}
		if val, ok := tr.Get(th, 10); !ok || val != 100 {
			t.Fatalf("[%v] get = (%d,%v), want (100,true)", v, val, ok)
		}
		if !tr.Delete(th, 10) {
			t.Fatalf("[%v] delete failed", v)
		}
		if tr.Delete(th, 10) {
			t.Fatalf("[%v] double delete succeeded", v)
		}
		if tr.Contains(th, 10) {
			t.Fatalf("[%v] contains after delete", v)
		}
	}
}

func TestLogicalResurrection(t *testing.T) {
	// Delete then re-insert: the insert must flip the deleted flag back on
	// the same physical node (paper line 36) and update the value.
	for _, v := range variants() {
		tr, th := newTree(t, v)
		tr.Insert(th, 7, 70)
		phys := tr.PhysicalSize()
		tr.Delete(th, 7)
		if got := tr.PhysicalSize(); got != phys {
			t.Fatalf("[%v] logical delete changed physical size: %d -> %d", v, phys, got)
		}
		if !tr.Insert(th, 7, 71) {
			t.Fatalf("[%v] resurrection insert failed", v)
		}
		if got := tr.PhysicalSize(); got != phys {
			t.Fatalf("[%v] resurrection allocated a node: %d -> %d", v, phys, got)
		}
		if val, _ := tr.Get(th, 7); val != 71 {
			t.Fatalf("[%v] resurrected value = %d, want 71", v, val)
		}
	}
}

func TestKeysSorted(t *testing.T) {
	for _, v := range variants() {
		tr, th := newTree(t, v)
		ks := []uint64{5, 1, 9, 3, 7, 2, 8}
		for _, k := range ks {
			tr.Insert(th, k, k)
		}
		tr.Delete(th, 3)
		got := tr.Keys(th)
		want := []uint64{1, 2, 5, 7, 8, 9}
		if len(got) != len(want) {
			t.Fatalf("[%v] keys = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("[%v] keys = %v, want %v", v, got, want)
			}
		}
	}
}

func TestKeyRangePanics(t *testing.T) {
	tr, th := newTree(t, Portable)
	defer func() {
		if recover() == nil {
			t.Fatal("MaxKey insert must panic")
		}
	}()
	tr.Insert(th, MaxKey, 0)
}

func TestSequentialVsOracle(t *testing.T) {
	for _, v := range variants() {
		tr, th := newTree(t, v)
		oracle := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(42))
		const keyRange = 128
		for i := 0; i < 4000; i++ {
			k := uint64(rng.Intn(keyRange))
			switch rng.Intn(3) {
			case 0:
				val := uint64(i)
				_, exists := oracle[k]
				if got := tr.Insert(th, k, val); got == exists {
					t.Fatalf("[%v] op %d: insert(%d) = %v, oracle exists=%v", v, i, k, got, exists)
				}
				if !exists {
					oracle[k] = val
				}
			case 1:
				_, exists := oracle[k]
				if got := tr.Delete(th, k); got != exists {
					t.Fatalf("[%v] op %d: delete(%d) = %v, want %v", v, i, k, got, exists)
				}
				delete(oracle, k)
			case 2:
				val, exists := oracle[k]
				gotV, gotOK := tr.Get(th, k)
				if gotOK != exists || (exists && gotV != val) {
					t.Fatalf("[%v] op %d: get(%d) = (%d,%v), want (%d,%v)", v, i, k, gotV, gotOK, val, exists)
				}
			}
			if i%512 == 0 {
				tr.RunMaintenancePass()
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("[%v] op %d: %v", v, i, err)
				}
			}
		}
		if got, want := tr.Size(th), len(oracle); got != want {
			t.Fatalf("[%v] final size %d, oracle %d", v, got, want)
		}
		keys := tr.Keys(th)
		if len(keys) != len(oracle) {
			t.Fatalf("[%v] keys len %d, oracle %d", v, len(keys), len(oracle))
		}
		for _, k := range keys {
			if _, ok := oracle[k]; !ok {
				t.Fatalf("[%v] tree has spurious key %d", v, k)
			}
		}
	}
}

func TestMaintenanceRemovesDeletedNodes(t *testing.T) {
	for _, v := range variants() {
		tr, th := newTree(t, v)
		for k := uint64(0); k < 64; k++ {
			tr.Insert(th, k, k)
		}
		for k := uint64(0); k < 64; k += 2 {
			tr.Delete(th, k)
		}
		if !tr.Quiesce(200) {
			t.Fatalf("[%v] did not quiesce", v)
		}
		if got := tr.PhysicalSize(); got != 32 {
			t.Fatalf("[%v] physical size after quiesce = %d, want 32", v, got)
		}
		if got := tr.Size(th); got != 32 {
			t.Fatalf("[%v] abstract size = %d, want 32", v, got)
		}
		st := tr.Stats()
		if st.Removals == 0 {
			t.Fatalf("[%v] no removals counted", v)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
	}
}

func TestMaintenanceBalancesSortedInsert(t *testing.T) {
	// Inserting a sorted sequence with no rebalancing yields a linear tree;
	// quiescing must restore AVL balance (the distributed rotations
	// self-stabilize, §3.1).
	for _, v := range variants() {
		tr, th := newTree(t, v)
		const n = 256
		for k := uint64(0); k < n; k++ {
			tr.Insert(th, k, k)
		}
		if h := tr.Height(); h != n {
			t.Fatalf("[%v] pre-maintenance height = %d, want %d (degenerate)", v, h, n)
		}
		if !tr.Quiesce(10000) {
			t.Fatalf("[%v] did not quiesce", v)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
		if err := tr.CheckBalanced(1); err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
		if got := tr.Size(th); got != n {
			t.Fatalf("[%v] size after balancing = %d, want %d", v, got, n)
		}
		if tr.Stats().Rotations == 0 {
			t.Fatalf("[%v] no rotations recorded", v)
		}
	}
}

func TestGarbageCollectionFreesNodes(t *testing.T) {
	for _, v := range variants() {
		tr, th := newTree(t, v)
		for k := uint64(0); k < 128; k++ {
			tr.Insert(th, k, k)
		}
		for k := uint64(0); k < 128; k++ {
			tr.Delete(th, k)
		}
		tr.Quiesce(500)
		if freed := tr.Arena().Frees(); freed < 100 {
			t.Fatalf("[%v] only %d nodes freed, want >= 100", v, freed)
		}
		if got := tr.PhysicalSize(); got > 28 {
			// Two-children deleted nodes may linger, but most must go.
			t.Fatalf("[%v] physical size after full delete = %d", v, got)
		}
		if got := tr.Size(th); got != 0 {
			t.Fatalf("[%v] abstract size = %d, want 0", v, got)
		}
	}
}

func TestMoveSemantics(t *testing.T) {
	for _, v := range variants() {
		tr, th := newTree(t, v)
		tr.Insert(th, 1, 11)
		tr.Insert(th, 2, 22)

		if tr.Move(th, 3, 4) {
			t.Fatalf("[%v] move of absent key succeeded", v)
		}
		if tr.Move(th, 1, 2) {
			t.Fatalf("[%v] move onto occupied key succeeded", v)
		}
		if !tr.Move(th, 1, 5) {
			t.Fatalf("[%v] legitimate move failed", v)
		}
		if tr.Contains(th, 1) {
			t.Fatalf("[%v] source still present after move", v)
		}
		if val, ok := tr.Get(th, 5); !ok || val != 11 {
			t.Fatalf("[%v] moved value = (%d,%v), want (11,true)", v, val, ok)
		}
		if !tr.Move(th, 2, 2) {
			t.Fatalf("[%v] self-move of present key should succeed", v)
		}
		if tr.Size(th) != 2 {
			t.Fatalf("[%v] size after moves = %d, want 2", v, tr.Size(th))
		}
	}
}

func TestComposedOpsInOneTransaction(t *testing.T) {
	// Reusability (paper §5.4): several operations composed in a single
	// transaction behave atomically.
	for _, v := range variants() {
		tr, th := newTree(t, v)
		var scA, scB arena.Scratch
		th.Atomic(func(tx *stm.Tx) {
			tr.InsertTx(tx, 100, 1, &scA)
			tr.InsertTx(tx, 200, 2, &scB)
			if !tr.ContainsTx(tx, 100) {
				t.Errorf("[%v] composed tx does not see own insert", v)
			}
		})
		scA.Release(tr.Arena())
		scB.Release(tr.Arena())
		if !tr.Contains(th, 100) || !tr.Contains(th, 200) {
			t.Fatalf("[%v] composed inserts not visible after commit", v)
		}
	}
}

func TestStartStopMaintenance(t *testing.T) {
	for _, v := range variants() {
		tr, th := newTree(t, v)
		tr.Start()
		tr.Start() // idempotent
		for k := uint64(0); k < 512; k++ {
			tr.Insert(th, k, k)
		}
		for k := uint64(0); k < 512; k += 3 {
			tr.Delete(th, k)
		}
		tr.Stop()
		tr.Stop() // idempotent
		tr.Quiesce(2000)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
		if tr.Stats().Passes == 0 {
			t.Fatalf("[%v] maintenance never ran", v)
		}
	}
}

// TestSingleKeyLinearizability hammers one key from many goroutines with
// inserts and deletes; successful inserts and deletes on a single key must
// strictly alternate in any linearization, so |inserts - deletes| <= 1 and
// the final membership equals (inserts > deletes).
func TestSingleKeyLinearizability(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			s := stm.New()
			tr := New(s, WithVariant(v))
			tr.Start()
			const k = uint64(99)
			const goroutines = 6
			const opsPer = 300
			var insOK, delOK sync.Map
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				th := s.NewThread()
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var ins, del uint64
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < opsPer; i++ {
						if rng.Intn(2) == 0 {
							if tr.Insert(th, k, uint64(i)) {
								ins++
							}
						} else {
							if tr.Delete(th, k) {
								del++
							}
						}
					}
					insOK.Store(g, ins)
					delOK.Store(g, del)
				}(g)
			}
			wg.Wait()
			tr.Stop()
			var ins, del uint64
			for g := 0; g < goroutines; g++ {
				i, _ := insOK.Load(g)
				d, _ := delOK.Load(g)
				ins += i.(uint64)
				del += d.(uint64)
			}
			present := tr.Contains(s.NewThread(), k)
			switch {
			case ins == del && present:
				t.Fatalf("inserts==deletes==%d but key present", ins)
			case ins == del+1 && !present:
				t.Fatalf("inserts=%d deletes=%d but key absent", ins, del)
			case ins != del && ins != del+1:
				t.Fatalf("impossible history: %d successful inserts, %d successful deletes", ins, del)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentDisjointRanges runs deterministic op sequences on disjoint
// key ranges from several goroutines with maintenance running; each range's
// final contents must match its sequential expectation exactly.
func TestConcurrentDisjointRanges(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			s := stm.New()
			tr := New(s, WithVariant(v))
			tr.Start()
			const goroutines = 5
			const rangeSize = 64
			const ops = 800
			oracles := make([]map[uint64]uint64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				th := s.NewThread()
				oracles[g] = map[uint64]uint64{}
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := uint64(g * rangeSize)
					oracle := oracles[g]
					rng := rand.New(rand.NewSource(int64(1000 + g)))
					for i := 0; i < ops; i++ {
						k := base + uint64(rng.Intn(rangeSize))
						if rng.Intn(2) == 0 {
							val := uint64(i)
							if tr.Insert(th, k, val) {
								oracle[k] = val
							}
						} else {
							if tr.Delete(th, k) {
								delete(oracle, k)
							}
						}
					}
				}(g)
			}
			wg.Wait()
			tr.Stop()
			tr.Quiesce(5000)
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			for g := 0; g < goroutines; g++ {
				base := uint64(g * rangeSize)
				for off := uint64(0); off < rangeSize; off++ {
					k := base + off
					want, wantOK := oracles[g][k]
					got, gotOK := tr.Get(th, k)
					if gotOK != wantOK || (wantOK && got != want) {
						t.Fatalf("key %d: tree (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
					}
				}
			}
		})
	}
}

// TestConcurrentMixedWithMoves exercises Contains/Insert/Delete/Move on a
// shared key space under maintenance, checking invariants afterwards.
func TestConcurrentMixedWithMoves(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			s := stm.New()
			tr := New(s, WithVariant(v))
			tr.Start()
			const goroutines = 4
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				th := s.NewThread()
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(77 + g)))
					for i := 0; i < 500; i++ {
						k := uint64(rng.Intn(96))
						switch rng.Intn(4) {
						case 0:
							tr.Insert(th, k, uint64(i))
						case 1:
							tr.Delete(th, k)
						case 2:
							tr.Contains(th, k)
						case 3:
							tr.Move(th, k, uint64(rng.Intn(96)))
						}
					}
				}(g)
			}
			wg.Wait()
			tr.Stop()
			tr.Quiesce(5000)
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := tr.CheckBalanced(1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBiasedWorkloadStaysBalanced(t *testing.T) {
	// The biased workload of Fig. 3: inserts skewed towards high keys,
	// deletes towards low keys, forcing continual restructuring. After
	// quiescing, the tree must be AVL-balanced regardless.
	for _, v := range variants() {
		tr, th := newTree(t, v)
		tr.Start()
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 3000; i++ {
			hi := uint64(8192 + rng.Intn(8192))
			lo := uint64(rng.Intn(8192))
			tr.Insert(th, hi, hi)
			tr.Delete(th, lo)
		}
		tr.Stop()
		tr.Quiesce(20000)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
		if err := tr.CheckBalanced(1); err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	tr, th := newTree(t, Optimized)
	for k := uint64(0); k < 100; k++ {
		tr.Insert(th, k, k)
	}
	tr.Quiesce(5000)
	st := tr.Stats()
	if st.Passes == 0 || st.Rotations == 0 {
		t.Fatalf("stats did not move: %+v", st)
	}
	if tr.Variant() != Optimized {
		t.Fatal("Variant() mismatch")
	}
	if tr.STM() == nil || tr.Arena() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestSizeAndKeysUnderConcurrentReads(t *testing.T) {
	// Size/Keys run as one big read-only transaction; they must return a
	// consistent snapshot even while writers run.
	s := stm.New()
	tr := New(s, WithVariant(Optimized))
	tr.Start()
	th := s.NewThread()
	for k := uint64(0); k < 200; k += 2 {
		tr.Insert(th, k, k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	writer := s.NewThread()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.Intn(200))
			// Paired insert+delete in one transaction keeps the abstract
			// size invariant at 100 for every consistent snapshot. In a
			// committing attempt the reinsert always takes the resurrection
			// path (the node is still logically present within the same
			// transaction). A doomed ("zombie") attempt, however, can
			// observe a fresh copy-on-rotate node that contradicts the
			// pinned read set — the STM will refuse to commit it, so the
			// correct reaction to the impossible observation is Restart,
			// never trusting it.
			var sc arena.Scratch
			writer.Atomic(func(tx *stm.Tx) {
				if tr.DeleteTx(tx, k) {
					if !tr.InsertTx(tx, k, 1, &sc) {
						tx.Restart()
					}
				}
			})
			sc.Release(tr.Arena())
		}
	}()
	reader := s.NewThread()
	for i := 0; i < 50; i++ {
		if got := tr.Size(reader); got != 100 {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot size = %d, want 100", got)
		}
		keys := tr.Keys(reader)
		sorted := sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] })
		if !sorted {
			close(stop)
			wg.Wait()
			t.Fatal("Keys returned unsorted snapshot")
		}
	}
	close(stop)
	wg.Wait()
	tr.Stop()
}
