package sftree

import (
	"time"

	"repro/internal/arena"
	"repro/internal/ring"
)

// This file implements the hint side of the hint-driven maintenance
// scheduler: application transactions publish, at commit time only (via
// stm.Tx.OnCommit), small advisory hints — "a logical deletion committed at
// key k", "the traversal crossed an imbalanced node at key k" — into a
// bounded MPSC queue owned by the tree, and maintenance workers drain the
// queue with targeted repair transactions (repair.go) instead of blind
// whole-tree sweeps. Hints are best-effort by design: a full queue drops
// them, a per-node dedup bit (arena.Node.Hint) coalesces repeats, and the
// low-frequency fallback sweep guarantees eventual repair regardless.

// Hint kinds, carried as the stm.Tx.OnCommit kind argument.
const (
	// hintRemove: a logical deletion committed at the hinted key; the node
	// is a candidate for targeted physical removal (§3.2).
	hintRemove uint64 = iota + 1
	// hintRebalance: a structural change (new leaf) or an observed height
	// imbalance at the hinted key; the root-to-key path wants height
	// propagation and possibly rotations (§3.1).
	hintRebalance
)

// hint is one queued maintenance request. key routes the targeted repair
// (repairAt descends by key); ref is the node observed at emission time and
// backs the dedup word only — the repair never trusts it structurally; at
// is the unix-nano enqueue time backing age-based promotion.
type hint struct {
	key  uint64
	ref  arena.Ref
	kind uint64
	at   int64
}

// Values of the per-node dedup word (arena.Node.Hint): the priority of the
// hint currently queued for the node. Ordered so that "an equal or higher
// value is queued" means the new hint may coalesce.
const (
	hintBitRebalance uint32 = 1
	hintBitRemove    uint32 = 2
)

// defaultHintCap is the hint-queue capacity (rounded up to a power of two).
// Beyond it hints are dropped and the fallback sweep picks up the slack —
// the queue is a fast path, not a ledger.
const defaultHintCap = 1024

// hintPQ is the two-level priority front of the hint queue: removal hints
// drain strictly before rebalance hints. Physical removals are the hints
// with correctness-adjacent urgency (a logically deleted node sits on every
// traversal path until unlinked, and delete-heavy phases grow the tree
// until removals land), while rebalance hints are pure heuristics — so a
// burst of rebalance noise must never delay a removal. Each priority level
// is its own bounded Vyukov ring of the configured capacity; within a level
// hints stay FIFO.
//
// Strict priority starves the low level under a sustained removal stream,
// so the queue promotes by age: a rebalance hint that has waited strictly
// longer than promoteAge outranks fresh removals (promoteAge <= 0 disables
// promotion). Promotion itself is rate-bounded to every other pop —
// otherwise a standing over-age rebalance backlog would invert the queue
// wholesale and starve removals, the exact inversion the two levels exist
// to prevent; alternating bounds the removal delay at one promoted hint
// per drained removal while still guaranteeing over-age hints progress.
type hintPQ struct {
	remove     *hintQueue
	rebalance  *hintQueue
	promoteAge int64 // nanoseconds; <= 0 disables age promotion
	promoted   bool  // last pop was a promotion (consumer-side state)
}

func newHintPQ(capacity int, promoteAge time.Duration) *hintPQ {
	return &hintPQ{
		remove:     newHintQueue(capacity),
		rebalance:  newHintQueue(capacity),
		promoteAge: promoteAge.Nanoseconds(),
	}
}

// push enqueues h at its kind's priority, returning false when that
// level's ring is full.
func (q *hintPQ) push(h hint) bool {
	if h.kind == hintRemove {
		return q.remove.Push(h)
	}
	return q.rebalance.Push(h)
}

// pop dequeues the highest-priority queued hint: an over-age rebalance
// first (the promotion), then removals, then rebalances; ok=false when
// both levels are empty.
func (q *hintPQ) pop() (hint, bool) { return q.popAt(time.Now().UnixNano()) }

// popAt is pop with the clock injected (the promotion-boundary unit test's
// hook). Like pop it is consumer-side, so the single-driver discipline of
// the maintenance scheduler covers the peek-then-pop window.
func (q *hintPQ) popAt(now int64) (hint, bool) {
	if q.promoteAge > 0 && !q.promoted {
		if h, ok := q.rebalance.Peek(); ok && now-h.at > q.promoteAge {
			if h, ok := q.rebalance.Pop(); ok {
				q.promoted = true
				return h, true
			}
		}
	}
	q.promoted = false
	if h, ok := q.remove.Pop(); ok {
		return h, true
	}
	return q.rebalance.Pop()
}

// size estimates the number of queued hints across both levels.
func (q *hintPQ) size() int { return q.remove.Size() + q.rebalance.Size() }

// hintQueue is one priority level's bounded lock-free multi-producer queue
// (internal/ring's Vyukov bounded MPMC ring). Producers are the application
// threads firing commit hooks; the consumer side is serialized externally
// (one maintenance driver per tree at a time — the tree's own loop, a pool
// worker holding the shard claim, or a Quiesce caller), but the ring
// tolerates MPMC so the claim discipline is a scheduling concern, not a
// memory-safety one. The Peek used by age promotion is the one consumer-
// serialized operation.
type hintQueue = ring.Ring[hint]

func newHintQueue(capacity int) *hintQueue { return ring.New[hint](capacity) }

// OnTxCommit implements stm.CommitHook: it fires after an application
// transaction that registered a hint commits, publishing the hint into the
// queue. It runs on the committing application thread, outside the
// transaction, so it must stay cheap: one CAS on the dedup bit, one ring
// push, one non-blocking wake.
func (t *Tree) OnTxCommit(kind, key, ref uint64) {
	if t.hintq == nil {
		return
	}
	if ref != arena.Nil {
		// The per-node dedup word records the priority of the queued hint
		// (0 none, 1 rebalance, 2 removal). Folding is only safe downward:
		// a rebalance hint folds into anything queued (a removal's
		// targeted repair settles and rebalances the whole root-to-key
		// path anyway), but a removal must never fold into an
		// already-queued rebalance — that would demote it to the
		// low-priority level, exactly the inversion the two-level queue
		// exists to prevent (insert-then-delete produces the pattern
		// constantly). A removal arriving over a queued rebalance upgrades
		// the word and enqueues at the removal level as an extra entry
		// (ref Nil, so its drain does not clear a word the rebalance entry
		// still owns); further removals then coalesce into it.
		n := t.node(ref)
		want := uint32(hintBitRebalance)
		if kind == hintRemove {
			want = hintBitRemove
		}
		for {
			cur := n.Hint.Load()
			if cur >= want {
				// A hint of equal or higher priority is already queued;
				// repairing once covers both.
				t.hintsCoalesced.Add(1)
				return
			}
			if n.Hint.CompareAndSwap(cur, want) {
				if cur != 0 {
					ref = arena.Nil // upgrade: the queued entry keeps the word
				}
				break
			}
		}
	}
	if !t.hintq.push(hint{key: key, ref: ref, kind: kind, at: time.Now().UnixNano()}) {
		if ref != arena.Nil {
			t.node(ref).Hint.Store(0)
		}
		t.hintsDropped.Add(1)
		return
	}
	t.hintsEmitted.Add(1)
	if fn := t.notify.Load(); fn != nil {
		(*fn)()
	}
}

// SetMaintNotify registers fn to be invoked (outside any transaction, on
// the hinting thread) whenever a hint is enqueued. The forest's worker pool
// uses it to wake a shared worker; the tree's own maintenance loop installs
// a nudge of its wake channel. fn must be non-blocking. Passing nil
// disables notification.
func (t *Tree) SetMaintNotify(fn func()) {
	if fn == nil {
		t.notify.Store(nil)
		return
	}
	t.notify.Store(&fn)
}

// HintBacklog reports the number of queued, not-yet-consumed hints.
func (t *Tree) HintBacklog() int {
	if t.hintq == nil {
		return 0
	}
	return t.hintq.size()
}

// DrainHints consumes up to max queued hints, performing one targeted
// repair (repair.go) per hint, wrapped in one §3.4 garbage-collection
// epoch. It returns the number of hints consumed and the structural work
// done (rotations + removals + nodes freed). Like RunMaintenancePass it is
// single-driver: at most one goroutine may drive maintenance on a tree at
// any instant (the forest pool's shard claim, or the tree's own loop).
func (t *Tree) DrainHints(max int) (hints, work int) {
	if t.hintq == nil || t.hintq.size() == 0 {
		return 0, 0
	}
	t.collector.BeginEpoch(t.stm.Threads())
	for hints < max {
		h, ok := t.hintq.pop()
		if !ok {
			break
		}
		if h.ref != arena.Nil {
			t.node(h.ref).Hint.Store(0)
		}
		hints++
		work += t.repairAt(h.key)
	}
	freed := t.collector.TryFree()
	t.freed.Add(uint64(freed))
	t.targeted.Add(uint64(hints))
	return hints, work + freed
}
