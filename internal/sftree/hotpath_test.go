package sftree

import (
	"testing"

	"repro/internal/stm"
)

// Steady-state allocation gates for the public per-operation API. With no
// maintenance running (New never starts it), a delete only marks the node
// logically deleted, so the insert/delete alternation below resurrects the
// same node forever: the arena never grows, the per-thread operation frames
// are built once, and the whole cycle must stay off the allocator.
// AllocsPerRun counts process-wide mallocs, so nothing else may run.
func TestTreeOpsZeroAllocs(t *testing.T) {
	for _, variant := range []Variant{Portable, Optimized} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			s := stm.New()
			tr := New(s, WithVariant(variant))
			th := s.NewThread()

			for k := uint64(1); k <= 32; k++ {
				tr.Insert(th, k, k)
			}

			checks := []struct {
				name string
				op   func()
			}{
				{"Contains", func() { tr.Contains(th, 7) }},
				{"Get", func() { tr.Get(th, 7) }},
				{"InsertDelete", func() {
					// Resurrection cycle: Delete marks key 5 logically
					// deleted, Insert revives the same node in place.
					tr.Delete(th, 5)
					tr.Insert(th, 5, 55)
				}},
				{"ContainsMissing", func() { tr.Contains(th, 1<<40) }},
			}
			for _, c := range checks {
				c.op() // warm up (frame construction, scratch node)
				if avg := testing.AllocsPerRun(100, c.op); avg != 0 {
					t.Errorf("%s/%s allocates %.2f times per run, want 0", variant, c.name, avg)
				}
			}
		})
	}
}
