package sftree

import "repro/internal/obs"

// RegisterObs registers the tree's structural-activity counters with an
// observability registry under the given rendered label pairs (e.g.
// `shard="3"`; empty for an unlabeled tree). The counters are per-field
// atomics, so collection is a handful of loads on the scrape path — the
// tree and its maintenance driver are never paused.
func (t *Tree) RegisterObs(r *obs.Registry, labels string) {
	r.RegisterCollector(func(emit func(obs.Sample)) {
		st := t.Stats()
		counter := func(name, help string, v uint64) {
			emit(obs.Sample{Name: name, Label: labels, Kind: obs.KindCounter, Help: help, Value: float64(v)})
		}
		counter("sftree_rotations_total", "Successful structural rotations.", st.Rotations)
		counter("sftree_removals_total", "Successful physical removals.", st.Removals)
		counter("sftree_failed_rotations_total", "Rotation transactions that aborted against application traffic.", st.FailedRot)
		counter("sftree_failed_removals_total", "Removal transactions that aborted against application traffic.", st.FailedRemove)
		counter("sftree_maint_passes_total", "Completed fallback maintenance traversals.", st.Passes)
		counter("sftree_freed_total", "Nodes reclaimed by the epoch collector.", st.Freed)
		counter("sftree_hints_emitted_total", "Maintenance hints published at commit.", st.HintsEmitted)
		counter("sftree_hints_coalesced_total", "Hints folded into an already-queued one.", st.HintsCoalesced)
		counter("sftree_hints_dropped_total", "Hints discarded because the queue was full.", st.HintsDropped)
		counter("sftree_targeted_repairs_total", "Hints consumed by targeted repair transactions.", st.TargetedRepairs)
		counter("sftree_maint_busy_nanos_total", "Time the maintenance driver spent working, in nanoseconds.", st.BusyNanos)
	})
}
