package sftree

// Per-thread operation frames. The abstract operations (Contains, Get,
// Insert, Delete) each run one transaction whose function needs the
// operation's arguments and result slots. Capturing them in a closure —
// the obvious `t.atomic(th, func(tx) { ... })` — allocates that closure
// (and its captured variables) on every call, which was the entirety of
// the hot path's steady-state allocation (~1.2 allocs/op under profile).
//
// An opFrame is the reusable replacement: one per (tree, thread-slot)
// pair, holding the argument/result slots plus pre-bound method values
// for each operation. Binding `f.runInsert` once at frame construction
// allocates the bound-method closure once; afterwards an operation is
// "store args into the frame, run the pre-bound function, read results
// back", with zero allocator traffic. The frame also owns the insert
// path's arena.Scratch, whose Release resets it for reuse.
//
// Frames are keyed by stm.Thread.Slot(), which is dense and unique per
// registered thread, so the cache is a slice indexed by slot. Growth is
// copy-on-write under frameMu: readers only ever dereference the
// atomically published slice, so a concurrent first-call from a new
// thread never races an established reader.

import (
	"repro/internal/arena"
	"repro/internal/stm"
)

type opFrame struct {
	t *Tree

	k, v   uint64
	okOut  bool
	valOut uint64
	sc     arena.Scratch

	containsFn func(*stm.Tx)
	getFn      func(*stm.Tx)
	insertFn   func(*stm.Tx)
	deleteFn   func(*stm.Tx)
}

func newOpFrame(t *Tree) *opFrame {
	f := &opFrame{t: t}
	f.containsFn = f.runContains
	f.getFn = f.runGet
	f.insertFn = f.runInsert
	f.deleteFn = f.runDelete
	return f
}

func (f *opFrame) runContains(tx *stm.Tx) { f.okOut = f.t.ContainsTx(tx, f.k) }
func (f *opFrame) runGet(tx *stm.Tx)      { f.valOut, f.okOut = f.t.GetTx(tx, f.k) }
func (f *opFrame) runInsert(tx *stm.Tx)   { f.okOut = f.t.InsertTx(tx, f.k, f.v, &f.sc) }
func (f *opFrame) runDelete(tx *stm.Tx)   { f.okOut = f.t.DeleteTx(tx, f.k) }

// frame returns the calling thread's operation frame, creating it (and
// growing the slot-indexed cache) on first use.
func (t *Tree) frame(th *stm.Thread) *opFrame {
	slot := int(th.Slot())
	if fs := t.frames.Load(); fs != nil && slot < len(*fs) && (*fs)[slot] != nil {
		return (*fs)[slot]
	}
	return t.growFrames(slot)
}

func (t *Tree) growFrames(slot int) *opFrame {
	t.frameMu.Lock()
	defer t.frameMu.Unlock()
	var cur []*opFrame
	if p := t.frames.Load(); p != nil {
		cur = *p
	}
	n := len(cur)
	if slot >= n {
		n = slot + 8
	}
	// Full copy even when only filling a hole: published slices are never
	// mutated in place, so lock-free readers stay race-free.
	grown := make([]*opFrame, n)
	copy(grown, cur)
	if grown[slot] == nil {
		grown[slot] = newOpFrame(t)
	}
	t.frames.Store(&grown)
	return grown[slot]
}
