package sftree

import (
	"runtime"
	"time"

	"repro/internal/arena"
)

// maintYieldStride bounds how many nodes a maintenance traversal visits
// before yielding the processor. Without it, a long depth-first pass can
// monopolize whole scheduler quanta on hosts with few cores while the
// application threads (which block on transactional conflicts and yields)
// starve — the pass itself is cheap, but it must stay interleaved.
const maintYieldStride = 64

// This file implements the maintenance ("rotator") thread of the paper:
// a single background goroutine that continuously executes a depth-first
// traversal of the tree to
//
//  1. propagate balance information (§3.1 "Propagation"): refresh each
//     node's left-h/right-h from its children's local-h — these are plain
//     node-local atomics that no abstract transaction reads, so propagation
//     never conflicts;
//  2. physically remove logically deleted nodes with at most one child
//     (§3.2), each removal being its own transaction;
//  3. perform node-local rotations where the estimated child heights differ
//     by more than one (§3.1), each rotation being its own transaction —
//     the distributed rotation mechanism; and
//  4. garbage-collect unlinked nodes with the §3.4 epoch scheme.

// Start launches the maintenance goroutine. It is idempotent while running.
func (t *Tree) Start() {
	if t.running.Swap(true) {
		return
	}
	t.stop.Store(false)
	t.done = make(chan struct{})
	go t.maintLoop()
}

// Stop halts the maintenance goroutine and waits for it to finish its
// current pass. It is a no-op when maintenance is not running.
func (t *Tree) Stop() {
	t.stopEpoch.Add(1)
	if !t.running.Load() {
		return
	}
	t.stop.Store(true)
	<-t.done
	t.stop.Store(false) // leave manual RunMaintenancePass/Quiesce usable
	t.running.Store(false)
}

func (t *Tree) maintLoop() {
	defer close(t.done)
	for !t.stop.Load() {
		if work := t.RunMaintenancePass(); work == 0 {
			// Balanced and clean: avoid burning a core spinning over an
			// idle tree.
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// RunMaintenancePass executes one full maintenance traversal synchronously:
// one garbage-collection epoch around one depth-first propagate/remove/
// rotate sweep. It returns the amount of structural work done (rotations +
// removals + nodes freed); a return of 0 means the tree was balanced, fully
// unlinked and garbage-free. It must not be called concurrently with Start.
func (t *Tree) RunMaintenancePass() int {
	t.collector.BeginEpoch(t.stm.Threads())
	rootN := t.node(t.root)
	h, work := t.maintain(t.root, true, rootN.L.Plain())
	rootN.LeftH.Store(h)
	rootN.LocalH.Store(h + 1)
	freed := t.collector.TryFree()
	t.freed.Add(uint64(freed))
	t.passes.Add(1)
	return work + freed
}

// Quiesce runs maintenance passes until one does no work (or maxPasses is
// hit), leaving the tree balanced and physically clean. A running
// background maintenance goroutine is paused for the duration and resumed
// afterwards (passes are single-driver, see RunMaintenancePass). Intended
// for tests and for phase changes in benchmarks; concurrent updates may
// legitimately prevent quiescence, hence the bound. Quiesce itself must be
// called from one goroutine at a time.
func (t *Tree) Quiesce(maxPasses int) bool {
	if t.running.Load() {
		t.Stop()
		epoch := t.stopEpoch.Load()
		defer func() {
			// Resume only if nobody else asked for a stop while we were
			// draining — a concurrent Close/Stop must win, not be undone.
			if t.stopEpoch.Load() == epoch {
				t.Start()
			}
		}()
	}
	for i := 0; i < maxPasses; i++ {
		if t.RunMaintenancePass() == 0 {
			return true
		}
	}
	return false
}

// maintain processes the subtree rooted at ref (a child of parentRef on the
// side given by leftChild) and returns its estimated height plus the number
// of structural changes performed. The traversal reads the structure with
// plain atomic loads: the maintenance thread is the only structural writer
// besides leaf-appending inserts, so the nodes it walks cannot be unlinked
// under it, and every actual modification is re-validated inside its own
// transaction.
func (t *Tree) maintain(parentRef arena.Ref, leftChild bool, ref arena.Ref) (int32, int) {
	if ref == arena.Nil {
		return 0, 0
	}
	if t.stop.Load() {
		return t.heightOf(ref), 0
	}
	t.maintVisits++
	if t.maintVisits%maintYieldStride == 0 {
		runtime.Gosched()
	}
	n := t.node(ref)
	// Physical removal (§3.2): logically deleted nodes with at most one
	// child are unlinked; nodes with two children stay (the paper found
	// removing ≤1-child nodes keeps the tree from growing, §3.3).
	if n.Del.Plain() != 0 {
		l, r := n.L.Plain(), n.R.Plain()
		if l == arena.Nil || r == arena.Nil {
			if repl, _, ok := t.removeChild(parentRef, leftChild); ok {
				h, w := t.maintain(parentRef, leftChild, repl)
				return h, w + 1
			}
		}
	}
	// Post-order: settle the children first so the heights we propagate
	// are the freshest available estimates.
	lh, lw := t.maintain(ref, true, n.L.Plain())
	rh, rw := t.maintain(ref, false, n.R.Plain())
	n.LeftH.Store(lh)
	n.RightH.Store(rh)
	n.LocalH.Store(1 + maxi32(lh, rh))
	work := lw + rw

	// Rebalance (§3.1): trigger when the estimated child heights differ by
	// more than one. A double rotation is expressed as two node-local single
	// rotations, each its own transaction, exactly in the spirit of the
	// distributed rotation mechanism (Bougé et al.'s height-relaxed AVL).
	switch {
	case lh > rh+1:
		if l := n.L.Plain(); l != arena.Nil {
			ln := t.node(l)
			if ln.RightH.Load() > ln.LeftH.Load() {
				if t.rotateLeft(ref, true) {
					work++
				}
			}
			if t.rotateRight(parentRef, leftChild) {
				work++
			}
		}
	case rh > lh+1:
		if r := n.R.Plain(); r != arena.Nil {
			rn := t.node(r)
			if rn.LeftH.Load() > rn.RightH.Load() {
				if t.rotateRight(ref, false) {
					work++
				}
			}
			if t.rotateLeft(parentRef, leftChild) {
				work++
			}
		}
	}
	// The subtree root may have changed (rotation or removal); report the
	// estimate of whatever the parent points at now.
	var cur arena.Ref
	p := t.node(parentRef)
	if leftChild {
		cur = p.L.Plain()
	} else {
		cur = p.R.Plain()
	}
	return t.heightOf(cur), work
}
