package sftree

import (
	"runtime"
	"time"

	"repro/internal/arena"
)

// maintYieldStride bounds how many nodes a maintenance traversal visits
// before yielding the processor. Without it, a long depth-first pass can
// monopolize whole scheduler quanta on hosts with few cores while the
// application threads (which block on transactional conflicts and yields)
// starve — the pass itself is cheap, but it must stay interleaved.
const maintYieldStride = 64

// Scheduling parameters of the hint-driven maintenance loop. The loop
// prefers targeted repairs (DrainHints); full sweeps degrade to a fallback
// run on a capped exponential backoff, so an idle or hint-covered tree
// costs asymptotically no CPU while eventual propagation and GC-epoch
// progress stay guaranteed.
// They are exported so the forest's shared worker pool (internal/forest)
// runs the very same schedule — one source of truth for both drivers.
const (
	// MaintHintBatch bounds how many hints one drain session consumes; on a
	// forest it is also the fairness quantum of a pool worker's shard claim.
	MaintHintBatch = 128
	// SweepGapMin/Max bound the fallback-sweep backoff: after a sweep that
	// found work the next is due SweepGapMin later; every idle sweep doubles
	// the gap up to SweepGapMax.
	SweepGapMin = time.Millisecond
	SweepGapMax = 256 * time.Millisecond
)

// This file implements the maintenance ("rotator") side of the paper,
// upgraded from the paper's single blind sweeper to a hint-driven scheduler:
//
//  1. targeted repairs — application transactions publish hints at commit
//     (hints.go) and the maintenance driver repairs exactly the hinted
//     root-to-key paths (repair.go): height propagation (§3.1), physical
//     removal of logically deleted nodes with at most one child (§3.2) and
//     node-local rotations (§3.1), each as its own transaction;
//  2. fallback sweeps — the original depth-first traversal of the whole
//     tree, now run at a low adaptive frequency (capped exponential idle
//     backoff) to guarantee eventual repair of anything hints missed and to
//     keep §3.4 garbage-collection epochs progressing;
//  3. garbage collection of unlinked nodes with the §3.4 epoch scheme,
//     performed by both paths.
//
// A Tree used standalone drives all of this from its own goroutine
// (Start/Stop below); the shards of a forest are driven by the forest's
// shared worker pool instead (internal/forest), through the same
// DrainHints/RunMaintenancePass surface.

// Start launches the maintenance goroutine. It is idempotent while running
// and safe for concurrent callers (serialized against Stop).
func (t *Tree) Start() {
	t.lifeMu.Lock()
	defer t.lifeMu.Unlock()
	if t.running.Load() {
		return
	}
	t.stop.Store(false)
	t.done = make(chan struct{})
	t.running.Store(true)
	// Hints arriving while the loop idles must wake it (hints.go). The
	// registration is idempotent and deliberately left in place across
	// Stop/Start cycles: nudging the 1-slot wake channel of a stopped loop
	// is harmless.
	t.SetMaintNotify(t.nudgeWake)
	go t.maintLoop()
}

// Stop halts the maintenance goroutine and waits for it to finish its
// current work. It is a no-op when maintenance is not running and safe for
// concurrent callers: racing Stops serialize on the lifecycle lock, the
// loser observing the goroutine already stopped instead of double-waiting
// on done.
func (t *Tree) Stop() {
	t.stopEpoch.Add(1)
	t.lifeMu.Lock()
	defer t.lifeMu.Unlock()
	if !t.running.Load() {
		return
	}
	t.stop.Store(true)
	t.nudgeWake() // break the loop out of its idle wait immediately
	<-t.done
	t.stop.Store(false) // leave manual RunMaintenancePass/Quiesce usable
	t.running.Store(false)
}

// nudgeWake wakes the maintenance loop without blocking (the channel keeps
// at most one pending token).
func (t *Tree) nudgeWake() {
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// maintLoop is the tree's own maintenance driver: drain hints with targeted
// repairs, run the fallback sweep when due, and otherwise sleep until a
// hint arrives or the next sweep deadline — the sweep gap doubling (capped)
// while the tree stays clean, so an idle tree costs ~0 CPU instead of the
// fixed-period polling it used to burn.
func (t *Tree) maintLoop() {
	defer close(t.done)
	sweepGap := SweepGapMin
	nextSweep := time.Now()
	for !t.stop.Load() {
		t0 := time.Now()
		hints, work := t.DrainHints(MaintHintBatch)
		if !t0.Before(nextSweep) {
			w := t.RunMaintenancePass()
			work += w
			if w > 0 {
				sweepGap = SweepGapMin
			} else {
				sweepGap = min(2*sweepGap, SweepGapMax)
			}
			nextSweep = time.Now().Add(sweepGap)
		}
		t.busyNanos.Add(uint64(time.Since(t0)))
		if hints > 0 || work > 0 {
			continue // stay hot while there is work
		}
		d := time.Until(nextSweep)
		if d <= 0 {
			continue
		}
		timer := time.NewTimer(d)
		select {
		case <-t.wake:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// RunMaintenancePass executes one full maintenance traversal synchronously:
// one garbage-collection epoch around one depth-first propagate/remove/
// rotate sweep. It returns the amount of structural work done (rotations +
// removals + nodes freed); a return of 0 means the tree was balanced, fully
// unlinked and garbage-free. It must not be called concurrently with Start.
func (t *Tree) RunMaintenancePass() int {
	t.collector.BeginEpoch(t.stm.Threads())
	rootN := t.node(t.root)
	h, work := t.maintain(t.root, true, rootN.L.Plain())
	rootN.LeftH.Store(h)
	rootN.LocalH.Store(h + 1)
	freed := t.collector.TryFree()
	t.freed.Add(uint64(freed))
	t.passes.Add(1)
	return work + freed
}

// Quiesce drains maintenance work — queued hints and full passes — until a
// round does no structural work (or maxPasses is hit), leaving the tree
// balanced, physically clean and with an empty hint queue. A running
// background maintenance goroutine is paused for the duration and resumed
// afterwards (drains and passes are single-driver, see RunMaintenancePass).
// Intended for tests and for phase changes in benchmarks; concurrent
// updates may legitimately prevent quiescence, hence the bound. Quiesce
// itself must be called from one goroutine at a time.
func (t *Tree) Quiesce(maxPasses int) bool {
	if t.running.Load() {
		t.Stop()
		epoch := t.stopEpoch.Load()
		defer func() {
			// Resume only if nobody else asked for a stop while we were
			// draining — a concurrent Close/Stop must win, not be undone.
			if t.stopEpoch.Load() == epoch {
				t.Start()
			}
		}()
	}
	for i := 0; i < maxPasses; i++ {
		_, hintWork := t.DrainHints(1 << 20)
		if t.RunMaintenancePass()+hintWork == 0 {
			return true
		}
	}
	return false
}

// maintain processes the subtree rooted at ref (a child of parentRef on the
// side given by leftChild) and returns its estimated height plus the number
// of structural changes performed. The traversal reads the structure with
// plain atomic loads: the maintenance driver is the only structural writer
// besides leaf-appending inserts, so the nodes it walks cannot be unlinked
// under it, and every actual modification is re-validated inside its own
// transaction.
func (t *Tree) maintain(parentRef arena.Ref, leftChild bool, ref arena.Ref) (int32, int) {
	if ref == arena.Nil {
		return 0, 0
	}
	if t.stop.Load() {
		return t.heightOf(ref), 0
	}
	t.maintVisits++
	if t.maintVisits%maintYieldStride == 0 {
		runtime.Gosched()
	}
	n := t.node(ref)
	// Physical removal (§3.2): logically deleted nodes with at most one
	// child are unlinked; nodes with two children stay (the paper found
	// removing ≤1-child nodes keeps the tree from growing, §3.3).
	if n.Del.Plain() != 0 {
		l, r := n.L.Plain(), n.R.Plain()
		if l == arena.Nil || r == arena.Nil {
			if repl, _, ok := t.removeChild(parentRef, leftChild); ok {
				h, w := t.maintain(parentRef, leftChild, repl)
				return h, w + 1
			}
		}
	}
	// Post-order: settle the children first so the heights we propagate
	// are the freshest available estimates.
	lh, lw := t.maintain(ref, true, n.L.Plain())
	rh, rw := t.maintain(ref, false, n.R.Plain())
	n.LeftH.Store(lh)
	n.RightH.Store(rh)
	n.LocalH.Store(1 + maxi32(lh, rh))
	work := lw + rw

	// Rebalance (§3.1): trigger when the estimated child heights differ by
	// more than one; a double rotation is expressed as two node-local single
	// rotations, each its own transaction (see repair.go's rebalance — the
	// same decision drives targeted repairs).
	work += t.rebalance(parentRef, leftChild, ref, lh, rh)
	// The subtree root may have changed (rotation or removal); report the
	// estimate of whatever the parent points at now.
	var cur arena.Ref
	p := t.node(parentRef)
	if leftChild {
		cur = p.L.Plain()
	} else {
		cur = p.R.Plain()
	}
	return t.heightOf(cur), work
}
