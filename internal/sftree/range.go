package sftree

import (
	"repro/internal/arena"
	"repro/internal/stm"
)

// This file implements ordered range scans over the speculation-friendly
// tree: a bounded in-order traversal that visits every live key in
// [lo, hi] (inclusive) in ascending order, skipping logically deleted
// nodes. Two disciplines are provided:
//
//   - RangeTx / Range read the structure with the same transactional reads
//     as find: every child pointer and every deleted flag on the visited
//     frontier enters the read set, so a committed scan is one consistent
//     snapshot (exactly the discipline Size and Keys already use, but
//     pruned to the requested interval).
//   - RangeElastic runs the scan as a read-only elastic transaction (the
//     paper's §4 / E-STM model): only a short hand-over-hand window of
//     trailing reads is validated and older reads are cut, so the scan
//     never causes — nor suffers — false conflicts from concurrent updates
//     outside its current window.
//
// Keys are immutable after insertion in this tree (successor replacement
// never happens; deletion is logical), so keys are read plainly, as in the
// find pseudocode.

// RangeTx visits, in ascending key order, every element whose key lies in
// [lo, hi] (both inclusive), calling fn(k, v) for each. fn returning false
// stops the scan early. RangeTx reports whether the scan ran to the end of
// the interval (true) or was stopped by fn (false). It is the composable
// form for use inside an enclosing transaction (paper §5.4's reusability).
func (t *Tree) RangeTx(tx *stm.Tx, lo, hi uint64, fn func(k, v uint64) bool) bool {
	if lo > hi {
		return true
	}
	return t.rangeWalk(tx, tx.Read(&t.node(t.root).L), lo, hi, fn)
}

// rangeWalk performs the bounded in-order traversal: subtrees whose key
// interval cannot intersect [lo, hi] are pruned (the BST invariant makes
// the pruning exact on a consistent snapshot), so the transactional read
// set is O(log n + r) for r reported elements rather than O(n).
func (t *Tree) rangeWalk(tx *stm.Tx, r arena.Ref, lo, hi uint64, fn func(k, v uint64) bool) bool {
	if r == arena.Nil {
		return true
	}
	n := t.node(r)
	k := n.Key.Plain()
	if lo < k {
		if !t.rangeWalk(tx, tx.Read(&n.L), lo, hi, fn) {
			return false
		}
	}
	if lo <= k && k <= hi {
		if tx.Read(&n.Del) == 0 {
			if !fn(k, tx.Read(&n.Val)) {
				return false
			}
		}
	}
	if k < hi {
		if !t.rangeWalk(tx, tx.Read(&n.R), lo, hi, fn) {
			return false
		}
	}
	return true
}

// Range visits every element with key in [lo, hi] in ascending order,
// calling fn(k, v) for each; fn returning false stops the scan. It reports
// whether the scan ran to the end of the interval. Like Size and Keys it
// always runs with full read tracking (CTL), so the reported elements form
// one consistent snapshot of the interval even when the domain defaults to
// elastic transactions.
//
// The interval is snapshotted inside the transaction and fn is invoked
// after it commits — exactly once per element, never from an aborted
// attempt — so fn may freely accumulate state and perform side effects
// (unlike a callback passed to RangeTx, which runs inside the transaction
// and is re-executed on retry).
func (t *Tree) Range(th *stm.Thread, lo, hi uint64, fn func(k, v uint64) bool) bool {
	return feedSnapshot(snapshotRange(th, stm.CTL, t.RangeTx, lo, hi), fn)
}

// RangeElastic is Range under the elastic (E-STM) read discipline of the
// paper's §4: the traversal validates only the hand-over-hand window of
// trailing reads and cuts everything older, so a long scan neither aborts on
// nor invalidates concurrent updates to parts of the interval it has already
// passed. The price is the snapshot guarantee: the reported elements reflect
// a mixture of tree states, and a scan racing concurrent rotations can miss
// or duplicate keys near the rotation point. Use it for cheap approximate
// scans (monitoring, sampling, load estimation); use Range when the result
// must be a consistent snapshot.
//
// The elastic discipline is only sound for the Portable variant (see
// ElasticSafe); on the Optimized variant — whose traversals already run on
// unit reads and gain nothing from cutting — RangeElastic demotes to the
// fully validated CTL scan.
func (t *Tree) RangeElastic(th *stm.Thread, lo, hi uint64, fn func(k, v uint64) bool) bool {
	mode := stm.Elastic
	if t.variant == Optimized {
		mode = stm.CTL
	}
	return feedSnapshot(snapshotRange(th, mode, t.RangeTx, lo, hi), fn)
}

// snapshotRange collects the [lo, hi] contents reported by a RangeTx-shaped
// traversal into a buffer, resetting it on every transaction attempt so only
// the committed attempt's elements survive.
func snapshotRange(th *stm.Thread, mode stm.Mode,
	rangeTx func(*stm.Tx, uint64, uint64, func(k, v uint64) bool) bool,
	lo, hi uint64) [][2]uint64 {
	var buf [][2]uint64
	th.AtomicMode(mode, func(tx *stm.Tx) {
		buf = buf[:0]
		rangeTx(tx, lo, hi, func(k, v uint64) bool {
			buf = append(buf, [2]uint64{k, v})
			return true
		})
	})
	return buf
}

// feedSnapshot replays a collected snapshot into fn, honoring early stop.
func feedSnapshot(buf [][2]uint64, fn func(k, v uint64) bool) bool {
	for _, e := range buf {
		if !fn(e[0], e[1]) {
			return false
		}
	}
	return true
}

// EmptyHint reports, from one plain read, whether the tree was just observed
// to hold no nodes at all (every user node hangs off the sentinel's left
// child). A true result is a legitimate instantaneous snapshot — "empty at
// the moment of the load" — that read-only scans may use to skip the tree
// without opening a transaction; false means nothing (nodes present, or a
// concurrent insert in flight).
func (t *Tree) EmptyHint() bool {
	return t.node(t.root).L.Plain() == arena.Nil
}
