package sftree

import "repro/internal/arena"

// This file implements targeted repairs: the hint-driven replacement for
// whole-tree maintenance sweeps. A repair descends from the root to the
// hinted key with plain reads (legal under the single-maintenance-driver
// discipline, exactly like maintain's traversal), physically removes the
// hinted node when it is logically deleted with at most one child, and then
// walks the recorded path bottom-up, refreshing each node's height
// estimates from its children and rotating where the estimates differ by
// more than one. Every structural change is its own small transaction
// (rotate.go), so a repair conflicts with application transactions exactly
// as narrowly as a sweep does — it just skips the O(n) walk over the parts
// of the tree nobody touched.

// pathEnt addresses one step of a recorded descent: the node is the child
// of parent on the side given by leftChild. Entries never store the child
// ref itself — rotations (and, in the optimized variant, copy-on-rotate
// removals) can replace the child, so each consumer reloads it from the
// parent.
type pathEnt struct {
	parent    arena.Ref
	leftChild bool
}

// repairAt performs one targeted repair around key k and returns the
// structural work done (rotations + removals). Single-driver, like
// RunMaintenancePass.
func (t *Tree) repairAt(k uint64) int {
	// Descend, recording the path. The traversal reads the structure with
	// plain loads: only this maintenance driver unlinks nodes, so the path
	// stays resolvable, and every modification re-validates transactionally.
	path := t.repairPath[:0]
	parent, leftChild := t.root, true
	ref := t.node(t.root).L.Plain()
	for ref != arena.Nil {
		path = append(path, pathEnt{parent: parent, leftChild: leftChild})
		n := t.node(ref)
		key := n.Key.Plain()
		if key == k {
			break
		}
		if k < key {
			parent, leftChild, ref = ref, true, n.L.Plain()
		} else {
			parent, leftChild, ref = ref, false, n.R.Plain()
		}
	}
	t.repairPath = path // keep the grown capacity for the next repair

	work := 0
	// Targeted removal (§3.2): the hinted node, when found logically
	// deleted with at most one child, is unlinked here and now instead of
	// waiting for the next sweep to stumble over it.
	if ref != arena.Nil {
		n := t.node(ref)
		if n.Del.Plain() != 0 {
			l, r := n.L.Plain(), n.R.Plain()
			if l == arena.Nil || r == arena.Nil {
				if _, _, ok := t.removeChild(parent, leftChild); ok {
					work++
				}
			}
		}
	}
	// Bottom-up pass over the path: propagate heights and rebalance. This
	// is the §3.1 propagate/rotate confined to the root-to-key path — the
	// only region whose estimates the committed operation can have staled.
	for i := len(path) - 1; i >= 0; i-- {
		work += t.settle(path[i].parent, path[i].leftChild)
	}
	return work
}

// settle refreshes the height estimates of parent's child on the given side
// from that child's own children, rebalances it when the refreshed
// estimates differ by more than one, and re-propagates the resulting height
// into the parent. It returns the structural work done.
func (t *Tree) settle(parentRef arena.Ref, leftChild bool) int {
	p := t.node(parentRef)
	var ref arena.Ref
	if leftChild {
		ref = p.L.Plain()
	} else {
		ref = p.R.Plain()
	}
	if ref == arena.Nil {
		setChildHeight(p, leftChild, 0)
		return 0
	}
	n := t.node(ref)
	lh, rh := t.heightOf(n.L.Plain()), t.heightOf(n.R.Plain())
	n.LeftH.Store(lh)
	n.RightH.Store(rh)
	n.LocalH.Store(1 + maxi32(lh, rh))
	work := t.rebalance(parentRef, leftChild, ref, lh, rh)
	// The child may have been replaced by a rotation; propagate the height
	// of whatever hangs there now.
	if leftChild {
		ref = p.L.Plain()
	} else {
		ref = p.R.Plain()
	}
	setChildHeight(p, leftChild, t.heightOf(ref))
	return work
}

// rebalance applies the distributed-rotation decision of §3.1 to ref (the
// child of parentRef on the side leftChild, whose estimated child heights
// are lh and rh): when the estimates differ by more than one, rotate — a
// double rotation expressed as two node-local single rotations, each its
// own transaction. It returns the number of rotations that committed.
func (t *Tree) rebalance(parentRef arena.Ref, leftChild bool, ref arena.Ref, lh, rh int32) int {
	work := 0
	n := t.node(ref)
	switch {
	case lh > rh+1:
		if l := n.L.Plain(); l != arena.Nil {
			ln := t.node(l)
			if ln.RightH.Load() > ln.LeftH.Load() {
				if t.rotateLeft(ref, true) {
					work++
				}
			}
			if t.rotateRight(parentRef, leftChild) {
				work++
			}
		}
	case rh > lh+1:
		if r := n.R.Plain(); r != arena.Nil {
			rn := t.node(r)
			if rn.LeftH.Load() > rn.RightH.Load() {
				if t.rotateRight(ref, false) {
					work++
				}
			}
			if t.rotateLeft(parentRef, leftChild) {
				work++
			}
		}
	}
	return work
}
