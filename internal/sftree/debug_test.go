package sftree

import (
	"math/rand"
	"testing"

	"repro/internal/stm"
)

// TestDebugBalanceConvergence is a focused reproduction harness for the
// convergence of the distributed rebalancing under delete-heavy sequential
// workloads.
func TestDebugBalanceConvergence(t *testing.T) {
	tr, th := newTree(t, Portable)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		hi := uint64(8192 + rng.Intn(8192))
		lo := uint64(rng.Intn(8192))
		tr.Insert(th, hi, hi)
		tr.Delete(th, lo)
	}
	for pass := 0; pass < 200; pass++ {
		w := tr.RunMaintenancePass()
		if w == 0 {
			t.Logf("quiesced after %d passes, stats %+v", pass, tr.Stats())
			break
		}
	}
	if err := tr.CheckBalanced(1); err != nil {
		t.Logf("imbalance after quiesce: %v", err)
		st := tr.Stats()
		t.Logf("stats: %+v physSize=%d height=%d", st, tr.PhysicalSize(), tr.Height())
		// Run extra passes to see whether it is slow convergence or a
		// genuine fixpoint short of balance.
		for pass := 0; pass < 2000; pass++ {
			tr.RunMaintenancePass()
		}
		if err2 := tr.CheckBalanced(1); err2 != nil {
			t.Fatalf("still unbalanced after 2000 extra passes: %v (stats %+v)", err2, tr.Stats())
		}
		t.Fatalf("converged only after extra passes: Quiesce's zero-work test is wrong: %v", err)
	}
}

// TestCoupledMaintenanceEquivalence checks the ablation pass produces the
// same quiescent structure guarantees as the distributed one.
func TestCoupledMaintenanceEquivalence(t *testing.T) {
	tr, th := newTree(t, Portable)
	const n = 512
	for k := uint64(0); k < n; k++ {
		tr.Insert(th, k, k)
	}
	for k := uint64(0); k < n; k += 3 {
		tr.Delete(th, k)
	}
	for pass := 0; pass < 100; pass++ {
		if tr.RunMaintenancePassCoupled() == 0 {
			break
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckBalanced(1); err != nil {
		t.Fatal(err)
	}
	want := n - (n+2)/3
	if got := tr.Size(th); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
	if tr.Stats().Removals == 0 || tr.Stats().Rotations == 0 {
		t.Fatalf("coupled pass did no structural work: %+v", tr.Stats())
	}
	// Deleted nodes with at most one child must be gone.
	if phys := tr.PhysicalSize(); phys > want+n/6 {
		t.Fatalf("physical size %d suggests removals did not happen (abstract %d)", phys, want)
	}
}

// TestCoupledMaintenanceUnderConcurrency: the coupled pass must remain
// correct (it is a transaction like any other) even though it conflicts
// with everything; this is exactly the behaviour the ablation bench
// quantifies.
func TestCoupledMaintenanceUnderConcurrency(t *testing.T) {
	s := stm.New(stm.WithYield(4))
	tr := New(s, WithVariant(Portable))
	th := s.NewThread()
	for k := uint64(0); k < 256; k++ {
		tr.Insert(th, k, k)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				tr.RunMaintenancePassCoupled()
			}
		}
	}()
	worker := s.NewThread()
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1500; i++ {
		k := uint64(rng.Intn(256))
		if rng.Intn(2) == 0 {
			if tr.Insert(worker, k, uint64(i)) {
				oracle[k] = uint64(i)
			}
		} else if tr.Delete(worker, k) {
			delete(oracle, k)
		}
	}
	close(stop)
	<-done
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		if got, ok := tr.Get(worker, k); !ok || got != want {
			t.Fatalf("key %d: (%d,%v), want (%d,true)", k, got, ok, want)
		}
	}
}
