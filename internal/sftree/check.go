package sftree

import (
	"fmt"

	"repro/internal/arena"
)

// CheckInvariants validates the structural invariants of the tree with
// plain (non-transactional) reads. It must only be called while the tree is
// quiescent: no concurrent abstract operations and no running maintenance.
//
// Checked invariants:
//
//   - the root is the immutable +∞ sentinel with an empty right subtree;
//   - reachable nodes form a valid binary search tree (strict key order);
//   - no reachable node carries a removed flag (Lemma 5: removed nodes have
//     no path from the root);
//   - no key appears twice.
func (t *Tree) CheckInvariants() error {
	rootN := t.node(t.root)
	if rootN.Key.Plain() != MaxKey {
		return fmt.Errorf("root key = %d, want MaxKey sentinel", rootN.Key.Plain())
	}
	if rootN.R.Plain() != arena.Nil {
		return fmt.Errorf("root sentinel has a right child")
	}
	seen := make(map[uint64]bool)
	_, _, err := t.checkRec(rootN.L.Plain(), 0, false, MaxKey, true, seen)
	return err
}

// checkRec walks the subtree verifying order bounds (lo, hi), exclusive on
// the sides where the corresponding flag is set.
func (t *Tree) checkRec(ref arena.Ref, lo uint64, loSet bool, hi uint64, hiSet bool, seen map[uint64]bool) (height int, size int, err error) {
	if ref == arena.Nil {
		return 0, 0, nil
	}
	n := t.node(ref)
	k := n.Key.Plain()
	if arena.Removed(n.Rem.Plain()) {
		return 0, 0, fmt.Errorf("node %d (key %d) reachable with removed flag %d", ref, k, n.Rem.Plain())
	}
	if loSet && k <= lo {
		return 0, 0, fmt.Errorf("key %d violates lower bound %d", k, lo)
	}
	if hiSet && k >= hi {
		return 0, 0, fmt.Errorf("key %d violates upper bound %d", k, hi)
	}
	if seen[k] {
		return 0, 0, fmt.Errorf("key %d appears twice", k)
	}
	seen[k] = true
	lh, ls, err := t.checkRec(n.L.Plain(), lo, loSet, k, true, seen)
	if err != nil {
		return 0, 0, err
	}
	rh, rs, err := t.checkRec(n.R.Plain(), k, true, hi, hiSet, seen)
	if err != nil {
		return 0, 0, err
	}
	h := 1 + lh
	if rh >= lh {
		h = 1 + rh
	}
	return h, 1 + ls + rs, nil
}

// CheckBalanced reports an error if any reachable node's actual subtree
// heights differ by more than slack. With slack 1 this is the AVL balance
// condition, which the tree converges to after Quiesce (the relaxed
// rebalancing of Bougé et al. is self-stabilizing).
func (t *Tree) CheckBalanced(slack int) error {
	_, err := t.balanceRec(t.node(t.root).L.Plain(), slack)
	return err
}

func (t *Tree) balanceRec(ref arena.Ref, slack int) (int, error) {
	if ref == arena.Nil {
		return 0, nil
	}
	n := t.node(ref)
	lh, err := t.balanceRec(n.L.Plain(), slack)
	if err != nil {
		return 0, err
	}
	rh, err := t.balanceRec(n.R.Plain(), slack)
	if err != nil {
		return 0, err
	}
	diff := lh - rh
	if diff < 0 {
		diff = -diff
	}
	if diff > slack {
		return 0, fmt.Errorf("node key %d unbalanced: left height %d, right height %d (slack %d)",
			n.Key.Plain(), lh, rh, slack)
	}
	h := 1 + lh
	if rh > lh {
		h = 1 + rh
	}
	return h, nil
}

// DeletedReachable counts reachable nodes whose logical-deletion flag is
// set (plain reads; quiescent use). After a Quiesce every such node has two
// children (§3.3: only ≤1-child deleted nodes are physically removed), and
// after deleting every key and quiescing the count must reach zero.
func (t *Tree) DeletedReachable() int {
	return t.delRec(t.node(t.root).L.Plain())
}

func (t *Tree) delRec(ref arena.Ref) int {
	if ref == arena.Nil {
		return 0
	}
	n := t.node(ref)
	c := 0
	if n.Del.Plain() != 0 {
		c = 1
	}
	return c + t.delRec(n.L.Plain()) + t.delRec(n.R.Plain())
}

// Height returns the actual height of the tree (plain reads; quiescent use).
func (t *Tree) Height() int {
	return t.heightRec(t.node(t.root).L.Plain())
}

func (t *Tree) heightRec(ref arena.Ref) int {
	if ref == arena.Nil {
		return 0
	}
	n := t.node(ref)
	lh := t.heightRec(n.L.Plain())
	rh := t.heightRec(n.R.Plain())
	if lh > rh {
		return 1 + lh
	}
	return 1 + rh
}

// PhysicalSize counts all reachable nodes, including logically deleted ones
// still awaiting physical removal (plain reads; quiescent use).
func (t *Tree) PhysicalSize() int {
	return t.physRec(t.node(t.root).L.Plain())
}

func (t *Tree) physRec(ref arena.Ref) int {
	if ref == arena.Nil {
		return 0
	}
	n := t.node(ref)
	return 1 + t.physRec(n.L.Plain()) + t.physRec(n.R.Plain())
}
