package nrtree

import (
	"testing"

	"repro/internal/stm"
)

func TestNoRestructuring(t *testing.T) {
	s := stm.New()
	tr := New(s)
	th := s.NewThread()
	const n = 128
	for k := uint64(0); k < n; k++ {
		tr.Insert(th, k, k)
	}
	// Sorted insertion with no rebalancing must leave a degenerate list.
	if h := tr.Height(); h != n {
		t.Fatalf("height = %d, want %d (no rotations may ever run)", h, n)
	}
	tr.Start() // must be inert
	tr.Stop()
	if got := tr.RunMaintenancePass(); got != 0 {
		t.Fatalf("maintenance pass did work: %d", got)
	}
	if !tr.Quiesce(1) {
		t.Fatal("Quiesce must trivially succeed")
	}
	if h := tr.Height(); h != n {
		t.Fatalf("height changed to %d after no-op maintenance", h)
	}
	if st := tr.Stats(); st.Rotations != 0 || st.Removals != 0 {
		t.Fatalf("structural work recorded on NRtree: %+v", st)
	}
}

func TestLogicalDeleteOnlyNeverUnlinks(t *testing.T) {
	s := stm.New()
	tr := New(s)
	th := s.NewThread()
	for k := uint64(0); k < 64; k++ {
		tr.Insert(th, k, k)
	}
	for k := uint64(0); k < 64; k++ {
		if !tr.Delete(th, k) {
			t.Fatalf("delete(%d) failed", k)
		}
	}
	if got := tr.Size(th); got != 0 {
		t.Fatalf("abstract size = %d, want 0", got)
	}
	if got := tr.PhysicalSize(); got != 64 {
		t.Fatalf("physical size = %d, want 64 (nodes never removed)", got)
	}
	// Resurrection still works through the shared logical-deletion path.
	if !tr.Insert(th, 10, 100) {
		t.Fatal("resurrection failed")
	}
	if v, ok := tr.Get(th, 10); !ok || v != 100 {
		t.Fatalf("get after resurrection = (%d,%v)", v, ok)
	}
	if got := tr.PhysicalSize(); got != 64 {
		t.Fatalf("resurrection allocated: physical size %d", got)
	}
}

func TestInheritedOperations(t *testing.T) {
	s := stm.New()
	tr := New(s)
	th := s.NewThread()
	tr.Insert(th, 1, 10)
	tr.Insert(th, 2, 20)
	if !tr.Move(th, 1, 3) {
		t.Fatal("move failed")
	}
	if tr.Contains(th, 1) || !tr.Contains(th, 3) {
		t.Fatal("move semantics broken")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
