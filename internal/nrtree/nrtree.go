// Package nrtree provides the no-restructuring tree (NRtree) baseline of
// the paper's evaluation (§5.2): a tree "similar [to the
// speculation-friendly tree] but that never rebalances the structure
// whatever modifications occur" and that never physically removes nodes.
//
// It is, by construction, the portable speculation-friendly tree with its
// maintenance thread permanently disabled: deletions stay logical, inserted
// nodes are never rotated, and the structure degrades towards a list under
// skewed workloads — the behaviour Fig. 3 (right) demonstrates. Expressing
// it as a wrapper makes the ablation exact: NRtree vs SFtree differs only
// in the presence of the structural transactions.
package nrtree

import (
	"repro/internal/sftree"
	"repro/internal/stm"
)

// Tree is a no-restructuring binary search tree.
type Tree struct {
	*sftree.Tree
}

// New creates an empty no-restructuring tree on the given STM domain.
// Maintenance hints are disabled at the source (sftree.WithoutHints): a
// tree that never restructures has no use for repair hints, and emitting
// them would charge the ablation for work it never performs.
func New(s *stm.STM) *Tree {
	return &Tree{Tree: sftree.New(s, sftree.WithVariant(sftree.Portable), sftree.WithoutHints())}
}

// Start is a no-op: the defining property of the NRtree is the absence of
// the maintenance thread.
func (t *Tree) Start() {}

// Stop is a no-op, matching Start.
func (t *Tree) Stop() {}

// RunMaintenancePass is a no-op returning 0: no restructuring ever happens.
func (t *Tree) RunMaintenancePass() int { return 0 }

// Quiesce trivially succeeds: there is never maintenance work to drain.
func (t *Tree) Quiesce(int) bool { return true }

// DrainHints is a no-op: hints are never emitted (see New) and targeted
// repairs are restructuring, which this tree never does.
func (t *Tree) DrainHints(int) (int, int) { return 0, 0 }

// HintBacklog is always zero, matching DrainHints.
func (t *Tree) HintBacklog() int { return 0 }

// SetMaintNotify is a no-op: with hints disabled nothing ever notifies.
func (t *Tree) SetMaintNotify(func()) {}
