// Package avltree implements a transaction-based AVL tree in the style of
// the STAMP/synchrobench baseline the paper evaluates against: every update
// operation encapsulates all four phases of §2 — the abstraction
// modification, the structural adaptation, the threshold check and the
// rebalancing — in a single transaction. Rotations therefore happen inside
// the insert/delete transactions and can propagate from the modified leaf
// all the way to the root, which is exactly the conflict amplification the
// speculation-friendly tree removes.
//
// Keys and subtree heights are transactional (deletion replaces a node's
// key with its successor's), so traversals conflict with any restructuring
// on their path.
package avltree

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/stm"
)

// Tree is a transactional AVL tree. The root reference itself is a
// transactional word: rotations at the top of the tree write it, making the
// root a genuine contention point, as in the baseline implementations.
type Tree struct {
	s  *stm.STM
	ar *arena.Arena

	root stm.Word // arena.Ref of the root node

	retired atomic.Uint64
}

// New creates an empty AVL tree on the given STM domain.
func New(s *stm.STM) *Tree {
	return &Tree{s: s, ar: arena.New()}
}

// Arena exposes the node arena for instrumentation.
func (t *Tree) Arena() *arena.Arena { return t.ar }

// Retired returns the number of physically deleted nodes. The baseline
// trees retire nodes without recycling them (safe reclamation would need
// the epoch machinery the speculation-friendly tree gets from its
// maintenance thread); this mirrors the benchmarked C baselines and bounds
// memory by the number of effective deletes in a run.
func (t *Tree) Retired() uint64 { return t.retired.Load() }

func (t *Tree) node(r arena.Ref) *arena.Node { return t.ar.Get(r) }

// height reads a subtree height (0 for ⊥). Heights are stored in Aux.
func (t *Tree) height(tx *stm.Tx, ref arena.Ref) uint64 {
	if ref == arena.Nil {
		return 0
	}
	return tx.Read(&t.node(ref).Aux)
}

// fixHeight recomputes ref's height from its children, writing only on
// change to keep the write set minimal.
func (t *Tree) fixHeight(tx *stm.Tx, ref arena.Ref) {
	n := t.node(ref)
	lh := t.height(tx, tx.Read(&n.L))
	rh := t.height(tx, tx.Read(&n.R))
	h := 1 + lh
	if rh > lh {
		h = 1 + rh
	}
	if tx.Read(&n.Aux) != h {
		tx.Write(&n.Aux, h)
	}
}

// rotateRight rotates the subtree rooted at ref and returns the new root.
func (t *Tree) rotateRight(tx *stm.Tx, ref arena.Ref) arena.Ref {
	n := t.node(ref)
	lRef := tx.Read(&n.L)
	if lRef == arena.Nil {
		// A consistent snapshot never rotates towards a missing child;
		// this attempt is doomed (possible under relaxed read tracking).
		tx.Restart()
	}
	l := t.node(lRef)
	lr := tx.Read(&l.R)
	tx.Write(&n.L, lr)
	tx.Write(&l.R, ref)
	t.fixHeight(tx, ref)
	t.fixHeight(tx, lRef)
	return lRef
}

// rotateLeft is the mirror of rotateRight.
func (t *Tree) rotateLeft(tx *stm.Tx, ref arena.Ref) arena.Ref {
	n := t.node(ref)
	rRef := tx.Read(&n.R)
	if rRef == arena.Nil {
		tx.Restart() // doomed attempt: see rotateRight
	}
	r := t.node(rRef)
	rl := tx.Read(&r.L)
	tx.Write(&n.R, rl)
	tx.Write(&r.L, ref)
	t.fixHeight(tx, ref)
	t.fixHeight(tx, rRef)
	return rRef
}

// rebalance restores the AVL invariant at ref (|balance| <= 1), returning
// the subtree's new root. This is the paper's phases (3)+(4), executed
// inside the update transaction.
func (t *Tree) rebalance(tx *stm.Tx, ref arena.Ref) arena.Ref {
	t.fixHeight(tx, ref)
	n := t.node(ref)
	lRef := tx.Read(&n.L)
	rRef := tx.Read(&n.R)
	lh := t.height(tx, lRef)
	rh := t.height(tx, rRef)
	switch {
	case lh > rh+1:
		l := t.node(lRef)
		if t.height(tx, tx.Read(&l.R)) > t.height(tx, tx.Read(&l.L)) {
			tx.Write(&n.L, t.rotateLeft(tx, lRef))
		}
		return t.rotateRight(tx, ref)
	case rh > lh+1:
		r := t.node(rRef)
		if t.height(tx, tx.Read(&r.L)) > t.height(tx, tx.Read(&r.R)) {
			tx.Write(&n.R, t.rotateRight(tx, rRef))
		}
		return t.rotateLeft(tx, ref)
	}
	return ref
}

// Contains reports whether k is present.
func (t *Tree) Contains(th *stm.Thread, k uint64) bool {
	var ok bool
	t.atomic(th, func(tx *stm.Tx) { ok = t.ContainsTx(tx, k) })
	return ok
}

// ContainsTx is the composable form of Contains.
func (t *Tree) ContainsTx(tx *stm.Tx, k uint64) bool {
	_, ok := t.GetTx(tx, k)
	return ok
}

// Get returns the value mapped to k.
func (t *Tree) Get(th *stm.Thread, k uint64) (uint64, bool) {
	var v uint64
	var ok bool
	t.atomic(th, func(tx *stm.Tx) { v, ok = t.GetTx(tx, k) })
	return v, ok
}

// GetTx is the composable form of Get.
func (t *Tree) GetTx(tx *stm.Tx, k uint64) (uint64, bool) {
	ref := tx.Read(&t.root)
	for ref != arena.Nil {
		n := t.node(ref)
		key := tx.Read(&n.Key)
		switch {
		case k == key:
			return tx.Read(&n.Val), true
		case k < key:
			ref = tx.Read(&n.L)
		default:
			ref = tx.Read(&n.R)
		}
	}
	return 0, false
}

// Insert maps k to v if absent, rebalancing within the same transaction.
func (t *Tree) Insert(th *stm.Thread, k, v uint64) bool {
	var sc arena.Scratch
	var ok bool
	t.atomic(th, func(tx *stm.Tx) { ok = t.InsertTx(tx, k, v, &sc) })
	sc.Release(t.ar)
	return ok
}

// InsertTx is the composable form of Insert.
func (t *Tree) InsertTx(tx *stm.Tx, k, v uint64, sc *arena.Scratch) bool {
	sc.ResetAttempt()
	rootRef := tx.Read(&t.root)
	newRoot, added := t.insertRec(tx, rootRef, k, v, sc)
	if added && newRoot != rootRef {
		tx.Write(&t.root, newRoot)
	}
	return added
}

// InsertTxA is InsertTx with tree-managed allocation for deep composition;
// aborted linking attempts may leak one arena node each (see sftree).
func (t *Tree) InsertTxA(tx *stm.Tx, k, v uint64) bool {
	var sc arena.Scratch
	return t.InsertTx(tx, k, v, &sc)
}

// SetTx maps k to v within the enclosing transaction regardless of whether
// k is present (an upsert): a present node's value is overwritten in
// place, an absent key inserts. It is the native write-replay entry point
// of the cross-shard transaction coordinator (internal/ftx) — without it a
// buffered put replayed as delete+insert, paying a rebalancing deletion
// just to overwrite a value.
func (t *Tree) SetTx(tx *stm.Tx, k, v uint64) {
	ref := tx.Read(&t.root)
	for ref != arena.Nil {
		n := t.node(ref)
		key := tx.Read(&n.Key)
		switch {
		case k == key:
			tx.Write(&n.Val, v)
			return
		case k < key:
			ref = tx.Read(&n.L)
		default:
			ref = tx.Read(&n.R)
		}
	}
	t.InsertTxA(tx, k, v)
}

func (t *Tree) insertRec(tx *stm.Tx, ref arena.Ref, k, v uint64, sc *arena.Scratch) (arena.Ref, bool) {
	if ref == arena.Nil {
		r := sc.Take(t.ar, k, v)
		t.node(r).Aux.SetPlain(1) // height of a fresh leaf
		sc.MarkLinked()
		return r, true
	}
	n := t.node(ref)
	key := tx.Read(&n.Key)
	switch {
	case k == key:
		return ref, false
	case k < key:
		lRef := tx.Read(&n.L)
		nl, added := t.insertRec(tx, lRef, k, v, sc)
		if !added {
			return ref, false
		}
		if nl != lRef {
			tx.Write(&n.L, nl)
		}
		return t.rebalance(tx, ref), true
	default:
		rRef := tx.Read(&n.R)
		nr, added := t.insertRec(tx, rRef, k, v, sc)
		if !added {
			return ref, false
		}
		if nr != rRef {
			tx.Write(&n.R, nr)
		}
		return t.rebalance(tx, ref), true
	}
}

// Delete removes k, physically unlinking (or successor-replacing) the node
// and rebalancing, all inside one transaction.
func (t *Tree) Delete(th *stm.Thread, k uint64) bool {
	var ok bool
	t.atomic(th, func(tx *stm.Tx) { ok = t.DeleteTx(tx, k) })
	return ok
}

// DeleteTx is the composable form of Delete.
func (t *Tree) DeleteTx(tx *stm.Tx, k uint64) bool {
	rootRef := tx.Read(&t.root)
	newRoot, deleted := t.deleteRec(tx, rootRef, k)
	if deleted && newRoot != rootRef {
		tx.Write(&t.root, newRoot)
	}
	return deleted
}

func (t *Tree) deleteRec(tx *stm.Tx, ref arena.Ref, k uint64) (arena.Ref, bool) {
	if ref == arena.Nil {
		return arena.Nil, false
	}
	n := t.node(ref)
	key := tx.Read(&n.Key)
	switch {
	case k < key:
		lRef := tx.Read(&n.L)
		nl, deleted := t.deleteRec(tx, lRef, k)
		if !deleted {
			return ref, false
		}
		if nl != lRef {
			tx.Write(&n.L, nl)
		}
		return t.rebalance(tx, ref), true
	case k > key:
		rRef := tx.Read(&n.R)
		nr, deleted := t.deleteRec(tx, rRef, k)
		if !deleted {
			return ref, false
		}
		if nr != rRef {
			tx.Write(&n.R, nr)
		}
		return t.rebalance(tx, ref), true
	}
	// Found the node to delete.
	lRef := tx.Read(&n.L)
	rRef := tx.Read(&n.R)
	if lRef == arena.Nil || rRef == arena.Nil {
		t.retired.Add(1)
		child := lRef
		if child == arena.Nil {
			child = rRef
		}
		return child, true
	}
	// Two children: replace with the in-order successor (leftmost of the
	// right subtree) and delete the successor from it — the conflict-heavy
	// pattern §3.1's "Limitations" paragraph describes.
	succK, succV := t.minOf(tx, rRef)
	tx.Write(&n.Key, succK)
	tx.Write(&n.Val, succV)
	nr, _ := t.deleteRec(tx, rRef, succK)
	if nr != rRef {
		tx.Write(&n.R, nr)
	}
	return t.rebalance(tx, ref), true
}

// minOf returns the key and value of the leftmost node of the subtree.
func (t *Tree) minOf(tx *stm.Tx, ref arena.Ref) (uint64, uint64) {
	for {
		n := t.node(ref)
		l := tx.Read(&n.L)
		if l == arena.Nil {
			return tx.Read(&n.Key), tx.Read(&n.Val)
		}
		ref = l
	}
}

// Size counts elements in one transaction.
func (t *Tree) Size(th *stm.Thread) int {
	var c int
	t.atomic(th, func(tx *stm.Tx) {
		c = 0
		t.walk(tx, tx.Read(&t.root), func(*arena.Node) { c++ })
	})
	return c
}

// Keys returns the sorted key set in one transaction.
func (t *Tree) Keys(th *stm.Thread) []uint64 {
	var out []uint64
	t.atomic(th, func(tx *stm.Tx) {
		out = out[:0]
		t.walk(tx, tx.Read(&t.root), func(n *arena.Node) {
			out = append(out, tx.Read(&n.Key))
		})
	})
	return out
}

func (t *Tree) walk(tx *stm.Tx, ref arena.Ref, visit func(*arena.Node)) {
	if ref == arena.Nil {
		return
	}
	n := t.node(ref)
	t.walk(tx, tx.Read(&n.L), visit)
	visit(n)
	t.walk(tx, tx.Read(&n.R), visit)
}

// Range visits every element with key in [lo, hi] (inclusive) in ascending
// order; fn returning false stops the scan. It reports whether the scan ran
// to the end of the interval. The interval is snapshotted in one
// transaction and fn runs after it commits — once per element, never from
// an aborted attempt — so fn may accumulate state freely.
func (t *Tree) Range(th *stm.Thread, lo, hi uint64, fn func(k, v uint64) bool) bool {
	var buf [][2]uint64
	t.atomic(th, func(tx *stm.Tx) {
		buf = buf[:0]
		t.RangeTx(tx, lo, hi, func(k, v uint64) bool {
			buf = append(buf, [2]uint64{k, v})
			return true
		})
	})
	for _, e := range buf {
		if !fn(e[0], e[1]) {
			return false
		}
	}
	return true
}

// RangeTx is the composable form of Range. Unlike the speculation-friendly
// tree, keys here are transactional (deletion replaces them in place), so
// the bounded traversal reads each visited key through the STM.
func (t *Tree) RangeTx(tx *stm.Tx, lo, hi uint64, fn func(k, v uint64) bool) bool {
	if lo > hi {
		return true
	}
	return t.rangeWalk(tx, tx.Read(&t.root), lo, hi, fn)
}

func (t *Tree) rangeWalk(tx *stm.Tx, ref arena.Ref, lo, hi uint64, fn func(k, v uint64) bool) bool {
	if ref == arena.Nil {
		return true
	}
	n := t.node(ref)
	k := tx.Read(&n.Key)
	if lo < k {
		if !t.rangeWalk(tx, tx.Read(&n.L), lo, hi, fn) {
			return false
		}
	}
	if lo <= k && k <= hi {
		if !fn(k, tx.Read(&n.Val)) {
			return false
		}
	}
	if k < hi {
		if !t.rangeWalk(tx, tx.Read(&n.R), lo, hi, fn) {
			return false
		}
	}
	return true
}

// EmptyHint reports, from one plain read, whether the tree was just observed
// empty; read-only scans may use it to skip the tree without a transaction.
func (t *Tree) EmptyHint() bool { return t.root.Plain() == arena.Nil }

// CheckInvariants verifies (with plain reads; quiescent use only) that the
// tree is a valid BST, that every stored height is exact, and that every
// node satisfies the AVL balance condition.
func (t *Tree) CheckInvariants() error {
	_, err := t.checkRec(t.root.Plain(), 0, false, 0, false)
	return err
}

func (t *Tree) checkRec(ref arena.Ref, lo uint64, loSet bool, hi uint64, hiSet bool) (int, error) {
	if ref == arena.Nil {
		return 0, nil
	}
	n := t.node(ref)
	k := n.Key.Plain()
	if loSet && k <= lo {
		return 0, fmt.Errorf("key %d violates lower bound %d", k, lo)
	}
	if hiSet && k >= hi {
		return 0, fmt.Errorf("key %d violates upper bound %d", k, hi)
	}
	lh, err := t.checkRec(n.L.Plain(), lo, loSet, k, true)
	if err != nil {
		return 0, err
	}
	rh, err := t.checkRec(n.R.Plain(), k, true, hi, hiSet)
	if err != nil {
		return 0, err
	}
	h := 1 + lh
	if rh > lh {
		h = 1 + rh
	}
	if int(n.Aux.Plain()) != h {
		return 0, fmt.Errorf("key %d stored height %d, actual %d", k, n.Aux.Plain(), h)
	}
	diff := lh - rh
	if diff < 0 {
		diff = -diff
	}
	if diff > 1 {
		return 0, fmt.Errorf("key %d violates AVL balance: %d vs %d", k, lh, rh)
	}
	return h, nil
}

// ElasticSafe reports that this tree must not run under elastic cutting:
// like the red-black baseline it mutates keys in place on deletion and
// rebalances inside the update transaction, so cut reads can commit
// structural corruption. See the rbtree package for the full argument.
func (t *Tree) ElasticSafe() bool { return false }

// atomic runs fn in the thread's default TM mode, demoted from Elastic to
// CTL (see ElasticSafe).
func (t *Tree) atomic(th *stm.Thread, fn func(*stm.Tx)) {
	mode := th.STM().DefaultMode()
	if mode == stm.Elastic {
		mode = stm.CTL
	}
	th.AtomicMode(mode, fn)
}
