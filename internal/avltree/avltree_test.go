package avltree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stm"
)

func newTree() (*Tree, *stm.Thread) {
	s := stm.New()
	return New(s), s.NewThread()
}

func TestEmpty(t *testing.T) {
	tr, th := newTree()
	if tr.Contains(th, 1) || tr.Delete(th, 1) || tr.Size(th) != 0 {
		t.Fatal("empty tree misbehaves")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBasicOps(t *testing.T) {
	tr, th := newTree()
	if !tr.Insert(th, 5, 50) || tr.Insert(th, 5, 51) {
		t.Fatal("insert semantics")
	}
	if v, ok := tr.Get(th, 5); !ok || v != 50 {
		t.Fatalf("get = (%d,%v)", v, ok)
	}
	if !tr.Delete(th, 5) || tr.Delete(th, 5) {
		t.Fatal("delete semantics")
	}
	if tr.Retired() != 1 {
		t.Fatalf("retired = %d, want 1", tr.Retired())
	}
}

func TestSortedInsertStaysBalanced(t *testing.T) {
	// The defining AVL property: in-transaction rebalancing keeps the tree
	// balanced after every single operation.
	tr, th := newTree()
	const n = 512
	for k := uint64(0); k < n; k++ {
		if !tr.Insert(th, k, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Size(th); got != n {
		t.Fatalf("size = %d, want %d", got, n)
	}
}

func TestDeleteTwoChildrenSuccessor(t *testing.T) {
	tr, th := newTree()
	for _, k := range []uint64{50, 30, 70, 20, 40, 60, 80} {
		tr.Insert(th, k, k*10)
	}
	if !tr.Delete(th, 50) { // interior node with two children
		t.Fatal("delete of interior node failed")
	}
	if tr.Contains(th, 50) {
		t.Fatal("deleted key still present")
	}
	want := []uint64{20, 30, 40, 60, 70, 80}
	got := tr.Keys(th)
	if len(got) != len(want) {
		t.Fatalf("keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOracleRandomOps(t *testing.T) {
	tr, th := newTree()
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(200))
		switch rng.Intn(3) {
		case 0:
			_, exists := oracle[k]
			if got := tr.Insert(th, k, uint64(i)); got == exists {
				t.Fatalf("op %d insert(%d)=%v exists=%v", i, k, got, exists)
			}
			if !exists {
				oracle[k] = uint64(i)
			}
		case 1:
			_, exists := oracle[k]
			if got := tr.Delete(th, k); got != exists {
				t.Fatalf("op %d delete(%d)=%v want %v", i, k, got, exists)
			}
			delete(oracle, k)
		default:
			v, exists := oracle[k]
			gv, gok := tr.Get(th, k)
			if gok != exists || (exists && gv != v) {
				t.Fatalf("op %d get(%d)=(%d,%v) want (%d,%v)", i, k, gv, gok, v, exists)
			}
		}
		if i%997 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Size(th) != len(oracle) {
		t.Fatalf("size %d, oracle %d", tr.Size(th), len(oracle))
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(keys []uint16, deletes []uint16) bool {
		tr, th := newTree()
		oracle := map[uint64]bool{}
		for _, k16 := range keys {
			k := uint64(k16)
			if tr.Insert(th, k, k) == oracle[k] {
				return false
			}
			oracle[k] = true
		}
		for _, k16 := range deletes {
			k := uint64(k16)
			if tr.Delete(th, k) != oracle[k] {
				return false
			}
			delete(oracle, k)
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		ks := tr.Keys(th)
		if len(ks) != len(oracle) || !sort.SliceIsSorted(ks, func(a, b int) bool { return ks[a] < ks[b] }) {
			return false
		}
		for _, k := range ks {
			if !oracle[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCounterWorkload(t *testing.T) {
	// Disjoint ranges, concurrent updates: final state must equal each
	// goroutine's sequential expectation, and the AVL invariants must hold.
	s := stm.New()
	tr := New(s)
	const goroutines = 4
	const rangeSize = 50
	oracles := make([]map[uint64]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := s.NewThread()
		oracles[g] = map[uint64]uint64{}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * rangeSize)
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 600; i++ {
				k := base + uint64(rng.Intn(rangeSize))
				if rng.Intn(2) == 0 {
					if tr.Insert(th, k, uint64(i)) {
						oracles[g][k] = uint64(i)
					}
				} else {
					if tr.Delete(th, k) {
						delete(oracles[g], k)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread()
	for g := 0; g < goroutines; g++ {
		base := uint64(g * rangeSize)
		for off := uint64(0); off < rangeSize; off++ {
			k := base + off
			want, wantOK := oracles[g][k]
			got, gotOK := tr.Get(th, k)
			if gotOK != wantOK || (wantOK && got != want) {
				t.Fatalf("key %d: (%d,%v) want (%d,%v)", k, got, gotOK, want, wantOK)
			}
		}
	}
}

func TestSingleKeyLinearizability(t *testing.T) {
	s := stm.New()
	tr := New(s)
	const k = uint64(7)
	const goroutines = 5
	results := make([][2]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := s.NewThread()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var ins, del uint64
			for i := 0; i < 300; i++ {
				if rng.Intn(2) == 0 {
					if tr.Insert(th, k, 1) {
						ins++
					}
				} else if tr.Delete(th, k) {
					del++
				}
			}
			results[g] = [2]uint64{ins, del}
		}(g)
	}
	wg.Wait()
	var ins, del uint64
	for _, r := range results {
		ins += r[0]
		del += r[1]
	}
	present := tr.Contains(s.NewThread(), k)
	if ins != del && ins != del+1 {
		t.Fatalf("impossible: %d inserts, %d deletes", ins, del)
	}
	if present != (ins == del+1) {
		t.Fatalf("final presence %v inconsistent with %d/%d", present, ins, del)
	}
}
