package forest

import (
	"strconv"

	"repro/internal/ftx"
	"repro/internal/obs"
)

// SetFlightRecorder attaches a flight recorder to the forest: combiner
// batch executions and maintenance-pool drain/sweep sessions record into
// it from now on. Safe to attach while the forest is in use; a nil
// recorder detaches. The attached WAL (if any) keeps its own recorder —
// see durable.Log.SetFlightRecorder.
func (f *Forest) SetFlightRecorder(fr *obs.FlightRecorder) {
	f.fr.Store(fr)
	f.coordMu.Lock()
	for _, c := range f.coords {
		c.SetFlightRecorder(fr)
	}
	f.coordMu.Unlock()
}

// SetTracer attaches a span tracer to the forest: from now on every handle
// samples its operations through it (handle.go), recording facade-op, STM-
// attempt, combiner-wait, ftx-phase and WAL-append spans. Safe to attach
// while the forest is in use; a nil tracer detaches. The attached WAL keeps
// its own tracer reference — see durable.Log.SetTracer.
func (f *Forest) SetTracer(t *obs.Tracer) {
	f.tracer.Store(t)
}

// RegisterObs registers every layer of the forest with an observability
// registry: per-shard STM commit/abort/cause series (shard="i" labels),
// per-shard tree maintenance counters for kinds that expose them, the
// maintenance worker pool's gauges and counters, the combiner's batch-size
// histogram, and the aggregated cross-shard coordinator series. All
// collection paths read atomics or seqlock mirrors — a scrape never pauses
// application or maintenance threads.
func (f *Forest) RegisterObs(r *obs.Registry) {
	for i, sh := range f.shards {
		label := `shard="` + strconv.Itoa(i) + `"`
		sh.stm.RegisterObs(r, label)
		if sf, ok := sh.m.(interface {
			RegisterObs(*obs.Registry, string)
		}); ok {
			sf.RegisterObs(r, label)
		}
	}
	f.batchH.Store(r.Histogram("forest_batch_size",
		"Operations executed per combiner batch (one shard transaction each)."))
	r.RegisterCollector(func(emit func(obs.Sample)) {
		ps := f.PoolStats()
		gauge := func(name, help string, v float64) {
			emit(obs.Sample{Name: name, Kind: obs.KindGauge, Help: help, Value: v})
		}
		counter := func(name, help string, v uint64) {
			emit(obs.Sample{Name: name, Kind: obs.KindCounter, Help: help, Value: float64(v)})
		}
		gauge("forest_pool_workers", "Configured maintenance pool ceiling.", float64(ps.Workers))
		gauge("forest_pool_active_workers", "Maintenance workers currently unparked.", float64(ps.ActiveWorkers))
		counter("forest_pool_grows_total", "Adaptive pool size increases.", ps.Grows)
		counter("forest_pool_shrinks_total", "Adaptive pool size decreases.", ps.Shrinks)
		counter("forest_pool_busy_nanos_total", "Cumulative time workers spent draining hints and sweeping.", ps.BusyNanos)
		counter("forest_pool_wakeups_total", "Idle workers woken by hint arrival.", ps.Wakeups)
		counter("forest_pool_sweeps_total", "Full fallback maintenance sweeps.", ps.Sweeps)
		counter("forest_pool_hint_batches_total", "Shard claims that consumed at least one hint.", ps.HintBatches)
		gauge("forest_hint_backlog", "Queued maintenance hints across shards right now.", float64(ps.Backlog))
		gauge("forest_pool_pacing_nanos", "Mean current hint-drain pacing gap, nanoseconds.", float64(ps.PacingNanos))
	})
	r.RegisterCollector(func(emit func(obs.Sample)) {
		f.coordMu.Lock()
		coords := make([]*ftx.Coordinator, len(f.coords))
		copy(coords, f.coords)
		f.coordMu.Unlock()
		var st ftx.Stats
		for _, c := range coords {
			st.Add(c.Stats())
		}
		counter := func(name, help string, v uint64) {
			emit(obs.Sample{Name: name, Kind: obs.KindCounter, Help: help, Value: float64(v)})
		}
		counter("ftx_commits_total", "Committed cross-shard transactions (all protocol paths).", st.Commits)
		counter("ftx_single_shard_commits_total", "The subset of commits that fell back to one ordinary single-shard transaction.", st.Fallbacks)
		counter("ftx_readonly_commits_total", "The subset of commits that took the read-only double-clock-read path.", st.ReadOnly)
		counter("ftx_aborts_total", "Failed cross-shard commit attempts that were retried.", st.Aborts)
		counter("ftx_intent_conflicts_total", "The subset of aborts caused by another coordinator's intent.", st.IntentConflicts)
		counter("ftx_user_aborts_total", "Transactions abandoned because fn returned an error.", st.UserAborts)
	})
}

// registerCoord adds a freshly created cross-shard coordinator to the
// forest's aggregation list (Handle.Atomic calls it once per handle) and
// hands it the forest's flight recorder for prepare/abort-storm events.
func (f *Forest) registerCoord(c *ftx.Coordinator) {
	c.SetFlightRecorder(f.fr.Load())
	f.coordMu.Lock()
	f.coords = append(f.coords, c)
	f.coordMu.Unlock()
}
