package forest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/trees"
)

// TestBatchedSequential exercises the combiner's uncontended fast path: a
// single handle's ops take the direct route (immediate election win), so the
// batched forest must behave exactly like the unbatched one — and commit no
// batches at all.
func TestBatchedSequential(t *testing.T) {
	for _, kind := range []trees.Kind{trees.SFOpt, trees.RB} {
		f := New(kind, WithBatching(16, 0))
		h := f.NewHandle()
		for k := uint64(0); k < 200; k++ {
			if !h.Insert(k, k*3) {
				t.Fatalf("%v: Insert(%d) dup", kind, k)
			}
		}
		if h.Insert(7, 1) {
			t.Fatalf("%v: re-Insert(7) succeeded", kind)
		}
		for k := uint64(0); k < 200; k++ {
			if v, ok := h.Get(k); !ok || v != k*3 {
				t.Fatalf("%v: Get(%d) = %d,%v", kind, k, v, ok)
			}
		}
		if !h.Delete(11) || h.Contains(11) {
			t.Fatalf("%v: Delete(11) broken", kind)
		}
		var moved bool
		h.Update(11, func(op *Op) {
			moved = false
			if v, ok := op.Get(13); ok && f.SameShard(11, 13) {
				op.Delete(13)
				op.Insert(11, v)
				moved = true
			}
		})
		if f.SameShard(11, 13) {
			if !moved || !h.Contains(11) || h.Contains(13) {
				t.Fatalf("%v: batched Update move broken", kind)
			}
		}
		if st := h.Stats(); st.Batches != 0 {
			t.Fatalf("%v: single-handle sequential ops committed %d batches; fast path not taken", kind, st.Batches)
		}
		f.Close()
	}
}

// TestBatchedConcurrent storms a one-shard batched forest (maximum
// coalescing pressure) with disjoint per-goroutine key ranges and checks the
// final contents, that every op's boolean result was exact, and that the
// coalescing counters are consistent.
func TestBatchedConcurrent(t *testing.T) {
	const (
		workers = 8
		perW    = 3000
	)
	f := New(trees.SFOpt, WithBatching(32, 0))
	defer f.Close()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := f.NewHandle()
			base := uint64(w * perW)
			for i := uint64(0); i < perW; i++ {
				k := base + i
				if !h.Insert(k, k+1) {
					t.Errorf("Insert(%d) reported dup", k)
					return
				}
				if v, ok := h.Get(k); !ok || v != k+1 {
					t.Errorf("Get(%d) = %d,%v after insert", k, v, ok)
					return
				}
				if i%3 == 0 {
					if !h.Delete(k) {
						t.Errorf("Delete(%d) reported absent", k)
						return
					}
					if h.Contains(k) {
						t.Errorf("Contains(%d) after delete", k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	h := f.NewHandle()
	want := 0
	for w := 0; w < workers; w++ {
		for i := uint64(0); i < perW; i++ {
			k := uint64(w*perW) + i
			if i%3 == 0 {
				if h.Contains(k) {
					t.Fatalf("deleted key %d present", k)
				}
			} else {
				want++
				if v, ok := h.Get(k); !ok || v != k+1 {
					t.Fatalf("Get(%d) = %d,%v", k, v, ok)
				}
			}
		}
	}
	if n := h.Len(); n != want {
		t.Fatalf("Len = %d, want %d", n, want)
	}
	st := f.Stats()
	if st.BatchedOps < st.Batches {
		t.Fatalf("BatchedOps %d < Batches %d", st.BatchedOps, st.Batches)
	}
	if st.Batches == 0 {
		t.Fatalf("8-way storm on one shard coalesced nothing (Batches = 0)")
	}
	t.Logf("batches=%d batched_ops=%d avg=%.1f", st.Batches, st.BatchedOps,
		float64(st.BatchedOps)/float64(st.Batches))
}

// TestBatchedUpdateConcurrent runs composed Update transactions through the
// combiner: per-key counters incremented from many goroutines must total
// exactly, whichever goroutine's batch runner executed the closure.
func TestBatchedUpdateConcurrent(t *testing.T) {
	const (
		workers = 6
		keys    = 4
		incs    = 2000
	)
	f := New(trees.SFOpt, WithBatching(16, 50*time.Microsecond))
	defer f.Close()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := f.NewHandle()
			for i := 0; i < incs; i++ {
				k := uint64(i % keys)
				h.Update(k, func(op *Op) {
					v, _ := op.Get(k)
					op.Delete(k)
					op.Insert(k, v+1)
				})
			}
		}()
	}
	wg.Wait()
	h := f.NewHandle()
	var total uint64
	for k := uint64(0); k < keys; k++ {
		v, ok := h.Get(k)
		if !ok {
			t.Fatalf("counter %d missing", k)
		}
		total += v
	}
	if want := uint64(workers * incs); total != want {
		t.Fatalf("counters total %d, want %d", total, want)
	}
}

// TestBatchedStormShutdown is the shutdown-safety torture for the combiner:
// a submission storm runs against a batched durable forest while another
// goroutine quiesces, checkpoints, and finally closes the WAL and the
// forest mid-storm. The invariant under test is liveness — the combiner has
// no dedicated runner goroutine, so every queued op must retain a live
// owner through Quiesce's and Close's combiner drains, and every storm op
// must complete (ops on an already-closed forest still run; their WAL
// appends become no-ops). Run under -race: the Makefile's race target
// covers this package.
func TestBatchedStormShutdown(t *testing.T) {
	for _, kind := range trees.Kinds() {
		for _, shards := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", kind, shards), func(t *testing.T) {
				f := New(kind, WithShards(shards), WithBatching(16, 0))
				dl, _, err := durable.Open(t.TempDir(), shards, durable.Options{})
				if err != nil {
					t.Fatal(err)
				}
				f.AttachWAL(dl)

				const workers = 6
				const opsEach = 400
				var done atomic.Int64
				var wg sync.WaitGroup
				start := make(chan struct{})
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						h := f.NewHandle()
						base := uint64(w * 1000)
						<-start
						for i := 0; i < opsEach; i++ {
							k := base + uint64(i%97)
							switch i % 5 {
							case 0:
								h.Insert(k, uint64(i))
							case 1:
								h.Get(k)
							case 2:
								h.Update(k, func(op *Op) {
									if v, ok := op.Get(k); ok {
										op.Delete(k)
										op.Insert(k, v+1)
									}
								})
							case 3:
								h.Contains(k)
							default:
								h.Delete(k)
							}
							done.Add(1)
						}
					}(w)
				}
				wg.Add(1)
				go func() { // chaos: quiesce + checkpoint racing the storm, then shutdown
					defer wg.Done()
					<-start
					for i := 0; i < 3; i++ {
						f.Quiesce(2)
						if err := dl.Checkpoint(f); err != nil {
							t.Errorf("Checkpoint: %v", err)
						}
					}
					dl.Close()
					f.Close()
				}()
				close(start)
				wg.Wait()
				if got := done.Load(); got != workers*opsEach {
					t.Fatalf("%d/%d storm ops completed: a submission was lost in shutdown", got, workers*opsEach)
				}
				f.Close()
			})
		}
	}
}
