package forest

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/sftree"
	"repro/internal/trees"
)

// sfTreeOf unwraps a shard's map to the underlying speculation-friendly
// tree when the kind has one (the NR wrapper is excluded on purpose: it
// never rebalances, so the maintenance invariants do not apply to it).
func sfTreeOf(m trees.Map) (*sftree.Tree, bool) {
	st, ok := m.(*sftree.Tree)
	return st, ok
}

// TestMaintenanceOracle is the randomized maintenance-invariant oracle of
// the hint-driven scheduler: for every tree kind × shard count {1, 8},
// apply a random operation stream against a model map, quiesce, and check
//
//   - the abstraction matches the model exactly (Keys / Get);
//   - for speculation-friendly shards: structural invariants hold, the
//     tree is height-balanced (slack 1), and no logically deleted node
//     with at most one child survived (only 2-child deleted nodes may);
//   - after deleting every remaining key and quiescing again, zero
//     logically deleted nodes are reachable and the trees are physically
//     empty.
func TestMaintenanceOracle(t *testing.T) {
	const keyRange = 1 << 10
	for _, kind := range trees.Kinds() {
		for _, shards := range []int{1, 8} {
			t.Run(string(kind)+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
				f := New(kind, WithShards(shards), WithMaintWorkers(2))
				defer f.Close()
				h := f.NewHandle()
				model := make(map[uint64]uint64)
				rng := rand.New(rand.NewSource(int64(shards)*7919 + int64(len(kind))))

				for i := 0; i < 6000; i++ {
					k := uint64(rng.Intn(keyRange))
					switch rng.Intn(10) {
					case 0, 1, 2, 3:
						got := h.Insert(k, k*3)
						want := !has(model, k)
						if got != want {
							t.Fatalf("Insert(%d) = %v, model %v", k, got, want)
						}
						if want {
							model[k] = k * 3
						}
					case 4, 5, 6:
						got := h.Delete(k)
						want := has(model, k)
						if got != want {
							t.Fatalf("Delete(%d) = %v, model %v", k, got, want)
						}
						delete(model, k)
					case 7, 8:
						v, ok := h.Get(k)
						wv, wok := model[k], has(model, k)
						if ok != wok || (ok && v != wv) {
							t.Fatalf("Get(%d) = (%d,%v), model (%d,%v)", k, v, ok, wv, wok)
						}
					default:
						dst := uint64(rng.Intn(keyRange))
						if f.SameShard(k, dst) {
							ok := h.Move(k, dst)
							want := k == dst && has(model, k) ||
								k != dst && has(model, k) && !has(model, dst)
							if ok != want {
								t.Fatalf("Move(%d,%d) = %v, model %v", k, dst, ok, want)
							}
							if ok && k != dst {
								model[dst] = model[k]
								delete(model, k)
							}
						}
					}
				}
				f.Quiesce(1 << 20)

				// Contents must match the model exactly.
				keys := h.Keys()
				if len(keys) != len(model) {
					t.Fatalf("size %d, model %d", len(keys), len(model))
				}
				for _, k := range keys {
					if !has(model, k) {
						t.Fatalf("key %d present but not in model", k)
					}
					if v, _ := h.Get(k); v != model[k] {
						t.Fatalf("value at %d = %d, model %d", k, v, model[k])
					}
				}
				checkShardInvariants(t, f, false)

				// Delete everything: after quiescing, no logically deleted
				// node may remain reachable anywhere.
				for k := range model {
					if !h.Delete(k) {
						t.Fatalf("final Delete(%d) failed", k)
					}
				}
				f.Quiesce(1 << 20)
				checkShardInvariants(t, f, true)
			})
		}
	}
}

// has reports model membership (values may legitimately be zero).
func has(m map[uint64]uint64, k uint64) bool { _, ok := m[k]; return ok }

// checkShardInvariants asserts the post-Quiesce maintenance invariants on
// every speculation-friendly shard; when empty is true the trees must also
// hold zero logically deleted (and, in fact, zero) reachable nodes.
func checkShardInvariants(t *testing.T, f *Forest, empty bool) {
	t.Helper()
	for si, sh := range f.shards {
		st, ok := sfTreeOf(sh.m)
		if !ok {
			continue
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
		if err := st.CheckBalanced(1); err != nil {
			t.Fatalf("shard %d not balanced post-Quiesce: %v", si, err)
		}
		if bl := st.HintBacklog(); bl != 0 {
			t.Fatalf("shard %d: hint backlog %d after Quiesce", si, bl)
		}
		if empty {
			if n := st.DeletedReachable(); n != 0 {
				t.Fatalf("shard %d: %d logically deleted nodes reachable after delete-all Quiesce", si, n)
			}
			if n := st.PhysicalSize(); n != 0 {
				t.Fatalf("shard %d: %d nodes reachable after delete-all Quiesce", si, n)
			}
		}
	}
}

// TestMaintPoolTargetsHints checks the scheduler end-to-end: with the pool
// running, committed deletes are physically removed by targeted repairs
// (not only by sweeps), and the pool reports its activity.
func TestMaintPoolTargetsHints(t *testing.T) {
	f := New(trees.SFOpt, WithShards(4), WithMaintWorkers(2))
	defer f.Close()
	h := f.NewHandle()
	for k := uint64(0); k < 4096; k++ {
		h.Insert(k, k)
	}
	for k := uint64(0); k < 4096; k += 2 {
		h.Delete(k)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ms := f.MaintenanceStats()
		// BusyNanos is charged when a worker's claim session ends, so wait
		// for it too — repairs are visible slightly before the session
		// accounting.
		if ms.TargetedRepairs > 0 && ms.Removals > 0 && f.PoolStats().BusyNanos > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool made no targeted progress: %+v (pool %+v)", ms, f.PoolStats())
		}
		time.Sleep(time.Millisecond)
	}
	if ps := f.PoolStats(); ps.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", ps.Workers)
	}
}

// TestMaintPacingOption: WithMaintPacing overrides the per-shard
// hint-drain pacing gap (default 2ms), including down to zero, and a
// paced-out forest still drains its hints.
func TestMaintPacingOption(t *testing.T) {
	if f := New(trees.SFOpt, WithShards(2), WithoutMaintenance()); f.drainPacing != drainGap {
		t.Fatalf("default pacing %v, want %v", f.drainPacing, drainGap)
	}
	if f := New(trees.SFOpt, WithShards(2), WithoutMaintenance(), WithMaintPacing(0)); f.drainPacing != 0 {
		t.Fatalf("pacing %v after WithMaintPacing(0), want 0", f.drainPacing)
	}
	if f := New(trees.SFOpt, WithShards(2), WithoutMaintenance(), WithMaintPacing(-1)); f.drainPacing != drainGap {
		t.Fatalf("negative pacing accepted: %v", f.drainPacing)
	}
	f := New(trees.SFOpt, WithShards(2), WithMaintWorkers(1), WithMaintPacing(10*time.Millisecond))
	defer f.Close()
	h := f.NewHandle()
	for k := uint64(0); k < 512; k++ {
		h.Insert(k, k)
	}
	for k := uint64(0); k < 512; k += 2 {
		h.Delete(k)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.MaintenanceStats().Removals == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no removals under a 10ms drain pacing: %+v", f.MaintenanceStats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdaptivePacing covers the abort-rate-driven drain pacing: the pure
// policy's backoff/tighten/hold behavior, the WithMaintPacing pin, and the
// PacingNanos report.
func TestAdaptivePacing(t *testing.T) {
	base := int64(drainGap)
	// Failure-dominated sessions double up to the cap.
	if got := pacePolicy(base, base, 10, 2); got != 2*base {
		t.Fatalf("backoff: got %d, want %d", got, 2*base)
	}
	cur := base
	for i := 0; i < 20; i++ {
		cur = pacePolicy(cur, base, 100, 0)
	}
	if cur != pacingBackoffCap*base {
		t.Fatalf("cap: got %d, want %d", cur, pacingBackoffCap*base)
	}
	// Clean sessions halve back down to the base, never below.
	if got := pacePolicy(cur, base, 0, 5); got != cur/2 {
		t.Fatalf("tighten: got %d, want %d", got, cur/2)
	}
	if got := pacePolicy(base, base, 0, 0); got != base {
		t.Fatalf("floor: got %d, want base %d", got, base)
	}
	// Mixed sessions hold.
	if got := pacePolicy(4*base, base, 3, 7); got != 4*base {
		t.Fatalf("hold: got %d, want %d", got, 4*base)
	}
	// A zero adaptive base still backs off from the 1ms floor.
	if got := pacePolicy(0, 0, 9, 1); got != int64(time.Millisecond) {
		t.Fatalf("zero-base backoff: got %d, want 1ms", got)
	}

	// WithMaintPacing pins the gap: adaptPacing returns the base verbatim.
	f := New(trees.SFOpt, WithShards(2), WithoutMaintenance(), WithMaintPacing(10*time.Millisecond))
	defer f.Close()
	p := &maintPool{f: f}
	if got := p.adaptPacing(f.shards[0]); got != int64(10*time.Millisecond) {
		t.Fatalf("pinned adaptPacing = %d, want 10ms", got)
	}
	if ps := f.PoolStats(); ps.PacingNanos != uint64(10*time.Millisecond) {
		t.Fatalf("PacingNanos = %d, want the pinned 10ms", ps.PacingNanos)
	}
	// The default (adaptive) forest starts at — and reports — the base gap.
	f2 := New(trees.SFOpt, WithShards(2), WithoutMaintenance())
	defer f2.Close()
	if ps := f2.PoolStats(); ps.PacingNanos != uint64(drainGap) {
		t.Fatalf("initial PacingNanos = %d, want %d", ps.PacingNanos, drainGap)
	}
}

// TestMaintPoolStopsOnClose: after Close no maintenance runs — counters
// freeze even under further updates (the regression guard the per-shard
// goroutine design had, retargeted at the pool).
func TestMaintPoolStopsOnClose(t *testing.T) {
	f := New(trees.SF, WithShards(4), WithMaintWorkers(2))
	h := f.NewHandle()
	for k := uint64(0); k < 1024; k++ {
		h.Insert(k, k)
	}
	f.Close()
	before := f.MaintenanceStats()
	for k := uint64(0); k < 1024; k += 2 {
		h.Delete(k)
	}
	time.Sleep(20 * time.Millisecond)
	after := f.MaintenanceStats()
	if after.Passes != before.Passes || after.TargetedRepairs != before.TargetedRepairs {
		t.Fatalf("maintenance advanced after Close: %+v -> %+v", before, after)
	}
}

// TestMaintPoolStress races the shared worker pool against concurrent
// Update/Move/Range/Insert/Delete traffic on many shards (run under -race
// by the Makefile's race target). The oracle here is crash-freedom plus
// post-Quiesce invariants; value-level linearizability is covered by the
// per-operation tests.
func TestMaintPoolStress(t *testing.T) {
	const keyRange = 1 << 9
	f := New(trees.SFOpt, WithShards(8), WithMaintWorkers(2), WithYield(64))
	defer f.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := f.NewHandle()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(keyRange))
				switch rng.Intn(8) {
				case 0, 1, 2:
					h.Insert(k, k)
				case 3, 4:
					h.Delete(k)
				case 5:
					h.Move(k, uint64(rng.Intn(keyRange)))
				case 6:
					h.Range(k, k+64, func(_, _ uint64) bool { return true })
				default:
					h.Update(k, func(op *Op) {
						if v, ok := op.Get(k); ok {
							op.Delete(k)
							op.Insert(k, v+1)
						} else {
							op.Insert(k, 1)
						}
					})
				}
			}
		}(int64(g)*104729 + 17)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	f.Quiesce(1 << 20)
	checkShardInvariants(t, f, false)
}
