package forest

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trees"
)

// TestHandleTracingAllocFree gates the facade hot path: a read with tracing
// off must stay allocation-free (the only added cost is one atomic load and
// a branch), and so must a fully sampled read (traceStart, the attempt
// span, and EndOp all write into preallocated structures).
func TestHandleTracingAllocFree(t *testing.T) {
	f := New(trees.SFOpt, WithShards(1), WithoutMaintenance())
	defer f.Close()
	h := f.NewHandle()
	for i := uint64(0); i < 128; i++ {
		h.Insert(i, i)
	}

	k := uint64(0)
	get := func() {
		h.Get(k)
		k = (k + 1) & 127
	}
	if avg := testing.AllocsPerRun(2000, get); avg != 0 {
		t.Errorf("Get with tracing off: %v allocs/op, want 0", avg)
	}

	f.SetTracer(obs.NewTracer(1, 256)) // sample every op
	if avg := testing.AllocsPerRun(2000, get); avg != 0 {
		t.Errorf("Get with 1-in-1 sampling: %v allocs/op, want 0", avg)
	}
}

// TestSpanStitchingOracle is the trace-correctness oracle on the direct
// (uncombined) path: with 1-in-1 sampling, every facade operation must
// yield a well-formed span set — exactly one op span, at least one STM
// attempt inside its window, exactly one committing attempt, contiguous
// attempt indices — and the retries visible in spans must not exceed the
// aborts the STM layer counted.
func TestSpanStitchingOracle(t *testing.T) {
	f := New(trees.SFOpt, WithShards(2), WithoutMaintenance())
	defer f.Close()
	tr := obs.NewTracer(1, 4096)
	f.SetTracer(tr)
	h := f.NewHandle()

	const ops = 400
	for i := uint64(0); i < ops; i++ {
		switch i % 4 {
		case 0:
			h.Insert(i, i)
		case 1:
			h.Get(i - 1)
		case 2:
			h.Contains(i)
		case 3:
			h.Delete(i - 3)
		}
	}

	type trace struct {
		op       *obs.Span
		attempts []obs.Span
	}
	byID := map[uint64]*trace{}
	for _, sp := range tr.Spans() {
		sp := sp
		tc := byID[sp.TraceID]
		if tc == nil {
			tc = &trace{}
			byID[sp.TraceID] = tc
		}
		switch sp.Kind {
		case obs.SpanOp:
			if tc.op != nil {
				t.Fatalf("trace %d has two op spans", sp.TraceID)
			}
			tc.op = &sp
		case obs.SpanAttempt:
			tc.attempts = append(tc.attempts, sp)
		}
	}
	if len(byID) != ops {
		t.Fatalf("ring holds %d traces, want %d (every op sampled, ring not lapped)", len(byID), ops)
	}

	retriesInSpans := uint64(0)
	for id, tc := range byID {
		if tc.op == nil {
			t.Fatalf("trace %d has attempts but no op span", id)
		}
		if len(tc.attempts) == 0 {
			t.Fatalf("trace %d (%s) has no attempt span", id, tc.op.Op)
		}
		committed := 0
		seen := make([]bool, len(tc.attempts))
		for _, at := range tc.attempts {
			if at.A == -1 {
				committed++
			} else if at.A < 0 {
				t.Fatalf("trace %d attempt has invalid abort cause %d", id, at.A)
			}
			if at.B < 0 || at.B >= int64(len(tc.attempts)) || seen[at.B] {
				t.Fatalf("trace %d attempt indices not contiguous: %+v", id, tc.attempts)
			}
			seen[at.B] = true
			if at.Start < tc.op.Start || at.End > tc.op.End {
				t.Fatalf("trace %d attempt [%d,%d] outside op window [%d,%d]",
					id, at.Start, at.End, tc.op.Start, tc.op.End)
			}
		}
		if committed != 1 {
			t.Fatalf("trace %d has %d committing attempts, want 1", id, committed)
		}
		retriesInSpans += uint64(len(tc.attempts) - 1)
	}
	// Exact reconciliation against the thread layer: maintenance is off and
	// this handle is the only actor, so its threads' commits are the ops and
	// their aborts are exactly the retries the attempt spans show.
	st := h.Stats()
	if st.Commits != ops {
		t.Fatalf("handle threads committed %d, want %d (one commit per op)", st.Commits, ops)
	}
	if retriesInSpans != st.Aborts {
		t.Fatalf("attempt spans show %d retries, thread stats count %d aborts",
			retriesInSpans, st.Aborts)
	}
	if got := tr.OpHistogram(obs.OpInsert).Snapshot().Count; got != ops/4 {
		t.Fatalf("insert latency histogram has %d samples, want %d", got, ops/4)
	}
}

// TestSpanStitchingBatched checks that an op routed through the combiner
// carries its trace ID across the runner handoff: the sampled op yields a
// combiner-wait span whose window sits inside the op span, with the batch
// size and shard recorded.
func TestSpanStitchingBatched(t *testing.T) {
	// Linger policy (wait > 0): every op enqueues, so even a lone submitter
	// goes through the ring and gets a combiner-wait span.
	f := New(trees.SFOpt, WithShards(1), WithBatching(8, 50*time.Microsecond), WithoutMaintenance())
	defer f.Close()
	tr := obs.NewTracer(1, 4096)
	f.SetTracer(tr)
	h := f.NewHandle()

	const ops = 200
	for i := uint64(0); i < ops; i++ {
		h.Insert(i, i)
	}
	f.drainCombiners()

	waits := 0
	opByID := map[uint64]obs.Span{}
	for _, sp := range tr.Spans() {
		if sp.Kind == obs.SpanOp {
			opByID[sp.TraceID] = sp
		}
	}
	for _, sp := range tr.Spans() {
		if sp.Kind != obs.SpanCombinerWait {
			continue
		}
		waits++
		if sp.A < 1 || sp.A > 8 {
			t.Fatalf("combiner-wait span batch size %d out of range [1,8]", sp.A)
		}
		if sp.B != 0 {
			t.Fatalf("combiner-wait span shard %d, want 0", sp.B)
		}
		op, ok := opByID[sp.TraceID]
		if !ok {
			continue // op span may still be unwritten when the ring was read
		}
		if sp.Start < op.Start || sp.Start > op.End {
			t.Fatalf("combiner wait started at %d outside op window [%d,%d]",
				sp.Start, op.Start, op.End)
		}
	}
	if waits == 0 {
		t.Fatal("no combiner-wait spans despite batching enabled and every op sampled")
	}
}
