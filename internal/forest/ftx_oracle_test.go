package forest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ftx"
	"repro/internal/trees"
)

// TestFtxRandomizedOracle is the randomized cross-shard oracle: N
// goroutines run a mix of single-key operations and multi-key ftx
// transfers against every tree kind at shards {1, 8}, checked against a
// single-mutex model map. Run under -race (the Makefile's race target
// covers this package).
//
// The workload splits the key space in two:
//
//   - Account keys, shared by all workers, are only ever touched by
//     transfers (and reads): each transfer atomically moves a random
//     amount between two accounts, so the final balances must sum to the
//     seeded total — any torn or partially applied cross-shard commit
//     breaks conservation.
//   - Churn keys are partitioned per worker: each worker inserts, deletes
//     and updates only its own, mirroring every committed effect into the
//     shared model under its mutex. Per-key single-writership makes the
//     model's final state exact, so the tree must match it key for key.
func TestFtxRandomizedOracle(t *testing.T) {
	const (
		workers     = 4
		iterations  = 300
		nAccounts   = 24
		initBalance = 1000
		churnSpan   = 64 // churn keys per worker
	)
	for _, kind := range trees.Kinds() {
		for _, shards := range []int{1, 8} {
			for _, batch := range []int{0, 8} {
				t.Run(fmt.Sprintf("%s/shards=%d/batch=%d", kind, shards, batch), func(t *testing.T) {
					opts := []Option{WithShards(shards), WithYield(2)}
					if batch > 0 {
						// Batched variant: single-key ops coalesce through the
						// per-shard combiner while the ftx transfers take their
						// own cross-shard path; the oracle's conservation and
						// exact-state checks hold identically.
						opts = append(opts, WithBatching(batch, 0))
					}
					f := New(kind, opts...)
					defer f.Close()

					seed := f.NewHandle()
					for a := uint64(0); a < nAccounts; a++ {
						seed.Insert(a, initBalance)
					}

					// model holds the expected final state of the churn keys.
					var modelMu sync.Mutex
					model := make(map[uint64]uint64)

					var wg sync.WaitGroup
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							h := f.NewHandle()
							rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
							churnBase := uint64(100000 + w*churnSpan)
							for i := 0; i < iterations; i++ {
								switch rng.Intn(4) {
								case 0: // multi-key ftx transfer between two accounts
									a := uint64(rng.Intn(nAccounts))
									b := uint64(rng.Intn(nAccounts))
									if a == b {
										continue
									}
									amt := uint64(rng.Intn(10) + 1)
									err := h.Atomic(func(tx *ftx.Tx) error {
										av, okA := tx.Get(a)
										bv, okB := tx.Get(b)
										if !okA || !okB {
											t.Errorf("account %d or %d missing mid-run", a, b)
											return nil
										}
										if av < amt {
											return nil // insufficient funds: no-op
										}
										tx.Put(a, av-amt)
										tx.Put(b, bv+amt)
										return nil
									})
									if err != nil {
										t.Errorf("Atomic: %v", err)
									}
								case 1: // churn insert/update (worker-owned key)
									k := churnBase + uint64(rng.Intn(churnSpan))
									v := uint64(rng.Intn(1000))
									h.Delete(k)
									h.Insert(k, v)
									modelMu.Lock()
									model[k] = v
									modelMu.Unlock()
								case 2: // churn delete (worker-owned key)
									k := churnBase + uint64(rng.Intn(churnSpan))
									h.Delete(k)
									modelMu.Lock()
									delete(model, k)
									modelMu.Unlock()
								default: // reads of anything
									if rng.Intn(2) == 0 {
										h.Contains(uint64(rng.Intn(nAccounts)))
									} else {
										h.Get(churnBase + uint64(rng.Intn(churnSpan)))
									}
								}
							}
						}(w)
					}
					wg.Wait()

					check := f.NewHandle()
					// Sum conservation over the accounts.
					var sum uint64
					for a := uint64(0); a < nAccounts; a++ {
						v, ok := check.Get(a)
						if !ok {
							t.Fatalf("account %d vanished", a)
						}
						sum += v
					}
					if want := uint64(nAccounts * initBalance); sum != want {
						t.Fatalf("account sum %d, want %d: a transfer committed partially", sum, want)
					}
					// Churn keys must match the model exactly.
					for w := 0; w < workers; w++ {
						churnBase := uint64(100000 + w*churnSpan)
						for k := churnBase; k < churnBase+churnSpan; k++ {
							v, ok := check.Get(k)
							mv, mok := model[k]
							if ok != mok || (ok && v != mv) {
								t.Fatalf("churn key %d: tree %d,%t model %d,%t", k, v, ok, mv, mok)
							}
						}
					}
				})
			}
		}
	}
}
