package forest

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trees"
)

// crossShardPair returns two keys living on different shards (and, for
// convenience, a third key co-located with neither constraint).
func crossShardPair(t *testing.T, f *Forest) (a, b uint64) {
	t.Helper()
	a = 100
	for k := uint64(101); k < 100000; k++ {
		if !f.SameShard(a, k) {
			return a, k
		}
	}
	t.Fatal("no cross-shard pair found")
	return 0, 0
}

// TestCrossShardMoveCompensationABA is the regression test for the
// value-ABA hazard of the pre-ftx cross-shard Move: the old insert-first/
// compensate protocol could, without its move claims, destroy a third
// party's independently inserted dst entry that coincidentally carried the
// moved value. Move now runs as one atomic ftx transaction, which must
// make the hazard structurally impossible — the mover never deletes dst at
// all, and a Move whose keys were raced away commits nothing — but the
// torture stays as a regression net: a buggy coordinator that published a
// partial write set or replayed a stale read would surface here.
//
// The interferer cycles Delete(dst); Insert(dst, V); Get(dst)×m. Once its
// insert succeeds it is the only legitimate deleter of dst until its own
// Delete, so any vanished or foreign value observed between its Insert and
// its Delete is a spurious deletion. The srcDeleter keeps removing src so
// the mover constantly loses the race and aborts.
func TestCrossShardMoveCompensationABA(t *testing.T) {
	// WithYield forces transaction overlap even on single-core hosts, so
	// the interferer's delete+reinsert pair actually lands inside the
	// mover's insert→compensate window.
	f := New(trees.SFOpt, WithShards(4), WithoutMaintenance(), WithYield(2))
	defer f.Close()
	src, dst := crossShardPair(t, f)
	const V = 7777

	var stop atomic.Bool
	var spurious atomic.Int64
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // interferer: owns dst between its Insert and its Delete
		defer wg.Done()
		h := f.NewHandle()
		for !stop.Load() {
			h.Delete(dst)
			if h.Insert(dst, V) {
				for j := 0; j < 8; j++ {
					if v, ok := h.Get(dst); !ok || v != V {
						spurious.Add(1)
					}
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // srcDeleter: forces the mover into compensation
		defer wg.Done()
		h := f.NewHandle()
		for !stop.Load() {
			h.Delete(src)
		}
	}()
	wg.Add(1)
	go func() { // mover: cross-shard moves of the same value V
		defer wg.Done()
		h := f.NewHandle()
		for !stop.Load() {
			h.Insert(src, V)
			h.Move(src, dst)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if n := spurious.Load(); n != 0 {
		t.Fatalf("%d spurious deletions of a third party's dst entry", n)
	}
}

// TestCrossShardMovePingPong has several movers bouncing one token between
// two cross-shard keys while a reader continuously checks it never
// vanishes. Under the ftx-backed atomic Move the token is at exactly one
// key at every committed instant; the reader's two lookups are separate
// transactions, so it tolerates a bounded number of between-lookup hops
// before declaring the token lost.
func TestCrossShardMovePingPong(t *testing.T) {
	f := New(trees.SF, WithShards(4), WithoutMaintenance(), WithYield(2))
	defer f.Close()
	a, b := crossShardPair(t, f)
	const V = 31337

	seed := f.NewHandle()
	seed.Insert(a, V)

	var stop atomic.Bool
	var lost atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := f.NewHandle()
			for !stop.Load() {
				if !h.Move(a, b) {
					h.Move(b, a)
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // reader: the token must never be absent from both keys
		defer wg.Done()
		h := f.NewHandle()
		for !stop.Load() {
			misses := 0
			for misses < 50 {
				if h.Contains(a) || h.Contains(b) {
					misses = -1
					break
				}
				misses++
			}
			if misses >= 50 {
				lost.Add(1)
				return
			}
		}
	}()

	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if lost.Load() != 0 {
		t.Fatal("token observed absent from both keys (value lost)")
	}
	// After all movers stop the token settles at exactly one key: the
	// ftx-backed Move is atomic, so the old contested-compensation
	// "present at both" leftover can no longer occur.
	h := f.NewHandle()
	ca, cb := h.Contains(a), h.Contains(b)
	if !ca && !cb {
		t.Fatal("token lost at quiescence")
	}
	if ca && cb {
		t.Fatal("token present at both keys at quiescence: a Move published a partial write set")
	}
}

// TestCloseStatsRace hammers the statistics accessors concurrently with
// (repeated) Close on a maintained multi-shard forest: the maint flag must
// not be a data race (run under -race), double Close must be a no-op, and
// once everything returns, maintenance must genuinely be stopped.
func TestCloseStatsRace(t *testing.T) {
	f := New(trees.SFOpt, WithShards(4))
	h := f.NewHandle()
	for k := uint64(0); k < 512; k++ {
		h.Insert(k, k)
		if k%2 == 0 {
			h.Delete(k)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				f.Stats()
				f.ShardStats()
				f.MaintenanceStats()
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Close() // racing and repeated Close must be safe no-ops
		}()
	}
	wg.Wait()
	f.Close()
	// Maintenance must now be stopped for good: no pass may complete after
	// the settle point even though the accessors above raced the Close.
	passes := f.MaintenanceStats().Passes
	time.Sleep(50 * time.Millisecond)
	if after := f.MaintenanceStats().Passes; after != passes {
		t.Fatalf("maintenance still running after Close (%d -> %d passes)", passes, after)
	}
}
