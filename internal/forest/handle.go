package forest

import (
	"fmt"

	"repro/internal/stm"
	"repro/internal/trees"
)

// Handle is a per-goroutine accessor to a Forest. It lazily creates and
// caches one STM thread per shard, so a caller that only ever touches a few
// partitions never registers with the others. Handles are not safe for
// concurrent use; create one per goroutine.
type Handle struct {
	f   *Forest
	ths []*stm.Thread // cached per-shard threads, created on first touch
	ops []uint64      // operations routed to each shard
}

// NewHandle returns a handle with no shard threads allocated yet.
func (f *Forest) NewHandle() *Handle {
	return &Handle{
		f:   f,
		ths: make([]*stm.Thread, len(f.shards)),
		ops: make([]uint64, len(f.shards)),
	}
}

// Forest returns the forest this handle accesses.
func (h *Handle) Forest() *Forest { return h.f }

// thread returns the handle's cached STM thread for shard si, registering
// one with that shard's domain on first use.
func (h *Handle) thread(si int) *stm.Thread {
	if h.ths[si] == nil {
		h.ths[si] = h.f.shards[si].stm.NewThread()
	}
	return h.ths[si]
}

// route resolves k to its shard, charging one routed operation to it.
func (h *Handle) route(k uint64) (*shard, *stm.Thread, int) {
	si := h.f.ShardOf(k)
	h.ops[si]++
	return h.f.shards[si], h.thread(si), si
}

// OpsPerShard returns how many operations this handle routed to each shard
// (the per-shard load-balance view the benchmark harness aggregates).
func (h *Handle) OpsPerShard() []uint64 {
	out := make([]uint64, len(h.ops))
	copy(out, h.ops)
	return out
}

// Stats sums the STM statistics of this handle's own per-shard threads —
// the handle's contribution to the forest, excluding other handles and the
// maintenance goroutines. Call only while the handle is quiescent.
func (h *Handle) Stats() stm.Stats {
	var t stm.Stats
	for _, st := range h.ShardStats() {
		t.Add(st)
	}
	return t
}

// ShardStats returns this handle's STM statistics split by shard (zero for
// shards the handle never touched), under the same quiescence contract as
// Stats.
func (h *Handle) ShardStats() []stm.Stats {
	out := make([]stm.Stats, len(h.ths))
	for si, th := range h.ths {
		if th != nil {
			out[si] = th.Stats()
		}
	}
	return out
}

// Insert maps k to v; false when k was already present.
func (h *Handle) Insert(k, v uint64) bool {
	sh, th, _ := h.route(k)
	return sh.m.Insert(th, k, v)
}

// Delete removes k; false when absent. A successful delete also breaks any
// in-flight cross-shard-move claim on k inside the same transaction (see
// claims.go), so Move compensation can never mistake a later entry at k for
// its own. The claim check costs one atomic load on the fast path.
func (h *Handle) Delete(k uint64) bool {
	sh, th, _ := h.route(k)
	var ok bool
	trees.Atomic(sh.m, th, func(tx *stm.Tx) {
		ok = h.f.deleteTx(sh.m, tx, k)
	})
	return ok
}

// Get returns the value at k.
func (h *Handle) Get(k uint64) (uint64, bool) {
	sh, th, _ := h.route(k)
	return sh.m.Get(th, k)
}

// Contains reports whether k is present.
func (h *Handle) Contains(k uint64) bool {
	sh, th, _ := h.route(k)
	return sh.m.Contains(th, k)
}

// Move relocates the value at src to dst; it succeeds only when src is
// present and dst absent. When SameShard(src, dst) the move is one atomic
// transaction (paper §5.4). Across shards it degrades to three single-shard
// transactions — read src, insert dst, delete src — ordered so the moved
// value is never lost: during the window a concurrent observer may see the
// value at both keys.
//
// If src is concurrently removed before phase 3, the move fails and the
// provisional dst entry is withdrawn — but only when it is provably still
// this mover's own entry, established through a transactional move claim
// (see claims.go). Without that proof (a concurrent deletion of dst
// committed since the provisional insert, so the entry now at dst — if any
// — may belong to a third party that coincidentally inserted the same
// value), the compensation deliberately does nothing: Move returns false
// and the moved value remains at dst. Callers needing to tidy up after a
// contested false return can Delete(dst) themselves; the forest never
// risks deleting a third party's entry.
func (h *Handle) Move(src, dst uint64) bool {
	ssh, sth, ssi := h.route(src)
	dsi := h.f.ShardOf(dst)
	if ssi == dsi {
		return h.moveSameShard(ssh, sth, src, dst)
	}
	h.ops[dsi]++
	dsh, dth := h.f.shards[dsi], h.thread(dsi)
	// Phase 1: read the value to move.
	v, ok := ssh.m.Get(sth, src)
	if !ok {
		return false
	}
	// Phase 2: register a claim on dst, then insert provisionally. The
	// claim must be registered before the insert so that every deleter that
	// observes the provisional entry also observes (and breaks) the claim.
	// An occupied dst fails the move with nothing changed yet.
	cl := h.f.claims.register(dst)
	defer h.f.claims.unregister(dst, cl)
	if !dsh.m.Insert(dth, dst, v) {
		return false
	}
	// Phase 3: take src out — but only while it still holds the value read
	// in phase 1 (breaking, in turn, any claim movers hold on src as their
	// destination). A bare delete-by-key could consume an entry a third
	// party re-inserted at src with a different value after a concurrent
	// removal, destroying their data and planting the stale value at dst;
	// the conditional delete instead treats a replaced src as vanished.
	// (An equal-valued re-insert being taken is a legal linearization:
	// their insert, then this move.) Full read tracking (CTL) keeps the
	// value comparison validated at commit even on elastic domains.
	var deleted bool
	sth.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		deleted = false
		if cur, ok := ssh.m.GetTx(tx, src); !ok || cur != v {
			return
		}
		deleted = h.f.deleteTx(ssh.m, tx, src)
	})
	if deleted {
		return true
	}
	// Compensate: src vanished under us, so withdraw the provisional dst
	// entry — but only under proof of ownership. An unbroken claim read in
	// the withdrawing transaction guarantees no deletion of dst committed
	// since our insert, hence the current entry is still ours (nothing but
	// a deletion can displace it; the value re-check is defense in depth).
	// The proof needs the broken read validated at commit, so the
	// transaction runs under full read tracking (CTL) even when the
	// domain defaults to elastic transactions — an elastic cut would drop
	// the read and reopen the very hazard the claim closes.
	dth.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		if tx.Read(&cl.broken) != 0 {
			return // not provably ours any more; leave dst alone
		}
		if cur, ok := dsh.m.GetTx(tx, dst); ok && cur == v {
			h.f.deleteTx(dsh.m, tx, dst)
		}
	})
	return false
}

// moveSameShard is the intra-shard move: the composition of paper §5.4 as
// one atomic transaction, plus the forest's claim-breaking on the deleted
// src (trees.Move cannot know about claims, so the composition is inlined
// here).
func (h *Handle) moveSameShard(sh *shard, th *stm.Thread, src, dst uint64) bool {
	if src == dst {
		return sh.m.Contains(th, src)
	}
	var ok bool
	trees.Atomic(sh.m, th, func(tx *stm.Tx) {
		ok = false
		v, present := sh.m.GetTx(tx, src)
		if !present || sh.m.ContainsTx(tx, dst) {
			return
		}
		if !h.f.deleteTx(sh.m, tx, src) {
			return
		}
		if !sh.m.InsertTxA(tx, dst, v) {
			// dst was checked absent in this very transaction: only a
			// doomed (zombie) attempt or an elastic cut of that check can
			// see it occupied now. Never commit the half-move (the src
			// delete is already buffered) — retry from scratch.
			tx.Restart()
		}
		ok = true
	})
	return ok
}

// scanThread prepares shard si for a read-only scan: it charges the routed
// operation and returns the shard's thread, or nil when the shard was just
// observed empty and the handle has nothing registered there — an empty
// shard contributes nothing to a scan, and skipping it avoids registering
// an STM thread (which the shard's maintenance GC would forever after have
// to inspect) with a domain the handle never otherwise touches.
func (h *Handle) scanThread(si int) *stm.Thread {
	if h.ths[si] == nil && trees.EmptyHint(h.f.shards[si].m) {
		return nil
	}
	h.ops[si]++
	return h.thread(si)
}

// Len counts the elements, one consistent snapshot per shard. Each scanned
// shard is charged one routed operation (see OpsPerShard).
func (h *Handle) Len() int {
	n := 0
	for si, sh := range h.f.shards {
		th := h.scanThread(si)
		if th == nil {
			continue
		}
		n += sh.m.Size(th)
	}
	return n
}

// Keys returns the sorted keys, one consistent snapshot per shard, merged
// exactly as Range merges (each scanned shard charged one routed op).
func (h *Handle) Keys() []uint64 {
	var all []uint64
	h.Range(0, ^uint64(0), func(k, _ uint64) bool {
		all = append(all, k)
		return true
	})
	return all
}

// kv is one element of a per-shard range snapshot.
type kv struct{ k, v uint64 }

// Range visits, in ascending key order, every element whose key lies in
// [lo, hi] (both inclusive), calling fn(k, v) for each; fn returning false
// stops the scan. It reports whether the scan ran to the end of the
// interval. Keys are shard-routed by hash, so every shard intersects every
// interval: Range takes one ordered snapshot of [lo, hi] per shard (each
// internally consistent, the shards not cut at one instant — the same
// contract as Len and Keys) and then merges the S sorted snapshots lazily,
// k-way, while feeding fn. Shards observed empty are skipped without
// opening a transaction; each scanned shard is charged one routed op.
//
// An early fn stop saves the remaining merge work but not the per-shard
// snapshot collection, which is bounded by the interval width; callers
// wanting "first n elements" scans should bound [lo, hi] accordingly.
func (h *Handle) Range(lo, hi uint64, fn func(k, v uint64) bool) bool {
	if lo > hi {
		return true
	}
	snaps := make([][]kv, 0, len(h.f.shards))
	for si, sh := range h.f.shards {
		th := h.scanThread(si)
		if th == nil {
			continue
		}
		var snap []kv
		// Full read tracking (CTL) regardless of the domain default, so
		// each shard's snapshot is consistent (as Size/Keys promise); the
		// in-transaction reset keeps retries from duplicating entries.
		th.AtomicMode(stm.CTL, func(tx *stm.Tx) {
			snap = snap[:0]
			sh.m.RangeTx(tx, lo, hi, func(k, v uint64) bool {
				snap = append(snap, kv{k, v})
				return true
			})
		})
		if len(snap) > 0 {
			snaps = append(snaps, snap)
		}
	}
	return mergeSnaps(snaps, fn)
}

// mergeSnaps merges the sorted per-shard snapshots, feeding fn in globally
// ascending key order until fn stops it or the snapshots drain. Shard
// routing is a function of the key, so no key appears in two snapshots and
// the merged stream is strictly increasing. With the small shard counts a
// forest runs (a handful to a few dozen) a linear min-pick per element
// beats a heap's bookkeeping.
func mergeSnaps(snaps [][]kv, fn func(k, v uint64) bool) bool {
	idx := make([]int, len(snaps))
	for {
		best := -1
		for i := range snaps {
			if idx[i] >= len(snaps[i]) {
				continue
			}
			if best == -1 || snaps[i][idx[i]].k < snaps[best][idx[best]].k {
				best = i
			}
		}
		if best == -1 {
			return true
		}
		e := snaps[best][idx[best]]
		idx[best]++
		if !fn(e.k, e.v) {
			return false
		}
	}
}

// Update runs fn as one atomic transaction on the shard owning the routing
// key k. Every key touched inside fn must belong to that same shard (check
// with SameShard); touching a foreign key panics, because silently reading
// another shard's tree from this shard's transaction would break isolation.
func (h *Handle) Update(k uint64, fn func(op *Op)) {
	sh, th, si := h.route(k)
	trees.Atomic(sh.m, th, func(tx *stm.Tx) {
		fn(&Op{f: h.f, m: sh.m, tx: tx, si: si})
	})
}

// Op exposes the tree operations inside a Handle.Update transaction; all
// keys must live on the shard the transaction was routed to.
type Op struct {
	f  *Forest
	m  trees.Map
	tx *stm.Tx
	si int
}

// check panics when k is owned by a different shard than the transaction's.
func (o *Op) check(k uint64) {
	if si := o.f.ShardOf(k); si != o.si {
		panic(fmt.Sprintf("forest: key %d lives on shard %d but the transaction is bound to shard %d; route with SameShard first", k, si, o.si))
	}
}

// Insert maps k to v within the transaction; false when present.
func (o *Op) Insert(k, v uint64) bool { o.check(k); return o.m.InsertTxA(o.tx, k, v) }

// Delete removes k within the transaction; false when absent. Like
// Handle.Delete it breaks any in-flight cross-shard-move claim on k inside
// the transaction.
func (o *Op) Delete(k uint64) bool { o.check(k); return o.f.deleteTx(o.m, o.tx, k) }

// Get returns the value at k within the transaction.
func (o *Op) Get(k uint64) (uint64, bool) { o.check(k); return o.m.GetTx(o.tx, k) }

// Contains reports membership within the transaction.
func (o *Op) Contains(k uint64) bool { o.check(k); return o.m.ContainsTx(o.tx, k) }
