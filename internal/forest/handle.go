package forest

import (
	"fmt"
	"sort"

	"repro/internal/stm"
	"repro/internal/trees"
)

// Handle is a per-goroutine accessor to a Forest. It lazily creates and
// caches one STM thread per shard, so a caller that only ever touches a few
// partitions never registers with the others. Handles are not safe for
// concurrent use; create one per goroutine.
type Handle struct {
	f   *Forest
	ths []*stm.Thread // cached per-shard threads, created on first touch
	ops []uint64      // operations routed to each shard
}

// NewHandle returns a handle with no shard threads allocated yet.
func (f *Forest) NewHandle() *Handle {
	return &Handle{
		f:   f,
		ths: make([]*stm.Thread, len(f.shards)),
		ops: make([]uint64, len(f.shards)),
	}
}

// Forest returns the forest this handle accesses.
func (h *Handle) Forest() *Forest { return h.f }

// thread returns the handle's cached STM thread for shard si, registering
// one with that shard's domain on first use.
func (h *Handle) thread(si int) *stm.Thread {
	if h.ths[si] == nil {
		h.ths[si] = h.f.shards[si].stm.NewThread()
	}
	return h.ths[si]
}

// route resolves k to its shard, charging one routed operation to it.
func (h *Handle) route(k uint64) (*shard, *stm.Thread, int) {
	si := h.f.ShardOf(k)
	h.ops[si]++
	return h.f.shards[si], h.thread(si), si
}

// OpsPerShard returns how many operations this handle routed to each shard
// (the per-shard load-balance view the benchmark harness aggregates).
func (h *Handle) OpsPerShard() []uint64 {
	out := make([]uint64, len(h.ops))
	copy(out, h.ops)
	return out
}

// Stats sums the STM statistics of this handle's own per-shard threads —
// the handle's contribution to the forest, excluding other handles and the
// maintenance goroutines. Call only while the handle is quiescent.
func (h *Handle) Stats() stm.Stats {
	var t stm.Stats
	for _, st := range h.ShardStats() {
		t.Add(st)
	}
	return t
}

// ShardStats returns this handle's STM statistics split by shard (zero for
// shards the handle never touched), under the same quiescence contract as
// Stats.
func (h *Handle) ShardStats() []stm.Stats {
	out := make([]stm.Stats, len(h.ths))
	for si, th := range h.ths {
		if th != nil {
			out[si] = th.Stats()
		}
	}
	return out
}

// Insert maps k to v; false when k was already present.
func (h *Handle) Insert(k, v uint64) bool {
	sh, th, _ := h.route(k)
	return sh.m.Insert(th, k, v)
}

// Delete removes k; false when absent.
func (h *Handle) Delete(k uint64) bool {
	sh, th, _ := h.route(k)
	return sh.m.Delete(th, k)
}

// Get returns the value at k.
func (h *Handle) Get(k uint64) (uint64, bool) {
	sh, th, _ := h.route(k)
	return sh.m.Get(th, k)
}

// Contains reports whether k is present.
func (h *Handle) Contains(k uint64) bool {
	sh, th, _ := h.route(k)
	return sh.m.Contains(th, k)
}

// Move relocates the value at src to dst; it succeeds only when src is
// present and dst absent. When SameShard(src, dst) the move is one atomic
// transaction (paper §5.4). Across shards it degrades to three single-shard
// transactions — read src, insert dst, delete src — ordered so the value is
// never lost: during the window a concurrent observer may see the value at
// both keys, and if src is concurrently removed the provisional dst entry
// is deleted again (only if it still holds the moved value). See the
// package comment for the full semantics.
func (h *Handle) Move(src, dst uint64) bool {
	ssh, sth, ssi := h.route(src)
	dsi := h.f.ShardOf(dst)
	if ssi == dsi {
		return trees.Move(ssh.m, sth, src, dst)
	}
	h.ops[dsi]++
	dsh, dth := h.f.shards[dsi], h.thread(dsi)
	// Phase 1: read the value to move.
	v, ok := ssh.m.Get(sth, src)
	if !ok {
		return false
	}
	// Phase 2: claim dst provisionally; an occupied dst fails the move with
	// nothing changed yet.
	if !dsh.m.Insert(dth, dst, v) {
		return false
	}
	// Phase 3: take src out. If a concurrent operation removed it first,
	// compensate by withdrawing the provisional dst entry — but only while
	// it still holds our value, so a concurrent overwrite of dst survives.
	if ssh.m.Delete(sth, src) {
		return true
	}
	trees.Atomic(dsh.m, dth, func(tx *stm.Tx) {
		if cur, ok := dsh.m.GetTx(tx, dst); ok && cur == v {
			dsh.m.DeleteTx(tx, dst)
		}
	})
	return false
}

// Len counts the elements, one consistent snapshot per shard.
func (h *Handle) Len() int {
	n := 0
	for si, sh := range h.f.shards {
		n += sh.m.Size(h.thread(si))
	}
	return n
}

// Keys returns the sorted keys, one consistent snapshot per shard.
func (h *Handle) Keys() []uint64 {
	var all []uint64
	for si, sh := range h.f.shards {
		all = append(all, sh.m.Keys(h.thread(si))...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// Update runs fn as one atomic transaction on the shard owning the routing
// key k. Every key touched inside fn must belong to that same shard (check
// with SameShard); touching a foreign key panics, because silently reading
// another shard's tree from this shard's transaction would break isolation.
func (h *Handle) Update(k uint64, fn func(op *Op)) {
	sh, th, si := h.route(k)
	trees.Atomic(sh.m, th, func(tx *stm.Tx) {
		fn(&Op{f: h.f, m: sh.m, tx: tx, si: si})
	})
}

// Op exposes the tree operations inside a Handle.Update transaction; all
// keys must live on the shard the transaction was routed to.
type Op struct {
	f  *Forest
	m  trees.Map
	tx *stm.Tx
	si int
}

// check panics when k is owned by a different shard than the transaction's.
func (o *Op) check(k uint64) {
	if si := o.f.ShardOf(k); si != o.si {
		panic(fmt.Sprintf("forest: key %d lives on shard %d but the transaction is bound to shard %d; route with SameShard first", k, si, o.si))
	}
}

// Insert maps k to v within the transaction; false when present.
func (o *Op) Insert(k, v uint64) bool { o.check(k); return o.m.InsertTxA(o.tx, k, v) }

// Delete removes k within the transaction; false when absent.
func (o *Op) Delete(k uint64) bool { o.check(k); return o.m.DeleteTx(o.tx, k) }

// Get returns the value at k within the transaction.
func (o *Op) Get(k uint64) (uint64, bool) { o.check(k); return o.m.GetTx(o.tx, k) }

// Contains reports membership within the transaction.
func (o *Op) Contains(k uint64) bool { o.check(k); return o.m.ContainsTx(o.tx, k) }
