package forest

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/ftx"
	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/trees"
)

// Handle is a per-goroutine accessor to a Forest. It lazily creates and
// caches one STM thread per shard, so a caller that only ever touches a few
// partitions never registers with the others. Handles are not safe for
// concurrent use; create one per goroutine.
type Handle struct {
	f     *Forest
	ths   []*stm.Thread    // cached per-shard threads, created on first touch
	ops   []uint64         // operations routed to each shard
	coord *ftx.Coordinator // cross-shard transaction coordinator, on first Atomic

	// oplog is the reusable per-transaction effect buffer of the durable
	// path: mutating operations collect their effects here during the
	// attempt, and a reliable post-commit hook appends them to the WAL only
	// if the attempt commits.
	oplog []durable.Op

	// op is the handle's reusable combiner future (one in-flight submission
	// per handle); batch is the reusable drain buffer for when this handle
	// is elected batch runner. Both nil/empty until batching is enabled
	// (see combine.go).
	op    *batchOp
	batch []*batchOp

	// Trace state (owner-goroutine only): trID is the trace id of the
	// sampled operation currently in flight on this handle — zero when the
	// op was not sampled or no tracer is attached — read by logCommit and
	// the combiner submission path so downstream spans stitch to the op.
	// trRng is the xorshift state behind the per-op sampling draw, seeded
	// non-zero at construction.
	trID  uint64
	trRng uint64
}

// handleSeq distinguishes handles' sampling streams (see Handle.trRng).
var handleSeq atomic.Uint64

// NewHandle returns a handle with no shard threads allocated yet.
func (f *Forest) NewHandle() *Handle {
	return &Handle{
		f:     f,
		ths:   make([]*stm.Thread, len(f.shards)),
		ops:   make([]uint64, len(f.shards)),
		trRng: handleSeq.Add(1)*0x9e3779b97f4a7c15 | 1,
	}
}

// nextRand advances the handle's xorshift64 sampling stream.
func (h *Handle) nextRand() uint64 {
	x := h.trRng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	h.trRng = x
	return x
}

// traceStart makes the one sampling decision for a facade operation: on a
// sampling hit, allocate a trace id, stamp it on the handle (logCommit and
// the combiner read it there) and attach the shard thread's trace context
// so the STM lifecycle records per-attempt spans. An attached-but-unsampled
// op pays one xorshift draw and a compare. Callers guard the call with an
// inline h.f.tracer.Load() nil check — the call is too big for the inliner,
// and the guard keeps the tracing-off path at one atomic load and a branch
// with no call overhead. Returns a nil tracer when the op records nothing.
// th may be nil for ops that span threads (Range, cross-shard Atomic) —
// they attach per-thread contexts themselves.
func (h *Handle) traceStart(tr *obs.Tracer, th *stm.Thread, op obs.OpKind) (*obs.Tracer, uint64, int64) {
	if !tr.Sample(h.nextRand()) {
		return nil, 0, 0
	}
	id := tr.NextID()
	h.trID = id
	if th != nil {
		th.SetTraceContext(tr, id, op)
	}
	return tr, id, time.Now().UnixNano()
}

// traceEnd closes a sampled operation: clear the thread and handle trace
// contexts, then record the facade-op span (EndOp also feeds the op-kind
// latency histogram and the slow-op table). a is the op's result code —
// 1/0 for boolean results, 0/1 for Atomic's nil/error.
func (h *Handle) traceEnd(tr *obs.Tracer, th *stm.Thread, id uint64, op obs.OpKind, start, a int64) {
	if th != nil {
		th.SetTraceContext(nil, 0, 0)
	}
	h.trID = 0
	tr.EndOp(id, op, start, time.Now().UnixNano(), a)
}

// boolA encodes a boolean op result into a span's A field.
func boolA(ok bool) int64 {
	if ok {
		return 1
	}
	return 0
}

// Forest returns the forest this handle accesses.
func (h *Handle) Forest() *Forest { return h.f }

// thread returns the handle's cached STM thread for shard si, registering
// one with that shard's domain on first use.
func (h *Handle) thread(si int) *stm.Thread {
	if h.ths[si] == nil {
		h.ths[si] = h.f.shards[si].stm.NewThread()
	}
	return h.ths[si]
}

// route resolves k to its shard, charging one routed operation to it.
func (h *Handle) route(k uint64) (*shard, *stm.Thread, int) {
	si := h.f.ShardOf(k)
	h.ops[si]++
	return h.f.shards[si], h.thread(si), si
}

// OpsPerShard returns how many operations this handle routed to each shard
// (the per-shard load-balance view the benchmark harness aggregates).
func (h *Handle) OpsPerShard() []uint64 {
	out := make([]uint64, len(h.ops))
	copy(out, h.ops)
	return out
}

// Stats sums the STM statistics of this handle's own per-shard threads —
// the handle's contribution to the forest, excluding other handles and the
// maintenance goroutines. Call only while the handle is quiescent.
func (h *Handle) Stats() stm.Stats {
	var t stm.Stats
	for _, st := range h.ShardStats() {
		t.Add(st)
	}
	return t
}

// ShardStats returns this handle's STM statistics split by shard (zero for
// shards the handle never touched), under the same quiescence contract as
// Stats.
func (h *Handle) ShardStats() []stm.Stats {
	out := make([]stm.Stats, len(h.ths))
	for si, th := range h.ths {
		if th != nil {
			out[si] = th.Stats()
		}
	}
	return out
}

// SameShard reports whether k1 and k2 are co-located (see Forest.SameShard).
func (h *Handle) SameShard(k1, k2 uint64) bool { return h.f.SameShard(k1, k2) }

// logCommit registers the reliable post-commit hook that appends the
// handle's collected effects to the forest's WAL with the transaction's
// commit-clock position. Call at the end of a successful attempt, after
// h.oplog holds the attempt's effects; an aborted attempt discards the
// registration with the attempt.
func (h *Handle) logCommit(tx *stm.Tx, si int) {
	if len(h.oplog) == 0 {
		return
	}
	// tid stitches the WAL record to the in-flight sampled op (zero when
	// untraced): captured at registration, since a batch runner's trID can
	// move on before a group-commit fsync closes the span.
	wal, tid := h.f.wal, h.trID
	tx.OnCommitted(func(pos uint64) { wal.LogUpdateT(si, pos, h.oplog, tid) })
}

// Insert maps k to v; false when k was already present. On a durable
// forest the insert runs as a composable transaction with a logged effect
// (tree-managed allocation, so an aborted linking attempt may leak one
// arena node — the InsertTxA discipline). On a batched forest the op is
// coalesced through the shard's combiner (combine.go).
func (h *Handle) Insert(k, v uint64) bool {
	sh, th, si := h.route(k)
	var (
		tr *obs.Tracer
		id uint64
		t0 int64
	)
	if t := h.f.tracer.Load(); t != nil {
		tr, id, t0 = h.traceStart(t, th, obs.OpInsert)
	}
	var ok bool
	if sh.comb != nil {
		_, ok = h.submit(sh, si, opInsert, k, v, nil)
	} else {
		ok = h.insertDirect(sh, th, si, k, v)
	}
	if tr != nil {
		h.traceEnd(tr, th, id, obs.OpInsert, t0, boolA(ok))
	}
	return ok
}

// insertDirect is the unbatched (and combiner fast-path) insert: one
// transaction of its own.
func (h *Handle) insertDirect(sh *shard, th *stm.Thread, si int, k, v uint64) bool {
	if h.f.wal == nil {
		return sh.m.Insert(th, k, v)
	}
	var ok bool
	trees.Atomic(sh.m, th, func(tx *stm.Tx) {
		h.oplog = h.oplog[:0]
		ok = sh.m.InsertTxA(tx, k, v)
		if ok {
			h.oplog = append(h.oplog, durable.Op{Key: k, Val: v})
			h.logCommit(tx, si)
		}
	})
	return ok
}

// Delete removes k; false when absent.
func (h *Handle) Delete(k uint64) bool {
	sh, th, si := h.route(k)
	var (
		tr *obs.Tracer
		id uint64
		t0 int64
	)
	if t := h.f.tracer.Load(); t != nil {
		tr, id, t0 = h.traceStart(t, th, obs.OpDelete)
	}
	var ok bool
	if sh.comb != nil {
		_, ok = h.submit(sh, si, opDelete, k, 0, nil)
	} else {
		ok = h.deleteDirect(sh, th, si, k)
	}
	if tr != nil {
		h.traceEnd(tr, th, id, obs.OpDelete, t0, boolA(ok))
	}
	return ok
}

// deleteDirect is the unbatched (and combiner fast-path) delete.
func (h *Handle) deleteDirect(sh *shard, th *stm.Thread, si int, k uint64) bool {
	if h.f.wal == nil {
		return sh.m.Delete(th, k)
	}
	var ok bool
	trees.Atomic(sh.m, th, func(tx *stm.Tx) {
		h.oplog = h.oplog[:0]
		ok = sh.m.DeleteTx(tx, k)
		if ok {
			h.oplog = append(h.oplog, durable.Op{Key: k, Del: true})
			h.logCommit(tx, si)
		}
	})
	return ok
}

// Get returns the value at k.
func (h *Handle) Get(k uint64) (uint64, bool) {
	sh, th, si := h.route(k)
	var (
		tr *obs.Tracer
		id uint64
		t0 int64
	)
	if t := h.f.tracer.Load(); t != nil {
		tr, id, t0 = h.traceStart(t, th, obs.OpGet)
	}
	var (
		v  uint64
		ok bool
	)
	if sh.comb != nil {
		v, ok = h.submit(sh, si, opGet, k, 0, nil)
	} else {
		v, ok = sh.m.Get(th, k)
	}
	if tr != nil {
		h.traceEnd(tr, th, id, obs.OpGet, t0, boolA(ok))
	}
	return v, ok
}

// Contains reports whether k is present.
func (h *Handle) Contains(k uint64) bool {
	sh, th, si := h.route(k)
	var (
		tr *obs.Tracer
		id uint64
		t0 int64
	)
	if t := h.f.tracer.Load(); t != nil {
		tr, id, t0 = h.traceStart(t, th, obs.OpContains)
	}
	var ok bool
	if sh.comb != nil {
		_, ok = h.submit(sh, si, opContains, k, 0, nil)
	} else {
		ok = sh.m.Contains(th, k)
	}
	if tr != nil {
		h.traceEnd(tr, th, id, obs.OpContains, t0, boolA(ok))
	}
	return ok
}

// Move relocates the value at src to dst; it succeeds only when src is
// present and dst absent, and it is atomic regardless of where the keys
// live. When SameShard(src, dst) the move is one ordinary transaction
// (paper §5.4); across shards it runs as one cross-shard ftx transaction
// (see Atomic), so a concurrent observer never sees the value at both keys
// or at neither — the pre-ftx insert-first/compensate protocol and its
// claim table are gone.
func (h *Handle) Move(src, dst uint64) bool {
	ssh, sth, ssi := h.route(src)
	dsi := h.f.ShardOf(dst)
	if ssi == dsi {
		var (
			tr *obs.Tracer
			id uint64
			t0 int64
		)
		if t := h.f.tracer.Load(); t != nil {
			tr, id, t0 = h.traceStart(t, sth, obs.OpMove)
		}
		ok := h.moveSameShard(ssh, sth, ssi, src, dst)
		if tr != nil {
			h.traceEnd(tr, sth, id, obs.OpMove, t0, boolA(ok))
		}
		return ok
	}
	h.ops[dsi]++
	c := h.coordinator()
	var (
		tr *obs.Tracer
		id uint64
		t0 int64
	)
	if t := h.f.tracer.Load(); t != nil {
		tr, id, t0 = h.traceStart(t, nil, obs.OpMove)
	}
	if tr != nil {
		c.SetTraceContext(tr, id)
	}
	var ok bool
	// The error return is unused: the closure always returns nil, and a
	// nil-returning Run cannot fail (it retries until commit).
	_ = c.Run(func(t *ftx.Tx) error {
		ok = false
		v, present := t.Get(src)
		if !present || t.Contains(dst) {
			return nil
		}
		t.Delete(src)
		t.Put(dst, v)
		ok = true
		return nil
	})
	if tr != nil {
		c.SetTraceContext(nil, 0)
		h.traceEnd(tr, nil, id, obs.OpMove, t0, boolA(ok))
	}
	return ok
}

// moveSameShard is the intra-shard move: the composition of paper §5.4 as
// one atomic transaction.
func (h *Handle) moveSameShard(sh *shard, th *stm.Thread, si int, src, dst uint64) bool {
	if src == dst {
		return sh.m.Contains(th, src)
	}
	var ok bool
	trees.Atomic(sh.m, th, func(tx *stm.Tx) {
		ok = false
		h.oplog = h.oplog[:0]
		v, present := sh.m.GetTx(tx, src)
		if !present || sh.m.ContainsTx(tx, dst) {
			return
		}
		if !sh.m.DeleteTx(tx, src) {
			return
		}
		if !sh.m.InsertTxA(tx, dst, v) {
			// dst was checked absent in this very transaction: only a
			// doomed (zombie) attempt or an elastic cut of that check can
			// see it occupied now. Never commit the half-move (the src
			// delete is already buffered) — retry from scratch.
			tx.Restart()
		}
		ok = true
		if h.f.wal != nil {
			h.oplog = append(h.oplog,
				durable.Op{Key: src, Del: true},
				durable.Op{Key: dst, Val: v})
			h.logCommit(tx, si)
		}
	})
	return ok
}

// ftxDomain adapts a Handle to the cross-shard coordinator's Domain
// interface. Shard accesses charge the handle's routed-operation counter,
// so OpsPerShard reflects coordinator traffic too (approximately: one
// charge per shard touch, including commit-phase touches and retries).
type ftxDomain struct{ h *Handle }

func (d ftxDomain) Shards() int          { return len(d.h.f.shards) }
func (d ftxDomain) ShardOf(k uint64) int { return d.h.f.ShardOf(k) }

func (d ftxDomain) Shard(si int) ftx.Shard {
	d.h.ops[si]++
	return ftx.Shard{
		Map:     d.h.f.shards[si].m,
		Thread:  d.h.thread(si),
		Intents: &d.h.f.shards[si].intents,
	}
}

// Atomic runs fn as one atomic cross-shard transaction: fn may read and
// write keys on any shard through the buffering ftx.Tx, and every effect
// commits atomically — all or none — via the internal/ftx coordinator's
// shard-ordered two-phase commit. A non-nil error from fn aborts the
// transaction with nothing applied and is returned verbatim; otherwise
// Atomic retries on conflict (through the shards' contention managers)
// until it commits and returns nil. Like Update's fn, Atomic's fn may be
// re-executed and must be free of side effects beyond the Tx and locals it
// re-assigns.
//
// When every key fn touches lands on one shard, the transaction commits as
// one ordinary single-shard transaction (no intents, no prepare); for
// hot-path compositions whose keys are known co-located, SameShard-routed
// Update remains cheaper still because it skips the coordinator's read
// buffering too.
func (h *Handle) Atomic(fn func(t *ftx.Tx) error) error {
	c := h.coordinator()
	var (
		tr *obs.Tracer
		id uint64
		t0 int64
	)
	if t := h.f.tracer.Load(); t != nil {
		tr, id, t0 = h.traceStart(t, nil, obs.OpAtomic)
	}
	if tr != nil {
		c.SetTraceContext(tr, id)
	}
	err := c.Run(fn)
	if tr != nil {
		c.SetTraceContext(nil, 0)
		a := int64(0)
		if err != nil {
			a = 1
		}
		h.traceEnd(tr, nil, id, obs.OpAtomic, t0, a)
	}
	return err
}

// coordinator lazily creates and registers the handle's cross-shard
// transaction coordinator.
func (h *Handle) coordinator() *ftx.Coordinator {
	if h.coord == nil {
		h.coord = ftx.NewCoordinator(ftxDomain{h: h})
		if h.f.wal != nil {
			h.coord.SetWAL(h.f.wal)
		}
		h.f.registerCoord(h.coord)
	}
	return h.coord
}

// XactStats reports this handle's cross-shard coordinator activity
// (zero value before the first Atomic call).
func (h *Handle) XactStats() ftx.Stats {
	if h.coord == nil {
		return ftx.Stats{}
	}
	return h.coord.Stats()
}

// scanThread prepares shard si for a read-only scan: it charges the routed
// operation and returns the shard's thread, or nil when the shard was just
// observed empty and the handle has nothing registered there — an empty
// shard contributes nothing to a scan, and skipping it avoids registering
// an STM thread (which the shard's maintenance GC would forever after have
// to inspect) with a domain the handle never otherwise touches.
func (h *Handle) scanThread(si int) *stm.Thread {
	if h.ths[si] == nil && trees.EmptyHint(h.f.shards[si].m) {
		return nil
	}
	h.ops[si]++
	return h.thread(si)
}

// Len counts the elements, one consistent snapshot per shard. Each scanned
// shard is charged one routed operation (see OpsPerShard).
func (h *Handle) Len() int {
	n := 0
	for si, sh := range h.f.shards {
		th := h.scanThread(si)
		if th == nil {
			continue
		}
		n += sh.m.Size(th)
	}
	return n
}

// Keys returns the sorted keys, one consistent snapshot per shard, merged
// exactly as Range merges (each scanned shard charged one routed op).
func (h *Handle) Keys() []uint64 {
	var all []uint64
	h.Range(0, ^uint64(0), func(k, _ uint64) bool {
		all = append(all, k)
		return true
	})
	return all
}

// kv is one element of a per-shard range snapshot.
type kv struct{ k, v uint64 }

// Range visits, in ascending key order, every element whose key lies in
// [lo, hi] (both inclusive), calling fn(k, v) for each; fn returning false
// stops the scan. It reports whether the scan ran to the end of the
// interval. Keys are shard-routed by hash, so every shard intersects every
// interval: Range takes one ordered snapshot of [lo, hi] per shard (each
// internally consistent, the shards not cut at one instant — the same
// contract as Len and Keys) and then merges the S sorted snapshots lazily,
// k-way, while feeding fn. Shards observed empty are skipped without
// opening a transaction; each scanned shard is charged one routed op.
//
// An early fn stop saves the remaining merge work but not the per-shard
// snapshot collection, which is bounded by the interval width; callers
// wanting "first n elements" scans should bound [lo, hi] accordingly.
func (h *Handle) Range(lo, hi uint64, fn func(k, v uint64) bool) bool {
	if lo > hi {
		return true
	}
	var (
		tr *obs.Tracer
		id uint64
		t0 int64
	)
	if t := h.f.tracer.Load(); t != nil {
		tr, id, t0 = h.traceStart(t, nil, obs.OpRange)
	}
	snaps := make([][]kv, 0, len(h.f.shards))
	for si, sh := range h.f.shards {
		th := h.scanThread(si)
		if th == nil {
			continue
		}
		if tr != nil {
			th.SetTraceContext(tr, id, obs.OpRange)
		}
		var snap []kv
		// Full read tracking (CTL) regardless of the domain default, so
		// each shard's snapshot is consistent (as Size/Keys promise); the
		// in-transaction reset keeps retries from duplicating entries.
		th.AtomicMode(stm.CTL, func(tx *stm.Tx) {
			snap = snap[:0]
			sh.m.RangeTx(tx, lo, hi, func(k, v uint64) bool {
				snap = append(snap, kv{k, v})
				return true
			})
		})
		if tr != nil {
			th.SetTraceContext(nil, 0, 0)
		}
		if len(snap) > 0 {
			snaps = append(snaps, snap)
		}
	}
	done := mergeSnaps(snaps, fn)
	if tr != nil {
		h.traceEnd(tr, nil, id, obs.OpRange, t0, boolA(done))
	}
	return done
}

// mergeSnaps merges the sorted per-shard snapshots, feeding fn in globally
// ascending key order until fn stops it or the snapshots drain. Shard
// routing is a function of the key, so no key appears in two snapshots and
// the merged stream is strictly increasing. With the small shard counts a
// forest runs (a handful to a few dozen) a linear min-pick per element
// beats a heap's bookkeeping.
func mergeSnaps(snaps [][]kv, fn func(k, v uint64) bool) bool {
	idx := make([]int, len(snaps))
	for {
		best := -1
		for i := range snaps {
			if idx[i] >= len(snaps[i]) {
				continue
			}
			if best == -1 || snaps[i][idx[i]].k < snaps[best][idx[best]].k {
				best = i
			}
		}
		if best == -1 {
			return true
		}
		e := snaps[best][idx[best]]
		idx[best]++
		if !fn(e.k, e.v) {
			return false
		}
	}
}

// Update runs fn as one atomic transaction on the shard owning the routing
// key k. Every key touched inside fn must belong to that same shard (check
// with SameShard); touching a foreign key panics, because silently reading
// another shard's tree from this shard's transaction would break isolation.
//
// On a batched forest fn is coalesced through the shard's combiner like the
// single-key ops, which means it may execute on another goroutine — the
// elected batch runner — while this one waits. fn's usual contract (free of
// side effects beyond the Op and re-assigned captured locals) already makes
// that transparent: the captures are published back to the caller with the
// op's completion.
func (h *Handle) Update(k uint64, fn func(op *Op)) {
	sh, th, si := h.route(k)
	var (
		tr *obs.Tracer
		id uint64
		t0 int64
	)
	if t := h.f.tracer.Load(); t != nil {
		tr, id, t0 = h.traceStart(t, th, obs.OpUpdate)
	}
	if sh.comb != nil {
		h.submit(sh, si, opUpdate, k, 0, fn)
	} else {
		h.updateDirect(sh, th, si, fn)
	}
	if tr != nil {
		h.traceEnd(tr, th, id, obs.OpUpdate, t0, 0)
	}
}

// updateDirect is the unbatched (and combiner fast-path) Update body.
func (h *Handle) updateDirect(sh *shard, th *stm.Thread, si int, fn func(op *Op)) {
	trees.Atomic(sh.m, th, func(tx *stm.Tx) {
		op := Op{f: h.f, m: sh.m, tx: tx, si: si}
		if h.f.wal != nil {
			h.oplog = h.oplog[:0]
			op.log = &h.oplog
		}
		fn(&op)
		if op.log != nil {
			h.logCommit(tx, si)
		}
	})
}

// Op exposes the tree operations inside a Handle.Update transaction; all
// keys must live on the shard the transaction was routed to.
type Op struct {
	f  *Forest
	m  trees.Map
	tx *stm.Tx
	si int
	// log, when non-nil, collects the transaction's effects for the durable
	// WAL record (reset by Update at the start of every attempt).
	log *[]durable.Op
}

// check panics when k is owned by a different shard than the transaction's.
func (o *Op) check(k uint64) {
	if si := o.f.ShardOf(k); si != o.si {
		panic(fmt.Sprintf("forest: key %d lives on shard %d but the transaction is bound to shard %d; route with SameShard first", k, si, o.si))
	}
}

// Insert maps k to v within the transaction; false when present.
func (o *Op) Insert(k, v uint64) bool {
	o.check(k)
	ok := o.m.InsertTxA(o.tx, k, v)
	if ok && o.log != nil {
		*o.log = append(*o.log, durable.Op{Key: k, Val: v})
	}
	return ok
}

// Delete removes k within the transaction; false when absent.
func (o *Op) Delete(k uint64) bool {
	o.check(k)
	ok := o.m.DeleteTx(o.tx, k)
	if ok && o.log != nil {
		*o.log = append(*o.log, durable.Op{Key: k, Del: true})
	}
	return ok
}

// Get returns the value at k within the transaction.
func (o *Op) Get(k uint64) (uint64, bool) { o.check(k); return o.m.GetTx(o.tx, k) }

// Contains reports membership within the transaction.
func (o *Op) Contains(k uint64) bool { o.check(k); return o.m.ContainsTx(o.tx, k) }
