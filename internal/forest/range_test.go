package forest

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/trees"
)

// TestRangeOracle drives, for every tree kind at shards 1 and 8, a phase of
// concurrent random inserts/deletes/range-scans (with maintenance running,
// so the speculation-friendly shards rotate under the scans) followed by a
// quiescent exact comparison against a mutex-protected reference map.
//
// During the churn the scans assert the invariants that hold under
// concurrency — in-bounds, strictly ascending (hence duplicate-free), and
// untorn (the workload keeps v == k*10 for every live key) — and after the
// workers join, full and partial ranges must match the reference exactly.
func TestRangeOracle(t *testing.T) {
	for _, kind := range trees.Kinds() {
		for _, shards := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", kind, shards), func(t *testing.T) {
				testRangeOracle(t, kind, shards)
			})
		}
	}
}

func testRangeOracle(t *testing.T, kind trees.Kind, shards int) {
	const keyRange = 1 << 10
	const workers = 3
	const opsPerWorker = 2500

	f := New(kind, WithShards(shards))
	defer f.Close()

	var mu sync.Mutex // guards ref
	ref := make(map[uint64]uint64)

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := f.NewHandle()
			rng := rand.New(rand.NewSource(int64(g)*7919 + 1))
			for i := 0; i < opsPerWorker; i++ {
				if rng.Intn(2) == 0 {
					// Workers mutate disjoint key stripes (k ≡ g mod
					// workers), so the tree ops race freely against each
					// other and the scans while each op's return value
					// still exactly determines the reference update; the
					// mutex only protects the shared map's structure.
					k := uint64(rng.Intn(keyRange/workers))*workers + uint64(g)
					if h.Insert(k, k*10) {
						mu.Lock()
						ref[k] = k * 10
						mu.Unlock()
					} else if h.Delete(k) {
						mu.Lock()
						delete(ref, k)
						mu.Unlock()
					}
					continue
				}
				lo := uint64(rng.Intn(keyRange))
				hi := lo + uint64(rng.Intn(keyRange/4))
				prev, first := uint64(0), true
				h.Range(lo, hi, func(k, v uint64) bool {
					if k < lo || k > hi {
						t.Errorf("key %d outside [%d,%d]", k, lo, hi)
					}
					if !first && k <= prev {
						t.Errorf("range not strictly ascending: %d after %d", k, prev)
					}
					if v != k*10 {
						t.Errorf("torn read: key %d value %d", k, v)
					}
					prev, first = k, false
					return true
				})
			}
		}(g)
	}
	wg.Wait()

	// Quiescent phase: every range must now match the reference exactly.
	h := f.NewHandle()
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 50; trial++ {
		lo := uint64(rng.Intn(keyRange))
		hi := lo + uint64(rng.Intn(keyRange))
		var got [][2]uint64
		h.Range(lo, hi, func(k, v uint64) bool {
			got = append(got, [2]uint64{k, v})
			return true
		})
		var want [][2]uint64
		for k := lo; k <= hi && k < keyRange; k++ {
			if v, ok := ref[k]; ok {
				want = append(want, [2]uint64{k, v})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range [%d,%d]: %d elements, want %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range [%d,%d][%d] = %v, want %v", lo, hi, i, got[i], want[i])
			}
		}
	}
	// The full ascent must agree with Keys and with the reference size.
	n := 0
	h.Range(0, ^uint64(0), func(_, _ uint64) bool { n++; return true })
	if n != len(ref) || h.Len() != len(ref) {
		t.Fatalf("full range %d, Len %d, reference %d", n, h.Len(), len(ref))
	}
}

// TestRangeEarlyStopAndBounds covers the fn-stop contract and degenerate
// intervals on the merged path.
func TestRangeEarlyStopAndBounds(t *testing.T) {
	f := New(trees.SFOpt, WithShards(4), WithoutMaintenance())
	defer f.Close()
	h := f.NewHandle()
	for k := uint64(0); k < 100; k++ {
		h.Insert(k, k)
	}
	var seen []uint64
	if h.Range(10, 50, func(k, _ uint64) bool {
		seen = append(seen, k)
		return len(seen) < 5
	}) {
		t.Fatal("stopped scan reported completion")
	}
	if len(seen) != 5 || seen[0] != 10 || seen[4] != 14 {
		t.Fatalf("early-stopped scan saw %v", seen)
	}
	if !h.Range(60, 20, func(_, _ uint64) bool { t.Error("visited inverted interval"); return true }) {
		t.Fatal("inverted interval reported stop")
	}
	if !h.Range(41, 41, func(k, _ uint64) bool {
		if k != 41 {
			t.Errorf("singleton interval visited %d", k)
		}
		return true
	}) {
		t.Fatal("singleton interval reported stop")
	}
}

// TestScanOpsAccounting verifies that Len/Keys/Range charge the handle's
// per-shard operation counters, and that scans over an empty forest neither
// register STM threads with the shards nor charge any shard.
func TestScanOpsAccounting(t *testing.T) {
	f := New(trees.SFOpt, WithShards(4), WithoutMaintenance())
	defer f.Close()

	// Empty forest: scans see nothing, touch nothing, register nothing.
	h := f.NewHandle()
	if h.Len() != 0 || len(h.Keys()) != 0 {
		t.Fatal("empty forest scan not empty")
	}
	h.Range(0, ^uint64(0), func(_, _ uint64) bool { t.Error("element in empty forest"); return true })
	for si, c := range h.OpsPerShard() {
		if c != 0 {
			t.Fatalf("empty-forest scan charged shard %d (%d ops)", si, c)
		}
	}
	for si, th := range h.ths {
		if th != nil {
			t.Fatalf("empty-forest scan registered a thread with shard %d", si)
		}
	}

	// Populated forest: every shard holds keys (dense range over 4 shards),
	// so each scan charges every shard once.
	w := f.NewHandle()
	for k := uint64(0); k < 256; k++ {
		w.Insert(k, k)
	}
	h2 := f.NewHandle()
	h2.Len()
	h2.Keys()
	h2.Range(0, 255, func(_, _ uint64) bool { return true })
	for si, c := range h2.OpsPerShard() {
		if c != 3 {
			t.Fatalf("shard %d charged %d scan ops, want 3", si, c)
		}
	}
}

// TestRangeConcurrentWithMoves overlaps merged scans with cross-shard moves
// to exercise the documented weak spot — a moving value seen at both keys
// or neither — while still requiring sortedness and untorn values.
func TestRangeConcurrentWithMoves(t *testing.T) {
	f := New(trees.SF, WithShards(8))
	defer f.Close()
	h := f.NewHandle()
	const n = 512
	for k := uint64(0); k < n; k++ {
		h.Insert(k, 1)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mh := f.NewHandle()
		rng := rand.New(rand.NewSource(17))
		for !stop.Load() {
			src := uint64(rng.Intn(n))
			dst := uint64(rng.Intn(n)) + n
			if !mh.Move(src, dst) {
				mh.Move(dst, src)
			}
		}
	}()
	rh := f.NewHandle()
	for i := 0; i < 200; i++ {
		prev, first := uint64(0), true
		rh.Range(0, 2*n, func(k, v uint64) bool {
			if !first && k <= prev {
				t.Errorf("unsorted under moves: %d after %d", k, prev)
			}
			if v != 1 {
				t.Errorf("torn value %d at key %d", v, k)
			}
			prev, first = k, false
			return true
		})
	}
	stop.Store(true)
	wg.Wait()
}
