package forest

import (
	"sync"
	"sync/atomic"

	"repro/internal/stm"
	"repro/internal/trees"
)

// This file implements move claims: the mechanism that makes the
// compensation step of a cross-shard Move provably safe.
//
// A cross-shard Move first inserts the value provisionally at dst and only
// then deletes src; when src turns out to have been removed concurrently,
// the mover must withdraw its provisional dst entry. Checking "dst still
// holds the moved value" is not enough: a third party may have deleted the
// provisional entry and independently inserted its own entry that
// coincidentally carries the same 64-bit value, and a value-only check
// would then destroy that third party's entry (a value-ABA hazard).
//
// A claim closes the hazard with a transactional broken flag living in the
// dst shard's STM domain:
//
//   - The mover registers a claim on dst before its provisional insert.
//   - Every deletion of a key k on the forest (Handle.Delete, Op.Delete,
//     the delete legs of Move) that actually removes an entry writes
//     broken=1 into every claim registered on k, inside the very
//     transaction that performs the removal. The claim lookup happens
//     after the transaction's reads have observed the entry being removed,
//     so if the removed entry is the mover's provisional one — which was
//     inserted after the claim was registered — the claim is visible to
//     the deleter (registration happens-before the insert's commit, which
//     happens-before any read observing it).
//   - The compensation reads the broken flag transactionally: broken=0
//     therefore proves that no committed deletion ever removed the
//     provisional entry, i.e. the entry currently at dst is still the
//     mover's own, and withdrawing it cannot touch third-party state.
//
// When the flag reads 1 the mover cannot tell whose entry now sits at dst
// and compensates by doing nothing: the value remains at dst (never lost,
// never a spurious deletion of someone else's entry) — see Handle.Move for
// the user-facing semantics of that outcome.
//
// Deletions pay one atomic load on their fast path (no claims registered
// anywhere on the forest); the mutex-protected map is touched only while
// cross-shard moves are actually in flight.

// moveClaim is one registered cross-shard-move claim on a dst key. broken
// is a transactional word in the dst shard's STM domain: deleters of dst
// set it to 1 inside their deleting transaction, and the compensation
// reads it inside the withdrawing transaction.
type moveClaim struct {
	broken stm.Word
}

// claimTable tracks the in-flight cross-shard-move claims of one forest,
// keyed by dst key. Multiple concurrent movers may claim the same key (at
// most one of their provisional inserts can succeed).
type claimTable struct {
	active atomic.Int64 // number of registered claims (deletion fast path)
	mu     sync.Mutex
	m      map[uint64][]*moveClaim
}

// register adds a claim on key k. It must be called before the provisional
// insert begins so that any deleter observing the inserted entry also
// observes the claim (map insert, then counter increment, both before the
// insert transaction's first access).
func (c *claimTable) register(k uint64) *moveClaim {
	cl := &moveClaim{}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[uint64][]*moveClaim)
	}
	c.m[k] = append(c.m[k], cl)
	c.mu.Unlock()
	c.active.Add(1)
	return cl
}

// unregister removes a claim previously registered on k.
func (c *claimTable) unregister(k uint64, cl *moveClaim) {
	c.mu.Lock()
	claims := c.m[k]
	for i, x := range claims {
		if x == cl {
			claims[i] = claims[len(claims)-1]
			claims = claims[:len(claims)-1]
			break
		}
	}
	if len(claims) == 0 {
		delete(c.m, k)
	} else {
		c.m[k] = claims
	}
	c.mu.Unlock()
	c.active.Add(-1)
}

// lookup returns the claims currently registered on k (nil for none). The
// fast path is one atomic load.
func (c *claimTable) lookup(k uint64) []*moveClaim {
	if c.active.Load() == 0 {
		return nil
	}
	c.mu.Lock()
	claims := c.m[k]
	out := make([]*moveClaim, len(claims))
	copy(out, claims)
	c.mu.Unlock()
	return out
}

// deleteTx removes k from m within tx and, when the removal succeeds,
// breaks every claim registered on k inside the same transaction. All
// forest-level deletions must go through this helper (or replicate it);
// deleting through the shard tree directly would reopen the value-ABA
// hazard documented above.
func (f *Forest) deleteTx(m trees.Map, tx *stm.Tx, k uint64) bool {
	if !m.DeleteTx(tx, k) {
		return false
	}
	for _, cl := range f.claims.lookup(k) {
		tx.Write(&cl.broken, 1)
	}
	return true
}
