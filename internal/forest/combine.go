// Per-shard op combiner: batch-coalesced execution of the forest's
// single-key operations (WithBatching).
//
// The unbatched hot path pays the STM's fixed per-transaction overhead —
// descriptor reset, clock draw, validation, commit CAS — once per
// operation, and on a contended shard it pays again for every abort. The
// combiner amortizes both: submitting handles enqueue their operation into
// the shard's bounded MPMC ring (internal/ring) and one runner, elected by
// CAS on the shard's busy flag, drains the ring and applies the whole
// pending batch in ONE transaction on its own shard thread. Reads are
// answered from the batch transaction's snapshot, writes replay through the
// trees' composable forms, results travel back through per-op futures
// (done flag + parking token), and a durable forest appends the whole batch
// as one multi-effect WAL record at the batch's commit position. Because at
// most one batch transaction runs per shard at a time, batched operations
// on a hot shard stop aborting each other entirely — the combiner trades
// read parallelism for conflict-free, overhead-amortized serial execution,
// which wins exactly when contention was burning the parallelism anyway.
//
// The scheme is flat combining in the PALM/hilbert-ring mold: there is no
// dedicated runner goroutine — submitters themselves are elected, so every
// queued op always has a live goroutine responsible for it and shutdown
// cannot strand work. The wait dial selects between two policies:
//
//   - Drain-only (wait == 0): a submitter finding the shard uncontended
//     (busy flag free) skips the ring entirely and runs its op as today's
//     direct one-op transaction while holding the flag, so single-threaded
//     latency does not regress beyond one CAS + release. Batches form only
//     from ops that queued while a runner was busy.
//   - Linger (wait > 0): every op enqueues, and an elected runner keeps
//     collecting as long as scheduler yields keep producing ops (bounded by
//     wait), maximizing the per-transaction amortization at a bounded
//     latency cost. This is the policy that coalesces even when ops never
//     overlap a busy runner — e.g. time-sliced threads on few cores.
//
// Handoff protocol (why parking cannot hang): a runner drains the ring to
// empty before releasing the busy flag, and every release is followed by a
// tail re-check (drainTail) that re-elects while the ring is visibly
// non-empty. A submitter therefore parks only after a failed election —
// i.e. while some runner is active — and that runner either pops the op or
// leaves it to the next link of the release/re-check chain; the chain only
// ends with an empty ring.
package forest

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/stm"
	"repro/internal/trees"
)

// Submission op kinds.
const (
	opGet = iota
	opContains
	opInsert
	opDelete
	opUpdate
)

// lingerIdleYields bounds how many consecutive empty scheduler yields a
// lingering runner tolerates before applying an underfull batch. Two rounds
// cover a producer caught mid-enqueue without degenerating into a timed
// spin when no submitter is runnable.
const lingerIdleYields = 2

// batchOp is one queued single-key operation together with its future. Each
// handle owns one, reused across submissions (a handle submits one op at a
// time): the submitter fills the request fields before pushing, the runner
// fills the result fields before publishing done.
type batchOp struct {
	kind int
	key  uint64
	val  uint64
	fn   func(*Op) // opUpdate's transaction body

	resVal uint64
	resOK  bool
	// requeue is set instead of a result when the batch runner panicked
	// before this op executed: the submitter re-submits, so the op that
	// actually trips the bug panics on its own goroutine, attributably.
	requeue bool

	// traceID/enq carry a sampled submission's trace context to whichever
	// goroutine runs the batch: non-zero traceID makes the runner record a
	// SpanCombinerWait from the enqueue instant enq to the batch's commit.
	// Written by the submitter before Push, read by the runner — ordered by
	// the ring's publication, like the request fields above.
	traceID uint64
	enq     int64

	// done is the result-publication barrier (its Store/Load pair orders
	// the plain fields above); wake is the parking token, capacity 1. A
	// stale token — a completion the submitter noticed via done without
	// receiving — is cleared at the next submission and tolerated by the
	// wait loop's re-check.
	done atomic.Bool
	wake chan struct{}
}

// combiner is one shard's submission side: the bounded op ring and the
// runner-election flag.
type combiner struct {
	ring *ring.Ring[*batchOp]
	busy atomic.Bool
	// n is the max ops per batch transaction; wait is the optional linger a
	// runner spends topping up an underfull batch (WithBatching).
	n    int
	wait time.Duration
}

// newCombiner sizes the ring at four batches so producers keep queueing
// while one batch executes; beyond that submitters help drain.
func newCombiner(n int, wait time.Duration) *combiner {
	return &combiner{ring: ring.New[*batchOp](4 * n), n: n, wait: wait}
}

// submit routes one single-key operation through the shard's combiner,
// returning the op's (value, ok) result. See the package comment for the
// protocol; the result pair is (0, inserted/deleted) for updates, the
// (value, present) pair for reads, and (0, false) for opUpdate, whose
// effects travel through fn's own captures.
func (h *Handle) submit(sh *shard, si int, kind int, k, v uint64, fn func(*Op)) (uint64, bool) {
	c := sh.comb
	for {
		// Uncontended fast path (drain-only mode): claim the runner slot
		// without enqueueing and run the op directly — today's one-op
		// transaction. Linger mode (wait > 0) skips it and always enqueues:
		// coalescing is that mode's whole point, and the runner's linger
		// collects ops from the ring, so they must be in it.
		if c.wait <= 0 && c.busy.CompareAndSwap(false, true) {
			rv, ok := h.runDirect(sh, si, kind, k, v, fn)
			c.busy.Store(false)
			h.drainTail(sh, si, c)
			return rv, ok
		}
		if h.op == nil {
			h.op = &batchOp{wake: make(chan struct{}, 1)}
		}
		op := h.op
		select { // clear a stale completion token from a prior submission
		case <-op.wake:
		default:
		}
		op.kind, op.key, op.val, op.fn = kind, k, v, fn
		op.requeue = false
		op.traceID, op.enq = h.trID, 0
		if op.traceID != 0 {
			op.enq = time.Now().UnixNano()
		}
		op.done.Store(false)
		if !c.ring.Push(op) {
			// Ring full: yield and retry the whole submission, taking the
			// runner slot ourselves if it has freed up.
			runtime.Gosched()
			continue
		}
		spins := 0
		for !op.done.Load() {
			if c.busy.CompareAndSwap(false, true) {
				// Won the election: drain the ring — our own op included.
				h.runBatches(sh, si, c)
				c.busy.Store(false)
				h.drainTail(sh, si, c)
				continue
			}
			if spins < 32 {
				spins++
				runtime.Gosched()
				continue
			}
			// Park until the active runner completes us (or a stale token
			// wakes us early; the loop re-checks done and parks again).
			<-op.wake
		}
		op.fn = nil // drop the closure reference
		if !op.requeue {
			return op.resVal, op.resOK
		}
	}
}

// runDirect executes one op as an ordinary direct transaction (the
// uncontended fast path). The caller holds the shard's busy flag.
func (h *Handle) runDirect(sh *shard, si int, kind int, k, v uint64, fn func(*Op)) (uint64, bool) {
	th := h.thread(si)
	switch kind {
	case opGet, opContains:
		return sh.m.Get(th, k)
	case opInsert:
		return 0, h.insertDirect(sh, th, si, k, v)
	case opDelete:
		return 0, h.deleteDirect(sh, th, si, k)
	default: // opUpdate
		h.updateDirect(sh, th, si, fn)
		return 0, false
	}
}

// runBatches drains the shard's submission ring, applying successive
// batches of up to c.n operations, each in one transaction. The caller
// must hold c.busy; runBatches returns only when the ring reads empty.
func (h *Handle) runBatches(sh *shard, si int, c *combiner) {
	for {
		batch := h.batch[:0]
		var deadline time.Time
		idleYields := 0
		for len(batch) < c.n {
			op, ok := c.ring.Pop()
			if ok {
				batch = append(batch, op)
				idleYields = 0
				continue
			}
			if len(batch) == 0 || c.wait <= 0 || idleYields >= lingerIdleYields {
				break
			}
			// Linger: yield so runnable submitters can enqueue, and keep
			// collecting while yields keep producing ops. The idle-yield
			// bound makes the linger adaptive — a yield that produces
			// nothing means no submitter is ready (on a loaded single-CPU
			// host one Gosched runs every runnable goroutine), so the batch
			// applies immediately instead of idling out the full wait; the
			// deadline caps the total linger when ops trickle in forever.
			now := time.Now()
			if deadline.IsZero() {
				deadline = now.Add(c.wait)
			} else if now.After(deadline) {
				break
			}
			runtime.Gosched()
			idleYields++
		}
		h.batch = batch
		if len(batch) == 0 {
			return
		}
		h.applyBatch(sh, si, batch)
	}
}

// applyBatch executes one batch in a single transaction on the runner's
// own shard thread and completes every future. Reads are answered from the
// batch transaction's snapshot; writes replay through the trees'
// presence-reporting composable forms (InsertTxA/DeleteTx), so each op's
// boolean result is exact even when the batch carries several ops for one
// key — they apply in submission (ring FIFO) order and see each other's
// effects, which makes every op in the batch linearize at the batch
// transaction's commit point, in queue order. On a durable forest the
// whole batch logs as one multi-effect WAL record whose sequence number is
// the batch's commit-clock position.
func (h *Handle) applyBatch(sh *shard, si int, batch []*batchOp) {
	th := h.thread(si)
	executed := false
	defer func() {
		if executed {
			return
		}
		// The batch transaction panicked (a foreign bug escaping the STM's
		// retry machinery). Completing the futures with requeue keeps the
		// waiters from hanging on a dead runner; see batchOp.requeue.
		for _, op := range batch {
			op.requeue = true
			complete(op)
		}
	}()
	trees.Atomic(sh.m, th, func(tx *stm.Tx) {
		h.oplog = h.oplog[:0]
		for _, op := range batch {
			switch op.kind {
			case opGet, opContains:
				op.resVal, op.resOK = sh.m.GetTx(tx, op.key)
			case opInsert:
				op.resOK = sh.m.InsertTxA(tx, op.key, op.val)
				if op.resOK && h.f.wal != nil {
					h.oplog = append(h.oplog, durable.Op{Key: op.key, Val: op.val})
				}
			case opDelete:
				op.resOK = sh.m.DeleteTx(tx, op.key)
				if op.resOK && h.f.wal != nil {
					h.oplog = append(h.oplog, durable.Op{Key: op.key, Del: true})
				}
			case opUpdate:
				fop := Op{f: h.f, m: sh.m, tx: tx, si: si}
				if h.f.wal != nil {
					fop.log = &h.oplog
				}
				op.fn(&fop)
			}
		}
		if h.f.wal != nil {
			h.logCommit(tx, si)
		}
	})
	executed = true
	th.NoteBatch(len(batch))
	if bh := h.f.batchH.Load(); bh != nil {
		bh.Record(uint64(len(batch)))
	}
	if fr := h.f.fr.Load(); fr != nil {
		fr.Record(obs.EvBatch, 0, int64(len(batch)), int64(si))
	}
	if tr := h.f.tracer.Load(); tr != nil {
		// Close every sampled submission's enqueue→batch-commit wait span
		// before publishing results: A is the batch size the op rode in, B
		// the shard. Untraced ops (traceID 0) skip with one comparison.
		now := time.Now().UnixNano()
		for _, op := range batch {
			if op.traceID != 0 {
				tr.Record(op.traceID, obs.SpanCombinerWait, batchOpKind(op.kind),
					op.enq, now, int64(len(batch)), int64(si))
			}
		}
	}
	for _, op := range batch {
		complete(op)
	}
}

// batchOpKind maps a combiner submission kind to its trace op kind.
func batchOpKind(kind int) obs.OpKind {
	switch kind {
	case opGet:
		return obs.OpGet
	case opContains:
		return obs.OpContains
	case opInsert:
		return obs.OpInsert
	case opDelete:
		return obs.OpDelete
	default:
		return obs.OpUpdate
	}
}

// complete publishes op's results and wakes a parked submitter. The send is
// non-blocking: the channel may still hold a stale token, which the
// submitter's wait loop tolerates.
func complete(op *batchOp) {
	op.done.Store(true)
	select {
	case op.wake <- struct{}{}:
	default:
	}
}

// drainTail closes the runner-handoff race: an op pushed between the
// runner's last empty pop and its busy release would otherwise wait on a
// runner that already left. Whoever releases the flag re-checks the ring
// and re-elects while work is visible; a failed CAS means another runner
// is active and has inherited the obligation.
func (h *Handle) drainTail(sh *shard, si int, c *combiner) {
	for c.ring.Size() > 0 && c.busy.CompareAndSwap(false, true) {
		h.runBatches(sh, si, c)
		c.busy.Store(false)
	}
}

// drainCombiners flushes every shard's submission ring (bounded rounds, so
// a concurrent submission storm cannot livelock it). Queued ops always have
// a live submitter that will run them — the combiner is flat combining, so
// this is not needed for progress — but Close and Quiesce call it so
// "quiescent" includes "no coalesced op still queued" without waiting for
// the application goroutines to be rescheduled. Caller holds maintMu (the
// drain handle is reused across calls).
func (f *Forest) drainCombiners() {
	if f.batchN <= 1 {
		return
	}
	if f.drainH == nil {
		f.drainH = f.NewHandle()
	}
	for si, sh := range f.shards {
		c := sh.comb
		for rounds := 0; c.ring.Size() > 0 && rounds < 64; rounds++ {
			if c.busy.CompareAndSwap(false, true) {
				f.drainH.runBatches(sh, si, c)
				c.busy.Store(false)
			} else {
				runtime.Gosched()
			}
		}
	}
}
