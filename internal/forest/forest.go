// Package forest shards the uint64 key space across S independent
// STM-domain + tree pairs, turning the paper's single-domain
// speculation-friendly tree into a horizontally scalable structure.
//
// Each shard owns a private stm.STM (its own global version clock), a
// private tree of any trees.Kind, and — for the speculation-friendly
// variants — its own background maintenance goroutine. Keys are routed to
// shards by a fixed avalanche hash of the key, so the hot single points of
// the one-domain design (version-clock increments, the lone rotator
// goroutine, commit-time lock contention) all split S ways while every
// intra-shard property of the paper's algorithm is preserved unchanged.
//
// # Atomicity semantics
//
//   - Single-key operations (Insert, Delete, Get, Contains) are exactly as
//     atomic as on the underlying tree: one transaction on one shard.
//   - Composite single-shard transactions (Handle.Update) are routed to the
//     shard owning the routing key and are fully atomic there. Keys from
//     other shards must not be touched inside the transaction (the Op
//     methods panic if they are); use SameShard to check co-location first.
//   - Composite cross-shard transactions (Handle.Atomic) may read and write
//     any keys and commit atomically — all effects or none — through the
//     internal/ftx coordinator's shard-ordered two-phase commit over the
//     per-shard STM domains. When every touched key lands on one shard the
//     coordinator falls back to a single ordinary transaction, so Atomic
//     costs the 2PC machinery only when a transaction actually spans
//     shards; SameShard-routed Update remains the cheapest composition.
//   - Move(src, dst) is atomic always: one single-shard transaction when
//     SameShard(src, dst), one cross-shard ftx transaction otherwise. (The
//     pre-ftx best-effort insert-first/compensate protocol and its move
//     claims are gone.)
//   - Size and Keys compose per-shard snapshots; each shard's contribution
//     is internally consistent but the shards are not cut at one instant.
//   - Range visits [lo, hi] in ascending key order by k-way-merging one
//     ordered snapshot per shard, under exactly the Size/Keys consistency
//     contract: every shard's contribution is one consistent snapshot of
//     the interval, but the shards are not cut at one instant, so a value
//     moving between shards concurrently can be seen at both keys or at
//     neither.
//
// With one shard a Forest is semantically identical to the bare tree.
package forest

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/ftx"
	"repro/internal/obs"
	"repro/internal/sftree"
	"repro/internal/stm"
	"repro/internal/trees"
)

// shard is one partition: a private STM domain and a tree living in it,
// plus the per-shard scheduling state of the shared maintenance pool
// (maint.go). mt is nil for kinds without maintenance.
type shard struct {
	stm *stm.STM
	m   trees.Map
	mt  trees.HintMaintained

	// intents is the shard's cross-shard-commit intent table: every
	// coordinator (Handle.Atomic) of the forest claims its touched keys
	// here for the prepare→finalize window (see internal/ftx).
	intents ftx.IntentTable

	// claim serializes maintenance drivers: a pool worker owns the shard's
	// maintenance (hint drain + sweep) only while holding the claim, which
	// preserves the tree's single-driver contract under a shared pool.
	claim atomic.Bool
	// nextSweep is the unix-nano deadline of the shard's next fallback
	// sweep; sweepGap is the current adaptive gap (capped exponential idle
	// backoff, see maint.go). nextDrain paces hint-drain sessions so
	// repairs batch up instead of issuing one structural transaction per
	// committed update (maint.go's drainGap).
	nextSweep atomic.Int64
	sweepGap  atomic.Int64
	nextDrain atomic.Int64

	// pacing is the shard's current adaptive hint-drain gap in nanoseconds
	// (maint.go): it backs off from the forest's base gap when the shard's
	// structural transactions keep failing — i.e. keep aborting against
	// application transactions — and tightens back as they succeed again.
	// maintFails/maintOKs are the last observed structural counter totals
	// the adaptation diffs against; they are plain fields serialized by the
	// claim flag (the release/acquire pair of its Store/CompareAndSwap).
	pacing     atomic.Int64
	maintFails uint64
	maintOKs   uint64

	// comb is the shard's op combiner (nil unless WithBatching): single-key
	// operations submit into its ring and are applied in coalesced batch
	// transactions by an elected runner (combine.go).
	comb *combiner
}

// Forest is a sharded transactional map from uint64 keys to uint64 values.
// Create one with New; every goroutine accessing it must use its own Handle.
type Forest struct {
	kind   trees.Kind
	shards []*shard
	// maintMu serializes every toggle of the maintenance worker pool
	// (Close, and the pause/resume bracket of the statistics accessors and
	// Quiesce): Close may be called concurrently with Stats/ShardStats, and
	// without the lock a racing resume could restart maintenance after
	// Close returned (besides the plain-field data race on maint itself).
	maintMu sync.Mutex
	maint   bool // background maintenance currently enabled; guarded by maintMu
	// pool is the shared maintenance worker pool (nil when maintenance is
	// disabled, stopped, or the kind has none); maintWorkers is its size
	// ceiling, maintMin its floor (equal when the size is pinned — see
	// WithMaintWorkerRange). All guarded by maintMu; pc accumulates pool
	// counters across pause/resume generations.
	pool         *maintPool
	maintWorkers int
	maintMin     int
	pc           poolCounters
	// drainPacing is the per-shard base hint-drain pacing gap of the
	// maintenance pool; pacingFixed pins every shard to it exactly
	// (WithMaintPacing), otherwise the per-shard gap adapts between the base
	// and pacingBackoffCap times it (maint.go). Both immutable after New.
	drainPacing time.Duration
	pacingFixed bool

	// batchN/batchWait are the combiner dials (WithBatching; batchN <= 1
	// means batching is off), immutable after New. drainH is the internal
	// handle Close/Quiesce use to flush the combiner rings, created lazily
	// under maintMu.
	batchN    int
	batchWait time.Duration
	drainH    *Handle

	// fr, batchH and tracer are the optional observability hooks (obs.go):
	// the flight recorder receives combiner-batch and maintenance events,
	// the histogram the combiner's batch sizes, and the tracer the sampled
	// per-operation span timelines (handle.go's traceStart/traceEnd).
	// Atomic pointers because they attach while application goroutines are
	// already running batches.
	fr     atomic.Pointer[obs.FlightRecorder]
	batchH atomic.Pointer[obs.Histogram]
	tracer atomic.Pointer[obs.Tracer]
	// coordMu/coords track every cross-shard coordinator handed out by
	// Handle.Atomic, so the registry's ftx collector can aggregate their
	// per-coordinator snapshots into forest-wide series.
	coordMu sync.Mutex
	coords  []*ftx.Coordinator

	// wal is the attached write-ahead log (nil for a volatile forest):
	// every committed mutating transaction appends one record through it,
	// registered as a reliable post-commit hook so aborted attempts log
	// nothing. Set once by AttachWAL before concurrent use.
	wal *durable.Log
	// ckptThs are the checkpointer's per-shard STM threads (SnapshotShard),
	// lazily created and touched only by the single checkpoint driver.
	ckptThs []*stm.Thread
}

// AttachWAL connects the forest to a write-ahead log: from now on every
// committed mutating transaction — single-key updates, composed Update
// transactions, moves, and the per-shard effects of cross-shard Atomic
// commits — appends one durable record carrying its commit-clock position.
// Attach before the forest is shared between goroutines (repro.Open does it
// between recovery replay and returning); reads and the maintenance
// subsystem are unaffected, since structural transactions never change the
// abstraction's contents.
func (f *Forest) AttachWAL(l *durable.Log) {
	f.wal = l
}

// SnapshotShard implements durable.Source: one consistent read-only
// snapshot of shard si streamed through fn, returning the shard-clock
// position the snapshot was cut at. Single-caller (the checkpoint driver).
func (f *Forest) SnapshotShard(si int, fn func(k, v uint64)) uint64 {
	sh := f.shards[si]
	th := f.ckptThread(si)
	var cut uint64
	var snap []kv
	// Full read tracking (CTL) regardless of the domain default, so the
	// snapshot is one consistent cut; fn is fed only after the snapshot
	// transaction commits (retries reset the buffer).
	th.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		snap = snap[:0]
		sh.m.RangeTx(tx, 0, ^uint64(0), func(k, v uint64) bool {
			snap = append(snap, kv{k, v})
			return true
		})
		cut = tx.Snapshot()
	})
	for _, e := range snap {
		fn(e.k, e.v)
	}
	return cut
}

// SnapshotShardKeys implements durable.DeltaSource: one consistent read of
// just the given keys in shard si — present keys report their value, absent
// ones report ok=false — returning the shard-clock position the lookup
// transaction was cut at. This is what makes a delta checkpoint's cost
// proportional to churn: the checkpointer reads only the keys the write-
// ahead log marked dirty, never scanning the shard. Single-caller (the
// checkpoint driver), like SnapshotShard.
func (f *Forest) SnapshotShardKeys(si int, keys []uint64, fn func(k, v uint64, ok bool)) uint64 {
	sh := f.shards[si]
	th := f.ckptThread(si)
	var cut uint64
	type kvOK struct {
		k, v uint64
		ok   bool
	}
	snap := make([]kvOK, 0, len(keys))
	// Full read tracking (CTL) for the same reason as SnapshotShard: the
	// per-key reads must form one consistent cut, and fn is fed only after
	// the transaction commits (retries reset the buffer).
	th.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		snap = snap[:0]
		for _, k := range keys {
			v, ok := sh.m.GetTx(tx, k)
			snap = append(snap, kvOK{k, v, ok})
		}
		cut = tx.Snapshot()
	})
	for _, e := range snap {
		fn(e.k, e.v, e.ok)
	}
	return cut
}

// ckptThread returns shard si's lazily created checkpointer STM thread
// (touched only by the single checkpoint driver).
func (f *Forest) ckptThread(si int) *stm.Thread {
	if f.ckptThs == nil {
		f.ckptThs = make([]*stm.Thread, len(f.shards))
	}
	if f.ckptThs[si] == nil {
		f.ckptThs[si] = f.shards[si].stm.NewThread()
	}
	return f.ckptThs[si]
}

// The forest is the durable layer's checkpoint source, per-key delta reads
// included.
var _ durable.DeltaSource = (*Forest)(nil)

// Option configures New.
type Option func(*cfg)

type cfg struct {
	shards       int
	mode         stm.Mode
	cm           stm.ContentionManager
	maintenance  bool
	maintWorkers int // pool ceiling (0 = default)
	maintMin     int // pool floor (0 = default)
	maintPacing  time.Duration
	pacingFixed  bool
	yieldEvery   int
	batchN       int
	batchWait    time.Duration
}

// WithShards sets the number of partitions (default 1; must be >= 1).
func WithShards(n int) Option { return func(c *cfg) { c.shards = n } }

// WithTMMode selects the TM algorithm of every shard's STM domain.
func WithTMMode(m stm.Mode) Option { return func(c *cfg) { c.mode = m } }

// WithContentionManager selects the abort→retry policy of every shard's STM
// domain (default stm.Backoff; nil is ignored).
func WithContentionManager(cm stm.ContentionManager) Option {
	return func(c *cfg) { c.cm = cm }
}

// WithoutMaintenance suppresses the maintenance worker pool; the caller
// drives maintenance manually via Quiesce.
func WithoutMaintenance() Option { return func(c *cfg) { c.maintenance = false } }

// WithMaintWorkers pins the shared maintenance worker pool to exactly n
// workers, disabling the adaptive sizing. The pool drains hint queues
// across all shards and runs the fallback sweeps, so its size bounds the
// forest's total maintenance CPU regardless of the shard count.
func WithMaintWorkers(n int) Option {
	return func(c *cfg) {
		if n > 0 {
			c.maintWorkers = n
			c.maintMin = n
		}
	}
}

// WithMaintWorkerRange lets the maintenance pool size itself between lo and
// hi workers (the default is [1, min(shards, GOMAXPROCS/2)]): between drain
// quanta the pool grows a worker when the hint backlog outruns the active
// workers' drain quantum while they are busy, and parks one when the
// backlog is gone and the active workers sit idle (see maint.go's
// sizePolicy). lo must be >= 1 and hi >= lo; lo == hi pins the size, which
// is what WithMaintWorkers does.
func WithMaintWorkerRange(lo, hi int) Option {
	return func(c *cfg) {
		if lo >= 1 && hi >= lo {
			c.maintMin = lo
			c.maintWorkers = hi
		}
	}
}

// defaultMaintWorkers sizes the pool when WithMaintWorkers is not given.
func defaultMaintWorkers(shards int) int {
	return max(1, min(shards, runtime.GOMAXPROCS(0)/2))
}

// WithMaintPacing pins the per-shard hint-drain pacing gap of the shared
// maintenance pool to exactly d: hints younger than the gap wait and
// coalesce, bounding the rate of structural transactions maintenance
// injects against the application's. 0 disables pacing (every scan with
// backlog drains immediately); negative values are ignored. Exposed so the
// benchmark harness can sweep the gap against abort rates.
//
// Without this option the gap adapts per shard: it starts at the 2ms
// default and backs off — up to pacingBackoffCap times the base — while
// the shard's structural transactions keep failing against application
// traffic, tightening back as they succeed (see maint.go's scan).
func WithMaintPacing(d time.Duration) Option {
	return func(c *cfg) {
		if d >= 0 {
			c.maintPacing = d
			c.pacingFixed = true
		}
	}
}

// WithYield enables the STM interleaving simulation on every shard
// (stm.WithYield).
func WithYield(n int) Option { return func(c *cfg) { c.yieldEvery = n } }

// WithBatching routes the forest's single-key operations (Insert, Delete,
// Get, Contains, Update) through a per-shard op combiner: concurrent
// submissions coalesce into batches of up to n operations, each batch
// applied in ONE transaction by a runner elected among the submitters (see
// combine.go for the protocol and the linearizability argument). wait
// selects the coalescing policy: 0 (the usual choice) is drain-only — an
// uncontended submitter runs its op directly and batches form only from
// ops that queued while a runner was busy; wait > 0 is linger mode — every
// op enqueues and a runner keeps collecting while scheduler yields keep
// producing ops, up to wait, maximizing coalescing at a bounded latency
// cost.
//
// Batching pays off on write-contended shards, where it replaces abort
// storms with conflict-free serial batches; on read-dominated uncontended
// workloads it serializes reads that would have run in parallel, so leave
// it off there. n <= 1 disables batching (the default).
func WithBatching(n int, wait time.Duration) Option {
	return func(c *cfg) {
		c.batchN = n
		if wait > 0 {
			c.batchWait = wait
		}
	}
}

// New creates an empty forest of the given tree kind. Unless
// WithoutMaintenance is given, kinds with maintenance are serviced by a
// shared pool of maintenance workers started immediately (WithMaintWorkers
// sizes it); Close stops the pool.
func New(kind trees.Kind, opts ...Option) *Forest {
	c := cfg{shards: 1, mode: stm.CTL, maintenance: true, maintPacing: drainGap}
	for _, o := range opts {
		o(&c)
	}
	if c.shards < 1 {
		panic(fmt.Sprintf("forest: shard count %d < 1", c.shards))
	}
	if c.maintWorkers == 0 {
		c.maintWorkers = defaultMaintWorkers(c.shards)
	}
	if c.maintMin == 0 {
		c.maintMin = 1 // default: adaptive between 1 and the ceiling
	}
	f := &Forest{kind: kind, shards: make([]*shard, c.shards), maint: c.maintenance, drainPacing: c.maintPacing,
		pacingFixed: c.pacingFixed, batchN: c.batchN, batchWait: c.batchWait}
	maintained := false
	now := time.Now().UnixNano()
	for i := range f.shards {
		s := stm.New(stm.WithMode(c.mode), stm.WithContentionManager(c.cm), stm.WithYield(c.yieldEvery))
		sh := &shard{stm: s, m: trees.New(kind, s)}
		if c.batchN > 1 {
			sh.comb = newCombiner(c.batchN, c.batchWait)
		}
		if mt, ok := trees.HintMaintainedOf(sh.m); ok {
			sh.mt = mt
			sh.sweepGap.Store(int64(sweepGapMin))
			sh.nextSweep.Store(now)
			sh.pacing.Store(int64(c.maintPacing))
			maintained = true
		}
		f.shards[i] = sh
	}
	if c.maintenance && maintained {
		f.maintWorkers = min(c.maintWorkers, c.shards)
		f.maintMin = min(c.maintMin, f.maintWorkers)
		f.startPool()
	} else {
		f.maint = false
	}
	return f
}

// Kind reports the tree library backing every shard.
func (f *Forest) Kind() trees.Kind { return f.kind }

// Shards reports the number of partitions.
func (f *Forest) Shards() int { return len(f.shards) }

// Batching reports the combiner dials: the max batch size (0 or 1 when
// batching is off) and the runner's linger.
func (f *Forest) Batching() (int, time.Duration) { return f.batchN, f.batchWait }

// Close stops the maintenance worker pool. The forest remains fully usable
// (readable and writable); only the structural upkeep stops. Closing an
// already-closed forest is a documented no-op, and Close is safe to call
// concurrently with Stats/ShardStats/MaintenanceStats — maintenance is
// guaranteed stopped once Close and any overlapping accessors return.
func (f *Forest) Close() {
	f.maintMu.Lock()
	defer f.maintMu.Unlock()
	f.drainCombiners()
	f.maint = false
	if f.pool != nil {
		f.pool.stop()
		f.pool = nil
	}
}

// pauseMaintenance stops the maintenance worker pool and returns the
// function that restarts it. Per-thread STM counters are plain fields
// readable only while their owning goroutine is quiet, and the trees'
// maintenance surface is single-driver, so both the statistics accessors
// and Quiesce bracket themselves with this. The maintenance lock is held
// until the returned resume function runs, so a concurrent Close cannot
// interleave with the pause/resume bracket (and the resume can never undo
// a Close).
func (f *Forest) pauseMaintenance() func() {
	f.maintMu.Lock()
	if !f.maint || f.pool == nil {
		f.maintMu.Unlock()
		return func() {}
	}
	f.pool.stop()
	f.pool = nil
	return func() {
		defer f.maintMu.Unlock()
		f.startPool()
	}
}

// Quiesce drains maintenance work on every shard (up to maxPasses each):
// queued hints first, then full sweeps until clean. The worker pool is
// paused for the duration (the per-tree drains are single-driver).
func (f *Forest) Quiesce(maxPasses int) {
	f.maintMu.Lock()
	f.drainCombiners()
	f.maintMu.Unlock()
	defer f.pauseMaintenance()()
	for _, sh := range f.shards {
		trees.Quiesce(sh.m, maxPasses)
	}
}

// mix is the splitmix64 finalizer: a full-avalanche bijection on uint64, so
// dense key ranges (the benchmark's [0, range) universe) spread evenly over
// shards instead of striping.
func mix(k uint64) uint64 {
	k += 0x9e3779b97f4a7c15
	k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9
	k = (k ^ (k >> 27)) * 0x94d049bb133111eb
	return k ^ (k >> 31)
}

// ShardOf returns the index of the shard owning key k.
func (f *Forest) ShardOf(k uint64) int {
	if len(f.shards) == 1 {
		return 0
	}
	return int(mix(k) % uint64(len(f.shards)))
}

// SameShard reports whether k1 and k2 are co-located, i.e. whether a
// composite transaction (Update, atomic Move) may span both keys.
func (f *Forest) SameShard(k1, k2 uint64) bool { return f.ShardOf(k1) == f.ShardOf(k2) }

// Stats returns the STM statistics summed over all shards. Running
// maintenance goroutines are paused while their counters are read; caller
// handles must be quiescent (as for stm.Thread.Stats).
func (f *Forest) Stats() stm.Stats {
	defer f.pauseMaintenance()()
	var t stm.Stats
	for _, sh := range f.shards {
		t.Add(sh.stm.TotalStats())
	}
	return t
}

// ShardStats returns each shard's own STM statistics, indexed by shard,
// under the same quiescence contract as Stats.
func (f *Forest) ShardStats() []stm.Stats {
	defer f.pauseMaintenance()()
	out := make([]stm.Stats, len(f.shards))
	for i, sh := range f.shards {
		out[i] = sh.stm.TotalStats()
	}
	return out
}

// MaintenanceStats sums structural-activity counters over all shards
// (zero value for kinds without maintenance).
func (f *Forest) MaintenanceStats() sftree.Stats {
	var t sftree.Stats
	for _, sh := range f.shards {
		if sf, ok := sh.m.(interface{ Stats() sftree.Stats }); ok {
			t.Add(sf.Stats())
		}
	}
	return t
}

// Rotations sums structural rotations over shards whose kind exposes them.
func (f *Forest) Rotations() (uint64, bool) {
	var total uint64
	any := false
	for _, sh := range f.shards {
		if r, ok := trees.Rotations(sh.m); ok {
			total += r
			any = true
		}
	}
	return total, any
}
