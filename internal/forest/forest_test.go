package forest

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/stm"
	"repro/internal/trees"
)

func TestShardRouting(t *testing.T) {
	f := New(trees.SFOpt, WithShards(8), WithoutMaintenance())
	defer f.Close()
	counts := make([]int, f.Shards())
	for k := uint64(0); k < 1<<12; k++ {
		si := f.ShardOf(k)
		if si < 0 || si >= f.Shards() {
			t.Fatalf("ShardOf(%d) = %d out of range", k, si)
		}
		if f.ShardOf(k) != si {
			t.Fatal("ShardOf is not stable")
		}
		if f.SameShard(k, k) != true {
			t.Fatal("SameShard(k,k) = false")
		}
		if f.SameShard(k, k+1) != (si == f.ShardOf(k+1)) {
			t.Fatal("SameShard disagrees with ShardOf")
		}
		counts[si]++
	}
	// The avalanche hash must spread a dense key range roughly evenly: no
	// shard may be empty or hold more than twice its fair share.
	fair := int(1<<12) / f.Shards()
	for si, c := range counts {
		if c == 0 || c > 2*fair {
			t.Fatalf("shard %d holds %d of %d keys (fair share %d)", si, c, 1<<12, fair)
		}
	}
}

func TestSingleShardIsPassthrough(t *testing.T) {
	f := New(trees.SF, WithShards(1), WithoutMaintenance())
	defer f.Close()
	for k := uint64(0); k < 100; k++ {
		if f.ShardOf(k) != 0 {
			t.Fatalf("ShardOf(%d) = %d with one shard", k, f.ShardOf(k))
		}
		if !f.SameShard(k, k*7919) {
			t.Fatal("SameShard false with one shard")
		}
	}
}

func TestBasicOpsAcrossShards(t *testing.T) {
	f := New(trees.SFOpt, WithShards(4))
	defer f.Close()
	h := f.NewHandle()
	const n = 512
	for k := uint64(0); k < n; k++ {
		if !h.Insert(k, k*10) {
			t.Fatalf("insert %d failed", k)
		}
		if h.Insert(k, 1) {
			t.Fatalf("duplicate insert %d succeeded", k)
		}
	}
	if h.Len() != n {
		t.Fatalf("len = %d, want %d", h.Len(), n)
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := h.Get(k); !ok || v != k*10 {
			t.Fatalf("get %d = (%d,%v)", k, v, ok)
		}
	}
	keys := h.Keys()
	if len(keys) != n {
		t.Fatalf("keys: %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("unsorted merged keys at %d", i)
		}
	}
	for k := uint64(0); k < n; k += 2 {
		if !h.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if h.Len() != n/2 {
		t.Fatalf("len after deletes = %d", h.Len())
	}
	// Per-shard operation accounting must cover every routed op.
	var routed uint64
	for _, c := range h.OpsPerShard() {
		routed += c
	}
	if routed == 0 {
		t.Fatal("no routed operations recorded")
	}
}

func TestMoveSemantics(t *testing.T) {
	f := New(trees.SFOpt, WithShards(4), WithoutMaintenance())
	defer f.Close()
	h := f.NewHandle()

	// Find a same-shard pair and a cross-shard pair.
	same, cross := uint64(0), uint64(0)
	for k := uint64(1); k < 1000; k++ {
		if f.SameShard(100, k) && k != 100 && same == 0 {
			same = k
		}
		if !f.SameShard(100, k) && cross == 0 {
			cross = k
		}
	}
	if same == 0 || cross == 0 {
		t.Fatal("could not find shard pairs")
	}

	h.Insert(100, 42)
	if !h.Move(100, same) {
		t.Fatal("same-shard move failed")
	}
	if v, ok := h.Get(same); !ok || v != 42 {
		t.Fatal("value lost in same-shard move")
	}
	if !h.Move(same, cross) {
		t.Fatal("cross-shard move failed")
	}
	if v, ok := h.Get(cross); !ok || v != 42 {
		t.Fatal("value lost in cross-shard move")
	}
	if h.Contains(100) || h.Contains(same) {
		t.Fatal("source keys survived moves")
	}
	// Move onto an occupied destination must fail and restore the source.
	h.Insert(100, 7)
	if h.Move(cross, 100) {
		t.Fatal("move onto occupied destination succeeded")
	}
	if v, ok := h.Get(cross); !ok || v != 42 {
		t.Fatal("failed cross-shard move did not restore the source")
	}
	// Moving an absent key fails.
	if h.Move(99999, 1) {
		t.Fatal("move of absent key succeeded")
	}
}

func TestUpdateRoutedAndGuarded(t *testing.T) {
	f := New(trees.SFOpt, WithShards(4), WithoutMaintenance())
	defer f.Close()
	h := f.NewHandle()

	// A composed same-shard move through Update.
	var k2 uint64
	for k := uint64(1); ; k++ {
		if f.SameShard(5, k) && k != 5 {
			k2 = k
			break
		}
	}
	h.Insert(5, 55)
	h.Update(5, func(op *Op) {
		if v, ok := op.Get(5); ok && !op.Contains(k2) {
			op.Delete(5)
			op.Insert(k2, v)
		}
	})
	if h.Contains(5) {
		t.Fatal("composed delete not applied")
	}
	if v, ok := h.Get(k2); !ok || v != 55 {
		t.Fatal("composed insert not applied")
	}

	// Touching a foreign-shard key inside the transaction must panic.
	var foreign uint64
	for k := uint64(0); ; k++ {
		if !f.SameShard(5, k) {
			foreign = k
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("foreign-shard access inside Update did not panic")
		}
	}()
	h.Update(5, func(op *Op) { op.Contains(foreign) })
}

// TestSingleShardMatchesBareTree drives an identical deterministic operation
// stream against a one-shard forest and a bare tree of the same kind: every
// return value and the final key sets must agree exactly (the forest with
// S=1 is the bare tree).
func TestSingleShardMatchesBareTree(t *testing.T) {
	for _, kind := range []trees.Kind{trees.SF, trees.SFOpt, trees.RB} {
		t.Run(string(kind), func(t *testing.T) {
			f := New(kind, WithShards(1), WithContentionManager(stm.Suicide()), WithoutMaintenance())
			defer f.Close()
			fh := f.NewHandle()

			s := stm.New(stm.WithContentionManager(stm.Suicide()))
			bare := trees.New(kind, s)
			th := s.NewThread()

			rng := rand.New(rand.NewSource(99))
			const keyRange = 1 << 9
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(keyRange))
				switch rng.Intn(4) {
				case 0:
					if fh.Insert(k, k*3) != bare.Insert(th, k, k*3) {
						t.Fatalf("op %d: insert(%d) diverged", i, k)
					}
				case 1:
					if fh.Delete(k) != bare.Delete(th, k) {
						t.Fatalf("op %d: delete(%d) diverged", i, k)
					}
				case 2:
					fv, fok := fh.Get(k)
					bv, bok := bare.Get(th, k)
					if fv != bv || fok != bok {
						t.Fatalf("op %d: get(%d) diverged", i, k)
					}
				default:
					src, dst := k, uint64(rng.Intn(keyRange))
					if fh.Move(src, dst) != trees.Move(bare, th, src, dst) {
						t.Fatalf("op %d: move(%d,%d) diverged", i, src, dst)
					}
				}
			}
			if !reflect.DeepEqual(fh.Keys(), bare.Keys(th)) {
				t.Fatal("final key sets diverged")
			}
		})
	}
}

// TestConcurrentStress hammers a multi-shard forest from several goroutines
// over disjoint key slices, then verifies the surviving set against a model.
func TestConcurrentStress(t *testing.T) {
	f := New(trees.SFOpt, WithShards(4), WithYield(4))
	defer f.Close()
	const goroutines = 4
	const perG = 3000
	type result struct{ final map[uint64]uint64 }
	results := make([]result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := f.NewHandle()
			rng := rand.New(rand.NewSource(int64(g)))
			model := make(map[uint64]uint64)
			base := uint64(g) << 32 // disjoint per-goroutine key slices
			for i := 0; i < perG; i++ {
				k := base + uint64(rng.Intn(512))
				switch rng.Intn(3) {
				case 0:
					if h.Insert(k, k) {
						model[k] = k
					}
				case 1:
					if h.Delete(k) {
						delete(model, k)
					}
				default:
					if _, ok := h.Get(k); ok != (func() bool { _, m := model[k]; return m })() {
						panic("get diverged from model")
					}
				}
			}
			results[g] = result{final: model}
		}(g)
	}
	wg.Wait()
	f.Quiesce(1 << 20)
	h := f.NewHandle()
	want := 0
	for _, r := range results {
		want += len(r.final)
		for k, v := range r.final {
			if got, ok := h.Get(k); !ok || got != v {
				t.Fatalf("key %d: got (%d,%v), want (%d,true)", k, got, ok, v)
			}
		}
	}
	if h.Len() != want {
		t.Fatalf("len = %d, want %d", h.Len(), want)
	}
	f.Close() // quiesce the maintenance threads before reading their stats
	if f.Stats().Commits == 0 {
		t.Fatal("no commits recorded")
	}
	if f.MaintenanceStats().Passes == 0 {
		t.Fatal("maintenance never ran on any shard")
	}
}
