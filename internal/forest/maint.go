// Maintenance worker pool: the forest-level half of hint-driven
// maintenance. Instead of one full-sweep goroutine per shard (a core burned
// per shard, whole-tree traversals on cold shards), a small shared pool of
// workers drains the shards' hint queues with targeted repairs and runs
// each shard's fallback sweep on a capped exponential idle backoff. Workers
// serialize per shard through a claim flag, preserving the trees'
// single-maintenance-driver contract; hints arriving on any shard wake the
// pool through the trees' notify callback.
package forest

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sftree"
)

// Scheduling parameters. The batch quantum and sweep backoff bounds come
// from the tree layer (sftree.MaintHintBatch, sftree.SweepGapMin/Max) so
// the standalone tree's loop and this pool run the same schedule by
// construction.
const (
	maintBatch  = sftree.MaintHintBatch
	sweepGapMin = sftree.SweepGapMin
	sweepGapMax = sftree.SweepGapMax
	// drainGap is the default per-shard hint-drain pacing gap: hints
	// younger than it wait and coalesce, bounding the rate of structural
	// transactions the pool injects against the application's (each repair
	// is a commit that can invalidate overlapping application
	// transactions). WithMaintPacing overrides it per forest.
	drainGap = 2 * time.Millisecond
	// idleWaitMax caps a worker's idle sleep so a lost deadline estimate
	// can never park a worker for long.
	idleWaitMax = sweepGapMax
	// pacingBackoffCap bounds the adaptive hint-drain gap at this multiple
	// of the forest's base gap (see adaptPacing).
	pacingBackoffCap = 16
	// resizeQuantum paces the pool's adaptive sizing: worker 0 reconsiders
	// the active worker count at most this often (see maybeResize).
	resizeQuantum = 10 * time.Millisecond
)

// poolCounters aggregates pool activity. It lives on the Forest, not the
// pool, so counts survive the pause/resume cycles of the statistics
// accessors.
type poolCounters struct {
	busyNanos   atomic.Uint64
	wakeups     atomic.Uint64
	sweeps      atomic.Uint64
	hintBatches atomic.Uint64
	grows       atomic.Uint64
	shrinks     atomic.Uint64
}

// PoolStats is a snapshot of the maintenance worker pool's activity.
type PoolStats struct {
	// Workers is the configured pool ceiling (0 when the forest runs no
	// maintenance). The pool never runs more than this many maintenance
	// goroutines regardless of the shard count.
	Workers int
	// ActiveWorkers is the number of workers currently unparked (equal to
	// Workers when the size is pinned; 0 when the pool is stopped). The
	// pool resizes itself between the configured floor and Workers from the
	// hint backlog and its own utilization (see sizePolicy).
	ActiveWorkers int
	// Grows and Shrinks count adaptive size steps taken since New.
	Grows   uint64
	Shrinks uint64
	// BusyNanos is the cumulative time workers spent draining hints and
	// sweeping; utilization over a window of length d with w workers is
	// BusyNanos / (w·d).
	BusyNanos uint64
	// Wakeups counts idle workers woken by a hint-arrival notification.
	Wakeups uint64
	// Sweeps counts full fallback sweeps executed by the pool.
	Sweeps uint64
	// HintBatches counts shard claims that consumed at least one hint.
	HintBatches uint64
	// Backlog is the instantaneous number of queued hints across shards.
	Backlog int
	// PacingNanos is the mean current hint-drain pacing gap over the
	// maintained shards, in nanoseconds. With WithMaintPacing it equals the
	// pinned gap; otherwise it reflects where the per-shard adaptation
	// (abort-rate-driven backoff between the base gap and pacingBackoffCap
	// times it) currently sits.
	PacingNanos uint64
}

// PoolStats returns a snapshot of the pool's activity counters. Counters
// and the configured Workers size accumulate across Stats-induced
// pause/resume cycles and survive Close — Close freezes the numbers, it
// does not zero them.
func (f *Forest) PoolStats() PoolStats {
	backlog, maintained := 0, 0
	var pacing int64
	for _, sh := range f.shards {
		if sh.mt != nil {
			backlog += sh.mt.HintBacklog()
			pacing += sh.pacing.Load()
			maintained++
		}
	}
	if maintained > 0 {
		pacing /= int64(maintained)
	}
	f.maintMu.Lock()
	active := 0
	if f.pool != nil {
		active = int(f.pool.active.Load())
	}
	f.maintMu.Unlock()
	return PoolStats{
		Workers:       f.maintWorkers,
		ActiveWorkers: active,
		Grows:         f.pc.grows.Load(),
		Shrinks:       f.pc.shrinks.Load(),
		BusyNanos:     f.pc.busyNanos.Load(),
		Wakeups:       f.pc.wakeups.Load(),
		Sweeps:        f.pc.sweeps.Load(),
		HintBatches:   f.pc.hintBatches.Load(),
		Backlog:       backlog,
		PacingNanos:   uint64(pacing),
	}
}

// MaintWorkers reports the configured pool size.
func (f *Forest) MaintWorkers() int { return f.maintWorkers }

// maintPool is one generation of the worker pool (recreated on resume).
// All hi workers are spawned up front; workers beyond the active target
// park on the grow channel, so a size step is a channel send, not a
// goroutine spawn. Worker 0 never parks — it owns the resize step.
type maintPool struct {
	f    *Forest
	wake chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup
	rr   atomic.Uint64 // rotating scan offset for fairness

	lo, hi  int
	active  atomic.Int32 // target unparked worker count, in [lo, hi]
	running atomic.Int32 // current unparked worker count
	growc   chan struct{}
	// Resize window state, owned by worker 0 (plain fields).
	lastResize int64
	lastBusy   uint64
}

// startPool creates and starts a pool generation. Caller holds maintMu.
func (f *Forest) startPool() {
	p := &maintPool{
		f:     f,
		wake:  make(chan struct{}, f.maintWorkers),
		quit:  make(chan struct{}),
		lo:    f.maintMin,
		hi:    f.maintWorkers,
		growc: make(chan struct{}, f.maintWorkers),
	}
	p.active.Store(int32(p.lo))
	p.running.Store(int32(p.hi)) // workers beyond the target park themselves
	p.lastResize = time.Now().UnixNano()
	for _, sh := range f.shards {
		if sh.mt != nil {
			sh.mt.SetMaintNotify(p.notify)
		}
	}
	p.wg.Add(f.maintWorkers)
	for i := 0; i < f.maintWorkers; i++ {
		go p.worker(i)
	}
	f.pool = p
}

// stop terminates the pool and waits for every worker to exit; afterwards
// no goroutine drives any shard's maintenance. The trees' notify
// registrations are cleared so commit hooks stop signaling (and pinning) a
// dead pool generation; a later startPool re-registers against the new one.
func (p *maintPool) stop() {
	close(p.quit)
	p.wg.Wait()
	for _, sh := range p.f.shards {
		if sh.mt != nil {
			sh.mt.SetMaintNotify(nil)
		}
	}
}

// notify wakes up to one idle worker per pending token (the channel holds
// at most one token per worker). Non-blocking: invoked from application
// threads' commit hooks.
func (p *maintPool) notify() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// worker scans shards for maintenance work until the pool stops, sleeping
// — when a full scan finds nothing — until a hint notification or the
// earliest fallback-sweep deadline. Workers beyond the adaptive target park
// on the grow channel (worker 0 stays up and drives the resize step).
func (p *maintPool) worker(id int) {
	defer p.wg.Done()
	for {
		if id != 0 {
			for {
				r := p.running.Load()
				if r <= p.active.Load() {
					break
				}
				if !p.running.CompareAndSwap(r, r-1) {
					continue
				}
				select {
				case <-p.quit:
					return
				case <-p.growc:
					p.running.Add(1)
				}
			}
		} else {
			p.maybeResize()
		}
		for p.scan() {
			select {
			case <-p.quit:
				return
			default:
			}
			if id == 0 {
				p.maybeResize()
			}
		}
		d := p.nextWait()
		timer := time.NewTimer(d)
		select {
		case <-p.quit:
			timer.Stop()
			return
		case <-p.wake:
			timer.Stop()
			p.f.pc.wakeups.Add(1)
		case <-timer.C:
		}
	}
}

// maybeResize is worker 0's adaptive sizing step, at most once per
// resizeQuantum: it measures the pool's utilization over the window just
// ended (busy nanoseconds per active worker) and the instantaneous hint
// backlog, asks sizePolicy for the next size, and unparks or sheds workers
// to match. Growing is a token send to the grow channel; shrinking just
// lowers the target — surplus workers park themselves at the top of their
// loop.
func (p *maintPool) maybeResize() {
	if p.lo == p.hi {
		return // pinned size: nothing to adapt
	}
	now := time.Now().UnixNano()
	window := now - p.lastResize
	if window < int64(resizeQuantum) {
		return
	}
	busy := p.f.pc.busyNanos.Load()
	active := int(p.active.Load())
	util := float64(busy-p.lastBusy) / (float64(window) * float64(active))
	p.lastResize, p.lastBusy = now, busy
	backlog := 0
	for _, sh := range p.f.shards {
		if sh.mt != nil {
			backlog += sh.mt.HintBacklog()
		}
	}
	next := sizePolicy(active, p.lo, p.hi, backlog, util)
	switch {
	case next > active:
		p.active.Store(int32(next))
		p.f.pc.grows.Add(uint64(next - active))
		for i := active; i < next; i++ {
			select {
			case p.growc <- struct{}{}:
			default:
			}
		}
	case next < active:
		p.active.Store(int32(next))
		p.f.pc.shrinks.Add(uint64(active - next))
	}
}

// sizePolicy is the pure sizing step: the next active worker count given
// the current one, the configured [lo, hi] range, the queued-hint backlog
// across shards, and the pool's utilization over the window just ended.
// Grow one worker when the backlog exceeds what the active workers drain
// per quantum AND they are actually busy (backlog with idle workers means
// pacing, not capacity, is the bottleneck — more workers would not help);
// park one when the backlog is gone and the workers are near-idle. One
// step per quantum keeps the size from oscillating on bursty hint arrival.
func sizePolicy(active, lo, hi, backlog int, util float64) int {
	switch {
	case backlog > active*maintBatch && util > 0.5 && active < hi:
		return active + 1
	case backlog == 0 && util < 0.1 && active > lo:
		return active - 1
	default:
		return active
	}
}

// scan makes one fairness round over all shards, servicing every claimable
// shard that has hint backlog or a due fallback sweep. It reports whether
// any shard yielded work (the caller keeps scanning while true). The
// rotating start offset keeps one hot shard from shadowing the others.
func (p *maintPool) scan() bool {
	shards := p.f.shards
	start := int(p.rr.Add(1)) % len(shards)
	busy := false
	for i := 0; i < len(shards); i++ {
		sh := shards[(start+i)%len(shards)]
		if sh.mt == nil {
			continue
		}
		now := time.Now().UnixNano()
		backlog := sh.mt.HintBacklog() > 0 && now >= sh.nextDrain.Load()
		sweepDue := now >= sh.nextSweep.Load()
		if !backlog && !sweepDue {
			continue
		}
		if !sh.claim.CompareAndSwap(false, true) {
			continue // another worker is driving this shard right now
		}
		t0 := time.Now()
		hints, work := 0, 0
		if backlog {
			hints, work = sh.mt.DrainHints(maintBatch)
			sh.nextDrain.Store(time.Now().UnixNano() + p.adaptPacing(sh))
			if hints > 0 {
				p.f.pc.hintBatches.Add(1)
				if fr := p.f.fr.Load(); fr != nil {
					fr.Record(obs.EvMaintDrain, time.Since(t0), int64(hints), int64(work))
				}
			}
		}
		if sweepDue {
			s0 := time.Now()
			w := sh.mt.RunMaintenancePass()
			p.f.pc.sweeps.Add(1)
			if w > 0 {
				if fr := p.f.fr.Load(); fr != nil {
					fr.Record(obs.EvMaintSweep, time.Since(s0), int64(w), 0)
				}
			}
			// Adapt the fallback frequency: a productive sweep resets the
			// gap, an idle one doubles it up to the cap.
			gap := sh.sweepGap.Load()
			if w > 0 {
				gap = int64(sweepGapMin)
			} else {
				gap = min(2*gap, int64(sweepGapMax))
			}
			sh.sweepGap.Store(gap)
			sh.nextSweep.Store(time.Now().UnixNano() + gap)
			work += w
		}
		sh.claim.Store(false)
		p.f.pc.busyNanos.Add(uint64(time.Since(t0)))
		if hints > 0 || work > 0 {
			busy = true
		}
	}
	return busy
}

// adaptPacing returns the gap to apply after a drain session and updates
// the shard's adaptive pacing state. The signal is the shard's structural
// failure counters (FailedRot/FailedRemove — structural transactions that
// returned false, i.e. aborted against concurrent application traffic)
// diffed against the successes since the previous drain: a
// failure-dominated session doubles the gap (up to pacingBackoffCap times
// the base), so repairs wait for the contention to pass and coalesce
// harder, while a clean session halves it back toward the base. With
// WithMaintPacing the gap is pinned and this degenerates to the constant.
// Caller holds the shard's claim, which serializes the plain last-seen
// fields.
func (p *maintPool) adaptPacing(sh *shard) int64 {
	base := int64(p.f.drainPacing)
	if p.f.pacingFixed {
		return base
	}
	sf, ok := sh.m.(interface{ Stats() sftree.Stats })
	if !ok {
		return base
	}
	st := sf.Stats()
	fails := st.FailedRot + st.FailedRemove
	oks := st.Rotations + st.Removals + st.TargetedRepairs
	dFail := fails - sh.maintFails
	dOK := oks - sh.maintOKs
	sh.maintFails, sh.maintOKs = fails, oks
	cur := pacePolicy(sh.pacing.Load(), base, dFail, dOK)
	sh.pacing.Store(cur)
	return cur
}

// pacePolicy is the pure adaptation step: the next drain gap given the
// current one, the configured base, and the failed/successful structural
// transaction counts of the session just ended.
func pacePolicy(cur, base int64, dFail, dOK uint64) int64 {
	switch {
	case dFail > dOK:
		// More failed than successful structural transactions since the
		// last drain: the shard is abort-hot, back off. A zero base still
		// backs off (from a 1ms floor), so disabled pacing only stays
		// disabled when pinned.
		floor := base
		if floor <= 0 {
			floor = int64(time.Millisecond)
		}
		return min(max(2*cur, floor), pacingBackoffCap*floor)
	case dFail == 0:
		// Clean session: tighten back toward the base.
		return max(cur/2, base)
	default:
		// Mixed session (some failures, not dominating): hold.
		return cur
	}
}

// nextWait returns how long an idle worker may sleep: until the earliest
// fallback-sweep deadline — or pending-backlog drain deadline — over all
// shards, clamped to (0, idleWaitMax]. A hint notification cuts the sleep
// short through the wake channel.
func (p *maintPool) nextWait() time.Duration {
	earliest := int64(1<<63 - 1)
	for _, sh := range p.f.shards {
		if sh.mt == nil {
			continue
		}
		if ns := sh.nextSweep.Load(); ns < earliest {
			earliest = ns
		}
		if sh.mt.HintBacklog() > 0 {
			// Paced-out backlog: wake for it when its drain gap expires.
			if nd := sh.nextDrain.Load(); nd < earliest {
				earliest = nd
			}
		}
	}
	d := time.Duration(earliest - time.Now().UnixNano())
	if d < 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	return min(d, idleWaitMax)
}
