// Maintenance worker pool: the forest-level half of hint-driven
// maintenance. Instead of one full-sweep goroutine per shard (a core burned
// per shard, whole-tree traversals on cold shards), a small shared pool of
// workers drains the shards' hint queues with targeted repairs and runs
// each shard's fallback sweep on a capped exponential idle backoff. Workers
// serialize per shard through a claim flag, preserving the trees'
// single-maintenance-driver contract; hints arriving on any shard wake the
// pool through the trees' notify callback.
package forest

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sftree"
)

// Scheduling parameters. The batch quantum and sweep backoff bounds come
// from the tree layer (sftree.MaintHintBatch, sftree.SweepGapMin/Max) so
// the standalone tree's loop and this pool run the same schedule by
// construction.
const (
	maintBatch  = sftree.MaintHintBatch
	sweepGapMin = sftree.SweepGapMin
	sweepGapMax = sftree.SweepGapMax
	// drainGap is the default per-shard hint-drain pacing gap: hints
	// younger than it wait and coalesce, bounding the rate of structural
	// transactions the pool injects against the application's (each repair
	// is a commit that can invalidate overlapping application
	// transactions). WithMaintPacing overrides it per forest.
	drainGap = 2 * time.Millisecond
	// idleWaitMax caps a worker's idle sleep so a lost deadline estimate
	// can never park a worker for long.
	idleWaitMax = sweepGapMax
)

// poolCounters aggregates pool activity. It lives on the Forest, not the
// pool, so counts survive the pause/resume cycles of the statistics
// accessors.
type poolCounters struct {
	busyNanos   atomic.Uint64
	wakeups     atomic.Uint64
	sweeps      atomic.Uint64
	hintBatches atomic.Uint64
}

// PoolStats is a snapshot of the maintenance worker pool's activity.
type PoolStats struct {
	// Workers is the configured pool size (0 when the forest runs no
	// maintenance). The pool never runs more than this many maintenance
	// goroutines regardless of the shard count.
	Workers int
	// BusyNanos is the cumulative time workers spent draining hints and
	// sweeping; utilization over a window of length d with w workers is
	// BusyNanos / (w·d).
	BusyNanos uint64
	// Wakeups counts idle workers woken by a hint-arrival notification.
	Wakeups uint64
	// Sweeps counts full fallback sweeps executed by the pool.
	Sweeps uint64
	// HintBatches counts shard claims that consumed at least one hint.
	HintBatches uint64
	// Backlog is the instantaneous number of queued hints across shards.
	Backlog int
}

// PoolStats returns a snapshot of the pool's activity counters. Counters
// and the configured Workers size accumulate across Stats-induced
// pause/resume cycles and survive Close — Close freezes the numbers, it
// does not zero them.
func (f *Forest) PoolStats() PoolStats {
	backlog := 0
	for _, sh := range f.shards {
		if sh.mt != nil {
			backlog += sh.mt.HintBacklog()
		}
	}
	return PoolStats{
		Workers:     f.maintWorkers,
		BusyNanos:   f.pc.busyNanos.Load(),
		Wakeups:     f.pc.wakeups.Load(),
		Sweeps:      f.pc.sweeps.Load(),
		HintBatches: f.pc.hintBatches.Load(),
		Backlog:     backlog,
	}
}

// MaintWorkers reports the configured pool size.
func (f *Forest) MaintWorkers() int { return f.maintWorkers }

// maintPool is one generation of the worker pool (recreated on resume).
type maintPool struct {
	f    *Forest
	wake chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup
	rr   atomic.Uint64 // rotating scan offset for fairness
}

// startPool creates and starts a pool generation. Caller holds maintMu.
func (f *Forest) startPool() {
	p := &maintPool{
		f:    f,
		wake: make(chan struct{}, f.maintWorkers),
		quit: make(chan struct{}),
	}
	for _, sh := range f.shards {
		if sh.mt != nil {
			sh.mt.SetMaintNotify(p.notify)
		}
	}
	p.wg.Add(f.maintWorkers)
	for i := 0; i < f.maintWorkers; i++ {
		go p.worker()
	}
	f.pool = p
}

// stop terminates the pool and waits for every worker to exit; afterwards
// no goroutine drives any shard's maintenance. The trees' notify
// registrations are cleared so commit hooks stop signaling (and pinning) a
// dead pool generation; a later startPool re-registers against the new one.
func (p *maintPool) stop() {
	close(p.quit)
	p.wg.Wait()
	for _, sh := range p.f.shards {
		if sh.mt != nil {
			sh.mt.SetMaintNotify(nil)
		}
	}
}

// notify wakes up to one idle worker per pending token (the channel holds
// at most one token per worker). Non-blocking: invoked from application
// threads' commit hooks.
func (p *maintPool) notify() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// worker scans shards for maintenance work until the pool stops, sleeping
// — when a full scan finds nothing — until a hint notification or the
// earliest fallback-sweep deadline.
func (p *maintPool) worker() {
	defer p.wg.Done()
	for {
		for p.scan() {
			select {
			case <-p.quit:
				return
			default:
			}
		}
		d := p.nextWait()
		timer := time.NewTimer(d)
		select {
		case <-p.quit:
			timer.Stop()
			return
		case <-p.wake:
			timer.Stop()
			p.f.pc.wakeups.Add(1)
		case <-timer.C:
		}
	}
}

// scan makes one fairness round over all shards, servicing every claimable
// shard that has hint backlog or a due fallback sweep. It reports whether
// any shard yielded work (the caller keeps scanning while true). The
// rotating start offset keeps one hot shard from shadowing the others.
func (p *maintPool) scan() bool {
	shards := p.f.shards
	start := int(p.rr.Add(1)) % len(shards)
	busy := false
	for i := 0; i < len(shards); i++ {
		sh := shards[(start+i)%len(shards)]
		if sh.mt == nil {
			continue
		}
		now := time.Now().UnixNano()
		backlog := sh.mt.HintBacklog() > 0 && now >= sh.nextDrain.Load()
		sweepDue := now >= sh.nextSweep.Load()
		if !backlog && !sweepDue {
			continue
		}
		if !sh.claim.CompareAndSwap(false, true) {
			continue // another worker is driving this shard right now
		}
		t0 := time.Now()
		hints, work := 0, 0
		if backlog {
			hints, work = sh.mt.DrainHints(maintBatch)
			sh.nextDrain.Store(time.Now().UnixNano() + int64(p.f.drainPacing))
			if hints > 0 {
				p.f.pc.hintBatches.Add(1)
			}
		}
		if sweepDue {
			w := sh.mt.RunMaintenancePass()
			p.f.pc.sweeps.Add(1)
			// Adapt the fallback frequency: a productive sweep resets the
			// gap, an idle one doubles it up to the cap.
			gap := sh.sweepGap.Load()
			if w > 0 {
				gap = int64(sweepGapMin)
			} else {
				gap = min(2*gap, int64(sweepGapMax))
			}
			sh.sweepGap.Store(gap)
			sh.nextSweep.Store(time.Now().UnixNano() + gap)
			work += w
		}
		sh.claim.Store(false)
		p.f.pc.busyNanos.Add(uint64(time.Since(t0)))
		if hints > 0 || work > 0 {
			busy = true
		}
	}
	return busy
}

// nextWait returns how long an idle worker may sleep: until the earliest
// fallback-sweep deadline — or pending-backlog drain deadline — over all
// shards, clamped to (0, idleWaitMax]. A hint notification cuts the sleep
// short through the wake channel.
func (p *maintPool) nextWait() time.Duration {
	earliest := int64(1<<63 - 1)
	for _, sh := range p.f.shards {
		if sh.mt == nil {
			continue
		}
		if ns := sh.nextSweep.Load(); ns < earliest {
			earliest = ns
		}
		if sh.mt.HintBacklog() > 0 {
			// Paced-out backlog: wake for it when its drain gap expires.
			if nd := sh.nextDrain.Load(); nd < earliest {
				earliest = nd
			}
		}
	}
	d := time.Duration(earliest - time.Now().UnixNano())
	if d < 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	return min(d, idleWaitMax)
}
