package forest

import (
	"testing"
	"time"

	"repro/internal/trees"
)

// TestSizePolicy pins the pure sizing step's decision table.
func TestSizePolicy(t *testing.T) {
	cases := []struct {
		name                    string
		active, lo, hi, backlog int
		util                    float64
		want                    int
	}{
		{"grow on busy backlog", 2, 1, 4, 2*maintBatch + 1, 0.9, 3},
		{"hold at ceiling", 4, 1, 4, 1000 * maintBatch, 0.9, 4},
		{"hold when idle despite backlog", 2, 1, 4, 2*maintBatch + 1, 0.1, 2},
		{"hold on small backlog", 2, 1, 4, maintBatch, 0.9, 2},
		{"shrink when drained and idle", 3, 1, 4, 0, 0.01, 2},
		{"hold at floor", 1, 1, 4, 0, 0.0, 1},
		{"hold when idle but backlogged", 2, 1, 4, 1, 0.01, 2},
		{"hold when drained but busy", 3, 1, 4, 0, 0.4, 3},
	}
	for _, c := range cases {
		if got := sizePolicy(c.active, c.lo, c.hi, c.backlog, c.util); got != c.want {
			t.Errorf("%s: sizePolicy(%d, [%d,%d], backlog %d, util %.2f) = %d, want %d",
				c.name, c.active, c.lo, c.hi, c.backlog, c.util, got, c.want)
		}
	}
}

// TestMaintWorkerRange: a ranged pool starts at the floor, stays within
// bounds, and the forest remains fully functional through load, quiesce,
// and close.
func TestMaintWorkerRange(t *testing.T) {
	f := New(trees.SFOpt, WithShards(4), WithMaintWorkerRange(1, 3))
	defer f.Close()
	if f.maintMin != 1 || f.maintWorkers != 3 {
		t.Fatalf("range wired as [%d, %d], want [1, 3]", f.maintMin, f.maintWorkers)
	}
	st := f.PoolStats()
	if st.ActiveWorkers < 1 || st.ActiveWorkers > 3 {
		t.Fatalf("ActiveWorkers = %d, want within [1, 3]", st.ActiveWorkers)
	}
	h := f.NewHandle()
	for i := uint64(0); i < 3000; i++ {
		h.Insert(i, i)
	}
	for i := uint64(0); i < 1500; i++ {
		h.Delete(i * 2)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st = f.PoolStats()
		if st.ActiveWorkers < 1 || st.ActiveWorkers > 3 {
			t.Fatalf("ActiveWorkers = %d escaped [1, 3]", st.ActiveWorkers)
		}
		if st.Backlog == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.Quiesce(64)
	for i := uint64(0); i < 1500; i++ {
		if i%2 == 0 {
			continue
		}
		if v, ok := h.Get(i); !ok || v != i {
			t.Fatalf("key %d = (%d, %v) after autoscaled maintenance, want (%d, true)", i, v, ok, i)
		}
	}
}

// TestMaintWorkersPinned: the fixed-size option keeps the adaptive sizing
// out of the picture entirely.
func TestMaintWorkersPinned(t *testing.T) {
	f := New(trees.SFOpt, WithShards(4), WithMaintWorkers(2))
	defer f.Close()
	if f.maintMin != 2 || f.maintWorkers != 2 {
		t.Fatalf("pinned size wired as [%d, %d], want [2, 2]", f.maintMin, f.maintWorkers)
	}
	h := f.NewHandle()
	for i := uint64(0); i < 500; i++ {
		h.Insert(i, i)
	}
	time.Sleep(30 * time.Millisecond)
	st := f.PoolStats()
	if st.ActiveWorkers != 2 {
		t.Fatalf("ActiveWorkers = %d, want pinned 2", st.ActiveWorkers)
	}
	if st.Grows != 0 || st.Shrinks != 0 {
		t.Fatalf("pinned pool resized (%d grows, %d shrinks)", st.Grows, st.Shrinks)
	}
}
