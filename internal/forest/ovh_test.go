package forest

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/trees"
)

func benchU20(b *testing.B, tr *obs.Tracer) {
	f := New(trees.SFOpt, WithShards(1))
	defer f.Close()
	if tr != nil {
		f.SetTracer(tr)
	}
	h := f.NewHandle()
	for i := uint64(0); i < 8192; i++ {
		h.Insert(i, i)
	}
	f.Quiesce(64)
	b.ResetTimer()
	k := uint64(0)
	for i := 0; i < b.N; i++ {
		// The u20 single-thread mix: 80% reads, 20% updates.
		if i%5 == 4 {
			h.Insert(k, k)
		} else {
			h.Get(k)
		}
		k = (k*2862933555777941757 + 3037000493) & 8191
	}
}

// BenchmarkHandleGetU20 is the tracing-off anchor of the overhead A/B in
// README's Tracing section.
func BenchmarkHandleGetU20(b *testing.B) { benchU20(b, nil) }

// BenchmarkHandleGetU20Traced64 is the same mix with 1-in-64 sampling.
func BenchmarkHandleGetU20Traced64(b *testing.B) { benchU20(b, obs.NewTracer(64, 4096)) }

// BenchmarkHandleGetU20Traced1 samples every op — the worst case.
func BenchmarkHandleGetU20Traced1(b *testing.B) { benchU20(b, obs.NewTracer(1, 4096)) }
