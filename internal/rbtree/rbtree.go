// Package rbtree implements a transaction-based red-black tree modelled on
// the Oracle Labs (formerly Sun) library that STAMP and synchrobench ship
// and that the paper uses as its primary baseline (§2, §5.1). Like that
// library it is sentinel-free (no shared NIL node, which would be a
// false-conflict hotspot) and keeps parent pointers; like all the
// "tightly coupled" baselines, each insert/delete transaction performs the
// abstraction modification, the structural adaptation, the threshold check
// and the rebalancing together, so rotations triggered near the root
// conflict with every concurrent traversal.
//
// The rebalancing logic follows the classical sentinel-free formulation
// (the one java.util.TreeMap uses), with every node access performed
// through the STM.
package rbtree

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/stm"
)

// Colors, stored in Node.Aux.
const (
	red   = uint64(0)
	black = uint64(1)
)

// Tree is a transactional red-black tree.
type Tree struct {
	s  *stm.STM
	ar *arena.Arena

	root stm.Word // arena.Ref of the root

	retired   atomic.Uint64
	rotations atomic.Uint64
}

// New creates an empty red-black tree on the given STM domain.
func New(s *stm.STM) *Tree {
	return &Tree{s: s, ar: arena.New()}
}

// Arena exposes the node arena for instrumentation.
func (t *Tree) Arena() *arena.Arena { return t.ar }

// Retired returns the number of physically deleted (never recycled) nodes;
// see the avltree package for why baselines retire rather than free.
func (t *Tree) Retired() uint64 { return t.retired.Load() }

// Rotations returns the number of rotations executed, including those of
// transaction attempts that later aborted (the counter the §5.5 comparison
// against the speculation-friendly tree's committed rotations uses).
func (t *Tree) Rotations() uint64 { return t.rotations.Load() }

func (t *Tree) node(r arena.Ref) *arena.Node { return t.ar.Get(r) }

// ElasticSafe reports that this tree must NOT run under elastic cutting:
// deletion replaces keys in place (successor copy), so a traversal whose
// earlier reads were cut can mis-route undetectably, and rotation writes
// computed from cut reads can commit structural corruption. See atomic.
func (t *Tree) ElasticSafe() bool { return false }

// atomic runs fn in the thread's default TM mode, demoted from Elastic to
// CTL. Elastic transactions relax exactly the guarantee this tree's
// coupled restructuring relies on — that every read on the path is
// revalidated at commit — which is the paper's §5.3 point inverted: the TM
// relaxation only pays off on structures designed for it.
func (t *Tree) atomic(th *stm.Thread, fn func(*stm.Tx)) {
	mode := th.STM().DefaultMode()
	if mode == stm.Elastic {
		mode = stm.CTL
	}
	th.AtomicMode(mode, fn)
}

// --- transactional accessors (nil-tolerant, as in the sentinel-free code) --

func (t *Tree) parentOf(tx *stm.Tx, r arena.Ref) arena.Ref {
	if r == arena.Nil {
		return arena.Nil
	}
	return tx.Read(&t.node(r).P)
}

func (t *Tree) leftOf(tx *stm.Tx, r arena.Ref) arena.Ref {
	if r == arena.Nil {
		return arena.Nil
	}
	return tx.Read(&t.node(r).L)
}

func (t *Tree) rightOf(tx *stm.Tx, r arena.Ref) arena.Ref {
	if r == arena.Nil {
		return arena.Nil
	}
	return tx.Read(&t.node(r).R)
}

// colorOf treats ⊥ as black, the red-black convention for external nodes.
func (t *Tree) colorOf(tx *stm.Tx, r arena.Ref) uint64 {
	if r == arena.Nil {
		return black
	}
	return tx.Read(&t.node(r).Aux)
}

// setColor writes the color only when it changes, keeping write sets tight.
func (t *Tree) setColor(tx *stm.Tx, r arena.Ref, c uint64) {
	if r == arena.Nil {
		return
	}
	w := &t.node(r).Aux
	if tx.Read(w) != c {
		tx.Write(w, c)
	}
}

// --- rotations (inside the calling transaction) ---------------------------

func (t *Tree) rotateLeft(tx *stm.Tx, p arena.Ref) {
	if p == arena.Nil {
		return
	}
	t.rotations.Add(1)
	pn := t.node(p)
	r := tx.Read(&pn.R)
	if r == arena.Nil {
		// A consistent snapshot never rotates a node without the rising
		// child; seeing one means this attempt is doomed (possible under
		// relaxed read tracking, e.g. elastic mode). Retry.
		tx.Restart()
	}
	rn := t.node(r)
	rl := tx.Read(&rn.L)
	tx.Write(&pn.R, rl)
	if rl != arena.Nil {
		tx.Write(&t.node(rl).P, p)
	}
	g := tx.Read(&pn.P)
	tx.Write(&rn.P, g)
	if g == arena.Nil {
		tx.Write(&t.root, r)
	} else if tx.Read(&t.node(g).L) == p {
		tx.Write(&t.node(g).L, r)
	} else {
		tx.Write(&t.node(g).R, r)
	}
	tx.Write(&rn.L, p)
	tx.Write(&pn.P, r)
}

func (t *Tree) rotateRight(tx *stm.Tx, p arena.Ref) {
	if p == arena.Nil {
		return
	}
	t.rotations.Add(1)
	pn := t.node(p)
	l := tx.Read(&pn.L)
	if l == arena.Nil {
		tx.Restart() // doomed attempt: see rotateLeft
	}
	ln := t.node(l)
	lr := tx.Read(&ln.R)
	tx.Write(&pn.L, lr)
	if lr != arena.Nil {
		tx.Write(&t.node(lr).P, p)
	}
	g := tx.Read(&pn.P)
	tx.Write(&ln.P, g)
	if g == arena.Nil {
		tx.Write(&t.root, l)
	} else if tx.Read(&t.node(g).R) == p {
		tx.Write(&t.node(g).R, l)
	} else {
		tx.Write(&t.node(g).L, l)
	}
	tx.Write(&ln.R, p)
	tx.Write(&pn.P, l)
}

// --- abstract operations ---------------------------------------------------

// Contains reports whether k is present.
func (t *Tree) Contains(th *stm.Thread, k uint64) bool {
	var ok bool
	t.atomic(th, func(tx *stm.Tx) { ok = t.ContainsTx(tx, k) })
	return ok
}

// ContainsTx is the composable form of Contains.
func (t *Tree) ContainsTx(tx *stm.Tx, k uint64) bool {
	return t.lookup(tx, k) != arena.Nil
}

// Get returns the value mapped to k.
func (t *Tree) Get(th *stm.Thread, k uint64) (uint64, bool) {
	var v uint64
	var ok bool
	t.atomic(th, func(tx *stm.Tx) { v, ok = t.GetTx(tx, k) })
	return v, ok
}

// GetTx is the composable form of Get.
func (t *Tree) GetTx(tx *stm.Tx, k uint64) (uint64, bool) {
	ref := t.lookup(tx, k)
	if ref == arena.Nil {
		return 0, false
	}
	return tx.Read(&t.node(ref).Val), true
}

func (t *Tree) lookup(tx *stm.Tx, k uint64) arena.Ref {
	ref := tx.Read(&t.root)
	for ref != arena.Nil {
		n := t.node(ref)
		key := tx.Read(&n.Key)
		switch {
		case k == key:
			return ref
		case k < key:
			ref = tx.Read(&n.L)
		default:
			ref = tx.Read(&n.R)
		}
	}
	return arena.Nil
}

// Insert maps k to v if absent, rebalancing inside the same transaction.
func (t *Tree) Insert(th *stm.Thread, k, v uint64) bool {
	var sc arena.Scratch
	var ok bool
	t.atomic(th, func(tx *stm.Tx) { ok = t.InsertTx(tx, k, v, &sc) })
	sc.Release(t.ar)
	return ok
}

// InsertTx is the composable form of Insert.
func (t *Tree) InsertTx(tx *stm.Tx, k, v uint64, sc *arena.Scratch) bool {
	sc.ResetAttempt()
	ref := tx.Read(&t.root)
	if ref == arena.Nil {
		r := sc.Take(t.ar, k, v)
		t.node(r).Aux.SetPlain(black)
		sc.MarkLinked()
		tx.Write(&t.root, r)
		return true
	}
	var parent arena.Ref
	var goLeft bool
	for ref != arena.Nil {
		n := t.node(ref)
		key := tx.Read(&n.Key)
		if k == key {
			return false
		}
		parent = ref
		goLeft = k < key
		if goLeft {
			ref = tx.Read(&n.L)
		} else {
			ref = tx.Read(&n.R)
		}
	}
	x := sc.Take(t.ar, k, v)
	xn := t.node(x)
	xn.Aux.SetPlain(red)
	xn.P.SetPlain(arena.Nil)
	sc.MarkLinked()
	tx.Write(&xn.P, parent)
	if goLeft {
		tx.Write(&t.node(parent).L, x)
	} else {
		tx.Write(&t.node(parent).R, x)
	}
	t.fixAfterInsertion(tx, x)
	return true
}

// InsertTxA is InsertTx with tree-managed allocation for deep composition;
// aborted linking attempts may leak one arena node each (see sftree).
func (t *Tree) InsertTxA(tx *stm.Tx, k, v uint64) bool {
	var sc arena.Scratch
	return t.InsertTx(tx, k, v, &sc)
}

// SetTx maps k to v within the enclosing transaction regardless of whether
// k is present (an upsert): a present node's value is overwritten in
// place, an absent key inserts. It is the native write-replay entry point
// of the cross-shard transaction coordinator (internal/ftx) — without it a
// buffered put replayed as delete+insert, paying a full rebalancing
// deletion just to overwrite a value. A present key costs one lookup and
// one value write; an absent key pays the lookup plus InsertTxA's descent
// (the paths overlap, so the reads dedup against the transaction's log).
func (t *Tree) SetTx(tx *stm.Tx, k, v uint64) {
	if ref := t.lookup(tx, k); ref != arena.Nil {
		tx.Write(&t.node(ref).Val, v)
		return
	}
	t.InsertTxA(tx, k, v)
}

func (t *Tree) fixAfterInsertion(tx *stm.Tx, x arena.Ref) {
	for x != arena.Nil && x != tx.Read(&t.root) && t.colorOf(tx, t.parentOf(tx, x)) == red {
		p := t.parentOf(tx, x)
		g := t.parentOf(tx, p)
		if p == t.leftOf(tx, g) {
			y := t.rightOf(tx, g)
			if t.colorOf(tx, y) == red {
				t.setColor(tx, p, black)
				t.setColor(tx, y, black)
				t.setColor(tx, g, red)
				x = g
			} else {
				if x == t.rightOf(tx, p) {
					x = p
					t.rotateLeft(tx, x)
					p = t.parentOf(tx, x)
					g = t.parentOf(tx, p)
				}
				t.setColor(tx, p, black)
				t.setColor(tx, g, red)
				t.rotateRight(tx, g)
			}
		} else {
			y := t.leftOf(tx, g)
			if t.colorOf(tx, y) == red {
				t.setColor(tx, p, black)
				t.setColor(tx, y, black)
				t.setColor(tx, g, red)
				x = g
			} else {
				if x == t.leftOf(tx, p) {
					x = p
					t.rotateRight(tx, x)
					p = t.parentOf(tx, x)
					g = t.parentOf(tx, p)
				}
				t.setColor(tx, p, black)
				t.setColor(tx, g, red)
				t.rotateLeft(tx, g)
			}
		}
	}
	t.setColor(tx, tx.Read(&t.root), black)
}

// Delete removes k, unlinking and rebalancing in the same transaction.
func (t *Tree) Delete(th *stm.Thread, k uint64) bool {
	var ok bool
	t.atomic(th, func(tx *stm.Tx) { ok = t.DeleteTx(tx, k) })
	return ok
}

// DeleteTx is the composable form of Delete.
func (t *Tree) DeleteTx(tx *stm.Tx, k uint64) bool {
	p := t.lookup(tx, k)
	if p == arena.Nil {
		return false
	}
	t.deleteEntry(tx, p)
	t.retired.Add(1)
	return true
}

func (t *Tree) deleteEntry(tx *stm.Tx, p arena.Ref) {
	pn := t.node(p)
	if tx.Read(&pn.L) != arena.Nil && tx.Read(&pn.R) != arena.Nil {
		// Interior node: copy the successor's payload here and delete the
		// successor instead (it has at most one child).
		s := t.successor(tx, p)
		sn := t.node(s)
		tx.Write(&pn.Key, tx.Read(&sn.Key))
		tx.Write(&pn.Val, tx.Read(&sn.Val))
		p = s
		pn = sn
	}
	replacement := tx.Read(&pn.L)
	if replacement == arena.Nil {
		replacement = tx.Read(&pn.R)
	}
	parent := tx.Read(&pn.P)
	switch {
	case replacement != arena.Nil:
		tx.Write(&t.node(replacement).P, parent)
		if parent == arena.Nil {
			tx.Write(&t.root, replacement)
		} else if p == tx.Read(&t.node(parent).L) {
			tx.Write(&t.node(parent).L, replacement)
		} else {
			tx.Write(&t.node(parent).R, replacement)
		}
		tx.Write(&pn.L, arena.Nil)
		tx.Write(&pn.R, arena.Nil)
		tx.Write(&pn.P, arena.Nil)
		if tx.Read(&pn.Aux) == black {
			t.fixAfterDeletion(tx, replacement)
		}
	case parent == arena.Nil:
		tx.Write(&t.root, arena.Nil)
	default:
		// p is a leaf: fix up with p still in place, then unlink it.
		if tx.Read(&pn.Aux) == black {
			t.fixAfterDeletion(tx, p)
		}
		parent = tx.Read(&pn.P)
		if parent != arena.Nil {
			gn := t.node(parent)
			if p == tx.Read(&gn.L) {
				tx.Write(&gn.L, arena.Nil)
			} else if p == tx.Read(&gn.R) {
				tx.Write(&gn.R, arena.Nil)
			}
			tx.Write(&pn.P, arena.Nil)
		}
	}
}

// successor returns the in-order successor of a node that has a right child.
func (t *Tree) successor(tx *stm.Tx, p arena.Ref) arena.Ref {
	ref := tx.Read(&t.node(p).R)
	if ref == arena.Nil {
		tx.Restart() // doomed attempt: the caller saw a right child
	}
	for {
		l := tx.Read(&t.node(ref).L)
		if l == arena.Nil {
			return ref
		}
		ref = l
	}
}

func (t *Tree) fixAfterDeletion(tx *stm.Tx, x arena.Ref) {
	for x != tx.Read(&t.root) && t.colorOf(tx, x) == black {
		p := t.parentOf(tx, x)
		if x == t.leftOf(tx, p) {
			sib := t.rightOf(tx, p)
			if t.colorOf(tx, sib) == red {
				t.setColor(tx, sib, black)
				t.setColor(tx, p, red)
				t.rotateLeft(tx, p)
				p = t.parentOf(tx, x)
				sib = t.rightOf(tx, p)
			}
			if t.colorOf(tx, t.leftOf(tx, sib)) == black && t.colorOf(tx, t.rightOf(tx, sib)) == black {
				t.setColor(tx, sib, red)
				x = p
			} else {
				if t.colorOf(tx, t.rightOf(tx, sib)) == black {
					t.setColor(tx, t.leftOf(tx, sib), black)
					t.setColor(tx, sib, red)
					t.rotateRight(tx, sib)
					p = t.parentOf(tx, x)
					sib = t.rightOf(tx, p)
				}
				t.setColor(tx, sib, t.colorOf(tx, p))
				t.setColor(tx, p, black)
				t.setColor(tx, t.rightOf(tx, sib), black)
				t.rotateLeft(tx, p)
				x = tx.Read(&t.root)
			}
		} else {
			sib := t.leftOf(tx, p)
			if t.colorOf(tx, sib) == red {
				t.setColor(tx, sib, black)
				t.setColor(tx, p, red)
				t.rotateRight(tx, p)
				p = t.parentOf(tx, x)
				sib = t.leftOf(tx, p)
			}
			if t.colorOf(tx, t.rightOf(tx, sib)) == black && t.colorOf(tx, t.leftOf(tx, sib)) == black {
				t.setColor(tx, sib, red)
				x = p
			} else {
				if t.colorOf(tx, t.leftOf(tx, sib)) == black {
					t.setColor(tx, t.rightOf(tx, sib), black)
					t.setColor(tx, sib, red)
					t.rotateLeft(tx, sib)
					p = t.parentOf(tx, x)
					sib = t.leftOf(tx, p)
				}
				t.setColor(tx, sib, t.colorOf(tx, p))
				t.setColor(tx, p, black)
				t.setColor(tx, t.leftOf(tx, sib), black)
				t.rotateRight(tx, p)
				x = tx.Read(&t.root)
			}
		}
	}
	t.setColor(tx, x, black)
}

// Size counts elements in one transaction.
func (t *Tree) Size(th *stm.Thread) int {
	var c int
	t.atomic(th, func(tx *stm.Tx) {
		c = 0
		t.walk(tx, tx.Read(&t.root), func(*arena.Node) { c++ })
	})
	return c
}

// Keys returns the sorted key set in one transaction.
func (t *Tree) Keys(th *stm.Thread) []uint64 {
	var out []uint64
	t.atomic(th, func(tx *stm.Tx) {
		out = out[:0]
		t.walk(tx, tx.Read(&t.root), func(n *arena.Node) {
			out = append(out, tx.Read(&n.Key))
		})
	})
	return out
}

func (t *Tree) walk(tx *stm.Tx, ref arena.Ref, visit func(*arena.Node)) {
	if ref == arena.Nil {
		return
	}
	n := t.node(ref)
	t.walk(tx, tx.Read(&n.L), visit)
	visit(n)
	t.walk(tx, tx.Read(&n.R), visit)
}

// Range visits every element with key in [lo, hi] (inclusive) in ascending
// order; fn returning false stops the scan. It reports whether the scan ran
// to the end of the interval. The interval is snapshotted in one
// transaction and fn runs after it commits — once per element, never from
// an aborted attempt — so fn may accumulate state freely.
func (t *Tree) Range(th *stm.Thread, lo, hi uint64, fn func(k, v uint64) bool) bool {
	var buf [][2]uint64
	t.atomic(th, func(tx *stm.Tx) {
		buf = buf[:0]
		t.RangeTx(tx, lo, hi, func(k, v uint64) bool {
			buf = append(buf, [2]uint64{k, v})
			return true
		})
	})
	for _, e := range buf {
		if !fn(e[0], e[1]) {
			return false
		}
	}
	return true
}

// RangeTx is the composable form of Range. Keys are transactional in this
// tree (deletion copies the successor's key in place), so the bounded
// traversal reads every visited key through the STM.
func (t *Tree) RangeTx(tx *stm.Tx, lo, hi uint64, fn func(k, v uint64) bool) bool {
	if lo > hi {
		return true
	}
	return t.rangeWalk(tx, tx.Read(&t.root), lo, hi, fn)
}

func (t *Tree) rangeWalk(tx *stm.Tx, ref arena.Ref, lo, hi uint64, fn func(k, v uint64) bool) bool {
	if ref == arena.Nil {
		return true
	}
	n := t.node(ref)
	k := tx.Read(&n.Key)
	if lo < k {
		if !t.rangeWalk(tx, tx.Read(&n.L), lo, hi, fn) {
			return false
		}
	}
	if lo <= k && k <= hi {
		if !fn(k, tx.Read(&n.Val)) {
			return false
		}
	}
	if k < hi {
		if !t.rangeWalk(tx, tx.Read(&n.R), lo, hi, fn) {
			return false
		}
	}
	return true
}

// EmptyHint reports, from one plain read, whether the tree was just observed
// empty; read-only scans may use it to skip the tree without a transaction.
func (t *Tree) EmptyHint() bool { return t.root.Plain() == arena.Nil }

// CheckInvariants verifies (plain reads, quiescent use) the BST property,
// parent-pointer consistency, and the red-black invariants: the root is
// black, no red node has a red child, and every root-to-leaf path crosses
// the same number of black nodes.
func (t *Tree) CheckInvariants() error {
	root := t.root.Plain()
	if root == arena.Nil {
		return nil
	}
	rn := t.node(root)
	if rn.Aux.Plain() != black {
		return fmt.Errorf("root is red")
	}
	if rn.P.Plain() != arena.Nil {
		return fmt.Errorf("root has a parent")
	}
	_, _, err := t.checkRec(root, 0, false, 0, false)
	return err
}

func (t *Tree) checkRec(ref arena.Ref, lo uint64, loSet bool, hi uint64, hiSet bool) (blackHeight int, size int, err error) {
	if ref == arena.Nil {
		return 1, 0, nil
	}
	n := t.node(ref)
	k := n.Key.Plain()
	if loSet && k <= lo {
		return 0, 0, fmt.Errorf("key %d violates lower bound %d", k, lo)
	}
	if hiSet && k >= hi {
		return 0, 0, fmt.Errorf("key %d violates upper bound %d", k, hi)
	}
	l, r := n.L.Plain(), n.R.Plain()
	if n.Aux.Plain() == red {
		if l != arena.Nil && t.node(l).Aux.Plain() == red {
			return 0, 0, fmt.Errorf("red node %d has red left child", k)
		}
		if r != arena.Nil && t.node(r).Aux.Plain() == red {
			return 0, 0, fmt.Errorf("red node %d has red right child", k)
		}
	}
	if l != arena.Nil && t.node(l).P.Plain() != ref {
		return 0, 0, fmt.Errorf("left child of %d has wrong parent", k)
	}
	if r != arena.Nil && t.node(r).P.Plain() != ref {
		return 0, 0, fmt.Errorf("right child of %d has wrong parent", k)
	}
	lb, ls, err := t.checkRec(l, lo, loSet, k, true)
	if err != nil {
		return 0, 0, err
	}
	rb, rs, err := t.checkRec(r, k, true, hi, hiSet)
	if err != nil {
		return 0, 0, err
	}
	if lb != rb {
		return 0, 0, fmt.Errorf("black-height mismatch at %d: %d vs %d", k, lb, rb)
	}
	bh := lb
	if n.Aux.Plain() == black {
		bh++
	}
	return bh, 1 + ls + rs, nil
}
