package rbtree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stm"
)

func newTree() (*Tree, *stm.Thread) {
	s := stm.New()
	return New(s), s.NewThread()
}

func TestEmpty(t *testing.T) {
	tr, th := newTree()
	if tr.Contains(th, 1) || tr.Delete(th, 1) || tr.Size(th) != 0 {
		t.Fatal("empty tree misbehaves")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBasicOps(t *testing.T) {
	tr, th := newTree()
	if !tr.Insert(th, 5, 50) || tr.Insert(th, 5, 51) {
		t.Fatal("insert semantics")
	}
	if v, ok := tr.Get(th, 5); !ok || v != 50 {
		t.Fatalf("get = (%d,%v)", v, ok)
	}
	if !tr.Delete(th, 5) || tr.Delete(th, 5) {
		t.Fatal("delete semantics")
	}
	if !tr.Insert(th, 5, 52) {
		t.Fatal("reinsert after delete failed")
	}
	if v, _ := tr.Get(th, 5); v != 52 {
		t.Fatal("stale value after reinsert")
	}
}

func TestRootDeletion(t *testing.T) {
	tr, th := newTree()
	tr.Insert(th, 1, 1)
	if !tr.Delete(th, 1) {
		t.Fatal("delete sole root failed")
	}
	if tr.Size(th) != 0 {
		t.Fatal("tree not empty after deleting root")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSortedInsertInvariants(t *testing.T) {
	tr, th := newTree()
	const n = 512
	for k := uint64(0); k < n; k++ {
		tr.Insert(th, k, k)
		if k%64 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", k+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Rotations() == 0 {
		t.Fatal("sorted insertion triggered no rotations")
	}
	if got := tr.Size(th); got != n {
		t.Fatalf("size = %d", got)
	}
}

func TestDeleteAllPermutations(t *testing.T) {
	// Insert 0..N-1, delete in random order, validating RB invariants after
	// every step. This is the classic fixAfterDeletion gauntlet.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		tr, th := newTree()
		const n = 64
		for k := uint64(0); k < n; k++ {
			tr.Insert(th, k, k)
		}
		perm := rng.Perm(n)
		for i, kid := range perm {
			if !tr.Delete(th, uint64(kid)) {
				t.Fatalf("trial %d: delete(%d) failed", trial, kid)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("trial %d after %d deletions: %v", trial, i+1, err)
			}
		}
		if tr.Size(th) != 0 {
			t.Fatalf("trial %d: tree not empty", trial)
		}
	}
}

func TestOracleRandomOps(t *testing.T) {
	tr, th := newTree()
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 6000; i++ {
		k := uint64(rng.Intn(150))
		switch rng.Intn(3) {
		case 0:
			_, exists := oracle[k]
			if got := tr.Insert(th, k, uint64(i)); got == exists {
				t.Fatalf("op %d insert(%d)=%v exists=%v", i, k, got, exists)
			}
			if !exists {
				oracle[k] = uint64(i)
			}
		case 1:
			_, exists := oracle[k]
			if got := tr.Delete(th, k); got != exists {
				t.Fatalf("op %d delete(%d)=%v want %v", i, k, got, exists)
			}
			delete(oracle, k)
		default:
			v, exists := oracle[k]
			gv, gok := tr.Get(th, k)
			if gok != exists || (exists && gv != v) {
				t.Fatalf("op %d get(%d)=(%d,%v) want (%d,%v)", i, k, gv, gok, v, exists)
			}
		}
		if i%493 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(keys []uint16, deletes []uint16) bool {
		tr, th := newTree()
		oracle := map[uint64]bool{}
		for _, k16 := range keys {
			k := uint64(k16)
			if tr.Insert(th, k, k) == oracle[k] {
				return false
			}
			oracle[k] = true
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		for _, k16 := range deletes {
			k := uint64(k16)
			if tr.Delete(th, k) != oracle[k] {
				return false
			}
			delete(oracle, k)
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		ks := tr.Keys(th)
		if len(ks) != len(oracle) || !sort.SliceIsSorted(ks, func(a, b int) bool { return ks[a] < ks[b] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointRanges(t *testing.T) {
	s := stm.New()
	tr := New(s)
	const goroutines = 4
	const rangeSize = 40
	oracles := make([]map[uint64]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := s.NewThread()
		oracles[g] = map[uint64]uint64{}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * rangeSize)
			rng := rand.New(rand.NewSource(int64(g + 500)))
			for i := 0; i < 500; i++ {
				k := base + uint64(rng.Intn(rangeSize))
				if rng.Intn(2) == 0 {
					if tr.Insert(th, k, uint64(i)) {
						oracles[g][k] = uint64(i)
					}
				} else {
					if tr.Delete(th, k) {
						delete(oracles[g], k)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread()
	for g := 0; g < goroutines; g++ {
		base := uint64(g * rangeSize)
		for off := uint64(0); off < rangeSize; off++ {
			k := base + off
			want, wantOK := oracles[g][k]
			got, gotOK := tr.Get(th, k)
			if gotOK != wantOK || (wantOK && got != want) {
				t.Fatalf("key %d: (%d,%v) want (%d,%v)", k, got, gotOK, want, wantOK)
			}
		}
	}
}

func TestSingleKeyLinearizability(t *testing.T) {
	s := stm.New()
	tr := New(s)
	const k = uint64(3)
	const goroutines = 5
	results := make([][2]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := s.NewThread()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var ins, del uint64
			for i := 0; i < 300; i++ {
				if rng.Intn(2) == 0 {
					if tr.Insert(th, k, 1) {
						ins++
					}
				} else if tr.Delete(th, k) {
					del++
				}
			}
			results[g] = [2]uint64{ins, del}
		}(g)
	}
	wg.Wait()
	var ins, del uint64
	for _, r := range results {
		ins += r[0]
		del += r[1]
	}
	present := tr.Contains(s.NewThread(), k)
	if ins != del && ins != del+1 {
		t.Fatalf("impossible: %d inserts, %d deletes", ins, del)
	}
	if present != (ins == del+1) {
		t.Fatalf("final presence %v inconsistent with %d/%d", present, ins, del)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
