package durable

import (
	"bytes"
	"reflect"
	"testing"
)

// frameUpdate builds one framed update record.
func frameUpdate(shard int, seq uint64, ops []Op) []byte {
	return frame(nil, encodeUpdate(nil, shard, seq, ops))
}

// frameAtomic builds one framed atomic record.
func frameAtomic(parts []ShardOps) []byte {
	return frame(nil, encodeAtomic(nil, parts))
}

func TestRecordRoundTrip(t *testing.T) {
	ops := []Op{{Key: 1, Val: 10}, {Key: 2, Del: true}, {Key: ^uint64(0) - 1, Val: 7}}
	b := frameUpdate(3, 42, ops)
	parts, n, err := readRecord(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	want := []ShardOps{{Shard: 3, Seq: 42, Ops: []Op{{Key: 1, Val: 10}, {Key: 2, Del: true}, {Key: ^uint64(0) - 1, Val: 7}}}}
	if !reflect.DeepEqual(parts, want) {
		t.Fatalf("decoded %+v, want %+v", parts, want)
	}

	ap := []ShardOps{
		{Shard: 0, Seq: 5, Ops: []Op{{Key: 9, Val: 90}}},
		{Shard: 7, Seq: 11, Ops: []Op{{Key: 8, Del: true}, {Key: 3, Val: 33}}},
	}
	b = frameAtomic(ap)
	parts, n, err = readRecord(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	if !reflect.DeepEqual(parts, ap) {
		t.Fatalf("decoded %+v, want %+v", parts, ap)
	}
}

// TestRecordBackToBack: two framed records decode in sequence, consuming
// exactly their own bytes.
func TestRecordBackToBack(t *testing.T) {
	b := append(frameUpdate(0, 1, []Op{{Key: 1, Val: 1}}),
		frameUpdate(1, 2, []Op{{Key: 2, Del: true}})...)
	p1, n1, err := readRecord(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, n2, err := readRecord(b[n1:], 2)
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(b) {
		t.Fatalf("consumed %d+%d of %d", n1, n2, len(b))
	}
	if p1[0].Seq != 1 || p2[0].Seq != 2 {
		t.Fatalf("seqs %d,%d", p1[0].Seq, p2[0].Seq)
	}
}

// TestRecordRejectsEveryTruncation: every strict prefix of a framed record
// must fail to decode (that is the torn-tail detection recovery relies on).
func TestRecordRejectsEveryTruncation(t *testing.T) {
	b := frameAtomic([]ShardOps{
		{Shard: 1, Seq: 9, Ops: []Op{{Key: 4, Val: 44}}},
		{Shard: 2, Seq: 13, Ops: []Op{{Key: 5, Del: true}}},
	})
	for cut := 0; cut < len(b); cut++ {
		if _, _, err := readRecord(b[:cut], 8); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", cut, len(b))
		}
	}
}

// TestRecordRejectsEveryByteFlip: flipping any single byte of a framed
// record must be rejected (CRC-32C catches all single-byte corruption; the
// header fields are covered by the length/CRC cross-checks).
func TestRecordRejectsEveryByteFlip(t *testing.T) {
	orig := frameUpdate(2, 77, []Op{{Key: 10, Val: 100}, {Key: 11, Del: true}})
	for i := range orig {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := bytes.Clone(orig)
			mut[i] ^= flip
			if _, _, err := readRecord(mut, 8); err == nil {
				t.Fatalf("byte %d flipped with %#x decoded successfully", i, flip)
			}
		}
	}
}

// TestRecordRejectsForeignShard: a record naming a shard outside the log's
// range is corruption (or a misconfigured shard count), not data.
func TestRecordRejectsForeignShard(t *testing.T) {
	b := frameUpdate(5, 1, []Op{{Key: 1, Val: 1}})
	if _, _, err := readRecord(b, 4); err == nil {
		t.Fatal("shard 5 decoded on a 4-shard log")
	}
}

// FuzzRecordDecode fuzzes the codec: arbitrary bytes must never panic, and
// any input that decodes must re-encode to a byte-identical record.
func FuzzRecordDecode(f *testing.F) {
	f.Add(frameUpdate(0, 1, []Op{{Key: 1, Val: 2}}))
	f.Add(frameUpdate(7, 1<<40, []Op{{Key: 3, Del: true}, {Key: 4, Val: 5}}))
	f.Add(frameAtomic([]ShardOps{
		{Shard: 0, Seq: 2, Ops: []Op{{Key: 1, Val: 1}}},
		{Shard: 3, Seq: 4, Ops: []Op{{Key: 2, Del: true}}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const shards = 8
		parts, n, err := readRecord(data, shards)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Round-trip: re-encoding the decoded record must reproduce the
		// exact framed bytes (the codec has one canonical encoding).
		var re []byte
		if len(parts) == 1 && data[frameOverhead] == recUpdate {
			re = frame(nil, encodeUpdate(nil, parts[0].Shard, parts[0].Seq, parts[0].Ops))
		} else {
			re = frame(nil, encodeAtomic(nil, parts))
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
	})
}
