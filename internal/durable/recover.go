package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Recovery reports what Open reconstructed from the directory.
type Recovery struct {
	// State is the recovered key/value map: the newest sealed checkpoint
	// with the surviving WAL tail replayed over it.
	State map[uint64]uint64
	// CheckpointGen is the generation of the checkpoint loaded (0 when the
	// directory held none).
	CheckpointGen uint64
	// CheckpointPairs counts the pairs the checkpoint contributed.
	CheckpointPairs int
	// Segments counts WAL segments scanned; Records the intact records
	// replayed from them.
	Segments int
	Records  int
	// OpsApplied and OpsSkipped split the replayed ops into those applied
	// and those the per-shard checkpoint cut made redundant.
	OpsApplied int
	OpsSkipped int
	// TailDroppedBytes counts bytes discarded at the first torn or
	// corrupted record (everything from it on is dropped).
	TailDroppedBytes int
	// Bytes is the total WAL bytes scanned; Elapsed the wall time the
	// whole recovery took.
	Bytes   int64
	Elapsed time.Duration
}

// parseIndexed extracts the numeric index from names like wal-%016d.log.
func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	i, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return i, true
}

// recoverDir reconstructs the durable state of dir: newest sealed
// checkpoint plus sorted idempotent WAL replay. It also reports the
// highest segment and checkpoint indices seen, so the caller opens fresh
// ones beyond them, and removes stale temporary files.
func recoverDir(dir string, shards int) (*Recovery, uint64, uint64, error) {
	start := time.Now()
	rec := &Recovery{State: make(map[uint64]uint64)}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, 0, err
	}
	var segs, gens []uint64
	var maxSeg, maxGen uint64
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // interrupted checkpoint write
			continue
		}
		if i, ok := parseIndexed(name, "wal-", ".log"); ok {
			segs = append(segs, i)
			maxSeg = max(maxSeg, i)
		}
		if g, ok := parseIndexed(name, "checkpoint-", ".ckpt"); ok {
			gens = append(gens, g)
			maxGen = max(maxGen, g)
		}
	}

	// Load the newest checkpoint that validates; older generations are the
	// fallback when the newest is damaged (it was sealed by rename, so
	// damage means external interference, but recovery stays graceful).
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	var cuts []uint64
	baseSeg := uint64(0)
	for _, g := range gens {
		meta, err := readCheckpoint(checkpointName(dir, g), shards, rec.State)
		if err != nil {
			clear(rec.State)
			continue
		}
		rec.CheckpointGen = meta.gen
		rec.CheckpointPairs = len(rec.State)
		cuts = meta.cuts
		baseSeg = meta.baseSeg
		break
	}
	if cuts == nil {
		cuts = make([]uint64, shards)
	}

	// Replay segments at or above the checkpoint's base, in index order,
	// stopping cleanly at the first torn record (prefix discipline: nothing
	// after a damaged point is trusted).
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	var groups []ShardOps
	torn := false
	for _, si := range segs {
		if si < baseSeg || torn {
			continue
		}
		b, err := os.ReadFile(segmentName(dir, si))
		if err != nil {
			return nil, 0, 0, err
		}
		rec.Segments++
		rec.Bytes += int64(len(b))
		if len(b) < segHeaderLen || string(b[:len(segMagic)]) != segMagic {
			// Segment created but its header never reached disk: an empty
			// tail, nothing to replay.
			rec.TailDroppedBytes += len(b)
			torn = true
			continue
		}
		if ns := binary.LittleEndian.Uint32(b[len(segMagic):]); int(ns) != shards {
			return nil, 0, 0, fmt.Errorf("durable: segment %d written with %d shards, log opened with %d", si, ns, shards)
		}
		off := segHeaderLen
		for off < len(b) {
			parts, n, err := readRecord(b[off:], shards)
			if err != nil {
				rec.TailDroppedBytes += len(b) - off
				torn = true
				break
			}
			rec.Records++
			groups = append(groups, parts...)
			off += n
		}
	}

	// Restore per-shard commit order (append order can differ from commit
	// order under concurrency) and apply idempotently: everything at or
	// below the checkpoint's cut is already in the loaded state. Shard-
	// clock positions may be shared by concurrent commits (the STM's
	// slow-path committers adopt a position without a clock RMW of their
	// own), but position-sharing commits held all their write locks
	// simultaneously, so their key sets are disjoint and the stable sort's
	// arbitrary tie order is irrelevant.
	sort.SliceStable(groups, func(i, j int) bool {
		if groups[i].Shard != groups[j].Shard {
			return groups[i].Shard < groups[j].Shard
		}
		return groups[i].Seq < groups[j].Seq
	})
	for _, g := range groups {
		if g.Seq <= cuts[g.Shard] {
			rec.OpsSkipped += len(g.Ops)
			continue
		}
		for _, op := range g.Ops {
			if op.Del {
				delete(rec.State, op.Key)
			} else {
				rec.State[op.Key] = op.Val
			}
			rec.OpsApplied++
		}
	}
	rec.Elapsed = time.Since(start)
	return rec, maxSeg, maxGen, nil
}
