package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Recovery reports what Open reconstructed from the directory.
type Recovery struct {
	// State is the recovered key/value map: the newest provably-complete
	// checkpoint chain (full base plus deltas) with the surviving WAL tail
	// replayed over it.
	State map[uint64]uint64
	// CheckpointGen is the tip generation of the chain loaded (0 when the
	// directory held none).
	CheckpointGen uint64
	// CheckpointPairs counts the pairs the chain's full base contributed;
	// DeltaPairs the delta entries (puts and tombstones) applied on top;
	// ChainDeltas the delta generations in the chain.
	CheckpointPairs int
	DeltaPairs      int
	ChainDeltas     int
	// Segments counts WAL segments scanned; Records the intact records
	// replayed from them.
	Segments int
	Records  int
	// OpsApplied and OpsSkipped split the replayed ops into those applied
	// and those the chain's coverage made redundant (a record op is
	// skipped only when its position is at or below the cut of the newest
	// chain generation that covered its key — the full base covers every
	// key, a delta only its own entries).
	OpsApplied int
	OpsSkipped int
	// TailDroppedBytes counts bytes discarded at the first torn or
	// corrupted record (everything from it on is dropped).
	TailDroppedBytes int
	// Bytes is the total WAL bytes scanned; Appliers the parallel applier
	// partitions the replay ran across; Elapsed the wall time the whole
	// recovery took.
	Bytes    int64
	Appliers int
	Elapsed  time.Duration
}

// parseIndexed extracts the numeric index from names like wal-%016d.log.
func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	i, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return i, true
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection used to
// spread keys over the recovery applier partitions. Partitioning is by key
// (not by the store's shard routing, which recovery does not know), which
// is sound because replay ordering only matters per key: all records for a
// key carry one shard, and each partition applies its records in global
// (shard, seq) order.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// chainState is one loaded checkpoint chain, partitioned for the appliers.
type chainState struct {
	tipGen     uint64
	baseSeg    uint64
	floors     []uint64       // full base's per-shard cuts: cover every key
	base       [][]kvPair     // full base pairs, bucketed by key partition
	patches    [][]deltaPatch // delta entries in chain order, bucketed by key partition
	basePairs  int
	deltaPairs int
	deltas     int
}

// deltaPatch is one delta entry flattened for replay: the key's new value
// (or tombstone) and the position the covering snapshot was cut at.
type deltaPatch struct {
	k, v uint64
	asof uint64
	del  bool
}

// candidate is one recovery basis to try: a generation chain, base first.
type candidate struct {
	entries []manifestEntry
}

// recoverDir reconstructs the durable state of dir: the newest
// provably-complete checkpoint chain plus an idempotent, partitioned
// replay of the surviving WAL tail across `appliers` goroutines. It also
// reports the highest segment and generation indices seen, so the caller
// opens fresh ones beyond them, and removes stale temporary files.
//
// Candidate order: manifests newest first; then chains reconstructed from
// delta parent links (covers a crash between a delta seal and its manifest
// seal); then bare full checkpoints (directories from before deltas
// existed, and the deepest damage fallback); then the empty state. A
// candidate is provably complete when all its files decode and the segment
// suffix at or above its base has no gaps; when no candidate is, the same
// order is retried tolerating segment gaps (external damage — recovery
// degrades gracefully instead of failing).
func recoverDir(dir string, shards, appliers int) (*Recovery, uint64, uint64, error) {
	start := time.Now()
	rec := &Recovery{State: make(map[uint64]uint64)}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, 0, err
	}
	var segs, fulls, deltas, manifests []uint64
	var maxSeg, maxGen uint64
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // interrupted seal
			continue
		}
		if i, ok := parseIndexed(name, "wal-", ".log"); ok {
			segs = append(segs, i)
			maxSeg = max(maxSeg, i)
		}
		if g, ok := parseIndexed(name, "checkpoint-", ".ckpt"); ok {
			fulls = append(fulls, g)
			maxGen = max(maxGen, g)
		}
		if g, ok := parseIndexed(name, "delta-", ".ckpt"); ok {
			deltas = append(deltas, g)
			maxGen = max(maxGen, g)
		}
		if g, ok := parseIndexed(name, "manifest-", ".mf"); ok {
			manifests = append(manifests, g)
			maxGen = max(maxGen, g)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	desc := func(s []uint64) { sort.Slice(s, func(i, j int) bool { return s[i] > s[j] }) }
	desc(fulls)
	desc(deltas)
	desc(manifests)

	if appliers < 1 {
		appliers = 1
	}
	W := appliers
	rec.Appliers = W

	// Assemble the candidate list. Delta files are decoded at most once
	// and cached — link-walking and chain loading share the reads.
	dcache := make(map[uint64]*deltaFile)
	readDelta := func(gen uint64) *deltaFile {
		if df, ok := dcache[gen]; ok {
			return df
		}
		df, err := readDeltaFile(deltaName(dir, gen))
		if err != nil {
			dcache[gen] = nil
			return nil
		}
		dcache[gen] = &df
		return &df
	}
	fullSet := make(map[uint64]bool, len(fulls))
	for _, g := range fulls {
		fullSet[g] = true
	}
	var cands []candidate
	seen := make(map[string]bool)
	add := func(entries []manifestEntry) {
		sig := fmt.Sprintf("%d/%d", entries[len(entries)-1].gen, len(entries))
		if !seen[sig] {
			seen[sig] = true
			cands = append(cands, candidate{entries: entries})
		}
	}
	for _, g := range manifests {
		m, err := readManifestFile(manifestName(dir, g))
		if err != nil || m.shards != shards {
			continue
		}
		add(m.chain)
	}
	for _, g := range deltas {
		// Reconstruct the chain by parent links: a sealed delta whose
		// manifest never landed (crash in the seal window) is still usable.
		entries := []manifestEntry{{gen: g, delta: true}}
		cur := g
		ok := false
		for range len(deltas) + 1 {
			df := readDelta(cur)
			if df == nil || df.shards != shards || df.parentGen >= cur {
				break
			}
			cur = df.parentGen
			if fullSet[cur] {
				entries = append(entries, manifestEntry{gen: cur})
				ok = true
				break
			}
			entries = append(entries, manifestEntry{gen: cur, delta: true})
		}
		if ok {
			for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
				entries[i], entries[j] = entries[j], entries[i]
			}
			add(entries)
		}
	}
	for _, g := range fulls {
		add([]manifestEntry{{gen: g}})
	}

	// contiguous reports whether the segment suffix at or above base has
	// no gaps up to the highest segment present.
	contiguous := func(base uint64) bool {
		next := base
		for _, s := range segs {
			if s < base {
				continue
			}
			if s != next {
				return false
			}
			next++
		}
		return true
	}

	var cs *chainState
	for pass := 0; pass < 2 && cs == nil; pass++ {
		for _, c := range cands {
			loaded, err := loadChain(dir, shards, W, c.entries, readDelta)
			if err != nil {
				continue
			}
			if pass == 0 && !contiguous(loaded.baseSeg) {
				continue
			}
			cs = loaded
			break
		}
	}
	if cs == nil {
		cs = &chainState{
			floors:  make([]uint64, shards),
			base:    make([][]kvPair, W),
			patches: make([][]deltaPatch, W),
		}
	}
	rec.CheckpointGen = cs.tipGen
	rec.CheckpointPairs = cs.basePairs
	rec.DeltaPairs = cs.deltaPairs
	rec.ChainDeltas = cs.deltas

	// Decode the surviving segments — in parallel, since each segment's
	// CRC checks and record parsing are independent — then resolve the
	// prefix discipline serially in segment order: nothing after the first
	// torn record is trusted, and segments past a torn one contribute
	// nothing (they are not even counted, matching the serial semantics).
	type segResult struct {
		groups  []ShardOps
		records int
		bytes   int
		dropped int
		torn    bool
		err     error
	}
	var replaySegs []uint64
	for _, si := range segs {
		if si >= cs.baseSeg {
			replaySegs = append(replaySegs, si)
		}
	}
	results := make([]segResult, len(replaySegs))
	decodeSeg := func(i int) {
		r := &results[i]
		b, err := os.ReadFile(segmentName(dir, replaySegs[i]))
		if err != nil {
			r.err = err
			return
		}
		r.bytes = len(b)
		if len(b) < segHeaderLen || string(b[:len(segMagic)]) != segMagic {
			// Segment created but its header never reached disk: an empty
			// tail, nothing to replay.
			r.dropped = len(b)
			r.torn = true
			return
		}
		if ns := binary.LittleEndian.Uint32(b[len(segMagic):]); int(ns) != shards {
			r.err = fmt.Errorf("durable: segment %d written with %d shards, log opened with %d", replaySegs[i], ns, shards)
			return
		}
		off := segHeaderLen
		for off < len(b) {
			parts, n, err := readRecord(b[off:], shards)
			if err != nil {
				r.dropped = len(b) - off
				r.torn = true
				break
			}
			r.records++
			r.groups = append(r.groups, parts...)
			off += n
		}
	}
	if W > 1 && len(replaySegs) > 1 {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < min(W, len(replaySegs)); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					decodeSeg(i)
				}
			}()
		}
		for i := range replaySegs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range replaySegs {
			decodeSeg(i)
		}
	}
	var groups []ShardOps
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, 0, 0, r.err
		}
		rec.Segments++
		rec.Bytes += int64(r.bytes)
		rec.Records += r.records
		rec.TailDroppedBytes += r.dropped
		groups = append(groups, r.groups...)
		if r.torn {
			break
		}
	}

	// Restore per-shard commit order (append order can differ from commit
	// order under concurrency). Shard-clock positions may be shared by
	// concurrent commits (the STM's slow-path committers adopt a position
	// without a clock RMW of their own), but position-sharing commits held
	// all their write locks simultaneously, so their key sets are disjoint
	// and the stable sort's arbitrary tie order is irrelevant.
	sort.SliceStable(groups, func(i, j int) bool {
		if groups[i].Shard != groups[j].Shard {
			return groups[i].Shard < groups[j].Shard
		}
		return groups[i].Seq < groups[j].Seq
	})

	// Bucket the ops by key partition (order within a bucket preserves the
	// global sort), then run one applier per partition: base pairs, delta
	// patches in chain order, then the record ops — skipping an op only
	// when its position is at or below the cut of the newest chain
	// generation that covered its key. The per-key rule (rather than the
	// per-shard cut alone) closes the late-append window: a record synced
	// after the delta covering its window was cut is replayed, because no
	// delta covered its key.
	type replayOp struct {
		key, val, seq uint64
		shard         int32
		del           bool
	}
	opBuckets := make([][]replayOp, W)
	for _, g := range groups {
		for _, op := range g.Ops {
			w := 0
			if W > 1 {
				w = int(mix64(op.Key) % uint64(W))
			}
			opBuckets[w] = append(opBuckets[w], replayOp{key: op.Key, val: op.Val, seq: g.Seq, shard: int32(g.Shard), del: op.Del})
		}
	}
	type partResult struct {
		state            map[uint64]uint64
		applied, skipped int
	}
	parts := make([]partResult, W)
	apply := func(w int) {
		p := &parts[w]
		p.state = make(map[uint64]uint64, len(cs.base[w])+len(opBuckets[w])/2)
		for _, kv := range cs.base[w] {
			p.state[kv.k] = kv.v
		}
		var asof map[uint64]uint64
		if len(cs.patches[w]) > 0 {
			asof = make(map[uint64]uint64, len(cs.patches[w]))
		}
		for _, d := range cs.patches[w] {
			if d.del {
				delete(p.state, d.k)
			} else {
				p.state[d.k] = d.v
			}
			asof[d.k] = d.asof
		}
		for _, op := range opBuckets[w] {
			limit := cs.floors[op.shard]
			if a, ok := asof[op.key]; ok && a > limit {
				limit = a
			}
			if op.seq <= limit {
				p.skipped++
				continue
			}
			if op.del {
				delete(p.state, op.key)
			} else {
				p.state[op.key] = op.val
			}
			p.applied++
		}
	}
	if W > 1 {
		var wg sync.WaitGroup
		for w := 0; w < W; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				apply(w)
			}(w)
		}
		wg.Wait() // merge barrier: every partition (and any multi-shard
		// ftx record's per-shard shares, spread across partitions by key)
		// is fully applied before the states merge
	} else {
		apply(0)
	}
	total := 0
	for w := range parts {
		total += len(parts[w].state)
	}
	rec.State = make(map[uint64]uint64, total)
	for w := range parts {
		for k, v := range parts[w].state {
			rec.State[k] = v
		}
		rec.OpsApplied += parts[w].applied
		rec.OpsSkipped += parts[w].skipped
	}
	rec.Elapsed = time.Since(start)
	return rec, maxSeg, maxGen, nil
}

// loadChain loads one candidate chain — full base first, deltas in order —
// bucketing pairs and patches by key partition for the appliers. Any
// decode failure or link inconsistency fails the whole candidate.
func loadChain(dir string, shards, W int, entries []manifestEntry, readDelta func(uint64) *deltaFile) (*chainState, error) {
	if len(entries) == 0 || entries[0].delta {
		return nil, fmt.Errorf("durable: chain does not start at a full base")
	}
	cs := &chainState{
		base:    make([][]kvPair, W),
		patches: make([][]deltaPatch, W),
	}
	meta, pairs, err := readCheckpoint(checkpointName(dir, entries[0].gen), shards)
	if err != nil {
		return nil, err
	}
	cs.floors = meta.cuts
	cs.baseSeg = meta.baseSeg
	cs.tipGen = meta.gen
	cs.basePairs = len(pairs)
	for _, p := range pairs {
		w := 0
		if W > 1 {
			w = int(mix64(p.k) % uint64(W))
		}
		cs.base[w] = append(cs.base[w], p)
	}
	for _, e := range entries[1:] {
		if !e.delta {
			return nil, fmt.Errorf("durable: chain has a full base past the first entry")
		}
		df := readDelta(e.gen)
		if df == nil || df.shards != shards || df.gen != e.gen || df.parentGen != cs.tipGen || df.baseSeg < cs.baseSeg {
			return nil, fmt.Errorf("durable: delta generation %d does not extend the chain", e.gen)
		}
		for _, g := range df.groups {
			cut := df.cuts[g.shard]
			for _, en := range g.entries {
				w := 0
				if W > 1 {
					w = int(mix64(en.k) % uint64(W))
				}
				cs.patches[w] = append(cs.patches[w], deltaPatch{k: en.k, v: en.v, asof: cut, del: en.del})
				cs.deltaPairs++
			}
		}
		cs.tipGen = df.gen
		cs.baseSeg = df.baseSeg
		cs.deltas++
	}
	return cs, nil
}
