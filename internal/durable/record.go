package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// This file defines the WAL record codec. Every record is framed as
//
//	u32 payload length | u32 CRC-32C of the payload | payload
//
// (little-endian throughout), so a reader can walk a segment record by
// record and detect a torn or truncated tail — a short header, a short
// payload, an implausible length, or a checksum mismatch — and cleanly
// discard it: a record is either wholly present or wholly absent, which is
// what carries a cross-shard transaction's atomicity onto disk.
//
// Payloads come in two shapes:
//
//	update: u8 recUpdate | u32 shard | u64 seq | u32 nops | nops × op
//	atomic: u8 recAtomic | u32 nparts | nparts × (u32 shard | u64 seq | u32 nops | nops × op)
//	op:     u8 kind (0 put, 1 delete) | u64 key | u64 val (0 for deletes)
//
// An update record is one committed single-shard transaction: its shard
// index and the commit-clock position its publication carried. An atomic
// record is one cross-shard commit, carrying each participating shard's
// share of the write set with that shard's lock-point clock position.
// Replay is idempotent and order-insensitive across shards: positions are
// unique per shard, recovery sorts each shard's surviving groups by
// position and skips those at or below the checkpoint's cut.

// Op is one logged effect: an absolute put of Val at Key, or a deletion.
type Op struct {
	Key uint64
	Val uint64
	Del bool
}

// ShardOps is one shard's share of a logged commit: the ops the transaction
// applied to the shard and the shard-clock position they published at.
type ShardOps struct {
	Shard int
	Seq   uint64
	Ops   []Op
}

// Record type tags (first payload byte).
const (
	recUpdate byte = 1
	recAtomic byte = 2
)

// maxPayload bounds a record payload; a framed length beyond it is treated
// as corruption rather than an allocation request.
const maxPayload = 1 << 24

// maxShards bounds a plausible shard count in checkpoint, delta, and
// manifest headers: a decode-time sanity limit, not an operational one.
const maxShards = 1 << 16

// frameOverhead is the framing cost per record (length + CRC).
const frameOverhead = 8

// crcTable is the Castagnoli table shared by records and checkpoints.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendOp encodes one op.
func appendOp(b []byte, op Op) []byte {
	kind := byte(0)
	val := op.Val
	if op.Del {
		kind = 1
		val = 0
	}
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint64(b, op.Key)
	b = binary.LittleEndian.AppendUint64(b, val)
	return b
}

// appendGroup encodes one shard group (shard, seq, ops).
func appendGroup(b []byte, g ShardOps) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(g.Shard))
	b = binary.LittleEndian.AppendUint64(b, g.Seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(g.Ops)))
	for _, op := range g.Ops {
		b = appendOp(b, op)
	}
	return b
}

// encodeUpdate appends an update-record payload to b.
func encodeUpdate(b []byte, shard int, seq uint64, ops []Op) []byte {
	b = append(b, recUpdate)
	return appendGroup(b, ShardOps{Shard: shard, Seq: seq, Ops: ops})
}

// encodeAtomic appends an atomic-record payload to b.
func encodeAtomic(b []byte, parts []ShardOps) []byte {
	b = append(b, recAtomic)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(parts)))
	for _, p := range parts {
		b = appendGroup(b, p)
	}
	return b
}

// frame appends the length+CRC framing and the payload to b.
func frame(b, payload []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, crcTable))
	return append(b, payload...)
}

// decoder walks an encoded payload.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) u8() (byte, error) {
	if d.off+1 > len(d.b) {
		return 0, fmt.Errorf("durable: truncated payload at byte %d", d.off)
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.b) {
		return 0, fmt.Errorf("durable: truncated payload at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.b) {
		return 0, fmt.Errorf("durable: truncated payload at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

// group decodes one shard group, validating the shard index against shards.
func (d *decoder) group(shards int) (ShardOps, error) {
	var g ShardOps
	sh, err := d.u32()
	if err != nil {
		return g, err
	}
	if int(sh) >= shards {
		return g, fmt.Errorf("durable: record shard %d out of range (log has %d shards)", sh, shards)
	}
	g.Shard = int(sh)
	if g.Seq, err = d.u64(); err != nil {
		return g, err
	}
	nops, err := d.u32()
	if err != nil {
		return g, err
	}
	if int(nops) > (len(d.b)-d.off)/17 {
		return g, fmt.Errorf("durable: op count %d exceeds remaining payload", nops)
	}
	g.Ops = make([]Op, nops)
	for i := range g.Ops {
		kind, err := d.u8()
		if err != nil {
			return g, err
		}
		if kind > 1 {
			return g, fmt.Errorf("durable: unknown op kind %d", kind)
		}
		g.Ops[i].Del = kind == 1
		if g.Ops[i].Key, err = d.u64(); err != nil {
			return g, err
		}
		if g.Ops[i].Val, err = d.u64(); err != nil {
			return g, err
		}
		if g.Ops[i].Del && g.Ops[i].Val != 0 {
			// The encoder always writes 0 for deletions; anything else is
			// corruption (and keeping the codec canonical lets the fuzz
			// round-trip assert byte-identical re-encoding).
			return g, fmt.Errorf("durable: delete op with nonzero value")
		}
	}
	return g, nil
}

// decodePayload decodes one record payload into its shard groups (an update
// record yields one group). shards bounds the shard indices; a trailing
// excess of bytes is corruption.
func decodePayload(payload []byte, shards int) ([]ShardOps, error) {
	d := &decoder{b: payload}
	tag, err := d.u8()
	if err != nil {
		return nil, err
	}
	var parts []ShardOps
	switch tag {
	case recUpdate:
		g, err := d.group(shards)
		if err != nil {
			return nil, err
		}
		parts = []ShardOps{g}
	case recAtomic:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(n) > shards {
			return nil, fmt.Errorf("durable: atomic record with %d parts on a %d-shard log", n, shards)
		}
		parts = make([]ShardOps, 0, n)
		for i := 0; i < int(n); i++ {
			g, err := d.group(shards)
			if err != nil {
				return nil, err
			}
			parts = append(parts, g)
		}
	default:
		return nil, fmt.Errorf("durable: unknown record type %d", tag)
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("durable: %d trailing bytes after record", len(payload)-d.off)
	}
	return parts, nil
}

// readRecord parses one framed record from b, returning the shard groups
// and the total bytes consumed. A short header, short payload, implausible
// length or CRC mismatch returns an error — the caller treats it as the
// torn tail and discards everything from b onward.
func readRecord(b []byte, shards int) ([]ShardOps, int, error) {
	if len(b) < frameOverhead {
		return nil, 0, fmt.Errorf("durable: short record header (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	sum := binary.LittleEndian.Uint32(b[4:])
	if n > maxPayload {
		return nil, 0, fmt.Errorf("durable: implausible record length %d", n)
	}
	if len(b) < frameOverhead+int(n) {
		return nil, 0, fmt.Errorf("durable: truncated record payload (%d of %d bytes)", len(b)-frameOverhead, n)
	}
	payload := b[frameOverhead : frameOverhead+int(n)]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, fmt.Errorf("durable: record checksum mismatch")
	}
	parts, err := decodePayload(payload, shards)
	if err != nil {
		return nil, 0, err
	}
	return parts, frameOverhead + int(n), nil
}
