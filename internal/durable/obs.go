package durable

import (
	"repro/internal/obs"
)

// SetFlightRecorder attaches a flight recorder: from now on the log records
// checkpoint/compaction phases, WAL stalls, drops and rotations into it.
// Attach before the first append (repro.Open and the bench harness do);
// a nil recorder detaches.
func (l *Log) SetFlightRecorder(fr *obs.FlightRecorder) {
	l.mu.Lock()
	l.fr = fr
	l.mu.Unlock()
}

// SetTracer attaches a span tracer: records appended under a sampled
// operation's trace id (LogUpdateT/LogAtomicT) record one SpanWALAppend
// each, stretching from the append to the fsync that made the record
// durable. A nil tracer detaches; spans already pending are dropped by the
// nil-safe recorder.
func (l *Log) SetTracer(t *obs.Tracer) {
	l.mu.Lock()
	l.tracer = t
	l.mu.Unlock()
}

// RegisterObs registers the log's counters and latency histograms with an
// observability registry. The counter families are collected from the same
// mutex-guarded Stats struct every other reader uses — one consistent
// snapshot per scrape, never field-by-field torn reads. The histograms
// (fsync latency, checkpoint duration) are recorded by the log itself once
// registered.
func (l *Log) RegisterObs(r *obs.Registry) {
	syncH := r.Histogram("durable_sync_nanos", "fsync latency of the live WAL segment, nanoseconds.")
	ckptH := r.Histogram("durable_checkpoint_nanos", "Wall time per checkpoint, nanoseconds.")
	l.mu.Lock()
	l.syncH = syncH
	l.ckptH = ckptH
	l.mu.Unlock()
	r.RegisterCollector(func(emit func(obs.Sample)) {
		st := l.Stats()
		counter := func(name, help string, v uint64) {
			emit(obs.Sample{Name: name, Kind: obs.KindCounter, Help: help, Value: float64(v)})
		}
		counter("durable_wal_records_total", "Records appended (update + atomic).", st.Records)
		counter("durable_wal_atomic_records_total", "The cross-shard subset of records.", st.AtomicRecords)
		counter("durable_wal_bytes_total", "Framed bytes appended.", st.Bytes)
		counter("durable_wal_flushes_total", "Buffered-writer flushes.", st.Flushes)
		counter("durable_wal_syncs_total", "fsyncs of the live segment.", st.Syncs)
		counter("durable_wal_stalls_total", "Appends that hit the unsynced-bytes bound and fsynced inline.", st.Stalls)
		counter("durable_wal_dropped_total", "Records not logged (oversize, or appended while wedged).", st.Dropped)
		counter("durable_wal_rotations_total", "Segment rotations.", st.Rotations)
		counter("durable_checkpoints_total", "Checkpoints sealed (full bases + deltas).", st.Checkpoints)
		counter("durable_delta_checkpoints_total", "The incremental subset of checkpoints.", st.DeltaCheckpoints)
		counter("durable_skipped_checkpoints_total", "Checkpoints skipped because nothing was dirty.", st.SkippedCheckpoints)
		counter("durable_checkpoint_pairs_total", "Pairs written across all checkpoints.", st.CheckpointPairs)
		counter("durable_checkpoint_bytes_total", "Bytes written across checkpoint, delta and manifest files.", st.CheckpointBytes)
		counter("durable_files_removed_total", "Obsolete segments, checkpoints and manifests deleted.", st.FilesRemoved)
	})
}

// RecordRecovery records a completed recovery pass into the flight
// recorder: the durable directory was replayed into memory (Open did it,
// or a harness re-opened a finished run's directory to time restart cost).
func RecordRecovery(fr *obs.FlightRecorder, rec *Recovery) {
	if fr == nil || rec == nil {
		return
	}
	fr.Record(obs.EvRecovery, rec.Elapsed, int64(rec.OpsApplied), int64(rec.Records))
}
