package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Incremental checkpoints: delta generations and the manifest chain.
//
// A delta checkpoint carries only the pairs mutated since the previous
// generation (its parent): per-shard groups of puts and tombstones, read
// under one consistent per-shard snapshot of exactly those keys. The file
// layout is
//
//	magic "SFDELT01"
//	u32 shards | u64 gen | u64 parentGen | u64 baseSeg
//	shards × u64 cut      (snapshot position per shard; 0 for untouched shards)
//	u32 ngroups | ngroups × ( u32 shard | u64 nentries |
//	        nentries × (u8 kind | u64 key | u64 val) )
//	u32 CRC-32C of everything before it
//
// where kind 0 is a put and kind 1 a tombstone (the key was dirty but absent
// at the snapshot). A manifest names the whole chain its generation depends
// on, base first:
//
//	magic "SFMANI01"
//	u32 shards | u64 gen | u64 baseSeg
//	u32 nchain | nchain × (u64 gen | u8 kind)      (kind 0 full, 1 delta)
//	u32 CRC-32C
//
// Both files are sealed exactly like full checkpoints: written to a
// temporary name, fsynced, renamed into place, directory synced. The
// encodings are canonical — groups in strictly ascending shard order,
// entries in strictly ascending key order, tombstone values zero, the chain
// strictly ascending with exactly one full base first — so a successful
// decode re-encodes byte-identically (FuzzDeltaDecode, FuzzManifestDecode).
//
// Versioning: the magic is the version. Full bases keep the PR 5 "SFCKPT01"
// format untouched, so directories written before deltas existed recover on
// the same path they always did (no manifest simply means a chain of one
// bare full checkpoint).

const (
	deltaMagic    = "SFDELT01"
	manifestMagic = "SFMANI01"
)

// deltaEntry is one pair in a delta group: a put of (k, v), or — when del is
// set — a tombstone for k (v must be zero).
type deltaEntry struct {
	k, v uint64
	del  bool
}

// deltaGroup is one shard's share of a delta checkpoint.
type deltaGroup struct {
	shard   int
	entries []deltaEntry
}

// deltaFile is a decoded delta checkpoint.
type deltaFile struct {
	shards    int
	gen       uint64
	parentGen uint64
	baseSeg   uint64
	cuts      []uint64
	groups    []deltaGroup
}

// manifestEntry is one chain element: a generation and whether it is a
// delta (false means the full base).
type manifestEntry struct {
	gen   uint64
	delta bool
}

// manifest is a decoded manifest file.
type manifest struct {
	shards  int
	gen     uint64
	baseSeg uint64
	chain   []manifestEntry
}

// deltaName returns the sealed name of delta generation gen.
func deltaName(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("delta-%016d.ckpt", gen))
}

// manifestName returns the sealed name of generation gen's manifest.
func manifestName(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("manifest-%016d.mf", gen))
}

// encodeDelta encodes one delta checkpoint in canonical form, CRC included.
func encodeDelta(d deltaFile) []byte {
	n := len(deltaMagic) + 4 + 24 + 8*len(d.cuts) + 4
	for _, g := range d.groups {
		n += 12 + 17*len(g.entries)
	}
	b := make([]byte, 0, n+4)
	b = append(b, deltaMagic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(d.shards))
	b = binary.LittleEndian.AppendUint64(b, d.gen)
	b = binary.LittleEndian.AppendUint64(b, d.parentGen)
	b = binary.LittleEndian.AppendUint64(b, d.baseSeg)
	for _, c := range d.cuts {
		b = binary.LittleEndian.AppendUint64(b, c)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.groups)))
	for _, g := range d.groups {
		b = binary.LittleEndian.AppendUint32(b, uint32(g.shard))
		b = binary.LittleEndian.AppendUint64(b, uint64(len(g.entries)))
		for _, e := range g.entries {
			kind := byte(0)
			if e.del {
				kind = 1
			}
			b = append(b, kind)
			b = binary.LittleEndian.AppendUint64(b, e.k)
			b = binary.LittleEndian.AppendUint64(b, e.v)
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// decodeDelta decodes and validates one whole delta checkpoint file,
// including its CRC and the canonical-form rules. Any violation is an error
// — recovery then treats the file as damaged and falls back.
func decodeDelta(b []byte) (deltaFile, error) {
	var df deltaFile
	if len(b) < len(deltaMagic)+4+24+4 || string(b[:len(deltaMagic)]) != deltaMagic {
		return df, fmt.Errorf("durable: not a delta checkpoint")
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return df, fmt.Errorf("durable: delta checksum mismatch")
	}
	d := &decoder{b: body, off: len(deltaMagic)}
	ns, err := d.u32()
	if err != nil {
		return df, err
	}
	if ns == 0 || ns > maxShards {
		return df, fmt.Errorf("durable: delta shard count %d out of range", ns)
	}
	df.shards = int(ns)
	if df.gen, err = d.u64(); err != nil {
		return df, err
	}
	if df.parentGen, err = d.u64(); err != nil {
		return df, err
	}
	if df.baseSeg, err = d.u64(); err != nil {
		return df, err
	}
	if uint64(len(body)-d.off) < 8*uint64(ns) {
		return df, fmt.Errorf("durable: delta cut array exceeds file size")
	}
	df.cuts = make([]uint64, ns)
	for i := range df.cuts {
		if df.cuts[i], err = d.u64(); err != nil {
			return df, err
		}
	}
	ng, err := d.u32()
	if err != nil {
		return df, err
	}
	if int(ng) > df.shards {
		return df, fmt.Errorf("durable: delta has %d groups for %d shards", ng, ns)
	}
	prevShard := -1
	for gi := uint32(0); gi < ng; gi++ {
		si, err := d.u32()
		if err != nil {
			return df, err
		}
		if int(si) >= df.shards || int(si) <= prevShard {
			return df, fmt.Errorf("durable: delta group shard %d out of order", si)
		}
		prevShard = int(si)
		ne, err := d.u64()
		if err != nil {
			return df, err
		}
		if ne == 0 || ne > uint64(len(body)-d.off)/17 {
			return df, fmt.Errorf("durable: delta entry count %d implausible", ne)
		}
		entries := make([]deltaEntry, 0, ne)
		prevKey, first := uint64(0), true
		for i := uint64(0); i < ne; i++ {
			kind, err := d.u8()
			if err != nil {
				return df, err
			}
			if kind > 1 {
				return df, fmt.Errorf("durable: delta entry kind %d unknown", kind)
			}
			k, err := d.u64()
			if err != nil {
				return df, err
			}
			v, err := d.u64()
			if err != nil {
				return df, err
			}
			if !first && k <= prevKey {
				return df, fmt.Errorf("durable: delta keys out of order")
			}
			prevKey, first = k, false
			if kind == 1 && v != 0 {
				return df, fmt.Errorf("durable: delta tombstone with nonzero value")
			}
			entries = append(entries, deltaEntry{k: k, v: v, del: kind == 1})
		}
		df.groups = append(df.groups, deltaGroup{shard: int(si), entries: entries})
	}
	if d.off != len(body) {
		return df, fmt.Errorf("durable: delta has %d trailing bytes", len(body)-d.off)
	}
	return df, nil
}

// encodeManifest encodes one manifest in canonical form, CRC included.
func encodeManifest(m manifest) []byte {
	b := make([]byte, 0, len(manifestMagic)+4+16+4+9*len(m.chain)+4)
	b = append(b, manifestMagic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.shards))
	b = binary.LittleEndian.AppendUint64(b, m.gen)
	b = binary.LittleEndian.AppendUint64(b, m.baseSeg)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.chain)))
	for _, e := range m.chain {
		b = binary.LittleEndian.AppendUint64(b, e.gen)
		kind := byte(0)
		if e.delta {
			kind = 1
		}
		b = append(b, kind)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// decodeManifest decodes and validates one whole manifest file, including
// its CRC and the canonical chain shape: at least one entry, a full base
// first, deltas after, generations strictly ascending, the last generation
// equal to the manifest's own.
func decodeManifest(b []byte) (manifest, error) {
	var m manifest
	if len(b) < len(manifestMagic)+4+16+4+4 || string(b[:len(manifestMagic)]) != manifestMagic {
		return m, fmt.Errorf("durable: not a manifest")
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return m, fmt.Errorf("durable: manifest checksum mismatch")
	}
	d := &decoder{b: body, off: len(manifestMagic)}
	ns, err := d.u32()
	if err != nil {
		return m, err
	}
	if ns == 0 || ns > maxShards {
		return m, fmt.Errorf("durable: manifest shard count %d out of range", ns)
	}
	m.shards = int(ns)
	if m.gen, err = d.u64(); err != nil {
		return m, err
	}
	if m.baseSeg, err = d.u64(); err != nil {
		return m, err
	}
	nc, err := d.u32()
	if err != nil {
		return m, err
	}
	if nc == 0 || uint64(nc) > uint64(len(body)-d.off)/9 {
		return m, fmt.Errorf("durable: manifest chain length %d implausible", nc)
	}
	m.chain = make([]manifestEntry, 0, nc)
	for i := uint32(0); i < nc; i++ {
		g, err := d.u64()
		if err != nil {
			return m, err
		}
		kind, err := d.u8()
		if err != nil {
			return m, err
		}
		if kind > 1 {
			return m, fmt.Errorf("durable: manifest entry kind %d unknown", kind)
		}
		if i == 0 && kind != 0 {
			return m, fmt.Errorf("durable: manifest chain does not start at a full base")
		}
		if i > 0 {
			if kind != 1 {
				return m, fmt.Errorf("durable: manifest chain has a full base past the first entry")
			}
			if g <= m.chain[i-1].gen {
				return m, fmt.Errorf("durable: manifest chain generations out of order")
			}
		}
		m.chain = append(m.chain, manifestEntry{gen: g, delta: kind == 1})
	}
	if m.chain[len(m.chain)-1].gen != m.gen {
		return m, fmt.Errorf("durable: manifest generation %d does not end its chain", m.gen)
	}
	if d.off != len(body) {
		return m, fmt.Errorf("durable: manifest has %d trailing bytes", len(body)-d.off)
	}
	return m, nil
}

// readDeltaFile loads and decodes one sealed delta checkpoint.
func readDeltaFile(path string) (deltaFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return deltaFile{}, err
	}
	return decodeDelta(b)
}

// readManifestFile loads and decodes one sealed manifest.
func readManifestFile(path string) (manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return manifest{}, err
	}
	return decodeManifest(b)
}

// sealFile writes b to path via a temporary name, fsyncing the file before
// the rename and the directory after it — the rename is the seal.
func sealFile(dir, path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}
