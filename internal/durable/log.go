// Package durable adds crash durability to the in-memory tree forest: a
// group-committed, checksummed write-ahead log fed by the STM's reliable
// post-commit hooks and by the cross-shard transaction coordinator, plus
// periodic consistent checkpoints built from per-shard snapshot scans, with
// log rotation and truncation once a checkpoint seals. Recovery loads the
// newest sealed checkpoint and replays the surviving WAL tail idempotently.
//
// # What is logged, and when
//
// The log is a redo log written after commit: a committed single-shard
// transaction appends one update record (its shard, its commit-clock
// position, and its absolute effects — puts and deletes), and a committed
// cross-shard transaction appends one atomic record carrying every
// participating shard's share, logged at finalize so the transaction's
// atomicity carries onto disk (a record is wholly present or wholly torn,
// never split). Records are framed with a length prefix and a CRC-32C, so a
// truncated or corrupted tail is detected and cleanly discarded.
//
// # Durability contract
//
// Group commit bounds the loss window: with Options.Sync every record is
// flushed and fsynced before the append returns (per-operation durability);
// otherwise a background committer flushes and fsyncs every GroupCommit
// interval, so a crash loses at most the operations of the last unsynced
// window. Because records are appended after publication, commit order and
// append order can differ under concurrency; recovery restores per-shard,
// per-key ordering among the surviving records by sorting them on their
// shard-clock positions. The contract is therefore: every operation whose
// record was synced (equivalently, every operation that returned, plus
// under group commit the synced part of the final window) is recovered
// exactly; operations still in flight at the crash — published in memory,
// record not yet on disk — are retained or lost independently of one
// another, so no cross-transaction ordering is promised within that final
// window (a later record can survive a tear that loses an earlier
// concurrent one; logging at the lock point instead would buy strict
// prefixes and is a ROADMAP item). Single-writer histories, and any
// history under Sync, recover as exact per-shard prefixes.
//
// # Checkpoints and recovery
//
// A checkpoint first rotates the log to a fresh segment, then scans every
// shard with one consistent read-only snapshot (recording the shard's
// commit-clock cut), writes the pairs to a temporary file and seals it by
// rename. Rotating first guarantees every record in the older segments is
// covered by the snapshot (its transaction published before the rotation,
// hence before the snapshot's clock draw), so the older segments and
// checkpoints are deleted once the seal lands. A crash anywhere in that
// window is safe: recovery picks the newest sealed checkpoint, replays only
// segments at or above its base, and skips any record position at or below
// the checkpoint's per-shard cut — stale files left by an interrupted
// truncation are ignored or re-deleted.
package durable

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Defaults for the zero Options value.
const (
	// DefaultGroupCommit is the background flush+fsync interval when
	// neither Sync nor an explicit interval is configured.
	DefaultGroupCommit = 2 * time.Millisecond
	// DefaultCheckpointEvery is the periodic-checkpoint interval when none
	// is configured.
	DefaultCheckpointEvery = time.Second
)

// segMagic heads every WAL segment, followed by the shard count.
const segMagic = "SFWAL001"

// segHeaderLen is the segment header size (magic + u32 shard count).
const segHeaderLen = len(segMagic) + 4

// Options are the durability dials.
type Options struct {
	// Sync fsyncs the log before every append returns: per-operation
	// durability, at per-operation fsync cost. It overrides GroupCommit.
	Sync bool
	// GroupCommit is the background committer's flush+fsync interval.
	// 0 selects DefaultGroupCommit; a negative value disables the
	// committer entirely (records still reach the OS on every append, but
	// are never explicitly fsynced — the crash window is the OS's).
	GroupCommit time.Duration
	// CheckpointEvery is the periodic-checkpoint interval used by
	// StartCheckpoints. 0 selects DefaultCheckpointEvery; a negative value
	// disables periodic checkpoints (manual Checkpoint calls still work).
	CheckpointEvery time.Duration
}

func (o Options) groupCommit() time.Duration {
	if o.Sync || o.GroupCommit < 0 {
		return 0
	}
	if o.GroupCommit == 0 {
		return DefaultGroupCommit
	}
	return o.GroupCommit
}

func (o Options) checkpointEvery() time.Duration {
	if o.CheckpointEvery < 0 {
		return 0
	}
	if o.CheckpointEvery == 0 {
		return DefaultCheckpointEvery
	}
	return o.CheckpointEvery
}

// Source is the in-memory store a Log checkpoints: per-shard consistent
// snapshots cut at a commit-clock position. forest.Forest implements it.
// SnapshotShard is called by one checkpointer at a time (never
// concurrently with itself).
type Source interface {
	// Shards reports the number of partitions.
	Shards() int
	// SnapshotShard streams one consistent snapshot of shard si through fn
	// and returns the shard-clock position the snapshot was cut at: every
	// transaction that published at or below it is included, everything
	// later excluded.
	SnapshotShard(si int, fn func(k, v uint64)) uint64
}

// Stats counts a Log's activity. All fields are monotonically increasing.
type Stats struct {
	Records         uint64 // records appended (update + atomic)
	AtomicRecords   uint64 // the cross-shard subset of Records
	Bytes           uint64 // framed bytes appended
	Flushes         uint64 // buffered-writer flushes
	Syncs           uint64 // fsyncs of the live segment
	Checkpoints     uint64 // checkpoints sealed
	CheckpointPairs uint64 // pairs written across all checkpoints
	CheckpointNanos uint64 // wall time spent checkpointing
	Rotations       uint64 // segment rotations
	FilesRemoved    uint64 // obsolete segments and checkpoints deleted
}

// errClosed is returned by operations on a closed Log.
var errClosed = errors.New("durable: log is closed")

// Log is an open write-ahead log: one live segment receiving appends, plus
// the checkpoint machinery. Appends are safe for concurrent use by any
// number of committing threads; Checkpoint/StartCheckpoints drive one
// checkpointer at a time. Create one with Open, which also performs
// recovery.
type Log struct {
	dir    string
	o      Options
	shards int

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	seg     uint64 // live segment index
	nextGen uint64 // next checkpoint generation
	dirty   bool   // bytes written since the last fsync
	closed  bool
	err     error // first write error, sticky
	payload []byte
	framed  []byte
	st      Stats

	// ckptMu serializes whole checkpoints (the periodic loop and manual
	// Checkpoint calls).
	ckptMu sync.Mutex

	committerStop chan struct{}
	committerDone chan struct{}
	ckptStop      chan struct{}
	ckptDone      chan struct{}
}

// Open recovers the directory's durable state and opens a fresh log
// generation for appends. shards must match the store the log feeds (and
// the value any prior state in dir was written with). The returned Recovery
// holds the recovered key/value state; the caller loads it into the store,
// attaches the log, and should then seal a fresh checkpoint (repro.Open
// does) so the replayed history is rebased onto the new process's clocks.
func Open(dir string, shards int, o Options) (*Log, *Recovery, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("durable: shard count %d < 1", shards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec, maxSeg, maxGen, err := recoverDir(dir, shards)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, o: o, shards: shards, seg: maxSeg, nextGen: maxGen + 1}
	l.mu.Lock()
	err = l.openSegmentLocked(maxSeg + 1)
	l.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	if d := o.groupCommit(); d > 0 {
		l.committerStop = make(chan struct{})
		l.committerDone = make(chan struct{})
		go l.committer(d)
	}
	return l, rec, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Shards reports the shard count the log was opened with.
func (l *Log) Shards() int { return l.shards }

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st
}

// Err returns the first write error the log encountered, if any. A log
// with a sticky error keeps accepting appends (they are dropped) so the
// in-memory store stays usable; the caller decides whether to fail over.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// LiveSegment returns the path of the segment currently receiving appends
// (instrumentation and crash tests).
func (l *Log) LiveSegment() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return segmentName(l.dir, l.seg)
}

// segmentName returns the path of segment index i.
func segmentName(dir string, i uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", i))
}

// openSegmentLocked creates and heads a fresh segment. Caller holds mu.
func (l *Log) openSegmentLocked(i uint64) error {
	f, err := os.OpenFile(segmentName(l.dir, i), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.seg = i
	l.w = bufio.NewWriterSize(f, 1<<16)
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = append(hdr, byte(l.shards), byte(l.shards>>8), byte(l.shards>>16), byte(l.shards>>24))
	if _, err := l.w.Write(hdr); err != nil {
		return err
	}
	l.dirty = true
	return syncDir(l.dir)
}

// LogUpdate appends one committed single-shard transaction: its shard, the
// commit-clock position its publication carried, and its effects. The ops
// slice is encoded before LogUpdate returns and may be reused by the
// caller. Empty transactions append nothing.
func (l *Log) LogUpdate(shard int, seq uint64, ops []Op) {
	if len(ops) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.payload = encodeUpdate(l.payload[:0], shard, seq, ops)
	l.appendLocked(false)
}

// LogAtomic appends one committed cross-shard transaction as a single
// record: each participating shard's effects with that shard's lock-point
// clock position, atomically present or absent on disk. Parts with no ops
// are skipped; an all-empty record appends nothing.
func (l *Log) LogAtomic(parts []ShardOps) {
	n := 0
	for i := range parts {
		if len(parts[i].Ops) > 0 {
			n++
		}
	}
	if n == 0 {
		return
	}
	live := make([]ShardOps, 0, n)
	for i := range parts {
		if len(parts[i].Ops) > 0 {
			live = append(live, parts[i])
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.payload = encodeAtomic(l.payload[:0], live)
	l.appendLocked(true)
}

// appendLocked frames l.payload into the live segment and applies the
// configured flush/sync discipline. Caller holds mu.
func (l *Log) appendLocked(atomic bool) {
	if len(l.payload) > maxPayload {
		// Recovery rejects frames over maxPayload as corruption and drops
		// everything after them, so writing one would poison the whole log
		// tail. A transaction whose write set encodes past 16MB (~1M ops)
		// is far outside this system's envelope; surface it as the sticky
		// error instead of appending.
		l.setErrLocked(fmt.Errorf("durable: record payload %d bytes exceeds the %d-byte bound; transaction not logged", len(l.payload), maxPayload))
		return
	}
	l.framed = frame(l.framed[:0], l.payload)
	if _, err := l.w.Write(l.framed); err != nil {
		l.setErrLocked(err)
		return
	}
	l.st.Records++
	if atomic {
		l.st.AtomicRecords++
	}
	l.st.Bytes += uint64(len(l.framed))
	l.dirty = true
	if l.o.Sync {
		l.flushSyncLocked()
	} else if l.o.groupCommit() == 0 {
		// No committer: hand the record to the OS immediately so the loss
		// window is the OS cache, not this process's buffer.
		if err := l.w.Flush(); err != nil {
			l.setErrLocked(err)
			return
		}
		l.st.Flushes++
	}
}

// setErrLocked records the first write error. Caller holds mu.
func (l *Log) setErrLocked(err error) {
	if l.err == nil {
		l.err = err
	}
}

// flushSyncLocked flushes the buffered writer and fsyncs the segment if
// anything reached it since the last sync. Caller holds mu.
func (l *Log) flushSyncLocked() {
	if l.w.Buffered() > 0 {
		if err := l.w.Flush(); err != nil {
			l.setErrLocked(err)
			return
		}
		l.st.Flushes++
	}
	if l.dirty {
		if err := l.f.Sync(); err != nil {
			l.setErrLocked(err)
			return
		}
		l.st.Syncs++
		l.dirty = false
	}
}

// Sync flushes and fsyncs the live segment (the group committer's tick,
// callable directly for an explicit durability point). It returns the
// log's sticky error state.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	l.flushSyncLocked()
	return l.err
}

// committer is the group-commit loop.
func (l *Log) committer(d time.Duration) {
	defer close(l.committerDone)
	t := time.NewTicker(d)
	defer t.Stop()
	for {
		select {
		case <-l.committerStop:
			return
		case <-t.C:
			l.Sync()
		}
	}
}

// Checkpoint seals one consistent checkpoint of src and truncates the log
// behind it: rotate to a fresh segment, snapshot every shard, write and
// seal the checkpoint file, then delete the now-covered older segments and
// checkpoints. Concurrent appends proceed throughout (into the fresh
// segment during the snapshot). Checkpoint calls serialize with each other
// and with the periodic loop.
func (l *Log) Checkpoint(src Source) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	return l.checkpoint(src, true)
}

// checkpoint is Checkpoint with the truncation step separable, so crash
// tests can reproduce the "sealed but not yet truncated" window.
func (l *Log) checkpoint(src Source, truncate bool) error {
	if src.Shards() != l.shards {
		return fmt.Errorf("durable: source has %d shards, log %d", src.Shards(), l.shards)
	}
	start := time.Now()

	// Rotate first: every record already in the old segments belongs to a
	// transaction that published before the snapshot below draws its clock
	// positions, so the snapshot covers the old segments entirely.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	l.flushSyncLocked()
	if err := l.f.Close(); err != nil {
		l.setErrLocked(err)
	}
	gen := l.nextGen
	l.nextGen++
	base := l.seg + 1
	if err := l.openSegmentLocked(base); err != nil {
		l.setErrLocked(err)
		l.mu.Unlock()
		return err
	}
	l.st.Rotations++
	l.mu.Unlock()

	cuts := make([]uint64, l.shards)
	var pairs []kvPair
	for si := 0; si < l.shards; si++ {
		cuts[si] = src.SnapshotShard(si, func(k, v uint64) {
			pairs = append(pairs, kvPair{k: k, v: v})
		})
	}
	if err := writeCheckpoint(l.dir, l.shards, gen, base, cuts, pairs); err != nil {
		l.mu.Lock()
		l.setErrLocked(err)
		l.mu.Unlock()
		return err
	}
	removed := 0
	if truncate {
		removed = removeObsolete(l.dir, base, gen)
	}

	l.mu.Lock()
	l.st.Checkpoints++
	l.st.CheckpointPairs += uint64(len(pairs))
	l.st.CheckpointNanos += uint64(time.Since(start).Nanoseconds())
	l.st.FilesRemoved += uint64(removed)
	l.mu.Unlock()
	return nil
}

// removeObsolete deletes segments below base and checkpoints below gen,
// returning how many files went away. Failures are ignored — recovery
// tolerates stale files, and the next checkpoint retries.
func removeObsolete(dir string, base, gen uint64) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range ents {
		name := e.Name()
		if i, ok := parseIndexed(name, "wal-", ".log"); ok && i < base {
			if os.Remove(filepath.Join(dir, name)) == nil {
				removed++
			}
		}
		if g, ok := parseIndexed(name, "checkpoint-", ".ckpt"); ok && g < gen {
			if os.Remove(filepath.Join(dir, name)) == nil {
				removed++
			}
		}
	}
	return removed
}

// StartCheckpoints begins the periodic checkpoint loop against src (no-op
// when Options disabled it). Stop it with Close.
func (l *Log) StartCheckpoints(src Source) {
	every := l.o.checkpointEvery()
	if every <= 0 || l.ckptStop != nil {
		return
	}
	l.ckptStop = make(chan struct{})
	l.ckptDone = make(chan struct{})
	go func() {
		defer close(l.ckptDone)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-l.ckptStop:
				return
			case <-t.C:
				l.Checkpoint(src)
			}
		}
	}()
}

// Close stops the background loops, flushes and fsyncs the tail, and
// closes the live segment. The log accepts no appends afterwards; closing
// twice is a no-op.
func (l *Log) Close() error {
	if l.ckptStop != nil {
		close(l.ckptStop)
		<-l.ckptDone
		l.ckptStop = nil
	}
	if l.committerStop != nil {
		close(l.committerStop)
		<-l.committerDone
		l.committerStop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.err
	}
	l.flushSyncLocked()
	if err := l.f.Close(); err != nil {
		l.setErrLocked(err)
	}
	l.closed = true
	return l.err
}
