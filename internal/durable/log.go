// Package durable adds crash durability to the in-memory tree forest: a
// group-committed, checksummed write-ahead log fed by the STM's reliable
// post-commit hooks and by the cross-shard transaction coordinator, plus
// periodic consistent checkpoints built from per-shard snapshot scans, with
// log rotation and truncation once a checkpoint seals. Recovery loads the
// newest sealed checkpoint and replays the surviving WAL tail idempotently.
//
// # What is logged, and when
//
// The log is a redo log written after commit: a committed single-shard
// transaction appends one update record (its shard, its commit-clock
// position, and its absolute effects — puts and deletes), and a committed
// cross-shard transaction appends one atomic record carrying every
// participating shard's share, logged at finalize so the transaction's
// atomicity carries onto disk (a record is wholly present or wholly torn,
// never split). Records are framed with a length prefix and a CRC-32C, so a
// truncated or corrupted tail is detected and cleanly discarded.
//
// # Durability contract
//
// Group commit bounds the loss window: with Options.Sync every record is
// flushed and fsynced before the append returns (per-operation durability);
// otherwise a background committer flushes and fsyncs every GroupCommit
// interval, so a crash loses at most the operations of the last unsynced
// window. Because records are appended after publication, commit order and
// append order can differ under concurrency; recovery restores per-shard,
// per-key ordering among the surviving records by sorting them on their
// shard-clock positions. The contract is therefore: every operation whose
// record was synced (equivalently, every operation that returned, plus
// under group commit the synced part of the final window) is recovered
// exactly; operations still in flight at the crash — published in memory,
// record not yet on disk — are retained or lost independently of one
// another, so no cross-transaction ordering is promised within that final
// window (a later record can survive a tear that loses an earlier
// concurrent one; logging at the lock point instead would buy strict
// prefixes and is a ROADMAP item). Single-writer histories, and any
// history under Sync, recover as exact per-shard prefixes.
//
// # Checkpoints and recovery
//
// A checkpoint first rotates the log to a fresh segment, then scans every
// shard with one consistent read-only snapshot (recording the shard's
// commit-clock cut), writes the pairs to a temporary file and seals it by
// rename. Rotating first guarantees every record in the older segments is
// covered by the snapshot (its transaction published before the rotation,
// hence before the snapshot's clock draw), so the older segments and
// checkpoints are deleted once the seal lands. A crash anywhere in that
// window is safe: recovery picks the newest sealed checkpoint, replays only
// segments at or above its base, and skips any record position at or below
// the checkpoint's per-shard cut — stale files left by an interrupted
// truncation are ignored or re-deleted.
//
// # Incremental checkpoints
//
// Rewriting the whole store every checkpoint makes checkpoint cost grow
// with store size even when almost nothing changed. The log therefore
// tracks, per shard, the set of keys mutated since the last checkpoint —
// maintained at append time, under the same lock the records take, so the
// set is exactly the keys of the records in the segments a checkpoint
// covers. When the dirty set is small relative to the store, the
// checkpoint writes a delta generation instead of a full base: only the
// dirty keys, read under a consistent per-shard snapshot (puts for present
// keys, tombstones for absent ones), plus a manifest chaining the delta
// back through its ancestors to the last full base. Long chains are folded
// by compaction — after Options.CompactEvery deltas (or when the dirty
// fraction exceeds Options.DeltaMaxFrac) the next checkpoint is a fresh
// full base and the old chain is deleted. A checkpoint with an empty dirty
// set is skipped outright, so an idle store costs no checkpoint I/O at all.
//
// Correctness does not depend on append timing: a record can reach the log
// after the delta that covers its window was cut (its committer was
// preempted between publication and append). Such a record's key is not in
// the delta, and recovery's skip rule is per key — a replayed record is
// skipped only when its position is at or below the cut of the newest
// chain generation that actually covered its key (the full base covers
// every key; a delta covers only its own entries) — so the late record is
// replayed rather than lost.
package durable

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Defaults for the zero Options value.
const (
	// DefaultGroupCommit is the background flush+fsync interval when
	// neither Sync nor an explicit interval is configured.
	DefaultGroupCommit = 2 * time.Millisecond
	// DefaultCheckpointEvery is the periodic-checkpoint interval when none
	// is configured.
	DefaultCheckpointEvery = time.Second
	// DefaultCompactEvery is the delta-chain length at which the next
	// checkpoint compacts to a fresh full base.
	DefaultCompactEvery = 8
	// DefaultDeltaMaxFrac is the dirty fraction (dirty keys over the last
	// full base's pairs) above which a checkpoint writes a full base
	// instead of a delta.
	DefaultDeltaMaxFrac = 0.25
	// DefaultMaxUnsynced is the backpressure bound on bytes appended but
	// not yet fsynced under group commit.
	DefaultMaxUnsynced = 1 << 20
	// defaultRecoveryAppliers caps the parallel recovery applier count when
	// none is configured (the effective count is min(shards, this)).
	defaultRecoveryAppliers = 8
)

// segMagic heads every WAL segment, followed by the shard count.
const segMagic = "SFWAL001"

// segHeaderLen is the segment header size (magic + u32 shard count).
const segHeaderLen = len(segMagic) + 4

// Options are the durability dials.
type Options struct {
	// Sync fsyncs the log before every append returns: per-operation
	// durability, at per-operation fsync cost. It overrides GroupCommit.
	Sync bool
	// GroupCommit is the background committer's flush+fsync interval.
	// 0 selects DefaultGroupCommit; a negative value disables the
	// committer entirely (records still reach the OS on every append, but
	// are never explicitly fsynced — the crash window is the OS's).
	GroupCommit time.Duration
	// CheckpointEvery is the periodic-checkpoint interval used by
	// StartCheckpoints. 0 selects DefaultCheckpointEvery; a negative value
	// disables periodic checkpoints (manual Checkpoint calls still work).
	CheckpointEvery time.Duration
	// CompactEvery bounds the delta chain: after this many delta
	// generations the next checkpoint writes a fresh full base and deletes
	// the old chain. 0 selects DefaultCompactEvery; a negative value
	// disables incremental checkpoints entirely (every checkpoint is a
	// full base, the PR 5 behavior).
	CompactEvery int
	// DeltaMaxFrac is the dirty fraction above which a checkpoint writes a
	// full base rather than a delta: when more than this fraction of the
	// last full base's pairs mutated, a delta would not pay for itself.
	// 0 selects DefaultDeltaMaxFrac.
	DeltaMaxFrac float64
	// MaxUnsynced bounds the bytes appended but not yet fsynced under
	// group commit: an append that would exceed it flushes and fsyncs
	// inline (bounded blocking — backpressure instead of an unbounded
	// loss window when writers outrun the committer). 0 selects
	// DefaultMaxUnsynced; a negative value disables the bound.
	MaxUnsynced int
	// RecoveryAppliers is the number of parallel applier goroutines
	// recovery partitions its replay across. 0 selects min(shards,
	// defaultRecoveryAppliers); 1 forces the serial path.
	RecoveryAppliers int
}

func (o Options) groupCommit() time.Duration {
	if o.Sync || o.GroupCommit < 0 {
		return 0
	}
	if o.GroupCommit == 0 {
		return DefaultGroupCommit
	}
	return o.GroupCommit
}

func (o Options) checkpointEvery() time.Duration {
	if o.CheckpointEvery < 0 {
		return 0
	}
	if o.CheckpointEvery == 0 {
		return DefaultCheckpointEvery
	}
	return o.CheckpointEvery
}

// deltas reports whether incremental checkpoints are enabled.
func (o Options) deltas() bool { return o.CompactEvery >= 0 }

func (o Options) compactEvery() int {
	if o.CompactEvery == 0 {
		return DefaultCompactEvery
	}
	return o.CompactEvery
}

func (o Options) deltaMaxFrac() float64 {
	if o.DeltaMaxFrac <= 0 {
		return DefaultDeltaMaxFrac
	}
	return o.DeltaMaxFrac
}

func (o Options) maxUnsynced() int {
	if o.MaxUnsynced == 0 {
		return DefaultMaxUnsynced
	}
	if o.MaxUnsynced < 0 {
		return int(^uint(0) >> 1)
	}
	return o.MaxUnsynced
}

func (o Options) recoveryAppliers(shards int) int {
	n := o.RecoveryAppliers
	if n <= 0 {
		n = min(shards, defaultRecoveryAppliers)
	}
	return max(1, n)
}

// Source is the in-memory store a Log checkpoints: per-shard consistent
// snapshots cut at a commit-clock position. forest.Forest implements it.
// SnapshotShard is called by one checkpointer at a time (never
// concurrently with itself).
type Source interface {
	// Shards reports the number of partitions.
	Shards() int
	// SnapshotShard streams one consistent snapshot of shard si through fn
	// and returns the shard-clock position the snapshot was cut at: every
	// transaction that published at or below it is included, everything
	// later excluded.
	SnapshotShard(si int, fn func(k, v uint64)) uint64
}

// DeltaSource is an optional Source extension for incremental checkpoints:
// a consistent read of exactly the given keys of one shard, so a delta's
// read cost is proportional to the churn rather than the store size.
// Sources without it still get delta checkpoints — the log falls back to a
// full SnapshotShard scan filtered to the dirty set (delta-sized writes,
// store-sized reads). forest.Forest implements it.
type DeltaSource interface {
	Source
	// SnapshotShardKeys reads the given keys of shard si under one
	// consistent snapshot, calling fn(k, v, true) for each present key and
	// fn(k, 0, false) for each absent one (in the order given), and
	// returns the shard-clock position the snapshot was cut at.
	SnapshotShardKeys(si int, keys []uint64, fn func(k, v uint64, ok bool)) uint64
}

// Stats counts a Log's activity. All fields are monotonically increasing.
type Stats struct {
	Records            uint64  // records appended (update + atomic)
	AtomicRecords      uint64  // the cross-shard subset of Records
	Bytes              uint64  // framed bytes appended
	Flushes            uint64  // buffered-writer flushes
	Syncs              uint64  // fsyncs of the live segment
	Stalls             uint64  // appends that hit the MaxUnsynced bound and fsynced inline
	Dropped            uint64  // records not logged: oversize payload, or appended while wedged on an I/O error
	Checkpoints        uint64  // checkpoints sealed (full bases + deltas)
	DeltaCheckpoints   uint64  // the incremental subset of Checkpoints
	SkippedCheckpoints uint64  // checkpoints skipped because nothing was dirty
	CheckpointPairs    uint64  // pairs written across all checkpoints (delta entries included)
	CheckpointBytes    uint64  // bytes written across checkpoint, delta, and manifest files
	CheckpointNanos    uint64  // wall time spent checkpointing
	DirtyFracSum       float64 // sum over delta checkpoints of dirtyKeys/basePairs (mean = /DeltaCheckpoints)
	Rotations          uint64  // segment rotations
	FilesRemoved       uint64  // obsolete segments, checkpoints, and manifests deleted
}

// errClosed is returned by operations on a closed Log.
var errClosed = errors.New("durable: log is closed")

// pendSpan is one traced append awaiting its fsync (see Log.pend): the
// sampled operation's trace id, the append instant, and the record's framed
// size and shard (A/B of the eventual SpanWALAppend; shard is -1 for a
// cross-shard atomic record).
type pendSpan struct {
	id    uint64
	at    int64
	shard int64
	bytes int64
}

// Log is an open write-ahead log: one live segment receiving appends, plus
// the checkpoint machinery. Appends are safe for concurrent use by any
// number of committing threads; Checkpoint/StartCheckpoints drive one
// checkpointer at a time. Create one with Open, which also performs
// recovery.
type Log struct {
	dir    string
	o      Options
	shards int

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	seg      uint64 // live segment index
	nextGen  uint64 // next checkpoint generation
	dirty    bool   // bytes written since the last fsync
	closed   bool
	err      error // first write error, sticky (surfaced by Err)
	wedged   bool  // an I/O error poisoned the live segment; appends drop until the next rotation
	unsynced int   // framed bytes appended since the last fsync (backpressure)
	payload  []byte
	framed   []byte
	st       Stats

	// Observability hooks, all optional (nil when the obs layer is not
	// wired): the flight recorder receives checkpoint/stall/drop/rotation
	// events, the histograms fsync latency and checkpoint duration. Set
	// under mu (SetFlightRecorder/RegisterObs), read by paths holding mu.
	fr    *obs.FlightRecorder
	syncH *obs.Histogram
	ckptH *obs.Histogram

	// tracer receives one SpanWALAppend per traced record, stretching from
	// the append to the fsync that made it durable. pend is the bounded
	// buffer of traced appends awaiting that fsync, drained by
	// flushSyncLocked; overflow or a wedged segment drops the span, never
	// the record. Set under mu (SetTracer), read by paths holding mu.
	tracer *obs.Tracer
	pend   [64]pendSpan
	pendN  int

	// dirtyKeys is the per-shard set of keys mutated since the last
	// checkpoint capture, maintained at append time under mu — the same
	// critical section the records take, so a checkpoint's captured set is
	// exactly the keys of the records in the segments it covers. Nil when
	// incremental checkpoints are disabled.
	dirtyKeys []map[uint64]struct{}

	// ckptMu serializes whole checkpoints (the periodic loop and manual
	// Checkpoint calls). It also guards the chain fields below, which only
	// the single checkpoint driver touches.
	ckptMu         sync.Mutex
	chain          []manifestEntry // current generation chain, full base first
	chainFullGen   uint64          // generation of the chain's full base
	chainFullPairs int             // pairs in the chain's full base (store-size estimate)

	committerStop chan struct{}
	committerDone chan struct{}
	ckptStop      chan struct{}
	ckptDone      chan struct{}
}

// Open recovers the directory's durable state and opens a fresh log
// generation for appends. shards must match the store the log feeds (and
// the value any prior state in dir was written with). The returned Recovery
// holds the recovered key/value state; the caller loads it into the store,
// attaches the log, and should then seal a fresh checkpoint (repro.Open
// does) so the replayed history is rebased onto the new process's clocks.
func Open(dir string, shards int, o Options) (*Log, *Recovery, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("durable: shard count %d < 1", shards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec, maxSeg, maxGen, err := recoverDir(dir, shards, o.recoveryAppliers(shards))
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, o: o, shards: shards, seg: maxSeg, nextGen: maxGen + 1}
	if o.deltas() {
		l.dirtyKeys = freshDirty(shards)
	}
	l.mu.Lock()
	err = l.openSegmentLocked(maxSeg + 1)
	l.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	if d := o.groupCommit(); d > 0 {
		l.committerStop = make(chan struct{})
		l.committerDone = make(chan struct{})
		go l.committer(d)
	}
	return l, rec, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Shards reports the shard count the log was opened with.
func (l *Log) Shards() int { return l.shards }

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st
}

// Err returns the first write error the log encountered, if any (sticky —
// later errors do not replace it). After an I/O error the log wedges:
// appends to the poisoned segment are dropped and counted in
// Stats.Dropped, until the next successful rotation opens a fresh segment.
// With incremental checkpoints enabled the dropped records' keys stay in
// the dirty set, so the next delta checkpoint re-captures their current
// values and the loss window closes at the next checkpoint. The in-memory
// store stays usable throughout; the caller decides whether to fail over.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// LiveSegment returns the path of the segment currently receiving appends
// (instrumentation and crash tests).
func (l *Log) LiveSegment() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return segmentName(l.dir, l.seg)
}

// segmentName returns the path of segment index i.
func segmentName(dir string, i uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", i))
}

// openSegmentLocked creates and heads a fresh segment. Caller holds mu.
func (l *Log) openSegmentLocked(i uint64) error {
	f, err := os.OpenFile(segmentName(l.dir, i), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.seg = i
	l.w = bufio.NewWriterSize(f, 1<<16)
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = append(hdr, byte(l.shards), byte(l.shards>>8), byte(l.shards>>16), byte(l.shards>>24))
	if _, err := l.w.Write(hdr); err != nil {
		return err
	}
	l.dirty = true
	l.unsynced = 0
	l.wedged = false // fresh segment, fresh writer: past I/O errors stay in Err only
	return syncDir(l.dir)
}

// LogUpdate appends one committed single-shard transaction: its shard, the
// commit-clock position its publication carried, and its effects. The ops
// slice is encoded before LogUpdate returns and may be reused by the
// caller. Empty transactions append nothing.
func (l *Log) LogUpdate(shard int, seq uint64, ops []Op) {
	l.LogUpdateT(shard, seq, ops, 0)
}

// LogUpdateT is LogUpdate carrying a sampled operation's trace id: when
// non-zero (and a tracer is attached), the record's eventual fsync closes a
// SpanWALAppend under that id, covering append→durability. Zero means
// untraced and is exactly LogUpdate.
func (l *Log) LogUpdateT(shard int, seq uint64, ops []Op, traceID uint64) {
	if len(ops) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if l.dirtyKeys != nil {
		d := l.dirtyKeys[shard]
		for i := range ops {
			d[ops[i].Key] = struct{}{}
		}
	}
	l.payload = encodeUpdate(l.payload[:0], shard, seq, ops)
	l.appendLocked(false, traceID, int64(shard))
}

// LogAtomic appends one committed cross-shard transaction as a single
// record: each participating shard's effects with that shard's lock-point
// clock position, atomically present or absent on disk. Parts with no ops
// are skipped; an all-empty record appends nothing.
func (l *Log) LogAtomic(parts []ShardOps) {
	l.LogAtomicT(parts, 0)
}

// LogAtomicT is LogAtomic carrying a sampled transaction's trace id (see
// LogUpdateT). The span's shard field is -1: the record spans shards.
func (l *Log) LogAtomicT(parts []ShardOps, traceID uint64) {
	n := 0
	for i := range parts {
		if len(parts[i].Ops) > 0 {
			n++
		}
	}
	if n == 0 {
		return
	}
	live := make([]ShardOps, 0, n)
	for i := range parts {
		if len(parts[i].Ops) > 0 {
			live = append(live, parts[i])
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if l.dirtyKeys != nil {
		for _, p := range live {
			d := l.dirtyKeys[p.Shard]
			for i := range p.Ops {
				d[p.Ops[i].Key] = struct{}{}
			}
		}
	}
	l.payload = encodeAtomic(l.payload[:0], live)
	l.appendLocked(true, traceID, -1)
}

// restoreDirtyLocked merges a captured dirty set back into l.dirtyKeys
// after a failed checkpoint attempt, so the mutated keys stay covered by
// the next generation instead of silently falling out of the chain (their
// records live only in segments a later successful delta would let
// removeObsolete delete). Union, not assignment: appends since the swap
// may have dirtied the fresh set. Caller holds mu.
func (l *Log) restoreDirtyLocked(captured []map[uint64]struct{}) {
	if captured == nil || l.dirtyKeys == nil {
		return
	}
	for si, m := range captured {
		d := l.dirtyKeys[si]
		for k := range m {
			d[k] = struct{}{}
		}
	}
}

// freshDirty allocates one empty dirty-key set per shard.
func freshDirty(shards int) []map[uint64]struct{} {
	d := make([]map[uint64]struct{}, shards)
	for i := range d {
		d[i] = make(map[uint64]struct{})
	}
	return d
}

// appendLocked frames l.payload into the live segment and applies the
// configured flush/sync discipline. A non-zero traceID enqueues a pending
// SpanWALAppend closed by the record's fsync (shard is the span's A field).
// Caller holds mu.
func (l *Log) appendLocked(atomic bool, traceID uint64, shard int64) {
	if l.wedged {
		// An earlier I/O error poisoned this segment; writing more into it
		// cannot produce a recoverable prefix. Count the drop and wait for
		// the next rotation to try a fresh segment.
		l.st.Dropped++
		l.fr.Record(obs.EvWALDrop, 0, int64(len(l.payload)), 0)
		return
	}
	if len(l.payload) > maxPayload {
		// Recovery rejects frames over maxPayload as corruption and drops
		// everything after them, so writing one would poison the whole log
		// tail. A transaction whose write set encodes past 16MB (~1M ops)
		// is far outside this system's envelope; surface it as the sticky
		// error instead of appending. Only this record is dropped — the
		// segment stays healthy.
		l.st.Dropped++
		l.fr.Record(obs.EvWALDrop, 0, int64(len(l.payload)), 0)
		l.setErrLocked(fmt.Errorf("durable: record payload %d bytes exceeds the %d-byte bound; transaction not logged", len(l.payload), maxPayload))
		return
	}
	l.framed = frame(l.framed[:0], l.payload)
	if _, err := l.w.Write(l.framed); err != nil {
		l.st.Dropped++
		l.fr.Record(obs.EvWALDrop, 0, int64(len(l.framed)), 0)
		l.setErrLocked(err)
		l.wedged = true
		return
	}
	l.st.Records++
	if atomic {
		l.st.AtomicRecords++
	}
	l.st.Bytes += uint64(len(l.framed))
	l.dirty = true
	l.unsynced += len(l.framed)
	if traceID != 0 && l.tracer != nil && l.pendN < len(l.pend) {
		l.pend[l.pendN] = pendSpan{id: traceID, at: time.Now().UnixNano(),
			shard: shard, bytes: int64(len(l.framed))}
		l.pendN++
	}
	if l.o.Sync {
		l.flushSyncLocked()
		return
	}
	if l.o.groupCommit() == 0 {
		// No committer: hand the record to the OS immediately so the loss
		// window is the OS cache, not this process's buffer.
		if err := l.w.Flush(); err != nil {
			l.setErrLocked(err)
			l.wedged = true
			return
		}
		l.st.Flushes++
	}
	if l.unsynced > l.o.maxUnsynced() {
		// Backpressure: writers outran the group committer past the bound.
		// Blocking this append for one flush+fsync keeps the loss window
		// (and the committer's queue) bounded instead of letting it grow
		// with the write rate.
		l.st.Stalls++
		pre := l.unsynced
		var t0 time.Time
		if l.fr != nil {
			t0 = time.Now()
		}
		l.flushSyncLocked()
		if l.fr != nil {
			l.fr.Record(obs.EvWALStall, time.Since(t0), int64(pre), 0)
		}
	}
}

// setErrLocked records the first write error. Caller holds mu.
func (l *Log) setErrLocked(err error) {
	if l.err == nil {
		l.err = err
	}
}

// flushSyncLocked flushes the buffered writer and fsyncs the segment if
// anything reached it since the last sync. Caller holds mu. Flush and
// fsync failures wedge the segment (post-failure write state is unknown);
// the next rotation un-wedges onto a fresh file.
func (l *Log) flushSyncLocked() {
	if l.w.Buffered() > 0 {
		if err := l.w.Flush(); err != nil {
			l.setErrLocked(err)
			l.wedged = true
			l.pendN = 0 // durability unknown: drop the pending spans
			return
		}
		l.st.Flushes++
	}
	if l.dirty {
		var t0 time.Time
		if l.syncH != nil {
			t0 = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			l.setErrLocked(err)
			l.wedged = true
			l.pendN = 0
			return
		}
		if l.syncH != nil {
			l.syncH.Record(uint64(time.Since(t0)))
		}
		l.st.Syncs++
		l.dirty = false
	}
	l.unsynced = 0
	if l.pendN > 0 {
		// Every pending record is now durable: close its append→fsync span.
		// Under Sync this fires inline per append; under group commit a whole
		// window's traced records share this fsync's end instant.
		now := time.Now().UnixNano()
		for i := 0; i < l.pendN; i++ {
			p := &l.pend[i]
			l.tracer.Record(p.id, obs.SpanWALAppend, obs.OpNone, p.at, now, p.shard, p.bytes)
		}
		l.pendN = 0
	}
}

// Sync flushes and fsyncs the live segment (the group committer's tick,
// callable directly for an explicit durability point). It returns the
// log's sticky error state.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	l.flushSyncLocked()
	return l.err
}

// committer is the group-commit loop.
func (l *Log) committer(d time.Duration) {
	defer close(l.committerDone)
	t := time.NewTicker(d)
	defer t.Stop()
	for {
		select {
		case <-l.committerStop:
			return
		case <-t.C:
			l.Sync()
		}
	}
}

// Checkpoint seals one consistent checkpoint of src and truncates the log
// behind it: rotate to a fresh segment, snapshot (all pairs for a full
// base, just the dirty keys for a delta), write and seal the checkpoint
// and its manifest, then delete the now-covered older segments and
// superseded chain files. Concurrent appends proceed throughout (into the
// fresh segment during the snapshot). Checkpoint calls serialize with each
// other and with the periodic loop. When nothing was appended since the
// previous checkpoint, the call is a no-op (counted in
// Stats.SkippedCheckpoints) — an idle store costs no checkpoint I/O.
func (l *Log) Checkpoint(src Source) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	return l.checkpoint(src, true)
}

// checkpoint is Checkpoint with the truncation step separable, so crash
// tests can reproduce the "sealed but not yet truncated" window. Caller
// holds ckptMu.
func (l *Log) checkpoint(src Source, truncate bool) error {
	if src.Shards() != l.shards {
		return fmt.Errorf("durable: source has %d shards, log %d", src.Shards(), l.shards)
	}
	start := time.Now()
	deltas := l.o.deltas()

	// Rotate first: every record already in the old segments belongs to a
	// transaction that published before the snapshot below draws its clock
	// positions, so the snapshot covers the old segments entirely. The
	// dirty capture happens in the same critical section as the rotation,
	// so the captured set is exactly (a superset of) the keys of every
	// record in the segments below the new base.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	dirtyCount := 0
	if deltas {
		for _, m := range l.dirtyKeys {
			dirtyCount += len(m)
		}
		if dirtyCount == 0 && len(l.chain) > 0 && truncate {
			// Nothing appended since the last capture: the chain tip plus
			// the (empty) live tail already describe the store exactly.
			l.st.SkippedCheckpoints++
			l.mu.Unlock()
			return nil
		}
	}
	chainLen := len(l.chain)
	wantDelta := deltas && chainLen > 0 &&
		chainLen-1 < l.o.compactEvery() &&
		l.chainFullPairs > 0 &&
		float64(dirtyCount) <= l.o.deltaMaxFrac()*float64(l.chainFullPairs)
	var captured []map[uint64]struct{}
	if deltas {
		captured = l.dirtyKeys
		l.dirtyKeys = freshDirty(l.shards)
	}
	l.flushSyncLocked()
	if err := l.f.Close(); err != nil {
		l.setErrLocked(err)
	}
	gen := l.nextGen
	l.nextGen++
	base := l.seg + 1
	if err := l.openSegmentLocked(base); err != nil {
		l.setErrLocked(err)
		l.restoreDirtyLocked(captured)
		l.mu.Unlock()
		return err
	}
	l.st.Rotations++
	l.fr.Record(obs.EvWALRotate, 0, int64(base), 0)
	l.mu.Unlock()

	var err error
	var fileBytes, pairCount int
	if wantDelta {
		fileBytes, pairCount, err = l.writeDeltaGeneration(src, gen, base, captured)
	} else {
		fileBytes, pairCount, err = l.writeFullGeneration(src, gen, base)
	}
	if err != nil {
		l.mu.Lock()
		l.setErrLocked(err)
		l.restoreDirtyLocked(captured)
		l.mu.Unlock()
		return err
	}
	removed := 0
	if truncate {
		removed = removeObsolete(l.dir, base, l.chainFullGen, gen)
	}

	l.mu.Lock()
	l.st.Checkpoints++
	if wantDelta {
		l.st.DeltaCheckpoints++
		l.st.DirtyFracSum += float64(dirtyCount) / float64(l.chainFullPairs)
	}
	l.st.CheckpointPairs += uint64(pairCount)
	l.st.CheckpointBytes += uint64(fileBytes)
	dur := time.Since(start)
	l.st.CheckpointNanos += uint64(dur.Nanoseconds())
	l.st.FilesRemoved += uint64(removed)
	if l.ckptH != nil {
		l.ckptH.Record(uint64(dur.Nanoseconds()))
	}
	if l.fr != nil {
		kind := obs.EvCheckpointFull
		if wantDelta {
			kind = obs.EvCheckpointDelta
		} else if deltas && chainLen > 1 {
			// A full base superseding a multi-entry delta chain is the
			// compaction case: the chain's history collapses into one file.
			kind = obs.EvCompaction
		}
		l.fr.Record(kind, dur, int64(fileBytes), int64(pairCount))
	}
	l.mu.Unlock()
	return nil
}

// writeFullGeneration snapshots every shard in full and seals a full base
// plus its one-entry manifest, resetting the chain. Caller holds ckptMu.
func (l *Log) writeFullGeneration(src Source, gen, base uint64) (bytes, pairs int, err error) {
	cuts := make([]uint64, l.shards)
	var kvs []kvPair
	for si := 0; si < l.shards; si++ {
		cuts[si] = src.SnapshotShard(si, func(k, v uint64) {
			kvs = append(kvs, kvPair{k: k, v: v})
		})
	}
	n, err := writeCheckpoint(l.dir, l.shards, gen, base, cuts, kvs)
	if err != nil {
		return 0, 0, err
	}
	chain := []manifestEntry{{gen: gen}}
	mb := encodeManifest(manifest{shards: l.shards, gen: gen, baseSeg: base, chain: chain})
	if err := sealFile(l.dir, manifestName(l.dir, gen), mb); err != nil {
		return 0, 0, err
	}
	l.chain = chain
	l.chainFullGen = gen
	l.chainFullPairs = len(kvs)
	return n + len(mb), len(kvs), nil
}

// writeDeltaGeneration snapshots just the captured dirty keys per shard
// and seals a delta generation plus the manifest extending the chain with
// it. Caller holds ckptMu; captured is the dirty set swapped out at the
// rotation. Sources implementing DeltaSource are read per key (cost
// proportional to churn); plain Sources fall back to a filtered full scan
// (delta-sized writes, store-sized reads). Dirty keys absent at the
// snapshot become tombstones.
func (l *Log) writeDeltaGeneration(src Source, gen, base uint64, captured []map[uint64]struct{}) (bytes, pairs int, err error) {
	cuts := make([]uint64, l.shards)
	var groups []deltaGroup
	total := 0
	ds, perKey := src.(DeltaSource)
	for si := 0; si < l.shards; si++ {
		if len(captured[si]) == 0 {
			continue // untouched shard: no snapshot, no group, cut stays 0
		}
		keys := make([]uint64, 0, len(captured[si]))
		for k := range captured[si] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		entries := make([]deltaEntry, 0, len(keys))
		if perKey {
			cuts[si] = ds.SnapshotShardKeys(si, keys, func(k, v uint64, ok bool) {
				if ok {
					entries = append(entries, deltaEntry{k: k, v: v})
				} else {
					entries = append(entries, deltaEntry{k: k, del: true})
				}
			})
		} else {
			vals := make(map[uint64]uint64, len(keys))
			cuts[si] = src.SnapshotShard(si, func(k, v uint64) {
				if _, dirty := captured[si][k]; dirty {
					vals[k] = v
				}
			})
			for _, k := range keys {
				if v, ok := vals[k]; ok {
					entries = append(entries, deltaEntry{k: k, v: v})
				} else {
					entries = append(entries, deltaEntry{k: k, del: true})
				}
			}
		}
		groups = append(groups, deltaGroup{shard: si, entries: entries})
		total += len(entries)
	}
	parent := l.chain[len(l.chain)-1].gen
	db := encodeDelta(deltaFile{shards: l.shards, gen: gen, parentGen: parent, baseSeg: base, cuts: cuts, groups: groups})
	if err := sealFile(l.dir, deltaName(l.dir, gen), db); err != nil {
		return 0, 0, err
	}
	chain := make([]manifestEntry, 0, len(l.chain)+1)
	chain = append(chain, l.chain...)
	chain = append(chain, manifestEntry{gen: gen, delta: true})
	mb := encodeManifest(manifest{shards: l.shards, gen: gen, baseSeg: base, chain: chain})
	if err := sealFile(l.dir, manifestName(l.dir, gen), mb); err != nil {
		return 0, 0, err
	}
	l.chain = chain
	return len(db) + len(mb), total, nil
}

// removeObsolete deletes segments below base, checkpoint and delta files
// below the current chain's full base keepGen, and manifests below gen,
// returning how many files went away. Failures are ignored — recovery
// tolerates stale files, and the next checkpoint retries.
func removeObsolete(dir string, base, keepGen, gen uint64) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range ents {
		name := e.Name()
		drop := false
		if i, ok := parseIndexed(name, "wal-", ".log"); ok && i < base {
			drop = true
		} else if g, ok := parseIndexed(name, "checkpoint-", ".ckpt"); ok && g < keepGen {
			drop = true
		} else if g, ok := parseIndexed(name, "delta-", ".ckpt"); ok && g < keepGen {
			drop = true
		} else if g, ok := parseIndexed(name, "manifest-", ".mf"); ok && g < gen {
			drop = true
		}
		if drop && os.Remove(filepath.Join(dir, name)) == nil {
			removed++
		}
	}
	return removed
}

// StartCheckpoints begins the periodic checkpoint loop against src (no-op
// when Options disabled it). Stop it with Close.
func (l *Log) StartCheckpoints(src Source) {
	every := l.o.checkpointEvery()
	if every <= 0 || l.ckptStop != nil {
		return
	}
	l.ckptStop = make(chan struct{})
	l.ckptDone = make(chan struct{})
	go func() {
		defer close(l.ckptDone)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-l.ckptStop:
				return
			case <-t.C:
				l.Checkpoint(src)
			}
		}
	}()
}

// Close stops the background loops, flushes and fsyncs the tail, and
// closes the live segment. The log accepts no appends afterwards; closing
// twice is a no-op.
func (l *Log) Close() error {
	if l.ckptStop != nil {
		close(l.ckptStop)
		<-l.ckptDone
		l.ckptStop = nil
	}
	if l.committerStop != nil {
		close(l.committerStop)
		<-l.committerDone
		l.committerStop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.err
	}
	l.flushSyncLocked()
	if err := l.f.Close(); err != nil {
		l.setErrLocked(err)
	}
	l.closed = true
	return l.err
}
