package durable

import (
	"os"
	"reflect"
	"testing"
)

// mapSource is a fake Source: a flat model map plus per-shard cut positions
// the test advances as it "commits" transactions.
type mapSource struct {
	shards int
	state  map[uint64]uint64
	seqs   []uint64
	of     func(k uint64) int
}

func newMapSource(shards int) *mapSource {
	return &mapSource{
		shards: shards,
		state:  make(map[uint64]uint64),
		seqs:   make([]uint64, shards),
		of:     func(k uint64) int { return int(k % uint64(shards)) },
	}
}

func (s *mapSource) Shards() int { return s.shards }

func (s *mapSource) SnapshotShard(si int, fn func(k, v uint64)) uint64 {
	for k, v := range s.state {
		if s.of(k) == si {
			fn(k, v)
		}
	}
	return s.seqs[si]
}

// apply commits ops to the model and the log, advancing the shard's clock.
func (s *mapSource) apply(l *Log, ops ...Op) {
	bySh := map[int][]Op{}
	for _, op := range ops {
		si := s.of(op.Key)
		bySh[si] = append(bySh[si], op)
		if op.Del {
			delete(s.state, op.Key)
		} else {
			s.state[op.Key] = op.Val
		}
	}
	for si, sops := range bySh {
		s.seqs[si]++
		l.LogUpdate(si, s.seqs[si], sops)
	}
}

// reopen recovers dir and returns the state.
func reopen(t *testing.T, dir string, shards int) (*Recovery, *Log) {
	t.Helper()
	l, rec, err := Open(dir, shards, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return rec, l
}

func TestLogRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, 4, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.State) != 0 {
		t.Fatalf("fresh dir recovered %d keys", len(rec.State))
	}
	src := newMapSource(4)
	for i := uint64(0); i < 50; i++ {
		src.apply(l, Op{Key: i, Val: i * 3})
	}
	src.apply(l, Op{Key: 7, Del: true}, Op{Key: 8, Val: 88})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, l2 := reopen(t, dir, 4)
	defer l2.Close()
	if !reflect.DeepEqual(rec2.State, src.state) {
		t.Fatalf("recovered %d keys, want %d; diff somewhere", len(rec2.State), len(src.state))
	}
	if rec2.TailDroppedBytes != 0 {
		t.Fatalf("clean log dropped %d tail bytes", rec2.TailDroppedBytes)
	}
}

// TestLogCheckpointTruncates: after a checkpoint, old segments and
// checkpoints are gone, recovery loads the checkpoint plus the new tail,
// and records covered by the cut are skipped.
func TestLogCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 2, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	src := newMapSource(2)
	for i := uint64(0); i < 20; i++ {
		src.apply(l, Op{Key: i, Val: i})
	}
	if err := l.Checkpoint(src); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic lands in the rotated-to segment.
	src.apply(l, Op{Key: 100, Val: 1}, Op{Key: 3, Del: true})
	l.Close()

	ents, _ := os.ReadDir(dir)
	segs, ckpts := 0, 0
	for _, e := range ents {
		if _, ok := parseIndexed(e.Name(), "wal-", ".log"); ok {
			segs++
		}
		if _, ok := parseIndexed(e.Name(), "checkpoint-", ".ckpt"); ok {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Fatalf("%d checkpoints on disk, want 1", ckpts)
	}
	if segs != 1 {
		// Only the rotated-to segment; pre-checkpoint segments must be gone.
		t.Fatalf("%d segments on disk, want 1", segs)
	}

	rec, l2 := reopen(t, dir, 2)
	defer l2.Close()
	if !reflect.DeepEqual(rec.State, src.state) {
		t.Fatalf("recovered state mismatch: %d keys, want %d", len(rec.State), len(src.state))
	}
	if rec.CheckpointGen == 0 {
		t.Fatal("recovery ignored the checkpoint")
	}
}

// TestLogSealedButNotTruncated reproduces a kill between checkpoint seal
// and log truncation: the sealed checkpoint plus ALL older segments and
// checkpoints are still on disk, and recovery must pick the newest seal
// and ignore the stale files.
func TestLogSealedButNotTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 2, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	src := newMapSource(2)
	for i := uint64(0); i < 10; i++ {
		src.apply(l, Op{Key: i, Val: i + 1})
	}
	// First checkpoint, fully truncated (the ordinary path).
	if err := l.Checkpoint(src); err != nil {
		t.Fatal(err)
	}
	src.apply(l, Op{Key: 2, Del: true}, Op{Key: 50, Val: 500})
	// Second checkpoint sealed, truncation skipped: exactly the crash
	// window the recovery contract promises to survive.
	l.ckptMu.Lock()
	err = l.checkpoint(src, false)
	l.ckptMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	// Post-seal traffic, then a hard stop.
	src.apply(l, Op{Key: 60, Val: 600})
	l.Close()

	ents, _ := os.ReadDir(dir)
	ckpts := 0
	for _, e := range ents {
		if _, ok := parseIndexed(e.Name(), "checkpoint-", ".ckpt"); ok {
			ckpts++
		}
	}
	if ckpts < 2 {
		t.Fatalf("%d checkpoints on disk, want the stale one kept (>= 2)", ckpts)
	}

	rec, l2 := reopen(t, dir, 2)
	defer l2.Close()
	if !reflect.DeepEqual(rec.State, src.state) {
		t.Fatalf("recovered state mismatch after seal-without-truncate: got %v want %v", rec.State, src.state)
	}
	if rec.CheckpointGen != 2 {
		t.Fatalf("recovery loaded checkpoint gen %d, want the newest seal (2)", rec.CheckpointGen)
	}
	if rec.Records != 1 {
		// Only the post-seal record is above the seal's base segment; the
		// stale pre-seal segments must not be scanned at all.
		t.Fatalf("recovery replayed %d records, want 1", rec.Records)
	}
}

// TestLogTornTailPrefix truncates the live segment at every byte offset of
// its tail and asserts recovery yields exactly the longest intact record
// prefix — the crash-consistency contract at the unit level.
func TestLogTornTailPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 2, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	src := newMapSource(2)
	type snap struct {
		size  int64
		state map[uint64]uint64
	}
	seg := l.LiveSegment()
	stat := func() int64 {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	snaps := []snap{{size: stat(), state: map[uint64]uint64{}}}
	for i := uint64(0); i < 8; i++ {
		src.apply(l, Op{Key: i, Val: i * 7}, Op{Key: i + 100, Val: i})
		cp := make(map[uint64]uint64, len(src.state))
		for k, v := range src.state {
			cp[k] = v
		}
		snaps = append(snaps, snap{size: stat(), state: cp})
	}
	l.Close()
	blob, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	for cut := snaps[0].size; cut <= int64(len(blob)); cut++ {
		// Expected state: the newest snapshot fully contained in the cut.
		var want map[uint64]uint64
		for _, s := range snaps {
			if s.size <= cut {
				want = s.state
			}
		}
		cdir := t.TempDir()
		if err := os.WriteFile(cdir+"/"+"wal-0000000000000001.log", blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, _, _, err := recoverDir(cdir, 2)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !reflect.DeepEqual(rec.State, want) {
			t.Fatalf("cut %d: recovered %v, want %v", cut, rec.State, want)
		}
	}
}

// TestLogShardCountMismatch: opening a directory with a different shard
// count must fail loudly, not silently misroute replay.
func TestLogShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 4, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	l.LogUpdate(1, 1, []Op{{Key: 1, Val: 1}})
	l.Close()
	if _, _, err := Open(dir, 8, Options{Sync: true, CheckpointEvery: -1}); err == nil {
		t.Fatal("reopening a 4-shard log with 8 shards succeeded")
	}
}

// TestLogGroupCommitFlushesOnClose: in group-commit mode nothing needs to
// be synced per append, but Close must leave every record durable.
func TestLogGroupCommitFlushesOnClose(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1, Options{GroupCommit: DefaultGroupCommit, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		l.LogUpdate(0, i+1, []Op{{Key: i, Val: i}})
	}
	l.Close()
	rec, l2 := reopen(t, dir, 1)
	defer l2.Close()
	if len(rec.State) != 100 {
		t.Fatalf("recovered %d keys, want 100", len(rec.State))
	}
}
