package durable

import (
	"os"
	"reflect"
	"testing"
	"time"
)

// mapSource is a fake Source: a flat model map plus per-shard cut positions
// the test advances as it "commits" transactions.
type mapSource struct {
	shards int
	state  map[uint64]uint64
	seqs   []uint64
	of     func(k uint64) int
}

func newMapSource(shards int) *mapSource {
	return &mapSource{
		shards: shards,
		state:  make(map[uint64]uint64),
		seqs:   make([]uint64, shards),
		of:     func(k uint64) int { return int(k % uint64(shards)) },
	}
}

func (s *mapSource) Shards() int { return s.shards }

func (s *mapSource) SnapshotShard(si int, fn func(k, v uint64)) uint64 {
	for k, v := range s.state {
		if s.of(k) == si {
			fn(k, v)
		}
	}
	return s.seqs[si]
}

// apply commits ops to the model and the log, advancing the shard's clock.
func (s *mapSource) apply(l *Log, ops ...Op) {
	bySh := map[int][]Op{}
	for _, op := range ops {
		si := s.of(op.Key)
		bySh[si] = append(bySh[si], op)
		if op.Del {
			delete(s.state, op.Key)
		} else {
			s.state[op.Key] = op.Val
		}
	}
	for si, sops := range bySh {
		s.seqs[si]++
		l.LogUpdate(si, s.seqs[si], sops)
	}
}

// reopen recovers dir and returns the state.
func reopen(t *testing.T, dir string, shards int) (*Recovery, *Log) {
	t.Helper()
	l, rec, err := Open(dir, shards, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return rec, l
}

func TestLogRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, 4, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.State) != 0 {
		t.Fatalf("fresh dir recovered %d keys", len(rec.State))
	}
	src := newMapSource(4)
	for i := uint64(0); i < 50; i++ {
		src.apply(l, Op{Key: i, Val: i * 3})
	}
	src.apply(l, Op{Key: 7, Del: true}, Op{Key: 8, Val: 88})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, l2 := reopen(t, dir, 4)
	defer l2.Close()
	if !reflect.DeepEqual(rec2.State, src.state) {
		t.Fatalf("recovered %d keys, want %d; diff somewhere", len(rec2.State), len(src.state))
	}
	if rec2.TailDroppedBytes != 0 {
		t.Fatalf("clean log dropped %d tail bytes", rec2.TailDroppedBytes)
	}
}

// TestLogCheckpointTruncates: after a checkpoint, old segments and
// checkpoints are gone, recovery loads the checkpoint plus the new tail,
// and records covered by the cut are skipped.
func TestLogCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 2, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	src := newMapSource(2)
	for i := uint64(0); i < 20; i++ {
		src.apply(l, Op{Key: i, Val: i})
	}
	if err := l.Checkpoint(src); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic lands in the rotated-to segment.
	src.apply(l, Op{Key: 100, Val: 1}, Op{Key: 3, Del: true})
	l.Close()

	ents, _ := os.ReadDir(dir)
	segs, ckpts := 0, 0
	for _, e := range ents {
		if _, ok := parseIndexed(e.Name(), "wal-", ".log"); ok {
			segs++
		}
		if _, ok := parseIndexed(e.Name(), "checkpoint-", ".ckpt"); ok {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Fatalf("%d checkpoints on disk, want 1", ckpts)
	}
	if segs != 1 {
		// Only the rotated-to segment; pre-checkpoint segments must be gone.
		t.Fatalf("%d segments on disk, want 1", segs)
	}

	rec, l2 := reopen(t, dir, 2)
	defer l2.Close()
	if !reflect.DeepEqual(rec.State, src.state) {
		t.Fatalf("recovered state mismatch: %d keys, want %d", len(rec.State), len(src.state))
	}
	if rec.CheckpointGen == 0 {
		t.Fatal("recovery ignored the checkpoint")
	}
}

// TestLogSealedButNotTruncated reproduces a kill between checkpoint seal
// and log truncation: the sealed checkpoint plus ALL older segments and
// checkpoints are still on disk, and recovery must pick the newest seal
// and ignore the stale files.
func TestLogSealedButNotTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 2, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	src := newMapSource(2)
	for i := uint64(0); i < 10; i++ {
		src.apply(l, Op{Key: i, Val: i + 1})
	}
	// First checkpoint, fully truncated (the ordinary path).
	if err := l.Checkpoint(src); err != nil {
		t.Fatal(err)
	}
	src.apply(l, Op{Key: 2, Del: true}, Op{Key: 50, Val: 500})
	// Second checkpoint sealed, truncation skipped: exactly the crash
	// window the recovery contract promises to survive.
	l.ckptMu.Lock()
	err = l.checkpoint(src, false)
	l.ckptMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	// Post-seal traffic, then a hard stop.
	src.apply(l, Op{Key: 60, Val: 600})
	l.Close()

	ents, _ := os.ReadDir(dir)
	gens := 0
	for _, e := range ents {
		if _, ok := parseIndexed(e.Name(), "checkpoint-", ".ckpt"); ok {
			gens++
		}
		if _, ok := parseIndexed(e.Name(), "delta-", ".ckpt"); ok {
			gens++
		}
	}
	if gens < 2 {
		t.Fatalf("%d generations on disk, want the stale one kept (>= 2)", gens)
	}

	rec, l2 := reopen(t, dir, 2)
	defer l2.Close()
	if !reflect.DeepEqual(rec.State, src.state) {
		t.Fatalf("recovered state mismatch after seal-without-truncate: got %v want %v", rec.State, src.state)
	}
	if rec.CheckpointGen != 2 {
		t.Fatalf("recovery loaded checkpoint gen %d, want the newest seal (2)", rec.CheckpointGen)
	}
	if rec.Records != 1 {
		// Only the post-seal record is above the seal's base segment; the
		// stale pre-seal segments must not be scanned at all.
		t.Fatalf("recovery replayed %d records, want 1", rec.Records)
	}
}

// TestLogTornTailPrefix truncates the live segment at every byte offset of
// its tail and asserts recovery yields exactly the longest intact record
// prefix — the crash-consistency contract at the unit level.
func TestLogTornTailPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 2, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	src := newMapSource(2)
	type snap struct {
		size  int64
		state map[uint64]uint64
	}
	seg := l.LiveSegment()
	stat := func() int64 {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	snaps := []snap{{size: stat(), state: map[uint64]uint64{}}}
	for i := uint64(0); i < 8; i++ {
		src.apply(l, Op{Key: i, Val: i * 7}, Op{Key: i + 100, Val: i})
		cp := make(map[uint64]uint64, len(src.state))
		for k, v := range src.state {
			cp[k] = v
		}
		snaps = append(snaps, snap{size: stat(), state: cp})
	}
	l.Close()
	blob, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	for cut := snaps[0].size; cut <= int64(len(blob)); cut++ {
		// Expected state: the newest snapshot fully contained in the cut.
		var want map[uint64]uint64
		for _, s := range snaps {
			if s.size <= cut {
				want = s.state
			}
		}
		cdir := t.TempDir()
		if err := os.WriteFile(cdir+"/"+"wal-0000000000000001.log", blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, _, _, err := recoverDir(cdir, 2, 2)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !reflect.DeepEqual(rec.State, want) {
			t.Fatalf("cut %d: recovered %v, want %v", cut, rec.State, want)
		}
	}
}

// deltaMapSource upgrades mapSource to a DeltaSource, exercising the
// per-key snapshot path instead of the filtered-full-scan fallback.
type deltaMapSource struct{ *mapSource }

func (s deltaMapSource) SnapshotShardKeys(si int, keys []uint64, fn func(k, v uint64, ok bool)) uint64 {
	for _, k := range keys {
		v, ok := s.state[k]
		fn(k, v, ok)
	}
	return s.seqs[si]
}

// TestLogDeltaCheckpointChain: a full base plus delta generations recover
// to the exact model state, through both the DeltaSource per-key path and
// the plain-Source fallback.
func TestLogDeltaCheckpointChain(t *testing.T) {
	for _, perKey := range []bool{false, true} {
		name := "fallback"
		if perKey {
			name = "deltasource"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, 4, Options{Sync: true, CheckpointEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			src := newMapSource(4)
			var cksrc Source = src
			if perKey {
				cksrc = deltaMapSource{src}
			}
			for i := uint64(0); i < 40; i++ {
				src.apply(l, Op{Key: i, Val: i + 1})
			}
			if err := l.Checkpoint(cksrc); err != nil { // full base
				t.Fatal(err)
			}
			src.apply(l, Op{Key: 3, Val: 333}, Op{Key: 5, Del: true}, Op{Key: 100, Val: 1})
			if err := l.Checkpoint(cksrc); err != nil { // delta 1
				t.Fatal(err)
			}
			src.apply(l, Op{Key: 100, Del: true}, Op{Key: 7, Val: 777})
			if err := l.Checkpoint(cksrc); err != nil { // delta 2
				t.Fatal(err)
			}
			src.apply(l, Op{Key: 200, Val: 2}) // live tail past the chain tip
			st := l.Stats()
			if st.DeltaCheckpoints != 2 {
				t.Fatalf("DeltaCheckpoints = %d, want 2", st.DeltaCheckpoints)
			}
			l.Close()

			rec, l2 := reopen(t, dir, 4)
			defer l2.Close()
			if !reflect.DeepEqual(rec.State, src.state) {
				t.Fatalf("recovered state mismatch: got %v want %v", rec.State, src.state)
			}
			if rec.ChainDeltas != 2 {
				t.Fatalf("ChainDeltas = %d, want 2", rec.ChainDeltas)
			}
			if rec.CheckpointGen != 3 {
				t.Fatalf("CheckpointGen = %d, want the delta tip 3", rec.CheckpointGen)
			}
		})
	}
}

// TestLogDeltaBytesProportional is the tentpole's cost claim with real byte
// counts: after mutating 500 of 20000 keys, the delta generation writes no
// more than 10% of the bytes the full base did.
func TestLogDeltaBytesProportional(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 8, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src := newMapSource(8)
	const total, churn = 20000, 500
	for i := uint64(0); i < total; i++ {
		src.apply(l, Op{Key: i, Val: i * 2})
	}
	if err := l.Checkpoint(src); err != nil {
		t.Fatal(err)
	}
	fullBytes := l.Stats().CheckpointBytes
	for i := uint64(0); i < churn; i++ {
		src.apply(l, Op{Key: i * (total / churn), Val: i})
	}
	if err := l.Checkpoint(src); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.DeltaCheckpoints != 1 {
		t.Fatalf("second checkpoint was not a delta (DeltaCheckpoints = %d)", st.DeltaCheckpoints)
	}
	deltaBytes := st.CheckpointBytes - fullBytes
	if deltaBytes*10 > fullBytes {
		t.Fatalf("delta wrote %d bytes, full base %d: delta exceeds 10%% of full", deltaBytes, fullBytes)
	}
	frac := st.DirtyFracSum / float64(st.DeltaCheckpoints)
	if frac <= 0 || frac > float64(churn)/float64(total)+0.001 {
		t.Fatalf("mean dirty fraction %f, want ~%f", frac, float64(churn)/float64(total))
	}
}

// TestLogCompaction: CompactEvery bounds the chain — after the allowed
// delta generations the next checkpoint folds the chain into a fresh full
// base and truncation drops the superseded chain files.
func TestLogCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 2, Options{Sync: true, CheckpointEvery: -1, CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := newMapSource(2)
	for i := uint64(0); i < 30; i++ {
		src.apply(l, Op{Key: i, Val: i})
	}
	mutateAndCheckpoint := func(k uint64) {
		src.apply(l, Op{Key: k, Val: k * 9})
		if err := l.Checkpoint(src); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(src); err != nil { // gen 1: full
		t.Fatal(err)
	}
	mutateAndCheckpoint(1) // gen 2: delta
	mutateAndCheckpoint(2) // gen 3: delta (chain now at CompactEvery)
	mutateAndCheckpoint(3) // gen 4: compaction → full
	st := l.Stats()
	if st.Checkpoints != 4 || st.DeltaCheckpoints != 2 {
		t.Fatalf("Checkpoints = %d DeltaCheckpoints = %d, want 4 and 2", st.Checkpoints, st.DeltaCheckpoints)
	}
	l.Close()

	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if g, ok := parseIndexed(e.Name(), "checkpoint-", ".ckpt"); ok && g < 4 {
			t.Fatalf("superseded full base %s survived compaction", e.Name())
		}
		if _, ok := parseIndexed(e.Name(), "delta-", ".ckpt"); ok {
			t.Fatalf("superseded delta %s survived compaction", e.Name())
		}
	}
	rec, l2 := reopen(t, dir, 2)
	defer l2.Close()
	if !reflect.DeepEqual(rec.State, src.state) {
		t.Fatalf("recovered state mismatch after compaction")
	}
	if rec.ChainDeltas != 0 || rec.CheckpointGen != 4 {
		t.Fatalf("recovered chain gen %d with %d deltas, want compacted full gen 4", rec.CheckpointGen, rec.ChainDeltas)
	}
}

// TestLogIdleCheckpointNoop: with no appends since the last generation, a
// checkpoint call writes nothing.
func TestLogIdleCheckpointNoop(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 2, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src := newMapSource(2)
	src.apply(l, Op{Key: 1, Val: 1})
	if err := l.Checkpoint(src); err != nil {
		t.Fatal(err)
	}
	bytesAfterFirst := l.Stats().CheckpointBytes
	if err := l.Checkpoint(src); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.SkippedCheckpoints != 1 {
		t.Fatalf("SkippedCheckpoints = %d, want 1", st.SkippedCheckpoints)
	}
	if st.Checkpoints != 1 || st.CheckpointBytes != bytesAfterFirst {
		t.Fatalf("idle checkpoint wrote bytes (%d checkpoints, %d bytes)", st.Checkpoints, st.CheckpointBytes)
	}
}

// TestLogDeltaLateAppendCovered is the regression test for the late-append
// hazard the per-key skip rule exists for: a record can reach the log after
// the delta generation covering its clock window was cut (its committer
// published, then was preempted before the append). Its position is at or
// below the delta's cut, but its key is in no delta — so replay must apply
// it, falling to the full base's per-shard floor instead of the chain tip's
// cut. A per-shard-only rule would drop the record silently.
func TestLogDeltaLateAppendCovered(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	src := newMapSource(1)
	for i := uint64(1); i <= 10; i++ {
		src.apply(l, Op{Key: i, Val: i})
	}
	if err := l.Checkpoint(src); err != nil { // full base, floor = 10
		t.Fatal(err)
	}
	src.apply(l, Op{Key: 5, Val: 55})         // seq 11
	if err := l.Checkpoint(src); err != nil { // delta covering only key 5, cut 11
		t.Fatal(err)
	}
	// The late append: position 11 (≤ the delta's cut — positions can be
	// shared by slow-path committers), key 77 untouched by the delta.
	l.LogUpdate(0, 11, []Op{{Key: 77, Val: 7777}})
	src.state[77] = 7777
	l.Close()

	rec, l2 := reopen(t, dir, 1)
	defer l2.Close()
	if rec.State[77] != 7777 {
		t.Fatalf("late-appended record lost: key 77 = %d, want 7777", rec.State[77])
	}
	if !reflect.DeepEqual(rec.State, src.state) {
		t.Fatalf("recovered state mismatch: got %v want %v", rec.State, src.state)
	}
}

// TestLogBackpressure: unsynced bytes are bounded — appends beyond
// MaxUnsynced fsync inline instead of growing the loss window.
func TestLogBackpressure(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1, Options{GroupCommit: time.Minute, MaxUnsynced: 64, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		l.LogUpdate(0, i+1, []Op{{Key: i, Val: i}})
	}
	st := l.Stats()
	if st.Stalls == 0 {
		t.Fatal("no stalls despite a 64-byte unsynced bound")
	}
	l.Close()
	rec, l2 := reopen(t, dir, 1)
	defer l2.Close()
	if len(rec.State) != 20 {
		t.Fatalf("recovered %d keys, want 20", len(rec.State))
	}
}

// TestLogCheckpointFailureKeepsDirtyKeys: a checkpoint attempt that fails
// after swapping out the dirty set must merge the captured keys back, or
// they vanish from the chain — the next successful delta would omit them
// while its truncation deletes the segments holding their WAL records, and
// recovery would silently revert them to the chain tip's stale values.
// Both post-swap failure points are driven: the generation seal and the
// segment rotation. The injection squats a directory on the path the
// checkpoint needs to create, so OpenFile fails like a transient I/O error.
func TestLogCheckpointFailureKeepsDirtyKeys(t *testing.T) {
	cases := []struct {
		name  string
		block func(l *Log) string // path whose creation the next checkpoint needs
	}{
		{"sealfail", func(l *Log) string { return deltaName(l.dir, l.nextGen) + ".tmp" }},
		{"rotatefail", func(l *Log) string { return segmentName(l.dir, l.seg+1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, 2, Options{Sync: true, CheckpointEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			src := newMapSource(2)
			for i := uint64(0); i < 40; i++ {
				src.apply(l, Op{Key: i, Val: i + 1})
			}
			if err := l.Checkpoint(src); err != nil { // gen 1: full base
				t.Fatal(err)
			}
			src.apply(l, Op{Key: 3, Val: 333}, Op{Key: 6, Val: 666})

			blocked := tc.block(l)
			if err := os.Mkdir(blocked, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := l.Checkpoint(src); err == nil {
				t.Fatal("checkpoint succeeded despite the blocked path")
			}
			if err := os.Remove(blocked); err != nil {
				t.Fatal(err)
			}

			// The captured keys must be back in the dirty set.
			l.mu.Lock()
			for _, k := range []uint64{3, 6} {
				if _, ok := l.dirtyKeys[int(k%2)][k]; !ok {
					l.mu.Unlock()
					t.Fatalf("key %d missing from dirty set after failed checkpoint", k)
				}
			}
			l.mu.Unlock()

			// The recovered keys must ride into the next delta together with
			// later appends, and survive its truncation plus a recovery.
			src.apply(l, Op{Key: 9, Val: 999})
			if err := l.Checkpoint(src); err != nil {
				t.Fatal(err)
			}
			if st := l.Stats(); st.DeltaCheckpoints != 1 {
				t.Fatalf("DeltaCheckpoints = %d, want 1", st.DeltaCheckpoints)
			}
			l.Close() // returns the injected sticky error; on-disk state is sealed

			rec, l2 := reopen(t, dir, 2)
			defer l2.Close()
			if rec.State[3] != 333 || rec.State[6] != 666 {
				t.Fatalf("keys dirtied before the failed checkpoint reverted: 3=%d 6=%d, want 333 666",
					rec.State[3], rec.State[6])
			}
			if !reflect.DeepEqual(rec.State, src.state) {
				t.Fatalf("recovered state mismatch: got %v want %v", rec.State, src.state)
			}
		})
	}
}

// TestLogDroppedOversize: an oversize record is dropped and counted, the
// error surfaces in Err, and the segment stays healthy for later records.
func TestLogDroppedOversize(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	huge := make([]Op, maxPayload/17+2)
	for i := range huge {
		huge[i] = Op{Key: uint64(i), Val: 1}
	}
	l.LogUpdate(0, 1, huge)
	if l.Err() == nil {
		t.Fatal("oversize record left Err nil")
	}
	if l.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", l.Stats().Dropped)
	}
	l.LogUpdate(0, 2, []Op{{Key: 9, Val: 9}})
	l.Close()
	rec, l2 := reopen(t, dir, 1)
	defer l2.Close()
	if rec.State[9] != 9 || len(rec.State) != 1 {
		t.Fatalf("post-drop record lost: %v", rec.State)
	}
}

// TestLogShardCountMismatch: opening a directory with a different shard
// count must fail loudly, not silently misroute replay.
func TestLogShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 4, Options{Sync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	l.LogUpdate(1, 1, []Op{{Key: 1, Val: 1}})
	l.Close()
	if _, _, err := Open(dir, 8, Options{Sync: true, CheckpointEvery: -1}); err == nil {
		t.Fatal("reopening a 4-shard log with 8 shards succeeded")
	}
}

// TestLogGroupCommitFlushesOnClose: in group-commit mode nothing needs to
// be synced per append, but Close must leave every record durable.
func TestLogGroupCommitFlushesOnClose(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1, Options{GroupCommit: DefaultGroupCommit, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		l.LogUpdate(0, i+1, []Op{{Key: i, Val: i}})
	}
	l.Close()
	rec, l2 := reopen(t, dir, 1)
	defer l2.Close()
	if len(rec.State) != 100 {
		t.Fatalf("recovered %d keys, want 100", len(rec.State))
	}
}
