package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// A checkpoint file is one consistent-per-shard snapshot of the whole
// store, written beside the WAL so recovery replays only the log tail:
//
//	magic "SFCKPT01"
//	u32 shards | u64 gen | u64 baseSeg
//	shards × u64 cut        (per-shard commit-clock snapshot positions)
//	u64 npairs | npairs × (u64 key, u64 val)
//	u32 CRC-32C of everything before it
//
// gen orders checkpoints; baseSeg is the first WAL segment whose records
// may postdate the snapshot (the segment the log rotated to at the start of
// the checkpoint), so recovery replays segments >= baseSeg and ignores any
// older ones a crash left behind. The file is written to a temporary name,
// synced, and renamed into place — the rename is the seal: recovery only
// ever reads *.ckpt files, so a torn checkpoint write is invisible.

const ckptMagic = "SFCKPT01"

// checkpointMeta is a loaded checkpoint's header.
type checkpointMeta struct {
	gen     uint64
	baseSeg uint64
	cuts    []uint64
}

// checkpointName returns the sealed name of generation gen.
func checkpointName(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016d.ckpt", gen))
}

// writeCheckpoint writes and seals one full checkpoint file (tmp + fsync +
// rename + directory sync), reporting the bytes it wrote.
func writeCheckpoint(dir string, shards int, gen, baseSeg uint64, cuts []uint64, pairs []kvPair) (int, error) {
	b := make([]byte, 0, len(ckptMagic)+4+16+8*len(cuts)+8+16*len(pairs)+4)
	b = append(b, ckptMagic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(shards))
	b = binary.LittleEndian.AppendUint64(b, gen)
	b = binary.LittleEndian.AppendUint64(b, baseSeg)
	for _, c := range cuts {
		b = binary.LittleEndian.AppendUint64(b, c)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(pairs)))
	for _, p := range pairs {
		b = binary.LittleEndian.AppendUint64(b, p.k)
		b = binary.LittleEndian.AppendUint64(b, p.v)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
	if err := sealFile(dir, checkpointName(dir, gen), b); err != nil {
		return 0, err
	}
	return len(b), nil
}

// readCheckpoint loads and validates one sealed full checkpoint file,
// returning its header and pairs. It returns an error for any structural
// damage — recovery then falls back to an older candidate.
func readCheckpoint(path string, shards int) (checkpointMeta, []kvPair, error) {
	var meta checkpointMeta
	b, err := os.ReadFile(path)
	if err != nil {
		return meta, nil, err
	}
	if len(b) < len(ckptMagic)+4+16+8+4 || string(b[:len(ckptMagic)]) != ckptMagic {
		return meta, nil, fmt.Errorf("durable: %s: not a checkpoint file", path)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return meta, nil, fmt.Errorf("durable: %s: checkpoint checksum mismatch", path)
	}
	d := &decoder{b: body, off: len(ckptMagic)}
	ns, err := d.u32()
	if err != nil {
		return meta, nil, err
	}
	if int(ns) != shards {
		return meta, nil, fmt.Errorf("durable: %s: checkpoint has %d shards, log opened with %d", path, ns, shards)
	}
	if meta.gen, err = d.u64(); err != nil {
		return meta, nil, err
	}
	if meta.baseSeg, err = d.u64(); err != nil {
		return meta, nil, err
	}
	meta.cuts = make([]uint64, shards)
	for i := range meta.cuts {
		if meta.cuts[i], err = d.u64(); err != nil {
			return meta, nil, err
		}
	}
	n, err := d.u64()
	if err != nil {
		return meta, nil, err
	}
	if n > uint64(len(body)-d.off)/16 {
		return meta, nil, fmt.Errorf("durable: %s: pair count %d exceeds file size", path, n)
	}
	pairs := make([]kvPair, 0, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.u64()
		if err != nil {
			return meta, nil, err
		}
		v, err := d.u64()
		if err != nil {
			return meta, nil, err
		}
		pairs = append(pairs, kvPair{k: k, v: v})
	}
	if d.off != len(body) {
		return meta, nil, fmt.Errorf("durable: %s: %d trailing bytes", path, len(body)-d.off)
	}
	return meta, pairs, nil
}

// kvPair is one checkpointed element.
type kvPair struct{ k, v uint64 }

// syncDir fsyncs a directory so renames and file creations within it are
// durable (best-effort on platforms where directories cannot be synced).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems reject fsync on directories; the metadata will
		// reach disk with the next journal flush regardless.
		return nil
	}
	return nil
}
