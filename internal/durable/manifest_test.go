package durable

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleDelta() deltaFile {
	return deltaFile{
		shards:    4,
		gen:       7,
		parentGen: 5,
		baseSeg:   12,
		cuts:      []uint64{9, 0, 14, 3},
		groups: []deltaGroup{
			{shard: 0, entries: []deltaEntry{{k: 1, v: 10}, {k: 4, del: true}, {k: 8, v: 80}}},
			{shard: 2, entries: []deltaEntry{{k: 2, v: 22}}},
			{shard: 3, entries: []deltaEntry{{k: 3, del: true}}},
		},
	}
}

func sampleManifest() manifest {
	return manifest{
		shards:  4,
		gen:     7,
		baseSeg: 12,
		chain: []manifestEntry{
			{gen: 3},
			{gen: 5, delta: true},
			{gen: 7, delta: true},
		},
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	want := sampleDelta()
	b := encodeDelta(want)
	got, err := decodeDelta(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
	if !bytes.Equal(encodeDelta(got), b) {
		t.Fatal("re-encode is not byte-identical (codec not canonical)")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	want := sampleManifest()
	b := encodeManifest(want)
	got, err := decodeManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
	if !bytes.Equal(encodeManifest(got), b) {
		t.Fatal("re-encode is not byte-identical (codec not canonical)")
	}
}

// TestDeltaDecodeRejects flips every byte of a valid delta file and asserts
// the decoder never accepts the damage silently: either it errors, or (for
// the vanishingly rare CRC-colliding flip) the decode still re-encodes to
// the mutated bytes.
func TestDeltaDecodeRejects(t *testing.T) {
	b := encodeDelta(sampleDelta())
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x41
		got, err := decodeDelta(mut)
		if err != nil {
			continue
		}
		if !bytes.Equal(encodeDelta(got), mut) {
			t.Fatalf("byte %d: corrupt delta decoded to a non-canonical value", i)
		}
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := decodeDelta(b[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
}

func TestManifestDecodeRejects(t *testing.T) {
	b := encodeManifest(sampleManifest())
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x41
		got, err := decodeManifest(mut)
		if err != nil {
			continue
		}
		if !bytes.Equal(encodeManifest(got), mut) {
			t.Fatalf("byte %d: corrupt manifest decoded to a non-canonical value", i)
		}
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := decodeManifest(b[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
}

// FuzzDeltaDecode holds the delta codec to the same contract as the WAL
// record codec: decoding arbitrary bytes never panics, and anything that
// decodes re-encodes byte-identically (the format is canonical, so the
// fuzzer proves decode is injective on the accepted set).
func FuzzDeltaDecode(f *testing.F) {
	f.Add(encodeDelta(sampleDelta()))
	f.Add(encodeDelta(deltaFile{shards: 1, gen: 2, parentGen: 1, baseSeg: 1, cuts: []uint64{5}}))
	f.Add([]byte(deltaMagic))
	f.Fuzz(func(t *testing.T, b []byte) {
		df, err := decodeDelta(b)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeDelta(df), b) {
			t.Fatalf("accepted delta does not re-encode to itself")
		}
	})
}

// FuzzManifestDecode is the same contract for manifests.
func FuzzManifestDecode(f *testing.F) {
	f.Add(encodeManifest(sampleManifest()))
	f.Add(encodeManifest(manifest{shards: 1, gen: 1, baseSeg: 1, chain: []manifestEntry{{gen: 1}}}))
	f.Add([]byte(manifestMagic))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeManifest(b)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeManifest(m), b) {
			t.Fatalf("accepted manifest does not re-encode to itself")
		}
	})
}
