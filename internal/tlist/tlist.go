// Package tlist implements a transactional sorted singly linked list, the
// substrate the vacation application uses for each customer's reservation
// list (STAMP's list_t). Entries map a uint64 key to a uint64 value and are
// kept in ascending key order behind a fixed sentinel head, so all accesses
// compose with any enclosing transaction.
package tlist

import (
	"sync"

	"repro/internal/stm"
)

// entry is one list cell. Cells are heap-allocated Go objects (kept alive
// by the nodes slice so a stale traversal can never observe recycled
// memory) with transactional next links and values.
type entry struct {
	key  uint64
	val  stm.Word
	next stm.Word // index+1 of the next entry, 0 = end of list
}

// List is a transactional sorted linked list. The zero value is not usable;
// call New.
type List struct {
	mu    sync.Mutex
	cells []*entry // index 0 is the sentinel head
}

// New creates an empty list.
func New() *List {
	l := &List{}
	l.cells = append(l.cells, &entry{}) // sentinel; key unused
	return l
}

// cell resolves the 1-based handle stored in next links (h-1 indexes cells).
func (l *List) cell(h uint64) *entry { return l.cellsSnapshot()[h-1] }

func (l *List) cellsSnapshot() []*entry {
	l.mu.Lock()
	c := l.cells
	l.mu.Unlock()
	return c
}

// alloc appends a fresh cell and returns its handle.
func (l *List) alloc(key, val uint64) uint64 {
	e := &entry{key: key}
	e.val.SetPlain(val)
	l.mu.Lock()
	l.cells = append(l.cells, e)
	h := uint64(len(l.cells))
	l.mu.Unlock()
	return h
}

// head returns the sentinel.
func (l *List) head() *entry { return l.cellsSnapshot()[0] }

// locate returns the predecessor entry of key k (the last entry with
// key < k, possibly the sentinel) and the handle of the entry at or after k.
func (l *List) locate(tx *stm.Tx, k uint64) (*entry, uint64) {
	prev := l.head()
	cur := tx.Read(&prev.next)
	for cur != 0 {
		c := l.cell(cur)
		if c.key >= k {
			break
		}
		prev = c
		cur = tx.Read(&c.next)
	}
	return prev, cur
}

// InsertTx inserts (k, v) if k is absent; returns false when present.
func (l *List) InsertTx(tx *stm.Tx, k, v uint64) bool {
	prev, cur := l.locate(tx, k)
	if cur != 0 && l.cell(cur).key == k {
		return false
	}
	h := l.alloc(k, v)
	e := l.cell(h)
	e.next.SetPlain(cur)
	tx.Write(&prev.next, h)
	return true
}

// SetTx inserts (k, v) or overwrites the value when k is present.
func (l *List) SetTx(tx *stm.Tx, k, v uint64) {
	prev, cur := l.locate(tx, k)
	if cur != 0 {
		if c := l.cell(cur); c.key == k {
			tx.Write(&c.val, v)
			return
		}
	}
	h := l.alloc(k, v)
	e := l.cell(h)
	e.next.SetPlain(cur)
	tx.Write(&prev.next, h)
}

// RemoveTx removes k; returns false when absent.
func (l *List) RemoveTx(tx *stm.Tx, k uint64) bool {
	prev, cur := l.locate(tx, k)
	if cur == 0 {
		return false
	}
	c := l.cell(cur)
	if c.key != k {
		return false
	}
	tx.Write(&prev.next, tx.Read(&c.next))
	return true
}

// GetTx returns the value at k.
func (l *List) GetTx(tx *stm.Tx, k uint64) (uint64, bool) {
	_, cur := l.locate(tx, k)
	if cur == 0 {
		return 0, false
	}
	c := l.cell(cur)
	if c.key != k {
		return 0, false
	}
	return tx.Read(&c.val), true
}

// ContainsTx reports whether k is present.
func (l *List) ContainsTx(tx *stm.Tx, k uint64) bool {
	_, ok := l.GetTx(tx, k)
	return ok
}

// LenTx counts the entries.
func (l *List) LenTx(tx *stm.Tx) int {
	n := 0
	cur := tx.Read(&l.head().next)
	for cur != 0 {
		n++
		cur = tx.Read(&l.cell(cur).next)
	}
	return n
}

// KeysTx returns the keys in ascending order.
func (l *List) KeysTx(tx *stm.Tx) []uint64 {
	var out []uint64
	cur := tx.Read(&l.head().next)
	for cur != 0 {
		c := l.cell(cur)
		out = append(out, c.key)
		cur = tx.Read(&c.next)
	}
	return out
}

// EachTx visits every (key, value) pair in ascending key order.
func (l *List) EachTx(tx *stm.Tx, f func(k, v uint64)) {
	cur := tx.Read(&l.head().next)
	for cur != 0 {
		c := l.cell(cur)
		f(c.key, tx.Read(&c.val))
		cur = tx.Read(&c.next)
	}
}

// RangeTx visits, in ascending key order, every entry whose key lies in
// [lo, hi] (both inclusive), calling fn(k, v) for each; fn returning false
// stops the scan. The sorted order lets the walk start from the first entry
// at or after lo (locate) and end at the first key above hi, so the read
// set covers only the prefix up to the end of the interval. RangeTx reports
// whether the scan ran to the end of the interval.
func (l *List) RangeTx(tx *stm.Tx, lo, hi uint64, fn func(k, v uint64) bool) bool {
	if lo > hi {
		return true
	}
	_, cur := l.locate(tx, lo)
	for cur != 0 {
		c := l.cell(cur)
		if c.key > hi {
			return true
		}
		if !fn(c.key, tx.Read(&c.val)) {
			return false
		}
		cur = tx.Read(&c.next)
	}
	return true
}
