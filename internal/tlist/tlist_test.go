package tlist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stm"
)

func run(th *stm.Thread, f func(tx *stm.Tx)) { th.Atomic(f) }

func TestBasicOps(t *testing.T) {
	s := stm.New()
	th := s.NewThread()
	l := New()
	run(th, func(tx *stm.Tx) {
		if !l.InsertTx(tx, 5, 50) {
			t.Error("insert 5 failed")
		}
		if l.InsertTx(tx, 5, 51) {
			t.Error("duplicate insert succeeded")
		}
		if !l.InsertTx(tx, 3, 30) || !l.InsertTx(tx, 7, 70) {
			t.Error("inserts failed")
		}
	})
	run(th, func(tx *stm.Tx) {
		if v, ok := l.GetTx(tx, 5); !ok || v != 50 {
			t.Errorf("get(5) = (%d,%v)", v, ok)
		}
		keys := l.KeysTx(tx)
		want := []uint64{3, 5, 7}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("keys = %v, want %v", keys, want)
			}
		}
		if l.LenTx(tx) != 3 {
			t.Errorf("len = %d", l.LenTx(tx))
		}
	})
	run(th, func(tx *stm.Tx) {
		if !l.RemoveTx(tx, 5) || l.RemoveTx(tx, 5) {
			t.Error("remove semantics")
		}
		if l.ContainsTx(tx, 5) {
			t.Error("contains after remove")
		}
	})
}

func TestSetOverwrites(t *testing.T) {
	s := stm.New()
	th := s.NewThread()
	l := New()
	run(th, func(tx *stm.Tx) {
		l.SetTx(tx, 1, 10)
		l.SetTx(tx, 1, 11)
		l.SetTx(tx, 2, 20)
	})
	run(th, func(tx *stm.Tx) {
		if v, _ := l.GetTx(tx, 1); v != 11 {
			t.Errorf("set did not overwrite: %d", v)
		}
		if l.LenTx(tx) != 2 {
			t.Errorf("len = %d, want 2", l.LenTx(tx))
		}
	})
}

func TestEachVisitsInOrder(t *testing.T) {
	s := stm.New()
	th := s.NewThread()
	l := New()
	run(th, func(tx *stm.Tx) {
		for _, k := range []uint64{9, 1, 5, 3, 7} {
			l.InsertTx(tx, k, k*2)
		}
	})
	var got []uint64
	run(th, func(tx *stm.Tx) {
		got = got[:0]
		l.EachTx(tx, func(k, v uint64) {
			if v != k*2 {
				t.Errorf("value mismatch at %d: %d", k, v)
			}
			got = append(got, k)
		})
	})
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Fatalf("Each out of order: %v", got)
	}
}

func TestRangeTx(t *testing.T) {
	s := stm.New()
	th := s.NewThread()
	l := New()
	run(th, func(tx *stm.Tx) {
		for _, k := range []uint64{2, 4, 6, 8, 10, 12} {
			l.InsertTx(tx, k, k*10)
		}
	})
	var got []uint64
	run(th, func(tx *stm.Tx) {
		got = got[:0]
		if !l.RangeTx(tx, 4, 10, func(k, v uint64) bool {
			if v != k*10 {
				t.Errorf("value %d at key %d", v, k)
			}
			got = append(got, k)
			return true
		}) {
			t.Error("full scan reported early stop")
		}
	})
	want := []uint64{4, 6, 8, 10}
	if len(got) != len(want) {
		t.Fatalf("RangeTx(4,10) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RangeTx(4,10) = %v", got)
		}
	}
	// Bounds between elements, inverted interval, early stop.
	run(th, func(tx *stm.Tx) {
		n := 0
		l.RangeTx(tx, 3, 5, func(k, _ uint64) bool { n++; return true })
		if n != 1 {
			t.Errorf("RangeTx(3,5) visited %d", n)
		}
		if !l.RangeTx(tx, 9, 3, func(_, _ uint64) bool { t.Error("visited"); return true }) {
			t.Error("inverted interval reported stop")
		}
		n = 0
		if l.RangeTx(tx, 0, 100, func(_, _ uint64) bool { n++; return n < 2 }) {
			t.Error("stopped scan reported completion")
		}
		if n != 2 {
			t.Errorf("stopped scan visited %d", n)
		}
	})
}

func TestOracleProperty(t *testing.T) {
	s := stm.New()
	th := s.NewThread()
	f := func(ops []uint16) bool {
		l := New()
		oracle := map[uint64]uint64{}
		for i, o := range ops {
			k := uint64(o % 32)
			var okL, okO bool
			switch o % 3 {
			case 0:
				run(th, func(tx *stm.Tx) { okL = l.InsertTx(tx, k, uint64(i)) })
				_, exists := oracle[k]
				okO = !exists
				if okL {
					oracle[k] = uint64(i)
				}
			case 1:
				run(th, func(tx *stm.Tx) { okL = l.RemoveTx(tx, k) })
				_, okO = oracle[k]
				delete(oracle, k)
			default:
				var v uint64
				run(th, func(tx *stm.Tx) { v, okL = l.GetTx(tx, k) })
				var vO uint64
				vO, okO = oracle[k]
				if okL && v != vO {
					return false
				}
			}
			if okL != okO {
				return false
			}
		}
		var n int
		run(th, func(tx *stm.Tx) { n = l.LenTx(tx) })
		return n == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertDisjoint(t *testing.T) {
	s := stm.New()
	l := New()
	const goroutines = 4
	const per = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := s.NewThread()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(g*per + i)
				th.Atomic(func(tx *stm.Tx) { l.InsertTx(tx, k, k) })
			}
		}(g)
	}
	wg.Wait()
	th := s.NewThread()
	var keys []uint64
	th.Atomic(func(tx *stm.Tx) { keys = l.KeysTx(tx) })
	if len(keys) != goroutines*per {
		t.Fatalf("len = %d, want %d", len(keys), goroutines*per)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order at %d: %v", i, keys[i-1:i+1])
		}
	}
}

func TestConcurrentMixedStress(t *testing.T) {
	s := stm.New()
	l := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		th := s.NewThread()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 400; i++ {
				k := uint64(rng.Intn(24))
				switch rng.Intn(3) {
				case 0:
					th.Atomic(func(tx *stm.Tx) { l.InsertTx(tx, k, k) })
				case 1:
					th.Atomic(func(tx *stm.Tx) { l.RemoveTx(tx, k) })
				default:
					th.Atomic(func(tx *stm.Tx) { l.ContainsTx(tx, k) })
				}
			}
		}(g)
	}
	wg.Wait()
	th := s.NewThread()
	var keys []uint64
	th.Atomic(func(tx *stm.Tx) { keys = l.KeysTx(tx) })
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("sorted order violated: %v", keys)
		}
	}
}
