package vacation

import (
	"math/rand"

	"repro/internal/stm"
)

// Config carries the STAMP vacation workload parameters. The paper runs the
// two official presets ("low contention" and "high contention") with the
// default, 8x and 16x transaction counts (Fig. 6).
type Config struct {
	// NumQueryPerTx (-n) is the maximum number of table queries one
	// make-reservation or update-tables transaction performs.
	NumQueryPerTx int
	// QueryPercent (-q) is the percentage of relations touched by queries;
	// it defines QueryRange.
	QueryPercent int
	// UserPercent (-u) is the percentage of user transactions
	// (make-reservation); the remainder splits evenly between
	// delete-customer and update-tables.
	UserPercent int
	// NumRelations (-r) is the number of rows initially loaded per table.
	NumRelations int
	// NumTransactions (-t) is the total number of client transactions.
	NumTransactions int
}

// QueryRange returns the id range queries draw from.
func (c Config) QueryRange() int {
	qr := c.NumRelations * c.QueryPercent / 100
	if qr < 1 {
		qr = 1
	}
	return qr
}

// LowContention returns the STAMP "-n2 -q90 -u98" preset scaled by the
// given relation count and transaction count.
func LowContention(relations, transactions int) Config {
	return Config{NumQueryPerTx: 2, QueryPercent: 90, UserPercent: 98,
		NumRelations: relations, NumTransactions: transactions}
}

// HighContention returns the STAMP "-n4 -q60 -u90" preset.
func HighContention(relations, transactions int) Config {
	return Config{NumQueryPerTx: 4, QueryPercent: 60, UserPercent: 90,
		NumRelations: relations, NumTransactions: transactions}
}

// Populate loads the database exactly as STAMP's initializeManager: for
// every table, each id in [1, NumRelations] gets numTotal = (rand%5+1)*100
// units at price rand%5*10+50, and every id becomes a customer. As in
// STAMP, the ids are inserted in shuffled order (sorted insertion would
// degenerate the never-rebalancing tree before the benchmark starts).
func Populate(m *Manager, th *stm.Thread, cfg Config, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for t := Car; t < numResTypes; t++ {
		for _, i := range rng.Perm(cfg.NumRelations) {
			id := uint64(i + 1)
			num := int64(rng.Intn(5)+1) * 100
			price := int64(rng.Intn(5)*10 + 50)
			m.Atomic(th, func(tx *stm.Tx) { m.AddReservation(tx, t, id, num, price) })
		}
	}
	for _, i := range rng.Perm(cfg.NumRelations) {
		id := uint64(i + 1)
		m.Atomic(th, func(tx *stm.Tx) { m.AddCustomer(tx, id) })
	}
}

// ActionCounts tallies what a client executed (for reporting).
type ActionCounts struct {
	MakeReservation uint64
	DeleteCustomer  uint64
	UpdateTables    uint64
}

// Total returns the number of transactions executed.
func (a ActionCounts) Total() uint64 {
	return a.MakeReservation + a.DeleteCustomer + a.UpdateTables
}

// Client executes vacation transactions against a Manager from one thread.
type Client struct {
	m   *Manager
	th  *stm.Thread
	rng *rand.Rand
	cfg Config

	Counts ActionCounts
}

// NewClient creates a client with its own deterministic random stream.
func NewClient(m *Manager, th *stm.Thread, cfg Config, seed int64) *Client {
	return &Client{m: m, th: th, rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Run executes n client transactions, choosing actions with STAMP's
// distribution: UserPercent% make-reservation, and the remainder split
// evenly between delete-customer and update-tables.
func (c *Client) Run(n int) {
	for i := 0; i < n; i++ {
		pct := c.rng.Intn(100)
		switch {
		case pct < c.cfg.UserPercent:
			c.makeReservation()
		case pct < c.cfg.UserPercent+(100-c.cfg.UserPercent)/2:
			c.deleteCustomer()
		default:
			c.updateTables()
		}
	}
}

// makeReservation queries up to NumQueryPerTx random resources, finds the
// highest-priced available one per type, then registers the customer and
// books those maxima — all in one transaction (STAMP ACTION_MAKE_RESERVATION).
func (c *Client) makeReservation() {
	c.Counts.MakeReservation++
	qr := c.cfg.QueryRange()
	numQuery := c.rng.Intn(c.cfg.NumQueryPerTx) + 1
	customerID := uint64(c.rng.Intn(qr) + 1)
	// Pre-draw the random plan so every transaction attempt replays the
	// same queries (the STAMP client draws outside TM_BEGIN too).
	types := make([]ResType, numQuery)
	ids := make([]uint64, numQuery)
	for n := 0; n < numQuery; n++ {
		types[n] = ResType(c.rng.Intn(int(numResTypes)))
		ids[n] = uint64(c.rng.Intn(qr) + 1)
	}
	c.m.Atomic(c.th, func(tx *stm.Tx) {
		var maxPrice [numResTypes]int64
		var maxID [numResTypes]uint64
		for t := range maxPrice {
			maxPrice[t] = -1
		}
		for n := 0; n < numQuery; n++ {
			t, id := types[n], ids[n]
			if c.m.QueryNumFree(tx, t, id) > 0 {
				if price := c.m.QueryPrice(tx, t, id); price > maxPrice[t] {
					maxPrice[t] = price
					maxID[t] = id
				}
			}
		}
		found := false
		for t := Car; t < numResTypes; t++ {
			if maxPrice[t] >= 0 {
				found = true
				break
			}
		}
		if !found {
			return
		}
		c.m.AddCustomer(tx, customerID) // idempotent when already present
		for t := Car; t < numResTypes; t++ {
			if maxPrice[t] >= 0 {
				c.m.Reserve(tx, customerID, t, maxID[t])
			}
		}
	})
}

// deleteCustomer computes the customer's bill and, if the customer exists,
// cancels everything and removes the row (STAMP ACTION_DELETE_CUSTOMER).
func (c *Client) deleteCustomer() {
	c.Counts.DeleteCustomer++
	customerID := uint64(c.rng.Intn(c.cfg.QueryRange()) + 1)
	c.m.Atomic(c.th, func(tx *stm.Tx) {
		if bill := c.m.QueryCustomerBill(tx, customerID); bill >= 0 {
			c.m.DeleteCustomer(tx, customerID)
		}
	})
}

// updateTables adds or removes units of random resources (STAMP
// ACTION_UPDATE_TABLES).
func (c *Client) updateTables() {
	c.Counts.UpdateTables++
	qr := c.cfg.QueryRange()
	numUpdate := c.rng.Intn(c.cfg.NumQueryPerTx) + 1
	types := make([]ResType, numUpdate)
	ids := make([]uint64, numUpdate)
	adds := make([]bool, numUpdate)
	prices := make([]int64, numUpdate)
	for n := 0; n < numUpdate; n++ {
		types[n] = ResType(c.rng.Intn(int(numResTypes)))
		ids[n] = uint64(c.rng.Intn(qr) + 1)
		adds[n] = c.rng.Intn(2) == 0
		prices[n] = int64(c.rng.Intn(5)*10 + 50)
	}
	c.m.Atomic(c.th, func(tx *stm.Tx) {
		for n := 0; n < numUpdate; n++ {
			if adds[n] {
				c.m.AddReservation(tx, types[n], ids[n], 100, prices[n])
			} else {
				c.m.DeleteReservation(tx, types[n], ids[n], 100)
			}
		}
	})
}
