package vacation

import (
	"fmt"
	"math/rand"
)

// This file is the bare sequential implementation of vacation: identical
// client logic over plain Go data structures with no synchronization at
// all. Fig. 6 reports each concurrent tree library's speedup over exactly
// this baseline ("the performance of bare sequential code of vacation
// without synchronization").

type seqReservation struct {
	used, free, total, price int64
}

type seqCustomer struct {
	res map[uint64]int64 // infoKey -> price paid
}

// SeqManager is the unsynchronized travel database.
type SeqManager struct {
	tables [numResTypes]map[uint64]*seqReservation
	cust   map[uint64]*seqCustomer
}

// NewSeqManager creates an empty sequential database.
func NewSeqManager() *SeqManager {
	m := &SeqManager{cust: map[uint64]*seqCustomer{}}
	for i := range m.tables {
		m.tables[i] = map[uint64]*seqReservation{}
	}
	return m
}

// PopulateSeq mirrors Populate for the sequential database (same seed gives
// the same initial contents).
func PopulateSeq(m *SeqManager, cfg Config, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for t := Car; t < numResTypes; t++ {
		for _, i := range rng.Perm(cfg.NumRelations) {
			num := int64(rng.Intn(5)+1) * 100
			price := int64(rng.Intn(5)*10 + 50)
			m.addReservation(t, uint64(i+1), num, price)
		}
	}
	for _, i := range rng.Perm(cfg.NumRelations) {
		m.addCustomer(uint64(i + 1))
	}
}

func (m *SeqManager) addReservation(t ResType, id uint64, num, price int64) bool {
	r, ok := m.tables[t][id]
	if !ok {
		if num < 1 || price < 0 {
			return false
		}
		m.tables[t][id] = &seqReservation{free: num, total: num, price: price}
		return true
	}
	if r.free+num < 0 {
		return false
	}
	r.free += num
	r.total += num
	if r.total == 0 {
		delete(m.tables[t], id)
		return true
	}
	if price >= 0 {
		r.price = price
	}
	return true
}

func (m *SeqManager) addCustomer(id uint64) bool {
	if _, ok := m.cust[id]; ok {
		return false
	}
	m.cust[id] = &seqCustomer{res: map[uint64]int64{}}
	return true
}

func (m *SeqManager) reserve(customerID uint64, t ResType, id uint64) bool {
	c, ok := m.cust[customerID]
	if !ok {
		return false
	}
	r, ok := m.tables[t][id]
	if !ok || r.free < 1 {
		return false
	}
	key := infoKey(t, id)
	if _, dup := c.res[key]; dup {
		return false
	}
	r.free--
	r.used++
	c.res[key] = r.price
	return true
}

func (m *SeqManager) deleteCustomer(id uint64) bool {
	c, ok := m.cust[id]
	if !ok {
		return false
	}
	for key := range c.res {
		t := ResType(key >> 48)
		resID := key & (1<<48 - 1)
		if r, ok := m.tables[t][resID]; ok {
			r.used--
			r.free++
		}
	}
	delete(m.cust, id)
	return true
}

func (m *SeqManager) customerBill(id uint64) int64 {
	c, ok := m.cust[id]
	if !ok {
		return -1
	}
	var bill int64
	for _, p := range c.res {
		bill += p
	}
	return bill
}

// SeqClient replays the client action stream sequentially.
type SeqClient struct {
	m      *SeqManager
	rng    *rand.Rand
	cfg    Config
	Counts ActionCounts
}

// NewSeqClient mirrors NewClient; the same seed yields the same actions.
func NewSeqClient(m *SeqManager, cfg Config, seed int64) *SeqClient {
	return &SeqClient{m: m, rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Run executes n transactions sequentially.
func (c *SeqClient) Run(n int) {
	for i := 0; i < n; i++ {
		pct := c.rng.Intn(100)
		switch {
		case pct < c.cfg.UserPercent:
			c.makeReservation()
		case pct < c.cfg.UserPercent+(100-c.cfg.UserPercent)/2:
			c.deleteCustomer()
		default:
			c.updateTables()
		}
	}
}

func (c *SeqClient) makeReservation() {
	c.Counts.MakeReservation++
	qr := c.cfg.QueryRange()
	numQuery := c.rng.Intn(c.cfg.NumQueryPerTx) + 1
	customerID := uint64(c.rng.Intn(qr) + 1)
	var maxPrice [numResTypes]int64
	var maxID [numResTypes]uint64
	for t := range maxPrice {
		maxPrice[t] = -1
	}
	for n := 0; n < numQuery; n++ {
		t := ResType(c.rng.Intn(int(numResTypes)))
		id := uint64(c.rng.Intn(qr) + 1)
		if r, ok := c.m.tables[t][id]; ok && r.free > 0 && r.price > maxPrice[t] {
			maxPrice[t] = r.price
			maxID[t] = id
		}
	}
	found := false
	for t := Car; t < numResTypes; t++ {
		if maxPrice[t] >= 0 {
			found = true
			break
		}
	}
	if !found {
		return
	}
	c.m.addCustomer(customerID)
	for t := Car; t < numResTypes; t++ {
		if maxPrice[t] >= 0 {
			c.m.reserve(customerID, t, maxID[t])
		}
	}
}

func (c *SeqClient) deleteCustomer() {
	c.Counts.DeleteCustomer++
	customerID := uint64(c.rng.Intn(c.cfg.QueryRange()) + 1)
	if c.m.customerBill(customerID) >= 0 {
		c.m.deleteCustomer(customerID)
	}
}

func (c *SeqClient) updateTables() {
	c.Counts.UpdateTables++
	qr := c.cfg.QueryRange()
	numUpdate := c.rng.Intn(c.cfg.NumQueryPerTx) + 1
	for n := 0; n < numUpdate; n++ {
		t := ResType(c.rng.Intn(int(numResTypes)))
		id := uint64(c.rng.Intn(qr) + 1)
		doAdd := c.rng.Intn(2) == 0
		price := int64(c.rng.Intn(5)*10 + 50)
		if doAdd {
			c.m.addReservation(t, id, 100, price)
		} else {
			c.m.addReservation(t, id, -100, -1)
		}
	}
}

// CheckSeqConsistency verifies the sequential database's accounting, so the
// baseline itself is testable.
func (m *SeqManager) CheckSeqConsistency() error {
	held := map[uint64]int64{}
	for _, c := range m.cust {
		for key := range c.res {
			held[key]++
		}
	}
	for t := Car; t < numResTypes; t++ {
		for id, r := range m.tables[t] {
			if r.used+r.free != r.total {
				return fmt.Errorf("%v %d: used %d + free %d != total %d", t, id, r.used, r.free, r.total)
			}
			if held[infoKey(t, id)] != r.used {
				return fmt.Errorf("%v %d: used %d but %d holders", t, id, r.used, held[infoKey(t, id)])
			}
			delete(held, infoKey(t, id))
		}
	}
	for key, n := range held {
		if n > 0 {
			return fmt.Errorf("%v %d held but row missing", ResType(key>>48), key&(1<<48-1))
		}
	}
	return nil
}
