// Package vacation ports the STAMP travel-reservation application
// ("vacation") that the paper uses as its macro-benchmark (§5.5): an
// in-memory travel database with four tables — cars, flights, rooms and
// customers — each implemented as a tree-based directory, accessed by client
// transactions that compose several tree operations (the reusability the
// speculation-friendly tree is designed for).
//
// The port follows STAMP's manager.c/client.c structure: three client
// actions (make-reservation, delete-customer, update-tables), reservations
// with used/free/total/price counters, and customers owning a list of
// reservation records. A plain sequential implementation (Sequential) gives
// the single-threaded baseline against which Fig. 6 reports speedups.
package vacation

import (
	"sync"

	"repro/internal/stm"
)

// ResType indexes the three reservable tables.
type ResType int

// Reservable tables, in STAMP order.
const (
	Car ResType = iota
	Flight
	Room
	numResTypes
)

// String names the type for reports.
func (t ResType) String() string {
	switch t {
	case Car:
		return "car"
	case Flight:
		return "flight"
	case Room:
		return "room"
	default:
		return "?"
	}
}

// Reservation is one row of a car/flight/room table: a resource id with
// counters tracking how many units exist, are in use and are free, plus the
// current price. All fields are transactional; records are registered in
// the Manager and referenced from the trees by dense handles.
type Reservation struct {
	id       uint64
	numUsed  stm.Word
	numFree  stm.Word
	numTotal stm.Word
	price    stm.Word
}

// ID returns the resource id.
func (r *Reservation) ID() uint64 { return r.id }

// AddToTotal grows (or, negative delta, shrinks) the free pool; it fails
// when the shrink would exceed the currently free units (STAMP's
// reservation_addToTotal).
func (r *Reservation) AddToTotal(tx *stm.Tx, delta int64) bool {
	free := int64(tx.Read(&r.numFree))
	if free+delta < 0 {
		return false
	}
	tx.Write(&r.numFree, uint64(free+delta))
	tx.Write(&r.numTotal, uint64(int64(tx.Read(&r.numTotal))+delta))
	return true
}

// Make consumes one free unit (STAMP's reservation_make).
func (r *Reservation) Make(tx *stm.Tx) bool {
	free := tx.Read(&r.numFree)
	if free < 1 {
		return false
	}
	tx.Write(&r.numFree, free-1)
	tx.Write(&r.numUsed, tx.Read(&r.numUsed)+1)
	return true
}

// Cancel releases one used unit (STAMP's reservation_cancel).
func (r *Reservation) Cancel(tx *stm.Tx) bool {
	used := tx.Read(&r.numUsed)
	if used < 1 {
		return false
	}
	tx.Write(&r.numUsed, used-1)
	tx.Write(&r.numFree, tx.Read(&r.numFree)+1)
	return true
}

// UpdatePrice sets the current price.
func (r *Reservation) UpdatePrice(tx *stm.Tx, price uint64) {
	if tx.Read(&r.price) != price {
		tx.Write(&r.price, price)
	}
}

// registry is an append-only store of records referenced by dense handles
// (1-based; 0 means "no record"). Records are never removed: a handle read
// from a tree is therefore always resolvable, even by a doomed transaction
// that will abort at commit.
type registry[T any] struct {
	mu    sync.Mutex
	items []*T
}

func (g *registry[T]) add(item *T) uint64 {
	g.mu.Lock()
	g.items = append(g.items, item)
	h := uint64(len(g.items))
	g.mu.Unlock()
	return h
}

func (g *registry[T]) get(h uint64) *T {
	g.mu.Lock()
	it := g.items[h-1]
	g.mu.Unlock()
	return it
}
