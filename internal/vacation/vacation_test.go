package vacation

import (
	"sync"
	"testing"

	"repro/internal/stm"
	"repro/internal/trees"
)

func smallCfg() Config { return HighContention(64, 400) }

func TestPopulateAndConsistency(t *testing.T) {
	s := stm.New()
	m := NewManager(s, trees.SFOpt)
	th := s.NewThread()
	cfg := smallCfg()
	Populate(m, th, cfg, 1)
	for tt := Car; tt < numResTypes; tt++ {
		if got := m.Table(tt).Size(th); got != cfg.NumRelations {
			t.Fatalf("%v table size = %d, want %d", tt, got, cfg.NumRelations)
		}
	}
	if got := m.Customers().Size(th); got != cfg.NumRelations {
		t.Fatalf("customers = %d", got)
	}
	if err := m.CheckConsistency(th); err != nil {
		t.Fatal(err)
	}
}

func TestManagerPrimitives(t *testing.T) {
	s := stm.New()
	m := NewManager(s, trees.SF)
	th := s.NewThread()

	th.Atomic(func(tx *stm.Tx) {
		if m.AddReservation(tx, Car, 1, 0, 50) {
			t.Error("zero-unit creation must fail")
		}
		if m.AddReservation(tx, Car, 1, 5, -1) {
			t.Error("negative-price creation must fail")
		}
		if !m.AddReservation(tx, Car, 1, 5, 50) {
			t.Error("creation failed")
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		if got := m.QueryNumFree(tx, Car, 1); got != 5 {
			t.Errorf("free = %d, want 5", got)
		}
		if got := m.QueryPrice(tx, Car, 1); got != 50 {
			t.Errorf("price = %d, want 50", got)
		}
		if got := m.QueryNumFree(tx, Car, 2); got != -1 {
			t.Errorf("absent free = %d, want -1", got)
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		if m.DeleteReservation(tx, Car, 1, 6) {
			t.Error("over-delete must fail")
		}
		if !m.DeleteReservation(tx, Car, 1, 5) {
			t.Error("full delete failed")
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		if m.QueryNumFree(tx, Car, 1) != -1 {
			t.Error("row should be gone after total reached 0")
		}
	})
}

func TestReserveAndCancelFlow(t *testing.T) {
	s := stm.New()
	m := NewManager(s, trees.SFOpt)
	th := s.NewThread()
	th.Atomic(func(tx *stm.Tx) {
		m.AddReservation(tx, Flight, 7, 1, 80)
		m.AddCustomer(tx, 42)
	})
	th.Atomic(func(tx *stm.Tx) {
		if m.Reserve(tx, 41, Flight, 7) {
			t.Error("reserve for unknown customer succeeded")
		}
		if m.Reserve(tx, 42, Flight, 8) {
			t.Error("reserve of unknown resource succeeded")
		}
		if !m.Reserve(tx, 42, Flight, 7) {
			t.Error("reserve failed")
		}
		if m.Reserve(tx, 42, Flight, 7) {
			t.Error("duplicate reserve by same customer succeeded")
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		if got := m.QueryNumFree(tx, Flight, 7); got != 0 {
			t.Errorf("free after reserve = %d", got)
		}
		if got := m.QueryCustomerBill(tx, 42); got != 80 {
			t.Errorf("bill = %d, want 80", got)
		}
	})
	// No free units left: another customer cannot book.
	th.Atomic(func(tx *stm.Tx) {
		m.AddCustomer(tx, 43)
		if m.Reserve(tx, 43, Flight, 7) {
			t.Error("overbooked")
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		if !m.CancelReservation(tx, 42, Flight, 7) {
			t.Error("cancel failed")
		}
		if m.CancelReservation(tx, 42, Flight, 7) {
			t.Error("double cancel succeeded")
		}
	})
	if err := m.CheckConsistency(th); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteCustomerReleasesUnits(t *testing.T) {
	s := stm.New()
	m := NewManager(s, trees.RB)
	th := s.NewThread()
	th.Atomic(func(tx *stm.Tx) {
		m.AddReservation(tx, Room, 1, 2, 60)
		m.AddCustomer(tx, 9)
		m.Reserve(tx, 9, Room, 1)
	})
	th.Atomic(func(tx *stm.Tx) {
		if !m.DeleteCustomer(tx, 9) {
			t.Error("delete customer failed")
		}
		if m.DeleteCustomer(tx, 9) {
			t.Error("double delete succeeded")
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		if got := m.QueryNumFree(tx, Room, 1); got != 2 {
			t.Errorf("units not released: free = %d, want 2", got)
		}
	})
	if err := m.CheckConsistency(th); err != nil {
		t.Fatal(err)
	}
}

// TestSeqMatchesConcurrentSingleClient drives the transactional manager and
// the sequential baseline with identical seeds from one thread; the final
// databases must agree row for row.
func TestSeqMatchesConcurrentSingleClient(t *testing.T) {
	for _, kind := range []trees.Kind{trees.SF, trees.SFOpt, trees.RB, trees.AVL, trees.NR} {
		t.Run(string(kind), func(t *testing.T) {
			cfg := smallCfg()
			s := stm.New()
			m := NewManager(s, kind)
			th := s.NewThread()
			Populate(m, th, cfg, 1)
			cl := NewClient(m, th, cfg, 2)
			cl.Run(cfg.NumTransactions)

			sm := NewSeqManager()
			PopulateSeq(sm, cfg, 1)
			scl := NewSeqClient(sm, cfg, 2)
			scl.Run(cfg.NumTransactions)

			if cl.Counts != scl.Counts {
				t.Fatalf("action mix diverged: %+v vs %+v", cl.Counts, scl.Counts)
			}
			if err := m.CheckConsistency(th); err != nil {
				t.Fatal(err)
			}
			if err := sm.CheckSeqConsistency(); err != nil {
				t.Fatal(err)
			}
			// Row-for-row table comparison.
			for tt := Car; tt < numResTypes; tt++ {
				keys := m.Table(tt).Keys(th)
				if len(keys) != len(sm.tables[tt]) {
					t.Fatalf("%v table sizes: tx %d, seq %d", tt, len(keys), len(sm.tables[tt]))
				}
				for _, id := range keys {
					sr, ok := sm.tables[tt][id]
					if !ok {
						t.Fatalf("%v %d missing from sequential", tt, id)
					}
					th.Atomic(func(tx *stm.Tx) {
						h, _ := m.Table(tt).GetTx(tx, id)
						r := m.reservation(h)
						if int64(tx.Read(&r.numUsed)) != sr.used ||
							int64(tx.Read(&r.numFree)) != sr.free ||
							int64(tx.Read(&r.numTotal)) != sr.total ||
							int64(tx.Read(&r.price)) != sr.price {
							t.Errorf("%v %d diverged: tx(%d,%d,%d,%d) seq(%d,%d,%d,%d)",
								tt, id,
								tx.Read(&r.numUsed), tx.Read(&r.numFree), tx.Read(&r.numTotal), tx.Read(&r.price),
								sr.used, sr.free, sr.total, sr.price)
						}
					})
				}
			}
			// Customers and bills.
			custKeys := m.Customers().Keys(th)
			if len(custKeys) != len(sm.cust) {
				t.Fatalf("customers: tx %d, seq %d", len(custKeys), len(sm.cust))
			}
			for _, id := range custKeys {
				var bill int64
				th.Atomic(func(tx *stm.Tx) { bill = m.QueryCustomerBill(tx, id) })
				if want := sm.customerBill(id); bill != want {
					t.Fatalf("customer %d bill %d, want %d", id, bill, want)
				}
			}
		})
	}
}

// TestConcurrentClientsConsistency runs several clients in parallel on every
// tree kind (with maintenance active for the SF trees) and checks the
// cross-table accounting afterwards.
func TestConcurrentClientsConsistency(t *testing.T) {
	for _, kind := range []trees.Kind{trees.SF, trees.SFOpt, trees.RB, trees.AVL, trees.NR} {
		t.Run(string(kind), func(t *testing.T) {
			cfg := HighContention(48, 0)
			s := stm.New()
			m := NewManager(s, kind)
			setup := s.NewThread()
			Populate(m, setup, cfg, 3)
			stop := m.StartMaintenance()
			const clients = 4
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				cl := NewClient(m, s.NewThread(), cfg, int64(100+i))
				wg.Add(1)
				go func() {
					defer wg.Done()
					cl.Run(250)
				}()
			}
			wg.Wait()
			stop()
			if err := m.CheckConsistency(setup); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConfigPresets(t *testing.T) {
	lo := LowContention(1000, 10)
	if lo.NumQueryPerTx != 2 || lo.QueryPercent != 90 || lo.UserPercent != 98 {
		t.Fatalf("low preset drifted: %+v", lo)
	}
	hi := HighContention(1000, 10)
	if hi.NumQueryPerTx != 4 || hi.QueryPercent != 60 || hi.UserPercent != 90 {
		t.Fatalf("high preset drifted: %+v", hi)
	}
	if lo.QueryRange() != 900 || hi.QueryRange() != 600 {
		t.Fatalf("query ranges: %d, %d", lo.QueryRange(), hi.QueryRange())
	}
	if (Config{NumRelations: 10, QueryPercent: 1}).QueryRange() != 1 {
		t.Fatal("query range must be at least 1")
	}
}

func TestResTypeString(t *testing.T) {
	if Car.String() != "car" || Flight.String() != "flight" || Room.String() != "room" {
		t.Fatal("ResType names")
	}
	if ResType(9).String() != "?" {
		t.Fatal("unknown ResType")
	}
}

func TestManagerAtomicDemotesElastic(t *testing.T) {
	// A vacation database over a non-elastic-safe tree must run composed
	// transactions in CTL even when the domain defaults to elastic.
	s := stm.New(stm.WithMode(stm.Elastic))
	m := NewManager(s, trees.RB)
	th := s.NewThread()
	var mode stm.Mode
	m.Atomic(th, func(tx *stm.Tx) { mode = tx.Mode() })
	if mode != stm.CTL {
		t.Fatalf("mode = %v, want CTL", mode)
	}
	// And over the portable SF tree the elasticity is preserved.
	m2 := NewManager(s, trees.SF)
	m2.Atomic(th, func(tx *stm.Tx) { mode = tx.Mode() })
	if mode != stm.Elastic {
		t.Fatalf("mode = %v, want Elastic", mode)
	}
}

func TestVacationOnElasticDomain(t *testing.T) {
	// End-to-end: the whole application on an elastic STM domain with the
	// portable SF tree, then the conservation check.
	s := stm.New(stm.WithMode(stm.Elastic))
	m := NewManager(s, trees.SF)
	th := s.NewThread()
	cfg := HighContention(32, 0)
	Populate(m, th, cfg, 11)
	cl := NewClient(m, th, cfg, 12)
	cl.Run(300)
	if err := m.CheckConsistency(th); err != nil {
		t.Fatal(err)
	}
}
