package vacation

import (
	"fmt"

	"repro/internal/stm"
	"repro/internal/tlist"
	"repro/internal/trees"
)

// Customer is one row of the customer table: an id plus the sorted list of
// reservation records the customer holds. The list key packs (type, id) and
// the value records the price paid, so the bill is reconstructible.
type Customer struct {
	id           uint64
	reservations *tlist.List
}

// infoKey packs a reservation type and resource id into a list key.
func infoKey(t ResType, id uint64) uint64 { return uint64(t)<<48 | id }

// Manager is the transactional travel database: four tree directories plus
// the record registries. All methods taking a *stm.Tx compose into the
// caller's transaction; the paper's point is precisely that such composition
// is safe and efficient on a speculation-friendly tree.
type Manager struct {
	s      *stm.STM
	tables [numResTypes]trees.Map // car/flight/room directories
	cust   trees.Map              // customer directory

	resRecords  registry[Reservation]
	custRecords registry[Customer]
}

// NewManager creates an empty database whose four directories are trees of
// the given kind.
func NewManager(s *stm.STM, kind trees.Kind) *Manager {
	m := &Manager{s: s}
	for i := range m.tables {
		m.tables[i] = trees.New(kind, s)
	}
	m.cust = trees.New(kind, s)
	return m
}

// StartMaintenance launches maintenance on every directory that has it,
// returning a function stopping them all.
func (m *Manager) StartMaintenance() (stop func()) {
	stops := make([]func(), 0, numResTypes+1)
	for i := range m.tables {
		stops = append(stops, trees.Start(m.tables[i]))
	}
	stops = append(stops, trees.Start(m.cust))
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// Atomic runs fn as one composed database transaction, demoting elastic
// mode when the underlying tree library does not tolerate cut reads
// (trees.Atomic). Clients must use it for every multi-operation action.
func (m *Manager) Atomic(th *stm.Thread, fn func(tx *stm.Tx)) {
	trees.Atomic(m.cust, th, fn)
}

// Table exposes one directory (for instrumentation).
func (m *Manager) Table(t ResType) trees.Map { return m.tables[t] }

// Customers exposes the customer directory (for instrumentation).
func (m *Manager) Customers() trees.Map { return m.cust }

func (m *Manager) reservation(h uint64) *Reservation { return m.resRecords.get(h) }
func (m *Manager) customer(h uint64) *Customer       { return m.custRecords.get(h) }

// AddReservation adds num units at the given price to resource id of table
// t, creating the row if needed; with negative num it releases free units,
// dropping the row when its total reaches zero (STAMP's addReservation,
// which both manager_add<T> and manager_delete<T> funnel into).
func (m *Manager) AddReservation(tx *stm.Tx, t ResType, id uint64, num int64, price int64) bool {
	tbl := m.tables[t]
	h, ok := tbl.GetTx(tx, id)
	if !ok {
		// Row absent: only a genuine addition can create it.
		if num < 1 || price < 0 {
			return false
		}
		r := &Reservation{id: id}
		r.numFree.SetPlain(uint64(num))
		r.numTotal.SetPlain(uint64(num))
		r.price.SetPlain(uint64(price))
		return m.tables[t].InsertTxA(tx, id, m.resRecords.add(r))
	}
	r := m.reservation(h)
	if !r.AddToTotal(tx, num) {
		return false
	}
	if tx.Read(&r.numTotal) == 0 {
		return tbl.DeleteTx(tx, id)
	}
	if price >= 0 {
		r.UpdatePrice(tx, uint64(price))
	}
	return true
}

// DeleteReservation releases num free units of resource id (manager_delete<T>).
func (m *Manager) DeleteReservation(tx *stm.Tx, t ResType, id uint64, num int64) bool {
	return m.AddReservation(tx, t, id, -num, -1)
}

// QueryNumFree returns the number of free units of resource id, or -1 when
// the row is absent.
func (m *Manager) QueryNumFree(tx *stm.Tx, t ResType, id uint64) int64 {
	h, ok := m.tables[t].GetTx(tx, id)
	if !ok {
		return -1
	}
	return int64(tx.Read(&m.reservation(h).numFree))
}

// QueryPrice returns the current price of resource id, or -1 when absent.
func (m *Manager) QueryPrice(tx *stm.Tx, t ResType, id uint64) int64 {
	h, ok := m.tables[t].GetTx(tx, id)
	if !ok {
		return -1
	}
	return int64(tx.Read(&m.reservation(h).price))
}

// AddCustomer registers customer id; false when already present.
func (m *Manager) AddCustomer(tx *stm.Tx, id uint64) bool {
	if m.cust.ContainsTx(tx, id) {
		return false
	}
	c := &Customer{id: id, reservations: tlist.New()}
	return m.cust.InsertTxA(tx, id, m.custRecords.add(c))
}

// QueryCustomerBill sums the prices of the customer's reservations, or -1
// when the customer does not exist.
func (m *Manager) QueryCustomerBill(tx *stm.Tx, id uint64) int64 {
	h, ok := m.cust.GetTx(tx, id)
	if !ok {
		return -1
	}
	var bill int64
	m.customer(h).reservations.EachTx(tx, func(_, price uint64) {
		bill += int64(price)
	})
	return bill
}

// Reserve books one unit of resource id of table t for the customer: it
// consumes a free unit and appends a reservation record to the customer's
// list, undoing the consumption if the customer already holds the resource
// (STAMP's manager_reserve).
func (m *Manager) Reserve(tx *stm.Tx, customerID uint64, t ResType, id uint64) bool {
	ch, ok := m.cust.GetTx(tx, customerID)
	if !ok {
		return false
	}
	rh, ok := m.tables[t].GetTx(tx, id)
	if !ok {
		return false
	}
	r := m.reservation(rh)
	if !r.Make(tx) {
		return false
	}
	c := m.customer(ch)
	if !c.reservations.InsertTx(tx, infoKey(t, id), tx.Read(&r.price)) {
		// Already holds this resource: roll the unit back.
		if !r.Cancel(tx) {
			panic("vacation: cancel after failed info insert cannot fail")
		}
		return false
	}
	return true
}

// CancelReservation releases one unit the customer holds (manager_cancel).
func (m *Manager) CancelReservation(tx *stm.Tx, customerID uint64, t ResType, id uint64) bool {
	ch, ok := m.cust.GetTx(tx, customerID)
	if !ok {
		return false
	}
	rh, ok := m.tables[t].GetTx(tx, id)
	if !ok {
		return false
	}
	c := m.customer(ch)
	if !c.reservations.RemoveTx(tx, infoKey(t, id)) {
		return false
	}
	return m.reservation(rh).Cancel(tx)
}

// DeleteCustomer cancels all of the customer's reservations and removes the
// customer row (STAMP's manager_deleteCustomer).
func (m *Manager) DeleteCustomer(tx *stm.Tx, id uint64) bool {
	ch, ok := m.cust.GetTx(tx, id)
	if !ok {
		return false
	}
	c := m.customer(ch)
	c.reservations.EachTx(tx, func(key, _ uint64) {
		t := ResType(key >> 48)
		resID := key & (1<<48 - 1)
		if rh, ok := m.tables[t].GetTx(tx, resID); ok {
			m.reservation(rh).Cancel(tx)
		}
	})
	return m.cust.DeleteTx(tx, id)
}

// CheckConsistency verifies, quiescently, the cross-table accounting
// invariants: every row has total = used + free, and for every resource the
// used count equals the number of customers holding it. It mirrors (and
// strengthens) STAMP's checkTables.
func (m *Manager) CheckConsistency(th *stm.Thread) error {
	held := map[uint64]uint64{} // infoKey -> number of holders
	for _, cid := range m.cust.Keys(th) {
		var err error
		th.Atomic(func(tx *stm.Tx) {
			h, ok := m.cust.GetTx(tx, cid)
			if !ok {
				err = fmt.Errorf("customer %d vanished during check", cid)
				return
			}
			m.customer(h).reservations.EachTx(tx, func(key, _ uint64) {
				held[key]++
			})
		})
		if err != nil {
			return err
		}
	}
	for t := Car; t < numResTypes; t++ {
		for _, id := range m.tables[t].Keys(th) {
			var used, free, total uint64
			th.Atomic(func(tx *stm.Tx) {
				h, ok := m.tables[t].GetTx(tx, id)
				if !ok {
					return
				}
				r := m.reservation(h)
				used = tx.Read(&r.numUsed)
				free = tx.Read(&r.numFree)
				total = tx.Read(&r.numTotal)
			})
			if used+free != total {
				return fmt.Errorf("%v %d: used %d + free %d != total %d", t, id, used, free, total)
			}
			if held[infoKey(t, id)] != used {
				return fmt.Errorf("%v %d: used %d but %d holders", t, id, used, held[infoKey(t, id)])
			}
			delete(held, infoKey(t, id))
		}
	}
	for key, n := range held {
		if n > 0 {
			return fmt.Errorf("%v %d held by %d customers but row missing",
				ResType(key>>48), key&(1<<48-1), n)
		}
	}
	return nil
}
