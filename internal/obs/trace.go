package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// SpanKind names one phase of a traced operation's timeline. A complete
// sampled operation yields one SpanOp plus zero or more phase spans sharing
// its trace ID: one SpanAttempt per STM attempt, a SpanCombinerWait when the
// op parked on a combiner future, SpanFtxIntent/Prepare/Finalize for the
// cross-shard two-phase commit, and a SpanWALAppend stretching from the log
// append to the group-commit fsync that made it durable.
type SpanKind uint8

const (
	// SpanOp: the whole facade operation. A is the op-specific result code
	// (1 applied/found, 0 not, -1 error/abort), B is unused.
	SpanOp SpanKind = iota
	// SpanAttempt: one STM attempt inside the op. A is -1 for the committing
	// attempt, otherwise the AbortCause code; B is the attempt index (0 = first).
	SpanAttempt
	// SpanCombinerWait: enqueue on a combiner ring until the batch commit
	// completed the future. A=batch size, B=shard index.
	SpanCombinerWait
	// SpanFtxIntent: the intent-acquire phase of a cross-shard commit.
	// A=participating shards, B=1 if a conflict aborted the phase.
	SpanFtxIntent
	// SpanFtxPrepare: the shard-ordered prepare phase. A=participating
	// shards, B=1 if a prepare failed and the commit unwound.
	SpanFtxPrepare
	// SpanFtxFinalize: finalize-all plus the atomic WAL record. A=shards.
	SpanFtxFinalize
	// SpanWALAppend: WAL append until fsync completion. A=shard index (-1
	// for a multi-shard atomic record), B=bytes appended.
	SpanWALAppend
	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	"op", "stm.attempt", "combiner.wait", "ftx.intent", "ftx.prepare",
	"ftx.finalize", "wal.append",
}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return fmt.Sprintf("span(%d)", uint8(k))
}

// OpKind names the facade operation a trace belongs to.
type OpKind uint8

const (
	OpInsert OpKind = iota
	OpDelete
	OpGet
	OpContains
	OpMove
	OpUpdate
	OpRange
	OpAtomic
	NumOpKinds
)

// OpNone marks spans that belong to no single facade operation (the WAL's
// append→fsync spans, which can cover records from many ops). It renders as
// "-" and is never a valid EndOp/OpHistogram argument.
const OpNone OpKind = 0xff

var opKindNames = [NumOpKinds]string{
	"insert", "delete", "get", "contains", "move", "update", "range", "atomic",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	if k == OpNone {
		return "-"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Span is one recorded phase. Plain data only — recording never allocates.
type Span struct {
	TraceID uint64   `json:"trace_id"`
	Kind    SpanKind `json:"-"`
	Op      OpKind   `json:"-"`
	Start   int64    `json:"start"` // unix nanoseconds
	End     int64    `json:"end"`   // unix nanoseconds
	A       int64    `json:"a"`
	B       int64    `json:"b"`
}

// traceSlot holds one span in atomic fields under a per-slot seqlock
// version (odd while a writer owns it), exactly like the flight recorder's
// flightSlot: concurrent wraparound reads are race-clean and the version
// makes the fields mutually consistent.
type traceSlot struct {
	ver    atomic.Uint64
	id     atomic.Uint64
	kindOp atomic.Uint64 // kind<<8 | op, packed so the slot stays 8 words
	start  atomic.Int64
	end    atomic.Int64
	a      atomic.Int64
	b      atomic.Int64
}

// slowWindowNanos is the slow-op table's window: the table keeps the K
// slowest complete operations seen in the current window and resets lazily
// when a new offer arrives after the window has elapsed.
const slowWindowNanos = int64(60e9)

// slowK is the table's capacity.
const slowK = 32

// SlowOp is one entry of the slow-operation table.
type SlowOp struct {
	TraceID uint64 `json:"trace_id"`
	Op      string `json:"op"`
	Start   int64  `json:"start"`
	DurNs   int64  `json:"dur_ns"`
}

type slowEntry struct {
	traceID uint64
	op      OpKind
	start   int64
	dur     int64
}

// slowTable is a bounded min-heap on duration: an offer either fills a free
// slot or evicts the current minimum when slower than it. The mutex is
// fine — offers happen only on the sampled path, at most one per sampled
// op — and the preallocated array keeps offers allocation-free.
type slowTable struct {
	mu       sync.Mutex
	windowAt int64
	n        int
	heap     [slowK]slowEntry
}

func (t *slowTable) offer(traceID uint64, op OpKind, start, dur int64) {
	t.mu.Lock()
	if start-t.windowAt > slowWindowNanos {
		t.windowAt = start
		t.n = 0
	}
	if t.n < slowK {
		t.heap[t.n] = slowEntry{traceID: traceID, op: op, start: start, dur: dur}
		// Sift up.
		for i := t.n; i > 0; {
			p := (i - 1) / 2
			if t.heap[p].dur <= t.heap[i].dur {
				break
			}
			t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
			i = p
		}
		t.n++
	} else if dur > t.heap[0].dur {
		t.heap[0] = slowEntry{traceID: traceID, op: op, start: start, dur: dur}
		// Sift down.
		for i := 0; ; {
			l, r, m := 2*i+1, 2*i+2, i
			if l < t.n && t.heap[l].dur < t.heap[m].dur {
				m = l
			}
			if r < t.n && t.heap[r].dur < t.heap[m].dur {
				m = r
			}
			if m == i {
				break
			}
			t.heap[i], t.heap[m] = t.heap[m], t.heap[i]
			i = m
		}
	}
	t.mu.Unlock()
}

func (t *slowTable) snapshot() []SlowOp {
	t.mu.Lock()
	out := make([]SlowOp, 0, t.n)
	for i := 0; i < t.n; i++ {
		e := t.heap[i]
		out = append(out, SlowOp{TraceID: e.traceID, Op: e.op.String(), Start: e.start, DurNs: e.dur})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurNs > out[j].DurNs })
	return out
}

// Tracer is the sampling span recorder. The sampling decision is made once
// at op start — Sample compares a caller-supplied xorshift draw against a
// precomputed threshold, so an unsampled op pays one branch and no atomic —
// and every span of a sampled op carries the trace ID handed out by NextID.
// Record claims ring slots exactly like FlightRecorder.Record (global
// sequence, per-slot seqlock, drop on collision) and never allocates. A nil
// *Tracer is inert on every method, so instrumented layers hold an optional
// tracer behind one nil/zero check.
type Tracer struct {
	every     int
	threshold uint64 // sample when draw <= threshold
	idSeq     atomic.Uint64
	seq       atomic.Uint64
	slots     []traceSlot
	sampled   Counter // sampled operations
	recorded  Counter // spans written into the ring
	opH       [NumOpKinds]Histogram
	slow      slowTable
}

// NewTracer returns a tracer sampling 1-in-sampleEvery operations
// (sampleEvery <= 1 samples every op) into a ring of ringSize spans
// (rounded up to a power of two, minimum 64).
func NewTracer(sampleEvery, ringSize int) *Tracer {
	n := 64
	for n < ringSize {
		n <<= 1
	}
	t := &Tracer{every: sampleEvery, slots: make([]traceSlot, n)}
	if sampleEvery <= 1 {
		t.every = 1
		t.threshold = math.MaxUint64
	} else {
		t.threshold = math.MaxUint64 / uint64(sampleEvery)
	}
	return t
}

// SampleEvery returns the configured sampling period (1 = every op).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return t.every
}

// Sample reports whether an op whose per-thread xorshift drew rnd should be
// traced. One compare; no atomics, no allocation.
func (t *Tracer) Sample(rnd uint64) bool {
	return t != nil && rnd <= t.threshold
}

// NextID allocates a fresh trace ID (never zero, so zero can mean
// "untraced" in carried contexts).
func (t *Tracer) NextID() uint64 {
	t.sampled.Inc()
	return t.idSeq.Add(1)
}

// Record appends one span. Allocation-free, safe from any goroutine, and a
// no-op on a nil tracer or a zero trace ID.
func (t *Tracer) Record(id uint64, kind SpanKind, op OpKind, start, end, a, b int64) {
	if t == nil || id == 0 {
		return
	}
	i := t.seq.Add(1) - 1
	s := &t.slots[i&uint64(len(t.slots)-1)]
	// Claim the slot: flip the version odd. If a writer that lapped us holds
	// it, drop the span rather than spin — the ring is diagnostics.
	v := s.ver.Load()
	if v&1 == 1 || !s.ver.CompareAndSwap(v, v+1) {
		return
	}
	s.id.Store(id)
	s.kindOp.Store(uint64(kind)<<8 | uint64(op))
	s.start.Store(start)
	s.end.Store(end)
	s.a.Store(a)
	s.b.Store(b)
	s.ver.Add(1)
	t.recorded.Inc()
}

// EndOp records the operation-level span, feeds the per-op-kind latency
// histogram from the same timestamps, and offers the op to the slow table.
// Allocation-free; no-op on a nil tracer or zero id.
func (t *Tracer) EndOp(id uint64, op OpKind, start, end, a int64) {
	if t == nil || id == 0 {
		return
	}
	t.Record(id, SpanOp, op, start, end, a, 0)
	d := end - start
	if d < 0 {
		d = 0
	}
	t.opH[op].Record(uint64(d))
	t.slow.offer(id, op, start, d)
}

// OpHistogram returns the latency histogram for one op kind (for tests and
// harnesses; the registry collector exposes them as op_latency_nanos).
func (t *Tracer) OpHistogram(op OpKind) *Histogram {
	if t == nil {
		return nil
	}
	return &t.opH[op]
}

// Spans returns the recorded spans, oldest first. Spans being written
// concurrently are skipped rather than torn.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	end := t.seq.Load()
	n := uint64(len(t.slots))
	start := uint64(0)
	if end > n {
		start = end - n
	}
	out := make([]Span, 0, end-start)
	for i := start; i < end; i++ {
		s := &t.slots[i&(n-1)]
		for tries := 0; tries < 4; tries++ {
			v1 := s.ver.Load()
			if v1&1 == 1 {
				continue
			}
			ko := s.kindOp.Load()
			sp := Span{TraceID: s.id.Load(), Kind: SpanKind(ko >> 8), Op: OpKind(ko & 0xff),
				Start: s.start.Load(), End: s.end.Load(), A: s.a.Load(), B: s.b.Load()}
			if s.ver.Load() != v1 {
				continue
			}
			if sp.TraceID != 0 {
				out = append(out, sp)
			}
			break
		}
	}
	return out
}

// SlowOps returns the slow-op table's current window, slowest first.
func (t *Tracer) SlowOps() []SlowOp {
	if t == nil {
		return nil
	}
	return t.slow.snapshot()
}

// jsonSpan is the /trace JSON shape: kind and op spelled out, duration
// precomputed.
type jsonSpan struct {
	TraceID uint64 `json:"trace_id"`
	Kind    string `json:"kind"`
	Op      string `json:"op"`
	Start   int64  `json:"start"`
	End     int64  `json:"end"`
	DurNs   int64  `json:"dur_ns"`
	A       int64  `json:"a"`
	B       int64  `json:"b"`
}

// WriteJSON dumps the span ring (oldest first) and the slow-op table as one
// JSON document, the shape served by the HTTP endpoint's /trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	out := struct {
		SampleEvery int        `json:"sample_every"`
		Sampled     uint64     `json:"sampled_ops"`
		Spans       []jsonSpan `json:"spans"`
		SlowOps     []SlowOp   `json:"slow_ops"`
	}{SampleEvery: t.SampleEvery(), Sampled: t.sampled.Load()}
	for _, sp := range t.Spans() {
		out.Spans = append(out.Spans, jsonSpan{TraceID: sp.TraceID, Kind: sp.Kind.String(),
			Op: sp.Op.String(), Start: sp.Start, End: sp.End, DurNs: sp.End - sp.Start,
			A: sp.A, B: sp.B})
	}
	out.SlowOps = t.SlowOps()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// RegisterObs registers a collector exposing the tracer's series: the
// sampled-op and recorded-span counters and one op_latency_nanos histogram
// per op kind that has observations, labeled op="<kind>".
func (t *Tracer) RegisterObs(r *Registry) {
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "trace_sampled_ops_total", Kind: KindCounter,
			Help: "Operations selected for tracing.", Value: float64(t.sampled.Load())})
		emit(Sample{Name: "trace_spans_total", Kind: KindCounter,
			Help: "Spans written into the trace ring.", Value: float64(t.recorded.Load())})
		for op := OpKind(0); op < NumOpKinds; op++ {
			h := t.opH[op].Snapshot()
			if h.Count == 0 {
				continue
			}
			emit(Sample{Name: "op_latency_nanos", Label: `op="` + op.String() + `"`,
				Kind: KindHistogram, Help: "Sampled end-to-end operation latency, nanoseconds.",
				Value: float64(h.Sum), Hist: &h})
		}
	})
}
