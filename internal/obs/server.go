package obs

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/metrics"
	"strconv"
	"sync"
	"time"
)

// snapCacheSize bounds the server-side window cache for /snapshot?since:
// the last N snapshots served are kept so a scraper can hand its previous
// response's seq back and receive a Registry.Diff against it.
const snapCacheSize = 8

type snapCacheEntry struct {
	seq  uint64
	snap Snapshot
}

type snapCache struct {
	mu      sync.Mutex
	nextSeq uint64
	ring    [snapCacheSize]snapCacheEntry
}

// store caches snap and returns its sequence number (starting at 1).
func (c *snapCache) store(snap Snapshot) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextSeq++
	c.ring[c.nextSeq%snapCacheSize] = snapCacheEntry{seq: c.nextSeq, snap: snap}
	return c.nextSeq
}

// get returns the cached snapshot with the given sequence number, if it is
// still within the window.
func (c *snapCache) get(seq uint64) (Snapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.ring[seq%snapCacheSize]
	if e.seq != seq || seq == 0 {
		return Snapshot{}, false
	}
	return e.snap, true
}

// Handler returns the observability mux for a registry: Prometheus-text
// /metrics, a JSON snapshot at /snapshot (with ?since=<seq> windowed
// diffing against a recent response), the flight-recorder dump at /flight,
// the span tracer's /trace, and the standard net/http/pprof tree under
// /debug/pprof/.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	var sc snapCache
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		cur := r.Snapshot()
		seq := sc.store(cur)
		if s := req.URL.Query().Get("since"); s != "" {
			since, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			if prev, ok := sc.get(since); ok {
				cur.Diff(prev).WriteJSONWindow(w, seq, since, true)
				return
			}
			// Unknown or aged-out seq: fall through to the full snapshot,
			// which resets the scraper's baseline.
		}
		cur.WriteJSONWindow(w, seq, 0, false)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		t := r.Tracer()
		if t == nil {
			http.Error(w, "no tracer attached (repro.WithTracing / microbench -trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		t.WriteJSON(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		f := r.Flight()
		if f == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		f.WriteTo(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "repro observability endpoint\n\n/metrics\n/snapshot\n/trace\n/flight\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	l   net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":9100" or
// "127.0.0.1:0") and returns once it is listening. It never blocks the
// caller's hot path: all collection work happens per request.
func Serve(addr string, r *Registry) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{l: l, srv: &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(l)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// RegisterRuntime registers a collector exposing a small set of Go runtime
// health series: goroutine count, heap bytes, and the GC pause p99 over
// the process lifetime (from runtime/metrics).
func RegisterRuntime(r *Registry) {
	samples := []metrics.Sample{
		{Name: "/gc/pauses:seconds"},
		{Name: "/memory/classes/heap/objects:bytes"},
	}
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "go_goroutines", Kind: KindGauge, Help: "Number of live goroutines.", Value: float64(runtime.NumGoroutine())})
		metrics.Read(samples)
		if h := samples[0].Value; h.Kind() == metrics.KindFloat64Histogram {
			emit(Sample{Name: "go_gc_pause_p99_ns", Kind: KindGauge,
				Help:  "p99 GC pause over the process lifetime, nanoseconds.",
				Value: float64(histQuantileNanos(h.Float64Histogram(), 0.99))})
		}
		if v := samples[1].Value; v.Kind() == metrics.KindUint64 {
			emit(Sample{Name: "go_heap_objects_bytes", Kind: KindGauge, Help: "Heap memory occupied by live objects.", Value: float64(v.Uint64())})
		}
	})
}

// histQuantileNanos returns the q-th quantile of a runtime/metrics
// seconds histogram, in nanoseconds. Exported logic shared with the bench
// harness via HistogramQuantileNanos.
func histQuantileNanos(h *metrics.Float64Histogram, q float64) uint64 {
	if h == nil {
		return 0
	}
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			// Bucket i spans (Buckets[i], Buckets[i+1]]; report the upper
			// edge. The first/last edges can be +-Inf.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 0) || math.IsNaN(hi) {
				hi = h.Buckets[i]
			}
			if hi < 0 || math.IsInf(hi, 0) || math.IsNaN(hi) {
				hi = 0
			}
			return uint64(hi * 1e9)
		}
	}
	return 0
}

// HistogramQuantileNanos exposes the runtime/metrics histogram quantile
// helper for harnesses that sample /gc/pauses:seconds themselves.
func HistogramQuantileNanos(h *metrics.Float64Histogram, q float64) uint64 {
	return histQuantileNanos(h, q)
}
