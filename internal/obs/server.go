package obs

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/metrics"
	"time"
)

// Handler returns the observability mux for a registry: Prometheus-text
// /metrics, a JSON snapshot at /snapshot, the flight-recorder dump at
// /flight (text) and /flight.json, and the standard net/http/pprof tree
// under /debug/pprof/.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		f := r.Flight()
		if f == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		f.WriteTo(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "repro observability endpoint\n\n/metrics\n/snapshot\n/flight\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	l   net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":9100" or
// "127.0.0.1:0") and returns once it is listening. It never blocks the
// caller's hot path: all collection work happens per request.
func Serve(addr string, r *Registry) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{l: l, srv: &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(l)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// RegisterRuntime registers a collector exposing a small set of Go runtime
// health series: goroutine count, heap bytes, and the GC pause p99 over
// the process lifetime (from runtime/metrics).
func RegisterRuntime(r *Registry) {
	samples := []metrics.Sample{
		{Name: "/gc/pauses:seconds"},
		{Name: "/memory/classes/heap/objects:bytes"},
	}
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "go_goroutines", Kind: KindGauge, Help: "Number of live goroutines.", Value: float64(runtime.NumGoroutine())})
		metrics.Read(samples)
		if h := samples[0].Value; h.Kind() == metrics.KindFloat64Histogram {
			emit(Sample{Name: "go_gc_pause_p99_ns", Kind: KindGauge,
				Help: "p99 GC pause over the process lifetime, nanoseconds.",
				Value: float64(histQuantileNanos(h.Float64Histogram(), 0.99))})
		}
		if v := samples[1].Value; v.Kind() == metrics.KindUint64 {
			emit(Sample{Name: "go_heap_objects_bytes", Kind: KindGauge, Help: "Heap memory occupied by live objects.", Value: float64(v.Uint64())})
		}
	})
}

// histQuantileNanos returns the q-th quantile of a runtime/metrics
// seconds histogram, in nanoseconds. Exported logic shared with the bench
// harness via HistogramQuantileNanos.
func histQuantileNanos(h *metrics.Float64Histogram, q float64) uint64 {
	if h == nil {
		return 0
	}
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			// Bucket i spans (Buckets[i], Buckets[i+1]]; report the upper
			// edge. The first/last edges can be +-Inf.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 0) || math.IsNaN(hi) {
				hi = h.Buckets[i]
			}
			if hi < 0 || math.IsInf(hi, 0) || math.IsNaN(hi) {
				hi = 0
			}
			return uint64(hi * 1e9)
		}
	}
	return 0
}

// HistogramQuantileNanos exposes the runtime/metrics histogram quantile
// helper for harnesses that sample /gc/pauses:seconds themselves.
func HistogramQuantileNanos(h *metrics.Float64Histogram, q float64) uint64 {
	return histQuantileNanos(h, q)
}
