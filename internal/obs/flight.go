package obs

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// EventKind names a flight-recorder event. The A/B payloads are
// kind-specific (documented per constant); Dur is a duration in
// nanoseconds where the event has one.
type EventKind uint8

const (
	// EvCheckpointFull: a full checkpoint generation. A=bytes, B=pairs.
	EvCheckpointFull EventKind = iota
	// EvCheckpointDelta: a delta checkpoint generation. A=bytes, B=pairs.
	EvCheckpointDelta
	// EvCompaction: a delta-chain compaction back to a full base. A=bytes.
	EvCompaction
	// EvRecovery: a recovery pass. A=pairs applied, B=WAL records replayed.
	EvRecovery
	// EvWALStall: an appender blocked on the unsynced-bytes bound.
	// A=unsynced bytes at entry; Dur is the stall.
	EvWALStall
	// EvWALDrop: a WAL append dropped (closed or over hard bound). A=bytes.
	EvWALDrop
	// EvWALRotate: the WAL sealed a segment. A=segment bytes.
	EvWALRotate
	// EvBatch: the combiner applied a coalesced batch. A=batch size.
	EvBatch
	// EvMaintDrain: a maintenance hint-drain burst. A=hints consumed,
	// B=repairs performed.
	EvMaintDrain
	// EvMaintSweep: a fallback maintenance sweep. A=repairs performed.
	EvMaintSweep
	// EvFtxPrepare: a slow cross-shard prepare phase (recorded only above a
	// duration threshold so the ring isn't flooded). A=participating shards,
	// B=1 if the phase failed and unwound; Dur is the phase duration.
	EvFtxPrepare
	// EvFtxAbort: a cross-shard transaction aborting after repeated retries
	// (recorded only above a retry threshold). A=participating shards,
	// B=abort cause (0 intent conflict, 1 prepare failure); Dur is unused.
	EvFtxAbort
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"checkpoint.full", "checkpoint.delta", "compaction", "recovery",
	"wal.stall", "wal.drop", "wal.rotate", "batch", "maint.drain",
	"maint.sweep", "ftx.prepare", "ftx.abort",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one recorded occurrence. Plain data only — recording one never
// allocates.
type Event struct {
	At   int64     `json:"at"` // unix nanoseconds
	Kind EventKind `json:"kind"`
	Dur  int64     `json:"dur_ns"`
	A    int64     `json:"a"`
	B    int64     `json:"b"`
}

// flightSlot holds one event in atomic fields guarded by a per-slot
// seqlock version (odd while a writer owns the slot). All fields are
// atomics so concurrent wraparound reads are race-detector-clean; the
// version makes the five fields mutually consistent.
type flightSlot struct {
	ver  atomic.Uint64
	at   atomic.Int64
	kind atomic.Int64
	dur  atomic.Int64
	a    atomic.Int64
	b    atomic.Int64
}

// FlightRecorder is a bounded lock-free ring of recent notable events.
// Record claims the next slot with a global sequence counter and publishes
// under the slot's seqlock; when the ring wraps, the oldest events are
// overwritten. Dump it on demand (Events/WriteTo, or the HTTP endpoint's
// /flight) or on panic (DumpOnPanic).
type FlightRecorder struct {
	seq   atomic.Uint64
	slots []flightSlot
	dumpW io.Writer // destination for DumpOnPanic; os.Stderr when nil
}

// NewFlightRecorder returns a recorder keeping the most recent `size`
// events (rounded up to a power of two, minimum 16).
func NewFlightRecorder(size int) *FlightRecorder {
	n := 16
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{slots: make([]flightSlot, n)}
}

// Record appends an event. Allocation-free and safe from any goroutine. A
// nil recorder ignores the call, so layers can hold an optional recorder
// behind one nil check.
func (f *FlightRecorder) Record(kind EventKind, dur time.Duration, a, b int64) {
	if f == nil {
		return
	}
	i := f.seq.Add(1) - 1
	s := &f.slots[i&uint64(len(f.slots)-1)]
	// Claim the slot: flip the version odd. If another writer lapped us
	// onto the same slot and holds it, drop this event rather than spin —
	// the recorder is diagnostics, not a ledger.
	v := s.ver.Load()
	if v&1 == 1 || !s.ver.CompareAndSwap(v, v+1) {
		return
	}
	s.at.Store(time.Now().UnixNano())
	s.kind.Store(int64(kind))
	s.dur.Store(int64(dur))
	s.a.Store(a)
	s.b.Store(b)
	s.ver.Add(1)
}

// Events returns the recorded events, oldest first. Events being written
// concurrently are skipped rather than torn.
func (f *FlightRecorder) Events() []Event {
	if f == nil {
		return nil
	}
	end := f.seq.Load()
	n := uint64(len(f.slots))
	start := uint64(0)
	if end > n {
		start = end - n
	}
	out := make([]Event, 0, end-start)
	for i := start; i < end; i++ {
		s := &f.slots[i&(n-1)]
		for tries := 0; tries < 4; tries++ {
			v1 := s.ver.Load()
			if v1&1 == 1 {
				continue
			}
			ev := Event{At: s.at.Load(), Kind: EventKind(s.kind.Load()), Dur: s.dur.Load(), A: s.a.Load(), B: s.b.Load()}
			if s.ver.Load() != v1 {
				continue
			}
			if ev.At != 0 {
				out = append(out, ev)
			}
			break
		}
	}
	return out
}

// WriteTo dumps the recorded events as human-readable lines, oldest first.
func (f *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, ev := range f.Events() {
		n, err := fmt.Fprintf(w, "%s %-16s dur=%-12s a=%-8d b=%d\n",
			time.Unix(0, ev.At).UTC().Format("15:04:05.000000"),
			ev.Kind, time.Duration(ev.Dur), ev.A, ev.B)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// SetDumpWriter redirects DumpOnPanic output (default os.Stderr).
func (f *FlightRecorder) SetDumpWriter(w io.Writer) { f.dumpW = w }

// DumpOnPanic is meant to be deferred at the top of a worker or main: if
// the goroutine is panicking it dumps the flight recorder to the dump
// writer and re-raises the panic unchanged.
func (f *FlightRecorder) DumpOnPanic() {
	r := recover()
	if r == nil {
		return
	}
	if f != nil {
		w := f.dumpW
		if w == nil {
			w = os.Stderr
		}
		fmt.Fprintf(w, "-- flight recorder (%d events) --\n", len(f.Events()))
		f.WriteTo(w)
	}
	panic(r)
}
