package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerSampling(t *testing.T) {
	var nilTr *Tracer
	if nilTr.Sample(0) {
		t.Fatal("nil tracer must not sample")
	}
	if nilTr.SampleEvery() != 0 {
		t.Fatal("nil tracer SampleEvery should be 0")
	}
	nilTr.Record(1, SpanOp, OpGet, 0, 1, 0, 0) // must not panic
	nilTr.EndOp(1, OpGet, 0, 1, 0)

	every := NewTracer(1, 64)
	for draw := uint64(0); draw < 100; draw++ {
		if !every.Sample(draw * 0x9e3779b97f4a7c15) {
			t.Fatal("sampleEvery=1 must sample every draw")
		}
	}

	// 1-in-64 over xorshift draws should land near 1/64 of the stream.
	tr := NewTracer(64, 64)
	x := uint64(12345)
	hits := 0
	const n = 1 << 16
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if tr.Sample(x) {
			hits++
		}
	}
	want := n / 64
	if hits < want/2 || hits > want*2 {
		t.Fatalf("1-in-64 sampling hit %d of %d draws, want ~%d", hits, n, want)
	}
}

func TestTracerNextIDNeverZero(t *testing.T) {
	tr := NewTracer(1, 64)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := tr.NextID()
		if id == 0 {
			t.Fatal("NextID returned 0, the untraced sentinel")
		}
		if seen[id] {
			t.Fatalf("NextID repeated %d", id)
		}
		seen[id] = true
	}
}

func TestTraceRingWraparound(t *testing.T) {
	tr := NewTracer(1, 64) // ring is exactly 64 slots
	const total = 300
	for i := 1; i <= total; i++ {
		tr.Record(uint64(i), SpanAttempt, OpInsert, int64(i), int64(i)+10, -1, 0)
	}
	spans := tr.Spans()
	if len(spans) == 0 || len(spans) > 64 {
		t.Fatalf("wrapped ring returned %d spans, want 1..64", len(spans))
	}
	// Oldest first, and only the newest window survives.
	for i, sp := range spans {
		if sp.TraceID <= total-64 {
			t.Fatalf("span %d has lapped trace ID %d", i, sp.TraceID)
		}
		if i > 0 && spans[i-1].TraceID >= sp.TraceID {
			t.Fatalf("spans out of order at %d: %d then %d", i, spans[i-1].TraceID, sp.TraceID)
		}
		if sp.End-sp.Start != 10 || sp.Kind != SpanAttempt || sp.Op != OpInsert || sp.A != -1 {
			t.Fatalf("span fields torn: %+v", sp)
		}
	}
}

func TestTraceRingConcurrentStress(t *testing.T) {
	tr := NewTracer(1, 256)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers exercise the seqlock validation under -race.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sp := range tr.Spans() {
					// Writers encode writer ID in A and iteration in B with
					// End = Start + A + B; a torn read breaks the identity.
					if sp.End != sp.Start+sp.A+sp.B {
						t.Errorf("torn span: %+v", sp)
						return
					}
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				id := tr.NextID()
				a, b := int64(w), int64(i)
				start := int64(id)
				tr.Record(id, SpanOp, OpGet, start, start+a+b, a, b)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := tr.sampled.Load(); got != writers*perWriter {
		t.Fatalf("sampled counter %d, want %d", got, writers*perWriter)
	}
	// Some spans may be dropped on slot collisions, but the survivors must
	// be intact and the ring full.
	if got := len(tr.Spans()); got < 200 {
		t.Fatalf("only %d spans survived stress, want near ring size 256", got)
	}
}

func TestTracerEndOpFeedsHistogramAndSlowTable(t *testing.T) {
	tr := NewTracer(1, 64)
	for i := 1; i <= 10; i++ {
		id := tr.NextID()
		tr.EndOp(id, OpInsert, 0, int64(i*1000), 1)
	}
	h := tr.OpHistogram(OpInsert).Snapshot()
	if h.Count != 10 {
		t.Fatalf("op histogram count %d, want 10", h.Count)
	}
	slow := tr.SlowOps()
	if len(slow) != 10 {
		t.Fatalf("slow table has %d entries, want 10", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i-1].DurNs < slow[i].DurNs {
			t.Fatal("slow ops not sorted slowest-first")
		}
	}
	if slow[0].DurNs != 10000 || slow[0].Op != "insert" {
		t.Fatalf("slowest op wrong: %+v", slow[0])
	}
}

func TestSlowTableEviction(t *testing.T) {
	tr := NewTracer(1, 64)
	// Fill past capacity with increasing durations: the table must keep the
	// slowK slowest.
	const n = slowK * 3
	for i := 1; i <= n; i++ {
		tr.EndOp(tr.NextID(), OpGet, 0, int64(i), 1)
	}
	slow := tr.SlowOps()
	if len(slow) != slowK {
		t.Fatalf("slow table has %d entries, want %d", len(slow), slowK)
	}
	for _, e := range slow {
		if e.DurNs <= n-slowK {
			t.Fatalf("slow table kept fast op dur=%d, min expected %d", e.DurNs, n-slowK+1)
		}
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(4, 64)
	id := tr.NextID()
	tr.Record(id, SpanAttempt, OpMove, 100, 200, -1, 0)
	tr.EndOp(id, OpMove, 100, 250, 1)
	tr.Record(id, SpanWALAppend, OpNone, 150, 260, 2, 64)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SampleEvery int `json:"sample_every"`
		Sampled     int `json:"sampled_ops"`
		Spans       []struct {
			TraceID uint64 `json:"trace_id"`
			Kind    string `json:"kind"`
			Op      string `json:"op"`
			DurNs   int64  `json:"dur_ns"`
		} `json:"spans"`
		SlowOps []SlowOp `json:"slow_ops"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("bad /trace JSON: %v\n%s", err, buf.String())
	}
	if doc.SampleEvery != 4 || doc.Sampled != 1 {
		t.Fatalf("header wrong: %+v", doc)
	}
	kinds := map[string]bool{}
	for _, sp := range doc.Spans {
		kinds[sp.Kind] = true
		if sp.Kind == "wal.append" && sp.Op != "-" {
			t.Fatalf("WAL span op rendered %q, want -", sp.Op)
		}
	}
	for _, want := range []string{"stm.attempt", "op", "wal.append"} {
		if !kinds[want] {
			t.Fatalf("missing span kind %q in %s", want, buf.String())
		}
	}
	if len(doc.SlowOps) != 1 || doc.SlowOps[0].Op != "move" {
		t.Fatalf("slow ops wrong: %+v", doc.SlowOps)
	}
}

func TestTracerRegisterObs(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(2, 64)
	tr.RegisterObs(r)
	tr.EndOp(tr.NextID(), OpDelete, 0, 5000, 1)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"trace_sampled_ops_total 1",
		"trace_spans_total",
		`op_latency_nanos_count{op="delete"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `op="insert"`) {
		t.Fatal("empty op histogram must not be exported")
	}
}

func TestTracerRecordAllocFree(t *testing.T) {
	tr := NewTracer(1, 64)
	id := tr.NextID()
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(id, SpanAttempt, OpGet, 1, 2, -1, 0)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per call, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		tr.EndOp(id, OpGet, 1, 2, 1)
	})
	if allocs != 0 {
		t.Fatalf("EndOp allocates %v per call, want 0", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		if nilTr.Sample(42) {
			nilTr.Record(1, SpanOp, OpGet, 0, 0, 0, 0)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer fast path allocates %v per call, want 0", allocs)
	}
}
