package obs

import "sync/atomic"

// Group is a seqlock-published set of related values with a single-writer
// publish side and any number of concurrent readers. The writer brackets a
// batch of Set calls with Begin/End; Read retries until it observes a
// quiet, unchanged version, so the values it returns all belong to one
// publish — no torn multi-field snapshots. All storage is atomic, so the
// pattern is race-detector-clean.
//
// The intended use is a layer that keeps authoritative plain counters on
// their owner's stack/struct (free to update) and publishes a consistent
// mirror once per coarse unit of work (e.g. per transaction attempt loop),
// which readers snapshot without stopping the owner.
type Group struct {
	seq  atomic.Uint64
	vals []atomic.Uint64
}

// NewGroup returns a group of n values, all zero.
func NewGroup(n int) *Group {
	return &Group{vals: make([]atomic.Uint64, n)}
}

// Len returns the number of values.
func (g *Group) Len() int { return len(g.vals) }

// Begin opens a publish window. Writer-side only; one writer at a time.
func (g *Group) Begin() { g.seq.Add(1) }

// Set stores value i inside a Begin/End window.
func (g *Group) Set(i int, v uint64) { g.vals[i].Store(v) }

// End closes the publish window.
func (g *Group) End() { g.seq.Add(1) }

// Read fills out (len(out) <= Len()) with a consistent view of the values.
func (g *Group) Read(out []uint64) {
	for {
		v1 := g.seq.Load()
		if v1&1 == 1 {
			continue
		}
		for i := range out {
			out[i] = g.vals[i].Load()
		}
		if g.seq.Load() == v1 {
			return
		}
	}
}
