package obs

import (
	"sort"
	"sync"
	"time"
)

// Sample is one exposed metric series at snapshot time. Label is the
// rendered Prometheus label pairs without braces (e.g. `shard="3"` or
// `shard="0",cause="validation"`); empty for an unlabeled series. Hist is
// set only for KindHistogram samples (Value then carries the sum).
type Sample struct {
	Name  string        `json:"name"`
	Label string        `json:"label,omitempty"`
	Kind  Kind          `json:"-"`
	Help  string        `json:"-"`
	Value float64       `json:"value"`
	Hist  *HistSnapshot `json:"hist,omitempty"`
}

// KindName exposes the kind for JSON consumers.
func (s Sample) KindName() string { return s.Kind.String() }

// Collector is a callback that emits samples at snapshot time. Layers
// whose statistics live outside the registry's owned primitives (per-thread
// STM mirrors, the durable log's mutex-guarded counters) register one and
// do their aggregation on the scrape path, keeping their hot paths free.
type Collector func(emit func(Sample))

type ownedMetric struct {
	name, help string
	kind       Kind
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// Registry holds the owned metric primitives and the registered
// collectors, and produces consistent snapshots of all of them. A nil
// *Registry is inert: the accessor methods on a nil registry return nil,
// so call sites can hold an optional registry without nil checks at every
// increment (callers still nil-check the returned primitive once and cache
// it).
type Registry struct {
	mu         sync.Mutex
	owned      []*ownedMetric
	byKey      map[string]*ownedMetric
	collectors []Collector
	flight     *FlightRecorder
	tracer     *Tracer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*ownedMetric)}
}

func (r *Registry) lookup(name string, kind Kind) *ownedMetric {
	if m, ok := r.byKey[name]; ok && m.kind == kind {
		return m
	}
	return nil
}

func (r *Registry) add(m *ownedMetric) {
	r.owned = append(r.owned, m)
	r.byKey[m.name] = m
}

// Counter returns the counter registered under name, creating it on first
// use. Repeated calls with the same name return the same counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, KindCounter); m != nil {
		return m.c
	}
	m := &ownedMetric{name: name, help: help, kind: KindCounter, c: new(Counter)}
	r.add(m)
	return m.c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, KindGauge); m != nil {
		return m.g
	}
	m := &ownedMetric{name: name, help: help, kind: KindGauge, g: new(Gauge)}
	r.add(m)
	return m.g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, KindHistogram); m != nil {
		return m.h
	}
	m := &ownedMetric{name: name, help: help, kind: KindHistogram, h: new(Histogram)}
	r.add(m)
	return m.h
}

// RegisterCollector adds a snapshot-time sample source.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// SetFlight attaches the flight recorder served by the HTTP endpoint.
func (r *Registry) SetFlight(f *FlightRecorder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flight = f
}

// Flight returns the attached flight recorder, or nil.
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flight
}

// SetTracer attaches the span tracer served by the HTTP endpoint's /trace.
func (r *Registry) SetTracer(t *Tracer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer = t
}

// Tracer returns the attached tracer, or nil.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// Snapshot reads every owned metric and invokes every collector, returning
// the samples sorted by (Name, Label). Owned counters and histograms are
// individually consistent (atomic loads); cross-metric consistency is
// best-effort, as for any live system.
type Snapshot struct {
	TakenAt time.Time `json:"taken_at"`
	Samples []Sample  `json:"samples"`
}

// Snapshot collects all samples. Safe to call concurrently with writers.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{TakenAt: time.Now()}
	}
	r.mu.Lock()
	owned := make([]*ownedMetric, len(r.owned))
	copy(owned, r.owned)
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	snap := Snapshot{TakenAt: time.Now()}
	for _, m := range owned {
		switch m.kind {
		case KindCounter:
			snap.Samples = append(snap.Samples, Sample{Name: m.name, Kind: KindCounter, Help: m.help, Value: float64(m.c.Load())})
		case KindGauge:
			snap.Samples = append(snap.Samples, Sample{Name: m.name, Kind: KindGauge, Help: m.help, Value: float64(m.g.Load())})
		case KindHistogram:
			h := m.h.Snapshot()
			snap.Samples = append(snap.Samples, Sample{Name: m.name, Kind: KindHistogram, Help: m.help, Value: float64(h.Sum), Hist: &h})
		}
	}
	for _, c := range collectors {
		c(func(s Sample) { snap.Samples = append(snap.Samples, s) })
	}
	sort.SliceStable(snap.Samples, func(i, j int) bool {
		a, b := snap.Samples[i], snap.Samples[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Label < b.Label
	})
	return snap
}

// Get returns the value of the sample with the given name and label.
func (s Snapshot) Get(name, label string) (float64, bool) {
	for _, sm := range s.Samples {
		if sm.Name == name && sm.Label == label {
			return sm.Value, true
		}
	}
	return 0, false
}

// Diff returns s - prev: counter and histogram samples are subtracted
// (series missing from prev pass through unchanged), gauges keep their
// current value. Use it to turn cumulative snapshots into per-interval
// rates.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	type key struct{ name, label string }
	old := make(map[key]Sample, len(prev.Samples))
	for _, sm := range prev.Samples {
		old[key{sm.Name, sm.Label}] = sm
	}
	out := Snapshot{TakenAt: s.TakenAt, Samples: make([]Sample, 0, len(s.Samples))}
	for _, sm := range s.Samples {
		p, ok := old[key{sm.Name, sm.Label}]
		if ok && sm.Kind != KindGauge {
			sm.Value -= p.Value
			if sm.Hist != nil && p.Hist != nil {
				d := sm.Hist.Sub(*p.Hist)
				sm.Hist = &d
			}
		}
		out.Samples = append(out.Samples, sm)
	}
	return out
}
