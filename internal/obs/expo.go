package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE header per family (samples
// sharing a Name), then the series. Histograms expose cumulative
// _bucket{le="..."} series at the log2 bucket bounds, _sum, and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, sm := range s.Samples {
		if sm.Name != lastFamily {
			lastFamily = sm.Name
			help := sm.Help
			if help == "" {
				help = sm.Name
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", sm.Name, help, sm.Name, sm.Kind); err != nil {
				return err
			}
		}
		if sm.Kind == KindHistogram && sm.Hist != nil {
			if err := writePromHist(w, sm); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", sm.Name, promLabels(sm.Label), formatFloat(sm.Value)); err != nil {
			return err
		}
	}
	return nil
}

func writePromHist(w io.Writer, sm Sample) error {
	h := sm.Hist
	// Emit buckets up to the highest non-empty one (plus +Inf), so an
	// all-zero histogram is one +Inf line, not 65.
	top := -1
	for i, c := range h.Buckets {
		if c != 0 {
			top = i
		}
	}
	cum := uint64(0)
	for i := 0; i <= top && i < 64; i++ {
		cum += h.Buckets[i]
		le := strconv.FormatUint(BucketUpper(i), 10)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", sm.Name, promLabels(joinLabels(sm.Label, `le="`+le+`"`)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", sm.Name, promLabels(joinLabels(sm.Label, `le="+Inf"`)), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
		sm.Name, promLabels(sm.Label), h.Sum, sm.Name, promLabels(sm.Label), h.Count); err != nil {
		return err
	}
	return nil
}

func promLabels(l string) string {
	if l == "" {
		return ""
	}
	return "{" + l + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonSample is the JSON shape: kind is spelled out, histogram quantile
// summaries are precomputed so consumers don't need the bucket scheme.
type jsonSample struct {
	Name  string  `json:"name"`
	Label string  `json:"label,omitempty"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
	Count uint64  `json:"count,omitempty"`
	P50   uint64  `json:"p50,omitempty"`
	P99   uint64  `json:"p99,omitempty"`
}

// WriteJSON writes the snapshot as a JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	return s.writeJSON(w, 0, 0, false)
}

// WriteJSONWindow writes the snapshot like WriteJSON plus the server-side
// sequence fields driving /snapshot?since=<seq> windowed diffing: seq is
// the sequence number a scraper can hand back as ?since on its next
// request, and when windowed the samples are the diff against snapshot
// `since`.
func (s Snapshot) WriteJSONWindow(w io.Writer, seq, since uint64, windowed bool) error {
	return s.writeJSON(w, seq, since, windowed)
}

func (s Snapshot) writeJSON(w io.Writer, seq, since uint64, windowed bool) error {
	out := struct {
		TakenAt  string       `json:"taken_at"`
		Seq      uint64       `json:"seq,omitempty"`
		Since    uint64       `json:"since,omitempty"`
		Windowed bool         `json:"windowed,omitempty"`
		Samples  []jsonSample `json:"samples"`
	}{TakenAt: s.TakenAt.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		Seq: seq, Since: since, Windowed: windowed}
	for _, sm := range s.Samples {
		js := jsonSample{Name: sm.Name, Label: sm.Label, Kind: sm.Kind.String(), Value: sm.Value}
		if sm.Hist != nil {
			js.Count = sm.Hist.Count
			js.P50 = sm.Hist.Quantile(0.50)
			js.P99 = sm.Hist.Quantile(0.99)
		}
		out.Samples = append(out.Samples, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
