// Package obs is the unified observability layer: a registry of
// cache-line-padded lock-free metric primitives that every layer of the
// store registers into, a bounded flight recorder for recent notable
// events, and an opt-in HTTP endpoint serving Prometheus-text /metrics, a
// JSON snapshot, the flight-recorder dump, and net/http/pprof.
//
// The design rule is that the hot path pays for nothing it does not use: a
// Counter increment or Histogram record is a single padded atomic add with
// no allocation, no lock, and no interface dispatch, and the layers that
// publish per-thread statistics (the STM) do so with owner-local plain
// counters mirrored by atomic stores, so a /metrics scrape never pauses
// application or maintenance threads. All aggregation cost lives on the
// scrape path.
package obs

import "sync/atomic"

// Kind classifies a metric sample for exposition.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing counter padded to a cache line so
// independently owned counters never false-share. Inc/Add compile down to
// a single LOCK XADD on the counter's own line.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value, padded like Counter.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
