package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of log2 buckets: bucket i counts values v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i); bucket 0 counts zeros. The
// upper bound of bucket i is 2^i - 1.
const histBuckets = 65

// Histogram is a lock-free log2-bucketed histogram. Record is three
// uncontended atomic adds (bucket, count, sum) and never allocates; the
// exponential buckets give ~2x relative error, which is what latency and
// size distributions need (p50 vs p99 separation, not exact quantiles).
// The count/sum pair lives on its own padded line so concurrent recorders
// into different buckets do not collide on them.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Uint64
	_     [48]byte
	b     [histBuckets]atomic.Uint64
}

// Record adds one observation of v.
func (h *Histogram) Record(v uint64) {
	h.b[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time copy of a histogram. Concurrent
// recording makes the copy only bucket-wise consistent, which is the
// standard contract for lock-free histograms.
type HistSnapshot struct {
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
	Buckets [histBuckets]uint64 `json:"buckets"`
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	// Buckets first, then count/sum: a racing Record bumps its bucket
	// before count, so the copied count can only undercount the copied
	// buckets, never claim observations the buckets don't show.
	for i := range h.b {
		s.Buckets[i] = h.b[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// BucketUpper returns the inclusive upper bound of bucket i (2^i - 1;
// MaxUint64 for the last bucket).
func BucketUpper(i int) uint64 {
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 <= q <= 1) of the snapshot, or 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) uint64 {
	total := uint64(0)
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := uint64(0)
	for i, c := range s.Buckets {
		cum += c
		if cum > rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(histBuckets - 1)
}

// Add returns the bucket-wise sum s + other (merging per-worker histograms
// into one distribution).
func (s HistSnapshot) Add(other HistSnapshot) HistSnapshot {
	m := HistSnapshot{Count: s.Count + other.Count, Sum: s.Sum + other.Sum}
	for i := range s.Buckets {
		m.Buckets[i] = s.Buckets[i] + other.Buckets[i]
	}
	return m
}

// Sub returns the histogram delta s - prev (bucket-wise saturating).
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Count: satSub(s.Count, prev.Count), Sum: satSub(s.Sum, prev.Sum)}
	for i := range s.Buckets {
		d.Buckets[i] = satSub(s.Buckets[i], prev.Buckets[i])
	}
	return d
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
