package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// TestHistogramBucketBoundaries pins the log2 bucket scheme: bucket i
// holds values v with bits.Len64(v) == i, upper bound 2^i - 1.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21},
		{1<<20 - 1, 20},
		{^uint64(0), 64},
	}
	for _, tc := range cases {
		var h Histogram
		h.Record(tc.v)
		s := h.Snapshot()
		for i, c := range s.Buckets {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if c != want {
				t.Errorf("Record(%d): bucket[%d] = %d, want %d", tc.v, i, c, want)
			}
		}
		if up := BucketUpper(tc.bucket); up < tc.v {
			t.Errorf("BucketUpper(%d) = %d < recorded value %d", tc.bucket, up, tc.v)
		}
		if tc.bucket > 0 {
			if lo := BucketUpper(tc.bucket - 1); lo >= tc.v {
				t.Errorf("value %d should be above bucket %d's bound %d", tc.v, tc.bucket-1, lo)
			}
		}
	}
}

func TestHistogramQuantileAndSub(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Record(100) // bucket 7, upper 127
	}
	for i := 0; i < 10; i++ {
		h.Record(100000) // bucket 17, upper 131071
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if q := s.Quantile(0.50); q != 127 {
		t.Errorf("p50 = %d, want 127", q)
	}
	if q := s.Quantile(0.99); q != 131071 {
		t.Errorf("p99 = %d, want 131071", q)
	}
	h.Record(100)
	d := h.Snapshot().Sub(s)
	if d.Count != 1 || d.Sum != 100 {
		t.Errorf("diff = count %d sum %d, want 1/100", d.Count, d.Sum)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "other help ignored")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	if r.Histogram("h", "h") != r.Histogram("h", "h") {
		t.Fatal("same name must return the same histogram")
	}
}

// TestRegistryStress runs writers on owned metrics and collectors against
// concurrent Snapshot calls; under -race this is the data-race gate for
// the whole scrape path.
func TestRegistryStress(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stress_total", "")
	g := r.Gauge("stress_gauge", "")
	h := r.Histogram("stress_hist", "")
	var collectorVal Counter
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "stress_collected_total", Kind: KindCounter, Value: float64(collectorVal.Load())})
	})

	const writers = 4
	const perWriter = 10000
	var wg, scanWG sync.WaitGroup
	stop := make(chan struct{})
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := r.Snapshot()
				if len(snap.Samples) < 4 {
					t.Errorf("snapshot has %d samples, want >= 4", len(snap.Samples))
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Record(uint64(i))
				collectorVal.Inc()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	for w := 0; w < writers; w++ {
		// Late registration racing Snapshot must also be clean.
		r.Counter(fmt.Sprintf("late_%d", w), "")
	}
	wg.Wait()
	close(stop)
	scanWG.Wait()

	snap := r.Snapshot()
	if v, ok := snap.Get("stress_total", ""); !ok || v != writers*perWriter {
		t.Errorf("stress_total = %v, want %d", v, writers*perWriter)
	}
	if v, ok := snap.Get("stress_collected_total", ""); !ok || v != writers*perWriter {
		t.Errorf("stress_collected_total = %v, want %d", v, writers*perWriter)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("d_total", "")
	g := r.Gauge("d_gauge", "")
	c.Add(10)
	g.Set(5)
	s0 := r.Snapshot()
	c.Add(7)
	g.Set(3)
	d := r.Snapshot().Diff(s0)
	if v, _ := d.Get("d_total", ""); v != 7 {
		t.Errorf("counter diff = %v, want 7", v)
	}
	if v, _ := d.Get("d_gauge", ""); v != 3 {
		t.Errorf("gauge must pass through current value, got %v", v)
	}
}

// TestAllocFree is the hot-path allocation gate: counter increments,
// histogram records and flight-recorder events must not allocate.
func TestAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "")
	h := r.Histogram("a_hist", "")
	g := r.Gauge("a_gauge", "")
	fr := NewFlightRecorder(64)
	if n := testing.AllocsPerRun(100, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Record(12345) }); n != 0 {
		t.Errorf("Histogram.Record allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { g.Set(1) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { fr.Record(EvBatch, 0, 1, 2) }); n != 0 {
		t.Errorf("FlightRecorder.Record allocates %v/op, want 0", n)
	}
}

func TestFlightWraparound(t *testing.T) {
	fr := NewFlightRecorder(16)
	const total = 40
	for i := 0; i < total; i++ {
		fr.Record(EvBatch, time.Duration(i), int64(i), 0)
	}
	evs := fr.Events()
	if len(evs) == 0 || len(evs) > 16 {
		t.Fatalf("got %d events, want 1..16 after wraparound", len(evs))
	}
	// Oldest-first, and only the newest window survives.
	for i := 1; i < len(evs); i++ {
		if evs[i].A <= evs[i-1].A {
			t.Fatalf("events out of order: A=%d then A=%d", evs[i-1].A, evs[i].A)
		}
	}
	if last := evs[len(evs)-1].A; last != total-1 {
		t.Errorf("newest surviving event A = %d, want %d", last, total-1)
	}
	if first := evs[0].A; first < total-16 {
		t.Errorf("oldest surviving event A = %d, want >= %d", first, total-16)
	}
}

func TestFlightConcurrent(t *testing.T) {
	fr := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				fr.Record(EvBatch, 0, int64(i), int64(w))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			if evs := fr.Events(); len(evs) == 0 {
				t.Fatal("no events survived")
			}
			return
		default:
			fr.Events() // must be race- and tear-free against writers
		}
	}
}

func TestFlightPanicDump(t *testing.T) {
	fr := NewFlightRecorder(16)
	var buf bytes.Buffer
	fr.SetDumpWriter(&buf)
	fr.Record(EvCheckpointFull, 3*time.Millisecond, 1024, 10)
	fr.Record(EvWALStall, time.Millisecond, 4096, 0)

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic was swallowed")
			}
			if r != "boom" {
				t.Fatalf("panic value = %v, want boom", r)
			}
		}()
		defer fr.DumpOnPanic()
		panic("boom")
	}()

	out := buf.String()
	if !strings.Contains(out, "flight recorder (2 events)") {
		t.Errorf("dump header missing: %q", out)
	}
	if !strings.Contains(out, "checkpoint.full") || !strings.Contains(out, "wal.stall") {
		t.Errorf("dump missing events: %q", out)
	}
}

func TestFlightNoPanicNoDump(t *testing.T) {
	fr := NewFlightRecorder(16)
	var buf bytes.Buffer
	fr.SetDumpWriter(&buf)
	func() { defer fr.DumpOnPanic() }()
	if buf.Len() != 0 {
		t.Errorf("dump written without a panic: %q", buf.String())
	}
}

func TestGroupConsistency(t *testing.T) {
	g := NewGroup(3)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			g.Begin()
			g.Set(0, i)
			g.Set(1, 2*i)
			g.Set(2, 3*i)
			g.End()
		}
	}()
	var v [3]uint64
	for i := 0; i < 10000; i++ {
		g.Read(v[:])
		if v[1] != 2*v[0] || v[2] != 3*v[0] {
			t.Fatalf("torn read: %v", v)
		}
	}
	close(stop)
	wg.Wait()
}

// TestWritePrometheusGolden pins the exposition format end to end:
// family headers, labeled series ordering, histogram bucket/sum/count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_ops_total", "Operations.").Add(3)
	r.Gauge("aa_depth", "Depth.").Set(2)
	h := r.Histogram("mm_nanos", "Latency.")
	h.Record(0)
	h.Record(5) // bucket 3, upper 7
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "bb_shard_total", Label: `shard="0"`, Kind: KindCounter, Help: "Per shard.", Value: 1})
		emit(Sample{Name: "bb_shard_total", Label: `shard="1"`, Kind: KindCounter, Help: "Per shard.", Value: 2})
	})

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_depth Depth.
# TYPE aa_depth gauge
aa_depth 2
# HELP bb_shard_total Per shard.
# TYPE bb_shard_total counter
bb_shard_total{shard="0"} 1
bb_shard_total{shard="1"} 2
# HELP mm_nanos Latency.
# TYPE mm_nanos histogram
mm_nanos_bucket{le="0"} 1
mm_nanos_bucket{le="1"} 1
mm_nanos_bucket{le="3"} 1
mm_nanos_bucket{le="7"} 2
mm_nanos_bucket{le="+Inf"} 2
mm_nanos_sum 5
mm_nanos_count 2
# HELP zz_ops_total Operations.
# TYPE zz_ops_total counter
zz_ops_total 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("srv_total", "Srv.").Add(9)
	fr := NewFlightRecorder(16)
	fr.Record(EvRecovery, time.Millisecond, 100, 200)
	r.SetFlight(fr)
	RegisterRuntime(r)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"srv_total 9", "# TYPE srv_total counter", "go_goroutines"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body = get("/snapshot"); code != 200 || !strings.Contains(body, `"srv_total"`) {
		t.Errorf("/snapshot status %d body %q", code, body)
	}
	if code, body = get("/flight"); code != 200 || !strings.Contains(body, "recovery") {
		t.Errorf("/flight status %d body %q", code, body)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
	if code, _ = get("/"); code != 200 {
		t.Errorf("index status %d", code)
	}
}

func TestServerNoFlight(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/flight without a recorder: status %d, want 404", resp.StatusCode)
	}
}

func TestNilSafety(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(EvBatch, 0, 1, 2) // must not panic
	if evs := fr.Events(); evs != nil {
		t.Errorf("nil recorder events = %v", evs)
	}
	var r *Registry
	if r.Flight() != nil {
		t.Error("nil registry flight != nil")
	}
	if snap := r.Snapshot(); len(snap.Samples) != 0 {
		t.Error("nil registry snapshot has samples")
	}
}
