package stm

// Stats aggregates the counters a thread accumulates while executing
// transactions. The paper's Table 1 reports the maximum number of
// transactional reads per operation *including* the reads performed by
// aborted attempts; MaxOpReads captures exactly that quantity when the
// operation is delimited by a single Atomic call.
type Stats struct {
	// Commits counts successfully committed transactions.
	Commits uint64
	// Aborts counts aborted transaction attempts (each retry that fails
	// validation, loses a lock race, or is explicitly restarted).
	Aborts uint64
	// Reads counts transactional reads, including those executed by
	// attempts that later aborted.
	Reads uint64
	// UReads counts unit reads (TinySTM unit loads); they are never
	// validated and never enter a read set.
	UReads uint64
	// Writes counts transactional writes, including aborted attempts.
	Writes uint64
	// MaxOpReads is the maximum over all operations of the number of
	// transactional reads the operation needed to complete, summed across
	// all of its aborted and committed attempts (Table 1's metric).
	MaxOpReads uint64
	// Extensions counts successful timestamp extensions (TinySTM-style
	// re-validation that advances the read snapshot instead of aborting).
	Extensions uint64
	// ElasticCuts counts reads dropped from elastic read sets.
	ElasticCuts uint64
	// Retries counts abort→retry transitions of the transaction-lifecycle
	// engine (every aborted attempt of an Atomic operation charges one) and
	// of external coordinators (Thread.CoordinatedAbort).
	Retries uint64
	// Prepares counts transaction attempts successfully driven to the
	// prepared state (Thread.Prepare) by a two-phase-commit coordinator;
	// whether each one then committed or rolled back shows up in Commits
	// and Aborts as usual (Prepared.Finalize / Prepared.Drop).
	Prepares uint64
	// BackoffNanos is the total time, in nanoseconds, the contention
	// manager stalled this thread between an abort and its retry.
	BackoffNanos uint64
	// SpinExhausted counts the times a read or an eager lock acquisition
	// burned through its full spin budget on a locked word and had to yield
	// the processor (Word.sampleUnlocked and the ETL acquisition loop). A
	// high value flags that the spin budget, not the abort rate, is where
	// wall-clock time goes.
	SpinExhausted uint64
	// Batches counts combiner batches committed through this thread: groups
	// of queued single-key operations applied in one transaction by a
	// batch runner (forest's per-shard op combiner). BatchedOps is the total
	// number of operations those batches carried, so BatchedOps/Batches is
	// the mean coalescing factor. Ops executed on the combiner's uncontended
	// direct fast path are not counted here — they pay one transaction each,
	// exactly like the unbatched path.
	Batches    uint64
	BatchedOps uint64
}

// Add accumulates o into s. Max-type counters take the maximum.
func (s *Stats) Add(o Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Reads += o.Reads
	s.UReads += o.UReads
	s.Writes += o.Writes
	s.Extensions += o.Extensions
	s.ElasticCuts += o.ElasticCuts
	s.Retries += o.Retries
	s.Prepares += o.Prepares
	s.BackoffNanos += o.BackoffNanos
	s.SpinExhausted += o.SpinExhausted
	s.Batches += o.Batches
	s.BatchedOps += o.BatchedOps
	if o.MaxOpReads > s.MaxOpReads {
		s.MaxOpReads = o.MaxOpReads
	}
}

// AbortRate returns aborts / (commits+aborts), or 0 when no transaction ran.
func (s *Stats) AbortRate() float64 {
	tot := s.Commits + s.Aborts
	if tot == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(tot)
}
