package stm

// AbortCause classifies why a transaction attempt aborted — the taxonomy
// that replaces staring at the single Aborts blob when attributing where
// retries come from. Every abort site in the package charges exactly one
// cause, so the per-cause counters always sum to Stats.Aborts.
type AbortCause uint8

const (
	// AbortValidation: a read-set (or elastic-window) validation failure —
	// some word this attempt read was overwritten after the snapshot and a
	// timestamp extension could not save it. The classic optimistic-read
	// conflict.
	AbortValidation AbortCause = iota
	// AbortLockWait: the attempt ran into a write lock held by a concurrent
	// transaction — a commit-time (or prepare-time) lock CAS lost the race,
	// or an ETL write found the word foreign-locked.
	AbortLockWait
	// AbortSpinExhausted: a read burned through its full spin budget twice
	// on a locked word and gave up rather than risk livelock.
	AbortSpinExhausted
	// AbortExplicit: user code called Tx.Restart — the contention-manager
	// kill path and "impossible observation" restarts of zombie attempts.
	AbortExplicit
	// AbortCoordinated: a prepared sub-transaction was dropped by its
	// cross-shard coordinator (Prepared.Drop) because some other shard of
	// the compound transaction failed.
	AbortCoordinated
	// NumAbortCauses sizes per-cause counter arrays.
	NumAbortCauses = iota
)

// String returns the snake_case cause name used in metric labels and CSV
// columns.
func (c AbortCause) String() string {
	switch c {
	case AbortValidation:
		return "validation"
	case AbortLockWait:
		return "lock_wait"
	case AbortSpinExhausted:
		return "spin_exhausted"
	case AbortExplicit:
		return "explicit"
	case AbortCoordinated:
		return "coordinated"
	}
	return "unknown"
}

// Stats aggregates the counters a thread accumulates while executing
// transactions. The paper's Table 1 reports the maximum number of
// transactional reads per operation *including* the reads performed by
// aborted attempts; MaxOpReads captures exactly that quantity when the
// operation is delimited by a single Atomic call.
type Stats struct {
	// Commits counts successfully committed transactions.
	Commits uint64
	// Aborts counts aborted transaction attempts (each retry that fails
	// validation, loses a lock race, or is explicitly restarted).
	Aborts uint64
	// AbortCauses breaks Aborts down by cause; the entries always sum to
	// Aborts (see AbortCause).
	AbortCauses [NumAbortCauses]uint64
	// StructuralCommits/StructuralAborts are the subset of Commits/Aborts
	// charged by threads marked structural (Thread.MarkStructural): the
	// maintenance transactions the paper decouples from semantic
	// operations. Commits-StructuralCommits is the semantic commit count.
	StructuralCommits uint64
	StructuralAborts  uint64
	// Reads counts transactional reads, including those executed by
	// attempts that later aborted.
	Reads uint64
	// UReads counts unit reads (TinySTM unit loads); they are never
	// validated and never enter a read set.
	UReads uint64
	// Writes counts transactional writes, including aborted attempts.
	Writes uint64
	// MaxOpReads is the maximum over all operations of the number of
	// transactional reads the operation needed to complete, summed across
	// all of its aborted and committed attempts (Table 1's metric).
	MaxOpReads uint64
	// Extensions counts successful timestamp extensions (TinySTM-style
	// re-validation that advances the read snapshot instead of aborting).
	Extensions uint64
	// ElasticCuts counts reads dropped from elastic read sets.
	ElasticCuts uint64
	// Retries counts abort→retry transitions of the transaction-lifecycle
	// engine (every aborted attempt of an Atomic operation charges one) and
	// of external coordinators (Thread.CoordinatedAbort).
	Retries uint64
	// Prepares counts transaction attempts successfully driven to the
	// prepared state (Thread.Prepare) by a two-phase-commit coordinator;
	// whether each one then committed or rolled back shows up in Commits
	// and Aborts as usual (Prepared.Finalize / Prepared.Drop).
	Prepares uint64
	// BackoffNanos is the total time, in nanoseconds, the contention
	// manager stalled this thread between an abort and its retry.
	BackoffNanos uint64
	// SpinExhausted counts the times a read or an eager lock acquisition
	// burned through its full spin budget on a locked word and had to yield
	// the processor (Word.sampleUnlocked and the ETL acquisition loop). A
	// high value flags that the spin budget, not the abort rate, is where
	// wall-clock time goes.
	SpinExhausted uint64
	// Batches counts combiner batches committed through this thread: groups
	// of queued single-key operations applied in one transaction by a
	// batch runner (forest's per-shard op combiner). BatchedOps is the total
	// number of operations those batches carried, so BatchedOps/Batches is
	// the mean coalescing factor. Ops executed on the combiner's uncontended
	// direct fast path are not counted here — they pay one transaction each,
	// exactly like the unbatched path.
	Batches    uint64
	BatchedOps uint64
}

// Add accumulates o into s. Max-type counters take the maximum.
func (s *Stats) Add(o Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	for i := range s.AbortCauses {
		s.AbortCauses[i] += o.AbortCauses[i]
	}
	s.StructuralCommits += o.StructuralCommits
	s.StructuralAborts += o.StructuralAborts
	s.Reads += o.Reads
	s.UReads += o.UReads
	s.Writes += o.Writes
	s.Extensions += o.Extensions
	s.ElasticCuts += o.ElasticCuts
	s.Retries += o.Retries
	s.Prepares += o.Prepares
	s.BackoffNanos += o.BackoffNanos
	s.SpinExhausted += o.SpinExhausted
	s.Batches += o.Batches
	s.BatchedOps += o.BatchedOps
	if o.MaxOpReads > s.MaxOpReads {
		s.MaxOpReads = o.MaxOpReads
	}
}

// AbortCauseSum returns the sum of the per-cause abort counters; it equals
// Aborts by construction (the oracle suites assert this invariant).
func (s *Stats) AbortCauseSum() uint64 {
	var sum uint64
	for _, c := range s.AbortCauses {
		sum += c
	}
	return sum
}

// AbortRate returns aborts / (commits+aborts), or 0 when no transaction ran.
func (s *Stats) AbortRate() float64 {
	tot := s.Commits + s.Aborts
	if tot == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(tot)
}
