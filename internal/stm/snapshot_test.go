package stm

import "testing"

// TestSnapshotRepeatableUntilConflict: a session's reads stay consistent at
// one snapshot; a concurrent commit that invalidates an extension makes the
// conflicting Read report false once, and the reset session then observes
// the new state.
func TestSnapshotRepeatableUntilConflict(t *testing.T) {
	s := New()
	writer := s.NewThread()
	reader := s.NewThread()
	var a, b Word
	writer.Atomic(func(tx *Tx) {
		tx.Write(&a, 1)
		tx.Write(&b, 10)
	})

	snap := reader.NewSnapshot()
	defer snap.Close()
	var got uint64
	if !snap.Read(func(tx *Tx) { got = tx.Read(&a) }) || got != 1 {
		t.Fatalf("first read (%d, session ok?)", got)
	}
	pos := snap.Pos()

	// A concurrent commit moves both words past the session's snapshot.
	writer.Atomic(func(tx *Tx) {
		tx.Write(&a, 2)
		tx.Write(&b, 20)
	})

	// Reading b forces a timestamp extension over the commit; the logged
	// read of a no longer validates, so the session resets and reports
	// false exactly once.
	ok := snap.Read(func(tx *Tx) { got = tx.Read(&b) })
	if ok {
		t.Fatal("session survived an extension over a conflicting commit")
	}
	if !snap.Read(func(tx *Tx) { got = tx.Read(&b) }) || got != 20 {
		t.Fatalf("reset session read b = %d, want 20", got)
	}
	if snap.Pos() <= pos {
		t.Fatalf("reset session kept the old snapshot position %d", snap.Pos())
	}
	if !snap.Read(func(tx *Tx) { got = tx.Read(&a) }) || got != 2 {
		t.Fatalf("reset session read a = %d, want 2", got)
	}
}

// TestSnapshotInterleavesWithAtomic: the session descriptor is distinct
// from the thread's ordinary one, so Atomic commits may run between (not
// within) session reads on the same thread — the ftx commit pattern.
func TestSnapshotInterleavesWithAtomic(t *testing.T) {
	s := New()
	th := s.NewThread()
	var w Word
	snap := th.NewSnapshot()
	defer snap.Close()
	var got uint64
	if !snap.Read(func(tx *Tx) { got = tx.Read(&w) }) {
		t.Fatal("fresh session read failed")
	}
	th.Atomic(func(tx *Tx) { tx.Write(&w, 7) })
	// The session is now stale; it must reset (not wedge, not misread).
	for !snap.Read(func(tx *Tx) { got = tx.Read(&w) }) {
	}
	if got != 7 {
		t.Fatalf("read %d after own commit, want 7", got)
	}
}

// TestSnapshotWritePanics: sessions are read-only by construction.
func TestSnapshotWritePanics(t *testing.T) {
	s := New()
	th := s.NewThread()
	var w Word
	snap := th.NewSnapshot()
	defer snap.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Write inside a Snapshot session did not panic")
		}
	}()
	snap.Read(func(tx *Tx) { tx.Write(&w, 1) })
}

// TestSnapshotSingletonPerThread: a second open session on one thread is a
// caller bug; Close releases the slot.
func TestSnapshotSingletonPerThread(t *testing.T) {
	s := New()
	th := s.NewThread()
	snap := th.NewSnapshot()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second NewSnapshot on an open session did not panic")
			}
		}()
		th.NewSnapshot()
	}()
	snap.Close()
	th.NewSnapshot().Close() // slot released: reopening is fine
}
