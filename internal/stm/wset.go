package stm

import "unsafe"

// Write-set membership. findWrite is on the critical path of every Read,
// URead and Write (read-after-write visibility) and runs once per read
// entry during validation, so a plain linear scan makes validation
// O(reads × writes). Lookup is layered so each regime pays only for what
// it needs:
//
//  1. a 64-bit hash-OR filter over the write set's word addresses
//     (tx.wfilter) answers "definitely not written" with two ALU ops and
//     no memory traffic beyond the descriptor's hot line — the common
//     case for every read on the read-mostly workloads of the paper;
//  2. filter hits on write sets of at most wsScanMax entries resolve with
//     a backward linear scan — tree operations write a handful of words,
//     and an 8-entry scan beats any table;
//  3. above wsScanMax an open-addressed table keyed by word address takes
//     over (engaged lazily, reused across attempts), making lookup O(1)
//     for the bulk write sets of cross-shard moves and group commits.
//
// ETL transactions additionally own the lock of every word they wrote
// (Word.meta carries the owner slot), which validation already exploits:
// validEntry only consults findWrite after observing a self-owned lock.

// wsScanMax is the write-set size at or below which a filter hit is
// resolved by scanning; beyond it the index is engaged.
const wsScanMax = 8

// widxEnt is one slot of the open-addressed index: the word and the
// position of its entry in tx.writes. Padded to 16 bytes so slots never
// straddle cache lines.
type widxEnt struct {
	w   *Word
	idx int32
	_   int32
}

// wordHash mixes a word's address (stable for the life of the transaction;
// arena chunks are never freed while referenced) into a full-width hash.
// SplitMix64-style finalizer: cheap, and addresses differing only in low
// bits (words of one node, nodes of one chunk) spread over the whole range.
func wordHash(w *Word) uint64 {
	h := uint64(uintptr(unsafe.Pointer(w)))
	h ^= h >> 33
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h
}

// wordBit is w's bit in the 64-bit membership filter.
func wordBit(w *Word) uint64 { return 1 << (wordHash(w) >> 58) }

// findWrite returns the write entry for w, or nil. The filter keeps the
// miss path — every read of a word this transaction has not written —
// free of memory traffic; hits fall through to the scan or the index.
func (tx *Tx) findWrite(w *Word) *writeEntry {
	if tx.wfilter&wordBit(w) == 0 {
		return nil
	}
	return tx.findWriteSlow(w)
}

// findWriteSlow resolves a filter hit (which may be a false positive).
func (tx *Tx) findWriteSlow(w *Word) *writeEntry {
	if tx.widxN > 0 {
		if i := tx.widxLookup(w); i >= 0 {
			return &tx.writes[i]
		}
		return nil
	}
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].w == w {
			return &tx.writes[i]
		}
	}
	return nil
}

// noteWrite records membership of the just-appended last write entry.
// Callers append first, then note; entry positions are stable because the
// write set is append-only within an attempt (overwrites of an existing
// entry never reach here — findWrite catches them).
func (tx *Tx) noteWrite(w *Word) {
	tx.wfilter |= wordBit(w)
	n := len(tx.writes)
	if n <= wsScanMax {
		return
	}
	if tx.widxN == 0 {
		tx.widxRebuild()
	} else {
		tx.widxAdd(w, int32(n-1))
	}
}

// widxRebuild sizes the table to 4× the current write set (power of two,
// ≥32 slots, ≤25% load) and reindexes every entry. Runs when the write set
// first exceeds wsScanMax in an attempt — clearing any stale slots from a
// previous attempt — and again on growth.
func (tx *Tx) widxRebuild() {
	want := 4 * len(tx.writes)
	size := 32
	for size < want {
		size <<= 1
	}
	if cap(tx.widx) >= size {
		tx.widx = tx.widx[:size]
		clear(tx.widx)
	} else {
		tx.widx = make([]widxEnt, size)
	}
	tx.widxN = 0
	for i := range tx.writes {
		tx.widxInsert(tx.writes[i].w, int32(i))
	}
}

// widxAdd inserts one mapping, growing at 75% load.
func (tx *Tx) widxAdd(w *Word, idx int32) {
	if 4*(tx.widxN+1) > 3*len(tx.widx) {
		tx.widxRebuild()
	}
	tx.widxInsert(w, idx)
}

func (tx *Tx) widxInsert(w *Word, idx int32) {
	mask := uint64(len(tx.widx) - 1)
	for h := wordHash(w); ; h++ {
		s := &tx.widx[h&mask]
		if s.w == nil {
			s.w, s.idx = w, idx
			tx.widxN++
			return
		}
	}
}

// widxLookup returns the write-set position of w, or -1. Linear probing;
// termination is guaranteed by the ≤75% load bound (an empty slot always
// exists).
func (tx *Tx) widxLookup(w *Word) int32 {
	mask := uint64(len(tx.widx) - 1)
	for h := wordHash(w); ; h++ {
		s := &tx.widx[h&mask]
		if s.w == w {
			return s.idx
		}
		if s.w == nil {
			return -1
		}
	}
}
