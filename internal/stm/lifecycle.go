package stm

// The transaction-lifecycle engine: drives one operation (one
// Atomic/AtomicMode call) from its first attempt to its commit, consulting
// the domain's ContentionManager between attempts. It was extracted from the
// original Thread.AtomicMode retry loop so that the abort→retry path is a
// pluggable policy rather than a hard-coded backoff. The cycle is
// begin → run → (commit | abort → contention-manager stall → begin).
//
// lifecycle lives on the thread's stack for the duration of one AtomicMode
// call.
type lifecycle struct {
	th      *Thread
	mode    Mode
	fn      func(*Tx)
	retries int // aborted attempts so far
}

// run drives the operation to commit. On every abort it charges one retry to
// the thread's statistics and hands control to the contention manager, whose
// stall is the only wait in the loop.
func (lc *lifecycle) run() {
	th := lc.th
	tx := &th.tx
	cm := th.stm.cm
	for {
		tx.begin(lc.mode)
		if th.runAttempt(tx, lc.fn) {
			cm.OnCommit(th, lc.retries)
			return
		}
		lc.retries++
		th.noteRetry()
		cm.OnAbort(th, lc.retries)
	}
}
