package stm

import (
	"time"

	"repro/internal/obs"
)

// The transaction-lifecycle engine: drives one operation (one
// Atomic/AtomicMode call) from its first attempt to its commit, consulting
// the domain's ContentionManager between attempts. It was extracted from the
// original Thread.AtomicMode retry loop so that the abort→retry path is a
// pluggable policy rather than a hard-coded backoff. The cycle is
// begin → run → (commit | abort → contention-manager stall → begin).
//
// lifecycle lives on the thread's stack for the duration of one AtomicMode
// call.
type lifecycle struct {
	th      *Thread
	mode    Mode
	fn      func(*Tx)
	retries int // aborted attempts so far
}

// run drives the operation to commit. On every abort it charges one retry to
// the thread's statistics and hands control to the contention manager, whose
// stall is the only wait in the loop.
func (lc *lifecycle) run() {
	th := lc.th
	if th.traceID != 0 {
		lc.runTraced()
		return
	}
	tx := &th.tx
	cm := th.stm.cm
	for {
		tx.begin(lc.mode)
		if th.runAttempt(tx, lc.fn) {
			cm.OnCommit(th, lc.retries)
			return
		}
		lc.retries++
		th.noteRetry()
		cm.OnAbort(th, lc.retries)
	}
}

// runTraced is the sampled-op variant of run: identical control flow plus
// one SpanAttempt per attempt (A = -1 for the committing attempt, otherwise
// the abort cause; B = the attempt index). It is a separate loop so the
// untraced path — the overwhelmingly common one — pays exactly one branch.
// time.Now and Tracer.Record never allocate, keeping AllocsPerRun=0 on the
// sampled path too.
func (lc *lifecycle) runTraced() {
	th := lc.th
	tx := &th.tx
	cm := th.stm.cm
	tr, id, op := th.tr, th.traceID, th.traceOp
	for {
		start := time.Now().UnixNano()
		tx.begin(lc.mode)
		if th.runAttempt(tx, lc.fn) {
			tr.Record(id, obs.SpanAttempt, op, start, time.Now().UnixNano(), -1, int64(lc.retries))
			cm.OnCommit(th, lc.retries)
			return
		}
		tr.Record(id, obs.SpanAttempt, op, start, time.Now().UnixNano(), int64(th.lastCause), int64(lc.retries))
		lc.retries++
		th.noteRetry()
		cm.OnAbort(th, lc.retries)
	}
}
