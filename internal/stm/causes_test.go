package stm

import (
	"math/rand"
	"sync"
	"testing"
)

// TestAbortCausesSumToAborts hammers a small hot word array from several
// threads in every mode and asserts the taxonomy invariant: every abort
// site charges exactly one cause, so the per-cause counters sum to Aborts
// on every thread and in every aggregate.
func TestAbortCausesSumToAborts(t *testing.T) {
	for _, mode := range []Mode{CTL, ETL, Elastic} {
		t.Run(mode.String(), func(t *testing.T) {
			s := New(WithMode(mode))
			const nWords = 4
			const goroutines = 4
			const txPerG = 2000
			words := make([]Word, nWords)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := s.NewThread()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < txPerG; i++ {
						a, b := rng.Intn(nWords), rng.Intn(nWords)
						restarted := false
						th.Atomic(func(tx *Tx) {
							v := tx.Read(&words[a])
							if i%97 == 0 && !restarted {
								// Exercise the explicit-restart cause too.
								restarted = true
								tx.Restart()
							}
							tx.Write(&words[b], v+1)
						})
					}
				}(int64(g) * 7919)
			}
			wg.Wait()

			total := s.TotalStats()
			if total.Aborts == 0 {
				t.Log("no aborts this run; invariant holds trivially")
			}
			if got := total.AbortCauseSum(); got != total.Aborts {
				t.Fatalf("aggregate cause sum %d != aborts %d (causes %v)",
					got, total.Aborts, total.AbortCauses)
			}
			for i, th := range s.Threads() {
				st := th.Stats()
				if got := st.AbortCauseSum(); got != st.Aborts {
					t.Fatalf("thread %d: cause sum %d != aborts %d (causes %v)",
						i, got, st.Aborts, st.AbortCauses)
				}
			}
			// The explicit restarts must have been classified.
			if total.AbortCauses[AbortExplicit] == 0 {
				t.Error("no explicit aborts recorded despite Restart calls")
			}
		})
	}
}

// TestLiveStatsMatchesStats checks the scrape path: after the owners
// quiesce, the seqlock-published live mirrors agree with the plain
// per-thread counters, including the cause breakdown.
func TestLiveStatsMatchesStats(t *testing.T) {
	s := New(WithMode(CTL))
	var w Word
	const goroutines = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < 3000; i++ {
				th.Atomic(func(tx *Tx) {
					tx.Write(&w, tx.Read(&w)+1)
				})
			}
		}()
	}
	wg.Wait()

	total := s.TotalStats()
	live := s.LiveStats()
	if live.Commits != total.Commits {
		t.Errorf("live commits %d != stats commits %d", live.Commits, total.Commits)
	}
	if live.Aborts != total.Aborts {
		t.Errorf("live aborts %d != stats aborts %d", live.Aborts, total.Aborts)
	}
	if live.Retries != total.Retries {
		t.Errorf("live retries %d != stats retries %d", live.Retries, total.Retries)
	}
	if live.AbortCauses != total.AbortCauses {
		t.Errorf("live causes %v != stats causes %v", live.AbortCauses, total.AbortCauses)
	}
	var sum uint64
	for _, c := range live.AbortCauses {
		sum += c
	}
	if sum != live.Aborts {
		t.Errorf("live cause sum %d != live aborts %d", sum, live.Aborts)
	}
}

// TestStructuralSplit verifies that a thread marked structural charges the
// structural counters and an unmarked one does not.
func TestStructuralSplit(t *testing.T) {
	s := New(WithMode(CTL))
	var w Word
	maint := s.NewThread()
	maint.MarkStructural()
	app := s.NewThread()

	maint.Atomic(func(tx *Tx) { tx.Write(&w, 1) })
	app.Atomic(func(tx *Tx) { tx.Write(&w, 2) })

	ms, as := maint.Stats(), app.Stats()
	if ms.StructuralCommits != 1 || ms.Commits != 1 {
		t.Errorf("structural thread: commits %d structural %d, want 1/1", ms.Commits, ms.StructuralCommits)
	}
	if as.StructuralCommits != 0 || as.Commits != 1 {
		t.Errorf("app thread: commits %d structural %d, want 1/0", as.Commits, as.StructuralCommits)
	}
	total := s.TotalStats()
	if total.StructuralCommits != 1 {
		t.Errorf("aggregate structural commits %d, want 1", total.StructuralCommits)
	}
	live := s.LiveStats()
	if live.StructuralCommits != 1 {
		t.Errorf("live structural commits %d, want 1", live.StructuralCommits)
	}
}
