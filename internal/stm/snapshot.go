package stm

// A Snapshot is a long-lived read-only transaction session: a sequence of
// Read calls served from one consistent read snapshot of the domain, open
// across ordinary operation boundaries. It exists for batched execution-
// phase reads — the cross-shard transaction coordinator (internal/ftx) used
// to pay one committed read-only transaction per distinct key it read, and
// a Snapshot replaces that with one snapshot per participating shard:
// every cache-miss read of the shard joins the same open transaction, whose
// invisible reads validate (with timestamp extension) against one rv.
//
// A Snapshot never writes (the descriptor is marked read-only and Write
// panics), so it holds no locks and needs no commit: each successful Read
// call's observations are consistent at the session's current snapshot
// position, exactly as a read-only CTL transaction's are. When validation
// fails mid-read the session aborts and silently resets — the next Read
// begins a fresh snapshot — and the failed call reports false so the caller
// re-executes its read closure. Consistency is therefore per-session-era,
// not global: callers that need their full read set revalidated at one
// point (the ftx coordinator does) must replay the reads inside a
// committing transaction, which is unchanged from the per-key regime.
//
// The session uses its own transaction descriptor, distinct from the
// thread's ordinary one, so the owning thread can run Atomic/Prepare
// between (not within) Read calls — the ftx commit protocol does exactly
// that. At most one Snapshot may be open per thread; Close releases the
// slot. Like everything on a Thread, a Snapshot is single-goroutine.
//
// Garbage-collection note: each Read call raises the thread's §3.4 pending
// flag and counts one completed operation on the way out, so the arena
// collector never frees nodes under a traversal in progress. Between Read
// calls the thread is observably idle and reclamation may proceed; a node
// recycled under the open session changes the versioned metadata of any
// logged read that touched it, so the session aborts and resets rather
// than observing freed state.
type Snapshot struct {
	th     *Thread
	begun  bool
	closed bool
}

// NewSnapshot opens a read-only snapshot session on the thread. The
// underlying transaction begins lazily at the first Read. It panics when a
// session is already open on the thread (sessions are a per-thread
// singleton) — Close the previous one first.
func (th *Thread) NewSnapshot() *Snapshot {
	if th.snapLive {
		panic("stm: a Snapshot session is already open on this thread")
	}
	if th.snapTx == nil {
		t := &Tx{readOnly: true}
		t.init(th)
		th.snapTx = t
	}
	th.snapLive = true
	return &Snapshot{th: th}
}

// Read runs fn against the session's snapshot. fn receives the session's
// read-only transaction and must only perform reads (Tx.Read/URead and the
// tree read operations built on them); Write panics. Read returns true when
// fn ran to completion — its observations are consistent with everything
// the session has returned since it last began — and false when the
// snapshot could not be extended over a concurrent commit: the session has
// reset, and the caller should simply call Read again (the retried call
// starts a fresh snapshot and, with the session's read set empty again,
// can only fail on transient lock encounters).
func (s *Snapshot) Read(fn func(*Tx)) (ok bool) {
	if s.closed {
		panic("stm: Read on a closed Snapshot session")
	}
	th := s.th
	tx := th.snapTx
	if !s.begun {
		tx.begin(CTL)
		s.begun = true
	}
	th.pending.Store(true)
	defer func() {
		th.completeOp()
		th.pending.Store(false)
		if r := recover(); r != nil {
			if r == abortSignal {
				// Validation failed: the session's snapshot is dead. Reset so
				// the next Read begins fresh.
				s.begun = false
				ok = false
				return
			}
			panic(r)
		}
	}()
	fn(tx)
	return true
}

// Pos reports the session's current snapshot position (0 before the first
// Read). Reads returned since the session last began are consistent at it.
func (s *Snapshot) Pos() uint64 {
	if !s.begun {
		return 0
	}
	return s.th.snapTx.rv
}

// Close ends the session and releases the thread's snapshot slot. A
// read-only transaction holds nothing, so Close performs no rollback;
// closing an already-closed session is a no-op.
func (s *Snapshot) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.th.snapLive = false
}
