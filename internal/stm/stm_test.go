package stm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestModeString(t *testing.T) {
	cases := map[Mode]string{CTL: "CTL", ETL: "ETL", Elastic: "Elastic", Mode(9): "Mode(9)"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestReadWriteSingleThread(t *testing.T) {
	for _, mode := range []Mode{CTL, ETL, Elastic} {
		t.Run(mode.String(), func(t *testing.T) {
			s := New(WithMode(mode))
			th := s.NewThread()
			var w Word
			th.Atomic(func(tx *Tx) {
				if v := tx.Read(&w); v != 0 {
					t.Fatalf("zero Word read %d, want 0", v)
				}
				tx.Write(&w, 42)
				if v := tx.Read(&w); v != 42 {
					t.Fatalf("read-own-write got %d, want 42", v)
				}
			})
			th.Atomic(func(tx *Tx) {
				if v := tx.Read(&w); v != 42 {
					t.Fatalf("committed value %d, want 42", v)
				}
			})
		})
	}
}

func TestWriteOverwriteSameWord(t *testing.T) {
	for _, mode := range []Mode{CTL, ETL, Elastic} {
		s := New(WithMode(mode))
		th := s.NewThread()
		var w Word
		th.Atomic(func(tx *Tx) {
			tx.Write(&w, 1)
			tx.Write(&w, 2)
			tx.Write(&w, 3)
		})
		th.Atomic(func(tx *Tx) {
			if v := tx.Read(&w); v != 3 {
				t.Fatalf("[%v] got %d, want 3", mode, v)
			}
		})
	}
}

func TestPlainAndSetPlain(t *testing.T) {
	var w Word
	w.SetPlain(7)
	if w.Plain() != 7 {
		t.Fatalf("Plain=%d, want 7", w.Plain())
	}
	s := New()
	th := s.NewThread()
	th.Atomic(func(tx *Tx) {
		if v := tx.Read(&w); v != 7 {
			t.Fatalf("transactional read of SetPlain value = %d, want 7", v)
		}
		tx.Write(&w, 8)
	})
	if w.Plain() != 8 {
		t.Fatalf("Plain after commit = %d, want 8", w.Plain())
	}
}

func TestURead(t *testing.T) {
	s := New()
	th := s.NewThread()
	var w Word
	th.Atomic(func(tx *Tx) { tx.Write(&w, 5) })
	th.Atomic(func(tx *Tx) {
		if v := tx.URead(&w); v != 5 {
			t.Fatalf("URead=%d, want 5", v)
		}
		tx.Write(&w, 6)
		if v := tx.URead(&w); v != 6 {
			t.Fatalf("URead after own write=%d, want 6", v)
		}
	})
	st := th.Stats()
	if st.UReads != 2 {
		t.Fatalf("UReads=%d, want 2", st.UReads)
	}
}

func TestRestartRetries(t *testing.T) {
	s := New()
	th := s.NewThread()
	var w Word
	attempts := 0
	th.Atomic(func(tx *Tx) {
		attempts++
		tx.Write(&w, uint64(attempts))
		if attempts < 3 {
			tx.Restart()
		}
	})
	if attempts != 3 {
		t.Fatalf("attempts=%d, want 3", attempts)
	}
	th.Atomic(func(tx *Tx) {
		if v := tx.Read(&w); v != 3 {
			t.Fatalf("value=%d, want 3 (aborted writes must not be visible)", v)
		}
	})
	if ab := th.Stats().Aborts; ab != 2 {
		t.Fatalf("aborts=%d, want 2", ab)
	}
}

func TestAbortedWritesInvisible(t *testing.T) {
	for _, mode := range []Mode{CTL, ETL, Elastic} {
		s := New(WithMode(mode))
		th := s.NewThread()
		var w Word
		w.SetPlain(100)
		done := false
		th.Atomic(func(tx *Tx) {
			tx.Write(&w, 999)
			if !done {
				done = true
				tx.Restart()
			}
		})
		if v := w.Plain(); v != 999 {
			t.Fatalf("[%v] final=%d, want 999", mode, v)
		}
		// The abort must have restored the version so a reader sees a
		// consistent unlocked word in between.
		if got := metaVersion(w.meta.Load()); got == 0 && s.Now() == 0 {
			t.Fatalf("[%v] clock never advanced", mode)
		}
	}
}

func TestNestedAtomicPanics(t *testing.T) {
	s := New()
	th := s.NewThread()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Atomic did not panic")
		}
	}()
	th.Atomic(func(tx *Tx) {
		th.Atomic(func(tx2 *Tx) {})
	})
}

func TestForeignPanicPropagatesAndUnlocks(t *testing.T) {
	s := New(WithMode(ETL))
	th := s.NewThread()
	var w Word
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		th.Atomic(func(tx *Tx) {
			tx.Write(&w, 1) // acquires the lock eagerly
			panic("boom")
		})
	}()
	if isLocked(w.meta.Load()) {
		t.Fatal("word left locked after foreign panic")
	}
	// And the word is still usable.
	th2 := s.NewThread()
	th2.Atomic(func(tx *Tx) { tx.Write(&w, 2) })
	if w.Plain() != 2 {
		t.Fatalf("got %d, want 2", w.Plain())
	}
}

func TestIsolationTwoThreadsSequential(t *testing.T) {
	s := New()
	a, b := s.NewThread(), s.NewThread()
	var w Word
	a.Atomic(func(tx *Tx) { tx.Write(&w, 1) })
	b.Atomic(func(tx *Tx) {
		if v := tx.Read(&w); v != 1 {
			t.Fatalf("b sees %d, want 1", v)
		}
		tx.Write(&w, 2)
	})
	a.Atomic(func(tx *Tx) {
		if v := tx.Read(&w); v != 2 {
			t.Fatalf("a sees %d, want 2", v)
		}
	})
}

// TestCounterConcurrent increments a shared counter from many goroutines;
// the final value must equal the number of increments (no lost updates) in
// every mode.
func TestCounterConcurrent(t *testing.T) {
	for _, mode := range []Mode{CTL, ETL, Elastic} {
		t.Run(mode.String(), func(t *testing.T) {
			s := New(WithMode(mode))
			const goroutines = 8
			const perG = 500
			var w Word
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				th := s.NewThread()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						th.Atomic(func(tx *Tx) {
							tx.Write(&w, tx.Read(&w)+1)
						})
					}
				}()
			}
			wg.Wait()
			if got := w.Plain(); got != goroutines*perG {
				t.Fatalf("counter=%d, want %d", got, goroutines*perG)
			}
		})
	}
}

// TestCommitFastPathWriteSkew stresses the interaction between the
// validation-skip fast path and a slow-path committer with a stale snapshot.
// The shape is the classic write-skew pair — T2 reads b and writes a, T1
// reads a and writes b — arranged so that T2 commits on the slow path (its
// snapshot is stale: the clock is bumped after it begins) with a large read
// set (long validation) and a large write set locked before a, while T1 is a
// small transaction with a fresh snapshot, eligible for the wv == rv+1
// CAS shortcut. Serializability forbids both guarded writes landing: the
// second transaction to serialize must observe the first's write (or its
// lock) and back off. If the slow path validated its reads BEFORE advancing
// the clock, T1 could win its CAS inside T2's validation window and skip
// validation without ever observing T2's lock on a — both publish at the
// same position with mutually stale reads, and a and b end up 1 together.
//
// The racing window lies inside commit(), which has no scheduling points,
// so hitting it requires the two committers to run truly in parallel: on
// GOMAXPROCS=1 the test still checks the invariant but cannot exercise the
// race. The orchestration (begin/bump sequencing, lock-phase polling,
// jittered start) exists to steer multi-core runs into the window.
func TestCommitFastPathWriteSkew(t *testing.T) {
	s := New() // CTL: commit-time locking maximizes the racing window
	thReset := s.NewThread()
	th1 := s.NewThread()
	th2 := s.NewThread()
	const fillerN = 2048 // T2 read set: stretches commit-time validation
	const lockedN = 512  // T2 write set: locked before a at commit
	const t1WorkN = 512  // T1 reads between its read of a and its commit
	filler := make([]Word, fillerN)
	locked := make([]Word, lockedN)
	t1Work := make([]Word, t1WorkN)
	var a, b, bump Word
	var t2Began atomic.Bool
	rounds := 4000
	if testing.Short() {
		rounds = 400
	}
	x := uint64(1)
	for r := 0; r < rounds; r++ {
		thReset.Atomic(func(tx *Tx) {
			tx.Write(&a, 0)
			tx.Write(&b, 0)
		})
		t2Began.Store(false)
		done := make(chan struct{})
		go func() {
			defer close(done)
			th2.Atomic(func(tx *Tx) {
				t2Began.Store(true)  // attempt begun: snapshot drawn
				guard := tx.Read(&b) // validated first at commit
				var sink uint64
				for i := range filler {
					sink += tx.Read(&filler[i])
				}
				for i := range locked {
					tx.Write(&locked[i], sink)
				}
				if guard == 0 {
					tx.Write(&a, 1) // locked last, just before the clock draw
				}
			})
		}()
		// Stale-snapshot setup: wait until T2 has drawn its snapshot, then
		// advance the clock on a word T2 never reads. T2's commit now cannot
		// take the fast path, while T1 (beginning after the bump) can.
		for !t2Began.Load() {
			runtime.Gosched()
		}
		thReset.Atomic(func(tx *Tx) {
			tx.Write(&bump, uint64(r))
		})
		// Launch T1 the moment T2 enters its commit lock phase (first write
		// lock observed), with a little jitter so T1's read of a and its
		// commit slide across T2's lock-of-a and validation phases. The spin
		// bound keeps the poll from monopolizing a single-CPU scheduler.
	waitLockPhase:
		for spins := 0; !isLocked(locked[0].meta.Load()); spins++ {
			select {
			case <-done: // T2 already finished this round; no race to catch
				break waitLockPhase
			default:
			}
			if spins > 1<<14 {
				spins = 0
				runtime.Gosched()
			}
		}
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		for spin := x % 2048; spin > 0; spin-- {
			_ = spin
		}
		th1.Atomic(func(tx *Tx) {
			guard := tx.Read(&a)
			var sink uint64
			for i := range t1Work {
				sink += tx.Read(&t1Work[i])
			}
			_ = sink
			if guard == 0 {
				tx.Write(&b, 1)
			}
		})
		<-done
		if av, bv := a.Plain(), b.Plain(); av == 1 && bv == 1 {
			t.Fatalf("round %d: write skew: a=%d b=%d (both guarded writes committed)", r, av, bv)
		}
	}
}

// TestBankTransferInvariant moves money between accounts concurrently; the
// total must be conserved at every observation point and at the end.
func TestBankTransferInvariant(t *testing.T) {
	for _, mode := range []Mode{CTL, ETL, Elastic} {
		t.Run(mode.String(), func(t *testing.T) {
			s := New(WithMode(mode))
			const nAcc = 16
			const total = nAcc * 100
			accounts := make([]Word, nAcc)
			for i := range accounts {
				accounts[i].SetPlain(100)
			}
			var transfers sync.WaitGroup
			stop := make(chan struct{})
			observerDone := make(chan struct{})
			// Observer goroutine: every transactional snapshot must sum to
			// the conserved total while transfers race.
			obs := s.NewThread()
			go func() {
				defer close(observerDone)
				for {
					select {
					case <-stop:
						return
					default:
					}
					var sum uint64
					obs.Atomic(func(tx *Tx) {
						sum = 0
						for i := range accounts {
							sum += tx.Read(&accounts[i])
						}
					})
					if sum != total {
						t.Errorf("observer saw total %d, want %d", sum, total)
						return
					}
				}
			}()
			for g := 0; g < 4; g++ {
				th := s.NewThread()
				transfers.Add(1)
				go func(seed uint64) {
					defer transfers.Done()
					x := seed*2654435761 + 1
					for i := 0; i < 400; i++ {
						x ^= x << 13
						x ^= x >> 7
						x ^= x << 17
						from := int(x % nAcc)
						to := int((x >> 8) % nAcc)
						if from == to {
							continue
						}
						th.Atomic(func(tx *Tx) {
							f := tx.Read(&accounts[from])
							if f == 0 {
								return
							}
							tx.Write(&accounts[from], f-1)
							tx.Write(&accounts[to], tx.Read(&accounts[to])+1)
						})
					}
				}(uint64(g + 1))
			}
			transfers.Wait()
			close(stop)
			<-observerDone
			var sum uint64
			for i := range accounts {
				sum += accounts[i].Plain()
			}
			if sum != total {
				t.Fatalf("final total=%d, want %d", sum, total)
			}
		})
	}
}

func TestStatsCounting(t *testing.T) {
	s := New()
	th := s.NewThread()
	var a, b Word
	th.Atomic(func(tx *Tx) {
		tx.Read(&a)
		tx.Read(&b)
		tx.Write(&a, 1)
	})
	st := th.Stats()
	if st.Commits != 1 || st.Reads != 2 || st.Writes != 1 {
		t.Fatalf("stats=%+v, want 1 commit, 2 reads, 1 write", st)
	}
	if st.MaxOpReads != 2 {
		t.Fatalf("MaxOpReads=%d, want 2", st.MaxOpReads)
	}
	th.ResetStats()
	if th.Stats().Commits != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Commits: 1, Aborts: 2, Reads: 3, UReads: 4, Writes: 5, MaxOpReads: 6, Extensions: 7, ElasticCuts: 8}
	b := Stats{Commits: 10, MaxOpReads: 3}
	a.Add(b)
	if a.Commits != 11 || a.MaxOpReads != 6 {
		t.Fatalf("Add wrong: %+v", a)
	}
	b2 := Stats{MaxOpReads: 9}
	a.Add(b2)
	if a.MaxOpReads != 9 {
		t.Fatalf("MaxOpReads should take max, got %d", a.MaxOpReads)
	}
}

func TestAbortRate(t *testing.T) {
	s := Stats{}
	if s.AbortRate() != 0 {
		t.Fatal("empty stats abort rate should be 0")
	}
	s = Stats{Commits: 3, Aborts: 1}
	if got := s.AbortRate(); got != 0.25 {
		t.Fatalf("AbortRate=%v, want 0.25", got)
	}
}

func TestOpCountAndPending(t *testing.T) {
	s := New()
	th := s.NewThread()
	if th.Pending() {
		t.Fatal("fresh thread pending")
	}
	var w Word
	sawPending := false
	th.Atomic(func(tx *Tx) {
		sawPending = th.Pending()
		tx.Write(&w, 1)
	})
	if !sawPending {
		t.Fatal("pending flag not raised inside Atomic")
	}
	if th.Pending() {
		t.Fatal("pending flag not cleared after Atomic")
	}
	if th.OpCount() != 1 {
		t.Fatalf("OpCount=%d, want 1", th.OpCount())
	}
}

func TestTotalStats(t *testing.T) {
	s := New()
	a, b := s.NewThread(), s.NewThread()
	var w Word
	a.Atomic(func(tx *Tx) { tx.Write(&w, 1) })
	b.Atomic(func(tx *Tx) { tx.Read(&w) })
	tot := s.TotalStats()
	if tot.Commits != 2 {
		t.Fatalf("TotalStats.Commits=%d, want 2", tot.Commits)
	}
	if len(s.Threads()) != 2 {
		t.Fatalf("Threads()=%d, want 2", len(s.Threads()))
	}
}

func TestThreadSlotsDistinct(t *testing.T) {
	s := New()
	a, b := s.NewThread(), s.NewThread()
	if a.Slot() == b.Slot() || a.Slot() == 0 || b.Slot() == 0 {
		t.Fatalf("slots must be distinct and nonzero: %d %d", a.Slot(), b.Slot())
	}
	if a.STM() != s {
		t.Fatal("Thread.STM() mismatch")
	}
}

func TestYieldInjectionGeneratesInterleaving(t *testing.T) {
	// With yield injection, transactions on a single processor interleave
	// and genuinely conflict; the counter invariant must still hold.
	s := New(WithMode(CTL), WithYield(2))
	var w Word
	var wg sync.WaitGroup
	const goroutines, perG = 6, 300
	for g := 0; g < goroutines; g++ {
		th := s.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				th.Atomic(func(tx *Tx) { tx.Write(&w, tx.Read(&w)+1) })
			}
		}()
	}
	wg.Wait()
	if got := w.Plain(); got != goroutines*perG {
		t.Fatalf("counter=%d, want %d", got, goroutines*perG)
	}
	if s.TotalStats().Aborts == 0 {
		t.Log("note: no aborts even with yield injection (acceptable but unexpected)")
	}
}
