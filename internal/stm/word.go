package stm

import "sync/atomic"

// A Word is one unit of transactional memory: a 64-bit value guarded by a
// versioned lock, the classical ownership-record layout of word-based STMs
// (TL2, TinySTM). The zero Word holds value 0 at version 0 and is ready for
// use, so Words embed naturally in node structures.
//
// meta encoding:
//
//	bit 0       locked flag
//	bits 1..63  if unlocked: version (timestamp of the last committed writer)
//	            if locked:   slot id of the owning thread
//
// Because versions come from a monotonically increasing global clock and
// slot ids are small constants per thread, a meta value can never be reused
// in a way that fools the compare-and-swap protocol (no ABA).
type Word struct {
	meta atomic.Uint64
	val  atomic.Uint64
}

const lockedBit = uint64(1)

func packVersion(ts uint64) uint64   { return ts << 1 }
func packLock(slot uint64) uint64    { return slot<<1 | lockedBit }
func isLocked(meta uint64) bool      { return meta&lockedBit != 0 }
func lockOwner(meta uint64) uint64   { return meta >> 1 }
func metaVersion(meta uint64) uint64 { return meta >> 1 }

// Plain returns the current value of the word with a single atomic load and
// no consistency guarantee whatsoever. It is intended for fields that are
// immutable after publication (for example node keys in the
// speculation-friendly tree) and for debug/statistics snapshots.
func (w *Word) Plain() uint64 { return w.val.Load() }

// SetPlain stores v directly, bypassing the transactional protocol. It must
// only be used to initialize a word before the enclosing structure is
// published to other threads (for example when preparing a freshly allocated
// tree node inside the transaction that will link it).
func (w *Word) SetPlain(v uint64) { w.val.Store(v) }

// relaxSink keeps cpuRelax's delay loop observable. The store is behind a
// branch that essentially never fires, so the hot path costs no memory
// traffic.
var relaxSink uint64

// cpuRelax burns roughly n cheap ALU iterations without touching shared
// memory — a portable stand-in for a PAUSE-style delay between re-polls of
// a contended cache line. The point is what it does NOT do: issue loads of
// the contended word, which would keep the owner's line bouncing.
func cpuRelax(n uint32) {
	acc := uint64(n) | 1
	for i := uint32(0); i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	if acc == 0 {
		relaxSink = acc
	}
}

// fastSample is the one-shot unlocked sample: value and meta when the word
// is observed unlocked and stable on the first try — the overwhelmingly
// common case — and false otherwise. Small enough to inline into the read
// paths; contended words fall back to the budgeted sampleUnlocked spin.
func (w *Word) fastSample() (uint64, uint64, bool) {
	m1 := w.meta.Load()
	if !isLocked(m1) {
		v := w.val.Load()
		if w.meta.Load() == m1 {
			return v, m1, true
		}
	}
	return 0, 0, false
}

// sampleUnlocked spins until the word is observed unlocked with a stable
// meta, returning (value, meta). spins is consumed as a budget; when it is
// exhausted the caller should yield (and charge Stats.SpinExhausted). The
// bool result reports success.
//
// While the word is locked the loop backs off with an exponentially growing
// pause between re-polls instead of hammering the owner's cache line with
// back-to-back loads — on real hardware each such load forces a coherence
// transition on the line the lock holder is about to write through.
func (w *Word) sampleUnlocked(budget int) (uint64, uint64, bool) {
	pause := uint32(4)
	for i := 0; i < budget; i++ {
		m1 := w.meta.Load()
		if isLocked(m1) {
			cpuRelax(pause)
			if pause < 256 {
				pause <<= 1
			}
			continue
		}
		v := w.val.Load()
		m2 := w.meta.Load()
		if m1 == m2 {
			return v, m1, true
		}
	}
	return 0, 0, false
}
