package stm

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// A Thread is the per-goroutine execution context for transactions: it owns
// a reusable transaction descriptor, statistics, a pseudo-random state for
// contention-management backoff, and the pending/completed counters that the
// maintenance thread's garbage collector inspects (paper §3.4).
//
// A Thread must not be shared between goroutines.
type Thread struct {
	stm  *STM
	slot uint64

	// Domain config cached at registration (see STM.NewThread): consulted
	// on every transactional access, so it must live on the thread's own
	// hot line rather than behind the shared STM pointer.
	maxSpin    int
	yieldEvery int

	stats    Stats
	opReads  uint64 // transactional reads accumulated by the current operation
	rngState uint64 // xorshift state for backoff jitter
	karma    uint64 // invested-work priority maintained by the Karma manager
	inAtomic bool
	accesses uint64 // transactional accesses, for the yield-injection knob
	opsDone  uint64 // owner-local mirror of opCount (see completeOp)

	// structural marks the thread as a maintenance driver: its commits and
	// aborts are additionally charged to the Structural* counters, giving
	// the structural-vs-semantic split of the abort taxonomy. Set once at
	// setup (MarkStructural), before the thread runs transactions.
	structural bool

	// Trace context: attached by the facade at op start when the op was
	// sampled (SetTraceContext), cleared at op end. While traceID is
	// non-zero the lifecycle engine records one SpanAttempt per attempt
	// under it; lastCause remembers the most recent abort's cause so the
	// traced loop can label the span. Owner-goroutine only, like stats.
	tr        *obs.Tracer
	traceID   uint64
	traceOp   obs.OpKind
	lastCause AbortCause

	// snapTx is the descriptor of the thread's read-only Snapshot session
	// (snapshot.go), distinct from tx so a session can stay open across
	// ordinary Atomic/Prepare calls; snapLive guards the per-thread
	// singleton.
	snapTx   *Tx
	snapLive bool

	// Pending and OpCount implement the epoch scheme of §3.4: "each
	// application thread maintains a boolean indicating a pending operation
	// and a counter indicating the number of completed operations". The
	// maintenance thread snapshots them before a traversal and frees
	// garbage only once every thread has either completed an operation or
	// is observed idle.
	//
	// They are the only Thread fields read by other goroutines while the
	// owner is running, so they get a cache line of their own: without the
	// pads, every collector poll would steal the line holding the owner's
	// hot counters, and every owner update would invalidate the collector's
	// copy of whatever shared the line.
	_       cacheLinePad
	pending atomic.Bool
	opCount atomic.Uint64
	_       cacheLinePad

	// live mirrors the subset of stats that is scrapeable while the thread
	// runs (STM.LiveStats): the owner publishes each counter with a plain
	// atomic store right after bumping its plain twin — the completeOp
	// owner-local-mirror pattern, a MOV rather than a LOCK XADD on x86 — so
	// a /metrics scrape sums them race-free without pausing anything. Like
	// pending/opCount these are the only fields foreign goroutines read
	// while the owner is hot, hence their own padded region.
	live liveMirror
	_    cacheLinePad

	// tx is the reusable transaction descriptor. It is by far the largest
	// field (it embeds the inline read/write sets), so it sits last, after
	// the fields above have settled into the leading lines.
	tx Tx
}

// completeOp counts one completed operation for the §3.4 collector. The
// published counter is only ever written by the owning goroutine, so a plain
// atomic store of an owner-local mirror replaces the read-modify-write an
// atomic increment would cost on the hot path.
func (th *Thread) completeOp() {
	th.opsDone++
	th.opCount.Store(th.opsDone)
}

// liveMirror is the atomically published mirror of the live-scrapeable
// counters (see the field comment on Thread.live).
type liveMirror struct {
	commits       atomic.Uint64
	aborts        atomic.Uint64
	retries       atomic.Uint64
	causes        [NumAbortCauses]atomic.Uint64
	structCommits atomic.Uint64
	structAborts  atomic.Uint64
}

// noteCommit charges one committed transaction: the plain counter for
// quiescent readers, the atomic mirror for live ones.
func (th *Thread) noteCommit() {
	th.stats.Commits++
	th.live.commits.Store(th.stats.Commits)
	if th.structural {
		th.stats.StructuralCommits++
		th.live.structCommits.Store(th.stats.StructuralCommits)
	}
}

// noteAbort charges one aborted attempt to the taxonomy.
func (th *Thread) noteAbort(cause AbortCause) {
	th.lastCause = cause
	th.stats.Aborts++
	th.live.aborts.Store(th.stats.Aborts)
	th.stats.AbortCauses[cause]++
	th.live.causes[cause].Store(th.stats.AbortCauses[cause])
	if th.structural {
		th.stats.StructuralAborts++
		th.live.structAborts.Store(th.stats.StructuralAborts)
	}
}

// noteRetry charges one abort→retry transition.
func (th *Thread) noteRetry() {
	th.stats.Retries++
	th.live.retries.Store(th.stats.Retries)
}

// MarkStructural marks this thread as a maintenance (structural) driver:
// from now on its commits and aborts are additionally counted in
// Stats.StructuralCommits/StructuralAborts. Call it once right after
// NewThread, before the thread runs transactions; it is not synchronized.
func (th *Thread) MarkStructural() { th.structural = true }

// Structural reports whether MarkStructural was called.
func (th *Thread) Structural() bool { return th.structural }

// liveStats reads the thread's atomically published mirror. Safe from any
// goroutine at any time; the fields are individually current but, as with
// any live scrape, not mutually transactional.
func (th *Thread) liveStats() LiveStats {
	var ls LiveStats
	ls.Commits = th.live.commits.Load()
	ls.Aborts = th.live.aborts.Load()
	ls.Retries = th.live.retries.Load()
	for i := range ls.AbortCauses {
		ls.AbortCauses[i] = th.live.causes[i].Load()
	}
	ls.StructuralCommits = th.live.structCommits.Load()
	ls.StructuralAborts = th.live.structAborts.Load()
	return ls
}

// Slot returns the thread's lock-owner slot id (1-based).
func (th *Thread) Slot() uint64 { return th.slot }

// STM returns the domain this thread belongs to.
func (th *Thread) STM() *STM { return th.stm }

// Stats returns a copy of the thread's counters. It may be called from other
// goroutines only when the thread is quiescent; for live monitoring use the
// atomic Pending/OpCount accessors instead.
func (th *Thread) Stats() Stats { return th.stats }

// ResetStats zeroes the thread's counters (between benchmark phases),
// including the live mirrors.
func (th *Thread) ResetStats() {
	th.stats = Stats{}
	th.live.commits.Store(0)
	th.live.aborts.Store(0)
	th.live.retries.Store(0)
	for i := range th.live.causes {
		th.live.causes[i].Store(0)
	}
	th.live.structCommits.Store(0)
	th.live.structAborts.Store(0)
}

// NoteBatch records one combiner batch of n coalesced operations committed
// through this thread in a single transaction (Stats.Batches/BatchedOps).
// Like the rest of the counters it is owner-local: only the thread's own
// goroutine — the batch runner — may call it.
func (th *Thread) NoteBatch(n int) {
	th.stats.Batches++
	th.stats.BatchedOps += uint64(n)
}

// SetTraceContext attaches a sampled operation's trace context: while id is
// non-zero, every subsequent Atomic/AtomicMode attempt on this thread
// records a SpanAttempt under it (op labels the spans). Pass (nil, 0, 0) to
// clear at op end. Owner-goroutine only, like the rest of the thread state.
func (th *Thread) SetTraceContext(tr *obs.Tracer, id uint64, op obs.OpKind) {
	th.tr = tr
	th.traceID = id
	th.traceOp = op
}

// Pending reports whether the thread is currently inside an operation.
func (th *Thread) Pending() bool { return th.pending.Load() }

// OpCount returns the number of completed operations.
func (th *Thread) OpCount() uint64 { return th.opCount.Load() }

// Atomic runs fn as a transaction in the STM's default mode, retrying on
// abort until it commits. See AtomicMode.
func (th *Thread) Atomic(fn func(*Tx)) {
	th.AtomicMode(th.stm.defaultMode, fn)
}

// AtomicMode runs fn as a transaction in the given mode, retrying until the
// transaction commits; the delay between attempts is decided by the domain's
// ContentionManager (see the lifecycle engine in lifecycle.go). Within fn all
// shared state must be accessed through the transaction's Read/Write/URead
// methods.
// fn may be re-executed arbitrarily many times; it must be free of side
// effects other than transactional accesses and writes to captured locals
// that are re-assigned on every attempt. An attempt that is already doomed
// to fail commit-time validation (a "zombie") can observe states that no
// consistent snapshot contains — such as a freshly published node that
// contradicts earlier reads — so fn must treat impossible observations by
// calling Tx.Restart, never by panicking or looping on them.
//
// Atomic calls delimit "operations" for the purposes of Stats.MaxOpReads and
// of the §3.4 garbage-collection counters: the pending flag is raised for
// the duration of the call and the completed-operation counter is
// incremented on the way out. Nested calls panic: compose transactions by
// passing the *Tx value instead (that is precisely the reusability argument
// of paper §5.4).
func (th *Thread) AtomicMode(mode Mode, fn func(*Tx)) {
	if th.inAtomic {
		panic("stm: nested Atomic call; compose by passing *Tx instead")
	}
	th.inAtomic = true
	th.pending.Store(true)
	th.opReads = 0
	lc := lifecycle{th: th, mode: mode, fn: fn}
	lc.run()
	if th.opReads > th.stats.MaxOpReads {
		th.stats.MaxOpReads = th.opReads
	}
	th.completeOp()
	th.pending.Store(false)
	th.inAtomic = false
}

// runAttempt executes one attempt of fn and tries to commit, converting the
// abort panic into a false return.
func (th *Thread) runAttempt(tx *Tx, fn func(*Tx)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == abortSignal {
				ok = false
				return
			}
			// A foreign panic (bug in user code) must not leave write
			// locks behind.
			tx.releaseLocks()
			panic(r)
		}
	}()
	fn(tx)
	if !tx.commit() {
		return false
	}
	tx.runCommitHooks()
	tx.runOnCommitted()
	return true
}

// stall delays the thread for roughly d, yielding the processor instead of
// sleeping (on machines where goroutines outnumber processors a kernel sleep
// costs far more than the contention window it is meant to cover). The time
// actually spent is charged to Stats.BackoffNanos.
func (th *Thread) stall(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	start := time.Now()
	for {
		runtime.Gosched()
		if elapsed := time.Since(start); elapsed >= d {
			th.stats.BackoffNanos += uint64(elapsed)
			return
		}
	}
}

// maybeYield implements the WithYield interleaving simulation: after every
// yieldEvery transactional accesses the thread hands the processor over,
// letting transactions overlap on under-provisioned hosts. It runs on
// every transactional access, so the common case (the knob is off) must
// inline to a load and a branch — the counting lives in yieldSlow to keep
// maybeYield inside the inlining budget.
func (th *Thread) maybeYield() {
	if th.yieldEvery == 0 {
		return
	}
	th.yieldSlow()
}

// yieldSlow is kept out of line so maybeYield stays within the inlining
// budget (an inlinable yieldSlow would be costed at its full body).
//
//go:noinline
func (th *Thread) yieldSlow() {
	th.accesses++
	if th.accesses%uint64(th.yieldEvery) == 0 {
		runtime.Gosched()
	}
}

// nextRand advances the thread's xorshift64 state.
func (th *Thread) nextRand() uint64 {
	x := th.rngState
	if x == 0 {
		x = th.slot*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	th.rngState = x
	return x
}
