package stm

import (
	"testing"
	"time"
)

// newTestTx returns a registered thread's descriptor, reset for an attempt.
func newTestTx(t *testing.T, mode Mode) (*Thread, *Tx) {
	t.Helper()
	th := New().NewThread()
	tx := &th.tx
	tx.begin(mode)
	return th, tx
}

func TestFindWriteHitAndMiss(t *testing.T) {
	_, tx := newTestTx(t, CTL)
	words := make([]Word, 4)
	tx.Write(&words[0], 10)
	tx.Write(&words[2], 30)

	if e := tx.findWrite(&words[0]); e == nil || e.val != 10 {
		t.Fatalf("findWrite(hit) = %+v, want val 10", e)
	}
	if e := tx.findWrite(&words[2]); e == nil || e.val != 30 {
		t.Fatalf("findWrite(hit) = %+v, want val 30", e)
	}
	if e := tx.findWrite(&words[1]); e != nil {
		t.Fatalf("findWrite(miss) = %+v, want nil", e)
	}
	// Read-after-write visibility goes through the same lookup.
	if v := tx.Read(&words[0]); v != 10 {
		t.Fatalf("Read-after-write = %d, want 10", v)
	}
	// Overwrite folds into the existing entry instead of appending.
	tx.Write(&words[0], 11)
	if n := len(tx.writes); n != 2 {
		t.Fatalf("write set has %d entries after overwrite, want 2", n)
	}
	if v := tx.Read(&words[0]); v != 11 {
		t.Fatalf("Read after overwrite = %d, want 11", v)
	}
}

func TestWriteSetIndexEngagesAndGrows(t *testing.T) {
	_, tx := newTestTx(t, CTL)
	const n = 200 // far past wsScanMax, forcing several growth rebuilds
	words := make([]Word, n)
	for i := range words {
		tx.Write(&words[i], uint64(i+1))
		if len(tx.writes) <= wsScanMax && tx.widxN != 0 {
			t.Fatalf("index engaged at %d entries, want only above %d", len(tx.writes), wsScanMax)
		}
	}
	if tx.widxN == 0 {
		t.Fatal("index not engaged above wsScanMax entries")
	}
	if got, min := len(tx.widx), 4*n; got < min {
		t.Fatalf("index size %d under the 4x sizing floor %d", got, min)
	}
	for i := range words {
		e := tx.findWrite(&words[i])
		if e == nil || e.val != uint64(i+1) {
			t.Fatalf("indexed lookup of word %d = %+v, want val %d", i, e, i+1)
		}
	}
	var other Word
	if e := tx.findWrite(&other); e != nil {
		t.Fatalf("indexed lookup of unwritten word = %+v, want nil", e)
	}
}

func TestWriteSetIndexResetAcrossAttempts(t *testing.T) {
	_, tx := newTestTx(t, CTL)
	first := make([]Word, 2*wsScanMax)
	for i := range first {
		tx.Write(&first[i], 1)
	}
	if tx.widxN == 0 {
		t.Fatal("index not engaged in the first attempt")
	}

	// A fresh attempt must forget the previous write set entirely: the
	// filter, the index, and the entries themselves.
	tx.begin(CTL)
	if tx.widxN != 0 || tx.wfilter != 0 || len(tx.writes) != 0 {
		t.Fatalf("begin left state behind: widxN=%d wfilter=%#x writes=%d",
			tx.widxN, tx.wfilter, len(tx.writes))
	}
	for i := range first {
		if e := tx.findWrite(&first[i]); e != nil {
			t.Fatalf("stale entry for first-attempt word %d: %+v", i, e)
		}
	}

	// Re-engaging the index in the new attempt must not resurrect stale
	// slots (the rebuild reuses the previous attempt's table capacity).
	second := make([]Word, 2*wsScanMax)
	for i := range second {
		tx.Write(&second[i], uint64(100+i))
	}
	for i := range first {
		if e := tx.findWrite(&first[i]); e != nil {
			t.Fatalf("stale first-attempt word %d visible through rebuilt index: %+v", i, e)
		}
	}
	for i := range second {
		if e := tx.findWrite(&second[i]); e == nil || e.val != uint64(100+i) {
			t.Fatalf("second-attempt word %d = %+v, want val %d", i, e, 100+i)
		}
	}
}

func TestInlineSetOverflow(t *testing.T) {
	s := New()
	th := s.NewThread()
	const n = 3 * inlineReads // overflows both inline arrays
	words := make([]Word, n)

	th.Atomic(func(tx *Tx) {
		for i := range words {
			if v := tx.Read(&words[i]); v != 0 {
				t.Errorf("fresh word %d reads %d, want 0", i, v)
			}
			tx.Write(&words[i], uint64(i+1))
		}
		// Read-after-write across the overflowed set.
		for i := range words {
			if v := tx.Read(&words[i]); v != uint64(i+1) {
				t.Errorf("buffered word %d reads %d, want %d", i, v, i+1)
			}
		}
	})
	for i := range words {
		if v := words[i].Plain(); v != uint64(i+1) {
			t.Fatalf("committed word %d = %d, want %d", i, v, i+1)
		}
	}

	// The overflowed descriptor keeps working for later small operations.
	th.Atomic(func(tx *Tx) {
		tx.Write(&words[0], 999)
	})
	if v := words[0].Plain(); v != 999 {
		t.Fatalf("post-overflow commit = %d, want 999", v)
	}
}

func TestSpinExhaustedOnLockedWord(t *testing.T) {
	th, tx := newTestTx(t, CTL)
	var w Word
	w.meta.Store(packLock(99)) // a lock no live thread will ever release

	func() {
		defer func() {
			if r := recover(); r != abortSignal {
				t.Fatalf("recover() = %v, want the abort signal", r)
			}
		}()
		tx.Read(&w)
		t.Fatal("Read of a permanently locked word returned")
	}()

	// sampleContended burns one budget, yields, burns a second, then aborts.
	if got := th.stats.SpinExhausted; got != 2 {
		t.Fatalf("SpinExhausted = %d, want 2", got)
	}
	if th.stats.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", th.stats.Aborts)
	}

	// Stats aggregation carries the counter.
	var agg Stats
	agg.Add(th.stats)
	agg.Add(Stats{SpinExhausted: 3})
	if agg.SpinExhausted != 5 {
		t.Fatalf("aggregated SpinExhausted = %d, want 5", agg.SpinExhausted)
	}
}

func TestUReadWaitsOutLock(t *testing.T) {
	th, tx := newTestTx(t, CTL)
	var w Word
	w.SetPlain(7)
	w.meta.Store(packLock(99))
	go func() {
		time.Sleep(2 * time.Millisecond)
		w.meta.Store(packVersion(0))
	}()
	if v := tx.URead(&w); v != 7 {
		t.Fatalf("URead = %d, want 7", v)
	}
	// The wait must have consumed at least one spin budget (and charged it)
	// rather than returning a torn or locked-era sample.
	if th.stats.SpinExhausted == 0 {
		t.Fatal("URead waited out a lock without charging SpinExhausted")
	}
}
