package stm

import (
	"sync"
	"testing"
	"testing/quick"
)

// TestQuickSequentialEquivalence drives a random program of transactions on
// a small word array through the STM on a single thread and through direct
// evaluation; the results must match exactly in every mode. This checks
// read-own-write, overwrite and restart-retry plumbing under arbitrary
// access patterns.
func TestQuickSequentialEquivalence(t *testing.T) {
	type op struct {
		Target  uint8
		Source  uint8
		AddSelf bool
	}
	for _, mode := range []Mode{CTL, ETL, Elastic} {
		t.Run(mode.String(), func(t *testing.T) {
			f := func(prog []op) bool {
				const nWords = 8
				s := New(WithMode(mode))
				th := s.NewThread()
				words := make([]Word, nWords)
				model := make([]uint64, nWords)
				for _, o := range prog {
					tgt := int(o.Target) % nWords
					src := int(o.Source) % nWords
					th.Atomic(func(tx *Tx) {
						v := tx.Read(&words[src])
						if o.AddSelf {
							v += tx.Read(&words[tgt])
						}
						tx.Write(&words[tgt], v+1)
					})
					v := model[src]
					if o.AddSelf {
						v += model[tgt]
					}
					model[tgt] = v + 1
				}
				for i := range words {
					if words[i].Plain() != model[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickConcurrentDisjointWords runs random per-goroutine programs on
// disjoint word ranges; with no sharing, results must equal the sequential
// model regardless of scheduling.
func TestQuickConcurrentDisjointWords(t *testing.T) {
	f := func(progs [4][]uint8) bool {
		const perG = 4
		s := New(WithYield(2))
		words := make([]Word, 4*perG)
		models := make([][]uint64, 4)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			models[g] = make([]uint64, perG)
			for _, o := range progs[g] {
				i := int(o) % perG
				models[g][i] += uint64(o) + 1
			}
			th := s.NewThread()
			prog := progs[g]
			base := g * perG
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, o := range prog {
					i := base + int(o)%perG
					th.Atomic(func(tx *Tx) {
						tx.Write(&words[i], tx.Read(&words[i])+uint64(o)+1)
					})
				}
			}()
		}
		wg.Wait()
		for g := 0; g < 4; g++ {
			for i := 0; i < perG; i++ {
				if words[g*perG+i].Plain() != models[g][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTimestampExtension forces the extension path: a reader that snapshots
// early must transparently extend when it meets a newer-version word, as
// long as its earlier reads are untouched.
func TestTimestampExtension(t *testing.T) {
	s := New()
	a, b := s.NewThread(), s.NewThread()
	var x, y Word
	// Thread a starts a transaction and reads x at clock T0.
	var sawY uint64
	step := 0
	a.Atomic(func(tx *Tx) {
		step++
		_ = tx.Read(&x)
		if step == 1 {
			// Concurrently commit to y, bumping the clock past a's snapshot.
			b.Atomic(func(tx2 *Tx) { tx2.Write(&y, 7) })
		}
		// Reading y now requires a timestamp extension (y's version > rv);
		// x is unchanged, so the extension must succeed, not abort.
		sawY = tx.Read(&y)
	})
	if sawY != 7 {
		t.Fatalf("extended read saw %d, want 7", sawY)
	}
	if a.Stats().Extensions == 0 {
		t.Fatal("extension path not exercised")
	}
	if a.Stats().Aborts != 0 {
		t.Fatalf("extension should not abort, got %d aborts", a.Stats().Aborts)
	}
}

// TestExtensionFailsWhenInvalidated is the complement: if the earlier read
// HAS changed, the extension must fail and the transaction retry, ending
// with the consistent final values.
func TestExtensionFailsWhenInvalidated(t *testing.T) {
	s := New()
	a, b := s.NewThread(), s.NewThread()
	var x, y Word
	attempts := 0
	var rx, ry uint64
	a.Atomic(func(tx *Tx) {
		attempts++
		rx = tx.Read(&x)
		if attempts == 1 {
			// Invalidate x AND bump y so a's next read forces validation.
			b.Atomic(func(tx2 *Tx) {
				tx2.Write(&x, 1)
				tx2.Write(&y, 2)
			})
		}
		ry = tx.Read(&y)
	})
	if attempts < 2 {
		t.Fatalf("expected a retry, got %d attempts", attempts)
	}
	if rx != 1 || ry != 2 {
		t.Fatalf("final attempt read (%d,%d), want (1,2)", rx, ry)
	}
	if a.Stats().Aborts == 0 {
		t.Fatal("no abort recorded for the invalidated attempt")
	}
}

// TestElasticCutAllowsStaleDisjointPrefix shows the elastic win: a read-only
// elastic transaction whose OLD reads are invalidated mid-flight commits
// anyway, where CTL would abort or extend-fail.
func TestElasticCutAllowsStaleDisjointPrefix(t *testing.T) {
	s := New(WithMode(Elastic))
	a, b := s.NewThread(), s.NewThread()
	words := make([]Word, 8)
	attempts := 0
	a.Atomic(func(tx *Tx) {
		attempts++
		// Hand-over-hand pass over the array.
		for i := range words {
			_ = tx.Read(&words[i])
			if i == 6 && attempts == 1 {
				// Invalidate an already-cut early read: must NOT abort.
				b.Atomic(func(tx2 *Tx) { tx2.Write(&words[0], 9) })
			}
		}
	})
	if attempts != 1 {
		t.Fatalf("elastic traversal aborted %d times; the cut should have forgiven the stale prefix", attempts-1)
	}
	if a.Stats().ElasticCuts == 0 {
		t.Fatal("no cuts recorded")
	}
}

// TestElasticWindowConflictAborts shows the elastic guarantee: invalidating
// a read still inside the hand-over-hand window aborts the attempt.
func TestElasticWindowConflictAborts(t *testing.T) {
	s := New(WithMode(Elastic))
	a, b := s.NewThread(), s.NewThread()
	words := make([]Word, 4)
	attempts := 0
	a.Atomic(func(tx *Tx) {
		attempts++
		_ = tx.Read(&words[0])
		_ = tx.Read(&words[1])
		if attempts == 1 {
			// words[1] is the latest window entry: invalidating it must
			// abort at the next elastic read.
			b.Atomic(func(tx2 *Tx) { tx2.Write(&words[1], 5) })
		}
		_ = tx.Read(&words[2])
	})
	if attempts < 2 {
		t.Fatal("window conflict did not abort the elastic attempt")
	}
}

// TestElasticUpgradePinsWindow: after the first write, the window contents
// join the real read set, so invalidating them aborts the commit.
func TestElasticUpgradePinsWindow(t *testing.T) {
	s := New(WithMode(Elastic))
	a, b := s.NewThread(), s.NewThread()
	var x, y, z Word
	attempts := 0
	a.Atomic(func(tx *Tx) {
		attempts++
		_ = tx.Read(&x) // will be cut
		_ = tx.Read(&y) // window
		_ = tx.Read(&z) // window
		tx.Write(&z, 1) // upgrade: y and z promoted
		if attempts == 1 {
			b.Atomic(func(tx2 *Tx) { tx2.Write(&y, 9) })
		}
	})
	if attempts < 2 {
		t.Fatal("promoted window read was not validated at commit")
	}
	if z.Plain() != 1 {
		t.Fatalf("final z = %d, want 1", z.Plain())
	}
}

// TestETLWriteWriteConflictEager: under encounter-time locking the second
// writer must abort at the write, not at commit.
func TestETLWriteWriteConflict(t *testing.T) {
	s := New(WithMode(ETL))
	a := s.NewThread()
	b := s.NewThread()
	var w Word
	ready := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.Atomic(func(tx *Tx) {
			tx.Write(&w, 1) // lock acquired eagerly and held
			select {
			case <-ready:
			default:
				close(ready)
			}
			<-release
		})
	}()
	<-ready
	// b must observe the eager lock and retry until a commits.
	bDone := make(chan struct{})
	go func() {
		defer close(bDone)
		b.Atomic(func(tx *Tx) { tx.Write(&w, 2) })
	}()
	close(release)
	<-done
	<-bDone
	if b.Stats().Aborts == 0 {
		t.Log("note: b never aborted (a committed before b's first write attempt)")
	}
	if got := w.Plain(); got != 2 && got != 1 {
		t.Fatalf("final value %d", got)
	}
}
