package stm

import (
	"sync"
	"testing"
)

// TestPrepareFinalizePublishes: a prepared transaction's writes are
// invisible until Finalize, then visible with an advanced version.
func TestPrepareFinalizePublishes(t *testing.T) {
	s := New()
	th := s.NewThread()
	var w Word

	p, ok := th.Prepare(func(tx *Tx) { tx.Write(&w, 42) })
	if !ok {
		t.Fatal("Prepare aborted on an uncontended word")
	}
	if !isLocked(w.meta.Load()) {
		t.Fatal("prepared write set not locked")
	}
	if w.Plain() == 42 {
		t.Fatal("prepared write published before Finalize")
	}
	p.Finalize()
	if got := w.Plain(); got != 42 {
		t.Fatalf("value %d after Finalize, want 42", got)
	}
	if isLocked(w.meta.Load()) {
		t.Fatal("word still locked after Finalize")
	}
	if metaVersion(w.meta.Load()) == 0 {
		t.Fatal("published version not advanced")
	}
	st := th.Stats()
	if st.Prepares != 1 || st.Commits != 1 || st.Aborts != 0 {
		t.Fatalf("stats %+v, want 1 prepare, 1 commit, 0 aborts", st)
	}
}

// TestPrepareDropRestores: Drop releases the locks with the pre-lock
// metadata restored and publishes nothing.
func TestPrepareDropRestores(t *testing.T) {
	s := New()
	th := s.NewThread()
	var w Word
	th.Atomic(func(tx *Tx) { tx.Write(&w, 7) })
	metaBefore := w.meta.Load()

	p, ok := th.Prepare(func(tx *Tx) { tx.Write(&w, 99) })
	if !ok {
		t.Fatal("Prepare aborted")
	}
	p.Drop()
	if got := w.Plain(); got != 7 {
		t.Fatalf("value %d after Drop, want the pre-prepare 7", got)
	}
	if got := w.meta.Load(); got != metaBefore {
		t.Fatalf("meta %#x after Drop, want restored %#x", got, metaBefore)
	}
	st := th.Stats()
	if st.Aborts != 1 {
		t.Fatalf("Drop charged %d aborts, want 1", st.Aborts)
	}
}

// TestPrepareValidationFailure: a concurrent commit between a logged read
// and Prepare's lock point must abort the prepare.
func TestPrepareValidationFailure(t *testing.T) {
	s := New()
	th1 := s.NewThread()
	th2 := s.NewThread()
	var r, w Word

	_, ok := th1.Prepare(func(tx *Tx) {
		_ = tx.Read(&r)
		// Invalidate the read before the lock point: th2 commits a write
		// to r. Running another thread's whole transaction inside fn is
		// fine for the test — fn has not reached prepare yet.
		th2.Atomic(func(tx2 *Tx) { tx2.Write(&r, 1) })
		tx.Write(&w, 5)
	})
	if ok {
		t.Fatal("Prepare validated a stale read")
	}
	if w.Plain() == 5 {
		t.Fatal("aborted prepare published its write")
	}
	if isLocked(w.meta.Load()) || isLocked(r.meta.Load()) {
		t.Fatal("aborted prepare left a lock behind")
	}
	if st := th1.Stats(); st.Aborts != 1 || st.Prepares != 0 {
		t.Fatalf("stats %+v, want 1 abort, 0 prepares", st)
	}
}

// TestPrepareLockConflict: two prepares with overlapping write sets — the
// second must fail cleanly while the first still finalizes.
func TestPrepareLockConflict(t *testing.T) {
	s := New()
	th1 := s.NewThread()
	th2 := s.NewThread()
	var w Word

	p1, ok := th1.Prepare(func(tx *Tx) { tx.Write(&w, 1) })
	if !ok {
		t.Fatal("first Prepare aborted")
	}
	if _, ok := th2.Prepare(func(tx *Tx) { tx.Write(&w, 2) }); ok {
		t.Fatal("second Prepare acquired a lock the first still holds")
	}
	p1.Finalize()
	if got := w.Plain(); got != 1 {
		t.Fatalf("value %d, want the first prepare's 1", got)
	}
}

// TestPreparedBlocksConcurrentWriters: while a transaction is prepared, a
// concurrent Atomic writer to the same word keeps aborting and only
// commits after Finalize — the lock-point protection the cross-shard
// coordinator's atomicity argument rests on.
func TestPreparedBlocksConcurrentWriters(t *testing.T) {
	s := New()
	th1 := s.NewThread()
	th2 := s.NewThread()
	var w Word

	p, ok := th1.Prepare(func(tx *Tx) { tx.Write(&w, 10) })
	if !ok {
		t.Fatal("Prepare aborted")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th2.Atomic(func(tx *Tx) { tx.Write(&w, 20) })
	}()
	p.Finalize()
	wg.Wait()
	// th2's write must have serialized after the finalize.
	if got := w.Plain(); got != 20 {
		t.Fatalf("value %d, want the writer's 20 serialized after Finalize", got)
	}
	if th2.Stats().Aborts == 0 {
		t.Log("writer never conflicted with the prepared window (legal, just unlikely)")
	}
}

// TestPreparedCommitHooks: hooks registered by the prepared attempt fire on
// Finalize exactly once, and never on Drop.
func TestPreparedCommitHooks(t *testing.T) {
	s := New()
	th := s.NewThread()
	var w Word
	h := &countingHook{}

	p, _ := th.Prepare(func(tx *Tx) {
		tx.Write(&w, 1)
		tx.OnCommit(h, 1, 2, 3)
	})
	if h.n != 0 {
		t.Fatal("hook fired before Finalize")
	}
	p.Finalize()
	if h.n != 1 {
		t.Fatalf("hook fired %d times on Finalize, want 1", h.n)
	}

	p2, _ := th.Prepare(func(tx *Tx) {
		tx.Write(&w, 2)
		tx.OnCommit(h, 4, 5, 6)
	})
	p2.Drop()
	if h.n != 1 {
		t.Fatalf("hook fired on Drop (count %d)", h.n)
	}
}

type countingHook struct{ n int }

func (c *countingHook) OnTxCommit(kind, a, b uint64) { c.n++ }

// TestPrepareNested: starting any transaction while one is prepared on the
// same thread must panic (the descriptor is still in use).
func TestPrepareNested(t *testing.T) {
	s := New()
	th := s.NewThread()
	var w Word
	p, _ := th.Prepare(func(tx *Tx) { tx.Write(&w, 1) })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Atomic during a prepared window did not panic")
			}
		}()
		th.Atomic(func(tx *Tx) {})
	}()
	p.Finalize()
}

// TestPreparedAnchorsClockPosition is the regression test for the
// prepared-transaction / wv==rv+1 write skew: a prepared transaction must
// draw its clock position at the lock point, or a concurrent ordinary
// commit can draw wv == rv+1, skip validation, and copy a value the
// prepared transaction holds locked for imminent overwrite — losing the
// prepared write (this is exactly the optimized tree's copy-on-rotate
// racing a cross-shard transfer, distilled).
//
// Shape: T reads rem and writes val (the transfer); R reads val and writes
// rem (the rotation, copying val elsewhere). R's read of val happens
// before T prepares; T prepares (locks val) before R commits. Exactly one
// of them must lose: with the fix, T's prepare-time clock draw forces R
// out of the shortcut, R validates, sees T's lock and retries after T
// finalizes — so R's copy carries T's value.
func TestPreparedAnchorsClockPosition(t *testing.T) {
	s := New()
	thT := s.NewThread()
	thR := s.NewThread()
	var val, rem Word
	thR.Atomic(func(tx *Tx) { tx.Write(&val, 11) }) // seed

	var p *Prepared
	attempts := 0
	var copied uint64
	thR.Atomic(func(tx *Tx) {
		attempts++
		if attempts > 1 && p != nil {
			// Retrying after the conflict: let T finalize so val unlocks.
			p.Finalize()
			p = nil
		}
		copied = tx.Read(&val) // the rotation's copy of the value
		if attempts == 1 {
			// Between R's read and R's commit, T prepares its overwrite
			// of val (validating its own read of rem first).
			var ok bool
			p, ok = thT.Prepare(func(txT *Tx) {
				if txT.Read(&rem) != 0 {
					txT.Restart()
				}
				txT.Write(&val, 26)
			})
			if !ok {
				t.Fatal("T's Prepare aborted")
			}
		}
		tx.Write(&rem, 1) // the rotation unlinks the original
	})
	if p != nil {
		p.Finalize()
	}
	if attempts < 2 {
		t.Fatalf("R committed in %d attempt(s): it took the no-validation shortcut over T's prepared lock", attempts)
	}
	if copied != 26 {
		t.Fatalf("R copied %d, want T's committed 26 (prepared write lost)", copied)
	}
}

// TestPrepareReadOnly: a read-only prepare validates and finalizes as a
// plain read-only commit.
func TestPrepareReadOnly(t *testing.T) {
	s := New()
	th := s.NewThread()
	var w Word
	th.Atomic(func(tx *Tx) { tx.Write(&w, 3) })

	p, ok := th.Prepare(func(tx *Tx) {
		if tx.Read(&w) != 3 {
			t.Error("read wrong value")
		}
	})
	if !ok {
		t.Fatal("read-only Prepare aborted")
	}
	p.Finalize()
	if st := th.Stats(); st.Commits != 2 {
		t.Fatalf("commits %d, want 2", st.Commits)
	}
}
