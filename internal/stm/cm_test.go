package stm

import (
	"sync"
	"testing"
)

// restartTimes runs one Atomic operation that explicitly restarts itself n
// times before committing, returning the thread's stats delta.
func restartTimes(t *testing.T, cm ContentionManager, n int) Stats {
	t.Helper()
	s := New(WithContentionManager(cm))
	th := s.NewThread()
	attempts := 0
	th.Atomic(func(tx *Tx) {
		attempts++
		if attempts <= n {
			tx.Restart()
		}
	})
	return th.Stats()
}

func TestLifecycleCountsRetries(t *testing.T) {
	for _, name := range Managers() {
		cm, err := ManagerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			st := restartTimes(t, cm, 3)
			if st.Commits != 1 {
				t.Fatalf("commits = %d", st.Commits)
			}
			if st.Aborts != 3 || st.Retries != 3 {
				t.Fatalf("aborts = %d, retries = %d, want 3,3", st.Aborts, st.Retries)
			}
		})
	}
}

func TestSuicideMatchesLegacyStatsSemantics(t *testing.T) {
	// The suicide policy is the pre-forest engine: a retry charges exactly
	// one abort and one retry, stalls no measured time, and commits exactly
	// once per operation.
	st := restartTimes(t, Suicide(), 5)
	if st.BackoffNanos != 0 {
		t.Fatalf("suicide recorded backoff time: %d ns", st.BackoffNanos)
	}
	if st.Retries != st.Aborts {
		t.Fatalf("retries %d != aborts %d", st.Retries, st.Aborts)
	}
}

func TestBackoffRecordsStallTime(t *testing.T) {
	// Enough forced retries that at least one jittered window is non-zero.
	st := restartTimes(t, Backoff(), 12)
	if st.BackoffNanos == 0 {
		t.Fatal("backoff never recorded stall time over 12 retries")
	}
}

func TestKarmaResetsOnCommit(t *testing.T) {
	s := New(WithContentionManager(Karma()))
	th := s.NewThread()
	w := new(Word)
	attempts := 0
	th.Atomic(func(tx *Tx) {
		attempts++
		tx.Read(w) // invest work so an abort accrues karma
		if attempts <= 3 {
			tx.Restart()
		}
	})
	if th.karma != 0 {
		t.Fatalf("karma = %d after commit, want 0", th.karma)
	}
	if th.Stats().Retries != 3 {
		t.Fatalf("retries = %d", th.Stats().Retries)
	}
}

func TestManagerByName(t *testing.T) {
	for _, name := range Managers() {
		cm, err := ManagerByName(name)
		if err != nil || cm.Name() != name {
			t.Fatalf("ManagerByName(%q) = %v, %v", name, cm, err)
		}
	}
	if cm, err := ManagerByName(""); err != nil || cm.Name() != "backoff" {
		t.Fatalf("empty name should resolve to the backoff default, got %v, %v", cm, err)
	}
	if _, err := ManagerByName("polite"); err == nil {
		t.Fatal("unknown manager did not error")
	}
}

// TestContendedCounterAllPolicies hammers one word from several goroutines
// under every policy: whatever the retry policy does, no increment may be
// lost and every conflict must eventually resolve.
func TestContendedCounterAllPolicies(t *testing.T) {
	const goroutines, perG = 4, 200
	for _, name := range Managers() {
		cm, _ := ManagerByName(name)
		t.Run(name, func(t *testing.T) {
			s := New(WithContentionManager(cm), WithYield(2))
			w := new(Word)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				th := s.NewThread()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						th.Atomic(func(tx *Tx) {
							tx.Write(w, tx.Read(w)+1)
						})
					}
				}()
			}
			wg.Wait()
			final := s.NewThread()
			var got uint64
			final.Atomic(func(tx *Tx) { got = tx.Read(w) })
			if got != goroutines*perG {
				t.Fatalf("counter = %d, want %d", got, goroutines*perG)
			}
			if st := s.TotalStats(); st.Commits < goroutines*perG {
				t.Fatalf("commits = %d", st.Commits)
			}
		})
	}
}
