package stm

import "testing"

// The mechanical-sympathy contract of the descriptor: a transaction whose
// read and write sets fit the inline arrays must not touch the allocator at
// all in steady state. AllocsPerRun counts process-wide mallocs, so these
// tests run nothing in the background; the transaction body closures are
// hoisted out of the measured loop (a closure literal constructed per call
// is an allocation of the caller, not of the STM).

func TestAtomicZeroAllocs(t *testing.T) {
	s := New()
	th := s.NewThread()
	words := make([]Word, 8)

	body := func(tx *Tx) {
		sum := uint64(0)
		for i := 0; i < 6; i++ {
			sum += tx.Read(&words[i])
		}
		tx.Write(&words[6], sum)
		tx.Write(&words[7], sum+1)
	}
	op := func() { th.Atomic(body) }
	op() // warm up (thread-registration side effects, lazy growth)
	if avg := testing.AllocsPerRun(200, op); avg != 0 {
		t.Fatalf("Atomic read/write op allocates %.2f times per run, want 0", avg)
	}
}

func TestAtomicZeroAllocsAllModes(t *testing.T) {
	for _, mode := range []Mode{CTL, ETL, Elastic} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			s := New(WithMode(mode))
			th := s.NewThread()
			words := make([]Word, 4)
			body := func(tx *Tx) {
				v := tx.Read(&words[0])
				_ = tx.URead(&words[1])
				tx.Write(&words[2], v+1)
			}
			op := func() { th.Atomic(body) }
			op()
			if avg := testing.AllocsPerRun(200, op); avg != 0 {
				t.Fatalf("%v op allocates %.2f times per run, want 0", mode, avg)
			}
		})
	}
}

func TestReadOnlyAtomicZeroAllocs(t *testing.T) {
	s := New()
	th := s.NewThread()
	words := make([]Word, inlineReads) // exactly the inline capacity
	body := func(tx *Tx) {
		for i := range words {
			_ = tx.Read(&words[i])
		}
	}
	op := func() { th.Atomic(body) }
	op()
	if avg := testing.AllocsPerRun(200, op); avg != 0 {
		t.Fatalf("read-only op allocates %.2f times per run, want 0", avg)
	}
}

// Once an operation overflowed the inline arrays, the heap-backed slices are
// retained by the descriptor: later oversized operations stay allocation-free
// too (the one-time growth is the only allocator visit).
func TestOverflowedSetsRetainCapacity(t *testing.T) {
	s := New()
	th := s.NewThread()
	words := make([]Word, 3*inlineReads)
	body := func(tx *Tx) {
		for i := range words {
			_ = tx.Read(&words[i])
		}
		for i := 0; i < 2*inlineWrites; i++ {
			tx.Write(&words[i], uint64(i))
		}
	}
	op := func() { th.Atomic(body) }
	op() // pays the slice growth once
	if avg := testing.AllocsPerRun(100, op); avg != 0 {
		t.Fatalf("overflowed op allocates %.2f times per run after warm-up, want 0", avg)
	}
}
