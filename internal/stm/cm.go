package stm

import (
	"fmt"
	"runtime"
	"time"
)

// A ContentionManager decides what a thread does between an aborted
// transaction attempt and its retry. The transaction-lifecycle engine
// (Thread.AtomicMode) consults it after every abort and once at commit, so a
// policy can both shape the inter-attempt delay and maintain per-operation
// priority state.
//
// Policies must be safe for concurrent use by many threads: all mutable
// per-thread state (random streams, karma priority, statistics) lives on the
// *Thread passed in, never on the manager value itself, so a single manager
// instance can be shared by a whole STM domain.
type ContentionManager interface {
	// Name returns the policy's registry name ("suicide", "backoff", ...).
	Name() string
	// OnAbort runs after the retries-th aborted attempt of the current
	// operation (retries starts at 1). It typically stalls the thread for a
	// policy-specific delay before the lifecycle engine retries.
	OnAbort(th *Thread, retries int)
	// OnCommit runs when the operation finally commits; retries is the
	// number of aborted attempts the operation survived.
	OnCommit(th *Thread, retries int)
}

// Suicide returns the contention manager that aborts the losing transaction
// and retries it almost immediately: a tiny randomized spin (at most
// 2^min(retries-1,16) iterations) followed by one scheduler yield. This is
// bit-for-bit the retry behavior of the pre-forest engine, so experiment
// configurations that must reproduce the paper's single-domain runs select
// it explicitly.
func Suicide() ContentionManager { return suicideCM{} }

type suicideCM struct{}

func (suicideCM) Name() string { return "suicide" }

func (suicideCM) OnAbort(th *Thread, retries int) {
	a := retries - 1
	if a > 16 {
		a = 16
	}
	spin := int(th.nextRand() % uint64(1<<uint(a)))
	for i := 0; i < spin; i++ {
		// Pure CPU delay; the loop body must not be optimizable away.
		th.rngState += uint64(i)
	}
	runtime.Gosched()
}

func (suicideCM) OnCommit(*Thread, int) {}

// backoff delay parameters: the first retry waits up to backoffBase, each
// further retry doubles the window, capped at backoffMax. The cap keeps the
// worst case well under scheduler-timeslice granularity so a stalled thread
// never parks in the kernel.
const (
	backoffBase = 256 * time.Nanosecond
	backoffMax  = 64 * time.Microsecond
)

// Backoff returns the randomized-exponential-backoff contention manager, the
// default policy: after the n-th abort of an operation the thread stalls for
// a uniform random duration in [0, min(base·2^(n-1), max)), yielding the
// processor while it waits. Stall time is accounted in Stats.BackoffNanos.
func Backoff() ContentionManager { return backoffCM{} }

type backoffCM struct{}

func (backoffCM) Name() string { return "backoff" }

func (backoffCM) OnAbort(th *Thread, retries int) {
	th.stall(jitteredWindow(th, retries))
}

func (backoffCM) OnCommit(*Thread, int) {}

// Karma returns a Karma-style priority contention manager [Scherer &
// Scott, CSJP 2004, adapted]: a thread's karma is the transactional work
// (reads) it has invested in the operation currently being retried, and the
// exponential-backoff delay is divided by that priority. Operations that
// have already burned many reads across aborted attempts therefore retry
// almost immediately — they have the most to lose — while cheap operations
// concede the memory to them. Karma resets when the operation commits.
//
// The classical formulation lets a high-karma attacker abort a low-karma
// lock holder; this STM has no remote-abort primitive (lock holders always
// win), so priority acts purely on the retry delay.
func Karma() ContentionManager { return karmaCM{} }

// karmaScale converts invested reads into a delay divisor: every 64 reads of
// invested work roughly halves the wait.
const karmaScale = 64

type karmaCM struct{}

func (karmaCM) Name() string { return "karma" }

func (karmaCM) OnAbort(th *Thread, retries int) {
	th.karma = th.opReads
	th.stall(jitteredWindow(th, retries) / time.Duration(1+th.karma/karmaScale))
}

func (karmaCM) OnCommit(th *Thread, retries int) { th.karma = 0 }

// jitteredWindow draws a uniform random delay from the exponential window
// for the retries-th abort.
func jitteredWindow(th *Thread, retries int) time.Duration {
	w := backoffBase << uint(retries-1)
	if w > backoffMax || w <= 0 {
		w = backoffMax
	}
	return time.Duration(th.nextRand() % uint64(w))
}

// Managers lists the registered contention-manager names.
func Managers() []string { return []string{"suicide", "backoff", "karma"} }

// ManagerByName resolves a registry name to a policy instance.
func ManagerByName(name string) (ContentionManager, error) {
	switch name {
	case "suicide":
		return Suicide(), nil
	case "backoff", "":
		return Backoff(), nil
	case "karma":
		return Karma(), nil
	default:
		return nil, fmt.Errorf("stm: unknown contention manager %q (have %v)", name, Managers())
	}
}
