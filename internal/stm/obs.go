package stm

import "repro/internal/obs"

// RegisterObs registers this domain's live-scrapeable counters with an
// observability registry. labels is the rendered Prometheus label pairs for
// this domain's series (e.g. `shard="3"`), empty for an unlabeled
// single-domain registration. Collection runs entirely on the scrape path
// (summing the threads' atomic mirrors); the transactional hot path is
// untouched.
func (s *STM) RegisterObs(r *obs.Registry, labels string) {
	r.RegisterCollector(func(emit func(obs.Sample)) {
		ls := s.LiveStats()
		counter := func(name, help string, v uint64) {
			emit(obs.Sample{Name: name, Label: labels, Kind: obs.KindCounter, Help: help, Value: float64(v)})
		}
		counter("stm_commits_total", "Committed transactions.", ls.Commits)
		counter("stm_aborts_total", "Aborted transaction attempts.", ls.Aborts)
		counter("stm_retries_total", "Abort-to-retry transitions of the lifecycle engine and external coordinators.", ls.Retries)
		counter("stm_structural_commits_total", "Commits by structural (maintenance) threads.", ls.StructuralCommits)
		counter("stm_structural_aborts_total", "Aborts by structural (maintenance) threads.", ls.StructuralAborts)
		for c := AbortCause(0); c < NumAbortCauses; c++ {
			lbl := `cause="` + c.String() + `"`
			if labels != "" {
				lbl = labels + "," + lbl
			}
			emit(obs.Sample{Name: "stm_abort_cause_total", Label: lbl, Kind: obs.KindCounter,
				Help: "Aborted attempts by cause; sums to stm_aborts_total.", Value: float64(ls.AbortCauses[c])})
		}
	})
}
