package stm

import "runtime"

// abortSignal is the panic sentinel used to unwind an aborted transaction
// back to the Atomic retry loop.
var abortSignal = new(struct{ _ int })

// readEntry logs one invisible read: the word and the meta observed when the
// value was sampled. Validation succeeds while the word's meta is unchanged
// (or the word is write-locked by this very transaction over that version).
type readEntry struct {
	w   *Word
	ver uint64 // full meta value observed (unlocked, so bit 0 is clear)
}

// writeEntry buffers one transactional write. Under ETL (and at commit time
// under CTL) the entry also remembers the meta the lock replaced so an abort
// can restore it.
type writeEntry struct {
	w        *Word
	val      uint64
	prevMeta uint64
	locked   bool
}

// elasticWindow is the bounded buffer of an elastic transaction: the last
// two reads, enough for the hand-over-hand traversal pattern of search
// structures (E-STM's "cut" preserves only the immediately preceding reads).
const elasticWindow = 2

// CommitHook receives a callback after a transaction commits (see
// Tx.OnCommit). Implementations must be safe for concurrent use: hooks run
// on the committing thread, outside the transaction, with no locks held.
type CommitHook interface {
	// OnTxCommit is invoked once per registered (kind, a, b) triple after
	// the registering transaction's writes became visible.
	OnTxCommit(kind, a, b uint64)
}

// maxCommitHooks bounds the per-transaction hook buffer. Hooks are advisory
// (maintenance hints); registrations beyond the bound are silently dropped
// rather than allocating.
const maxCommitHooks = 4

// commitHookEntry is one registered post-commit callback.
type commitHookEntry struct {
	h          CommitHook
	kind, a, b uint64
}

// inlineReads/inlineWrites size the read and write sets embedded in the
// descriptor itself. They are sized so the operations of the paper's
// workloads (tree traversals recording a handful of reads, updates writing
// a few words) fit without ever calling the allocator; larger transactions
// overflow transparently onto heap-backed slices, which the descriptor then
// retains across attempts and operations. The AllocsPerRun gates in
// hotpath_test.go pin the in-budget case at zero allocations.
//
// inlineWrites stays at 8 even though the forest combiner's batch
// transactions routinely overflow it: a full batch (dozens of coalesced
// updates) spills to the heap-backed slice either way, and the descriptor
// retains that capacity, so a steady batch runner allocates once, not per
// batch. Growing the inline array to chase small batches was measured to
// cost more on the one-op hot path (a fatter descriptor across every
// traversal) than it saved the runner.
const (
	inlineReads  = 24
	inlineWrites = 8
)

// Tx is a transaction descriptor. It is owned by a Thread and reused across
// attempts and operations; user code receives it from Atomic/AtomicMode and
// must not retain it past the enclosing call.
type Tx struct {
	th   *Thread
	mode Mode
	rv   uint64 // read snapshot (validation timestamp)

	reads  []readEntry
	writes []writeEntry

	// wfilter is a 64-bit hash-OR membership filter over the write set's
	// word addresses; widx/widxN are the open-addressed index engaged above
	// wsScanMax entries. Together they make write-set lookup O(1) — see
	// wset.go.
	wfilter uint64
	widx    []widxEnt
	widxN   int

	// Elastic state: a transaction is "elastic" until its first write, after
	// which it is upgraded to a normal (CTL) transaction whose read set is
	// seeded with the window contents.
	window   [elasticWindow]readEntry
	windowN  int
	hasWrite bool

	// Post-commit hooks registered by the current attempt (Tx.OnCommit).
	// Discarded on abort, run exactly once after a successful commit.
	hooks  [maxCommitHooks]commitHookEntry
	nHooks int

	// preparedWV is the write version drawn at the lock point of a prepared
	// transaction (prepare()); finalizePrepared publishes with it. Drawing
	// the clock position at prepare — locks, then clock, then validation,
	// exactly commit()'s order — is what keeps the wv == rv+1 shortcut of
	// concurrent ordinary commits sound: any transaction that draws a later
	// position must validate in full and so observes the prepared locks.
	preparedWV uint64

	// onCommitted is the reliable post-commit callback (OnCommitted): unlike
	// the advisory OnCommit hint hooks it is a single slot that is never
	// dropped, and it receives the transaction's commit position. commitPos
	// is that position: the write version for transactions that published,
	// the read snapshot for read-only commits.
	onCommitted func(pos uint64)
	commitPos   uint64

	// readOnly marks a Snapshot descriptor (snapshot.go): Write panics, so a
	// long-lived read session can never acquire locks it has no commit path
	// to release.
	readOnly bool

	// Inline storage for the read and write sets; reads/writes alias these
	// arrays (via init) until an attempt overflows them. Kept at the end of
	// the descriptor so the scalar hot fields above share the leading cache
	// lines.
	readsInline  [inlineReads]readEntry
	writesInline [inlineWrites]writeEntry
}

// init points the descriptor's read and write sets at their inline storage.
// It runs once per descriptor — thread registration and snapshot-session
// creation — not per attempt: begin truncates the slices in place, so a set
// that overflowed onto the heap keeps its capacity for later operations.
func (tx *Tx) init(th *Thread) {
	tx.th = th
	tx.reads = tx.readsInline[:0]
	tx.writes = tx.writesInline[:0]
}

// begin resets the descriptor for a fresh attempt.
func (tx *Tx) begin(mode Mode) {
	tx.mode = mode
	tx.rv = tx.th.stm.clock.Load()
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	tx.wfilter = 0
	tx.widxN = 0 // stale index entries are cleared on the next engage
	tx.windowN = 0
	tx.hasWrite = false
	tx.nHooks = 0
	tx.onCommitted = nil
	tx.commitPos = 0
	tx.preparedWV = 0
}

// OnCommitted registers fn to be called exactly once with the transaction's
// commit position after this attempt commits: the write version its
// publication carries, or the read snapshot for a read-only commit. Unlike
// the advisory OnCommit hint hooks, the registration is reliable — a single
// slot, never dropped — which makes it the publication point for effects
// that must track every committed transaction (the durable layer's
// write-ahead log records). A later registration in the same attempt
// replaces the earlier one; an attempt that aborts discards it.
func (tx *Tx) OnCommitted(fn func(pos uint64)) { tx.onCommitted = fn }

// runOnCommitted fires the reliable post-commit callback, if registered.
func (tx *Tx) runOnCommitted() {
	if tx.onCommitted != nil {
		fn := tx.onCommitted
		tx.onCommitted = nil
		fn(tx.commitPos)
	}
}

// Snapshot returns the transaction's current read snapshot position: every
// read performed so far is consistent at this clock value. For a read-only
// transaction that runs to commit, the final Snapshot value is the cut the
// observed state belongs to — the durable layer's checkpointer records it as
// the shard's checkpoint position.
func (tx *Tx) Snapshot() uint64 { return tx.rv }

// OnCommit registers h to be called with (kind, a, b) after this transaction
// commits; a hook registered by an attempt that aborts is discarded with the
// attempt, which makes OnCommit the publication point for side effects that
// must only happen for committed transactions (the speculation-friendly
// tree's maintenance hints). Duplicate registrations within one attempt are
// folded, and registrations beyond a small fixed capacity are dropped — the
// mechanism is for advisory signals, not for reliable delivery.
func (tx *Tx) OnCommit(h CommitHook, kind, a, b uint64) {
	for i := 0; i < tx.nHooks; i++ {
		e := &tx.hooks[i]
		if e.h == h && e.kind == kind && e.a == a && e.b == b {
			return
		}
	}
	if tx.nHooks == len(tx.hooks) {
		return
	}
	tx.hooks[tx.nHooks] = commitHookEntry{h: h, kind: kind, a: a, b: b}
	tx.nHooks++
}

// runCommitHooks fires the registered hooks after a successful commit.
func (tx *Tx) runCommitHooks() {
	for i := 0; i < tx.nHooks; i++ {
		e := tx.hooks[i]
		e.h.OnTxCommit(e.kind, e.a, e.b)
	}
	tx.nHooks = 0
}

// Mode reports the mode of the running transaction.
func (tx *Tx) Mode() Mode { return tx.mode }

// Restart aborts the current attempt; Atomic will re-run the transaction
// from the beginning after backoff. Charged as an explicit abort in the
// cause taxonomy.
func (tx *Tx) Restart() { tx.abort(AbortExplicit) }

// abort rolls back eagerly acquired locks, counts the abort under its
// cause and unwinds.
func (tx *Tx) abort(cause AbortCause) {
	tx.releaseLocks()
	tx.th.noteAbort(cause)
	panic(abortSignal)
}

// releaseLocks restores the pre-lock meta of every write entry that holds a
// lock. Safe to call when no locks are held.
func (tx *Tx) releaseLocks() {
	for i := len(tx.writes) - 1; i >= 0; i-- {
		e := &tx.writes[i]
		if e.locked {
			e.w.meta.Store(e.prevMeta)
			e.locked = false
		}
	}
}

// Read performs a transactional read of w and returns its value. The read
// is invisible: it records the observed version and is validated lazily
// (TinySTM timestamp extension) and at commit. Read aborts the transaction
// (by panicking internally) when a consistent value cannot be obtained.
//
// The write-set filter test is spelled out inline (rather than calling
// findWrite) here and in URead/Write: the combined function would exceed
// the inlining budget, and the miss path — every read of a word this
// transaction has not written — must not pay a call.
func (tx *Tx) Read(w *Word) uint64 {
	tx.th.maybeYield()
	tx.th.stats.Reads++
	tx.th.opReads++
	if tx.wfilter&wordBit(w) != 0 {
		if e := tx.findWriteSlow(w); e != nil {
			return e.val
		}
	}
	for {
		v, meta, ok := w.fastSample()
		if !ok {
			v, meta = tx.sampleContended(w)
		}
		if metaVersion(meta) <= tx.rv {
			tx.recordRead(w, meta)
			return v
		}
		// The word was written after our snapshot: try a timestamp
		// extension. If every prior read is still valid we can advance the
		// snapshot instead of aborting.
		now := tx.th.stm.clock.Load()
		if !tx.validateReads() {
			tx.abort(AbortValidation)
		}
		tx.th.stats.Extensions++
		tx.rv = now
	}
}

// sampleContended is the cold continuation of a failed fastSample: spin
// with the full budget, yield once, spin again, abort if the word is still
// locked (under a single-core scheduler spinning forever would livelock).
func (tx *Tx) sampleContended(w *Word) (uint64, uint64) {
	v, meta, ok := w.sampleUnlocked(tx.th.maxSpin)
	if !ok {
		tx.th.stats.SpinExhausted++
		runtime.Gosched()
		v, meta, ok = w.sampleUnlocked(tx.th.maxSpin)
		if !ok {
			tx.th.stats.SpinExhausted++
			tx.abort(AbortSpinExhausted)
		}
	}
	return v, meta
}

// recordRead logs the read according to the transaction's mode.
func (tx *Tx) recordRead(w *Word, meta uint64) {
	if tx.mode == Elastic && !tx.hasWrite {
		tx.elasticRecord(w, meta)
		return
	}
	tx.reads = append(tx.reads, readEntry{w: w, ver: meta})
}

// URead is TinySTM's unit load: it returns the most recent value committed
// to w (or the value this transaction has buffered for w), spin-waiting
// while the word is locked, and records nothing. It is the lightweight read
// of paper §3.3 used by the optimized find traversal.
func (tx *Tx) URead(w *Word) uint64 {
	tx.th.maybeYield()
	tx.th.stats.UReads++
	if tx.wfilter&wordBit(w) != 0 {
		if e := tx.findWriteSlow(w); e != nil {
			return e.val
		}
	}
	if v, _, ok := w.fastSample(); ok {
		return v
	}
	return tx.uReadContended(w)
}

// uReadContended spins (with yields between budgets) until the word is
// observed unlocked; unit reads never abort on contention.
func (tx *Tx) uReadContended(w *Word) uint64 {
	for {
		v, _, ok := w.sampleUnlocked(tx.th.maxSpin)
		if ok {
			return v
		}
		tx.th.stats.SpinExhausted++
		runtime.Gosched()
	}
}

// Write performs a transactional write of v to w. Under CTL (and Elastic)
// the write is buffered until commit; under ETL the write lock is acquired
// immediately and a conflicting lock holder forces an abort.
func (tx *Tx) Write(w *Word, v uint64) {
	if tx.readOnly {
		panic("stm: Write inside a read-only Snapshot session")
	}
	tx.th.maybeYield()
	tx.th.stats.Writes++
	if tx.mode == Elastic && !tx.hasWrite {
		tx.elasticUpgrade()
	}
	if tx.wfilter&wordBit(w) != 0 {
		if e := tx.findWriteSlow(w); e != nil {
			e.val = v
			return
		}
	}
	if tx.mode == ETL {
		tx.writeETL(w, v)
		return
	}
	tx.writes = append(tx.writes, writeEntry{w: w, val: v})
	tx.noteWrite(w)
}

// writeETL acquires the write lock on w eagerly (encounter-time locking).
// A CAS can lose to a committing writer that republishes the word unlocked;
// like sampleUnlocked, the acquisition loop consumes a spin budget and then
// yields so a stream of such losses cannot monopolize the processor.
func (tx *Tx) writeETL(w *Word, v uint64) {
	lock := packLock(tx.th.slot)
	spins := 0
	for {
		m := w.meta.Load()
		if isLocked(m) {
			// Owned by a concurrent transaction (self-ownership is
			// impossible: findWrite would have found the entry).
			tx.abort(AbortLockWait)
		}
		if w.meta.CompareAndSwap(m, lock) {
			tx.writes = append(tx.writes, writeEntry{w: w, val: v, prevMeta: m, locked: true})
			tx.noteWrite(w)
			return
		}
		if spins++; spins >= tx.th.maxSpin {
			spins = 0
			tx.th.stats.SpinExhausted++
			runtime.Gosched()
		}
	}
}

// validateReads re-checks every logged read: the word must either carry the
// exact meta observed at read time, or be locked by this transaction over
// that same version.
func (tx *Tx) validateReads() bool {
	for i := range tx.reads {
		if !tx.validEntry(&tx.reads[i]) {
			return false
		}
	}
	if tx.mode == Elastic && !tx.hasWrite {
		for i := 0; i < tx.windowN; i++ {
			if !tx.validEntry(&tx.window[i]) {
				return false
			}
		}
	}
	return true
}

func (tx *Tx) validEntry(e *readEntry) bool {
	cur := e.w.meta.Load()
	if cur == e.ver {
		return true
	}
	if isLocked(cur) && lockOwner(cur) == tx.th.slot {
		if we := tx.findWrite(e.w); we != nil && we.locked && we.prevMeta == e.ver {
			return true
		}
	}
	return false
}

// commit attempts to make the transaction's writes visible atomically.
// It returns false (after rolling back) when validation fails, letting the
// Atomic loop retry.
//
// Clock protocol (a GV4/GV5 hybrid in TL2's terminology). With every write
// lock held, the committer loads the clock, c, and targets position
// wv = c+1. If its snapshot is still current (c == rv) it tries to advance
// the clock itself with a single CAS(c, c+1); success proves no transaction
// published between its snapshot and its lock point, so read validation is
// skipped — TL2's wv == rv+1 shortcut, with the CAS standing in for GV4's
// fetch-add. Every other committer adopts c+1 as its position WITHOUT a
// clock RMW of its own (the GV5-style draw); it advances the clock over wv
// with at most one guarded CAS and only THEN validates its read set in
// full. The advance doubles as the invariant keeper that a published
// version never exceeds the clock (Read's extension loop needs that to
// terminate). Under contention one RMW per position replaces one RMW per
// commit.
//
// Three orderings are load-bearing:
//
//   - the clock is loaded only AFTER the write locks are held (for ETL they
//     were taken during execution). A transaction that publishes at
//     position p has therefore held its locks since before the clock
//     reached p, so any transaction whose snapshot is ≥ p began after
//     those locks were taken and can only observe the locks or the
//     published values — never the overwritten ones. That is the whole
//     consistency argument for reads that are never revalidated
//     (read-only commits, the validation-skip fast path), and it is why
//     per-thread interval batching (drawing K positions ahead) would be
//     unsound here: a position consumed long after it was drawn breaks
//     "locks held since before the clock reached p".
//
//   - a slow-path committer advances the clock BEFORE validating its
//     reads. The fast path is only sound if every committer that holds
//     locks the fast committer failed to read past has already moved the
//     clock by the time the fast committer samples it: the fast committer
//     then either sees c != rv or loses its CAS, and in both cases falls
//     back to full validation, where it observes those locks. Validating
//     first would open a window — slow committer locks its writes,
//     validates (passing over words the fast committer is about to lock),
//     then both publish at the same position with mutually stale reads
//     (write skew). prepare() closes the same window for prepared
//     transactions with an eager fetch-add at the lock point.
//
//   - concurrent slow-path committers may share a position. Their write
//     sets are provably disjoint (all locks are held simultaneously) and
//     each validated its full read set under those locks, so they
//     serialize correctly at the shared position in either order; the
//     durable layer's replay sorts by position and tolerates the tie for
//     the same reason (disjoint writes commute).
func (tx *Tx) commit() bool {
	if len(tx.writes) == 0 {
		// Read-only transactions are already consistent: every read was
		// validated against rv at the time it was performed, and rv-era
		// values form a snapshot. Elastic read-only transactions validated
		// their window hand-over-hand.
		tx.commitPos = tx.rv
		tx.th.noteCommit()
		return true
	}
	if tx.mode != ETL {
		// Lazy acquirement: lock the write set now.
		lock := packLock(tx.th.slot)
		for i := range tx.writes {
			e := &tx.writes[i]
			m := e.w.meta.Load()
			if isLocked(m) || !e.w.meta.CompareAndSwap(m, lock) {
				tx.rollback(AbortLockWait)
				return false
			}
			e.prevMeta = m
			e.locked = true
		}
	}
	clock := &tx.th.stm.clock
	c := clock.Load() // after locks; see the protocol comment
	wv := c + 1
	// Elastic transactions always validate: their read set was cut and the
	// window entries were only ever checked hand-over-hand.
	fast := c == tx.rv && tx.mode != Elastic && clock.CompareAndSwap(c, wv)
	if !fast {
		// Guarded advance, BEFORE validation (see the protocol comment): the
		// clock must pass wv while our locks are held and before we re-check
		// our reads, so a racing fast-path committer either observes a clock
		// past its snapshot or loses its CAS — both force it into full
		// validation, where it sees our locks. A failed CAS means another
		// committer already moved the clock past c, so clock >= wv either
		// way — which also preserves the invariant that a published version
		// never exceeds the clock.
		if clock.Load() == c {
			clock.CompareAndSwap(c, wv)
		}
		if !tx.validateReads() {
			tx.rollback(AbortValidation)
			return false
		}
	}
	tx.commitPos = wv
	for i := range tx.writes {
		e := &tx.writes[i]
		e.w.val.Store(e.val)
	}
	newMeta := packVersion(wv)
	for i := range tx.writes {
		e := &tx.writes[i]
		e.w.meta.Store(newMeta)
		e.locked = false
	}
	tx.th.noteCommit()
	return true
}

// rollback releases locks and counts the failed attempt (commit-time abort)
// under its cause.
func (tx *Tx) rollback(cause AbortCause) {
	tx.releaseLocks()
	tx.th.noteAbort(cause)
}
