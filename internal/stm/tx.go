package stm

import "runtime"

// abortSignal is the panic sentinel used to unwind an aborted transaction
// back to the Atomic retry loop.
var abortSignal = new(struct{ _ int })

// readEntry logs one invisible read: the word and the meta observed when the
// value was sampled. Validation succeeds while the word's meta is unchanged
// (or the word is write-locked by this very transaction over that version).
type readEntry struct {
	w   *Word
	ver uint64 // full meta value observed (unlocked, so bit 0 is clear)
}

// writeEntry buffers one transactional write. Under ETL (and at commit time
// under CTL) the entry also remembers the meta the lock replaced so an abort
// can restore it.
type writeEntry struct {
	w        *Word
	val      uint64
	prevMeta uint64
	locked   bool
}

// elasticWindow is the bounded buffer of an elastic transaction: the last
// two reads, enough for the hand-over-hand traversal pattern of search
// structures (E-STM's "cut" preserves only the immediately preceding reads).
const elasticWindow = 2

// CommitHook receives a callback after a transaction commits (see
// Tx.OnCommit). Implementations must be safe for concurrent use: hooks run
// on the committing thread, outside the transaction, with no locks held.
type CommitHook interface {
	// OnTxCommit is invoked once per registered (kind, a, b) triple after
	// the registering transaction's writes became visible.
	OnTxCommit(kind, a, b uint64)
}

// maxCommitHooks bounds the per-transaction hook buffer. Hooks are advisory
// (maintenance hints); registrations beyond the bound are silently dropped
// rather than allocating.
const maxCommitHooks = 4

// commitHookEntry is one registered post-commit callback.
type commitHookEntry struct {
	h          CommitHook
	kind, a, b uint64
}

// Tx is a transaction descriptor. It is owned by a Thread and reused across
// attempts and operations; user code receives it from Atomic/AtomicMode and
// must not retain it past the enclosing call.
type Tx struct {
	th   *Thread
	mode Mode
	rv   uint64 // read snapshot (validation timestamp)

	reads  []readEntry
	writes []writeEntry

	// Elastic state: a transaction is "elastic" until its first write, after
	// which it is upgraded to a normal (CTL) transaction whose read set is
	// seeded with the window contents.
	window   [elasticWindow]readEntry
	windowN  int
	hasWrite bool

	// Post-commit hooks registered by the current attempt (Tx.OnCommit).
	// Discarded on abort, run exactly once after a successful commit.
	hooks  [maxCommitHooks]commitHookEntry
	nHooks int

	// preparedWV is the write version drawn at the lock point of a prepared
	// transaction (prepare()); finalizePrepared publishes with it. Drawing
	// the clock position at prepare — locks, then clock, then validation,
	// exactly commit()'s order — is what keeps the wv == rv+1 shortcut of
	// concurrent ordinary commits sound: any transaction that draws a later
	// position must validate in full and so observes the prepared locks.
	preparedWV uint64

	// onCommitted is the reliable post-commit callback (OnCommitted): unlike
	// the advisory OnCommit hint hooks it is a single slot that is never
	// dropped, and it receives the transaction's commit position. commitPos
	// is that position: the write version for transactions that published,
	// the read snapshot for read-only commits.
	onCommitted func(pos uint64)
	commitPos   uint64

	// readOnly marks a Snapshot descriptor (snapshot.go): Write panics, so a
	// long-lived read session can never acquire locks it has no commit path
	// to release.
	readOnly bool
}

// begin resets the descriptor for a fresh attempt.
func (tx *Tx) begin(mode Mode) {
	tx.mode = mode
	tx.rv = tx.th.stm.clock.Load()
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	tx.windowN = 0
	tx.hasWrite = false
	tx.nHooks = 0
	tx.onCommitted = nil
	tx.commitPos = 0
	tx.preparedWV = 0
}

// OnCommitted registers fn to be called exactly once with the transaction's
// commit position after this attempt commits: the write version its
// publication carries, or the read snapshot for a read-only commit. Unlike
// the advisory OnCommit hint hooks, the registration is reliable — a single
// slot, never dropped — which makes it the publication point for effects
// that must track every committed transaction (the durable layer's
// write-ahead log records). A later registration in the same attempt
// replaces the earlier one; an attempt that aborts discards it.
func (tx *Tx) OnCommitted(fn func(pos uint64)) { tx.onCommitted = fn }

// runOnCommitted fires the reliable post-commit callback, if registered.
func (tx *Tx) runOnCommitted() {
	if tx.onCommitted != nil {
		fn := tx.onCommitted
		tx.onCommitted = nil
		fn(tx.commitPos)
	}
}

// Snapshot returns the transaction's current read snapshot position: every
// read performed so far is consistent at this clock value. For a read-only
// transaction that runs to commit, the final Snapshot value is the cut the
// observed state belongs to — the durable layer's checkpointer records it as
// the shard's checkpoint position.
func (tx *Tx) Snapshot() uint64 { return tx.rv }

// OnCommit registers h to be called with (kind, a, b) after this transaction
// commits; a hook registered by an attempt that aborts is discarded with the
// attempt, which makes OnCommit the publication point for side effects that
// must only happen for committed transactions (the speculation-friendly
// tree's maintenance hints). Duplicate registrations within one attempt are
// folded, and registrations beyond a small fixed capacity are dropped — the
// mechanism is for advisory signals, not for reliable delivery.
func (tx *Tx) OnCommit(h CommitHook, kind, a, b uint64) {
	for i := 0; i < tx.nHooks; i++ {
		e := &tx.hooks[i]
		if e.h == h && e.kind == kind && e.a == a && e.b == b {
			return
		}
	}
	if tx.nHooks == len(tx.hooks) {
		return
	}
	tx.hooks[tx.nHooks] = commitHookEntry{h: h, kind: kind, a: a, b: b}
	tx.nHooks++
}

// runCommitHooks fires the registered hooks after a successful commit.
func (tx *Tx) runCommitHooks() {
	for i := 0; i < tx.nHooks; i++ {
		e := tx.hooks[i]
		e.h.OnTxCommit(e.kind, e.a, e.b)
	}
	tx.nHooks = 0
}

// Mode reports the mode of the running transaction.
func (tx *Tx) Mode() Mode { return tx.mode }

// Restart aborts the current attempt; Atomic will re-run the transaction
// from the beginning after backoff.
func (tx *Tx) Restart() { tx.abort() }

// abort rolls back eagerly acquired locks, counts the abort and unwinds.
func (tx *Tx) abort() {
	tx.releaseLocks()
	tx.th.stats.Aborts++
	panic(abortSignal)
}

// releaseLocks restores the pre-lock meta of every write entry that holds a
// lock. Safe to call when no locks are held.
func (tx *Tx) releaseLocks() {
	for i := len(tx.writes) - 1; i >= 0; i-- {
		e := &tx.writes[i]
		if e.locked {
			e.w.meta.Store(e.prevMeta)
			e.locked = false
		}
	}
}

// findWrite returns the write entry for w, if any. Write sets of the tree
// operations hold a handful of entries, so a linear scan beats any map.
func (tx *Tx) findWrite(w *Word) *writeEntry {
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].w == w {
			return &tx.writes[i]
		}
	}
	return nil
}

// Read performs a transactional read of w and returns its value. The read
// is invisible: it records the observed version and is validated lazily
// (TinySTM timestamp extension) and at commit. Read aborts the transaction
// (by panicking internally) when a consistent value cannot be obtained.
func (tx *Tx) Read(w *Word) uint64 {
	tx.th.maybeYield()
	tx.th.stats.Reads++
	tx.th.opReads++
	if e := tx.findWrite(w); e != nil {
		return e.val
	}
	for {
		v, meta, ok := w.sampleUnlocked(tx.th.stm.maxSpin)
		if !ok {
			// Word is locked by a concurrent writer. Under a single-core
			// scheduler spinning forever would livelock; yield once, then
			// abort if still locked.
			runtime.Gosched()
			v, meta, ok = w.sampleUnlocked(tx.th.stm.maxSpin)
			if !ok {
				tx.abort()
			}
		}
		if metaVersion(meta) <= tx.rv {
			tx.recordRead(w, meta)
			return v
		}
		// The word was written after our snapshot: try a timestamp
		// extension. If every prior read is still valid we can advance the
		// snapshot instead of aborting.
		now := tx.th.stm.clock.Load()
		if !tx.validateReads() {
			tx.abort()
		}
		tx.th.stats.Extensions++
		tx.rv = now
	}
}

// recordRead logs the read according to the transaction's mode.
func (tx *Tx) recordRead(w *Word, meta uint64) {
	if tx.mode == Elastic && !tx.hasWrite {
		tx.elasticRecord(w, meta)
		return
	}
	tx.reads = append(tx.reads, readEntry{w: w, ver: meta})
}

// URead is TinySTM's unit load: it returns the most recent value committed
// to w (or the value this transaction has buffered for w), spin-waiting
// while the word is locked, and records nothing. It is the lightweight read
// of paper §3.3 used by the optimized find traversal.
func (tx *Tx) URead(w *Word) uint64 {
	tx.th.maybeYield()
	tx.th.stats.UReads++
	if e := tx.findWrite(w); e != nil {
		return e.val
	}
	for {
		v, _, ok := w.sampleUnlocked(tx.th.stm.maxSpin)
		if ok {
			return v
		}
		runtime.Gosched()
	}
}

// Write performs a transactional write of v to w. Under CTL (and Elastic)
// the write is buffered until commit; under ETL the write lock is acquired
// immediately and a conflicting lock holder forces an abort.
func (tx *Tx) Write(w *Word, v uint64) {
	if tx.readOnly {
		panic("stm: Write inside a read-only Snapshot session")
	}
	tx.th.maybeYield()
	tx.th.stats.Writes++
	if tx.mode == Elastic && !tx.hasWrite {
		tx.elasticUpgrade()
	}
	if e := tx.findWrite(w); e != nil {
		e.val = v
		return
	}
	if tx.mode == ETL {
		tx.writeETL(w, v)
		return
	}
	tx.writes = append(tx.writes, writeEntry{w: w, val: v})
}

// writeETL acquires the write lock on w eagerly (encounter-time locking).
// A CAS can lose to a committing writer that republishes the word unlocked;
// like sampleUnlocked, the acquisition loop consumes a spin budget and then
// yields so a stream of such losses cannot monopolize the processor.
func (tx *Tx) writeETL(w *Word, v uint64) {
	lock := packLock(tx.th.slot)
	spins := 0
	for {
		m := w.meta.Load()
		if isLocked(m) {
			// Owned by a concurrent transaction (self-ownership is
			// impossible: findWrite would have found the entry).
			tx.abort()
		}
		if w.meta.CompareAndSwap(m, lock) {
			tx.writes = append(tx.writes, writeEntry{w: w, val: v, prevMeta: m, locked: true})
			return
		}
		if spins++; spins >= tx.th.stm.maxSpin {
			spins = 0
			runtime.Gosched()
		}
	}
}

// validateReads re-checks every logged read: the word must either carry the
// exact meta observed at read time, or be locked by this transaction over
// that same version.
func (tx *Tx) validateReads() bool {
	for i := range tx.reads {
		if !tx.validEntry(&tx.reads[i]) {
			return false
		}
	}
	if tx.mode == Elastic && !tx.hasWrite {
		for i := 0; i < tx.windowN; i++ {
			if !tx.validEntry(&tx.window[i]) {
				return false
			}
		}
	}
	return true
}

func (tx *Tx) validEntry(e *readEntry) bool {
	cur := e.w.meta.Load()
	if cur == e.ver {
		return true
	}
	if isLocked(cur) && lockOwner(cur) == tx.th.slot {
		if we := tx.findWrite(e.w); we != nil && we.locked && we.prevMeta == e.ver {
			return true
		}
	}
	return false
}

// commit attempts to make the transaction's writes visible atomically.
// It returns false (after rolling back) when validation fails, letting the
// Atomic loop retry.
func (tx *Tx) commit() bool {
	if len(tx.writes) == 0 {
		// Read-only transactions are already consistent: every read was
		// validated against rv at the time it was performed, and rv-era
		// values form a snapshot. Elastic read-only transactions validated
		// their window hand-over-hand.
		tx.commitPos = tx.rv
		tx.th.stats.Commits++
		return true
	}
	if tx.mode != ETL {
		// Lazy acquirement: lock the write set now.
		lock := packLock(tx.th.slot)
		for i := range tx.writes {
			e := &tx.writes[i]
			m := e.w.meta.Load()
			if isLocked(m) || !e.w.meta.CompareAndSwap(m, lock) {
				tx.rollback()
				return false
			}
			e.prevMeta = m
			e.locked = true
		}
	}
	wv := tx.th.stm.clock.Add(1)
	tx.commitPos = wv
	if wv != tx.rv+1 || tx.mode == Elastic {
		// Someone committed since our snapshot (or we hold a cut read set):
		// validate the reads.
		if !tx.validateReads() {
			tx.rollback()
			return false
		}
	}
	newMeta := packVersion(wv)
	for i := range tx.writes {
		e := &tx.writes[i]
		e.w.val.Store(e.val)
	}
	for i := range tx.writes {
		e := &tx.writes[i]
		e.w.meta.Store(newMeta)
		e.locked = false
	}
	tx.th.stats.Commits++
	return true
}

// rollback releases locks and counts the failed attempt (commit-time abort).
func (tx *Tx) rollback() {
	tx.releaseLocks()
	tx.th.stats.Aborts++
}
