package stm

// Elastic transactions (E-STM, Felber, Gramoli, Guerraoui, DISC 2009) relax
// the read set of search-structure traversals: instead of validating every
// read performed since the beginning of the transaction, an elastic
// transaction validates only a short window of immediately preceding reads
// (hand-over-hand) and *cuts* older reads, which can then no longer cause
// false conflicts. The first transactional write upgrades the transaction to
// a normal one whose read set is seeded with the current window, so the
// committing suffix retains full atomicity.
//
// This file implements that discipline on top of the CTL machinery.

// elasticRecord logs a read of an elastic transaction that has not written
// yet: validate the current window hand-over-hand, cut the oldest entry if
// the window is full, and append the new read.
func (tx *Tx) elasticRecord(w *Word, meta uint64) {
	for i := 0; i < tx.windowN; i++ {
		if !tx.validEntry(&tx.window[i]) {
			tx.abort(AbortValidation)
		}
	}
	if tx.windowN == elasticWindow {
		// Cut: the oldest read leaves the validated set forever.
		copy(tx.window[:], tx.window[1:tx.windowN])
		tx.windowN--
		tx.th.stats.ElasticCuts++
	}
	tx.window[tx.windowN] = readEntry{w: w, ver: meta}
	tx.windowN++
}

// elasticUpgrade converts the elastic prefix into a normal transaction at
// the first write: the window becomes the seed of the real read set and all
// subsequent reads are tracked normally.
func (tx *Tx) elasticUpgrade() {
	for i := 0; i < tx.windowN; i++ {
		if !tx.validEntry(&tx.window[i]) {
			tx.abort(AbortValidation)
		}
		tx.reads = append(tx.reads, tx.window[i])
	}
	tx.windowN = 0
	tx.hasWrite = true
}
