package stm

// Two-phase transaction support: a transaction attempt can be driven to a
// *prepared* state — reads validated, write locks acquired, writes still
// unpublished — and later either finalized (published) or dropped (rolled
// back). This is the STM-side half of the forest's cross-shard transaction
// coordinator (internal/ftx): the coordinator prepares one sub-transaction
// per participating shard, in ascending shard order, and finalizes them all
// only once every shard has reached its lock point.
//
// Correctness sketch. prepare() is exactly the first half of commit():
// commit-time lock acquirement over the write set, then the clock draw,
// then full read-set validation. A prepared transaction therefore holds
// every write lock it will ever need, so between prepare and finalize no
// concurrent transaction can read or overwrite any word the prepared
// transaction is about to publish (readers of a locked word spin briefly
// and abort; writers lose the lock CAS and abort). The transaction's
// serialization point is its lock point: all of its reads were
// simultaneously valid there, its clock position was drawn there (see
// prepare's comment for why drawing it any later breaks concurrent
// commits' validation-skip fast path), and its writes become visible
// later — published by finalize() with the lock-point version — under the
// protection of the held locks.

// Prepared is a transaction attempt held at its lock point. Exactly one of
// Finalize or Drop must be called, on the same goroutine that called
// Prepare; the owning Thread cannot start another transaction until then.
type Prepared struct {
	th   *Thread
	done bool
}

// Prepare runs fn once as a CTL transaction attempt on th and, instead of
// committing, holds the attempt prepared: reads validated, write locks
// acquired, writes buffered but unpublished. It returns (nil, false) when
// the attempt aborts — a validation failure, a lost lock race, or an
// explicit Tx.Restart — leaving no locks behind; Prepare itself never
// retries and never consults the contention manager (the caller owns the
// retry policy — see Thread.CoordinatedAbort).
//
// fn runs under the same contract as AtomicMode's fn: transactional
// accesses only, no side effects beyond locals, impossible observations
// answered with Tx.Restart. The operation accounting (pending flag,
// completed-operation counter, MaxOpReads) opened by Prepare is closed by
// Finalize or Drop, so the §3.4 garbage collector treats the whole
// prepared window as one in-flight operation and frees nothing the
// prepared transaction may still reference.
func (th *Thread) Prepare(fn func(*Tx)) (*Prepared, bool) {
	if th.inAtomic {
		panic("stm: Prepare inside a running transaction; compose by passing *Tx instead")
	}
	th.inAtomic = true
	th.pending.Store(true)
	th.opReads = 0
	tx := &th.tx
	tx.begin(CTL)
	if !th.runPrepareAttempt(tx, fn) {
		th.finishPreparedOp()
		return nil, false
	}
	return &Prepared{th: th}, true
}

// runPrepareAttempt executes one attempt of fn and tries to reach the lock
// point, converting the abort panic into a false return (the prepared-state
// analogue of runAttempt).
func (th *Thread) runPrepareAttempt(tx *Tx, fn func(*Tx)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == abortSignal {
				ok = false
				return
			}
			// A foreign panic (bug in user code) must not leave write
			// locks behind.
			tx.releaseLocks()
			panic(r)
		}
	}()
	fn(tx)
	return tx.prepare()
}

// finishPreparedOp closes the operation accounting opened by Prepare.
func (th *Thread) finishPreparedOp() {
	if th.opReads > th.stats.MaxOpReads {
		th.stats.MaxOpReads = th.opReads
	}
	th.completeOp()
	th.pending.Store(false)
	th.inAtomic = false
}

// Finalize publishes the prepared writes and releases the locks, completing
// the transaction. Registered commit hooks (Tx.OnCommit) fire now — a
// prepared-then-dropped attempt publishes nothing, exactly like an aborted
// Atomic attempt.
func (p *Prepared) Finalize() {
	if p.done {
		panic("stm: Finalize on a completed Prepared transaction")
	}
	p.done = true
	tx := &p.th.tx
	tx.finalizePrepared()
	tx.runCommitHooks()
	tx.runOnCommitted()
	p.th.finishPreparedOp()
}

// WriteVersion returns the clock position the prepared transaction's writes
// publish at (drawn at the lock point — see prepare). It is 0 for a
// prepared transaction with an empty write set, which publishes nothing.
// The cross-shard coordinator reads it before Finalize to stamp the shard's
// share of a durable commit record.
func (p *Prepared) WriteVersion() uint64 { return p.th.tx.preparedWV }

// Drop aborts the prepared transaction: locks are released with their
// pre-lock metadata restored, the buffered writes are discarded, and the
// attempt is counted as an abort.
func (p *Prepared) Drop() {
	if p.done {
		panic("stm: Drop on a completed Prepared transaction")
	}
	p.done = true
	tx := &p.th.tx
	tx.releaseLocks()
	tx.nHooks = 0
	p.th.noteAbort(AbortCoordinated)
	p.th.finishPreparedOp()
}

// CoordinatedAbort charges one abort→retry transition to the thread and
// consults the domain's contention manager, exactly as the transaction-
// lifecycle engine does between attempts of an Atomic operation. External
// transaction coordinators (the cross-shard ftx layer) call it when a
// multi-domain attempt fails, so coordinator retries obey the same
// pluggable policy — and surface in the same Stats counters — as
// single-domain retries.
func (th *Thread) CoordinatedAbort(retries int) {
	th.noteRetry()
	th.stm.cm.OnAbort(th, retries)
}

// prepare drives the attempt to its lock point: acquire the write locks
// (commit-time locking), draw the transaction's clock position, then
// validate the full read set — the same lock→clock→validate order as
// commit(). On failure the attempt is rolled back and counted as an abort.
//
// Two details differ from commit and both are load-bearing:
//
//   - prepare always validates; publication happens later, so the
//     validation-skip fast path of commit() does not apply to the
//     prepared transaction itself.
//   - the write version is drawn NOW, with an eager fetch-add, not at
//     finalize — and deliberately NOT with commit()'s lazy shared draw. A
//     prepared transaction holds locks across an extended window; if the
//     clock did not move at the lock point, a concurrent ordinary commit
//     could still find clock == rv, win its CAS, skip validation, and
//     never observe the prepared locks — committing a stale read of a
//     word the prepared transaction is about to overwrite (a write-skew
//     that loses the prepared write; the cross-shard oracle catches
//     exactly this against the optimized tree's copy-on-rotate). The
//     fetch-add at the lock point restores the TL2 invariant behind the
//     fast path: every write the prepared transaction will publish is
//     anchored to a clock position taken while its locks were already
//     held, so any transaction committing at a later position validates
//     in full and aborts on those locks. One RMW per prepared shard
//     transaction is irrelevant next to the coordination it buys.
func (tx *Tx) prepare() bool {
	lock := packLock(tx.th.slot)
	for i := range tx.writes {
		e := &tx.writes[i]
		m := e.w.meta.Load()
		if isLocked(m) || !e.w.meta.CompareAndSwap(m, lock) {
			tx.rollback(AbortLockWait)
			return false
		}
		e.prevMeta = m
		e.locked = true
	}
	if len(tx.writes) > 0 {
		tx.preparedWV = tx.th.stm.clock.Add(1)
	}
	if !tx.validateReads() {
		tx.rollback(AbortValidation)
		return false
	}
	tx.th.stats.Prepares++
	return true
}

// finalizePrepared is the publication half of commit, run on a transaction
// whose prepare already succeeded: publish values, then release the locks
// by publishing the metadata carrying the lock-point write version.
func (tx *Tx) finalizePrepared() {
	if len(tx.writes) == 0 {
		tx.commitPos = tx.rv
		tx.th.noteCommit()
		return
	}
	tx.commitPos = tx.preparedWV
	newMeta := packVersion(tx.preparedWV)
	for i := range tx.writes {
		e := &tx.writes[i]
		e.w.val.Store(e.val)
	}
	for i := range tx.writes {
		e := &tx.writes[i]
		e.w.meta.Store(newMeta)
		e.locked = false
	}
	tx.th.noteCommit()
}
