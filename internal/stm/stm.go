// Package stm implements a word-based software transactional memory in the
// style of TinySTM [Felber, Fetzer, Riegel, PPoPP 2008] and TL2, providing
// the substrate required by the speculation-friendly binary search tree of
// Crain, Gramoli and Raynal (PPoPP 2012) and by the baseline transactional
// trees it is evaluated against.
//
// The engine supports the three synchronization algorithms used in the
// paper's evaluation:
//
//   - CTL: commit-time locking (lazy acquirement, TinySTM-CTL). Writes are
//     buffered and write locks are taken only at commit.
//   - ETL: encounter-time locking (eager acquirement, TinySTM-ETL). A write
//     lock is taken at the first write to a word and held until commit.
//   - Elastic: elastic transactions (E-STM) [Felber, Gramoli, Guerraoui,
//     DISC 2009]. Before its first write a transaction validates only a
//     small hand-over-hand window of trailing reads and "cuts" older reads
//     from its read set; after the first write it behaves like CTL.
//
// In every mode transactions use invisible reads validated against a global
// version clock, and the optional URead ("unit read", TinySTM's unit load)
// returns the latest committed value of a word without recording anything in
// the read set. URead is the explicit-call extension exercised by the
// optimized speculation-friendly tree (paper §3.3).
//
// Transactional data lives in Word values (a 64-bit value guarded by a
// versioned lock). All accesses go through atomic operations, so programs
// built on this package are free of data races in the sense of the Go memory
// model even while the STM protocol itself tolerates concurrent access.
//
// Aborts are delivered by panicking with an internal sentinel that the
// Thread.Atomic retry loop recovers; user code inside a transaction simply
// calls Read/Write/URead as straight-line code, mirroring the pseudocode of
// the paper.
package stm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Mode selects the synchronization algorithm used by a transaction.
type Mode int

const (
	// CTL is commit-time locking (lazy acquirement), the TinySTM-CTL
	// configuration used for the paper's main experiments (Table 1, Fig. 3).
	CTL Mode = iota
	// ETL is encounter-time locking (eager acquirement), the TinySTM-ETL
	// configuration of Fig. 4 (right).
	ETL
	// Elastic implements elastic transactions (E-STM), the TM of
	// Fig. 4 (left) and Fig. 5(a).
	Elastic
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case CTL:
		return "CTL"
	case ETL:
		return "ETL"
	case Elastic:
		return "Elastic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// cacheLinePad is one cache line (64 bytes on every architecture this
// package targets) of padding. Hot fields that other goroutines write — or
// that this goroutine writes while others read neighbours — are fenced with
// a pad on both sides, because Go guarantees nothing about the line a struct
// starts on.
type cacheLinePad struct{ _ [8]uint64 }

// STM is a transactional-memory domain: a global version clock plus the set
// of threads registered to run transactions against it. Distinct STM
// instances are fully independent; Words must only ever be accessed through
// transactions of a single STM instance.
//
// Field layout is deliberate: the clock is the single most write-contended
// word in the domain (every writing commit advances it, every begin reads
// it), so it owns a cache line; the read-mostly configuration that every
// transactional access consults must never share that line, or each commit
// would invalidate every thread's cached copy of the config.
type STM struct {
	_     cacheLinePad
	clock atomic.Uint64
	_     cacheLinePad

	// Read-mostly configuration: written by New, read-only afterwards.
	defaultMode Mode

	// cm is the contention manager consulted by the transaction-lifecycle
	// engine between an abort and the retry. Shared by all threads of the
	// domain; policies keep per-thread state on the Thread.
	cm ContentionManager

	// maxSpin bounds the number of times a unit read re-samples a locked
	// word before yielding the processor. Threads cache it at registration
	// (Thread.maxSpin); it lives here as the domain-level knob.
	maxSpin int

	// yieldEvery > 0 makes every thread yield the processor after that
	// many transactional accesses. On hosts with fewer cores than worker
	// threads this simulates the transaction overlap a multicore testbed
	// produces naturally: without it, goroutines on one core serialize and
	// conflicts — the phenomenon the paper measures — almost never occur.
	// Cached on the Thread at registration like maxSpin.
	yieldEvery int

	// Registration state: touched only by NewThread/Threads, cold.
	mu      sync.Mutex
	threads []*Thread
}

// Option configures an STM instance.
type Option func(*STM)

// WithMode sets the default transaction mode used by Thread.Atomic.
func WithMode(m Mode) Option { return func(s *STM) { s.defaultMode = m } }

// WithYield makes every thread call runtime.Gosched after every n
// transactional accesses (0 disables). It exists to reproduce multicore
// transaction overlap on hosts with few cores; see the field comment.
func WithYield(n int) Option { return func(s *STM) { s.yieldEvery = n } }

// WithContentionManager selects the abort→retry policy used by the
// transaction-lifecycle engine (default Backoff; nil is ignored). Use
// Suicide to reproduce the pre-forest engine's behavior exactly.
func WithContentionManager(cm ContentionManager) Option {
	return func(s *STM) {
		if cm != nil {
			s.cm = cm
		}
	}
}

// New creates an empty STM domain with the version clock at zero.
func New(opts ...Option) *STM {
	s := &STM{defaultMode: CTL, maxSpin: 64, cm: Backoff()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// DefaultMode reports the mode used by Thread.Atomic.
func (s *STM) DefaultMode() Mode { return s.defaultMode }

// ContentionManager reports the domain's abort→retry policy.
func (s *STM) ContentionManager() ContentionManager { return s.cm }

// Now returns the current value of the global version clock. It is exported
// for tests and instrumentation only.
func (s *STM) Now() uint64 { return s.clock.Load() }

// NewThread registers a new transactional thread. Each concurrent goroutine
// running transactions must own a distinct Thread; Threads are not safe for
// concurrent use by multiple goroutines.
func (s *STM) NewThread() *Thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	th := &Thread{
		stm:  s,
		slot: uint64(len(s.threads) + 1), // slot 0 is reserved as "no owner"
		// Cache the per-access config on the thread: maxSpin/yieldEvery are
		// consulted on every transactional access, and loading them through
		// the STM pointer costs an extra dependent cache line per access.
		maxSpin:    s.maxSpin,
		yieldEvery: s.yieldEvery,
	}
	th.tx.init(th)
	s.threads = append(s.threads, th)
	return th
}

// Threads returns a snapshot of all registered threads. The maintenance
// thread uses it to implement the paper's §3.4 garbage-collection epoch
// scheme (per-thread pending flag and completed-operation counter).
func (s *STM) Threads() []*Thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Thread, len(s.threads))
	copy(out, s.threads)
	return out
}

// TotalStats sums the statistics of every registered thread.
func (s *STM) TotalStats() Stats {
	var t Stats
	for _, th := range s.Threads() {
		t.Add(th.Stats())
	}
	return t
}

// LiveStats is the subset of Stats that can be read race-free while the
// domain's threads are running: each thread publishes these counters with
// atomic stores right after its plain owner-local bump (see
// Thread.noteCommit). The counters are individually current; as with any
// live scrape they are not mutually transactional.
type LiveStats struct {
	Commits           uint64
	Aborts            uint64
	Retries           uint64
	AbortCauses       [NumAbortCauses]uint64
	StructuralCommits uint64
	StructuralAborts  uint64
}

// Add accumulates o into s.
func (s *LiveStats) Add(o LiveStats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Retries += o.Retries
	for i := range s.AbortCauses {
		s.AbortCauses[i] += o.AbortCauses[i]
	}
	s.StructuralCommits += o.StructuralCommits
	s.StructuralAborts += o.StructuralAborts
}

// LiveStats sums the live-published counters of every registered thread.
// Unlike TotalStats it is safe to call at any time, from any goroutine,
// without quiescing the domain — it is the scrape path of the
// observability layer.
func (s *STM) LiveStats() LiveStats {
	var t LiveStats
	for _, th := range s.Threads() {
		t.Add(th.liveStats())
	}
	return t
}
