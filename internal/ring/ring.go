// Package ring provides a bounded lock-free multi-producer multi-consumer
// queue (Vyukov's bounded MPMC ring), generic over the element type. It is
// the shared submission substrate of the repository's two producer/consumer
// fast paths: the sftree maintenance hint queues (many committing
// application threads, one externally-serialized maintenance driver) and
// the forest's per-shard op combiner (many submitting handles, one
// CAS-elected batch runner).
//
// Each slot carries a sequence word. A producer claims a slot by CAS on the
// enqueue counter and publishes the element by advancing the slot's
// sequence; a consumer symmetrically claims via the dequeue counter and
// recycles the slot for the ring's next lap. Push fails (returns false)
// when the ring is full and Pop when it is empty — the ring never blocks
// and never allocates after New.
package ring

import "sync/atomic"

// cell is one slot of the ring: the element and the sequence word that
// states which lap of the ring the slot currently belongs to.
type cell[T any] struct {
	seq atomic.Uint64
	v   T
}

// Ring is a bounded MPMC queue. The zero value is not usable; create with
// New. Peek is the one operation that needs external serialization of the
// consumer side; Push/Pop/Size are safe from any number of goroutines.
type Ring[T any] struct {
	mask uint64
	enq  atomic.Uint64
	deq  atomic.Uint64
	buf  []cell[T]
}

// New creates a ring with the given capacity rounded up to a power of two
// (minimum 1).
func New[T any](capacity int) *Ring[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	q := &Ring[T]{mask: uint64(n - 1), buf: make([]cell[T], n)}
	for i := range q.buf {
		q.buf[i].seq.Store(uint64(i))
	}
	return q
}

// Cap reports the ring's capacity (the rounded power of two).
func (q *Ring[T]) Cap() int { return len(q.buf) }

// Push enqueues v, returning false when the ring is full.
func (q *Ring[T]) Push(v T) bool {
	pos := q.enq.Load()
	for {
		cell := &q.buf[pos&q.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos:
			if q.enq.CompareAndSwap(pos, pos+1) {
				cell.v = v
				cell.seq.Store(pos + 1)
				return true
			}
			pos = q.enq.Load()
		case seq < pos:
			return false // full: the consumer has not freed this slot yet
		default:
			pos = q.enq.Load()
		}
	}
}

// Peek returns the element at the front without dequeuing it. It is only
// meaningful on an externally-serialized consumer side (e.g. the single
// maintenance driver of a hint queue): no other goroutine may pop the
// peeked cell, and producers never touch a cell whose sequence marks it
// filled.
func (q *Ring[T]) Peek() (T, bool) {
	pos := q.deq.Load()
	cell := &q.buf[pos&q.mask]
	if cell.seq.Load() == pos+1 {
		return cell.v, true
	}
	var zero T
	return zero, false
}

// Pop dequeues one element, returning ok=false when the ring is empty.
func (q *Ring[T]) Pop() (T, bool) {
	pos := q.deq.Load()
	for {
		cell := &q.buf[pos&q.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos+1:
			if q.deq.CompareAndSwap(pos, pos+1) {
				v := cell.v
				cell.seq.Store(pos + q.mask + 1)
				return v, true
			}
			pos = q.deq.Load()
		case seq < pos+1:
			var zero T
			return zero, false
		default:
			pos = q.deq.Load()
		}
	}
}

// Size estimates the number of queued elements (exact when quiescent).
func (q *Ring[T]) Size() int {
	e, d := q.enq.Load(), q.deq.Load()
	if e <= d {
		return 0
	}
	return int(e - d)
}
