package ring

import (
	"sync"
	"testing"
)

func TestFIFOAndCapacity(t *testing.T) {
	q := New[int](5) // rounds up to 8
	if q.Cap() != 8 {
		t.Fatalf("Cap() = %d, want 8", q.Cap())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty ring succeeded")
	}
	for i := 0; i < 8; i++ {
		if !q.Push(i) {
			t.Fatalf("Push %d failed below capacity", i)
		}
	}
	if q.Push(99) {
		t.Fatal("Push succeeded on a full ring")
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("Peek = (%d, %t), want (0, true)", v, ok)
	}
	for i := 0; i < 8; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %t), want (%d, true)", v, ok, i)
		}
	}
	if q.Size() != 0 {
		t.Fatalf("Size = %d after full drain, want 0", q.Size())
	}
}

func TestWrapAround(t *testing.T) {
	q := New[uint64](4)
	var want uint64
	for lap := 0; lap < 10; lap++ {
		for i := 0; i < 3; i++ {
			if !q.Push(uint64(lap*3 + i)) {
				t.Fatalf("lap %d push %d failed", lap, i)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.Pop()
			if !ok || v != want {
				t.Fatalf("lap %d: Pop = (%d, %t), want (%d, true)", lap, v, ok, want)
			}
			want++
		}
	}
}

// TestMPMC hammers the ring from many producers and many consumers,
// checking nothing is duplicated, invented or lost.
func TestMPMC(t *testing.T) {
	q := New[uint64](64)
	const producers = 4
	const consumers = 2
	const perProducer = 20000
	var wg sync.WaitGroup
	var pushed [producers]uint64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if q.Push(uint64(p*perProducer + i)) {
					pushed[p]++
				}
			}
		}(p)
	}
	doneProducing := make(chan struct{})
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var popped uint64
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Pop()
				if ok {
					mu.Lock()
					if seen[v] {
						t.Errorf("duplicate element %d", v)
					}
					seen[v] = true
					popped++
					mu.Unlock()
					continue
				}
				select {
				case <-doneProducing:
					if _, ok := q.Pop(); !ok {
						return
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(doneProducing)
	cwg.Wait()
	// Final drain from one goroutine for anything the racing exits left.
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Errorf("duplicate element %d", v)
		}
		seen[v] = true
		popped++
	}
	var total uint64
	for p := 0; p < producers; p++ {
		total += pushed[p]
	}
	if popped != total {
		t.Fatalf("popped %d != pushed %d", popped, total)
	}
}
