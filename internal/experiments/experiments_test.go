package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyOpts keeps each experiment's smoke test fast: minimal thread counts
// and millisecond cells. The point of these tests is that every experiment
// runs end to end and emits the expected row structure, not the numbers.
func tinyOpts(buf *bytes.Buffer) Opts {
	return Opts{
		Out:          buf,
		Scale:        Quick,
		Threads:      []int{1, 2},
		Duration:     10 * time.Millisecond,
		Seed:         7,
		KeyRange:     1 << 8, // keep per-cell fill negligible
		VacRelations: 48,
		VacBaseTx:    96,
	}
}

func TestTable1Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "AVLtree", "RBtree", "SFtree", "Opt SFtree", "50%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestFig3Runs(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOpts(&buf)
	if err := Fig3(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"normal workload", "biased workload", "5% updates", "20% updates", "NRtree"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestFig4Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E-STM") || !strings.Contains(out, "TinySTM-ETL") {
		t.Fatalf("missing TM sections:\n%s", out)
	}
}

func TestFig5aRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5a(tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 5(a)", "Elastic speedup", "mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestFig5bRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5b(tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 5(b)", "1% move", "10% move"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestFig6Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("vacation macro-benchmark")
	}
	var buf bytes.Buffer
	o := tinyOpts(&buf)
	if err := Fig6(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"high contention", "low contention", "sequential baseline", "RBtree speedup", "[rotations]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestOptsDefaults(t *testing.T) {
	var buf bytes.Buffer
	o := Opts{Out: &buf}
	o.defaults()
	if len(o.Threads) == 0 || o.Duration == 0 || o.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	full := Opts{Out: &buf, Scale: Full}
	full.defaults()
	if full.Threads[len(full.Threads)-1] != 48 {
		t.Fatal("full scale should sweep to 48 threads as the paper does")
	}
}

func TestOptsRequiresOut(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing Out must panic")
		}
	}()
	o := Opts{}
	o.defaults()
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	tb := &table{header: []string{"a", "long-header"}}
	tb.addRow("x", "1")
	tb.addRow("yyyy", "2")
	tb.write(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("separator misaligned: %q vs %q", lines[0], lines[1])
	}
}
