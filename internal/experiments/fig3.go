package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/stm"
	"repro/internal/trees"
)

// Fig3 reproduces Figure 3: throughput (operations per microsecond) of the
// four trees — RBtree, SFtree, NRtree, AVLtree — as the thread count grows,
// for effective update ratios 5/10/15/20%, under the normal (uniform) and
// biased workloads, on TinySTM-CTL with an initialized set of 2^12
// elements.
//
// The paper's headline shapes: the SF tree scales best and beats RB by up
// to 1.5x and AVL by up to 1.6x; the NR tree matches SF under the uniform
// workload but collapses towards a linear structure under bias.
func Fig3(o Opts) error {
	o.defaults()
	kinds := []trees.Kind{trees.RB, trees.SF, trees.NR, trees.AVL}
	updates := []int{5, 10, 15, 20}
	for _, biased := range []bool{false, true} {
		name := "normal"
		if biased {
			name = "biased"
		}
		for _, u := range updates {
			fmt.Fprintf(o.Out, "Figure 3 (%s workload, %d%% updates): throughput in ops/µs\n\n", name, u)
			t := &table{header: append([]string{"threads"}, labels(kinds)...)}
			for _, th := range sortedCopy(o.Threads) {
				row := []string{fmt.Sprintf("%d", th)}
				for _, kind := range kinds {
					res := bench.Run(bench.Options{
						Kind:     kind,
						Mode:     stm.CTL,
						Threads:  th,
						Duration: o.Duration,
						Workload: bench.Workload{
							KeyRange:      o.keyRange(1 << 13),
							UpdatePercent: u,
							Biased:        biased,
							Effective:     true,
						},
						Seed:       o.Seed,
						YieldEvery: o.yieldEvery(),
					})
					row = append(row, fmtF(res.Throughput))
				}
				t.addRow(row...)
			}
			t.write(o.Out)
			fmt.Fprintln(o.Out)
		}
	}
	return nil
}

func labels(kinds []trees.Kind) []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.Label()
	}
	return out
}
