package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/stm"
	"repro/internal/trees"
)

// Fig4 reproduces Figure 4, the portability experiment (§5.3): the same
// tree comparison run (left) on E-STM — elastic transactions, on a 2^16
// tree where the paper found E-STM efficient — and (right) on TinySTM-ETL,
// eager acquirement. The paper's claim: the speculation-friendly tree wins
// under every TM algorithm, so its benefit is TM-independent.
func Fig4(o Opts) error {
	o.defaults()
	kinds := []trees.Kind{trees.RB, trees.SF, trees.AVL}
	configs := []struct {
		name     string
		mode     stm.Mode
		keyRange uint64
	}{
		{"E-STM (elastic transactions, 2^16 tree)", stm.Elastic, 1 << 17},
		{"TinySTM-ETL (eager acquirement, 2^12 tree)", stm.ETL, 1 << 13},
	}
	for _, cfg := range configs {
		fmt.Fprintf(o.Out, "Figure 4 — %s, 10%% updates: throughput in ops/µs\n\n", cfg.name)
		t := &table{header: append([]string{"threads"}, labels(kinds)...)}
		for _, th := range sortedCopy(o.Threads) {
			row := []string{fmt.Sprintf("%d", th)}
			for _, kind := range kinds {
				res := bench.Run(bench.Options{
					Kind:     kind,
					Mode:     cfg.mode,
					Threads:  th,
					Duration: o.Duration,
					Workload: bench.Workload{
						KeyRange:      o.keyRange(cfg.keyRange),
						UpdatePercent: 10,
						Effective:     true,
					},
					Seed:       o.Seed,
					YieldEvery: o.yieldEvery(),
				})
				row = append(row, fmtF(res.Throughput))
			}
			t.addRow(row...)
		}
		t.write(o.Out)
		fmt.Fprintln(o.Out)
	}
	return nil
}
