// Package experiments regenerates every table and figure of the paper's
// evaluation section (§2 Table 1, §5.2 Fig. 3, §5.3 Fig. 4 and Fig. 5(a),
// §5.4 Fig. 5(b), §5.5 Fig. 6) on top of the micro-benchmark harness and
// the vacation application. Each experiment prints rows shaped like the
// paper's so shape comparisons (who wins, by what factor, where crossovers
// fall) are immediate; EXPERIMENTS.md records paper-vs-measured.
//
// The cmd/experiments binary is a thin CLI over this package, and the
// root-level bench_test.go exposes one testing.B benchmark per experiment.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Scale selects how heavy the runs are. Quick keeps every experiment under
// a few minutes on a laptop core; Full approaches the paper's parameters
// (within the reach of the host: the paper used a 48-core Opteron).
type Scale int

// Available scales.
const (
	Quick Scale = iota
	Full
)

// Opts are shared experiment options.
type Opts struct {
	Out      io.Writer
	Scale    Scale
	Threads  []int         // thread counts to sweep (default scale-dependent)
	Duration time.Duration // per-cell duration (default scale-dependent)
	Seed     int64

	// KeyRange overrides the micro-benchmark key universe (0 = each
	// figure's paper-faithful default). Mainly for smoke tests and fast
	// exploratory sweeps.
	KeyRange uint64
	// VacRelations and VacBaseTx override the vacation table size and base
	// transaction count (0 = scale defaults).
	VacRelations int
	VacBaseTx    int

	// YieldEvery configures the STM interleaving simulation for the
	// micro-benchmarks (bench.Options.YieldEvery). -1 disables it; 0 picks
	// a default that enables it only when the host has fewer processors
	// than the largest swept thread count (without it, transactions on an
	// under-provisioned host serialize and the contention the paper
	// measures never materializes).
	YieldEvery int
}

// yieldEvery resolves the knob against the host's processor count.
func (o *Opts) yieldEvery() int {
	switch {
	case o.YieldEvery < 0:
		return 0
	case o.YieldEvery > 0:
		return o.YieldEvery
	default:
		maxTh := 0
		for _, t := range o.Threads {
			if t > maxTh {
				maxTh = t
			}
		}
		if runtime.GOMAXPROCS(0) < maxTh {
			return 8
		}
		return 0
	}
}

// keyRange returns the override or the figure's default.
func (o *Opts) keyRange(def uint64) uint64 {
	if o.KeyRange != 0 {
		return o.KeyRange
	}
	return def
}

func (o *Opts) defaults() {
	if o.Out == nil {
		panic("experiments: Opts.Out must be set")
	}
	if len(o.Threads) == 0 {
		if o.Scale == Full {
			o.Threads = []int{1, 2, 4, 8, 16, 24, 32, 40, 48}
		} else {
			o.Threads = []int{1, 2, 4, 8}
		}
	}
	if o.Duration == 0 {
		if o.Scale == Full {
			o.Duration = 2 * time.Second
		} else {
			o.Duration = 250 * time.Millisecond
		}
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// table is a minimal aligned-text table writer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
