package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/stm"
	"repro/internal/trees"
	"repro/internal/vacation"
)

// Fig6 reproduces Figure 6, the STAMP vacation macro-benchmark (§5.5):
// execution time and speedup over the bare sequential implementation of the
// travel-reservation application built on the red-black tree (STAMP's
// default), the optimized speculation-friendly tree and the
// no-restructuring tree, under the two official contention presets and with
// 1x, 8x and 16x the base transaction count.
//
// It also reports the §5.5 rotation-count comparison: on the paper's
// machine the red-black vacation triggered ≈130k rotations where the
// speculation-friendly one needed ≈50k.
func Fig6(o Opts) error {
	o.defaults()
	relations, baseTx := 1024, 4096
	if o.Scale == Full {
		relations, baseTx = 1<<14, 1<<16
	}
	if o.VacRelations > 0 {
		relations = o.VacRelations
	}
	if o.VacBaseTx > 0 {
		baseTx = o.VacBaseTx
	}
	kinds := []trees.Kind{trees.RB, trees.SFOpt, trees.NR}
	presets := []struct {
		name string
		mk   func(rel, tx int) vacation.Config
	}{
		{"high contention", vacation.HighContention},
		{"low contention", vacation.LowContention},
	}
	for _, mult := range []int{1, 8, 16} {
		for _, preset := range presets {
			cfg := preset.mk(relations, baseTx*mult)
			fmt.Fprintf(o.Out, "Figure 6 — vacation %s, %dx transactions (%d txs, %d relations)\n\n",
				preset.name, mult, cfg.NumTransactions, cfg.NumRelations)
			seqDur := runVacationSeq(cfg, o.Seed)
			fmt.Fprintf(o.Out, "sequential baseline: %.3fs\n\n", seqDur.Seconds())
			t := &table{header: append([]string{"threads"}, func() []string {
				h := make([]string, 0, 2*len(kinds))
				for _, k := range kinds {
					h = append(h, k.Label()+" speedup", k.Label()+" dur(s)")
				}
				return h
			}()...)}
			for _, th := range sortedCopy(o.Threads) {
				row := []string{fmt.Sprintf("%d", th)}
				for _, kind := range kinds {
					dur, rot := runVacation(kind, cfg, th, o.Seed, o.yieldEvery())
					row = append(row, fmtF(seqDur.Seconds()/dur.Seconds()), fmt.Sprintf("%.3f", dur.Seconds()))
					// §5.5 rotation comparison at the 8-thread (or max)
					// high-contention point, as in the paper's text.
					if preset.name == "high contention" && mult == 8 && th == maxInt(o.Threads) &&
						(kind == trees.RB || kind == trees.SFOpt) {
						fmt.Fprintf(o.Out, "  [rotations] %s at %d threads: %d\n", kind.Label(), th, rot)
					}
				}
				t.addRow(row...)
			}
			t.write(o.Out)
			fmt.Fprintln(o.Out)
		}
	}
	fmt.Fprintln(o.Out, "paper: vacation always faster on Opt SFtree than RBtree (up to 1.3x at 1x txs, 3.5x at 16x);")
	fmt.Fprintln(o.Out, "       NRtree comparable to Opt SFtree; RB ≈130k rotations vs SF ≈50k (8 threads, high contention).")
	return nil
}

// runVacation executes one concurrent vacation run and returns its duration
// (client phase only, as STAMP times it) and the total tree rotations.
func runVacation(kind trees.Kind, cfg vacation.Config, threads int, seed int64, yieldEvery int) (time.Duration, uint64) {
	s := stm.New(stm.WithYield(yieldEvery), stm.WithContentionManager(stm.Suicide()))
	m := vacation.NewManager(s, kind)
	setup := s.NewThread()
	vacation.Populate(m, setup, cfg, seed)
	stop := m.StartMaintenance()
	per := cfg.NumTransactions / threads
	if per == 0 {
		per = 1
	}
	clients := make([]*vacation.Client, threads)
	for i := range clients {
		clients[i] = vacation.NewClient(m, s.NewThread(), cfg, seed+int64(i)+1)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *vacation.Client) {
			defer wg.Done()
			cl.Run(per)
		}(cl)
	}
	wg.Wait()
	dur := time.Since(start)
	stop()
	var rot uint64
	for t := vacation.Car; t <= vacation.Room; t++ {
		if r, ok := trees.Rotations(m.Table(t)); ok {
			rot += r
		}
	}
	if r, ok := trees.Rotations(m.Customers()); ok {
		rot += r
	}
	return dur, rot
}

// runVacationSeq times the unsynchronized single-threaded implementation.
func runVacationSeq(cfg vacation.Config, seed int64) time.Duration {
	m := vacation.NewSeqManager()
	vacation.PopulateSeq(m, cfg, seed)
	cl := vacation.NewSeqClient(m, cfg, seed+1)
	start := time.Now()
	cl.Run(cfg.NumTransactions)
	return time.Since(start)
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
