package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/stm"
	"repro/internal/trees"
)

// Table1 reproduces the paper's Table 1: "Maximum number of transactional
// reads per operation on three 2^12-sized balanced search trees as the
// update ratio increases", measured across concurrent threads on
// TinySTM-CTL. The metric counts the reads of aborted attempts too, so it
// exposes how the coupled trees' step complexity explodes with contention
// while the speculation-friendly tree's stays almost flat.
//
// The fourth row adds the optimized (uread) variant, quantifying §3.3's
// "optimization further reducing the number of transactional reads".
func Table1(o Opts) error {
	o.defaults()
	updates := []int{0, 10, 20, 30, 40, 50}
	kinds := []trees.Kind{trees.AVL, trees.RB, trees.SF, trees.SFOpt}

	threads := o.Threads[len(o.Threads)-1] // Table 1 is a single (max) thread count
	fmt.Fprintf(o.Out, "Table 1: max transactional reads per operation (2^12-sized trees, %d threads, CTL)\n\n", threads)

	t := &table{header: append([]string{"Update"}, func() []string {
		h := make([]string, len(updates))
		for i, u := range updates {
			h[i] = fmt.Sprintf("%d%%", u)
		}
		return h
	}()...)}

	for _, kind := range kinds {
		row := []string{kind.Label()}
		for _, u := range updates {
			res := bench.Run(bench.Options{
				Kind:     kind,
				Mode:     stm.CTL,
				Threads:  threads,
				Duration: o.Duration,
				Workload: bench.Workload{
					KeyRange:      o.keyRange(1 << 13), // expected size 2^12
					UpdatePercent: u,
					Effective:     false, // Table 1 uses equal-probability attempted updates
				},
				Seed:       o.Seed,
				YieldEvery: o.yieldEvery(),
			})
			row = append(row, fmt.Sprintf("%d", res.STM.MaxOpReads))
		}
		t.addRow(row...)
	}
	t.write(o.Out)
	fmt.Fprintln(o.Out, "\npaper (48 threads): AVL 29/415/711/1008/1981/2081; RB 31/573/965/1108/1484/1545; SF 29/75/123/120/144/180")
	return nil
}
