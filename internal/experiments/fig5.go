package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/stm"
	"repro/internal/trees"
)

// Fig5a reproduces Figure 5(a): the speedup (minus 1, in percent) over the
// plain red-black tree on the default TM of three alternatives, as the
// update ratio grows from 10% to 40%:
//
//   - "Elastic": the same red-black tree run on elastic transactions —
//     relaxing the *transactions*;
//   - "SFtree" and "Opt SFtree": replacing the *data structure*.
//
// The paper's point: refactoring the data structure (≈22% average speedup)
// beats refactoring the TM (≈15%).
func Fig5a(o Opts) error {
	o.defaults()
	updates := []int{10, 20, 30, 40}
	threads := o.Threads[len(o.Threads)-1]
	fmt.Fprintf(o.Out, "Figure 5(a): speedup-1 (%%) over RBtree/CTL at %d threads\n\n", threads)
	t := &table{header: []string{"update", "Elastic speedup", "SFtree speedup", "Opt SFtree speedup"}}
	run := func(kind trees.Kind, mode stm.Mode, u int) float64 {
		res := bench.Run(bench.Options{
			Kind:       kind,
			Mode:       mode,
			Threads:    threads,
			Duration:   o.Duration,
			Workload:   bench.Workload{KeyRange: o.keyRange(1 << 13), UpdatePercent: u, Effective: true},
			Seed:       o.Seed,
			YieldEvery: o.yieldEvery(),
		})
		return res.Throughput
	}
	var sums [3]float64
	for _, u := range updates {
		base := run(trees.RB, stm.CTL, u)
		elastic := run(trees.RB, stm.Elastic, u)
		sf := run(trees.SF, stm.CTL, u)
		opt := run(trees.SFOpt, stm.CTL, u)
		pct := func(x float64) float64 {
			if base == 0 {
				return 0
			}
			return (x/base - 1) * 100
		}
		e, s, p := pct(elastic), pct(sf), pct(opt)
		sums[0] += e
		sums[1] += s
		sums[2] += p
		t.addRow(fmt.Sprintf("%d%%", u), fmtF(e), fmtF(s), fmtF(p))
	}
	n := float64(len(updates))
	t.addRow("mean", fmtF(sums[0]/n), fmtF(sums[1]/n), fmtF(sums[2]/n))
	t.write(o.Out)
	fmt.Fprintln(o.Out, "\npaper: elastic ≈15% average, SFtree ≈22% average (optimized or not)")
	return nil
}

// Fig5b reproduces Figure 5(b), the reusability experiment (§5.4):
// throughput with 90% read-only operations and 10% effective updates of
// which 1%, 5% or 10% are composed move operations, on the
// speculation-friendly tree. More moves → lower throughput, because a move
// protects more of the structure for longer than an insert or delete.
func Fig5b(o Opts) error {
	o.defaults()
	moves := []int{1, 5, 10}
	fmt.Fprintln(o.Out, "Figure 5(b): throughput (ops/µs) with 10% updates, varying move share")
	fmt.Fprintln(o.Out)
	t := &table{header: append([]string{"threads"}, func() []string {
		h := make([]string, len(moves))
		for i, mv := range moves {
			h[i] = fmt.Sprintf("%d%% move", mv)
		}
		return h
	}()...)}
	for _, th := range sortedCopy(o.Threads) {
		row := []string{fmt.Sprintf("%d", th)}
		for _, mv := range moves {
			res := bench.Run(bench.Options{
				Kind:     trees.SFOpt,
				Mode:     stm.CTL,
				Threads:  th,
				Duration: o.Duration,
				Workload: bench.Workload{
					KeyRange:      o.keyRange(1 << 13),
					UpdatePercent: 10,
					MovePercent:   mv,
					Effective:     true,
				},
				Seed:       o.Seed,
				YieldEvery: o.yieldEvery(),
			})
			row = append(row, fmtF(res.Throughput))
		}
		t.addRow(row...)
	}
	t.write(o.Out)
	return nil
}
