package bench

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/stm"
	"repro/internal/trees"
)

// TestZipfDistributionSanity checks the generator against the analytic
// distribution: draws stay in range, empirical head probabilities match
// P(k) ∝ 1/(k+1)^s within a few standard errors, and frequencies decrease
// with rank.
func TestZipfDistributionSanity(t *testing.T) {
	const (
		n     = 1 << 10
		s     = 1.2
		draws = 200000
	)
	z := NewZipfGen(rand.New(rand.NewSource(7)), s, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Uint64()
		if k >= n {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	// Analytic head probabilities.
	h := 0.0
	for k := 1; k <= n; k++ {
		h += math.Pow(float64(k), -s)
	}
	for k := 0; k < 8; k++ {
		want := math.Pow(float64(k+1), -s) / h
		got := float64(counts[k]) / draws
		se := math.Sqrt(want * (1 - want) / draws)
		if math.Abs(got-want) > 6*se {
			t.Errorf("P(%d): got %.5f, want %.5f (±%.5f)", k, got, want, 6*se)
		}
	}
	// The head must dominate: with s=1.2 and n=1024 the top 16 keys carry
	// well over half the mass.
	head := 0
	for k := 0; k < 16; k++ {
		head += counts[k]
	}
	if float64(head)/draws < 0.5 {
		t.Fatalf("top-16 mass = %.3f, want > 0.5", float64(head)/draws)
	}
	// Frequencies decrease with rank over well-populated prefixes.
	for k := 1; k < 6; k++ {
		if counts[k] > counts[k-1] {
			t.Errorf("count[%d]=%d > count[%d]=%d", k, counts[k], k-1, counts[k-1])
		}
	}
}

func TestZipfGenDeterministic(t *testing.T) {
	a := NewZipfGen(rand.New(rand.NewSource(3)), 1.1, 512)
	b := NewZipfGen(rand.New(rand.NewSource(3)), 1.1, 512)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestZipfWorkloadRuns(t *testing.T) {
	o := quickOpts(trees.SFOpt)
	o.Workload.Dist = DistZipf
	o.Workload.UpdatePercent = 30
	res := Run(o)
	if res.Ops == 0 {
		t.Fatal("zipf run did no work")
	}
	if res.Dist != DistZipf {
		t.Fatal("dist metadata wrong")
	}
}

func TestShardedRunReportsPerShard(t *testing.T) {
	o := quickOpts(trees.SFOpt)
	o.Shards = 4
	o.Threads = 4
	o.CM = "backoff"
	o.Duration = 60 * time.Millisecond
	res := Run(o)
	if res.Shards != 4 || len(res.PerShard) != 4 {
		t.Fatalf("shards = %d, per-shard entries = %d", res.Shards, len(res.PerShard))
	}
	var shardOps uint64
	var agg float64
	for si, sr := range res.PerShard {
		if sr.Ops == 0 {
			t.Fatalf("shard %d saw no operations", si)
		}
		if sr.STM.Commits == 0 {
			t.Fatalf("shard %d recorded no commits", si)
		}
		shardOps += sr.Ops
		agg += sr.Throughput
	}
	if shardOps < res.Ops {
		t.Fatalf("per-shard ops %d < aggregate ops %d", shardOps, res.Ops)
	}
	// Per-shard throughputs must sum to about the routed-operation rate.
	routed := float64(shardOps) / (float64(res.Elapsed.Nanoseconds()) / 1e3)
	if math.Abs(agg-routed)/routed > 0.01 {
		t.Fatalf("per-shard throughput sum %.3f far from %.3f", agg, routed)
	}
	if res.CM != "backoff" {
		t.Fatalf("cm metadata = %q", res.CM)
	}
}

func TestCMSelection(t *testing.T) {
	for _, cm := range stm.Managers() {
		o := quickOpts(trees.SF)
		o.CM = cm
		res := Run(o)
		if res.CM != cm {
			t.Fatalf("cm metadata = %q, want %q", res.CM, cm)
		}
		if res.Ops == 0 {
			t.Fatalf("cm %s: no ops", cm)
		}
	}
	// Empty CM must stay the historical suicide policy so pre-forest
	// experiment configurations reproduce unchanged.
	res := Run(quickOpts(trees.SF))
	if res.CM != "suicide" {
		t.Fatalf("default cm = %q, want suicide", res.CM)
	}
	if res.STM.BackoffNanos != 0 {
		t.Fatal("suicide policy recorded backoff time")
	}
}

func TestShardedZipfRun(t *testing.T) {
	o := quickOpts(trees.SFOpt)
	o.Shards = 4
	o.Workload.Dist = DistZipf
	o.Duration = 60 * time.Millisecond
	res := Run(o)
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
	// Under a Zipf hot set the shard owning the hot keys must see more
	// traffic than the coldest shard.
	var min, max uint64 = math.MaxUint64, 0
	for _, sr := range res.PerShard {
		if sr.Ops < min {
			min = sr.Ops
		}
		if sr.Ops > max {
			max = sr.Ops
		}
	}
	if max <= min {
		t.Fatalf("zipf skew invisible across shards: min %d max %d", min, max)
	}
}
