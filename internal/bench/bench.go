// Package bench is the synchrobench-style integer-set micro-benchmark
// harness of the paper's evaluation (§5.1–5.4): concurrent threads apply a
// mix of contains / insert / delete / move operations to one tree for a
// fixed duration, and the harness reports throughput (operations per
// microsecond, the paper's unit), effective-update accounting, abort rates
// and the transactional-read ceilings of Table 1.
//
// Beyond the paper's single-domain configurations, the harness can hammer a
// sharded forest (Options.Shards > 1, reported per shard and aggregated),
// select the STM's contention manager (Options.CM), and draw keys from a
// Zipfian hot-set distribution instead of the uniform one (Workload.Dist).
//
// Two methodological details follow the paper explicitly:
//
//   - Effective updates. "We consider the effective update ratios of
//     synchrobench counting only modifications and ignoring the operations
//     that fail." In effective mode each thread alternates inserting a
//     fresh random key with deleting a key it previously inserted, so
//     almost every attempted update modifies the structure; the measured
//     effective ratio is reported alongside.
//
//   - Biased workload (Fig. 3 right). "Inserting (resp. deleting) random
//     values skewed towards high (resp. low) numbers in the value range:
//     the values ... are skewed with a fixed probability by incrementing
//     (resp. decrementing) with an integer uniformly taken within [0..9]."
package bench

import (
	"math/rand"
	"os"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/forest"
	"repro/internal/ftx"
	"repro/internal/obs"
	"repro/internal/sftree"
	"repro/internal/stm"
	"repro/internal/trees"
)

// Workload describes the operation mix and key distribution.
type Workload struct {
	// KeyRange is the size of the key universe; the initial fill inserts
	// each key with probability 1/2, so the expected initial size is
	// KeyRange/2 (the paper fixes the expectation to 2^12 this way).
	KeyRange uint64
	// UpdatePercent is the percentage of operations that attempt an
	// insert or delete (the paper's update ratio).
	UpdatePercent int
	// MovePercent is the percentage of operations that are composed move
	// operations (Fig. 5(b)); they count within the update budget.
	MovePercent int
	// Biased enables the skewed insert-high/delete-low workload.
	Biased bool
	// Effective selects the effective-update discipline described above;
	// when false, updates pick uniform random keys and may fail (the
	// attempted-ratio regime of Table 1).
	Effective bool
	// Dist selects the key distribution ("" and DistUniform are the
	// paper's uniform regime; DistZipf concentrates traffic on a hot set).
	Dist Dist
	// ZipfS is the Zipf skew exponent (0 selects DefaultZipfS).
	ZipfS float64
	// RangeFrac is the fraction of all operations (0..1) that are ordered
	// range scans over a window of the key space — the workload class the
	// paper's elastic-transaction discussion motivates (traversal-heavy
	// reads). The remaining (1 - RangeFrac) of operations draw the
	// update/move/read mix exactly as before, so UpdatePercent is the
	// update share of the non-scan operations (the overall update rate is
	// diluted by the scan fraction) and existing configurations
	// (RangeFrac == 0) reproduce bit-for-bit.
	RangeFrac float64
	// RangeLen is the key-space width of each scan window [lo, lo+RangeLen)
	// (0 selects DefaultRangeLen). The number of elements visited is about
	// half of it under the harness's half-full fill.
	RangeLen uint64
	// XactFrac is the fraction of all operations (0..1) that are multi-key
	// transfer transactions: each reads XactKeys keys through the
	// cross-shard transaction coordinator and atomically moves one unit of
	// value from the richest present key to the poorest. Like RangeFrac it
	// dilutes the remaining mix, so existing configurations (XactFrac == 0)
	// reproduce bit-for-bit.
	XactFrac float64
	// XactKeys is the number of keys each transfer touches (0 selects
	// DefaultXactKeys; minimum 2).
	XactKeys int
	// XactCrossFrac is the cross-shard dial: the fraction of transfers
	// (0..1) whose keys are drawn freely over the whole key space — on a
	// sharded run, almost surely spanning shards and paying the full
	// two-phase commit. The rest are confined to the first key's shard
	// (SameShard routing) and commit through the coordinator's single-shard
	// fallback. Irrelevant on unsharded runs, where every transfer falls
	// back.
	XactCrossFrac float64

	// zipfCDF is the shared distribution table, computed once per Run and
	// handed to every worker (it depends only on ZipfS and KeyRange).
	zipfCDF []float64
}

// DefaultRangeLen is the scan-window width used when Workload.RangeLen is 0.
const DefaultRangeLen = 100

// DefaultXactKeys is the per-transfer key count used when Workload.XactKeys
// is 0.
const DefaultXactKeys = 4

// prepareZipf populates the shared CDF table when the workload is Zipfian.
func (wl *Workload) prepareZipf() {
	if wl.Dist == DistZipf && wl.zipfCDF == nil {
		s := wl.ZipfS
		if s == 0 {
			s = DefaultZipfS
		}
		wl.zipfCDF = zipfCDF(s, wl.KeyRange)
	}
}

// Options configures one benchmark run.
type Options struct {
	Kind     trees.Kind
	Mode     stm.Mode
	Threads  int
	Duration time.Duration
	Workload Workload
	Seed     int64
	// Shards partitions the key space across that many independent
	// STM-domain+tree shards (internal/forest). 0 and 1 select the
	// single-domain path, which is byte-for-byte the paper's configuration.
	Shards int
	// CM names the contention manager ("suicide", "backoff", "karma").
	// Empty selects "suicide" — the historical engine behavior — so every
	// pre-forest experiment configuration reproduces unchanged; new callers
	// opt into backoff or karma explicitly.
	CM string
	// YieldEvery enables the STM's interleaving simulation (stm.WithYield):
	// worker threads yield after that many transactional accesses, so
	// transactions overlap even when the host has fewer cores than workers.
	// 0 disables.
	YieldEvery int
	// MaintWorkers sizes the forest's shared maintenance worker pool
	// (0 selects the forest default, min(shards, GOMAXPROCS/2)). Only
	// meaningful with Shards > 1.
	MaintWorkers int
	// MaintPacing overrides the forest's per-shard hint-drain pacing gap
	// (0 keeps the forest default of 2ms; forest.WithMaintPacing). Only
	// meaningful with Shards > 1.
	MaintPacing time.Duration
	// Batch enables the forest's per-shard op combiner with that max batch
	// size (forest.WithBatching): single-key operations coalesce into
	// batches applied one transaction each. Values <= 1 leave batching off.
	// A batched run always takes the forest path, whatever the shard count.
	Batch int
	// BatchWait is the combiner runner's linger for topping up an underfull
	// batch (0 commits whatever is pending). Only meaningful with Batch > 1.
	BatchWait time.Duration
	// Durable attaches a write-ahead log (in a temporary directory, removed
	// after the run) to the measured forest: every committed update appends
	// one record, checkpoints run periodically, and after the hammer phase
	// the run performs — and times — a full recovery of the directory. The
	// single-domain configuration then runs as a one-shard forest (the
	// durable facade's own arrangement).
	Durable bool
	// Fsync selects per-operation durability (fsync before every update
	// returns) instead of the default asynchronous group commit. Only
	// meaningful with Durable.
	Fsync bool
	// DurableCheckpoint is the periodic checkpoint interval of a durable
	// run (0 selects 500ms; negative disables periodic checkpoints).
	DurableCheckpoint time.Duration
	// DurableCompact is the durable run's delta-chain compaction period
	// (durable.Options.CompactEvery): after that many incremental delta
	// checkpoints the next one folds the chain into a fresh full base.
	// 0 selects the durable default (durable.DefaultCompactEvery); a
	// negative value disables delta checkpoints, restoring the pre-delta
	// every-checkpoint-is-full regime.
	DurableCompact int
	// ObsAddr turns on the observability layer for the measured run and
	// serves its /metrics + /snapshot + /flight + pprof endpoint on the
	// given address (":0" for an ephemeral port). Every layer of the run
	// registers into the registry, so a scrape during the hammer phase
	// sees the live counters. Empty leaves observability off entirely —
	// the hooks then cost nothing, keeping the historical rows unchanged.
	ObsAddr string
	// ObsReady, when non-nil, is called with the endpoint's bound address
	// after the server is up but before the hammer phase starts (implies
	// ObsAddr ":0" when that is empty). Test harnesses use it to scrape
	// mid-run.
	ObsReady func(addr string)
	// TraceEvery turns on the sampled span tracer for the measured run
	// (repro.WithTracing's dial): one in TraceEvery facade operations
	// records spans for every phase it crosses, served on /trace when the
	// observability endpoint is up. 0 disables tracing entirely (the off
	// path costs one atomic load per op). A traced run always takes the
	// forest path, whatever the shard count.
	TraceEvery int
}

// defaultBenchCheckpoint is the durable run's checkpoint interval default.
const defaultBenchCheckpoint = 500 * time.Millisecond

// contentionManager resolves the run's contention manager, defaulting to
// suicide (see the CM field comment).
func (o Options) contentionManager() stm.ContentionManager {
	name := o.CM
	if name == "" {
		name = "suicide"
	}
	cm, err := stm.ManagerByName(name)
	if err != nil {
		panic(err)
	}
	return cm
}

// ShardResult is one shard's share of a sharded run.
type ShardResult struct {
	Ops        uint64  // operations routed to the shard
	Throughput float64 // its ops per microsecond over the run
	STM        stm.Stats
}

// Result reports one run's measurements.
type Result struct {
	Kind    trees.Kind
	Mode    stm.Mode
	Threads int
	Shards  int
	CM      string
	Dist    Dist
	Batch   int // combiner batch-size dial (0/1 = batching off)
	Elapsed time.Duration

	Ops              uint64  // operations completed
	EffectiveUpdates uint64  // updates that modified the abstraction
	EffectiveMoves   uint64  // moves that relocated a value
	RangeOps         uint64  // ordered range scans completed
	RangeItems       uint64  // elements visited by range scans in total
	XactOps          uint64  // multi-key transfer transactions completed
	XactMoves        uint64  // transfers that actually moved a unit
	Throughput       float64 // operations per microsecond (paper's unit)
	EffectiveRatio   float64 // effective updates / ops

	// Batch-coalescing accounting (zero unless Options.Batch > 1): batches
	// the per-shard op combiner committed, the operations those batches
	// carried, and the mean coalescing factor BatchedOps/Batches. Ops that
	// took the combiner's uncontended direct fast path appear in neither.
	Batches    uint64
	BatchedOps uint64
	AvgBatch   float64

	// Per-operation latency percentiles in nanoseconds, cut from the merged
	// per-worker op_latency_nanos histograms fed by every latSampleEvery-th
	// operation (sampling keeps the clock reads off the common path, so the
	// single-thread throughput rows stay comparable). The log2 buckets give
	// the ~2x relative error every obs histogram has. Zero when no sample
	// was taken.
	P50Nanos uint64
	P99Nanos uint64

	// Runtime scheduling and GC figures over the hammer phase:
	// GCPauseP99Nanos is the p99 stop-the-world pause among the GC cycles
	// that ran inside the window (0 when none did), from the
	// /gc/pauses:seconds runtime/metrics histogram diffed across the
	// window; Goroutines is the live goroutine count sampled at the end of
	// the window, workers still running.
	GCPauseP99Nanos uint64
	Goroutines      int

	// Heap-allocation accounting over the hammer phase (runtime.MemStats
	// deltas divided by Ops). The window covers everything live during the
	// measurement — worker goroutine startup, maintenance workers, the WAL
	// on durable runs — so these are whole-system figures, not per-call
	// gates (the AllocsPerRun tests are); a steady-state in-memory run
	// should still sit near zero.
	AllocsPerOp float64 // heap allocations per operation
	BytesPerOp  float64 // heap bytes allocated per operation

	// Xact is the cross-shard coordinator's own accounting, summed over
	// workers: total commits, the subset that took the single-shard
	// fallback fast path, retried aborts and intent conflicts. On the
	// single-domain path every transfer is a fallback commit by
	// construction.
	Xact ftx.Stats

	STM       stm.Stats     // summed over worker threads (all shards)
	PerShard  []ShardResult // per-shard breakdown (nil on the single path)
	TreeStats sftree.Stats  // zero for non-SF trees; includes hint counters
	Rotations uint64        // tree rotations (see trees.Rotations)
	// Pool describes the maintenance scheduler: the forest's shared worker
	// pool, or — on the single-domain path — the tree's own maintenance
	// goroutine rendered as a one-worker pool (sweeps = passes), so the
	// maintenance-efficiency columns stay comparable across shard counts.
	Pool forest.PoolStats

	// Durability accounting (zero unless Options.Durable): the WAL's own
	// counters over the hammer phase, plus a timed full recovery of the
	// directory performed after the run.
	Durable          bool
	Wal              durable.Stats
	RecoveryNanos    uint64 // wall time of the post-run recovery
	RecoveredPairs   int    // elements the recovery reconstructed
	RecoveryAppliers int    // applier goroutines the recovery replay used
	RecoveryDeltas   int    // delta generations in the recovered chain

	// Raw MemStats deltas captured by hammer; finish divides them by Ops.
	hammerMallocs uint64
	hammerBytes   uint64
	// latHist merges the workers' latency histograms; finish cuts the
	// percentiles from it.
	latHist obs.HistSnapshot
}

// WorkerUtilization returns the fraction of the run's wall-clock ×
// pool-size budget the maintenance workers spent busy (0 when no pool ran).
func (r *Result) WorkerUtilization() float64 {
	if r.Pool.Workers == 0 || r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Pool.BusyNanos) / (float64(r.Elapsed.Nanoseconds()) * float64(r.Pool.Workers))
}

// CheckpointDirtyFrac returns the mean dirty fraction across the run's
// delta checkpoints — dirty keys over the base's pair count, averaged over
// the deltas written (0 when none ran). Small values mean the incremental
// checkpoints are writing churn, not store size.
func (r *Result) CheckpointDirtyFrac() float64 {
	if r.Wal.DeltaCheckpoints == 0 {
		return 0
	}
	return r.Wal.DirtyFracSum / float64(r.Wal.DeltaCheckpoints)
}

// subTreeStats returns cur minus the pre-measurement base, so the reported
// maintenance counters cover only the hammer phase (the fill and its
// Quiesce drive plenty of maintenance of their own).
func subTreeStats(cur, base sftree.Stats) sftree.Stats {
	return sftree.Stats{
		Rotations:       cur.Rotations - base.Rotations,
		Removals:        cur.Removals - base.Removals,
		Passes:          cur.Passes - base.Passes,
		Freed:           cur.Freed - base.Freed,
		FailedRot:       cur.FailedRot - base.FailedRot,
		FailedRemove:    cur.FailedRemove - base.FailedRemove,
		HintsEmitted:    cur.HintsEmitted - base.HintsEmitted,
		HintsCoalesced:  cur.HintsCoalesced - base.HintsCoalesced,
		HintsDropped:    cur.HintsDropped - base.HintsDropped,
		TargetedRepairs: cur.TargetedRepairs - base.TargetedRepairs,
		BusyNanos:       cur.BusyNanos - base.BusyNanos,
	}
}

// subPoolStats subtracts the pre-measurement activity counters (size,
// backlog and the current pacing gap are instantaneous, not cumulative).
func subPoolStats(cur, base forest.PoolStats) forest.PoolStats {
	cur.BusyNanos -= base.BusyNanos
	cur.Wakeups -= base.Wakeups
	cur.Sweeps -= base.Sweeps
	cur.HintBatches -= base.HintBatches
	return cur
}

// Run executes one benchmark: build, fill, start maintenance, hammer for
// the configured duration, and collect statistics. Shards > 1 selects the
// forest path; otherwise the single-domain tree is measured exactly as the
// paper's harness does.
func Run(o Options) Result {
	if o.Threads < 1 {
		panic("bench: Threads must be >= 1")
	}
	if o.Workload.KeyRange < 2 {
		panic("bench: KeyRange must be >= 2")
	}
	if o.Workload.RangeFrac+o.Workload.XactFrac >= 1 {
		// Step draws one uniform variate against the two fractions back to
		// back; overlapping dials would silently starve the plain mix while
		// the result reports the nominal values.
		panic("bench: RangeFrac + XactFrac must be < 1")
	}
	o.Workload.prepareZipf() // one shared CDF table for all workers
	if o.Shards > 1 || o.Durable || o.Batch > 1 || o.TraceEvery > 0 {
		return runForest(o)
	}
	cm := o.contentionManager()
	s := stm.New(stm.WithMode(o.Mode), stm.WithYield(o.YieldEvery), stm.WithContentionManager(cm))
	m := trees.New(o.Kind, s)
	fill(m, s, o.Workload.KeyRange, o.Seed)

	stopMaint := trees.Start(m)
	defer stopMaint()
	// Maintenance counters from the fill (and its Quiesce) are not part of
	// the measurement; report hammer-phase deltas only.
	var fillStats sftree.Stats
	if sf, ok := m.(interface{ Stats() sftree.Stats }); ok {
		fillStats = sf.Stats()
	}

	workers := make([]*Runner, o.Threads)
	for i := range workers {
		workers[i] = NewRunner(m, s.NewThread(), o.Workload, o.Seed+int64(i)*7919+1)
	}
	srv := startObs(o, func(r *obs.Registry, fr *obs.FlightRecorder) {
		s.RegisterObs(r, "")
		if sf, ok := m.(interface {
			RegisterObs(*obs.Registry, string)
		}); ok {
			sf.RegisterObs(r, "")
		}
		registerLatency(r, workers)
	})
	hr := hammer(workers, o.Duration)
	if srv != nil {
		srv.Close()
	}

	res := newResult(o, cm, 1, hr.elapsed)
	res.hammerMallocs, res.hammerBytes = hr.mallocs, hr.bytes
	res.GCPauseP99Nanos, res.Goroutines = hr.gcPauseP99, hr.goroutines
	for _, w := range workers {
		res.addWorker(w)
		res.STM.Add(w.th.Stats())
	}
	res.finish()
	if sf, ok := m.(interface{ Stats() sftree.Stats }); ok {
		res.TreeStats = subTreeStats(sf.Stats(), fillStats)
	}
	if _, ok := trees.HintMaintainedOf(m); ok {
		res.Pool = forest.PoolStats{
			Workers:   1,
			BusyNanos: res.TreeStats.BusyNanos,
			Sweeps:    res.TreeStats.Passes,
		}
	}
	if rot, ok := trees.Rotations(m); ok {
		res.Rotations = rot
	}
	return res
}

// runForest is the sharded path: one forest, one handle per worker, and a
// per-shard breakdown of routed operations and STM statistics. Durable
// runs (any shard count) come through here too, with a WAL attached after
// the fill and a timed recovery after the hammer.
func runForest(o Options) Result {
	shards := o.Shards
	if shards < 1 {
		shards = 1
	}
	cm := o.contentionManager()
	fopts := []forest.Option{
		forest.WithShards(shards),
		forest.WithTMMode(o.Mode),
		forest.WithContentionManager(cm),
		forest.WithYield(o.YieldEvery),
	}
	if o.MaintWorkers > 0 {
		fopts = append(fopts, forest.WithMaintWorkers(o.MaintWorkers))
	}
	if o.MaintPacing > 0 {
		fopts = append(fopts, forest.WithMaintPacing(o.MaintPacing))
	}
	if o.Batch > 1 {
		fopts = append(fopts, forest.WithBatching(o.Batch, o.BatchWait))
	}
	f := forest.New(o.Kind, fopts...)
	fillForest(f, o.Workload.KeyRange, o.Seed)
	// The pool runs during the fill too; report hammer-phase deltas only,
	// mirroring the single-domain path (keeps shard counts comparable).
	fillStats := f.MaintenanceStats()
	fillPool := f.PoolStats()

	// Durable runs: open the WAL after the fill (the fill is covered by the
	// baseline checkpoint instead of being replayed record by record), so
	// the log counters measure the hammer phase.
	var dl *durable.Log
	var dopts durable.Options
	var dir string
	if o.Durable {
		ckpt := o.DurableCheckpoint
		if ckpt == 0 {
			ckpt = defaultBenchCheckpoint
		}
		var err error
		dir, err = os.MkdirTemp("", "repro-bench-wal-*")
		if err != nil {
			panic(err)
		}
		dopts = durable.Options{Sync: o.Fsync, CheckpointEvery: ckpt, CompactEvery: o.DurableCompact}
		dl, _, err = durable.Open(dir, shards, dopts)
		if err != nil {
			panic(err)
		}
		f.AttachWAL(dl)
		if err := dl.Checkpoint(f); err != nil {
			panic(err)
		}
		dl.StartCheckpoints(f)
	}

	// The tracer attaches before the workers start: from here on one in
	// TraceEvery facade ops records spans through every layer of the run.
	var tracer *obs.Tracer
	if o.TraceEvery > 0 {
		tracer = obs.NewTracer(o.TraceEvery, 4096)
		f.SetTracer(tracer)
		if dl != nil {
			dl.SetTracer(tracer)
		}
	}

	workers := make([]*Runner, o.Threads)
	handles := make([]*forest.Handle, o.Threads)
	for i := range workers {
		handles[i] = f.NewHandle()
		workers[i] = NewTargetRunner(handles[i], o.Workload, o.Seed+int64(i)*7919+1)
	}
	srv := startObs(o, func(r *obs.Registry, fr *obs.FlightRecorder) {
		f.RegisterObs(r)
		f.SetFlightRecorder(fr)
		if dl != nil {
			dl.RegisterObs(r)
			dl.SetFlightRecorder(fr)
		}
		if tracer != nil {
			r.SetTracer(tracer)
			tracer.RegisterObs(r)
		}
		registerLatency(r, workers)
	})
	hr := hammer(workers, o.Duration)
	elapsed := hr.elapsed
	if srv != nil {
		srv.Close()
	}
	if dl != nil {
		dl.Close()
	}
	// Stop the maintenance worker pool before reading statistics: thread
	// counters are plain fields, exact only once their owner is quiet.
	f.Close()

	res := newResult(o, cm, shards, elapsed)
	res.hammerMallocs, res.hammerBytes = hr.mallocs, hr.bytes
	res.GCPauseP99Nanos, res.Goroutines = hr.gcPauseP99, hr.goroutines
	if dl != nil {
		res.Durable = true
		res.Wal = dl.Stats()
		t0 := time.Now()
		l2, rec, err := durable.Open(dir, shards, dopts)
		if err != nil {
			// A failed recovery must not masquerade as a cheap empty one in
			// the benchmark artifact; fail loudly like the other durable-
			// path errors above.
			panic(err)
		}
		res.RecoveryNanos = uint64(time.Since(t0).Nanoseconds())
		res.RecoveredPairs = len(rec.State)
		res.RecoveryAppliers = rec.Appliers
		res.RecoveryDeltas = rec.ChainDeltas
		l2.Close()
		os.RemoveAll(dir)
	}
	// Sum the workers' own per-shard threads, mirroring the single-domain
	// path's worker-only accounting (the fill handle and the maintenance
	// goroutines are excluded there too, keeping shards=1 and shards=N
	// rows comparable).
	res.PerShard = make([]ShardResult, shards)
	for i, w := range workers {
		res.addWorker(w)
		ops := handles[i].OpsPerShard()
		for si, st := range handles[i].ShardStats() {
			res.PerShard[si].Ops += ops[si]
			res.PerShard[si].STM.Add(st)
			res.STM.Add(st)
		}
	}
	for si := range res.PerShard {
		res.PerShard[si].Throughput = float64(res.PerShard[si].Ops) / (float64(elapsed.Nanoseconds()) / 1e3)
	}
	res.finish()
	res.TreeStats = subTreeStats(f.MaintenanceStats(), fillStats)
	res.Pool = subPoolStats(f.PoolStats(), fillPool) // counters survive Close
	if rot, ok := f.Rotations(); ok {
		res.Rotations = rot
	}
	return res
}

// hammerResult carries the hammer window's whole-system measurements:
// wall time, heap-allocation deltas, the GC pause p99 among cycles inside
// the window, and the live goroutine count sampled while the workers were
// still running.
type hammerResult struct {
	elapsed    time.Duration
	mallocs    uint64
	bytes      uint64
	gcPauseP99 uint64
	goroutines int
}

// hammer runs every worker in its own goroutine for the given duration. It
// also reports the heap-allocation deltas (mallocs, bytes) over the window,
// measured with ReadMemStats just outside the timed region so the
// stop-the-world cost of the reads never lands inside the throughput
// window; the GC-pause histogram reads sit outside it for the same reason.
func hammer(workers []*Runner, d time.Duration) hammerResult {
	var stopFlag atomic.Bool
	var start, ready sync.WaitGroup
	start.Add(1)
	for _, w := range workers {
		w := w
		ready.Add(1)
		go func() {
			start.Wait()
			for !stopFlag.Load() {
				w.Step()
			}
			ready.Done()
		}()
	}
	gcs := []metrics.Sample{{Name: "/gc/pauses:seconds"}}
	metrics.Read(gcs)
	base := cloneGCHist(gcs[0].Value)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	start.Done()
	time.Sleep(d)
	goroutines := runtime.NumGoroutine() // workers (and maintenance) still live
	stopFlag.Store(true)
	ready.Wait()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	metrics.Read(gcs)
	return hammerResult{
		elapsed:    elapsed,
		mallocs:    ms1.Mallocs - ms0.Mallocs,
		bytes:      ms1.TotalAlloc - ms0.TotalAlloc,
		gcPauseP99: gcPauseP99(base, gcs[0].Value),
		goroutines: goroutines,
	}
}

// cloneGCHist copies a /gc/pauses:seconds sample's bucket counts (metrics.Read
// reuses the histogram buffers across calls, so the window's start state must
// be snapshotted). Nil when the runtime does not expose the histogram.
func cloneGCHist(v metrics.Value) *metrics.Float64Histogram {
	if v.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	h := v.Float64Histogram()
	return &metrics.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: h.Buckets,
	}
}

// gcPauseP99 diffs the process-lifetime GC pause histogram across the hammer
// window and cuts the p99 of the pauses that happened inside it, nanoseconds.
func gcPauseP99(base *metrics.Float64Histogram, end metrics.Value) uint64 {
	if base == nil || end.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	eh := end.Float64Histogram()
	if len(eh.Counts) != len(base.Counts) {
		return 0
	}
	diff := metrics.Float64Histogram{
		Counts:  make([]uint64, len(eh.Counts)),
		Buckets: eh.Buckets,
	}
	for i, c := range eh.Counts {
		diff.Counts[i] = c - base.Counts[i]
	}
	return obs.HistogramQuantileNanos(&diff, 0.99)
}

// startObs builds the run's observability layer when Options ask for one
// (nil otherwise): registry + flight recorder + live HTTP endpoint.
// register hooks the measured structures into the registry before the
// endpoint goes live; ObsReady fires with the bound address before the
// hammer phase starts.
func startObs(o Options, register func(r *obs.Registry, fr *obs.FlightRecorder)) *obs.Server {
	if o.ObsAddr == "" && o.ObsReady == nil {
		return nil
	}
	r := obs.NewRegistry()
	fr := obs.NewFlightRecorder(4096)
	r.SetFlight(fr)
	obs.RegisterRuntime(r)
	register(r, fr)
	addr := o.ObsAddr
	if addr == "" {
		addr = ":0"
	}
	srv, err := obs.Serve(addr, r)
	if err != nil {
		panic(err)
	}
	if o.ObsReady != nil {
		o.ObsReady(srv.Addr())
	}
	return srv
}

// registerLatency exposes the run's merged per-worker latency histograms as
// the registry's op_latency_nanos family (label op="all" — the per-kind
// series come from an attached tracer). The merge runs at scrape time, off
// the workers' hot path.
func registerLatency(r *obs.Registry, workers []*Runner) {
	r.RegisterCollector(func(emit func(obs.Sample)) {
		var s obs.HistSnapshot
		for _, w := range workers {
			s = s.Add(w.latH.Snapshot())
		}
		emit(obs.Sample{Name: "op_latency_nanos", Label: `op="all"`, Kind: obs.KindHistogram,
			Help: "Sampled per-operation latency across all op kinds, nanoseconds.", Hist: &s})
	})
}

func newResult(o Options, cm stm.ContentionManager, shards int, elapsed time.Duration) Result {
	dist := o.Workload.Dist
	if dist == "" {
		dist = DistUniform
	}
	batch := o.Batch
	if batch <= 1 {
		batch = 0
	}
	return Result{
		Kind: o.Kind, Mode: o.Mode, Threads: o.Threads,
		Shards: shards, CM: cm.Name(), Dist: dist, Batch: batch, Elapsed: elapsed,
	}
}

func (r *Result) addWorker(w *Runner) {
	r.Ops += w.Ops
	r.EffectiveUpdates += w.EffUpdates
	r.EffectiveMoves += w.EffMoves
	r.RangeOps += w.RangeOps
	r.RangeItems += w.RangeItems
	r.XactOps += w.XactOps
	r.XactMoves += w.XactMoves
	r.latHist = r.latHist.Add(w.latH.Snapshot())
	if xs, ok := w.t.(XactStatser); ok {
		r.Xact.Add(xs.XactStats())
	}
}

func (r *Result) finish() {
	r.Throughput = float64(r.Ops) / (float64(r.Elapsed.Nanoseconds()) / 1e3)
	if r.Ops > 0 {
		r.EffectiveRatio = float64(r.EffectiveUpdates) / float64(r.Ops)
		r.AllocsPerOp = float64(r.hammerMallocs) / float64(r.Ops)
		r.BytesPerOp = float64(r.hammerBytes) / float64(r.Ops)
	}
	r.Batches = r.STM.Batches
	r.BatchedOps = r.STM.BatchedOps
	if r.Batches > 0 {
		r.AvgBatch = float64(r.BatchedOps) / float64(r.Batches)
	}
	if r.latHist.Count > 0 {
		r.P50Nanos = r.latHist.Quantile(0.50)
		r.P99Nanos = r.latHist.Quantile(0.99)
	}
}

// fill initializes the set: every key in [0, keyRange) is inserted with
// probability 1/2, in a shuffled order so that even the never-rebalancing
// tree starts from an ordinary random BST (inserting in ascending order
// would hand it a linked list before the measurement begins). Maintenance,
// where present, is then quiesced so every library starts balanced, as the
// paper's initialized sets do.
func fill(m trees.Map, s *stm.STM, keyRange uint64, seed int64) {
	th := s.NewThread()
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	keys := rng.Perm(int(keyRange))
	for _, k := range keys {
		if rng.Intn(2) == 0 {
			m.Insert(th, uint64(k), uint64(k))
		}
	}
	trees.Quiesce(m, 1<<20)
}

// fillForest applies exactly the fill discipline above through a routing
// handle, so a forest starts from the same expected set as the bare tree.
func fillForest(f *forest.Forest, keyRange uint64, seed int64) {
	h := f.NewHandle()
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	keys := rng.Perm(int(keyRange))
	for _, k := range keys {
		if rng.Intn(2) == 0 {
			h.Insert(uint64(k), uint64(k))
		}
	}
	f.Quiesce(1 << 20)
}

// Target abstracts what a Runner hammers: a bare tree bound to one STM
// thread, or a forest handle that routes every key to its shard. The method
// set is deliberately the per-goroutine accessor surface shared by both
// (forest.Handle and repro.Handle satisfy it directly).
type Target interface {
	Insert(k, v uint64) bool
	Delete(k uint64) bool
	Contains(k uint64) bool
	Move(src, dst uint64) bool
	Range(lo, hi uint64, fn func(k, v uint64) bool) bool
	// SameShard reports key co-location (always true on unsharded targets);
	// the transfer workload's cross-shard dial steers key selection with it.
	SameShard(k1, k2 uint64) bool
	// Atomic runs fn as one atomic multi-key transaction (the cross-shard
	// coordinator on a forest, its single-shard fallback on a bare tree).
	Atomic(fn func(t *ftx.Tx) error) error
}

// XactStatser is the optional coordinator-statistics surface of a Target
// (forest.Handle, repro.Handle and treeTarget all provide it); Run sums it
// into Result.Xact.
type XactStatser interface {
	XactStats() ftx.Stats
}

// treeTarget adapts (trees.Map, *stm.Thread) to Target, with a one-shard
// coordinator for the transfer workload.
type treeTarget struct {
	m     trees.Map
	th    *stm.Thread
	coord *ftx.Coordinator
}

func newTreeTarget(m trees.Map, th *stm.Thread) *treeTarget {
	return &treeTarget{m: m, th: th, coord: ftx.NewCoordinator(ftx.Single(m, th))}
}

func (t *treeTarget) Insert(k, v uint64) bool   { return t.m.Insert(t.th, k, v) }
func (t *treeTarget) Delete(k uint64) bool      { return t.m.Delete(t.th, k) }
func (t *treeTarget) Contains(k uint64) bool    { return t.m.Contains(t.th, k) }
func (t *treeTarget) Move(src, dst uint64) bool { return trees.Move(t.m, t.th, src, dst) }
func (t *treeTarget) Range(lo, hi uint64, fn func(k, v uint64) bool) bool {
	return t.m.Range(t.th, lo, hi, fn)
}
func (t *treeTarget) SameShard(k1, k2 uint64) bool           { return true }
func (t *treeTarget) Atomic(fn func(tx *ftx.Tx) error) error { return t.coord.Run(fn) }
func (t *treeTarget) XactStats() ftx.Stats                   { return t.coord.Stats() }

// Runner executes one thread's operation stream against a Target; the Run
// harness drives one per worker, and the root-level testing.B benchmarks
// drive them directly with b.N-controlled iteration.
type Runner struct {
	t   Target
	th  *stm.Thread // nil for forest runners (stats come from the forest)
	rng *rand.Rand
	wl  Workload
	gen *ZipfGen // non-nil iff wl.Dist == DistZipf

	Ops        uint64 // operations completed
	EffUpdates uint64 // updates that modified the abstraction
	EffMoves   uint64 // moves that relocated a value
	RangeOps   uint64 // ordered range scans completed
	RangeItems uint64 // elements visited by range scans in total
	XactOps    uint64 // multi-key transfer transactions completed
	XactMoves  uint64 // transfers that actually moved a unit

	// insert/delete alternation state for effective mode: keys this worker
	// inserted and has not yet deleted.
	owned    []uint64
	doInsert bool
	// xkeys is the reusable per-transfer key buffer.
	xkeys []uint64

	// Latency histogram: every latSampleEvery-th operation is timed into
	// latH, the worker's op_latency_nanos log2 histogram (the same family
	// the obs registry serves — fixed size, lock-free, no reservoir
	// bookkeeping). Run merges the workers' histograms for the percentile
	// columns and registers them with the run's registry when one is up.
	latH    *obs.Histogram
	latSeen uint64
}

// latSampleEvery is the latency sampling cadence: timing every op would put
// a time.Now() pair on the critical path of sub-µs operations, so only
// every latSampleEvery-th op is measured (~2ns/op amortized).
const latSampleEvery = 32

// NewRunner creates a Runner hammering a bare tree through one STM thread,
// with its own deterministic random stream.
func NewRunner(m trees.Map, th *stm.Thread, wl Workload, seed int64) *Runner {
	r := NewTargetRunner(newTreeTarget(m, th), wl, seed)
	r.th = th
	return r
}

// NewTargetRunner creates a Runner hammering any Target (e.g. a
// forest.Handle) with its own deterministic random stream.
func NewTargetRunner(t Target, wl Workload, seed int64) *Runner {
	wl.prepareZipf()
	r := &Runner{t: t, rng: rand.New(rand.NewSource(seed)), wl: wl,
		latH: &obs.Histogram{}}
	if wl.Dist == DistZipf {
		r.gen = newZipfGenFromCDF(r.rng, wl.zipfCDF)
	}
	return r
}

// Thread exposes the runner's STM thread (for statistics collection); nil
// when the runner targets a forest.
func (w *Runner) Thread() *stm.Thread { return w.th }

// Step executes one operation drawn from the workload mix, timing every
// latSampleEvery-th one into the latency reservoir.
func (w *Runner) Step() {
	w.latSeen++
	if w.latSeen%latSampleEvery == 0 {
		t0 := time.Now()
		w.step()
		w.recordLatency(int64(time.Since(t0)))
	} else {
		w.step()
	}
	w.Ops++
}

// recordLatency feeds one measured op duration into the worker's latency
// histogram (three uncontended atomic adds, no allocation, no eviction).
func (w *Runner) recordLatency(d int64) {
	if d < 0 {
		d = 0
	}
	w.latH.Record(uint64(d))
}

// step executes one operation drawn from the workload mix.
func (w *Runner) step() {
	if w.wl.RangeFrac > 0 || w.wl.XactFrac > 0 {
		p := w.rng.Float64()
		if p < w.wl.RangeFrac {
			w.rangeScan()
			return
		}
		if p < w.wl.RangeFrac+w.wl.XactFrac {
			w.xact()
			return
		}
	}
	roll := w.rng.Intn(100)
	switch {
	case roll < w.wl.MovePercent:
		src := w.key(false)
		dst := w.key(true)
		if w.t.Move(src, dst) {
			w.EffMoves++
			w.EffUpdates++
		}
	case roll < w.wl.UpdatePercent:
		if w.wl.Effective {
			w.effectiveUpdate()
		} else {
			w.randomUpdate()
		}
	default:
		w.t.Contains(w.key(w.rng.Intn(2) == 0))
	}
}

// rangeScan performs one ordered scan over a window of the key space
// starting at a key drawn from the workload distribution, counting the
// elements visited (the per-shard snapshot+merge cost on a forest, the
// bounded in-order traversal on a bare tree).
func (w *Runner) rangeScan() {
	ln := w.wl.RangeLen
	if ln == 0 {
		ln = DefaultRangeLen
	}
	lo := w.key(false)
	hi := lo + ln - 1
	if hi < lo { // wrapped past the top of the key space
		hi = ^uint64(0)
	}
	var items uint64
	w.t.Range(lo, hi, func(_, _ uint64) bool {
		items++
		return true
	})
	w.RangeOps++
	w.RangeItems += items
}

// xact performs one multi-key transfer transaction: read XactKeys keys
// through the cross-shard coordinator and atomically move one unit of
// value from the richest present key to the poorest. The cross-shard dial
// (Workload.XactCrossFrac) decides whether the keys are drawn freely over
// the key space or confined to the first key's shard (the coordinator's
// single-shard fallback path).
func (w *Runner) xact() {
	n := w.wl.XactKeys
	if n < 2 {
		n = DefaultXactKeys
	}
	cross := w.rng.Float64() < w.wl.XactCrossFrac
	keys := w.xkeys[:0]
	first := w.key(false)
	keys = append(keys, first)
pick:
	for draws := 0; len(keys) < n && draws < 16*n; draws++ {
		k := w.key(false)
		if !cross {
			// Confine to the first key's shard, bounded rejection sampling;
			// give up after a while so tiny key ranges cannot spin forever.
			for tries := 0; !w.t.SameShard(first, k); tries++ {
				if tries >= 64 {
					break pick
				}
				k = w.key(false)
			}
		}
		dup := false
		for _, have := range keys {
			if have == k {
				dup = true
				break
			}
		}
		if !dup {
			keys = append(keys, k)
		}
	}
	w.xkeys = keys
	if len(keys) < 2 {
		return
	}
	moved := false
	w.t.Atomic(func(tx *ftx.Tx) error {
		moved = false
		var rich, poor uint64
		var richV, poorV uint64
		found := 0
		for _, k := range keys {
			v, ok := tx.Get(k)
			if !ok {
				continue
			}
			if found == 0 || v > richV {
				rich, richV = k, v
			}
			if found == 0 || v < poorV {
				poor, poorV = k, v
			}
			found++
		}
		if found < 2 || rich == poor || richV == 0 {
			return nil // nothing to transfer; commits as a read-only xact
		}
		tx.Put(rich, richV-1)
		tx.Put(poor, poorV+1)
		moved = true
		return nil
	})
	w.XactOps++
	if moved {
		w.XactMoves++
	}
}

// effectiveUpdate alternates inserting a fresh key with deleting a
// previously inserted one, keeping the set size stable and the effective
// ratio close to the attempted one.
func (w *Runner) effectiveUpdate() {
	if w.doInsert || len(w.owned) == 0 {
		k := w.key(true)
		if w.t.Insert(k, k) {
			w.owned = append(w.owned, k)
			w.EffUpdates++
			w.doInsert = false
		}
		return
	}
	k := w.owned[len(w.owned)-1]
	w.owned = w.owned[:len(w.owned)-1]
	if w.wl.Biased {
		// Deletions target low keys under bias; deleting an owned key
		// would cancel the skew the workload is supposed to create.
		k = w.key(false)
	}
	if w.t.Delete(k) {
		w.EffUpdates++
	}
	w.doInsert = true
}

// randomUpdate attempts an insert or delete of a random key with equal
// probability (Table 1's regime: the expected size stays constant, failures
// count as read-only operations).
func (w *Runner) randomUpdate() {
	k := w.key(w.rng.Intn(2) == 0)
	if w.rng.Intn(2) == 0 {
		if w.t.Insert(k, k) {
			w.EffUpdates++
		}
	} else {
		if w.t.Delete(k) {
			w.EffUpdates++
		}
	}
}

// key draws a key from the workload's distribution; under bias, keys for
// inserts (forInsert=true) are skewed high and keys for deletes/lookups
// low, by ±U[0..9] as in the paper.
func (w *Runner) key(forInsert bool) uint64 {
	var k uint64
	if w.gen != nil {
		k = w.gen.Uint64()
	} else {
		k = uint64(w.rng.Int63n(int64(w.wl.KeyRange)))
	}
	if !w.wl.Biased {
		return k
	}
	d := uint64(w.rng.Intn(10))
	if forInsert {
		k += d
		if k >= w.wl.KeyRange {
			k = w.wl.KeyRange - 1
		}
	} else {
		if k < d {
			k = 0
		} else {
			k -= d
		}
	}
	return k
}
