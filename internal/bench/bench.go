// Package bench is the synchrobench-style integer-set micro-benchmark
// harness of the paper's evaluation (§5.1–5.4): concurrent threads apply a
// mix of contains / insert / delete / move operations to one tree for a
// fixed duration, and the harness reports throughput (operations per
// microsecond, the paper's unit), effective-update accounting, abort rates
// and the transactional-read ceilings of Table 1.
//
// Two methodological details follow the paper explicitly:
//
//   - Effective updates. "We consider the effective update ratios of
//     synchrobench counting only modifications and ignoring the operations
//     that fail." In effective mode each thread alternates inserting a
//     fresh random key with deleting a key it previously inserted, so
//     almost every attempted update modifies the structure; the measured
//     effective ratio is reported alongside.
//
//   - Biased workload (Fig. 3 right). "Inserting (resp. deleting) random
//     values skewed towards high (resp. low) numbers in the value range:
//     the values ... are skewed with a fixed probability by incrementing
//     (resp. decrementing) with an integer uniformly taken within [0..9]."
package bench

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sftree"
	"repro/internal/stm"
	"repro/internal/trees"
)

// Workload describes the operation mix and key distribution.
type Workload struct {
	// KeyRange is the size of the key universe; the initial fill inserts
	// each key with probability 1/2, so the expected initial size is
	// KeyRange/2 (the paper fixes the expectation to 2^12 this way).
	KeyRange uint64
	// UpdatePercent is the percentage of operations that attempt an
	// insert or delete (the paper's update ratio).
	UpdatePercent int
	// MovePercent is the percentage of operations that are composed move
	// operations (Fig. 5(b)); they count within the update budget.
	MovePercent int
	// Biased enables the skewed insert-high/delete-low workload.
	Biased bool
	// Effective selects the effective-update discipline described above;
	// when false, updates pick uniform random keys and may fail (the
	// attempted-ratio regime of Table 1).
	Effective bool
}

// Options configures one benchmark run.
type Options struct {
	Kind     trees.Kind
	Mode     stm.Mode
	Threads  int
	Duration time.Duration
	Workload Workload
	Seed     int64
	// YieldEvery enables the STM's interleaving simulation (stm.WithYield):
	// worker threads yield after that many transactional accesses, so
	// transactions overlap even when the host has fewer cores than workers.
	// 0 disables.
	YieldEvery int
}

// Result reports one run's measurements.
type Result struct {
	Kind    trees.Kind
	Mode    stm.Mode
	Threads int
	Elapsed time.Duration

	Ops              uint64  // operations completed
	EffectiveUpdates uint64  // updates that modified the abstraction
	EffectiveMoves   uint64  // moves that relocated a value
	Throughput       float64 // operations per microsecond (paper's unit)
	EffectiveRatio   float64 // effective updates / ops

	STM       stm.Stats    // summed over worker threads
	TreeStats sftree.Stats // zero for non-SF trees
	Rotations uint64       // tree rotations (see trees.Rotations)
}

// Run executes one benchmark: build, fill, start maintenance, hammer for
// the configured duration, and collect statistics.
func Run(o Options) Result {
	if o.Threads < 1 {
		panic("bench: Threads must be >= 1")
	}
	if o.Workload.KeyRange < 2 {
		panic("bench: KeyRange must be >= 2")
	}
	s := stm.New(stm.WithMode(o.Mode), stm.WithYield(o.YieldEvery))
	m := trees.New(o.Kind, s)
	fill(m, s, o.Workload.KeyRange, o.Seed)

	stopMaint := trees.Start(m)
	defer stopMaint()

	var stopFlag atomic.Bool
	var start, ready sync.WaitGroup
	workers := make([]*Runner, o.Threads)
	start.Add(1)
	for i := range workers {
		w := NewRunner(m, s.NewThread(), o.Workload, o.Seed+int64(i)*7919+1)
		workers[i] = w
		ready.Add(1)
		go func() {
			start.Wait()
			for !stopFlag.Load() {
				w.Step()
			}
			ready.Done()
		}()
	}
	t0 := time.Now()
	start.Done()
	time.Sleep(o.Duration)
	stopFlag.Store(true)
	ready.Wait()
	elapsed := time.Since(t0)

	res := Result{Kind: o.Kind, Mode: o.Mode, Threads: o.Threads, Elapsed: elapsed}
	for _, w := range workers {
		res.Ops += w.Ops
		res.EffectiveUpdates += w.EffUpdates
		res.EffectiveMoves += w.EffMoves
		res.STM.Add(w.th.Stats())
	}
	res.Throughput = float64(res.Ops) / (float64(elapsed.Nanoseconds()) / 1e3)
	if res.Ops > 0 {
		res.EffectiveRatio = float64(res.EffectiveUpdates) / float64(res.Ops)
	}
	if sf, ok := m.(interface{ Stats() sftree.Stats }); ok {
		res.TreeStats = sf.Stats()
	}
	if rot, ok := trees.Rotations(m); ok {
		res.Rotations = rot
	}
	return res
}

// fill initializes the set: every key in [0, keyRange) is inserted with
// probability 1/2, in a shuffled order so that even the never-rebalancing
// tree starts from an ordinary random BST (inserting in ascending order
// would hand it a linked list before the measurement begins). Maintenance,
// where present, is then quiesced so every library starts balanced, as the
// paper's initialized sets do.
func fill(m trees.Map, s *stm.STM, keyRange uint64, seed int64) {
	th := s.NewThread()
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	keys := rng.Perm(int(keyRange))
	for _, k := range keys {
		if rng.Intn(2) == 0 {
			m.Insert(th, uint64(k), uint64(k))
		}
	}
	trees.Quiesce(m, 1<<20)
}

// Runner executes one thread's operation stream against a tree; the Run
// harness drives one per worker, and the root-level testing.B benchmarks
// drive them directly with b.N-controlled iteration.
type Runner struct {
	m   trees.Map
	th  *stm.Thread
	rng *rand.Rand
	wl  Workload

	Ops        uint64 // operations completed
	EffUpdates uint64 // updates that modified the abstraction
	EffMoves   uint64 // moves that relocated a value

	// insert/delete alternation state for effective mode: keys this worker
	// inserted and has not yet deleted.
	owned    []uint64
	doInsert bool
}

// NewRunner creates a Runner with its own deterministic random stream.
func NewRunner(m trees.Map, th *stm.Thread, wl Workload, seed int64) *Runner {
	return &Runner{m: m, th: th, rng: rand.New(rand.NewSource(seed)), wl: wl}
}

// Thread exposes the runner's STM thread (for statistics collection).
func (w *Runner) Thread() *stm.Thread { return w.th }

// Step executes one operation drawn from the workload mix.
func (w *Runner) Step() {
	defer func() { w.Ops++ }()
	roll := w.rng.Intn(100)
	switch {
	case roll < w.wl.MovePercent:
		src := w.key(false)
		dst := w.key(true)
		if trees.Move(w.m, w.th, src, dst) {
			w.EffMoves++
			w.EffUpdates++
		}
	case roll < w.wl.UpdatePercent:
		if w.wl.Effective {
			w.effectiveUpdate()
		} else {
			w.randomUpdate()
		}
	default:
		w.m.Contains(w.th, w.key(w.rng.Intn(2) == 0))
	}
}

// effectiveUpdate alternates inserting a fresh key with deleting a
// previously inserted one, keeping the set size stable and the effective
// ratio close to the attempted one.
func (w *Runner) effectiveUpdate() {
	if w.doInsert || len(w.owned) == 0 {
		k := w.key(true)
		if w.m.Insert(w.th, k, k) {
			w.owned = append(w.owned, k)
			w.EffUpdates++
			w.doInsert = false
		}
		return
	}
	k := w.owned[len(w.owned)-1]
	w.owned = w.owned[:len(w.owned)-1]
	if w.wl.Biased {
		// Deletions target low keys under bias; deleting an owned key
		// would cancel the skew the workload is supposed to create.
		k = w.key(false)
	}
	if w.m.Delete(w.th, k) {
		w.EffUpdates++
	}
	w.doInsert = true
}

// randomUpdate attempts an insert or delete of a uniform random key with
// equal probability (Table 1's regime: the expected size stays constant,
// failures count as read-only operations).
func (w *Runner) randomUpdate() {
	k := w.key(w.rng.Intn(2) == 0)
	if w.rng.Intn(2) == 0 {
		if w.m.Insert(w.th, k, k) {
			w.EffUpdates++
		}
	} else {
		if w.m.Delete(w.th, k) {
			w.EffUpdates++
		}
	}
}

// key draws a key; under bias, keys for inserts (forInsert=true) are skewed
// high and keys for deletes/lookups low, by ±U[0..9] as in the paper.
func (w *Runner) key(forInsert bool) uint64 {
	k := uint64(w.rng.Int63n(int64(w.wl.KeyRange)))
	if !w.wl.Biased {
		return k
	}
	d := uint64(w.rng.Intn(10))
	if forInsert {
		k += d
		if k >= w.wl.KeyRange {
			k = w.wl.KeyRange - 1
		}
	} else {
		if k < d {
			k = 0
		} else {
			k -= d
		}
	}
	return k
}
