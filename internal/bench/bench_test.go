package bench

import (
	"testing"
	"time"

	"repro/internal/stm"
	"repro/internal/trees"
)

func quickOpts(kind trees.Kind) Options {
	return Options{
		Kind:     kind,
		Mode:     stm.CTL,
		Threads:  2,
		Duration: 30 * time.Millisecond,
		Workload: Workload{KeyRange: 1 << 8, UpdatePercent: 20, Effective: true},
		Seed:     1,
	}
}

func TestRunAllKinds(t *testing.T) {
	for _, kind := range trees.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			res := Run(quickOpts(kind))
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if res.Throughput <= 0 {
				t.Fatalf("throughput = %v", res.Throughput)
			}
			if res.STM.Commits == 0 {
				t.Fatal("no commits recorded")
			}
			if res.Kind != kind || res.Threads != 2 {
				t.Fatal("result metadata wrong")
			}
		})
	}
}

func TestEffectiveRatioTracksTarget(t *testing.T) {
	o := quickOpts(trees.SFOpt)
	o.Duration = 80 * time.Millisecond
	o.Workload.UpdatePercent = 40
	res := Run(o)
	// Effective mode should convert most attempted updates into effective
	// ones; allow generous slack for the warm-up prefix.
	if res.EffectiveRatio < 0.20 || res.EffectiveRatio > 0.45 {
		t.Fatalf("effective ratio %.3f far from 0.40 target", res.EffectiveRatio)
	}
}

func TestReadOnlyWorkloadHasNoUpdates(t *testing.T) {
	o := quickOpts(trees.SF)
	o.Workload.UpdatePercent = 0
	res := Run(o)
	if res.EffectiveUpdates != 0 {
		t.Fatalf("updates in a 0%% update run: %d", res.EffectiveUpdates)
	}
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
}

func TestMoveWorkload(t *testing.T) {
	o := quickOpts(trees.SFOpt)
	o.Workload.UpdatePercent = 10
	o.Workload.MovePercent = 5
	o.Duration = 60 * time.Millisecond
	res := Run(o)
	if res.EffectiveMoves == 0 {
		t.Fatal("no effective moves despite 5% move mix")
	}
}

func TestBiasedWorkloadRuns(t *testing.T) {
	o := quickOpts(trees.NR)
	o.Workload.Biased = true
	o.Workload.UpdatePercent = 20
	res := Run(o)
	if res.Ops == 0 {
		t.Fatal("biased run did no work")
	}
}

func TestModesWork(t *testing.T) {
	for _, mode := range []stm.Mode{stm.CTL, stm.ETL, stm.Elastic} {
		o := quickOpts(trees.SF)
		o.Mode = mode
		res := Run(o)
		if res.Ops == 0 {
			t.Fatalf("mode %v: no ops", mode)
		}
		if res.Mode != mode {
			t.Fatal("mode metadata wrong")
		}
	}
}

func TestMaxOpReadsRecorded(t *testing.T) {
	o := quickOpts(trees.RB)
	o.Workload.Effective = false
	o.Workload.UpdatePercent = 30
	res := Run(o)
	if res.STM.MaxOpReads == 0 {
		t.Fatal("MaxOpReads not recorded")
	}
	// A lookup on a 2^8-element balanced tree needs at least ~log2(128)
	// reads; the recorded ceiling cannot be smaller.
	if res.STM.MaxOpReads < 5 {
		t.Fatalf("MaxOpReads = %d, implausibly small", res.STM.MaxOpReads)
	}
}

func TestRotationsReportedForSF(t *testing.T) {
	o := quickOpts(trees.SFOpt)
	o.Workload.UpdatePercent = 40
	o.Duration = 80 * time.Millisecond
	res := Run(o)
	if res.TreeStats.Passes == 0 {
		t.Fatal("maintenance never ran during the benchmark")
	}
}

func TestBadOptionsPanic(t *testing.T) {
	for name, o := range map[string]Options{
		"threads":  {Kind: trees.SF, Threads: 0, Workload: Workload{KeyRange: 8}},
		"keyrange": {Kind: trees.SF, Threads: 1, Workload: Workload{KeyRange: 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			Run(o)
		}()
	}
}
