package bench

import (
	"testing"
	"time"

	"repro/internal/stm"
	"repro/internal/trees"
)

func quickOpts(kind trees.Kind) Options {
	return Options{
		Kind:     kind,
		Mode:     stm.CTL,
		Threads:  2,
		Duration: 30 * time.Millisecond,
		Workload: Workload{KeyRange: 1 << 8, UpdatePercent: 20, Effective: true},
		Seed:     1,
	}
}

func TestRunAllKinds(t *testing.T) {
	for _, kind := range trees.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			res := Run(quickOpts(kind))
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if res.Throughput <= 0 {
				t.Fatalf("throughput = %v", res.Throughput)
			}
			if res.STM.Commits == 0 {
				t.Fatal("no commits recorded")
			}
			if res.Kind != kind || res.Threads != 2 {
				t.Fatal("result metadata wrong")
			}
		})
	}
}

func TestEffectiveRatioTracksTarget(t *testing.T) {
	o := quickOpts(trees.SFOpt)
	o.Duration = 80 * time.Millisecond
	o.Workload.UpdatePercent = 40
	res := Run(o)
	// Effective mode should convert most attempted updates into effective
	// ones; allow generous slack for the warm-up prefix.
	if res.EffectiveRatio < 0.20 || res.EffectiveRatio > 0.45 {
		t.Fatalf("effective ratio %.3f far from 0.40 target", res.EffectiveRatio)
	}
}

func TestReadOnlyWorkloadHasNoUpdates(t *testing.T) {
	o := quickOpts(trees.SF)
	o.Workload.UpdatePercent = 0
	res := Run(o)
	if res.EffectiveUpdates != 0 {
		t.Fatalf("updates in a 0%% update run: %d", res.EffectiveUpdates)
	}
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
}

func TestMoveWorkload(t *testing.T) {
	o := quickOpts(trees.SFOpt)
	o.Workload.UpdatePercent = 10
	o.Workload.MovePercent = 5
	o.Duration = 60 * time.Millisecond
	res := Run(o)
	if res.EffectiveMoves == 0 {
		t.Fatal("no effective moves despite 5% move mix")
	}
}

func TestRangeWorkload(t *testing.T) {
	for _, shards := range []int{1, 4} {
		o := quickOpts(trees.SFOpt)
		o.Shards = shards
		o.Duration = 60 * time.Millisecond
		o.Workload.RangeFrac = 0.3
		o.Workload.RangeLen = 64
		res := Run(o)
		if res.RangeOps == 0 {
			t.Fatalf("shards=%d: no range scans despite 30%% range mix", shards)
		}
		if res.RangeItems == 0 {
			t.Fatalf("shards=%d: range scans visited nothing on a half-full set", shards)
		}
		// A 64-wide window over a half-full universe visits ~32 elements.
		mean := float64(res.RangeItems) / float64(res.RangeOps)
		if mean < 8 || mean > 64 {
			t.Fatalf("shards=%d: mean scan yield %.1f implausible for window 64", shards, mean)
		}
		if shards > 1 {
			// Every scan touches every shard: each shard's routed-ops count
			// must be at least the number of scans.
			for si, sr := range res.PerShard {
				if sr.Ops < res.RangeOps {
					t.Fatalf("shard %d charged %d ops < %d scans (merge cost unaccounted)",
						si, sr.Ops, res.RangeOps)
				}
			}
		}
	}
}

func TestXactWorkload(t *testing.T) {
	for _, shards := range []int{1, 8} {
		o := quickOpts(trees.SFOpt)
		o.Shards = shards
		o.Duration = 60 * time.Millisecond
		o.Workload.XactFrac = 0.3
		o.Workload.XactKeys = 4
		o.Workload.XactCrossFrac = 1
		res := Run(o)
		if res.XactOps == 0 {
			t.Fatalf("shards=%d: no transfer transactions despite 30%% xact mix", shards)
		}
		if res.XactMoves == 0 {
			t.Fatalf("shards=%d: no transfer moved a unit on a half-full set", shards)
		}
		if res.Xact.Commits != res.XactOps {
			t.Fatalf("shards=%d: coordinator commits %d != completed transfers %d",
				shards, res.Xact.Commits, res.XactOps)
		}
		if shards == 1 && res.Xact.Fallbacks != res.Xact.Commits {
			t.Fatalf("single-domain transfers must all take the fallback path: %+v", res.Xact)
		}
		if shards > 1 && res.Xact.Fallbacks == res.Xact.Commits {
			t.Fatalf("shards=%d with a free key draw never crossed shards: %+v", shards, res.Xact)
		}
	}
}

func TestXactCrossDial(t *testing.T) {
	// With the dial at 0, every transfer is confined to one shard and must
	// commit through the fallback path.
	o := quickOpts(trees.SF)
	o.Shards = 8
	o.Duration = 60 * time.Millisecond
	o.Workload.XactFrac = 0.5
	o.Workload.XactCrossFrac = 0
	res := Run(o)
	if res.XactOps == 0 {
		t.Fatal("no transfers")
	}
	if res.Xact.Fallbacks != res.Xact.Commits {
		t.Fatalf("cross dial 0 still produced cross-shard commits: %+v", res.Xact)
	}
}

func TestRangeFracZeroReproducesLegacyStream(t *testing.T) {
	// The range mix must be a pure extension: with RangeFrac == 0, Step
	// draws nothing extra from the random stream, so a deterministic
	// single-threaded run reproduces the pre-range harness bit-for-bit.
	// The golden values pin one such run; any unconditional extra draw in
	// Step (or a change to fill/key ordering) shifts the whole stream and
	// breaks them.
	s := stm.New(stm.WithContentionManager(stm.Suicide()))
	m := trees.New(trees.SF, s)
	fill(m, s, 256, 7)
	wl := Workload{KeyRange: 256, UpdatePercent: 30, Effective: true}
	r := NewRunner(m, s.NewThread(), wl, 7)
	for i := 0; i < 5000; i++ {
		r.Step()
	}
	if r.RangeOps != 0 || r.RangeItems != 0 {
		t.Fatalf("range counters nonzero without a range mix: %d/%d", r.RangeOps, r.RangeItems)
	}
	if r.EffUpdates != 1014 {
		t.Fatalf("effective updates = %d, want golden 1014 (random stream shifted)", r.EffUpdates)
	}
	if size := m.Size(s.NewThread()); size != 119 {
		t.Fatalf("final size = %d, want golden 119 (random stream shifted)", size)
	}
}

func TestBiasedWorkloadRuns(t *testing.T) {
	o := quickOpts(trees.NR)
	o.Workload.Biased = true
	o.Workload.UpdatePercent = 20
	res := Run(o)
	if res.Ops == 0 {
		t.Fatal("biased run did no work")
	}
}

func TestModesWork(t *testing.T) {
	for _, mode := range []stm.Mode{stm.CTL, stm.ETL, stm.Elastic} {
		o := quickOpts(trees.SF)
		o.Mode = mode
		res := Run(o)
		if res.Ops == 0 {
			t.Fatalf("mode %v: no ops", mode)
		}
		if res.Mode != mode {
			t.Fatal("mode metadata wrong")
		}
	}
}

func TestMaxOpReadsRecorded(t *testing.T) {
	o := quickOpts(trees.RB)
	o.Workload.Effective = false
	o.Workload.UpdatePercent = 30
	res := Run(o)
	if res.STM.MaxOpReads == 0 {
		t.Fatal("MaxOpReads not recorded")
	}
	// A lookup on a 2^8-element balanced tree needs at least ~log2(128)
	// reads; the recorded ceiling cannot be smaller.
	if res.STM.MaxOpReads < 5 {
		t.Fatalf("MaxOpReads = %d, implausibly small", res.STM.MaxOpReads)
	}
}

func TestRotationsReportedForSF(t *testing.T) {
	o := quickOpts(trees.SFOpt)
	o.Workload.UpdatePercent = 40
	o.Duration = 80 * time.Millisecond
	res := Run(o)
	// TreeStats covers the hammer phase only (fill counters are
	// subtracted). Under the hint-driven scheduler measured-phase activity
	// shows up as targeted repairs and/or fallback sweeps; on a heavily
	// oversubscribed host a full sweep may not complete within the window,
	// so accept either signal — plus the hints that drive them.
	ts := res.TreeStats
	if ts.Passes == 0 && ts.TargetedRepairs == 0 && ts.BusyNanos == 0 {
		t.Fatalf("maintenance never ran during the benchmark: %+v", ts)
	}
	if ts.HintsEmitted+ts.HintsCoalesced+ts.HintsDropped == 0 {
		t.Fatalf("no hints published by a 40%% update run: %+v", ts)
	}
}

func TestBadOptionsPanic(t *testing.T) {
	for name, o := range map[string]Options{
		"threads":  {Kind: trees.SF, Threads: 0, Workload: Workload{KeyRange: 8}},
		"keyrange": {Kind: trees.SF, Threads: 1, Workload: Workload{KeyRange: 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			Run(o)
		}()
	}
}
