package bench

import (
	"math"
	"math/rand"
	"sort"
)

// Dist names a key distribution for the workload generator.
type Dist string

const (
	// DistUniform draws keys uniformly from [0, KeyRange) — the paper's
	// regime and the default.
	DistUniform Dist = "uniform"
	// DistZipf draws keys Zipf-skewed: key k with probability ∝ 1/(k+1)^s,
	// so a handful of low keys absorb most of the traffic. This is the
	// contended-hot-set workload that exposes single-domain bottlenecks
	// (and, on a forest, the shards unlucky enough to own the hot keys).
	DistZipf Dist = "zipf"
)

// DefaultZipfS is the skew exponent used when Workload.ZipfS is zero; s
// slightly above 1 is the classical web/cache workload shape.
const DefaultZipfS = 1.2

// Dists lists the supported key distributions.
func Dists() []Dist { return []Dist{DistUniform, DistZipf} }

// ZipfGen draws keys from a bounded Zipf distribution over [0, n):
// P(k) = (1/(k+1)^s) / H(n,s). It inverts a precomputed CDF, so draws are
// exact, O(log n), and fully deterministic given the caller's rand source;
// construction is O(n) time and memory (the benchmark's key universes are
// at most a few million keys).
type ZipfGen struct {
	rng *rand.Rand
	cdf []float64 // cdf[k] = P(key <= k), cdf[n-1] == 1
}

// NewZipfGen builds a generator for n keys with skew exponent s > 0.
func NewZipfGen(rng *rand.Rand, s float64, n uint64) *ZipfGen {
	return newZipfGenFromCDF(rng, zipfCDF(s, n))
}

// zipfCDF computes the cumulative distribution table. It depends only on
// (s, n) and is immutable afterwards, so the harness computes it once per
// run and shares it across workers instead of paying O(n) time and memory
// per thread.
func zipfCDF(s float64, n uint64) []float64 {
	if n == 0 {
		panic("bench: zipf over empty key range")
	}
	if s <= 0 {
		panic("bench: zipf skew exponent must be > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := uint64(0); k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return cdf
}

// newZipfGenFromCDF wraps a (possibly shared) CDF table with a private
// random stream.
func newZipfGenFromCDF(rng *rand.Rand, cdf []float64) *ZipfGen {
	return &ZipfGen{rng: rng, cdf: cdf}
}

// Uint64 draws one key.
func (z *ZipfGen) Uint64() uint64 {
	u := z.rng.Float64()
	return uint64(sort.SearchFloat64s(z.cdf, u))
}
